// Concurrent query serving: throughput and latency of the snapshot-isolated
// VideoQueryEngine at 1/2/4/8 closed-loop client threads over a 4-video
// ingested repository (docs/architecture.md). Each client runs ranked top-K
// queries back to back; results land in BENCH_concurrent_queries.json.
//
// Expected shape: QPS scales with client threads on a multi-core host —
// queries pin a snapshot and then run lock-free, so added clients contend
// only on the snapshot-pointer mutex (a few instructions per query). p99
// stays within a small factor of p50: there is no writer to stall behind.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "svq/core/engine.h"
#include "svq/models/synthetic_models.h"

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::shared_ptr<const svq::video::SyntheticVideo> MakeVideo(int index,
                                                            double scale) {
  svq::video::SyntheticVideoSpec spec;
  spec.name = "serving_" + std::to_string(index);
  spec.num_frames = static_cast<int64_t>(120000 * scale);
  spec.seed = 9100 + static_cast<uint64_t>(index);
  spec.actions.push_back({"smoking", 350.0, 4500.0});
  svq::video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.9;
  cup.coverage = 0.9;
  cup.mean_on_frames = 250.0;
  cup.mean_off_frames = 2600.0;
  spec.objects.push_back(cup);
  return svq::benchutil::ValueOrDie(
      svq::video::SyntheticVideo::Generate(spec), "video generation");
}

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t rank = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[rank];
}

}  // namespace

int main() {
  using namespace svq::benchutil;
  const double scale = ScaleFromEnv(0.25);
  constexpr int kNumVideos = 4;
  constexpr int kQueriesPerClient = 24;
  const std::vector<int> kClientCounts = {1, 2, 4, 8};

  PrintTitle("Concurrent query serving: QPS and latency vs client threads");
  PrintNote("scale=" + std::to_string(scale) + ", videos=" +
            std::to_string(kNumVideos) + ", queries/client=" +
            std::to_string(kQueriesPerClient));
  BenchJson json("concurrent_queries");

  svq::core::VideoQueryEngine engine;
  for (int i = 0; i < kNumVideos; ++i) {
    CheckOk(engine.AddVideo(MakeVideo(i, scale)).status(), "AddVideo");
  }
  CheckOk(engine.IngestAll(), "IngestAll");

  svq::core::Query query;
  query.action = "smoking";
  query.objects = {"cup"};
  const int k = 5;

  for (const int clients : kClientCounts) {
    std::vector<std::vector<double>> latencies(
        static_cast<size_t>(clients));
    const double start = NowMs();
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c]() {
        std::vector<double>& mine = latencies[static_cast<size_t>(c)];
        mine.reserve(kQueriesPerClient);
        for (int q = 0; q < kQueriesPerClient; ++q) {
          const std::string video =
              "serving_" + std::to_string((c + q) % kNumVideos);
          const double begin = NowMs();
          const auto result = engine.ExecuteTopK(query, video, k);
          mine.push_back(NowMs() - begin);
          if (!result.ok()) {
            std::fprintf(stderr, "query failed: %s\n",
                         result.status().ToString().c_str());
            std::exit(1);
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double wall_ms = NowMs() - start;

    std::vector<double> all;
    for (const std::vector<double>& batch : latencies) {
      all.insert(all.end(), batch.begin(), batch.end());
    }
    std::sort(all.begin(), all.end());
    const double total = static_cast<double>(all.size());
    const double qps = wall_ms > 0.0 ? total / (wall_ms / 1000.0) : 0.0;
    const double p50 = Percentile(all, 0.50);
    const double p99 = Percentile(all, 0.99);

    json.Record("qps", qps, "queries/s", clients);
    json.Record("latency_p50", p50, "ms", clients);
    json.Record("latency_p99", p99, "ms", clients);
    std::printf("  %d client(s): %7.1f q/s   p50 %7.2f ms   p99 %7.2f ms   "
                "(%d queries in %.1f ms)\n",
                clients, qps, p50, p99, static_cast<int>(total), wall_ms);
  }

  json.Flush();
  return 0;
}
