// Cluster scatter-gather overhead: a ranked `PROCESS *` broadcast over the
// whole catalog, answered by a single svqd versus an svq_router fronting 2
// and 4 svqd shards (each holding a contiguous slice of the same catalog).
// Results land in BENCH_cluster_scatter_gather.json with the 4-shard
// router's svq_router_* registry attached.
//
// Expected shape: the routed configurations pay one extra loopback hop and
// the gather barrier (the slowest shard gates the response), but each
// shard's repository fan-out covers 1/N of the catalog, so broadcast
// latency drops as shards are added once per-shard engine work dominates
// the wire overhead. Every routed answer is checked sequence-for-sequence
// against the single-node answer before it is timed — a cluster that is
// fast but wrong does not get a number.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "svq/cluster/router.h"
#include "svq/cluster/shard_map.h"
#include "svq/core/engine.h"
#include "svq/server/client.h"
#include "svq/server/server.h"

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::shared_ptr<const svq::video::SyntheticVideo> MakeVideo(int index,
                                                            double scale) {
  svq::video::SyntheticVideoSpec spec;
  spec.name = "serving_" + std::to_string(index);
  spec.num_frames = static_cast<int64_t>(60000 * scale);
  spec.seed = 9400 + static_cast<uint64_t>(index);
  spec.actions.push_back({"smoking", 350.0, 4500.0});
  svq::video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.9;
  cup.coverage = 0.9;
  cup.mean_on_frames = 250.0;
  cup.mean_off_frames = 2600.0;
  spec.objects.push_back(cup);
  return svq::benchutil::ValueOrDie(
      svq::video::SyntheticVideo::Generate(spec), "video generation");
}

constexpr const char* kBroadcast =
    "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS * PRODUCE clipID, "
    "obj USING ObjectDetector, act USING ActionRecognizer) WHERE "
    "act='smoking' AND obj.include('cup') ORDER BY RANK(act, obj) LIMIT 8";

double Percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t rank = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[rank];
}

void ExpectSameAnswer(const svq::server::QueryResponse& got,
                      const svq::server::QueryResponse& want,
                      int shards) {
  bool same = got.sequences.size() == want.sequences.size();
  for (size_t i = 0; same && i < want.sequences.size(); ++i) {
    same = got.sequences[i].begin == want.sequences[i].begin &&
           got.sequences[i].end == want.sequences[i].end &&
           got.sequences[i].lower_bound == want.sequences[i].lower_bound &&
           got.sequences[i].upper_bound == want.sequences[i].upper_bound;
  }
  if (!same) {
    std::fprintf(stderr,
                 "FATAL: %d-shard broadcast diverged from the single-node "
                 "answer\n",
                 shards);
    std::exit(1);
  }
}

/// Runs `iterations` broadcasts through `client`, returning sorted
/// latencies (ms).
std::vector<double> TimeBroadcasts(svq::server::Client& client,
                                   int iterations) {
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    const double begin = NowMs();
    auto response = client.Execute(kBroadcast);
    latencies.push_back(NowMs() - begin);
    svq::benchutil::CheckOk(response.status(), "Execute transport");
    svq::benchutil::CheckOk(response->status, "broadcast query");
  }
  std::sort(latencies.begin(), latencies.end());
  return latencies;
}

}  // namespace

int main() {
  using namespace svq::benchutil;
  const double scale = ScaleFromEnv(0.25);
  constexpr int kNumVideos = 8;
  constexpr int kIterations = 16;
  const std::vector<int> kShardCounts = {2, 4};

  PrintTitle(
      "cluster scatter-gather: PROCESS * via svq_router vs single svqd");
  PrintNote("scale=" + std::to_string(scale) + ", videos=" +
            std::to_string(kNumVideos) + ", iterations=" +
            std::to_string(kIterations) +
            ", shards=1 is a single svqd without a router");
  BenchJson json("cluster_scatter_gather");

  std::vector<std::string> names;
  for (int i = 0; i < kNumVideos; ++i) {
    names.push_back("serving_" + std::to_string(i));
  }

  // Single-node baseline: one svqd over the full catalog.
  svq::core::VideoQueryEngine single;
  for (int i = 0; i < kNumVideos; ++i) {
    CheckOk(single.AddVideo(MakeVideo(i, scale)).status(), "AddVideo");
  }
  CheckOk(single.IngestAll(), "IngestAll");
  svq::server::Server single_server(&single, {});
  CheckOk(single_server.Start(), "single svqd Start");
  svq::server::Client baseline_client;
  CheckOk(baseline_client.Connect("127.0.0.1", single_server.port()),
          "baseline Connect");
  auto oracle = baseline_client.Execute(kBroadcast);
  CheckOk(oracle.status(), "oracle transport");
  CheckOk(oracle->status, "oracle query");

  {
    const std::vector<double> latencies =
        TimeBroadcasts(baseline_client, kIterations);
    double total_ms = 0.0;
    for (const double ms : latencies) total_ms += ms;
    const double qps =
        total_ms > 0.0 ? 1000.0 * latencies.size() / total_ms : 0.0;
    json.Record("qps", qps, "queries/s", 1);
    json.Record("latency_p50", Percentile(latencies, 0.50), "ms", 1);
    json.Record("latency_p99", Percentile(latencies, 0.99), "ms", 1);
    std::printf("  1 shard (no router): %7.2f QPS   p50 %7.2f ms   "
                "p99 %7.2f ms\n",
                qps, Percentile(latencies, 0.50),
                Percentile(latencies, 0.99));
  }

  // Routed configurations: contiguous catalog slices per shard.
  std::unique_ptr<svq::cluster::Router> last_router;
  std::vector<std::unique_ptr<svq::core::VideoQueryEngine>> engines;
  std::vector<std::unique_ptr<svq::server::Server>> servers;
  for (const int shards : kShardCounts) {
    engines.clear();
    servers.clear();
    std::vector<svq::cluster::ShardEndpoint> endpoints(
        static_cast<size_t>(shards), {"127.0.0.1", 1});
    auto map = ValueOrDie(
        svq::cluster::AssignContiguous(names, endpoints), "AssignContiguous");
    for (int s = 0; s < shards; ++s) {
      engines.push_back(std::make_unique<svq::core::VideoQueryEngine>());
    }
    for (int i = 0; i < kNumVideos; ++i) {
      const int shard = map.ShardOf(names[static_cast<size_t>(i)]);
      CheckOk(engines[static_cast<size_t>(shard)]
                  ->AddVideo(MakeVideo(i, scale))
                  .status(),
              "shard AddVideo");
    }
    for (int s = 0; s < shards; ++s) {
      CheckOk(engines[static_cast<size_t>(s)]->IngestAll(),
              "shard IngestAll");
      servers.push_back(std::make_unique<svq::server::Server>(
          engines[static_cast<size_t>(s)].get(),
          svq::server::ServerOptions{}));
      CheckOk(servers.back()->Start(), "shard svqd Start");
      map.shards[static_cast<size_t>(s)].port = servers.back()->port();
    }
    auto router = std::make_unique<svq::cluster::Router>(
        map, svq::cluster::RouterOptions{});
    CheckOk(router->Start(), "router Start");

    svq::server::Client client;
    CheckOk(client.Connect("127.0.0.1", router->port()), "router Connect");
    auto routed = client.Execute(kBroadcast);
    CheckOk(routed.status(), "routed transport");
    CheckOk(routed->status, "routed query");
    ExpectSameAnswer(*routed, *oracle, shards);

    const std::vector<double> latencies =
        TimeBroadcasts(client, kIterations);
    double total_ms = 0.0;
    for (const double ms : latencies) total_ms += ms;
    const double qps =
        total_ms > 0.0 ? 1000.0 * latencies.size() / total_ms : 0.0;
    json.Record("qps", qps, "queries/s", shards);
    json.Record("latency_p50", Percentile(latencies, 0.50), "ms", shards);
    json.Record("latency_p99", Percentile(latencies, 0.99), "ms", shards);
    std::printf("  %d shards via router:  %7.2f QPS   p50 %7.2f ms   "
                "p99 %7.2f ms\n",
                shards, qps, Percentile(latencies, 0.50),
                Percentile(latencies, 0.99));

    if (shards == kShardCounts.back()) {
      last_router = std::move(router);
    } else {
      router->Shutdown();
    }
    if (shards != kShardCounts.back()) {
      for (auto& server : servers) server->Shutdown();
    }
  }

  // The widest router's registry rides along in the JSON: every latency
  // figure above carries the fan-out histograms and failure counters
  // (all zero in a healthy run) that produced it.
  if (last_router) json.AttachRegistry(last_router->registry().Snapshot());
  if (last_router) last_router->Shutdown();
  for (auto& server : servers) server->Shutdown();
  single_server.Shutdown();
  return 0;
}
