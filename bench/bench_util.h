#ifndef SVQ_BENCH_BENCH_UTIL_H_
#define SVQ_BENCH_BENCH_UTIL_H_

// Shared helpers for the table/figure reproduction binaries. Each bench
// regenerates one table or figure of the paper's §5 evaluation and prints
// the same rows/series the paper reports. Absolute numbers differ (the
// substrate is a simulator, see DESIGN.md), but the shape — who wins, by
// roughly what factor, where crossovers fall — is the reproduction target
// recorded in EXPERIMENTS.md.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "svq/common/result.h"
#include "svq/common/status.h"

namespace svq::benchutil {

/// Workload scale factor: fraction of the paper's video lengths. Override
/// with SVQ_BENCH_SCALE for quicker/slower runs.
inline double ScaleFromEnv(double default_scale) {
  const char* env = std::getenv("SVQ_BENCH_SCALE");
  if (env == nullptr) return default_scale;
  const double value = std::atof(env);
  return value > 0.0 ? value : default_scale;
}

inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintNote(const std::string& note) {
  std::printf("    %s\n", note.c_str());
}

/// Aborts the bench with a readable message when a setup step fails.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace svq::benchutil

#endif  // SVQ_BENCH_BENCH_UTIL_H_
