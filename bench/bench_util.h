#ifndef SVQ_BENCH_BENCH_UTIL_H_
#define SVQ_BENCH_BENCH_UTIL_H_

// Shared helpers for the table/figure reproduction binaries. Each bench
// regenerates one table or figure of the paper's §5 evaluation and prints
// the same rows/series the paper reports. Absolute numbers differ (the
// substrate is a simulator, see DESIGN.md), but the shape — who wins, by
// roughly what factor, where crossovers fall — is the reproduction target
// recorded in EXPERIMENTS.md.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "svq/common/result.h"
#include "svq/common/status.h"
#include "svq/observability/metrics.h"

namespace svq::benchutil {

/// Machine-readable bench output: collects (metric, value, unit, threads)
/// rows and writes them as `BENCH_<name>.json` when Flush() is called (or
/// on destruction), so the perf trajectory can be tracked run over run.
/// Files land in SVQ_BENCH_JSON_DIR (default: the working directory); each
/// run rewrites its bench's file.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  ~BenchJson() { Flush(); }

  void Record(const std::string& metric, double value,
              const std::string& unit, int threads = 1) {
    rows_.push_back({metric, unit, value, threads});
  }

  /// Attaches a metrics-registry snapshot (flattened to name -> value) to
  /// the next Flush: the JSON gains a "registry" object alongside
  /// "results", so a bench run carries the server/engine counters that
  /// produced its numbers. Replaces any previously attached snapshot.
  void AttachRegistry(const observability::MetricsSnapshot& snapshot) {
    registry_ = snapshot.Flatten();
  }

  /// Writes the collected rows; further Records start a new batch.
  void Flush() {
    if (rows_.empty()) return;
    const char* dir = std::getenv("SVQ_BENCH_JSON_DIR");
    const std::string path = std::string(dir == nullptr ? "." : dir) +
                             "/BENCH_" + bench_name_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      rows_.clear();
      return;
    }
    out << "{\n  \"bench\": \"" << Escaped(bench_name_)
        << "\",\n  \"results\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      char value[64];
      std::snprintf(value, sizeof(value), "%.6g", row.value);
      out << "    {\"metric\": \"" << Escaped(row.metric)
          << "\", \"value\": " << value << ", \"unit\": \""
          << Escaped(row.unit) << "\", \"threads\": " << row.threads << "}"
          << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]";
    if (!registry_.empty()) {
      out << ",\n  \"registry\": {\n";
      for (size_t i = 0; i < registry_.size(); ++i) {
        char value[64];
        std::snprintf(value, sizeof(value), "%.17g", registry_[i].second);
        out << "    \"" << Escaped(registry_[i].first) << "\": " << value
            << (i + 1 < registry_.size() ? "," : "") << "\n";
      }
      out << "  }";
    }
    out << "\n}\n";
    std::printf("    wrote %s (%zu metrics)\n", path.c_str(), rows_.size());
    rows_.clear();
    registry_.clear();
  }

 private:
  struct Row {
    std::string metric;
    std::string unit;
    double value = 0.0;
    int threads = 1;
  };

  static std::string Escaped(const std::string& raw) {
    std::string out;
    for (const char c : raw) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_name_;
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, double>> registry_;
};

/// Workload scale factor: fraction of the paper's video lengths. Override
/// with SVQ_BENCH_SCALE for quicker/slower runs.
inline double ScaleFromEnv(double default_scale) {
  const char* env = std::getenv("SVQ_BENCH_SCALE");
  if (env == nullptr) return default_scale;
  const double value = std::atof(env);
  return value > 0.0 ? value : default_scale;
}

inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintNote(const std::string& note) {
  std::printf("    %s\n", note.c_str());
}

/// Aborts the bench with a readable message when a setup step fails.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace svq::benchutil

#endif  // SVQ_BENCH_BENCH_UTIL_H_
