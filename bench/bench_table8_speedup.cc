// Table 8: speedup of RVAQ against Pq-Traverse on Iron Man, Star Wars 3 and
// Titanic as K varies, plus the §5.3 accuracy note (RVAQ's top-ranked
// sequences vs the annotated ground truth).
//
// Expected shape (paper): ~3x speedup at small K, decaying towards ~1x when
// K reaches the number of result sequences; top-ranked precision high.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/offline_util.h"
#include "svq/eval/metrics.h"

int main() {
  using namespace svq::benchutil;
  const double scale = ScaleFromEnv(1.0);
  PrintTitle("Table 8: RVAQ speedup over Pq-Traverse on three movies");
  PrintNote("scale=" + std::to_string(scale));

  const auto movies =
      ValueOrDie(svq::eval::MoviesWorkload(/*seed=*/1207, scale), "movies");
  BenchJson json("table8_speedup");

  std::printf("%-24s", "Dataset");
  const std::vector<int> ks = {1, 3, 5, 7, 9, 11};
  for (const int k : ks) std::printf(" K=%-6d", k);
  std::printf(" max K\n");

  for (size_t m = 1; m < movies.size(); ++m) {  // iron_man, star_wars_3, titanic
    const OfflineSetup setup = IngestScenario(movies[m]);
    const auto candidates = ValueOrDie(
        svq::core::CandidateSequences(setup.ingested, setup.query),
        "candidates");
    const int max_k = std::max<int>(1, static_cast<int>(candidates.size()));

    std::printf("%-24s", movies[m].name.c_str());
    std::vector<int> all_ks = ks;
    all_ks.push_back(max_k);
    for (const int k : all_ks) {
      const auto traverse = RunAlgorithm(setup, "Pq-Traverse", k);
      const auto rvaq = RunAlgorithm(setup, "RVAQ", k);
      const double t_trav =
          traverse.stats.virtual_ms + traverse.stats.algorithm_ms;
      const double t_rvaq = rvaq.stats.virtual_ms + rvaq.stats.algorithm_ms;
      const double speedup = t_rvaq > 0 ? t_trav / t_rvaq : 0.0;
      json.Record(movies[m].name + "_rvaq_vs_traverse_k" + std::to_string(k),
                  speedup, "x");
      std::printf(" %-7.2f", speedup);
    }
    std::printf("  (max K = %d)\n", max_k);

    // §5.3 accuracy note: match RVAQ's ranked sequences against the
    // annotated ground truth.
    const auto top = RunAlgorithm(setup, "RVAQ", std::min(10, max_k));
    svq::video::IntervalSet predicted;
    for (const auto& seq : top.sequences) predicted.Add(seq.clips);
    const svq::video::IntervalSet truth =
        svq::eval::TruthFrames(*setup.video, setup.query)
            .CoarsenAny(setup.video->layout().FramesPerClip());
    const svq::eval::MatchStats match =
        svq::eval::SequenceMatch(predicted, truth, 0.5);
    std::printf("    top-%zu accuracy: precision=%.2f\n",
                top.sequences.size(), match.precision());
  }
  PrintNote("expected: ~2.5-4x at small K, ~1x at max K; precision high");
  return 0;
}
