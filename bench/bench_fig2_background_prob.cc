// Figure 2: F1 scores of SVAQ and SVAQD as the initial background
// probability p0 sweeps over [1e-6, 1e-1], for (a) {a=blowing_leaves,
// o1=car} and (b) {a=washing_dishes, o1=faucet}.
//
// Expected shape (paper): SVAQ peaks in a middle band of p0 and degrades at
// both extremes; SVAQD is nearly flat — its adaptive estimate makes the
// initial value immaterial.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "svq/core/online_engine.h"
#include "svq/eval/experiments.h"

namespace {

using svq::benchutil::PrintNote;
using svq::benchutil::PrintTitle;
using svq::benchutil::ValueOrDie;

void SweepQuery(int scenario_index, const std::string& object,
                double scale) {
  svq::eval::QueryScenario scenario = ValueOrDie(
      svq::eval::YouTubeScenario(scenario_index, /*seed=*/1207, scale),
      "workload");
  scenario.query.objects = {object};

  std::printf("%-10s | %-8s | %-8s\n", "p0", "SVAQ", "SVAQD");
  for (const double p0 : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 3e-2, 1e-1}) {
    svq::core::OnlineConfig config;
    config.initial_object_p = p0;
    config.initial_action_p = p0;
    const auto svaq = ValueOrDie(
        svq::eval::RunOnlineScenario(scenario, svq::models::MaskRcnnI3dSuite(),
                                     config,
                                     svq::core::OnlineEngine::Mode::kSvaq),
        "SVAQ run");
    const auto svaqd = ValueOrDie(
        svq::eval::RunOnlineScenario(scenario, svq::models::MaskRcnnI3dSuite(),
                                     config,
                                     svq::core::OnlineEngine::Mode::kSvaqd),
        "SVAQD run");
    std::printf("%-10.0e | %-8.3f | %-8.3f\n", p0,
                svaq.sequence_match.f1(), svaqd.sequence_match.f1());
  }
}

}  // namespace

int main() {
  const double scale = svq::benchutil::ScaleFromEnv(1.0);
  PrintTitle("Figure 2: F1 vs initial background probability p0");
  PrintNote("scale=" + std::to_string(scale) +
            " of the paper's video lengths (SVQ_BENCH_SCALE to change)");

  std::printf("\n(a) q:{a=blowing_leaves; o1=car}\n");
  SweepQuery(/*scenario_index=*/2, "car", scale);

  std::printf("\n(b) q:{a=washing_dishes; o1=faucet}\n");
  SweepQuery(/*scenario_index=*/1, "faucet", scale);

  PrintNote("expected: SVAQD row nearly flat; SVAQ degraded at extreme p0");
  return 0;
}
