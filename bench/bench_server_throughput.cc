// svqd serving throughput over loopback TCP: QPS and latency at 1/2/4/8
// closed-loop wire clients against an in-process server, the network-layer
// counterpart of bench_concurrent_queries (which measures the same workload
// without the socket, framing, and admission layers — the delta between the
// two is the serving overhead). Results land in BENCH_server_throughput.json.
//
// Expected shape: at equal client counts QPS tracks the in-process bench
// closely — one query costs milliseconds of engine work against tens of
// microseconds of framing — and p99 grows once clients exceed
// max_in_flight, as the tail waits in the admission queue.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "svq/core/engine.h"
#include "svq/server/client.h"
#include "svq/server/server.h"

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::shared_ptr<const svq::video::SyntheticVideo> MakeVideo(int index,
                                                            double scale) {
  svq::video::SyntheticVideoSpec spec;
  spec.name = "serving_" + std::to_string(index);
  spec.num_frames = static_cast<int64_t>(120000 * scale);
  spec.seed = 9100 + static_cast<uint64_t>(index);
  spec.actions.push_back({"smoking", 350.0, 4500.0});
  svq::video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.9;
  cup.coverage = 0.9;
  cup.mean_on_frames = 250.0;
  cup.mean_off_frames = 2600.0;
  spec.objects.push_back(cup);
  return svq::benchutil::ValueOrDie(
      svq::video::SyntheticVideo::Generate(spec), "video generation");
}

std::string Statement(int video) {
  return "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS serving_" +
         std::to_string(video) +
         " PRODUCE clipID, obj USING ObjectDetector, act USING "
         "ActionRecognizer) WHERE act='smoking' AND obj.include('cup') "
         "ORDER BY RANK(act, obj) LIMIT 5";
}

double Percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t rank = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[rank];
}

}  // namespace

int main() {
  using namespace svq::benchutil;
  const double scale = ScaleFromEnv(0.25);
  constexpr int kNumVideos = 4;
  constexpr int kQueriesPerClient = 24;
  const std::vector<int> kClientCounts = {1, 2, 4, 8};

  PrintTitle("svqd serving throughput: QPS and latency vs wire clients");
  PrintNote("scale=" + std::to_string(scale) + ", videos=" +
            std::to_string(kNumVideos) + ", queries/client=" +
            std::to_string(kQueriesPerClient) + ", loopback TCP");
  BenchJson json("server_throughput");

  svq::core::VideoQueryEngine engine;
  for (int i = 0; i < kNumVideos; ++i) {
    CheckOk(engine.AddVideo(MakeVideo(i, scale)).status(), "AddVideo");
  }
  CheckOk(engine.IngestAll(), "IngestAll");

  svq::server::ServerOptions options;
  options.port = 0;  // ephemeral
  options.max_in_flight = 4;
  options.max_queue = 64;  // closed-loop clients never overflow this
  svq::server::Server server(&engine, options);
  CheckOk(server.Start(), "server Start");

  for (const int clients : kClientCounts) {
    std::vector<std::vector<double>> latencies(
        static_cast<size_t>(clients));
    const double start = NowMs();
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c]() {
        svq::server::Client client;
        CheckOk(client.Connect("127.0.0.1", server.port()),
                "client Connect");
        std::vector<double>& mine = latencies[static_cast<size_t>(c)];
        mine.reserve(kQueriesPerClient);
        for (int q = 0; q < kQueriesPerClient; ++q) {
          const double begin = NowMs();
          auto response = client.Execute(Statement((c + q) % kNumVideos));
          mine.push_back(NowMs() - begin);
          CheckOk(response.status(), "Execute transport");
          CheckOk(response->status, "query");
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double wall_ms = NowMs() - start;

    std::vector<double> all;
    for (const std::vector<double>& batch : latencies) {
      all.insert(all.end(), batch.begin(), batch.end());
    }
    std::sort(all.begin(), all.end());
    const double total = static_cast<double>(all.size());
    const double qps = wall_ms > 0.0 ? total / (wall_ms / 1000.0) : 0.0;
    const double p50 = Percentile(all, 0.50);
    const double p99 = Percentile(all, 0.99);

    json.Record("qps", qps, "queries/s", clients);
    json.Record("latency_p50", p50, "ms", clients);
    json.Record("latency_p99", p99, "ms", clients);
    std::printf("  %d client(s): %7.2f QPS   p50 %7.2f ms   p99 %7.2f ms\n",
                clients, qps, p50, p99);
  }

  const svq::server::ServerStatsWire stats = server.Stats();
  std::printf("  server: accepted=%lld ok=%lld rejected=%lld\n",
              static_cast<long long>(stats.queries_accepted),
              static_cast<long long>(stats.queries_ok),
              static_cast<long long>(stats.queries_rejected));
  // The registry snapshot rides along in BENCH_server_throughput.json, so
  // every recorded QPS/latency figure carries the server/engine counters
  // (storage accesses, inference time, phase histograms) that produced it.
  json.AttachRegistry(server.Metrics());
  server.Shutdown();
  return 0;
}
