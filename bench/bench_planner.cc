// Cost-based planner: sweep-order gains on a skewed workload
// (docs/planner.md). The query intersects one rare action and one rare
// object with three dense, heavily fragmented object posting lists. The
// planner orders the interval sweep most-selective-first, so the running
// candidate set collapses on the first intersect and every later step
// merges against a near-empty set; the worst order (least selective
// first) drags a large fragmented intermediate through the whole sweep.
//
// Expected shape: planner order beats worst order on p50 sweep latency
// (the gap widens with predicate count and fragmentation), both orders
// produce bit-identical candidate sets, and the cost model auto-selects
// an algorithm whose candidate estimates land near the measured actuals.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "svq/core/engine.h"
#include "svq/core/rvaq.h"
#include "svq/plan/plan_ir.h"
#include "svq/plan/planner.h"
#include "svq/query/executor.h"

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t rank = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[rank];
}

/// Dense lists use short on/off periods so they fragment into many
/// intervals; the rare list is long-off so it is both small and selective.
svq::video::SyntheticObjectSpec Object(const char* label, double mean_on,
                                       double mean_off) {
  svq::video::SyntheticObjectSpec obj;
  obj.label = label;
  obj.mean_on_frames = mean_on;
  obj.mean_off_frames = mean_off;
  return obj;
}

}  // namespace

int main() {
  using namespace svq::benchutil;
  const double scale = ScaleFromEnv(0.5);
  const auto num_frames = static_cast<int64_t>(400000 * scale);
  constexpr int kReps = 25;

  PrintTitle("Planner: worst-order vs planner-order interval sweep");
  PrintNote("scale=" + std::to_string(scale) +
            ", frames=" + std::to_string(num_frames) +
            ", reps=" + std::to_string(kReps));
  BenchJson json("planner");

  svq::video::SyntheticVideoSpec spec;
  spec.name = "skewed";
  spec.num_frames = num_frames;
  spec.seed = 808;
  // Rare action (selective) ...
  spec.actions.push_back({"jumping", 300.0, 4500.0});
  // ... one rare object correlated with it (so the intersection is
  // non-empty), and three dense fragmented ones.
  auto dog = Object("dog", 150.0, 7000.0);
  dog.correlate_with_action = "jumping";
  dog.correlation = 0.9;
  dog.coverage = 0.9;
  spec.objects.push_back(dog);
  spec.objects.push_back(Object("car", 400.0, 120.0));
  spec.objects.push_back(Object("human", 350.0, 150.0));
  spec.objects.push_back(Object("bike", 300.0, 180.0));

  svq::core::VideoQueryEngine engine;
  const auto video = ValueOrDie(svq::video::SyntheticVideo::Generate(spec),
                                "SyntheticVideo::Generate");
  CheckOk(engine.AddVideo(video).status(), "AddVideo");
  CheckOk(engine.Ingest("skewed"), "Ingest");
  const auto ingested = engine.Ingested("skewed");
  if (ingested == nullptr) {
    std::fprintf(stderr, "ingested video missing\n");
    return 1;
  }

  svq::core::Query query;
  query.action = "jumping";
  query.objects = {"dog", "car", "human", "bike"};

  // Plan the statement against the pinned snapshot; the worst order is the
  // planner order reversed (least selective first).
  const auto plan = ValueOrDie(
      svq::plan::PlanQuery(engine.Pin(), query, "skewed", /*ranked=*/true,
                           /*k=*/5, svq::plan::AlgorithmChoice::kAuto,
                           svq::core::OfflineOptions()),
      "PlanQuery");
  std::vector<svq::core::SweepStep> planner_order = plan->SweepOrder();
  std::vector<svq::core::SweepStep> worst_order(planner_order.rbegin(),
                                                planner_order.rend());
  std::string order_note = "planner order:";
  for (const auto& step : planner_order) order_note += " " + step.label;
  PrintNote(order_note);

  // Both orders must produce the same candidate set (commutative sweep).
  const auto planner_candidates = ValueOrDie(
      svq::core::CandidateSequencesOrdered(*ingested, query, planner_order),
      "planner-order sweep");
  const auto worst_candidates = ValueOrDie(
      svq::core::CandidateSequencesOrdered(*ingested, query, worst_order),
      "worst-order sweep");
  if (!(planner_candidates == worst_candidates)) {
    std::fprintf(stderr, "sweep orders disagree on the candidate set\n");
    return 1;
  }

  std::vector<double> planner_ms, worst_ms;
  planner_ms.reserve(kReps);
  worst_ms.reserve(kReps);
  for (int rep = 0; rep < kReps; ++rep) {
    double begin = NowMs();
    auto worst = svq::core::CandidateSequencesOrdered(*ingested, query,
                                                      worst_order);
    worst_ms.push_back(NowMs() - begin);
    CheckOk(worst.status(), "worst-order sweep");

    begin = NowMs();
    auto ordered = svq::core::CandidateSequencesOrdered(*ingested, query,
                                                        planner_order);
    planner_ms.push_back(NowMs() - begin);
    CheckOk(ordered.status(), "planner-order sweep");
  }
  std::sort(planner_ms.begin(), planner_ms.end());
  std::sort(worst_ms.begin(), worst_ms.end());
  const double planner_p50 = Percentile(planner_ms, 0.50);
  const double worst_p50 = Percentile(worst_ms, 0.50);
  const double speedup = planner_p50 > 0.0 ? worst_p50 / planner_p50 : 0.0;

  // Auto-selection + estimate quality: execute the planned statement once
  // and compare the cost model's candidate estimate against the actuals.
  svq::query::StatementOptions options;
  const std::string statement =
      "SELECT MERGE(clipID), RANK(act, obj) "
      "FROM (PROCESS skewed PRODUCE clipID, obj USING ObjectTracker, "
      "act USING ActionRecognizer) "
      "WHERE act='jumping' AND "
      "obj.include('dog', 'car', 'human', 'bike') "
      "ORDER BY RANK(act, obj) LIMIT 5";
  const auto executed = ValueOrDie(
      svq::query::ExecuteStatement(&engine, statement, {}, options),
      "ExecuteStatement");
  const auto& run_plan = executed.plan;
  double estimate_error_pct = -1.0;
  int64_t actual_clips = 0;
  if (executed.topk.has_value()) {
    actual_clips = executed.topk->stats.candidate_clips;
    if (run_plan != nullptr && run_plan->estimated_candidate_clips >= 0.0 &&
        actual_clips > 0) {
      estimate_error_pct =
          100.0 *
          std::abs(run_plan->estimated_candidate_clips -
                   static_cast<double>(actual_clips)) /
          static_cast<double>(actual_clips);
    }
  }
  const char* chosen =
      run_plan != nullptr ? svq::plan::AlgorithmName(run_plan->algorithm)
                          : "unknown";

  json.Record("worst_order_p50", worst_p50, "ms");
  json.Record("planner_order_p50", planner_p50, "ms");
  json.Record("sweep_speedup_p50", speedup, "x");
  json.Record("candidate_sequences",
              static_cast<double>(planner_candidates.size()), "sequences");
  if (run_plan != nullptr) {
    json.Record("estimated_candidate_clips",
                run_plan->estimated_candidate_clips, "clips");
  }
  json.Record("actual_candidate_clips", static_cast<double>(actual_clips),
              "clips");
  if (estimate_error_pct >= 0.0) {
    json.Record("estimate_error", estimate_error_pct, "percent");
  }

  std::printf("  worst order:   p50 %8.3f ms\n", worst_p50);
  std::printf("  planner order: p50 %8.3f ms   speedup %.2fx\n", planner_p50,
              speedup);
  std::printf("  candidates: %zu sequences, %lld clips   "
              "auto-selected algorithm: %s\n",
              planner_candidates.size(),
              static_cast<long long>(actual_clips), chosen);
  if (estimate_error_pct >= 0.0) {
    std::printf("  candidate-clip estimate error: %.1f%%\n",
                estimate_error_pct);
  }
  if (speedup < 1.0) {
    std::fprintf(stderr,
                 "planner order slower than worst order (%.2fx)\n", speedup);
    return 1;
  }

  json.Flush();
  return 0;
}
