#ifndef SVQ_BENCH_OFFLINE_UTIL_H_
#define SVQ_BENCH_OFFLINE_UTIL_H_

// Shared setup for the offline (RVAQ) benches: ingest a scenario's video
// once, then run the four §5.1 algorithms and print paper-style
// "runtime; #random accesses" rows.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "svq/core/baselines.h"
#include "svq/core/ingest.h"
#include "svq/core/rvaq.h"
#include "svq/eval/workloads.h"
#include "svq/models/synthetic_models.h"

namespace svq::benchutil {

struct OfflineSetup {
  std::shared_ptr<const video::SyntheticVideo> video;
  core::IngestedVideo ingested;
  core::Query query;
  core::AdditiveScoring scoring;
  storage::DiskCostModel cost_model;
};

/// Ingests the (single-video) scenario with the workload-accuracy model
/// suite; aborts on failure.
inline OfflineSetup IngestScenario(const eval::QueryScenario& scenario) {
  if (scenario.videos.size() != 1) {
    std::fprintf(stderr, "offline benches need single-video scenarios\n");
    std::exit(1);
  }
  OfflineSetup setup;
  setup.video = scenario.videos[0];
  setup.query = scenario.query;
  models::ModelSuite suite = models::MaskRcnnI3dSuite();
  suite.object_profile = eval::ApplyWorkloadAccuracy(suite.object_profile);
  models::ModelSet models = models::MakeModelSet(setup.video, suite, {}, {});
  setup.ingested = ValueOrDie(
      core::IngestVideo(setup.video, 0, models.tracker.get(),
                        models.recognizer.get(), core::IngestOptions()),
      "ingestion");
  return setup;
}

/// Runs one offline algorithm and returns its result; aborts on failure.
inline core::TopKResult RunAlgorithm(const OfflineSetup& setup,
                                     const std::string& name, int k) {
  if (name == "FA") {
    return ValueOrDie(core::RunFagin(setup.ingested, setup.query, k,
                                     setup.scoring, setup.cost_model),
                      "FA");
  }
  if (name == "RVAQ-noSkip") {
    return ValueOrDie(core::RunRvaqNoSkip(setup.ingested, setup.query, k,
                                          setup.scoring, setup.cost_model),
                      "RVAQ-noSkip");
  }
  if (name == "Pq-Traverse") {
    return ValueOrDie(core::RunPqTraverse(setup.ingested, setup.query, k,
                                          setup.scoring, setup.cost_model),
                      "Pq-Traverse");
  }
  core::OfflineOptions options;
  options.cost_model = setup.cost_model;
  return ValueOrDie(
      core::RunRvaq(setup.ingested, setup.query, k, setup.scoring, options),
      "RVAQ");
}

/// "runtime (s); #random accesses (x1000)" cell in the paper's format.
inline std::string Cell(const core::TopKResult& result) {
  char buf[64];
  const double seconds =
      (result.stats.virtual_ms + result.stats.algorithm_ms) / 1000.0;
  if (result.stats.storage.random_accesses == 0) {
    std::snprintf(buf, sizeof(buf), "%6.1f; -", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%6.1f; %5.2f", seconds,
                  static_cast<double>(result.stats.storage.random_accesses) /
                      1000.0);
  }
  return buf;
}

}  // namespace svq::benchutil

#endif  // SVQ_BENCH_OFFLINE_UTIL_H_
