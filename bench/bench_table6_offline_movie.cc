// Table 6: runtime and number of random disk accesses for FA, RVAQ-noSkip,
// Pq-Traverse and RVAQ on the movie "Coffee and Cigarettes"
// (q:{smoking; wine_glass, cup}) as K varies.
//
// Expected shape (paper): FA worst by a wide margin; RVAQ-noSkip pays for
// un-skipped clips; Pq-Traverse constant in K; RVAQ cheapest at small K and
// approaching Pq-Traverse as K reaches the number of result sequences.

#include <cstdio>
#include <vector>

#include "bench/offline_util.h"

int main() {
  using namespace svq::benchutil;
  const double scale = ScaleFromEnv(1.0);
  PrintTitle("Table 6: performance on movie Coffee and Cigarettes");
  PrintNote("scale=" + std::to_string(scale) +
            "; cells are 'virtual runtime (s); random accesses (x1000)'");

  const auto movies =
      ValueOrDie(svq::eval::MoviesWorkload(/*seed=*/1207, scale), "movies");
  const OfflineSetup setup = IngestScenario(movies[0]);
  const auto candidates =
      ValueOrDie(svq::core::CandidateSequences(setup.ingested, setup.query),
                 "candidates");
  PrintNote("candidate result sequences: " + std::to_string(candidates.size()));

  const std::vector<int> ks = {1, 5, 9, 11, 13, 15};
  const char* algorithms[] = {"FA", "RVAQ-noSkip", "Pq-Traverse", "RVAQ"};

  std::printf("%-13s", "Methods");
  for (const int k : ks) std::printf(" | K=%-11d", k);
  std::printf("\n");
  for (const char* algorithm : algorithms) {
    std::printf("%-13s", algorithm);
    for (const int k : ks) {
      const svq::core::TopKResult result =
          RunAlgorithm(setup, algorithm, k);
      std::printf(" | %-13s", Cell(result).c_str());
    }
    std::printf("\n");
  }
  PrintNote("expected ordering at small K: FA >> RVAQ-noSkip > Pq-Traverse "
            "> RVAQ; Pq-Traverse flat in K");
  return 0;
}
