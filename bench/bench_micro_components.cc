// Micro benchmarks of the core components: scan-statistic tails, critical
// values, the kernel estimator, interval algebra, and score-table access
// paths. These quantify the per-clip algorithm overhead that the paper's
// §5.2 reports as <2% of query latency.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "svq/common/rng.h"
#include "svq/core/clip_indicator.h"
#include "svq/core/kcrit_cache.h"
#include "svq/models/synthetic_models.h"
#include "svq/stats/kernel_estimator.h"
#include "svq/stats/scan_statistics.h"
#include "svq/storage/score_table.h"
#include "svq/video/interval_set.h"
#include "svq/video/video_stream.h"

namespace {

void BM_ScanTailProbability(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  const int k = window / 4 + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        svq::stats::ScanTailProbability(k, {1e-3, window, 200.0}));
  }
}
BENCHMARK(BM_ScanTailProbability)->Arg(25)->Arg(80)->Arg(250);

void BM_CriticalValue(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        svq::stats::CriticalValue({1e-3, window, 200.0}, 0.05));
  }
}
BENCHMARK(BM_CriticalValue)->Arg(25)->Arg(80)->Arg(250);

void BM_CriticalValueCached(benchmark::State& state) {
  svq::core::CriticalValueCache cache(80, 200.0, 0.05);
  svq::Rng rng(1);
  for (auto _ : state) {
    // Rates wander a little, as SVAQD's estimates do.
    benchmark::DoNotOptimize(cache.Get(1e-3 * (1.0 + 0.1 * rng.NextDouble())));
  }
}
BENCHMARK(BM_CriticalValueCached);

void BM_KernelEstimatorStep(benchmark::State& state) {
  auto est = *svq::stats::KernelRateEstimator::Create({4096.0, 1e-4, 0});
  svq::Rng rng(2);
  for (auto _ : state) {
    est.Step(rng.NextBernoulli(0.01));
    benchmark::DoNotOptimize(est.rate());
  }
}
BENCHMARK(BM_KernelEstimatorStep);

void BM_IntervalIntersect(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  svq::video::IntervalSet a, b;
  for (int i = 0; i < n; ++i) {
    a.Add({i * 10, i * 10 + 6});
    b.Add({i * 10 + 3, i * 10 + 9});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(svq::video::IntervalSet::Intersect(a, b));
  }
}
BENCHMARK(BM_IntervalIntersect)->Arg(100)->Arg(10000);

void BM_EvaluateClip(benchmark::State& state) {
  svq::video::SyntheticVideoSpec spec;
  spec.name = "micro";
  spec.num_frames = 80000;
  spec.seed = 5;
  spec.actions.push_back({"jumping", 400.0, 4500.0});
  svq::video::SyntheticObjectSpec car;
  car.label = "car";
  car.correlate_with_action = "jumping";
  car.correlation = 0.9;
  car.coverage = 0.9;
  car.mean_on_frames = 250.0;
  car.mean_off_frames = 2400.0;
  spec.objects.push_back(car);
  auto video = *svq::video::SyntheticVideo::Generate(spec);
  svq::core::Query query;
  query.action = "jumping";
  query.objects = {"car"};
  auto models = svq::models::MakeModelSet(
      video, svq::models::MaskRcnnI3dSuite(), {"car"}, {"jumping"});
  const svq::core::OnlineConfig config;
  svq::video::SyntheticVideoStream stream(video, 0);
  std::vector<svq::video::ClipRef> clips;
  while (auto clip = stream.NextClip()) clips.push_back(*clip);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svq::core::EvaluateClip(
        clips[i++ % clips.size()], query, config, {2}, {2},
        models.detector.get(), models.recognizer.get()));
  }
}
BENCHMARK(BM_EvaluateClip);

void BM_DiskTableRandomAccess(benchmark::State& state) {
  const std::string path = "/tmp/svq_bench_table.svqt";
  std::vector<svq::storage::ClipScoreRow> rows;
  svq::Rng rng(9);
  for (int i = 0; i < 50000; ++i) rows.push_back({i, rng.NextDouble()});
  (void)svq::storage::DiskScoreTable::Write(path, std::move(rows));
  auto table = *svq::storage::DiskScoreTable::Open(path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table->ScoreOf(static_cast<int64_t>(rng.NextUint64(50000))));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_DiskTableRandomAccess);

void BM_MemoryTableRandomAccess(benchmark::State& state) {
  std::vector<svq::storage::ClipScoreRow> rows;
  svq::Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    rows.push_back({i, rng.NextDouble()});
  }
  auto table = *svq::storage::MemoryScoreTable::Create(std::move(rows));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table->ScoreOf(static_cast<int64_t>(rng.NextUint64(100000))));
  }
}
BENCHMARK(BM_MemoryTableRandomAccess);

}  // namespace

BENCHMARK_MAIN();
