// Figure 5: frame-level F1 scores with different clip sizes, for
// q:{blowing_leaves; car} and q:{washing_dishes; faucet}.
//
// Expected shape (paper): frame-level accuracy has low dependency on the
// clip size — the clip size changes how results are fragmented into
// sequences, not which frames they cover.

#include <cstdio>

#include "bench/bench_util.h"
#include "svq/core/online_engine.h"
#include "svq/eval/experiments.h"

namespace {

using svq::benchutil::ValueOrDie;

void Sweep(int scenario_index, const std::string& object, double scale) {
  svq::eval::QueryScenario base = ValueOrDie(
      svq::eval::YouTubeScenario(scenario_index, /*seed=*/1207, scale),
      "workload");
  base.query.objects = {object};

  std::printf("%-12s %-10s %-12s %-10s\n", "clip frames", "frame F1",
              "precision", "recall");
  for (const int shots_per_clip : {3, 4, 5, 8, 10}) {
    svq::video::VideoLayout layout;
    layout.shots_per_clip = shots_per_clip;
    const svq::eval::QueryScenario scenario =
        ValueOrDie(svq::eval::WithLayout(base, layout), "relayout");
    // Strict Eq. 4 merging, matching Figure 4's setting.
    svq::core::OnlineConfig config;
    config.merge_gap_clips = 0;
    const auto outcome = ValueOrDie(
        svq::eval::RunOnlineScenario(scenario, svq::models::MaskRcnnI3dSuite(),
                                     config,
                                     svq::core::OnlineEngine::Mode::kSvaqd),
        "run");
    std::printf("%-12d %-10.3f %-12.3f %-10.3f\n", layout.FramesPerClip(),
                outcome.frame_match.f1(), outcome.frame_match.precision(),
                outcome.frame_match.recall());
  }
}

}  // namespace

int main() {
  const double scale = svq::benchutil::ScaleFromEnv(1.0);
  svq::benchutil::PrintTitle("Figure 5: frame-level F1 vs clip size");
  svq::benchutil::PrintNote("scale=" + std::to_string(scale));

  std::printf("\n(a) q:{a=blowing_leaves; o1=car}\n");
  Sweep(2, "car", scale);
  std::printf("\n(b) q:{a=washing_dishes; o1=faucet}\n");
  Sweep(1, "faucet", scale);

  svq::benchutil::PrintNote("expected: frame-level F1 flat across clip sizes");
  return 0;
}
