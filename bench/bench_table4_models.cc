// Table 4: F1 of SVAQ and SVAQD under different detection model suites for
// q:{a=blowing_leaves; o1=car}.
//
// Expected shape (paper): MaskRCNN+I3D > YOLOv3+I3D; Ideal models -> 1.0
// (the residual error of the algorithms is the models' error).

#include <cstdio>

#include "bench/bench_util.h"
#include "svq/core/online_engine.h"
#include "svq/eval/experiments.h"

int main() {
  using svq::benchutil::ValueOrDie;
  const double scale = svq::benchutil::ScaleFromEnv(1.0);
  svq::benchutil::PrintTitle(
      "Table 4: F1 under different detection models, "
      "q:{a=blowing_leaves; o1=car}");
  svq::benchutil::PrintNote("scale=" + std::to_string(scale));

  svq::eval::QueryScenario scenario = ValueOrDie(
      svq::eval::YouTubeScenario(2, /*seed=*/1207, scale), "workload");
  scenario.query.objects = {"car"};

  struct Row {
    const char* name;
    svq::models::ModelSuite suite;
  };
  const Row rows[] = {
      {"MaskRCNN+I3D", svq::models::MaskRcnnI3dSuite()},
      {"YOLOv3+I3D", svq::models::YoloV3I3dSuite()},
      {"Ideal Models", svq::models::IdealSuite()},
  };

  std::printf("%-16s %-7s %-7s\n", "Models", "SVAQ", "SVAQD");
  for (const Row& row : rows) {
    const auto svaq = ValueOrDie(
        svq::eval::RunOnlineScenario(scenario, row.suite,
                                     svq::core::OnlineConfig(),
                                     svq::core::OnlineEngine::Mode::kSvaq),
        "SVAQ");
    const auto svaqd = ValueOrDie(
        svq::eval::RunOnlineScenario(scenario, row.suite,
                                     svq::core::OnlineConfig(),
                                     svq::core::OnlineEngine::Mode::kSvaqd),
        "SVAQD");
    std::printf("%-16s %-7.2f %-7.2f\n", row.name, svaq.sequence_match.f1(),
                svaqd.sequence_match.f1());
  }
  svq::benchutil::PrintNote(
      "expected: MaskRCNN >= YOLOv3; Ideal ~ 1.0 for both algorithms");
  return 0;
}
