// Figure 4: number of result sequences found with different clip sizes,
// for q:{blowing_leaves; car} and q:{washing_dishes; faucet}.
//
// Expected shape (paper): smaller clips -> more (shorter) sequences; larger
// clips -> fewer (longer) sequences; the total number of frames covered by
// the results stays roughly stable.

#include <cstdio>

#include "bench/bench_util.h"
#include "svq/core/online_engine.h"
#include "svq/eval/experiments.h"

namespace {

using svq::benchutil::ValueOrDie;

void Sweep(int scenario_index, const std::string& object, double scale) {
  svq::eval::QueryScenario base = ValueOrDie(
      svq::eval::YouTubeScenario(scenario_index, /*seed=*/1207, scale),
      "workload");
  base.query.objects = {object};

  std::printf("%-12s %-12s %-14s %-16s\n", "clip frames", "shots/clip",
              "#sequences", "result frames");
  for (const int shots_per_clip : {3, 4, 5, 8, 10}) {
    svq::video::VideoLayout layout;
    layout.shots_per_clip = shots_per_clip;
    const svq::eval::QueryScenario scenario =
        ValueOrDie(svq::eval::WithLayout(base, layout), "relayout");
    // Strict Eq. 4 merging: this figure studies the paper's own
    // fragmentation behaviour, so gap filling is off.
    svq::core::OnlineConfig config;
    config.merge_gap_clips = 0;
    const auto outcome = ValueOrDie(
        svq::eval::RunOnlineScenario(scenario, svq::models::MaskRcnnI3dSuite(),
                                     config,
                                     svq::core::OnlineEngine::Mode::kSvaqd),
        "run");
    std::printf("%-12d %-12d %-14lld %-16lld\n", layout.FramesPerClip(),
                shots_per_clip,
                static_cast<long long>(outcome.num_result_sequences),
                static_cast<long long>(outcome.result_frames));
  }
}

}  // namespace

int main() {
  const double scale = svq::benchutil::ScaleFromEnv(1.0);
  svq::benchutil::PrintTitle("Figure 4: #result sequences vs clip size");
  svq::benchutil::PrintNote("scale=" + std::to_string(scale));

  std::printf("\n(a) q:{a=blowing_leaves; o1=car}\n");
  Sweep(2, "car", scale);
  std::printf("\n(b) q:{a=washing_dishes; o1=faucet}\n");
  Sweep(1, "faucet", scale);

  svq::benchutil::PrintNote(
      "expected: #sequences decreases as the clip grows; result frames "
      "roughly stable");
  return 0;
}
