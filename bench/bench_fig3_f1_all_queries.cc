// Figure 3: F1 scores of SVAQ (fixed p0 = 1e-4, the peak of Figure 2) and
// SVAQD for all twelve YouTube queries of Table 1.
//
// Expected shape (paper): SVAQD >= SVAQ on every query.

#include <cstdio>

#include "bench/bench_util.h"
#include "svq/core/online_engine.h"
#include "svq/eval/experiments.h"

int main() {
  using svq::benchutil::ValueOrDie;
  const double scale = svq::benchutil::ScaleFromEnv(1.0);
  svq::benchutil::PrintTitle(
      "Figure 3: F1 of SVAQ (p0=1e-4) vs SVAQD on q1..q12");
  svq::benchutil::PrintNote("scale=" + std::to_string(scale));

  svq::core::OnlineConfig config;
  config.initial_object_p = 1e-4;
  config.initial_action_p = 1e-4;

  std::printf("%-5s %-22s %-8s %-8s\n", "q", "action", "SVAQ", "SVAQD");
  int svaqd_wins = 0;
  for (int i = 1; i <= 12; ++i) {
    const svq::eval::QueryScenario scenario =
        ValueOrDie(svq::eval::YouTubeScenario(i, /*seed=*/1207, scale),
                   "workload");
    const auto svaq = ValueOrDie(
        svq::eval::RunOnlineScenario(scenario, svq::models::MaskRcnnI3dSuite(),
                                     config,
                                     svq::core::OnlineEngine::Mode::kSvaq),
        "SVAQ");
    const auto svaqd = ValueOrDie(
        svq::eval::RunOnlineScenario(scenario, svq::models::MaskRcnnI3dSuite(),
                                     config,
                                     svq::core::OnlineEngine::Mode::kSvaqd),
        "SVAQD");
    if (svaqd.sequence_match.f1() >= svaq.sequence_match.f1()) ++svaqd_wins;
    std::printf("%-5s %-22s %-8.3f %-8.3f\n", scenario.name.c_str(),
                scenario.query.action.c_str(), svaq.sequence_match.f1(),
                svaqd.sequence_match.f1());
  }
  std::printf("SVAQD >= SVAQ on %d of 12 queries\n", svaqd_wins);
  return 0;
}
