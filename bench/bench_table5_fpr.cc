// Table 5: false positive rate of action/object detection without vs with
// SVAQD, for q:{blowing_leaves; car} and q:{washing_dishes; faucet}.
//
// Expected shape (paper): SVAQD's scan-statistic gating removes 50-80%+ of
// the raw model false positives.

#include <cstdio>

#include "bench/bench_util.h"
#include "svq/eval/experiments.h"

int main() {
  using svq::benchutil::ValueOrDie;
  const double scale = svq::benchutil::ScaleFromEnv(1.0);
  svq::benchutil::PrintTitle(
      "Table 5: FPR of action/object detection without vs with SVAQD");
  svq::benchutil::PrintNote("scale=" + std::to_string(scale));

  struct Row {
    int scenario_index;
    const char* object;
  };
  const Row rows[] = {{2, "car"}, {1, "faucet"}};

  std::printf("%-42s | action FPR w/o | w/    | object FPR w/o | w/\n",
              "Query");
  for (const Row& row : rows) {
    svq::eval::QueryScenario scenario = ValueOrDie(
        svq::eval::YouTubeScenario(row.scenario_index, /*seed=*/1207, scale),
        "workload");
    scenario.query.objects = {row.object};
    const auto fpr = ValueOrDie(
        svq::eval::MeasureFpr(scenario, svq::models::MaskRcnnI3dSuite(),
                              svq::core::OnlineConfig()),
        "FPR measurement");
    std::printf("a=%-20s o1=%-16s | %-14.3f | %-5.3f | %-14.3f | %-5.3f\n",
                scenario.query.action.c_str(), row.object, fpr.action_raw,
                fpr.action_svaqd, fpr.object_raw, fpr.object_svaqd);
    if (fpr.action_raw > 0) {
      std::printf("    action FP reduction: %.0f%%   object FP reduction: "
                  "%.0f%%\n",
                  100.0 * (1.0 - fpr.action_svaqd / fpr.action_raw),
                  fpr.object_raw > 0
                      ? 100.0 * (1.0 - fpr.object_svaqd / fpr.object_raw)
                      : 0.0);
    }
  }
  svq::benchutil::PrintNote("expected: w/ SVAQD columns 50-80%+ lower");
  return 0;
}
