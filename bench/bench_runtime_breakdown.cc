// §5.2 "Runtime Superiority": online query latency decomposes into model
// inference (>98%) and algorithm overhead (<2%); an end-to-end model
// fine-tuned per query would cost orders of magnitude more.
//
// Model inference is virtual time from the model profiles (a real GPU
// deployment is charged per frame/shot); the algorithm time is measured
// wall clock. The end-to-end baseline uses the paper's reported cost
// structure: >60 h of fine-tuning + per-shot inference, per query.

#include <cstdio>

#include "bench/bench_util.h"
#include "svq/core/online_engine.h"
#include "svq/eval/experiments.h"

int main() {
  using svq::benchutil::ValueOrDie;
  const double scale = svq::benchutil::ScaleFromEnv(1.0);
  svq::benchutil::PrintTitle("§5.2 Runtime breakdown (online, SVAQD)");
  svq::benchutil::PrintNote("scale=" + std::to_string(scale));

  std::printf("%-5s %-14s %-14s %-12s\n", "q", "model (min)", "algo (ms)",
              "model share");
  double total_model_min = 0.0;
  for (int i = 1; i <= 12; i += 3) {  // a representative sample
    const svq::eval::QueryScenario scenario = ValueOrDie(
        svq::eval::YouTubeScenario(i, /*seed=*/1207, scale), "workload");
    const auto outcome = ValueOrDie(
        svq::eval::RunOnlineScenario(scenario, svq::models::MaskRcnnI3dSuite(),
                                     svq::core::OnlineConfig(),
                                     svq::core::OnlineEngine::Mode::kSvaqd),
        "run");
    const double model_min = outcome.model_ms / 60000.0;
    total_model_min += model_min;
    const double share =
        outcome.model_ms / (outcome.model_ms + outcome.algorithm_ms);
    std::printf("q%-4d %-14.1f %-14.1f %.4f%%\n", i, model_min,
                outcome.algorithm_ms, 100.0 * share);
  }

  // End-to-end baseline (paper: >60 h fine-tuning per query predicate
  // combination, then full-video inference with the combined model).
  const double end_to_end_training_min = 60.0 * 60.0;
  std::printf("\nEnd-to-end fine-tuned model baseline (per query):\n");
  std::printf("  training (min):        %.0f\n", end_to_end_training_min);
  std::printf("  vs SVAQD avg query processing (min): %.1f\n",
              total_model_min / 4.0);
  std::printf("  end-to-end / SVAQD cost ratio: %.0fx\n",
              end_to_end_training_min / (total_model_min / 4.0));
  svq::benchutil::PrintNote(
      "expected: model inference dominates (>98%); end-to-end baseline "
      "costs 10-100x more per query");
  return 0;
}
