// Table 3: F1 scores of queries with varying object predicates for the
// blowing_leaves and washing_dishes families.
//
// Expected shape (paper): adding a highly-correlated, accurately-detected
// predicate (person) raises F1; adding weakly-detected predicates (faucet)
// lowers it; more predicates generally mean slightly lower F1.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "svq/core/online_engine.h"
#include "svq/eval/experiments.h"

namespace {

using svq::benchutil::ValueOrDie;

void RunFamily(int scenario_index,
               const std::vector<std::vector<std::string>>& variants,
               double scale) {
  const svq::eval::QueryScenario base = ValueOrDie(
      svq::eval::YouTubeScenario(scenario_index, /*seed=*/1207, scale),
      "workload");
  for (const std::vector<std::string>& objects : variants) {
    svq::eval::QueryScenario scenario = base;
    scenario.query.objects = objects;
    std::string label = "a=" + scenario.query.action;
    for (size_t i = 0; i < objects.size(); ++i) {
      label += ", o" + std::to_string(i + 1) + "=" + objects[i];
    }
    const auto svaq = ValueOrDie(
        svq::eval::RunOnlineScenario(scenario, svq::models::MaskRcnnI3dSuite(),
                                     svq::core::OnlineConfig(),
                                     svq::core::OnlineEngine::Mode::kSvaq),
        "SVAQ");
    const auto svaqd = ValueOrDie(
        svq::eval::RunOnlineScenario(scenario, svq::models::MaskRcnnI3dSuite(),
                                     svq::core::OnlineConfig(),
                                     svq::core::OnlineEngine::Mode::kSvaqd),
        "SVAQD");
    std::printf("%-62s %-7.2f %-7.2f\n", label.c_str(),
                svaq.sequence_match.f1(), svaqd.sequence_match.f1());
  }
}

}  // namespace

int main() {
  const double scale = svq::benchutil::ScaleFromEnv(1.0);
  svq::benchutil::PrintTitle(
      "Table 3: F1 of queries with varying object predicates");
  svq::benchutil::PrintNote("scale=" + std::to_string(scale));
  std::printf("%-62s %-7s %-7s\n", "Query", "SVAQ", "SVAQD");

  RunFamily(/*q2=*/2,
            {{},
             {"person"},
             {"plant"},
             {"car"},
             {"person", "car"},
             {"person", "plant", "car"}},
            scale);
  RunFamily(/*q1=*/1,
            {{},
             {"person"},
             {"oven"},
             {"faucet"},
             {"faucet", "oven"},
             {"person", "faucet", "oven"}},
            scale);
  svq::benchutil::PrintNote(
      "expected: +person helps (accurate, correlated); +faucet hurts "
      "(weak detector); more predicates -> slightly lower F1");
  return 0;
}
