// Streaming subsystem throughput: events/sec through the StreamDispatcher
// and the shared-inference saving of multiplexed standing queries
// (docs/streaming.md). Phase A runs ONE standing query over a live feed;
// phase B runs EIGHT subscribers with the same (overlapping) workload on
// one feed. Because the dispatcher runs each distinct model once per clip
// and fans the outputs out, phase B's actual model invocations should
// match phase A's (ratio <= ~1.1x) while the subscribers are *charged*
// eight query-worths — the savings factor. Results land in
// BENCH_stream_throughput.json.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "svq/core/engine.h"
#include "svq/stream/dispatcher.h"

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::shared_ptr<const svq::video::SyntheticVideo> MakeVideo(double scale) {
  svq::video::SyntheticVideoSpec spec;
  spec.name = "feed_video";
  spec.num_frames = static_cast<int64_t>(120000 * scale);
  spec.seed = 4400;
  spec.actions.push_back({"smoking", 350.0, 4500.0});
  svq::video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.9;
  cup.coverage = 0.9;
  cup.mean_on_frames = 250.0;
  cup.mean_off_frames = 2600.0;
  spec.objects.push_back(cup);
  return svq::benchutil::ValueOrDie(
      svq::video::SyntheticVideo::Generate(spec), "video generation");
}

constexpr const char* kStatement =
    "SELECT MERGE(clipID) FROM (PROCESS feed_video PRODUCE clipID, obj "
    "USING ObjectDetector, act USING ActionRecognizer) "
    "WHERE act='smoking' AND obj.include('cup')";

struct PhaseResult {
  double wall_ms = 0.0;
  svq::stream::DispatcherStats stats;
};

/// Runs `subscribers` standing copies of the statement over one feed,
/// driving the feed to exhaustion, and returns the dispatcher counters.
PhaseResult RunPhase(svq::core::VideoQueryEngine* engine, int subscribers) {
  using namespace svq::benchutil;
  svq::stream::StreamOptions options;
  options.event_queue_capacity = 1u << 16;  // hold everything; no drops
  svq::stream::StreamDispatcher dispatcher(engine, options);
  std::vector<svq::stream::SubscriptionPtr> subs;
  for (int i = 0; i < subscribers; ++i) {
    subs.push_back(ValueOrDie(dispatcher.Subscribe("live", kStatement),
                              "Subscribe"));
  }
  const double start = NowMs();
  while (true) {
    auto progress = dispatcher.FeedClips("live", 256);
    CheckOk(progress.status(), "FeedClips");
    if (progress->closed) break;
  }
  PhaseResult result;
  result.wall_ms = NowMs() - start;
  result.stats = dispatcher.Stats();
  // Sanity: every subscriber reached its terminal event and nothing was
  // dropped (the queue was sized to hold the whole run).
  for (const auto& sub : subs) {
    if (!sub->finished() || sub->dropped_total() != 0) {
      std::fprintf(stderr, "subscriber did not finish cleanly\n");
      std::exit(1);
    }
  }
  return result;
}

}  // namespace

int main() {
  using namespace svq::benchutil;
  const double scale = ScaleFromEnv(0.25);
  constexpr int kFleet = 8;

  PrintTitle("streaming subsystem: standing-query fan-out throughput");
  PrintNote("scale=" + std::to_string(scale) + ", fleet=" +
            std::to_string(kFleet) + " subscribers, one shared feed");
  BenchJson json("stream_throughput");

  svq::core::VideoQueryEngine engine;
  CheckOk(engine.AddVideo(MakeVideo(scale)).status(), "AddVideo");
  CheckOk(engine.IngestAll(), "IngestAll");

  const PhaseResult single = RunPhase(&engine, 1);
  const PhaseResult fleet = RunPhase(&engine, kFleet);

  const auto per_sec = [](int64_t count, double wall_ms) {
    return wall_ms > 0.0 ? static_cast<double>(count) / (wall_ms / 1000.0)
                         : 0.0;
  };
  const double single_events_s =
      per_sec(single.stats.events_pushed, single.wall_ms);
  const double fleet_events_s =
      per_sec(fleet.stats.events_pushed, fleet.wall_ms);
  const double single_clips_s =
      per_sec(single.stats.clips_dispatched, single.wall_ms);
  const double fleet_clips_s =
      per_sec(fleet.stats.clips_dispatched, fleet.wall_ms);
  // The headline: the fleet's actual model invocations vs one query's.
  const double invocation_ratio =
      single.stats.model_units_run > 0
          ? static_cast<double>(fleet.stats.model_units_run) /
                static_cast<double>(single.stats.model_units_run)
          : 0.0;
  // And what dedicated per-query models would have cost instead.
  const double savings_factor =
      fleet.stats.model_units_run > 0
          ? static_cast<double>(fleet.stats.model_units_charged) /
                static_cast<double>(fleet.stats.model_units_run)
          : 0.0;

  json.Record("events_per_sec", single_events_s, "events/s", 1);
  json.Record("events_per_sec", fleet_events_s, "events/s", kFleet);
  json.Record("clips_per_sec", single_clips_s, "clips/s", 1);
  json.Record("clips_per_sec", fleet_clips_s, "clips/s", kFleet);
  json.Record("model_units_run", static_cast<double>(
                                     single.stats.model_units_run),
              "units", 1);
  json.Record("model_units_run",
              static_cast<double>(fleet.stats.model_units_run), "units",
              kFleet);
  json.Record("model_units_charged",
              static_cast<double>(fleet.stats.model_units_charged), "units",
              kFleet);
  json.Record("shared_inference_invocation_ratio", invocation_ratio, "x",
              kFleet);
  json.Record("shared_inference_savings_factor", savings_factor, "x",
              kFleet);

  std::printf("  1 subscriber : %9.1f events/s  %9.1f clips/s  "
              "%lld model units\n",
              single_events_s, single_clips_s,
              static_cast<long long>(single.stats.model_units_run));
  std::printf("  %d subscribers: %9.1f events/s  %9.1f clips/s  "
              "%lld model units (charged %lld)\n",
              kFleet, fleet_events_s, fleet_clips_s,
              static_cast<long long>(fleet.stats.model_units_run),
              static_cast<long long>(fleet.stats.model_units_charged));
  std::printf("  shared inference: %.3fx the single-query invocations "
              "(acceptance <= 1.1x), %.2fx saving vs dedicated models\n",
              invocation_ratio, savings_factor);
  if (invocation_ratio > 1.1) {
    std::fprintf(stderr,
                 "FAIL: fleet ran %.3fx the single-query model "
                 "invocations (expected <= 1.1x)\n",
                 invocation_ratio);
    return 1;
  }
  return 0;
}
