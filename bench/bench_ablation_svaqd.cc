// Ablations of the SVAQD design choices called out in DESIGN.md:
//  1. estimator update policy (null-only vs marginal vs positive-clip),
//  2. action background-sampling period,
//  3. scan-statistic reference horizon L.
//
// These quantify why the defaults are what they are; the paper leaves the
// corresponding knobs implicit.

#include <cstdio>

#include "bench/bench_util.h"
#include "svq/core/online_engine.h"
#include "svq/eval/experiments.h"

namespace {

using svq::benchutil::ValueOrDie;

double RunF1(const svq::eval::QueryScenario& scenario,
             const svq::core::OnlineConfig& config) {
  return ValueOrDie(
             svq::eval::RunOnlineScenario(
                 scenario, svq::models::MaskRcnnI3dSuite(), config,
                 svq::core::OnlineEngine::Mode::kSvaqd),
             "run")
      .sequence_match.f1();
}

}  // namespace

int main() {
  const double scale = svq::benchutil::ScaleFromEnv(1.0);
  svq::benchutil::PrintTitle("SVAQD design ablations");
  svq::benchutil::PrintNote("scale=" + std::to_string(scale) +
                            "; q:{blowing_leaves; car}");

  svq::eval::QueryScenario scenario = ValueOrDie(
      svq::eval::YouTubeScenario(2, /*seed=*/1207, scale), "workload");
  scenario.query.objects = {"car"};

  std::printf("\n(1) estimator update policy\n");
  {
    svq::core::OnlineConfig config;
    config.update_policy = svq::core::UpdatePolicy::kNegativeUnits;
    std::printf("  %-18s F1=%.3f   (default: null-rate estimate)\n",
                "negative-units", RunF1(scenario, config));
    config.update_policy = svq::core::UpdatePolicy::kEveryClip;
    std::printf("  %-18s F1=%.3f   (marginal estimate)\n", "every-clip",
                RunF1(scenario, config));
    config.update_policy = svq::core::UpdatePolicy::kPositiveClip;
    std::printf("  %-18s F1=%.3f   (Alg. 3 literal)\n", "positive-clip",
                RunF1(scenario, config));
  }

  std::printf("\n(2) action background-sampling period\n");
  for (const int64_t period : {0, 4, 8, 32}) {
    svq::core::OnlineConfig config;
    config.action_null_sampling_period = period;
    std::printf("  period=%-11lld F1=%.3f\n",
                static_cast<long long>(period), RunF1(scenario, config));
  }

  std::printf("\n(3) scan-statistic reference horizon L\n");
  for (const double l : {20.0, 100.0, 200.0, 1000.0}) {
    svq::core::OnlineConfig config;
    config.reference_windows = l;
    std::printf("  L=%-16.0f F1=%.3f\n", l, RunF1(scenario, config));
  }

  std::printf("\n(4) sequence gap filling (0 = paper Eq. 4 strict merge)\n");
  for (const int64_t gap : {0, 1, 2, 4}) {
    svq::core::OnlineConfig config;
    config.merge_gap_clips = gap;
    std::printf("  merge_gap=%-8lld F1=%.3f\n", static_cast<long long>(gap),
                RunF1(scenario, config));
  }

  std::printf(
      "\n(5) Markov-dependent action null (paper footnote 7, exact FMCE)\n");
  for (const bool markov : {false, true}) {
    svq::core::OnlineConfig config;
    config.markov_action_null = markov;
    std::printf("  markov=%-11s F1=%.3f\n", markov ? "on" : "off",
                RunF1(scenario, config));
  }

  std::printf(
      "\n(6) predicate ordering (paper footnote 5 future work)\n");
  {
    struct Row {
      const char* name;
      svq::core::OnlineConfig::PredicateOrder order;
    };
    const Row rows[] = {
        {"objects-first", svq::core::OnlineConfig::PredicateOrder::
                              kObjectsFirst},
        {"actions-first", svq::core::OnlineConfig::PredicateOrder::
                              kActionsFirst},
        {"adaptive", svq::core::OnlineConfig::PredicateOrder::kAdaptive},
    };
    for (const Row& row : rows) {
      svq::core::OnlineConfig config;
      config.predicate_order = row.order;
      const auto outcome = ValueOrDie(
          svq::eval::RunOnlineScenario(
              scenario, svq::models::MaskRcnnI3dSuite(), config,
              svq::core::OnlineEngine::Mode::kSvaqd),
          "run");
      std::printf("  %-15s F1=%.3f  model inference=%.1f min\n", row.name,
                  outcome.sequence_match.f1(), outcome.model_ms / 60000.0);
    }
  }
  return 0;
}
