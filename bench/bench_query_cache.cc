// Snapshot query cache: warm-over-cold speedup under a Zipfian repeat
// workload (docs/caching.md). The four movie scenarios of paper Table 2 ×
// three K values give 12 distinct ranked statements; the cold pass runs
// each once (all misses, populating the candidate and result tiers), then
// the warm pass draws statements Zipfian-style — a few heavy hitters, a
// long tail — the shape a serving cache actually sees.
//
// Expected shape: warm p50 collapses to the cache-lookup cost, well over
// 5x below cold p50 (the result tier skips RVAQ entirely; the candidate
// tier alone would still skip the interval products). Every cached answer
// is checked against a cache-bypassing run per statement: clips exactly,
// scores to 1e-9 (K-prefix reuse aggregates in a different order).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "svq/common/rng.h"
#include "svq/core/engine.h"
#include "svq/eval/workloads.h"
#include "svq/observability/metrics.h"

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t rank = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[rank];
}

struct Statement {
  svq::core::Query query;
  std::string video;
  int k = 0;
};

// Clips must match exactly; scores to 1e-9 — K-prefix reuse (a K=5 ask
// served from a cached K=10 run) aggregates exact_sum in a different order
// and can differ by ~1 ulp (docs/caching.md). Same-K hits are bit-equal.
bool SameResult(const svq::core::TopKResult& a,
                const svq::core::TopKResult& b) {
  if (a.sequences.size() != b.sequences.size()) return false;
  for (size_t i = 0; i < a.sequences.size(); ++i) {
    if (a.sequences[i].clips != b.sequences[i].clips ||
        std::fabs(a.sequences[i].lower_bound - b.sequences[i].lower_bound) >
            1e-9 ||
        std::fabs(a.sequences[i].upper_bound - b.sequences[i].upper_bound) >
            1e-9) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace svq::benchutil;
  const double scale = ScaleFromEnv(0.25);
  const std::vector<int> kLimits = {3, 5, 10};
  constexpr int kWarmDraws = 200;
  constexpr double kZipfExponent = 1.1;

  PrintTitle("Query cache: cold vs warm latency, Zipfian repeats");
  PrintNote("scale=" + std::to_string(scale) +
            ", warm draws=" + std::to_string(kWarmDraws));
  BenchJson json("query_cache");

  const auto scenarios =
      ValueOrDie(svq::eval::MoviesWorkload(4242, scale), "MoviesWorkload");

  svq::core::VideoQueryEngine engine(
      svq::models::ModelSuite(), svq::core::OnlineConfig(),
      svq::core::IngestOptions(), svq::cache::CacheOptions::Enabled());
  std::vector<Statement> statements;
  for (const auto& scenario : scenarios) {
    for (const auto& video : scenario.videos) {
      CheckOk(engine.AddVideo(video).status(), "AddVideo");
      for (const int k : kLimits) {
        statements.push_back({scenario.query, video->name(), k});
      }
    }
  }
  CheckOk(engine.IngestAll(), "IngestAll");

  // Cold pass: every statement with the cache bypassed per call — the
  // uncached engine's latency, unpolluted by candidate-tier reuse between
  // statements that share a video.
  svq::core::OfflineOptions bypass;
  bypass.cache.use_candidate_cache = false;
  bypass.cache.use_result_cache = false;
  std::vector<double> cold;
  cold.reserve(statements.size());
  for (const Statement& s : statements) {
    const double begin = NowMs();
    const auto result = engine.ExecuteTopK(
        s.query, s.video, s.k, svq::core::OfflineAlgorithm::kRvaq, bypass);
    cold.push_back(NowMs() - begin);
    CheckOk(result.status(), "cold ExecuteTopK");
  }

  // Prime + oracle: run each statement cached (filling both tiers) and
  // check it against a fresh bypass run.
  for (const Statement& s : statements) {
    const auto cached = engine.ExecuteTopK(s.query, s.video, s.k);
    const auto direct = engine.ExecuteTopK(
        s.query, s.video, s.k, svq::core::OfflineAlgorithm::kRvaq, bypass);
    CheckOk(cached.status(), "cached ExecuteTopK");
    CheckOk(direct.status(), "bypass ExecuteTopK");
    if (!SameResult(*cached, *direct)) {
      std::fprintf(stderr, "cache/bypass mismatch on %s LIMIT %d\n",
                   s.video.c_str(), s.k);
      return 1;
    }
  }

  // Warm pass: Zipfian draws over the same statements (rank r drawn with
  // weight 1/(r+1)^s) — every draw is a result-tier hit.
  std::vector<double> cumulative;
  cumulative.reserve(statements.size());
  double total_weight = 0.0;
  for (size_t r = 0; r < statements.size(); ++r) {
    total_weight += 1.0 / std::pow(static_cast<double>(r + 1), kZipfExponent);
    cumulative.push_back(total_weight);
  }
  svq::Rng rng(20260808);
  std::vector<double> warm;
  warm.reserve(kWarmDraws);
  for (int draw = 0; draw < kWarmDraws; ++draw) {
    const double u = rng.NextDouble() * total_weight;
    const size_t pick = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    const Statement& s = statements[std::min(pick, statements.size() - 1)];
    const double begin = NowMs();
    const auto result = engine.ExecuteTopK(s.query, s.video, s.k);
    warm.push_back(NowMs() - begin);
    CheckOk(result.status(), "warm ExecuteTopK");
  }

  std::sort(cold.begin(), cold.end());
  std::sort(warm.begin(), warm.end());
  const double cold_p50 = Percentile(cold, 0.50);
  const double cold_p99 = Percentile(cold, 0.99);
  const double warm_p50 = Percentile(warm, 0.50);
  const double warm_p99 = Percentile(warm, 0.99);
  const double speedup = warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0;

  const auto stats = engine.cache_stats()->Read();
  const double lookups = static_cast<double>(stats.hits() + stats.misses());
  const double hit_rate =
      lookups > 0.0 ? static_cast<double>(stats.hits()) / lookups : 0.0;

  json.Record("cold_p50", cold_p50, "ms");
  json.Record("cold_p99", cold_p99, "ms");
  json.Record("warm_p50", warm_p50, "ms");
  json.Record("warm_p99", warm_p99, "ms");
  json.Record("warm_speedup_p50", speedup, "x");
  json.Record("hit_rate", hit_rate, "fraction");
  std::printf("  cold (%zu statements):  p50 %8.3f ms   p99 %8.3f ms\n",
              cold.size(), cold_p50, cold_p99);
  std::printf("  warm (%d draws):       p50 %8.3f ms   p99 %8.3f ms\n",
              kWarmDraws, warm_p50, warm_p99);
  std::printf("  warm speedup (p50): %.1fx   cache hit rate: %.1f%%   "
              "results match cache-bypassed runs: yes\n",
              speedup, 100.0 * hit_rate);

  // Carry the engine's cache counters into the JSON the same way the
  // server's STATS verb exposes them.
  svq::observability::MetricsRegistry registry;
  registry.counter("svq_cache_hits_total")
      ->Increment(static_cast<int64_t>(stats.hits()));
  registry.counter("svq_cache_misses_total")
      ->Increment(static_cast<int64_t>(stats.misses()));
  registry.counter("svq_cache_evictions_total")
      ->Increment(static_cast<int64_t>(stats.evictions()));
  registry.counter("svq_cache_result_hits_total")
      ->Increment(static_cast<int64_t>(stats.result_hits));
  registry.counter("svq_cache_candidate_hits_total")
      ->Increment(static_cast<int64_t>(stats.candidate_hits));
  registry.counter("svq_cache_kcrit_computes_total")
      ->Increment(static_cast<int64_t>(stats.kcrit_computes));
  registry.gauge("svq_cache_bytes")
      ->Set(static_cast<double>(stats.bytes));
  json.AttachRegistry(registry.Snapshot());

  json.Flush();
  return 0;
}
