// Table 7: performance of the four offline algorithms on the YouTube
// dataset for q1:{washing_dishes; faucet, oven} and
// q2:{blowing_leaves; car, plant} at K=5.
//
// Expected shape (paper): RVAQ cheapest, then Pq-Traverse, then
// RVAQ-noSkip, then FA.

#include <cstdio>

#include "bench/offline_util.h"
#include "svq/video/synthetic_video.h"

namespace {

// The offline store indexes one long pre-processed video per query set, so
// build each query's footage as a single video of the (scaled) Table 1
// length instead of the online workload's per-clip split.
svq::eval::QueryScenario SingleVideoScenario(int index, double scale) {
  using namespace svq::benchutil;
  svq::eval::QueryScenario split = ValueOrDie(
      svq::eval::YouTubeScenario(index, /*seed=*/1207, scale), "workload");
  svq::video::SyntheticVideoSpec spec = split.videos[0]->spec();
  int64_t total = 0;
  for (const auto& v : split.videos) total += v->num_frames();
  spec.num_frames = total;
  spec.name = split.name + "_full";
  svq::eval::QueryScenario merged;
  merged.name = split.name;
  merged.query = split.query;
  merged.videos.push_back(ValueOrDie(
      svq::video::SyntheticVideo::Generate(spec), "video generation"));
  return merged;
}

}  // namespace

int main() {
  using namespace svq::benchutil;
  const double scale = ScaleFromEnv(1.0);
  PrintTitle("Table 7: offline algorithms on YouTube q1/q2 (K=5)");
  PrintNote("scale=" + std::to_string(scale) +
            "; cells are 'virtual runtime (s); random accesses (x1000)'");

  std::printf("%-8s | %-14s | %-14s | %-14s | %-14s\n", "Query", "FA",
              "RVAQ-noSkip", "Pq-Traverse", "RVAQ");
  for (const int q : {1, 2}) {
    const OfflineSetup setup = IngestScenario(SingleVideoScenario(q, scale));
    std::printf("q%-7d", q);
    for (const char* algorithm :
         {"FA", "RVAQ-noSkip", "Pq-Traverse", "RVAQ"}) {
      const svq::core::TopKResult result = RunAlgorithm(setup, algorithm, 5);
      std::printf(" | %-14s", Cell(result).c_str());
    }
    std::printf("\n");
  }
  PrintNote("expected: RVAQ < Pq-Traverse < RVAQ-noSkip < FA");
  return 0;
}
