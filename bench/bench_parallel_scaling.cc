// Parallel runtime scaling: ingest and repository top-K wall time at 1..8
// worker threads over an 8-video synthetic repository (docs/parallelism.md).
// Results are written to BENCH_parallel_scaling.json so the perf trajectory
// is tracked from PR 1 onward.
//
// Expected shape: repository top-K scales near-linearly with cores on a
// multi-core host (videos are embarrassingly parallel); ingest scales in
// its post-inference phases only (model scoring is stream-ordered). On a
// single-core host every thread count reports ~1x.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "svq/core/engine.h"
#include "svq/core/ingest.h"
#include "svq/core/repository.h"
#include "svq/models/synthetic_models.h"

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::shared_ptr<const svq::video::SyntheticVideo> MakeVideo(int index,
                                                            double scale) {
  svq::video::SyntheticVideoSpec spec;
  spec.name = "scaling_" + std::to_string(index);
  spec.num_frames = static_cast<int64_t>(200000 * scale);
  spec.seed = 4200 + static_cast<uint64_t>(index);
  spec.actions.push_back({"smoking", 350.0, 4500.0});
  svq::video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.9;
  cup.coverage = 0.9;
  cup.mean_on_frames = 250.0;
  cup.mean_off_frames = 2600.0;
  spec.objects.push_back(cup);
  return svq::benchutil::ValueOrDie(
      svq::video::SyntheticVideo::Generate(spec), "video generation");
}

}  // namespace

int main() {
  using namespace svq::benchutil;
  const double scale = ScaleFromEnv(0.25);
  constexpr int kNumVideos = 8;
  const std::vector<int> kThreadCounts = {1, 2, 4, 8};

  PrintTitle("Parallel runtime scaling: ingest + repository top-K");
  PrintNote("scale=" + std::to_string(scale) + ", videos=" +
            std::to_string(kNumVideos));
  BenchJson json("parallel_scaling");

  // Ingest scaling: one representative video, 1 thread vs each fan-out.
  const auto probe_video = MakeVideo(0, scale);
  double ingest_reference_ms = 0.0;
  for (const int threads : kThreadCounts) {
    svq::models::ModelSet models = svq::models::MakeModelSet(
        probe_video, svq::models::MaskRcnnI3dSuite(), {}, {});
    svq::core::IngestOptions options;
    options.runtime.num_threads = threads;
    const double start = NowMs();
    const auto ingested = ValueOrDie(
        svq::core::IngestVideo(probe_video, 0, models.tracker.get(),
                               models.recognizer.get(), options),
        "ingest");
    const double elapsed = NowMs() - start;
    if (threads == 1) ingest_reference_ms = elapsed;
    json.Record("ingest_wall", elapsed, "ms", threads);
    json.Record("ingest_speedup_vs_1t",
                elapsed > 0.0 ? ingest_reference_ms / elapsed : 0.0, "x",
                threads);
    json.Record("ingest_parallel_phases",
                ingested.ingest_stats.scoring_ms +
                    ingested.ingest_stats.sequences_ms +
                    ingested.ingest_stats.tables_ms,
                "ms", threads);
    std::printf("  ingest          %d thread(s): %8.1f ms (inference %.1f, "
                "scoring %.1f, sequences %.1f, tables %.1f)\n",
                threads, elapsed, ingested.ingest_stats.inference_ms,
                ingested.ingest_stats.scoring_ms,
                ingested.ingest_stats.sequences_ms,
                ingested.ingest_stats.tables_ms);
  }

  // Repository scaling: ingest the full repository once, then sweep the
  // RVAQ fan-out thread count.
  std::vector<svq::core::IngestedVideo> ingested;
  ingested.reserve(kNumVideos);
  for (int i = 0; i < kNumVideos; ++i) {
    const auto video = MakeVideo(i, scale);
    svq::models::ModelSet models = svq::models::MakeModelSet(
        video, svq::models::MaskRcnnI3dSuite(), {}, {});
    ingested.push_back(
        ValueOrDie(svq::core::IngestVideo(
                       video, static_cast<svq::video::VideoId>(i),
                       models.tracker.get(), models.recognizer.get(),
                       svq::core::IngestOptions()),
                   "repository ingest"));
  }
  std::vector<const svq::core::IngestedVideo*> repo;
  for (const auto& v : ingested) repo.push_back(&v);

  svq::core::Query query;
  query.action = "smoking";
  query.objects = {"cup"};
  const svq::core::AdditiveScoring scoring;
  const int k = 10;

  double repo_reference_ms = 0.0;
  for (const int threads : kThreadCounts) {
    svq::core::OfflineOptions options;
    options.runtime.num_threads = threads;
    const double start = NowMs();
    const auto result = ValueOrDie(
        svq::core::RunRepositoryTopK(repo, query, k, scoring, options),
        "repository top-K");
    const double elapsed = NowMs() - start;
    if (threads == 1) repo_reference_ms = elapsed;
    const double speedup = elapsed > 0.0 ? repo_reference_ms / elapsed : 0.0;
    json.Record("repository_topk_wall", elapsed, "ms", threads);
    json.Record("repository_topk_speedup_vs_1t", speedup, "x", threads);
    json.Record("repository_topk_steals",
                static_cast<double>(result.stats.runtime.steals), "count",
                threads);
    std::printf("  repository topK %d thread(s): %8.1f ms  speedup %.2fx  "
                "(%zu sequences, %lld tasks, %lld steals)\n",
                threads, elapsed, speedup, result.sequences.size(),
                static_cast<long long>(result.stats.runtime.tasks_executed),
                static_cast<long long>(result.stats.runtime.steals));
  }

  json.Flush();
  return 0;
}
