// End-to-end tests of the paper's footnote extensions: multiple conjunctive
// actions (fn. 3), object disjunctions (fn. 4), and spatial relationship
// predicates (fn. 2), plus their offline behaviour.

#include <gtest/gtest.h>

#include "svq/core/engine.h"
#include "svq/core/online_engine.h"
#include "svq/eval/workloads.h"
#include "svq/models/synthetic_models.h"
#include "svq/video/video_stream.h"

namespace svq::core {
namespace {

using video::SyntheticVideo;
using video::SyntheticVideoSpec;

std::shared_ptr<const SyntheticVideo> MakeVideo(uint64_t seed = 33) {
  SyntheticVideoSpec spec;
  spec.name = "ext_test";
  spec.num_frames = 50000;
  spec.seed = seed;
  spec.actions.push_back({"jumping", 400.0, 4200.0});
  spec.actions.push_back({"waving", 500.0, 3500.0});
  for (const char* label : {"car", "human"}) {
    video::SyntheticObjectSpec obj;
    obj.label = label;
    obj.correlate_with_action = "jumping";
    obj.correlation = 0.9;
    obj.coverage = 0.95;
    obj.mean_on_frames = 250.0;
    obj.mean_off_frames = 2600.0;
    spec.objects.push_back(obj);
  }
  auto video = SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

Result<video::IntervalSet> RunOnline(
    const std::shared_ptr<const SyntheticVideo>& video, const Query& query) {
  models::ModelSet models = models::MakeModelSet(
      video, models::IdealSuite(), query.AllObjectLabels(),
      query.AllActions());
  SVQ_ASSIGN_OR_RETURN(
      std::unique_ptr<OnlineEngine> engine,
      OnlineEngine::Create(OnlineEngine::Mode::kSvaqd, query, OnlineConfig(),
                           video->layout(), models.detector.get(),
                           models.recognizer.get()));
  video::SyntheticVideoStream stream(video, 0);
  SVQ_ASSIGN_OR_RETURN(OnlineResult result, engine->Run(stream));
  return result.sequences;
}

TEST(MultiActionTest, ConjunctionIsSubsetOfEachSingleAction) {
  auto video = MakeVideo();
  Query both;
  both.action = "jumping";
  both.extra_actions = {"waving"};
  Query jumping;
  jumping.action = "jumping";
  Query waving;
  waving.action = "waving";

  auto r_both = RunOnline(video, both);
  auto r_jump = RunOnline(video, jumping);
  auto r_wave = RunOnline(video, waving);
  ASSERT_TRUE(r_both.ok());
  ASSERT_TRUE(r_jump.ok());
  ASSERT_TRUE(r_wave.ok());
  // With ideal models, every conjunctive result clip satisfies both
  // single-action queries (modulo estimator timing; require full overlap).
  EXPECT_EQ(r_both->OverlapLength(*r_jump), r_both->TotalLength());
  EXPECT_EQ(r_both->OverlapLength(*r_wave), r_both->TotalLength());
  // The conjunction is strictly more selective on this video.
  EXPECT_LT(r_both->TotalLength(), r_jump->TotalLength());
}

TEST(MultiActionTest, ConjunctionCoversJointTruth) {
  auto video = MakeVideo();
  Query both;
  both.action = "jumping";
  both.extra_actions = {"waving"};
  auto result = RunOnline(video, both);
  ASSERT_TRUE(result.ok());
  const video::IntervalSet joint = video::IntervalSet::Intersect(
      video->ground_truth().ActionPresence("jumping"),
      video->ground_truth().ActionPresence("waving"));
  // Sizeable joint occurrences are recovered.
  int64_t covered = 0;
  int64_t total = 0;
  const int64_t fpc = video->layout().FramesPerClip();
  for (const video::Interval& range : joint.intervals()) {
    if (range.length() < 3 * fpc) continue;  // skip boundary slivers
    total += range.length();
    covered += video::IntervalSet::Intersect(
                   result->Refine(fpc), video::IntervalSet({range}))
                   .TotalLength();
  }
  if (total > 0) {
    EXPECT_GT(static_cast<double>(covered) / static_cast<double>(total),
              0.7);
  }
}

TEST(DisjunctionTest, AnyOfMatchesSingleWhenOnlyOneMemberExists) {
  auto video = MakeVideo();
  Query anyof;
  anyof.action = "jumping";
  anyof.object_disjunctions = {{"car", "zeppelin"}};  // zeppelin never occurs
  Query single;
  single.action = "jumping";
  single.objects = {"car"};
  auto r_any = RunOnline(video, anyof);
  auto r_car = RunOnline(video, single);
  ASSERT_TRUE(r_any.ok());
  ASSERT_TRUE(r_car.ok());
  EXPECT_EQ(*r_any, *r_car);
}

TEST(DisjunctionTest, AnyOfIsSupersetOfEachMember) {
  auto video = MakeVideo();
  Query anyof;
  anyof.action = "jumping";
  anyof.object_disjunctions = {{"car", "human"}};
  Query car;
  car.action = "jumping";
  car.objects = {"car"};
  auto r_any = RunOnline(video, anyof);
  auto r_car = RunOnline(video, car);
  ASSERT_TRUE(r_any.ok());
  ASSERT_TRUE(r_car.ok());
  // Every car-certified clip also certifies the disjunction.
  EXPECT_EQ(r_any->OverlapLength(*r_car), r_car->TotalLength());
}

TEST(RelationshipTest, ResultsRequireBothObjectsPresent) {
  auto video = MakeVideo();
  Query query;
  query.action = "jumping";
  query.relationships = {{RelOp::kLeftOf, "human", "car"}};
  auto result = RunOnline(video, query);
  ASSERT_TRUE(result.ok());
  // Relationship-certified clips lie where both labels are present.
  const int64_t fpc = video->layout().FramesPerClip();
  const video::IntervalSet both_clips =
      video::IntervalSet::Intersect(
          video->ground_truth().ObjectPresence("human"),
          video->ground_truth().ObjectPresence("car"))
          .CoarsenAny(fpc);
  for (const video::Interval& seq : result->intervals()) {
    for (video::ClipIndex c = seq.begin; c < seq.end; ++c) {
      EXPECT_TRUE(both_clips.Contains(c)) << "clip " << c;
    }
  }
}

TEST(RelationshipTest, SwappedOperatorAndArgsAgree) {
  // left_of(human, car) and right_of(car, human) are the same constraint.
  auto video = MakeVideo();
  Query a;
  a.action = "jumping";
  a.relationships = {{RelOp::kLeftOf, "human", "car"}};
  Query b;
  b.action = "jumping";
  b.relationships = {{RelOp::kRightOf, "car", "human"}};
  auto r_a = RunOnline(video, a);
  auto r_b = RunOnline(video, b);
  ASSERT_TRUE(r_a.ok());
  ASSERT_TRUE(r_b.ok());
  EXPECT_EQ(*r_a, *r_b);
}

TEST(RelationshipTest, MutuallyExclusiveOperatorsRarelyCooccur) {
  // A frame cannot satisfy both left_of(h,c) and overlaps(h,c) with the
  // same single pair of boxes; with one instance of each label at a time
  // the two queries rarely certify the same clip.
  auto video = MakeVideo();
  Query left;
  left.action = "jumping";
  left.relationships = {{RelOp::kLeftOf, "human", "car"}};
  Query overlaps;
  overlaps.action = "jumping";
  overlaps.relationships = {{RelOp::kOverlaps, "human", "car"}};
  auto r_left = RunOnline(video, left);
  auto r_over = RunOnline(video, overlaps);
  ASSERT_TRUE(r_left.ok());
  ASSERT_TRUE(r_over.ok());
  const int64_t intersection = r_left->OverlapLength(*r_over);
  const int64_t smaller =
      std::min(r_left->TotalLength(), r_over->TotalLength());
  if (smaller > 0) {
    EXPECT_LT(static_cast<double>(intersection) /
                  static_cast<double>(smaller),
              0.5);
  }
}

TEST(OfflineExtensionsTest, ExtraActionsSupported) {
  auto video = MakeVideo();
  models::ModelSet models =
      models::MakeModelSet(video, models::MaskRcnnI3dSuite(), {}, {});
  auto ingested = IngestVideo(video, 0, models.tracker.get(),
                              models.recognizer.get(), IngestOptions());
  ASSERT_TRUE(ingested.ok());
  Query query;
  query.action = "jumping";
  query.extra_actions = {"waving"};
  AdditiveScoring scoring;
  auto result = RunRvaq(*ingested, query, 3, scoring, OfflineOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  // Matches the brute-force baseline.
  auto traverse = RunPqTraverse(*ingested, query, 3, scoring,
                                storage::DiskCostModel());
  ASSERT_TRUE(traverse.ok());
  ASSERT_EQ(result->sequences.size(), traverse->sequences.size());
  for (size_t i = 0; i < result->sequences.size(); ++i) {
    EXPECT_EQ(result->sequences[i].clips, traverse->sequences[i].clips);
    EXPECT_NEAR(result->sequences[i].upper_bound,
                traverse->sequences[i].upper_bound, 1e-6);
  }
}

TEST(OfflineExtensionsTest, RelationshipsAndDisjunctionsUnimplemented) {
  auto video = MakeVideo();
  models::ModelSet models =
      models::MakeModelSet(video, models::MaskRcnnI3dSuite(), {}, {});
  auto ingested = IngestVideo(video, 0, models.tracker.get(),
                              models.recognizer.get(), IngestOptions());
  ASSERT_TRUE(ingested.ok());
  AdditiveScoring scoring;

  Query rel_query;
  rel_query.action = "jumping";
  rel_query.relationships = {{RelOp::kLeftOf, "human", "car"}};
  EXPECT_EQ(RunRvaq(*ingested, rel_query, 3, scoring, OfflineOptions())
                .status()
                .code(),
            StatusCode::kUnimplemented);

  Query dis_query;
  dis_query.action = "jumping";
  dis_query.object_disjunctions = {{"car", "human"}};
  EXPECT_EQ(RunRvaq(*ingested, dis_query, 3, scoring, OfflineOptions())
                .status()
                .code(),
            StatusCode::kUnimplemented);
}

TEST(MarkovNullTest, BurstyNoiseRaisesActionQuota) {
  // Footnote 7: under positively dependent (bursty) action false positives,
  // the Markov-aware critical value is at least the i.i.d. one.
  video::SyntheticVideoSpec spec;
  spec.name = "markov_test";
  spec.num_frames = 60000;
  spec.seed = 91;
  spec.actions.push_back({"jumping", 400.0, 5200.0});
  auto video = video::SyntheticVideo::Generate(spec);
  ASSERT_TRUE(video.ok());

  Query query;
  query.action = "jumping";

  models::ModelSuite suite = models::MaskRcnnI3dSuite();
  suite.action_profile.fpr = 0.05;
  suite.action_profile.mean_fp_burst = 3.0;  // strongly bursty noise

  int iid_kcrit = 0;
  int markov_kcrit = 0;
  for (const bool markov : {false, true}) {
    OnlineConfig config;
    config.markov_action_null = markov;
    models::ModelSet models =
        models::MakeModelSet(*video, suite, {}, {query.action});
    auto engine = OnlineEngine::Create(
        OnlineEngine::Mode::kSvaqd, query, config, (*video)->layout(),
        models.detector.get(), models.recognizer.get());
    ASSERT_TRUE(engine.ok());
    video::SyntheticVideoStream stream(*video, 0);
    auto result = (*engine)->Run(stream);
    ASSERT_TRUE(result.ok());
    (markov ? markov_kcrit : iid_kcrit) = result->stats.action_kcrit;
  }
  EXPECT_GE(markov_kcrit, iid_kcrit);
}

TEST(PredicateOrderTest, OrderDoesNotChangeResultsUnderIdealModels) {
  auto video = MakeVideo();
  Query query;
  query.action = "jumping";
  query.objects = {"car"};
  video::IntervalSet results[3];
  int i = 0;
  for (const auto order : {OnlineConfig::PredicateOrder::kObjectsFirst,
                           OnlineConfig::PredicateOrder::kActionsFirst,
                           OnlineConfig::PredicateOrder::kAdaptive}) {
    models::ModelSet models = models::MakeModelSet(
        video, models::IdealSuite(), {"car"}, {"jumping"});
    OnlineConfig config;
    config.predicate_order = order;
    auto engine = OnlineEngine::Create(
        OnlineEngine::Mode::kSvaqd, query, config, video->layout(),
        models.detector.get(), models.recognizer.get());
    ASSERT_TRUE(engine.ok());
    video::SyntheticVideoStream stream(video, 0);
    auto result = (*engine)->Run(stream);
    ASSERT_TRUE(result.ok());
    results[i++] = result->sequences;
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(PredicateOrderTest, ActionsFirstShortCircuitsDetector) {
  // An action that never occurs: actions-first skips the (expensive)
  // detector pass on every non-sampling clip.
  auto video = MakeVideo();
  Query query;
  query.action = "moonwalking";  // not in the video
  query.objects = {"car"};
  models::ModelSet models = models::MakeModelSet(
      video, models::IdealSuite(), {"car"}, {"moonwalking"});
  OnlineConfig config;
  config.predicate_order = OnlineConfig::PredicateOrder::kActionsFirst;
  auto engine = OnlineEngine::Create(
      OnlineEngine::Mode::kSvaqd, query, config, video->layout(),
      models.detector.get(), models.recognizer.get());
  ASSERT_TRUE(engine.ok());
  video::SyntheticVideoStream stream(video, 0);
  auto result = (*engine)->Run(stream);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->sequences.empty());
  EXPECT_EQ(result->stats.clips_actions_first,
            result->stats.clips_processed);
  // Detector frames processed only on the sampling ticks.
  const int64_t sampled_clips =
      result->stats.clips_processed / config.action_null_sampling_period + 1;
  EXPECT_LE(models.detector->stats().units,
            sampled_clips * video->layout().FramesPerClip());
}

TEST(PredicateOrderTest, AdaptiveLearnsToPutSelectiveStageFirst) {
  // The action is rare and the object is everywhere: the action stage is
  // far more selective, and the detector (95 ms/frame * 80 frames) dwarfs
  // the recognizer (110 ms/shot * 5 shots), so adaptive ordering should
  // settle on actions-first for most clips.
  video::SyntheticVideoSpec spec;
  spec.name = "adaptive_test";
  spec.num_frames = 60000;
  spec.seed = 55;
  spec.actions.push_back({"jumping", 300.0, 12000.0});  // rare
  video::SyntheticObjectSpec car;
  car.label = "car";
  car.mean_on_frames = 5000.0;  // near-omnipresent
  car.mean_off_frames = 200.0;
  spec.objects.push_back(car);
  auto video = video::SyntheticVideo::Generate(spec);
  ASSERT_TRUE(video.ok());

  Query query;
  query.action = "jumping";
  query.objects = {"car"};
  models::ModelSet models = models::MakeModelSet(
      *video, models::MaskRcnnI3dSuite(), {"car"}, {"jumping"});
  OnlineConfig config;
  config.predicate_order = OnlineConfig::PredicateOrder::kAdaptive;
  auto engine = OnlineEngine::Create(
      OnlineEngine::Mode::kSvaqd, query, config, (*video)->layout(),
      models.detector.get(), models.recognizer.get());
  ASSERT_TRUE(engine.ok());
  video::SyntheticVideoStream stream(*video, 0);
  auto result = (*engine)->Run(stream);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.clips_actions_first,
            result->stats.clips_processed / 2);
  // And it saves real inference relative to the paper's objects-first.
  models::ModelSet baseline_models = models::MakeModelSet(
      *video, models::MaskRcnnI3dSuite(), {"car"}, {"jumping"});
  OnlineConfig baseline;
  baseline.predicate_order = OnlineConfig::PredicateOrder::kObjectsFirst;
  auto baseline_engine = OnlineEngine::Create(
      OnlineEngine::Mode::kSvaqd, query, baseline, (*video)->layout(),
      baseline_models.detector.get(), baseline_models.recognizer.get());
  ASSERT_TRUE(baseline_engine.ok());
  video::SyntheticVideoStream stream2(*video, 0);
  auto baseline_result = (*baseline_engine)->Run(stream2);
  ASSERT_TRUE(baseline_result.ok());
  EXPECT_LT(result->stats.model_ms, baseline_result->stats.model_ms);
}

TEST(QueryExtensionsTest, Validation) {
  Query q;
  q.action = "a";
  q.extra_actions = {"a"};
  EXPECT_FALSE(q.Validate().ok());  // duplicate action
  q.extra_actions = {"b"};
  EXPECT_TRUE(q.Validate().ok());
  q.object_disjunctions = {{}};
  EXPECT_FALSE(q.Validate().ok());  // empty group
  q.object_disjunctions = {{"x", "x"}};
  EXPECT_FALSE(q.Validate().ok());  // duplicate member
  q.object_disjunctions = {{"x", "y"}};
  EXPECT_TRUE(q.Validate().ok());
  q.relationships = {{RelOp::kLeftOf, "x", "x"}};
  EXPECT_FALSE(q.Validate().ok());  // self relationship
  q.relationships = {{RelOp::kLeftOf, "x", "y"}};
  EXPECT_TRUE(q.Validate().ok());
  EXPECT_EQ(q.AllActions(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(q.AllObjectLabels(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(q.ToString(), "{a=a&b; any(x|y); left_of(x, y)}");
}

}  // namespace
}  // namespace svq::core
