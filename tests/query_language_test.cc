#include <gtest/gtest.h>

#include "svq/query/binder.h"
#include "svq/query/lexer.h"
#include "svq/query/parser.h"

namespace svq::query {
namespace {

// ---------------------------------------------------------------------------
// Lexer

TEST(LexerTest, TokenizesPunctuationAndWords) {
  auto tokens = Lex("SELECT obj.include('car', \"human\") LIMIT 5");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types,
            (std::vector<TokenType>{
                TokenType::kKeyword, TokenType::kIdentifier, TokenType::kDot,
                TokenType::kIdentifier, TokenType::kLeftParen,
                TokenType::kString, TokenType::kComma, TokenType::kString,
                TokenType::kRightParen, TokenType::kKeyword,
                TokenType::kNumber, TokenType::kEnd}));
  EXPECT_EQ((*tokens)[5].text, "car");
  EXPECT_EQ((*tokens)[7].text, "human");
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Lex("select FROM WhErE");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(LexerTest, UnterminatedString) {
  auto tokens = Lex("WHERE act='jumping");
  EXPECT_FALSE(tokens.ok());
  EXPECT_TRUE(tokens.status().IsInvalidArgument());
}

TEST(LexerTest, UnexpectedCharacter) {
  EXPECT_FALSE(Lex("SELECT #").ok());
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = Lex("a = b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].position, 0u);
  EXPECT_EQ((*tokens)[1].position, 2u);
  EXPECT_EQ((*tokens)[2].position, 4u);
}

// ---------------------------------------------------------------------------
// Parser

constexpr const char* kOnlineSql =
    "SELECT MERGE(clipID) AS Sequence "
    "FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector, "
    "act USING ActionRecognizer) "
    "WHERE act='jumping' AND obj.include('car', 'human')";

constexpr const char* kOfflineSql =
    "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) "
    "FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectTracker, "
    "act USING ActionRecognizer) "
    "WHERE act='jumping' AND obj.include('car', 'human') "
    "ORDER BY RANK(act, obj) LIMIT 7";

constexpr const char* kVisionModelSql =
    "SELECT frameSequence FROM (PROCESS inputVideo PRODUCE frameSequence, "
    "det USING VisionModel) "
    "WHERE det = Action('robot_dancing', 'car', 'human')";

TEST(ParserTest, ParsesOnlineStatement) {
  auto stmt = Parse(kOnlineSql);
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->select.size(), 1u);
  EXPECT_EQ(stmt->select[0].kind, SelectItem::Kind::kMerge);
  EXPECT_EQ(stmt->select[0].column, "clipID");
  EXPECT_EQ(stmt->select[0].alias, "Sequence");
  EXPECT_EQ(stmt->process.video, "inputVideo");
  ASSERT_EQ(stmt->process.items.size(), 3u);
  EXPECT_EQ(stmt->process.items[1].alias, "obj");
  EXPECT_EQ(stmt->process.items[1].model, "ObjectDetector");
  ASSERT_EQ(stmt->predicates.size(), 2u);
  EXPECT_EQ(stmt->predicates[0].kind, Predicate::Kind::kEquals);
  EXPECT_EQ(stmt->predicates[0].args[0], "jumping");
  EXPECT_EQ(stmt->predicates[1].kind, Predicate::Kind::kMethodCall);
  EXPECT_EQ(stmt->predicates[1].method, "include");
  EXPECT_EQ(stmt->predicates[1].args,
            (std::vector<std::string>{"car", "human"}));
  EXPECT_FALSE(stmt->order_by.has_value());
  EXPECT_FALSE(stmt->limit.has_value());
}

TEST(ParserTest, ParsesOfflineStatement) {
  auto stmt = Parse(kOfflineSql);
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->select.size(), 2u);
  EXPECT_EQ(stmt->select[1].kind, SelectItem::Kind::kRank);
  EXPECT_EQ(stmt->select[1].rank_args,
            (std::vector<std::string>{"act", "obj"}));
  ASSERT_TRUE(stmt->order_by.has_value());
  ASSERT_TRUE(stmt->limit.has_value());
  EXPECT_EQ(*stmt->limit, 7);
}

TEST(ParserTest, ParsesVisionModelForm) {
  auto stmt = Parse(kVisionModelSql);
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->predicates.size(), 1u);
  EXPECT_EQ(stmt->predicates[0].kind, Predicate::Kind::kActionCall);
  EXPECT_EQ(stmt->predicates[0].target, "det");
  EXPECT_EQ(stmt->predicates[0].args,
            (std::vector<std::string>{"robot_dancing", "car", "human"}));
}

TEST(ParserTest, ErrorsCarryPositionAndExpectation) {
  auto stmt = Parse("SELECT FROM x");
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("position"), std::string::npos);
}

TEST(ParserTest, RejectsTrailingGarbage) {
  std::string sql = std::string(kOnlineSql) + " extra";
  EXPECT_FALSE(Parse(sql).ok());
}

TEST(ParserTest, RejectsMissingWhere) {
  EXPECT_FALSE(
      Parse("SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID)").ok());
}

TEST(ParserTest, RejectsBadLimit) {
  std::string sql = std::string(kOnlineSql) + " ORDER BY RANK(act) LIMIT x";
  EXPECT_FALSE(Parse(sql).ok());
}

// ---------------------------------------------------------------------------
// Binder

TEST(BinderTest, BindsOnlineQuery) {
  auto bound = ParseAndBind(kOnlineSql);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->query.action, "jumping");
  EXPECT_EQ(bound->query.objects,
            (std::vector<std::string>{"car", "human"}));
  EXPECT_EQ(bound->video, "inputVideo");
  EXPECT_FALSE(bound->ranked);
  EXPECT_EQ(bound->k, 0);
  EXPECT_EQ(bound->detector_model, "ObjectDetector");
  EXPECT_EQ(bound->recognizer_model, "ActionRecognizer");
}

TEST(BinderTest, BindsOfflineQuery) {
  auto bound = ParseAndBind(kOfflineSql);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_TRUE(bound->ranked);
  EXPECT_EQ(bound->k, 7);
}

TEST(BinderTest, BindsVisionModelForm) {
  auto bound = ParseAndBind(kVisionModelSql);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->query.action, "robot_dancing");
  EXPECT_EQ(bound->query.objects,
            (std::vector<std::string>{"car", "human"}));
}

TEST(BinderTest, IncSynonym) {
  auto bound = ParseAndBind(
      "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, obj, act) "
      "WHERE act='x' AND obj.inc('car')");
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->query.objects, (std::vector<std::string>{"car"}));
}

TEST(BinderTest, RejectsQueryWithoutAction) {
  auto bound = ParseAndBind(
      "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, obj) "
      "WHERE obj.include('car')");
  EXPECT_FALSE(bound.ok());
}

TEST(BinderTest, MultipleActionPredicatesBecomeExtraActions) {
  // Paper footnote 3: conjunctive multi-action queries.
  auto bound = ParseAndBind(
      "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, act) "
      "WHERE act='x' AND act='y'");
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->query.action, "x");
  EXPECT_EQ(bound->query.extra_actions, (std::vector<std::string>{"y"}));
}

TEST(BinderTest, RejectsDuplicateActions) {
  auto bound = ParseAndBind(
      "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, act) "
      "WHERE act='x' AND act='x'");
  EXPECT_FALSE(bound.ok());
}

TEST(BinderTest, CanonicalizesConjunctiveLabelOrder) {
  // Conjunctive predicates are commutative, so the binder sorts objects and
  // extra actions: permuted-but-equivalent statements bind to the same Query
  // (and therefore share one query-cache fingerprint).
  auto forward = ParseAndBind(
      "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, obj, act) "
      "WHERE act='x' AND act='z' AND act='y' AND "
      "obj.include('human', 'car')");
  auto reversed = ParseAndBind(
      "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, obj, act) "
      "WHERE act='x' AND act='y' AND act='z' AND "
      "obj.include('car', 'human')");
  ASSERT_TRUE(forward.ok()) << forward.status();
  ASSERT_TRUE(reversed.ok()) << reversed.status();
  EXPECT_EQ(forward->query.objects,
            (std::vector<std::string>{"car", "human"}));
  EXPECT_EQ(forward->query.extra_actions,
            (std::vector<std::string>{"y", "z"}));
  EXPECT_EQ(forward->query.objects, reversed->query.objects);
  EXPECT_EQ(forward->query.extra_actions, reversed->query.extra_actions);
}

TEST(BinderTest, BindsDisjunction) {
  // Paper footnote 4: any-of object groups.
  auto bound = ParseAndBind(
      "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, obj, act) "
      "WHERE act='x' AND obj.include_any('car', 'bus')");
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_TRUE(bound->query.objects.empty());
  ASSERT_EQ(bound->query.object_disjunctions.size(), 1u);
  EXPECT_EQ(bound->query.object_disjunctions[0],
            (std::vector<std::string>{"car", "bus"}));
}

TEST(BinderTest, BindsRelationship) {
  // Paper footnote 2: spatial relationship predicates; the `rel` pseudo-
  // alias needs no PRODUCE declaration.
  auto bound = ParseAndBind(
      "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, obj, act) "
      "WHERE act='x' AND rel.left_of('human', 'car')");
  ASSERT_TRUE(bound.ok()) << bound.status();
  ASSERT_EQ(bound->query.relationships.size(), 1u);
  EXPECT_EQ(bound->query.relationships[0],
            (svq::core::Relationship{svq::core::RelOp::kLeftOf, "human",
                                     "car"}));
}

TEST(BinderTest, RelationshipNeedsTwoArgs) {
  auto bound = ParseAndBind(
      "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, obj, act) "
      "WHERE act='x' AND rel.left_of('human')");
  EXPECT_FALSE(bound.ok());
}

TEST(BinderTest, RejectsUndeclaredAlias) {
  auto bound = ParseAndBind(
      "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, act) "
      "WHERE act='x' AND obj.include('car')");
  EXPECT_FALSE(bound.ok());
}

TEST(BinderTest, RejectsUnknownObjectMethod) {
  auto bound = ParseAndBind(
      "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, obj, act) "
      "WHERE act='x' AND obj.excludes('car')");
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kUnimplemented);
}

TEST(BinderTest, RankedRequiresLimit) {
  auto bound = ParseAndBind(
      "SELECT MERGE(clipID), RANK(act, obj) "
      "FROM (PROCESS v PRODUCE clipID, obj, act) "
      "WHERE act='x' AND obj.include('car')");
  EXPECT_FALSE(bound.ok());
}

TEST(BinderTest, RejectsDuplicateObjects) {
  auto bound = ParseAndBind(
      "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, obj, act) "
      "WHERE act='x' AND obj.include('car', 'car')");
  EXPECT_FALSE(bound.ok());
}

}  // namespace
}  // namespace svq::query
