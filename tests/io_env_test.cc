#include "svq/io/env.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "svq/io/bytes.h"
#include "svq/io/checksum_format.h"
#include "svq/io/crc32c.h"
#include "svq/io/fault_injection_env.h"

namespace svq::io {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadAll(const std::string& path) {
  auto contents = ReadFileToString(path);
  EXPECT_TRUE(contents.ok()) << contents.status().ToString();
  return contents.ok() ? *contents : std::string();
}

// ---------------------------------------------------------------------------
// CRC-32C

TEST(Crc32cTest, KnownAnswerVectors) {
  // RFC 3720 / published CRC-32C test vectors.
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  EXPECT_EQ(Crc32c("a", 1), 0xC1D04330u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t head = Crc32c(data.data(), split);
    const uint32_t both = Crc32c(data.data() + split, data.size() - split,
                                 head);
    EXPECT_EQ(both, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "some payload worth protecting";
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(data.data(), data.size()), clean)
          << "byte " << i << " bit " << bit;
      data[i] ^= static_cast<char>(1 << bit);
    }
  }
}

// ---------------------------------------------------------------------------
// ByteReader

TEST(ByteReaderTest, BoundsCheckedReads) {
  std::string buffer;
  AppendValue(&buffer, static_cast<uint32_t>(7));
  AppendLengthPrefixedString(&buffer, "abc");
  ByteReader in(buffer);
  uint32_t v = 0;
  ASSERT_TRUE(in.Read(&v));
  EXPECT_EQ(v, 7u);
  std::string s;
  ASSERT_TRUE(in.ReadLengthPrefixedString(&s, 100));
  EXPECT_EQ(s, "abc");
  EXPECT_EQ(in.remaining(), 0u);
  // Reading past the end fails without moving the cursor.
  uint64_t w = 0;
  EXPECT_FALSE(in.Read(&w));
}

TEST(ByteReaderTest, RejectsOversizedLengthPrefix) {
  std::string buffer;
  AppendValue(&buffer, static_cast<uint64_t>(1) << 60);  // hostile length
  ByteReader in(buffer);
  std::string s;
  EXPECT_FALSE(in.ReadLengthPrefixedString(&s, 1 << 20));
}

// ---------------------------------------------------------------------------
// Checksum footer

TEST(ChecksumFooterTest, RoundTrip) {
  std::string buffer = "payload bytes";
  const std::string payload = buffer;
  AppendChecksumFooter(&buffer);
  ASSERT_EQ(buffer.size(), payload.size() + kChecksumFooterSize);
  auto stripped = StripChecksumFooter(buffer, "test");
  ASSERT_TRUE(stripped.ok()) << stripped.status().ToString();
  EXPECT_EQ(*stripped, payload);
}

TEST(ChecksumFooterTest, EveryByteFlipIsCorruption) {
  std::string buffer = "svq checksum footer corpus";
  AppendChecksumFooter(&buffer);
  for (size_t i = 0; i < buffer.size(); ++i) {
    for (const char mask : {char(0x01), char(0xFF)}) {
      std::string mutated = buffer;
      mutated[i] ^= mask;
      auto stripped = StripChecksumFooter(mutated, "test");
      ASSERT_FALSE(stripped.ok()) << "byte " << i;
      EXPECT_TRUE(stripped.status().IsCorruption()) << "byte " << i;
    }
  }
}

TEST(ChecksumFooterTest, TruncationIsCorruption) {
  std::string buffer = "1234567890";
  AppendChecksumFooter(&buffer);
  for (size_t n = 0; n < buffer.size(); ++n) {
    auto stripped =
        StripChecksumFooter(std::string_view(buffer).substr(0, n), "test");
    ASSERT_FALSE(stripped.ok()) << "length " << n;
    EXPECT_TRUE(stripped.status().IsCorruption()) << "length " << n;
  }
}

// ---------------------------------------------------------------------------
// WriteFileAtomic

TEST(WriteFileAtomicTest, WritesAndReplaces) {
  const std::string path = TempPath("svq_io_atomic.bin");
  std::filesystem::remove(path);
  ASSERT_TRUE(WriteFileAtomic(nullptr, path, "first contents").ok());
  EXPECT_EQ(ReadAll(path), "first contents");
  ASSERT_TRUE(WriteFileAtomic(nullptr, path, "second contents").ok());
  EXPECT_EQ(ReadAll(path), "second contents");
  std::filesystem::remove(path);
}

TEST(WriteFileAtomicTest, LeavesNoTempFileBehind) {
  const std::string dir = TempPath("svq_io_atomic_dir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(WriteFileAtomic(nullptr, dir + "/file.bin", "data").ok());
  size_t entries = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir)) {
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // just file.bin — no .tmp.<pid> residue
  std::filesystem::remove_all(dir);
}

TEST(ReadFileToStringTest, MissingFileIsIOError) {
  auto result = ReadFileToString("/nonexistent/svq/nope.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv

TEST(FaultInjectionEnvTest, DryRunCountsOps) {
  FaultInjectionEnv env;
  const std::string path = TempPath("svq_io_fault_dry.bin");
  std::filesystem::remove(path);
  ASSERT_TRUE(WriteFileAtomic(&env, path, "0123456789").ok());
  // NewWritableFile, Append, Sync, RenameFile, SyncDir.
  EXPECT_EQ(env.ops_seen(), 5);
  EXPECT_EQ(env.bytes_appended(), 10u);
  EXPECT_FALSE(env.fault_fired());
  std::filesystem::remove(path);
}

TEST(FaultInjectionEnvTest, FailAtEveryOpLeavesOldFileIntact) {
  const std::string path = TempPath("svq_io_fault_sweep.bin");
  std::filesystem::remove(path);
  ASSERT_TRUE(WriteFileAtomic(nullptr, path, "OLD").ok());

  FaultInjectionEnv env;
  // Ops 0..3 (create, append, sync, rename) failing must keep OLD bytes.
  // Op 4 (SyncDir) fails after the rename: new bytes are already in place,
  // which is an acceptable (and real) outcome — the caller just cannot
  // claim durability.
  for (int64_t op = 0; op < 4; ++op) {
    env.Reset();
    env.FailOp(op);
    const Status status = WriteFileAtomic(&env, path, "NEWBYTES");
    EXPECT_FALSE(status.ok()) << "op " << op;
    EXPECT_TRUE(env.fault_fired()) << "op " << op;
    EXPECT_EQ(ReadAll(path), "OLD") << "op " << op;
  }
  std::filesystem::remove(path);
}

TEST(FaultInjectionEnvTest, ShortWriteNeverSurfacesAtFinalPath) {
  const std::string path = TempPath("svq_io_fault_short.bin");
  std::filesystem::remove(path);
  ASSERT_TRUE(WriteFileAtomic(nullptr, path, "OLD").ok());
  FaultInjectionEnv env;
  env.ShortWrite(/*op_index=*/1, /*bytes=*/4);  // op 1 is the Append
  EXPECT_FALSE(WriteFileAtomic(&env, path, "NEW CONTENTS").ok());
  EXPECT_TRUE(env.fault_fired());
  // The torn prefix went to the temp file only; the final path still holds
  // the previous complete contents.
  EXPECT_EQ(ReadAll(path), "OLD");
  std::filesystem::remove(path);
}

TEST(FaultInjectionEnvTest, PowerCutAtEveryByteLeavesOldOrNew) {
  const std::string dir = TempPath("svq_io_fault_cut_dir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/file.bin";
  const std::string old_contents = "OLD";
  const std::string new_contents = "NEW CONTENTS, LONGER";
  ASSERT_TRUE(WriteFileAtomic(nullptr, path, old_contents).ok());
  for (uint64_t cut = 0; cut <= new_contents.size(); ++cut) {
    ASSERT_TRUE(WriteFileAtomic(nullptr, path, old_contents).ok());
    FaultInjectionEnv env;
    env.CutAtByte(cut);
    const Status status = WriteFileAtomic(&env, path, new_contents);
    if (cut < new_contents.size()) {
      EXPECT_FALSE(status.ok()) << "cut " << cut;
    }
    // Whatever the temp residue, the final path reads as exactly one of
    // the two complete states.
    const std::string now = ReadAll(path);
    EXPECT_TRUE(now == old_contents || now == new_contents)
        << "cut " << cut << " left " << now.size() << " bytes";
  }
  std::filesystem::remove_all(dir);
}

TEST(FaultInjectionEnvTest, CutAtOpKillsEverythingAfter) {
  const std::string path = TempPath("svq_io_fault_cutop.bin");
  std::filesystem::remove(path);
  FaultInjectionEnv env;
  env.CutAtOp(0);
  EXPECT_FALSE(WriteFileAtomic(&env, path, "data").ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  // The env stays dead: later writes fail too, like a machine that is off.
  EXPECT_FALSE(WriteFileAtomic(&env, path, "data").ok());
  env.Reset();
  EXPECT_TRUE(WriteFileAtomic(&env, path, "data").ok());
  EXPECT_EQ(ReadAll(path), "data");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace svq::io
