#include "svq/models/synthetic_models.h"

#include <gtest/gtest.h>

#include <set>

namespace svq::models {
namespace {

using video::Interval;
using video::IntervalSet;
using video::SyntheticVideo;
using video::SyntheticVideoSpec;

std::shared_ptr<const SyntheticVideo> MakeVideo(uint64_t seed = 3) {
  SyntheticVideoSpec spec;
  spec.name = "models_test";
  spec.num_frames = 24000;
  spec.seed = seed;
  spec.actions.push_back({"jumping", 320.0, 1000.0});
  video::SyntheticObjectSpec car;
  car.label = "car";
  car.correlate_with_action = "jumping";
  car.correlation = 0.9;
  car.coverage = 0.9;
  car.mean_on_frames = 250.0;
  car.mean_off_frames = 1800.0;
  spec.objects.push_back(car);
  auto video = SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

TEST(ProfileTest, Validation) {
  DetectorProfile p = MaskRcnnProfile();
  EXPECT_TRUE(p.Validate().ok());
  p.tpr = 1.4;
  EXPECT_FALSE(p.Validate().ok());
  p = MaskRcnnProfile();
  p.mean_fp_burst = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = MaskRcnnProfile();
  p.true_score.alpha = 0.0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ProfileTest, LabelOverrides) {
  DetectorProfile p = MaskRcnnProfile();
  p.label_accuracy["faucet"] = {0.7, 0.08};
  EXPECT_DOUBLE_EQ(p.TprFor("faucet"), 0.7);
  EXPECT_DOUBLE_EQ(p.FprFor("faucet"), 0.08);
  EXPECT_DOUBLE_EQ(p.TprFor("car"), p.tpr);
}

TEST(PresenceOverlayTest, IdealMatchesTruth) {
  IntervalSet truth({{100, 200}, {400, 450}});
  Rng rng(1);
  auto overlay =
      PresenceOverlay::Build(truth, 1000, 1.0, 0.0, 5, 3, true, rng);
  EXPECT_EQ(overlay.detected(), truth);
  EXPECT_TRUE(overlay.false_detected().empty());
}

TEST(PresenceOverlayTest, RatesApproximatelyRespected) {
  IntervalSet truth({{0, 50000}});
  Rng rng(2);
  auto overlay =
      PresenceOverlay::Build(truth, 100000, 0.9, 0.05, 6, 3, false, rng);
  const double tpr =
      static_cast<double>(overlay.true_detected().TotalLength()) / 50000.0;
  const double fpr =
      static_cast<double>(overlay.false_detected().TotalLength()) / 50000.0;
  EXPECT_NEAR(tpr, 0.9, 0.05);
  EXPECT_NEAR(fpr, 0.05, 0.03);
}

TEST(PresenceOverlayTest, FalsePositivesOutsideTruth) {
  IntervalSet truth({{1000, 2000}});
  Rng rng(3);
  auto overlay =
      PresenceOverlay::Build(truth, 10000, 0.8, 0.1, 6, 3, false, rng);
  EXPECT_EQ(overlay.false_detected().OverlapLength(truth), 0);
  // detected = true_detected ∪ false_detected, disjoint.
  EXPECT_EQ(overlay.detected().TotalLength(),
            overlay.true_detected().TotalLength() +
                overlay.false_detected().TotalLength());
}

TEST(ObjectDetectorTest, DeterministicPerFrame) {
  auto video = MakeVideo();
  SyntheticObjectDetector det(video, MaskRcnnProfile(), {"bus"}, 9);
  auto first = det.Detect(1234);
  auto second = det.Detect(1234);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].label, (*second)[i].label);
    EXPECT_DOUBLE_EQ((*first)[i].score, (*second)[i].score);
  }
}

TEST(ObjectDetectorTest, VocabularyIncludesExtraLabels) {
  auto video = MakeVideo();
  SyntheticObjectDetector det(video, MaskRcnnProfile(), {"zebra"}, 9);
  const auto& vocab = det.SupportedLabels();
  EXPECT_NE(std::find(vocab.begin(), vocab.end(), "zebra"), vocab.end());
  EXPECT_NE(std::find(vocab.begin(), vocab.end(), "car"), vocab.end());
}

TEST(ObjectDetectorTest, RejectsOutOfRangeFrame) {
  auto video = MakeVideo();
  SyntheticObjectDetector det(video, MaskRcnnProfile(), {}, 9);
  EXPECT_FALSE(det.Detect(-1).ok());
  EXPECT_FALSE(det.Detect(video->num_frames()).ok());
}

TEST(ObjectDetectorTest, IdealDetectorMatchesGroundTruth) {
  auto video = MakeVideo();
  SyntheticObjectDetector det(video, IdealObjectProfile(), {}, 9);
  const IntervalSet& truth = video->ground_truth().ObjectPresence("car");
  for (video::FrameIndex f = 0; f < 2000; ++f) {
    auto dets = det.Detect(f);
    ASSERT_TRUE(dets.ok());
    bool has_car = false;
    for (const auto& d : *dets) {
      if (d.label == "car") {
        has_car = true;
        EXPECT_DOUBLE_EQ(d.score, 1.0);
      }
    }
    EXPECT_EQ(has_car, truth.Contains(f)) << "frame " << f;
  }
}

TEST(ObjectDetectorTest, AccruesInferenceCost) {
  auto video = MakeVideo();
  SyntheticObjectDetector det(video, MaskRcnnProfile(), {}, 9);
  ASSERT_TRUE(det.Detect(0).ok());
  ASSERT_TRUE(det.Detect(1).ok());
  EXPECT_EQ(det.stats().units, 2);
  EXPECT_DOUBLE_EQ(det.stats().simulated_ms,
                   2.0 * MaskRcnnProfile().cost_ms);
}

TEST(ObjectDetectorTest, ScoresAboveThresholdMostlyInTruth) {
  auto video = MakeVideo();
  SyntheticObjectDetector det(video, MaskRcnnProfile(), {}, 9);
  const IntervalSet& truth = video->ground_truth().ObjectPresence("car");
  int64_t positives = 0, true_positives = 0;
  for (video::FrameIndex f = 0; f < video->num_frames(); f += 3) {
    auto dets = det.Detect(f);
    ASSERT_TRUE(dets.ok());
    for (const auto& d : *dets) {
      if (d.label == "car" && d.score >= 0.5) {
        ++positives;
        if (truth.Contains(f)) ++true_positives;
      }
    }
  }
  ASSERT_GT(positives, 0);
  EXPECT_GT(static_cast<double>(true_positives) / positives, 0.7);
}

TEST(ActionRecognizerTest, ShotTruthHalfCoverageRule) {
  auto video = MakeVideo();
  SyntheticActionRecognizer rec(video, IdealActionProfile(), {}, 9);
  const IntervalSet shots = rec.ShotTruth("jumping");
  const IntervalSet& frames = video->ground_truth().ActionPresence("jumping");
  // Every truth shot must overlap the frame truth by >= half a shot.
  const int fps = video->layout().frames_per_shot;
  for (const Interval& run : shots.intervals()) {
    for (int64_t s = run.begin; s < run.end; ++s) {
      const IntervalSet shot_set(
          std::vector<Interval>{{s * fps, (s + 1) * fps}});
      EXPECT_GE(2 * shot_set.OverlapLength(frames), fps) << "shot " << s;
    }
  }
}

TEST(ActionRecognizerTest, IdealRecognizerScoresTruthShots) {
  auto video = MakeVideo();
  SyntheticActionRecognizer rec(video, IdealActionProfile(), {}, 9);
  const IntervalSet shots = rec.ShotTruth("jumping");
  video::ShotRef shot;
  shot.shot = shots.intervals().front().begin;
  const int fps = video->layout().frames_per_shot;
  shot.frames = {shot.shot * fps, (shot.shot + 1) * fps};
  auto scores = rec.Recognize(shot);
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), 1u);
  EXPECT_EQ((*scores)[0].label, "jumping");
  EXPECT_DOUBLE_EQ((*scores)[0].score, 1.0);
}

TEST(ActionRecognizerTest, RejectsOutOfRangeShot) {
  auto video = MakeVideo();
  SyntheticActionRecognizer rec(video, I3dProfile(), {}, 9);
  video::ShotRef shot;
  shot.shot = video->NumShots();
  EXPECT_FALSE(rec.Recognize(shot).ok());
}

TEST(ObjectTrackerTest, StableIdsWithinASegment) {
  auto video = MakeVideo();
  TrackerProfile tracker_profile;
  tracker_profile.mean_segment_frames = 1e9;  // effectively no churn
  SyntheticObjectTracker tracker(video, IdealObjectProfile(), tracker_profile,
                                 {}, 9);
  const auto& instances = video->ground_truth().instances();
  ASSERT_FALSE(instances.empty());
  const video::TrackInstance& inst = instances.front();
  std::set<int64_t> ids;
  for (video::FrameIndex f = inst.frames.begin; f < inst.frames.end; ++f) {
    auto dets = tracker.Track(f);
    ASSERT_TRUE(dets.ok());
    for (const auto& d : *dets) {
      if (d.label == inst.label) ids.insert(d.track_id);
    }
  }
  // Without churn and possibly overlapping instances, the id set is small
  // and every id is a valid (non-negative) track id.
  EXPECT_FALSE(ids.empty());
  for (const int64_t id : ids) EXPECT_GE(id, 0);
}

TEST(ObjectTrackerTest, ChurnSplitsLongTracks) {
  auto video = MakeVideo();
  TrackerProfile churny;
  churny.mean_segment_frames = 40.0;
  SyntheticObjectTracker tracker(video, IdealObjectProfile(), churny, {}, 9);
  // Find a long instance and count distinct ids across it.
  const video::TrackInstance* longest = nullptr;
  for (const auto& inst : video->ground_truth().instances()) {
    if (longest == nullptr ||
        inst.frames.length() > longest->frames.length()) {
      longest = &inst;
    }
  }
  ASSERT_NE(longest, nullptr);
  ASSERT_GT(longest->frames.length(), 120);
  std::set<int64_t> ids;
  for (video::FrameIndex f = longest->frames.begin; f < longest->frames.end;
       ++f) {
    auto dets = tracker.Track(f);
    ASSERT_TRUE(dets.ok());
    for (const auto& d : *dets) {
      if (d.label == longest->label) ids.insert(d.track_id);
    }
  }
  EXPECT_GT(ids.size(), 1u);
}

TEST(ObjectTrackerTest, DeterministicPerFrame) {
  auto video = MakeVideo();
  SyntheticObjectTracker tracker(video, MaskRcnnProfile(),
                                 CenterTrackProfile(), {}, 9);
  auto a = tracker.Track(5000);
  auto b = tracker.Track(5000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].track_id, (*b)[i].track_id);
    EXPECT_DOUBLE_EQ((*a)[i].score, (*b)[i].score);
  }
}

TEST(ModelSetTest, FactoryBuildsAllThree) {
  auto video = MakeVideo();
  ModelSet set = MakeModelSet(video, MaskRcnnI3dSuite(), {"car", "bus"},
                              {"jumping"});
  ASSERT_NE(set.detector, nullptr);
  ASSERT_NE(set.recognizer, nullptr);
  ASSERT_NE(set.tracker, nullptr);
  EXPECT_EQ(set.detector->name(), "maskrcnn");
  EXPECT_EQ(set.recognizer->name(), "i3d");
}

TEST(ModelSetTest, SuitesDifferInQuality) {
  EXPECT_GT(MaskRcnnI3dSuite().object_profile.tpr,
            YoloV3I3dSuite().object_profile.tpr);
  EXPECT_LT(MaskRcnnI3dSuite().object_profile.fpr,
            YoloV3I3dSuite().object_profile.fpr);
  EXPECT_TRUE(IdealSuite().object_profile.ideal);
}

}  // namespace
}  // namespace svq::models
