// Tests of the snapshot-keyed query cache (docs/caching.md): fingerprint
// stability, LRU bounds, candidate prefix sharing, top-K K-prefix reuse,
// the snapshot-shared k_crit table, single-flight deduplication, and the
// structural staleness guarantee (a publish swaps in a fresh cache while
// pinned snapshots keep their own generation). Labeled `tsan` so the
// concurrent pieces also run under ThreadSanitizer.

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "svq/cache/fingerprint.h"
#include "svq/cache/kcrit_table.h"
#include "svq/cache/lru_cache.h"
#include "svq/cache/query_cache.h"
#include "svq/core/engine.h"
#include "svq/query/executor.h"

namespace svq::cache {
namespace {

std::shared_ptr<const video::SyntheticVideo> DemoVideo(const std::string& name,
                                                       uint64_t seed) {
  video::SyntheticVideoSpec spec;
  spec.name = name;
  spec.num_frames = 16000;
  spec.seed = seed;
  spec.actions.push_back({"jumping", 350.0, 4200.0});
  video::SyntheticObjectSpec car;
  car.label = "car";
  car.correlate_with_action = "jumping";
  car.correlation = 0.9;
  car.coverage = 0.9;
  car.mean_on_frames = 250.0;
  car.mean_off_frames = 2200.0;
  spec.objects.push_back(car);
  video::SyntheticObjectSpec human;
  human.label = "human";
  human.correlate_with_action = "jumping";
  human.correlation = 0.8;
  human.coverage = 0.8;
  human.mean_on_frames = 300.0;
  human.mean_off_frames = 1800.0;
  spec.objects.push_back(human);
  auto video = video::SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

core::Query JumpingCar() {
  core::Query q;
  q.action = "jumping";
  q.objects = {"car"};
  return q;
}

TEST(FingerprintTest, DeterministicAndOrderSensitive) {
  const uint64_t ab = Fingerprint().Mix("a").Mix("b").value();
  EXPECT_EQ(ab, Fingerprint().Mix("a").Mix("b").value());
  EXPECT_NE(ab, Fingerprint().Mix("b").Mix("a").value());
  // Length prefixing: concatenation cannot alias across field boundaries.
  EXPECT_NE(Fingerprint().Mix("ab").Mix("c").value(),
            Fingerprint().Mix("a").Mix("bc").value());
  // Numeric overloads distinguish values and the double path is bit-exact.
  EXPECT_NE(Fingerprint().Mix(1).value(), Fingerprint().Mix(2).value());
  EXPECT_NE(Fingerprint().Mix(0.0).value(), Fingerprint().Mix(-0.0).value());
  // Seeded resume is deterministic too.
  EXPECT_EQ(Fingerprint(ab).Mix(7).value(), Fingerprint(ab).Mix(7).value());
}

TEST(ShardedLruCacheTest, InsertLookupAndCounters) {
  std::atomic<int64_t> hits{0}, misses{0}, evictions{0}, bytes{0};
  ShardedLruCache<int> cache(/*max_bytes=*/4096, /*num_shards=*/2, &hits,
                             &misses, &evictions, &bytes);
  EXPECT_FALSE(cache.Lookup(1).has_value());
  EXPECT_EQ(misses.load(), 1);
  cache.Insert(1, 42, 100);
  auto found = cache.Lookup(1);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 42);
  EXPECT_EQ(hits.load(), 1);
  EXPECT_GT(bytes.load(), 0);
  // Replacement keeps one entry and does not leak byte accounting.
  cache.Insert(1, 43, 100);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Lookup(1), 43);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsedByBytes) {
  std::atomic<int64_t> evictions{0}, bytes{0};
  // One shard, tight budget: only a few entries fit.
  ShardedLruCache<int> cache(/*max_bytes=*/1000, /*num_shards=*/1, nullptr,
                             nullptr, &evictions, &bytes);
  for (int i = 0; i < 10; ++i) {
    cache.Insert(static_cast<uint64_t>(i), i, 200);
  }
  EXPECT_GT(evictions.load(), 0);
  EXPECT_LE(cache.bytes(), 1000u + 264u);  // at most one oversized admit
  // The most recent insert survived; the oldest did not.
  EXPECT_TRUE(cache.Lookup(9).has_value());
  EXPECT_FALSE(cache.Lookup(0).has_value());
  EXPECT_EQ(bytes.load(), static_cast<int64_t>(cache.bytes()));
}

TEST(ShardedLruCacheTest, DestructorReleasesLiveBytes) {
  std::atomic<int64_t> bytes{0};
  {
    ShardedLruCache<int> cache(4096, 2, nullptr, nullptr, nullptr, &bytes);
    cache.Insert(1, 1, 100);
    cache.Insert(2, 2, 100);
    EXPECT_GT(bytes.load(), 0);
  }
  EXPECT_EQ(bytes.load(), 0);
}

TEST(CachedTopKTest, ServesSemantics) {
  CachedTopK exact;
  exact.computed_k = 5;
  exact.exact = true;
  exact.entries.resize(5);
  EXPECT_TRUE(exact.Serves(5));
  EXPECT_TRUE(exact.Serves(3));
  EXPECT_FALSE(exact.Serves(6));

  // Fewer candidates than K: the whole population is ranked.
  CachedTopK exhaustive = exact;
  exhaustive.entries.resize(2);
  EXPECT_TRUE(exhaustive.Serves(10));

  // Non-exact bounds depend on the run's K: only the same K is served.
  CachedTopK bounds_only = exact;
  bounds_only.exact = false;
  EXPECT_TRUE(bounds_only.Serves(5));
  EXPECT_FALSE(bounds_only.Serves(3));
}

TEST(SingleFlightTest, OneLeaderPerKey) {
  SingleFlight flights;
  EXPECT_TRUE(flights.Begin(7));
  EXPECT_FALSE(flights.Begin(7));
  EXPECT_TRUE(flights.Begin(8));  // other keys are independent
  flights.End(7);
  EXPECT_TRUE(flights.Begin(7));
  flights.End(7);
  flights.End(8);
}

TEST(KcritTableTest, ComputesEachKeyExactlyOnce) {
  CacheStats stats;
  KcritTable table(&stats);
  std::atomic<int> computations{0};
  auto compute = [&] {
    computations.fetch_add(1);
    return 4;
  };
  EXPECT_EQ(table.GetOrCompute(11, compute), 4);
  EXPECT_EQ(table.GetOrCompute(11, compute), 4);
  EXPECT_EQ(computations.load(), 1);
  EXPECT_EQ(stats.Read().kcrit_computes, 1);
  EXPECT_EQ(stats.Read().kcrit_hits, 1);

  // Concurrent callers on one fresh key still compute exactly once.
  std::atomic<int> concurrent{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      table.GetOrCompute(99, [&] {
        concurrent.fetch_add(1);
        return 6;
      });
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(concurrent.load(), 1);
}

TEST(QueryCacheTest, CandidatePrefixReuseAcrossStatements) {
  core::VideoQueryEngine engine(models::ModelSuite(), core::OnlineConfig(),
                                core::IngestOptions(),
                                CacheOptions::Enabled());
  ASSERT_TRUE(engine.AddVideo(DemoVideo("demo", 12)).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());

  // Uncached oracle from a second engine over the identical (seeded) video.
  core::VideoQueryEngine plain;
  ASSERT_TRUE(plain.AddVideo(DemoVideo("demo", 12)).ok());
  ASSERT_TRUE(plain.Ingest("demo").ok());

  core::Query narrow = JumpingCar();
  ASSERT_TRUE(engine.ExecuteTopK(narrow, "demo", 3).ok());
  const int64_t hits_before =
      engine.cache_stats()->Read().candidate_hits;

  // {jumping, car, human} extends the cached {jumping, car} prefix.
  core::Query wide = JumpingCar();
  wide.objects.push_back("human");
  auto cached = engine.ExecuteTopK(wide, "demo", 3);
  ASSERT_TRUE(cached.ok()) << cached.status();
  EXPECT_GT(engine.cache_stats()->Read().candidate_hits, hits_before);

  auto expected = plain.ExecuteTopK(wide, "demo", 3);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(cached->sequences.size(), expected->sequences.size());
  for (size_t i = 0; i < cached->sequences.size(); ++i) {
    EXPECT_EQ(cached->sequences[i].clips, expected->sequences[i].clips);
    EXPECT_EQ(cached->sequences[i].lower_bound,
              expected->sequences[i].lower_bound);
    EXPECT_EQ(cached->sequences[i].upper_bound,
              expected->sequences[i].upper_bound);
  }
}

TEST(QueryCacheTest, ResultCacheServesRepeatAndSmallerK) {
  core::VideoQueryEngine engine(models::ModelSuite(), core::OnlineConfig(),
                                core::IngestOptions(),
                                CacheOptions::Enabled());
  ASSERT_TRUE(engine.AddVideo(DemoVideo("demo", 12)).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());

  auto first = engine.ExecuteTopK(JumpingCar(), "demo", 5);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_GE(first->sequences.size(), 1u);

  // Identical repeat: served from cache, bit-identical, zero storage work.
  storage::StorageMetrics sink;
  ExecutionContext context;
  context.set_storage_sink(&sink);
  auto repeat = engine.ExecuteTopK(JumpingCar(), "demo", 5,
                                   core::OfflineAlgorithm::kRvaq,
                                   core::OfflineOptions(), context);
  ASSERT_TRUE(repeat.ok()) << repeat.status();
  EXPECT_GT(engine.cache_stats()->Read().result_hits, 0);
  EXPECT_EQ(sink.sorted_accesses + sink.random_accesses, 0);
  ASSERT_EQ(repeat->sequences.size(), first->sequences.size());
  for (size_t i = 0; i < repeat->sequences.size(); ++i) {
    EXPECT_EQ(repeat->sequences[i].clips, first->sequences[i].clips);
    EXPECT_EQ(repeat->sequences[i].lower_bound,
              first->sequences[i].lower_bound);
    EXPECT_EQ(repeat->sequences[i].upper_bound,
              first->sequences[i].upper_bound);
  }

  // K' = 3 < 5 is the exact K-prefix. A direct K=3 run ranks the same
  // sequences; exact scores may differ by float-summation order across
  // different K runs, so scores are compared to tolerance, clips exactly.
  auto smaller = engine.ExecuteTopK(JumpingCar(), "demo", 3);
  ASSERT_TRUE(smaller.ok()) << smaller.status();
  core::VideoQueryEngine plain;
  ASSERT_TRUE(plain.AddVideo(DemoVideo("demo", 12)).ok());
  ASSERT_TRUE(plain.Ingest("demo").ok());
  auto direct = plain.ExecuteTopK(JumpingCar(), "demo", 3);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(smaller->sequences.size(), direct->sequences.size());
  for (size_t i = 0; i < smaller->sequences.size(); ++i) {
    EXPECT_EQ(smaller->sequences[i].clips, direct->sequences[i].clips);
    EXPECT_NEAR(smaller->sequences[i].lower_bound,
                direct->sequences[i].lower_bound, 1e-9);
    EXPECT_NEAR(smaller->sequences[i].upper_bound,
                direct->sequences[i].upper_bound, 1e-9);
  }
}

TEST(QueryCacheTest, CachePolicyOptOutBypassesBothTiers) {
  core::VideoQueryEngine engine(models::ModelSuite(), core::OnlineConfig(),
                                core::IngestOptions(),
                                CacheOptions::Enabled());
  ASSERT_TRUE(engine.AddVideo(DemoVideo("demo", 12)).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());

  core::OfflineOptions uncached;
  uncached.cache.use_candidate_cache = false;
  uncached.cache.use_result_cache = false;
  ASSERT_TRUE(engine
                  .ExecuteTopK(JumpingCar(), "demo", 3,
                               core::OfflineAlgorithm::kRvaq, uncached)
                  .ok());
  ASSERT_TRUE(engine
                  .ExecuteTopK(JumpingCar(), "demo", 3,
                               core::OfflineAlgorithm::kRvaq, uncached)
                  .ok());
  const CacheStats::Snapshot stats = engine.cache_stats()->Read();
  EXPECT_EQ(stats.result_hits + stats.result_misses, 0);
  EXPECT_EQ(stats.candidate_hits + stats.candidate_misses, 0);
}

TEST(QueryCacheTest, SharedKcritTableComputesOncePerSnapshot) {
  core::VideoQueryEngine engine(models::ModelSuite(), core::OnlineConfig(),
                                core::IngestOptions(),
                                CacheOptions::Enabled());
  ASSERT_TRUE(engine.AddVideo(DemoVideo("demo", 12)).ok());

  const core::SnapshotPtr snapshot = engine.Pin();
  auto first = core::ExecuteOnlineOn(snapshot, JumpingCar(), "demo",
                                     core::OnlineEngine::Mode::kSvaqd);
  ASSERT_TRUE(first.ok()) << first.status();
  const CacheStats::Snapshot after_first = engine.cache_stats()->Read();
  EXPECT_GT(after_first.kcrit_computes, 0);

  // The regression this pins down: a second execution on the same snapshot
  // must answer every critical-value lookup from the shared table — zero
  // new scan-statistic computations — and produce identical sequences.
  auto second = core::ExecuteOnlineOn(snapshot, JumpingCar(), "demo",
                                      core::OnlineEngine::Mode::kSvaqd);
  ASSERT_TRUE(second.ok()) << second.status();
  const CacheStats::Snapshot after_second = engine.cache_stats()->Read();
  EXPECT_EQ(after_second.kcrit_computes, after_first.kcrit_computes);
  EXPECT_GT(after_second.kcrit_hits, after_first.kcrit_hits);
  EXPECT_TRUE(first->sequences == second->sequences);
}

TEST(QueryCacheTest, PublishSwapsInFreshCacheAndPinsKeepTheirs) {
  core::VideoQueryEngine engine(models::ModelSuite(), core::OnlineConfig(),
                                core::IngestOptions(),
                                CacheOptions::Enabled());
  ASSERT_TRUE(engine.AddVideo(DemoVideo("a", 1)).ok());
  ASSERT_TRUE(engine.Ingest("a").ok());

  const core::SnapshotPtr old_pin = engine.Pin();
  ASSERT_NE(old_pin->cache, nullptr);
  auto warm = core::ExecuteTopKOn(old_pin, JumpingCar(), "a", 3);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(old_pin->cache->result_entries(), 0u);

  // Churn: a new ingest publishes a snapshot with a *different, empty*
  // cache — entries derived from the old artifact set cannot leak forward.
  ASSERT_TRUE(engine.AddVideo(DemoVideo("b", 2)).ok());
  ASSERT_TRUE(engine.Ingest("b").ok());
  const core::SnapshotPtr new_pin = engine.Pin();
  ASSERT_NE(new_pin->cache, nullptr);
  EXPECT_NE(new_pin->cache, old_pin->cache);
  EXPECT_EQ(new_pin->cache->result_entries(), 0u);

  // The new snapshot serves the new catalog: a repository sweep sees both
  // videos even though the old cache held entries for one.
  auto all = core::ExecuteTopKAllOn(new_pin, JumpingCar(), 8);
  ASSERT_TRUE(all.ok()) << all.status();
  bool saw_b = false;
  for (const auto& entry : all->sequences) {
    if (entry.video_name == "b") saw_b = true;
  }
  EXPECT_TRUE(saw_b);

  // The old pin still answers from its own generation, identically.
  auto again = core::ExecuteTopKOn(old_pin, JumpingCar(), "a", 3);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->sequences.size(), warm->sequences.size());
  for (size_t i = 0; i < again->sequences.size(); ++i) {
    EXPECT_EQ(again->sequences[i].clips, warm->sequences[i].clips);
  }
}

TEST(QueryCacheTest, SingleFlightDeduplicatesConcurrentIdenticalQueries) {
  core::VideoQueryEngine engine(models::ModelSuite(), core::OnlineConfig(),
                                core::IngestOptions(),
                                CacheOptions::Enabled());
  ASSERT_TRUE(engine.AddVideo(DemoVideo("demo", 12)).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());

  // Baseline storage cost of one cold run, from an identical engine.
  core::VideoQueryEngine baseline_engine(models::ModelSuite(),
                                         core::OnlineConfig(),
                                         core::IngestOptions(),
                                         CacheOptions::Enabled());
  ASSERT_TRUE(baseline_engine.AddVideo(DemoVideo("demo", 12)).ok());
  ASSERT_TRUE(baseline_engine.Ingest("demo").ok());
  storage::StorageMetrics baseline;
  {
    ExecutionContext context;
    context.set_storage_sink(&baseline);
    ASSERT_TRUE(baseline_engine
                    .ExecuteTopK(JumpingCar(), "demo", 3,
                                 core::OfflineAlgorithm::kRvaq,
                                 core::OfflineOptions(), context)
                    .ok());
  }
  const int64_t cold_accesses =
      baseline.sorted_accesses + baseline.random_accesses;
  ASSERT_GT(cold_accesses, 0);

  // N identical concurrent statements: exactly one (the single-flight
  // leader) pays the storage cost; followers wait and serve from cache.
  constexpr int kThreads = 8;
  std::vector<storage::StorageMetrics> sinks(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ExecutionContext context;
      context.set_storage_sink(&sinks[t]);
      auto result = engine.ExecuteTopK(JumpingCar(), "demo", 3,
                                       core::OfflineAlgorithm::kRvaq,
                                       core::OfflineOptions(), context);
      if (!result.ok()) failures.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  int64_t total = 0;
  for (const storage::StorageMetrics& sink : sinks) {
    total += sink.sorted_accesses + sink.random_accesses;
  }
  EXPECT_EQ(total, cold_accesses);
}

TEST(QueryCacheTest, StatementPathPopulatesAndServesCache) {
  const std::string statement =
      "SELECT MERGE(clipID), RANK(act, obj) "
      "FROM (PROCESS demo PRODUCE clipID, obj USING ObjectTracker, "
      "act USING ActionRecognizer) "
      "WHERE act='jumping' AND obj.include('car') "
      "ORDER BY RANK(act, obj) LIMIT 3";
  core::VideoQueryEngine engine(models::ModelSuite(), core::OnlineConfig(),
                                core::IngestOptions(),
                                CacheOptions::Enabled());
  ASSERT_TRUE(engine.AddVideo(DemoVideo("demo", 12)).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());

  auto cold = query::ExecuteStatement(&engine, statement);
  ASSERT_TRUE(cold.ok()) << cold.status();
  ASSERT_TRUE(cold->topk.has_value());
  auto warm = query::ExecuteStatement(&engine, statement);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_GT(engine.cache_stats()->Read().result_hits, 0);
  ASSERT_EQ(warm->topk->sequences.size(), cold->topk->sequences.size());
  for (size_t i = 0; i < warm->topk->sequences.size(); ++i) {
    EXPECT_EQ(warm->topk->sequences[i].clips, cold->topk->sequences[i].clips);
    EXPECT_EQ(warm->topk->sequences[i].lower_bound,
              cold->topk->sequences[i].lower_bound);
    EXPECT_EQ(warm->topk->sequences[i].upper_bound,
              cold->topk->sequences[i].upper_bound);
  }
}

TEST(QueryCacheTest, DisabledEngineCarriesNoCache) {
  core::VideoQueryEngine engine;  // default: caching off
  ASSERT_TRUE(engine.AddVideo(DemoVideo("demo", 12)).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());
  EXPECT_EQ(engine.Pin()->cache, nullptr);
  ASSERT_TRUE(engine.ExecuteTopK(JumpingCar(), "demo", 3).ok());
  ASSERT_TRUE(engine.ExecuteTopK(JumpingCar(), "demo", 3).ok());
  const CacheStats::Snapshot stats = engine.cache_stats()->Read();
  EXPECT_EQ(stats.hits() + stats.misses(), 0);
}

}  // namespace
}  // namespace svq::cache
