#include "svq/core/rvaq.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "svq/common/rng.h"
#include "svq/core/baselines.h"

namespace svq::core {
namespace {

/// Builds a self-consistent IngestedVideo directly (tables + individual
/// sequences) so the offline algorithms can be verified against a
/// brute-force oracle without running the full ingestion pipeline.
struct OfflineWorld {
  IngestedVideo ingested;
  Query query;
  AdditiveScoring scoring;
  /// Brute-force exact sequence scores, sorted descending.
  std::vector<RankedSequence> expected;
};

OfflineWorld MakeWorld(uint64_t seed, int num_clips = 300) {
  Rng rng(seed);
  OfflineWorld world;
  world.query.action = "smoking";
  world.query.objects = {"cup", "glass"};

  world.ingested.id = 0;
  world.ingested.num_clips = num_clips;
  world.ingested.num_frames = num_clips * 80;

  // Random per-label positive sequences; candidates = their intersection.
  auto random_sequences = [&](double on_mean, double off_mean) {
    video::IntervalSet set;
    int64_t cursor = static_cast<int64_t>(rng.NextDouble() * off_mean);
    while (cursor < num_clips) {
      const int64_t run =
          1 + static_cast<int64_t>(rng.NextGeometric(1.0 / on_mean));
      set.Add({cursor, std::min<int64_t>(num_clips, cursor + run)});
      cursor += run + 1 +
                static_cast<int64_t>(rng.NextGeometric(1.0 / off_mean));
    }
    return set;
  };
  const video::IntervalSet act = random_sequences(12.0, 10.0);
  const video::IntervalSet cup = random_sequences(15.0, 8.0);
  const video::IntervalSet glass = random_sequences(18.0, 6.0);
  world.ingested.action_sequences["smoking"] = act;
  world.ingested.object_sequences["cup"] = cup;
  world.ingested.object_sequences["glass"] = glass;

  // Tables: every clip in a label's sequences gets a row (invariant),
  // plus random extra rows.
  std::map<std::string, std::map<video::ClipIndex, double>> scores;
  auto fill = [&](const std::string& label, const video::IntervalSet& seqs,
                  double max_score) {
    for (int c = 0; c < num_clips; ++c) {
      if (seqs.Contains(c) || rng.NextBernoulli(0.4)) {
        scores[label][c] = rng.NextDouble(0.05, max_score);
      }
    }
  };
  fill("smoking", act, 3.0);
  fill("cup", cup, 6.0);
  fill("glass", glass, 6.0);
  for (const auto& [label, per_clip] : scores) {
    std::vector<storage::ClipScoreRow> rows;
    for (const auto& [clip, score] : per_clip) rows.push_back({clip, score});
    auto table = storage::MemoryScoreTable::Create(std::move(rows));
    EXPECT_TRUE(table.ok());
    if (label == "smoking") {
      world.ingested.action_tables[label] = std::move(*table);
    } else {
      world.ingested.object_tables[label] = std::move(*table);
    }
  }

  // Brute-force oracle.
  video::IntervalSet candidates = video::IntervalSet::Intersect(
      video::IntervalSet::Intersect(act, cup), glass);
  for (const video::Interval& seq : candidates.intervals()) {
    double total = 0.0;
    for (video::ClipIndex c = seq.begin; c < seq.end; ++c) {
      auto get = [&](const std::string& label) {
        auto it = scores[label].find(c);
        return it == scores[label].end() ? 0.0 : it->second;
      };
      total += world.scoring.ClipScore({get("cup"), get("glass")},
                                       get("smoking"));
    }
    world.expected.push_back({seq, total, total});
  }
  std::sort(world.expected.begin(), world.expected.end(),
            [](const RankedSequence& a, const RankedSequence& b) {
              return a.upper_bound > b.upper_bound;
            });
  return world;
}

void ExpectMatchesOracle(const TopKResult& result,
                         const std::vector<RankedSequence>& expected, int k,
                         bool check_scores) {
  const size_t n = std::min<size_t>(static_cast<size_t>(k), expected.size());
  ASSERT_EQ(result.sequences.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(result.sequences[i].clips, expected[i].clips) << "rank " << i;
    if (check_scores) {
      EXPECT_NEAR(result.sequences[i].upper_bound, expected[i].upper_bound,
                  1e-6)
          << "rank " << i;
      EXPECT_NEAR(result.sequences[i].lower_bound, expected[i].lower_bound,
                  1e-6)
          << "rank " << i;
    }
  }
}

TEST(CandidateSequencesTest, IntersectsAllPredicates) {
  OfflineWorld world = MakeWorld(10);
  auto candidates = CandidateSequences(world.ingested, world.query);
  ASSERT_TRUE(candidates.ok());
  video::IntervalSet expected;
  for (const auto& e : world.expected) expected.Add(e.clips);
  EXPECT_EQ(*candidates, expected);
}

TEST(CandidateSequencesTest, MissingLabelYieldsEmpty) {
  OfflineWorld world = MakeWorld(11);
  Query query = world.query;
  query.objects.push_back("unicorn");
  auto candidates = CandidateSequences(world.ingested, query);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE(candidates->empty());
}

/// RVAQ, RVAQ-noSkip, FA and Pq-Traverse must all return the oracle top-K.
class OfflineAlgorithmsTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(OfflineAlgorithmsTest, AllAlgorithmsMatchBruteForce) {
  const auto [seed, k] = GetParam();
  OfflineWorld world = MakeWorld(seed);
  ASSERT_FALSE(world.expected.empty());
  const storage::DiskCostModel cost;

  OfflineOptions options;
  auto rvaq = RunRvaq(world.ingested, world.query, k, world.scoring, options);
  ASSERT_TRUE(rvaq.ok()) << rvaq.status();
  ExpectMatchesOracle(*rvaq, world.expected, k, /*check_scores=*/true);

  auto noskip =
      RunRvaqNoSkip(world.ingested, world.query, k, world.scoring, cost);
  ASSERT_TRUE(noskip.ok()) << noskip.status();
  ExpectMatchesOracle(*noskip, world.expected, k, true);

  auto fagin = RunFagin(world.ingested, world.query, k, world.scoring, cost);
  ASSERT_TRUE(fagin.ok()) << fagin.status();
  ExpectMatchesOracle(*fagin, world.expected, k, true);

  auto traverse =
      RunPqTraverse(world.ingested, world.query, k, world.scoring, cost);
  ASSERT_TRUE(traverse.ok()) << traverse.status();
  ExpectMatchesOracle(*traverse, world.expected, k, true);
}

INSTANTIATE_TEST_SUITE_P(
    SeedAndKSweep, OfflineAlgorithmsTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 4, 5, 6),
                       ::testing::Values(1, 3, 5, 100)));

TEST(RvaqTest, BoundsOnlyModeReturnsCorrectSet) {
  OfflineWorld world = MakeWorld(42);
  OfflineOptions options;
  options.compute_exact_scores = false;
  const int k = 3;
  auto rvaq = RunRvaq(world.ingested, world.query, k, world.scoring, options);
  ASSERT_TRUE(rvaq.ok());
  // The *set* of sequences matches the oracle; scores are only bounded.
  std::vector<video::Interval> got, want;
  for (const auto& s : rvaq->sequences) got.push_back(s.clips);
  for (size_t i = 0; i < std::min<size_t>(k, world.expected.size()); ++i) {
    want.push_back(world.expected[i].clips);
  }
  auto by_begin = [](const video::Interval& a, const video::Interval& b) {
    return a.begin < b.begin;
  };
  std::sort(got.begin(), got.end(), by_begin);
  std::sort(want.begin(), want.end(), by_begin);
  EXPECT_EQ(got, want);
  for (const auto& s : rvaq->sequences) {
    EXPECT_LE(s.lower_bound, s.upper_bound + 1e-9);
  }
}

TEST(RvaqTest, SkipReducesRandomAccesses) {
  OfflineWorld world = MakeWorld(7);
  const int k = 2;
  OfflineOptions options;
  auto rvaq = RunRvaq(world.ingested, world.query, k, world.scoring, options);
  auto noskip = RunRvaqNoSkip(world.ingested, world.query, k, world.scoring,
                              options.cost_model);
  ASSERT_TRUE(rvaq.ok());
  ASSERT_TRUE(noskip.ok());
  EXPECT_LT(rvaq->stats.storage.random_accesses,
            noskip->stats.storage.random_accesses);
}

TEST(RvaqTest, FaginCostsMoreThanRvaq) {
  OfflineWorld world = MakeWorld(8);
  const int k = 2;
  auto rvaq = RunRvaq(world.ingested, world.query, k, world.scoring,
                      OfflineOptions());
  auto fagin = RunFagin(world.ingested, world.query, k, world.scoring,
                        storage::DiskCostModel());
  ASSERT_TRUE(rvaq.ok());
  ASSERT_TRUE(fagin.ok());
  EXPECT_LT(rvaq->stats.storage.random_accesses,
            fagin->stats.storage.random_accesses);
}

TEST(RvaqTest, PqTraverseUsesNoRandomAccesses) {
  OfflineWorld world = MakeWorld(9);
  auto traverse = RunPqTraverse(world.ingested, world.query, 5, world.scoring,
                                storage::DiskCostModel());
  ASSERT_TRUE(traverse.ok());
  EXPECT_EQ(traverse->stats.storage.random_accesses, 0);
  EXPECT_EQ(traverse->stats.storage.sorted_accesses, 0);
  EXPECT_GT(traverse->stats.storage.sequential_reads, 0);
}

TEST(RvaqTest, EmptyCandidatesGiveEmptyResult) {
  OfflineWorld world = MakeWorld(12);
  Query query = world.query;
  query.action = "never_happens";
  auto rvaq =
      RunRvaq(world.ingested, query, 3, world.scoring, OfflineOptions());
  ASSERT_TRUE(rvaq.ok());
  EXPECT_TRUE(rvaq->sequences.empty());
  EXPECT_EQ(rvaq->stats.storage.random_accesses, 0);
}

TEST(RvaqTest, RejectsInvalidK) {
  OfflineWorld world = MakeWorld(13);
  EXPECT_FALSE(
      RunRvaq(world.ingested, world.query, 0, world.scoring, OfflineOptions())
          .ok());
}

TEST(ScoringTest, AdditiveInstanceProperties) {
  AdditiveScoring scoring;
  EXPECT_DOUBLE_EQ(scoring.ClipScore({1.0, 2.0}, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(scoring.AggregateIdentity(), 0.0);
  EXPECT_DOUBLE_EQ(scoring.Aggregate(2.0, 3.0), 5.0);
  EXPECT_DOUBLE_EQ(scoring.Replicate(2.5, 4), 10.0);
  EXPECT_DOUBLE_EQ(scoring.Replicate(2.5, 0), scoring.AggregateIdentity());
  EXPECT_DOUBLE_EQ(scoring.SequenceScore({1.0, 2.0, 3.0}), 6.0);
}

TEST(ScoringTest, MaxInstanceProperties) {
  MaxScoring scoring;
  EXPECT_DOUBLE_EQ(scoring.Aggregate(2.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(scoring.Replicate(2.5, 4), 2.5);
  EXPECT_DOUBLE_EQ(scoring.Replicate(2.5, 0), scoring.AggregateIdentity());
  EXPECT_DOUBLE_EQ(scoring.SequenceScore({1.0, 5.0, 3.0}), 5.0);
}

TEST(RvaqTest, ReportedBoundsBracketTrueScores) {
  // Whatever RVAQ reports, [lower, upper] must bracket the exact sequence
  // score — for every K, both with and without the exact-score requirement.
  for (uint64_t seed = 20; seed <= 23; ++seed) {
    OfflineWorld world = MakeWorld(seed);
    std::map<int64_t, double> truth;  // clips.begin -> exact score
    for (const RankedSequence& seq : world.expected) {
      truth[seq.clips.begin] = seq.upper_bound;
    }
    for (const int k : {1, 2, 5, 50}) {
      for (const bool exact : {true, false}) {
        OfflineOptions options;
        options.compute_exact_scores = exact;
        auto result =
            RunRvaq(world.ingested, world.query, k, world.scoring, options);
        ASSERT_TRUE(result.ok());
        for (const RankedSequence& seq : result->sequences) {
          ASSERT_TRUE(truth.contains(seq.clips.begin));
          const double score = truth[seq.clips.begin];
          EXPECT_LE(seq.lower_bound, score + 1e-6)
              << "seed " << seed << " k " << k << " exact " << exact;
          EXPECT_GE(seq.upper_bound, score - 1e-6)
              << "seed " << seed << " k " << k << " exact " << exact;
        }
      }
    }
  }
}

TEST(RvaqTest, WorksWithMaxScoring) {
  OfflineWorld world = MakeWorld(14);
  MaxScoring max_scoring;
  // Oracle under max scoring.
  const storage::DiskCostModel cost;
  auto traverse =
      RunPqTraverse(world.ingested, world.query, 3, max_scoring, cost);
  OfflineOptions options;
  auto rvaq = RunRvaq(world.ingested, world.query, 3, max_scoring, options);
  ASSERT_TRUE(traverse.ok());
  ASSERT_TRUE(rvaq.ok());
  ASSERT_EQ(rvaq->sequences.size(), traverse->sequences.size());
  for (size_t i = 0; i < rvaq->sequences.size(); ++i) {
    EXPECT_EQ(rvaq->sequences[i].clips, traverse->sequences[i].clips);
    EXPECT_NEAR(rvaq->sequences[i].upper_bound,
                traverse->sequences[i].upper_bound, 1e-9);
  }
}

}  // namespace
}  // namespace svq::core
