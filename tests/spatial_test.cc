#include "svq/core/spatial.h"

#include <gtest/gtest.h>

#include "svq/models/synthetic_models.h"

namespace svq::core {
namespace {

using models::BoundingBox;
using models::ObjectDetection;

BoundingBox Box(double x, double y, double w = 0.1, double h = 0.1) {
  return {x, y, w, h};
}

TEST(BoxesSatisfyTest, Directional) {
  const BoundingBox left = Box(0.1, 0.4);
  const BoundingBox right = Box(0.5, 0.4);
  EXPECT_TRUE(BoxesSatisfy(RelOp::kLeftOf, left, right));
  EXPECT_FALSE(BoxesSatisfy(RelOp::kLeftOf, right, left));
  EXPECT_TRUE(BoxesSatisfy(RelOp::kRightOf, right, left));
  EXPECT_FALSE(BoxesSatisfy(RelOp::kRightOf, left, right));

  const BoundingBox top = Box(0.4, 0.1);
  const BoundingBox bottom = Box(0.4, 0.5);
  EXPECT_TRUE(BoxesSatisfy(RelOp::kAbove, top, bottom));
  EXPECT_FALSE(BoxesSatisfy(RelOp::kAbove, bottom, top));
  EXPECT_TRUE(BoxesSatisfy(RelOp::kBelow, bottom, top));
}

TEST(BoxesSatisfyTest, DirectionalRequiresSeparation) {
  // Overlapping extents satisfy neither left_of nor right_of.
  const BoundingBox a = Box(0.1, 0.4, 0.3, 0.1);
  const BoundingBox b = Box(0.3, 0.4, 0.3, 0.1);
  EXPECT_FALSE(BoxesSatisfy(RelOp::kLeftOf, a, b));
  EXPECT_FALSE(BoxesSatisfy(RelOp::kRightOf, a, b));
  // Touching edges count as separated.
  const BoundingBox c = Box(0.4, 0.4, 0.1, 0.1);
  EXPECT_TRUE(BoxesSatisfy(RelOp::kLeftOf, Box(0.3, 0.4, 0.1, 0.1), c));
}

TEST(BoxesSatisfyTest, Overlaps) {
  EXPECT_TRUE(BoxesSatisfy(RelOp::kOverlaps, Box(0.1, 0.1, 0.3, 0.3),
                           Box(0.3, 0.3, 0.3, 0.3)));
  EXPECT_FALSE(BoxesSatisfy(RelOp::kOverlaps, Box(0.1, 0.1, 0.1, 0.1),
                            Box(0.5, 0.5, 0.1, 0.1)));
  // Touching boxes do not overlap (half-open semantics); the constants are
  // binary-exact so the edges align precisely.
  EXPECT_FALSE(BoxesSatisfy(RelOp::kOverlaps, Box(0.125, 0.125, 0.25, 0.25),
                            Box(0.375, 0.125, 0.25, 0.25)));
}

TEST(BoxesSatisfyTest, LeftOfAndSwappedRightOfAgree) {
  // left_of(s, o) must be exactly right_of(o, s).
  for (double x = 0.0; x < 0.9; x += 0.07) {
    const BoundingBox s = Box(x, 0.2);
    const BoundingBox o = Box(0.45, 0.2);
    EXPECT_EQ(BoxesSatisfy(RelOp::kLeftOf, s, o),
              BoxesSatisfy(RelOp::kRightOf, o, s))
        << "x=" << x;
  }
}

std::vector<ObjectDetection> Detections() {
  ObjectDetection human;
  human.label = "human";
  human.score = 0.9;
  human.box = Box(0.1, 0.4);
  ObjectDetection car;
  car.label = "car";
  car.score = 0.8;
  car.box = Box(0.6, 0.4);
  return {human, car};
}

TEST(RelationshipHoldsTest, FindsSatisfyingPair) {
  Relationship rel{RelOp::kLeftOf, "human", "car"};
  EXPECT_TRUE(RelationshipHolds(rel, Detections(), 0.5));
  Relationship reversed{RelOp::kLeftOf, "car", "human"};
  EXPECT_FALSE(RelationshipHolds(reversed, Detections(), 0.5));
}

TEST(RelationshipHoldsTest, RespectsScoreThreshold) {
  auto dets = Detections();
  dets[1].score = 0.3;  // car below threshold
  Relationship rel{RelOp::kLeftOf, "human", "car"};
  EXPECT_FALSE(RelationshipHolds(rel, dets, 0.5));
  EXPECT_TRUE(RelationshipHolds(rel, dets, 0.2));
}

TEST(RelationshipHoldsTest, MissingLabel) {
  Relationship rel{RelOp::kLeftOf, "human", "bus"};
  EXPECT_FALSE(RelationshipHolds(rel, Detections(), 0.5));
  EXPECT_FALSE(RelationshipHolds(rel, {}, 0.5));
}

TEST(InstanceBoxTest, StableAndDeterministic) {
  video::TrackInstance inst{7, "car", {100, 600}};
  const auto a = models::InstanceBox(inst, 250, 42);
  const auto b = models::InstanceBox(inst, 250, 42);
  EXPECT_DOUBLE_EQ(a.x, b.x);
  EXPECT_DOUBLE_EQ(a.y, b.y);
  // Drift is slow: adjacent frames move the box by far less than its size.
  const auto next = models::InstanceBox(inst, 251, 42);
  EXPECT_LT(std::abs(next.x - a.x), 0.01);
  // Boxes stay within the frame over the whole appearance.
  for (video::FrameIndex f = inst.frames.begin; f < inst.frames.end;
       f += 17) {
    const auto box = models::InstanceBox(inst, f, 42);
    EXPECT_GE(box.x, 0.0);
    EXPECT_GE(box.y, 0.0);
    EXPECT_LE(box.x + box.width, 1.0 + 1e-9);
    EXPECT_LE(box.y + box.height, 1.0 + 1e-9);
  }
}

TEST(InstanceBoxTest, DifferentInstancesDifferentRegions) {
  video::TrackInstance a{1, "car", {0, 500}};
  video::TrackInstance b{2, "car", {0, 500}};
  const auto box_a = models::InstanceBox(a, 100, 42);
  const auto box_b = models::InstanceBox(b, 100, 42);
  EXPECT_TRUE(std::abs(box_a.x - box_b.x) > 1e-6 ||
              std::abs(box_a.y - box_b.y) > 1e-6);
}

TEST(InstanceLookupTest, FindsCoveringInstance) {
  video::GroundTruth gt;
  const int64_t first = gt.AddObjectInstance("car", {100, 200});
  gt.AddObjectInstance("car", {300, 400});
  gt.AddObjectInstance("human", {150, 250});
  models::InstanceLookup lookup(gt);
  ASSERT_NE(lookup.At("car", 150), nullptr);
  EXPECT_EQ(lookup.At("car", 150)->instance_id, first);
  EXPECT_EQ(lookup.At("car", 250), nullptr);
  ASSERT_NE(lookup.At("car", 350), nullptr);
  EXPECT_EQ(lookup.At("human", 160)->label, "human");
  EXPECT_EQ(lookup.At("bus", 160), nullptr);
}

}  // namespace
}  // namespace svq::core
