// Corruption-path tests of OpenIngestedVideo: every broken on-disk state —
// truncated manifest, missing table file, garbage bytes in a table or a
// sequence store — must surface as a clean Corruption/IOError status, never
// a crash or a silently wrong IngestedVideo. Each test ingests a small
// video to a fresh temp directory, damages exactly one artifact, and
// reopens.

#include "svq/core/ingest.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "svq/models/synthetic_models.h"

namespace svq::core {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<const video::SyntheticVideo> MakeVideo(uint64_t seed = 8) {
  video::SyntheticVideoSpec spec;
  spec.name = "corruption_test";
  spec.num_frames = 16000;
  spec.seed = seed;
  spec.actions.push_back({"smoking", 400.0, 4800.0});
  video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.85;
  cup.coverage = 0.9;
  cup.mean_on_frames = 250.0;
  cup.mean_off_frames = 3000.0;
  spec.objects.push_back(cup);
  auto video = video::SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

/// Ingests MakeVideo() to a fresh disk-backed directory and returns it.
/// The directory reopens cleanly until a test damages it.
class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("svq_corruption_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    IngestOptions options;
    options.backend = IngestOptions::TableBackend::kDisk;
    options.directory = dir_;
    auto video = MakeVideo();
    models::ModelSet models =
        models::MakeModelSet(video, models::MaskRcnnI3dSuite(), {}, {});
    auto ingested = IngestVideo(video, 1, models.tracker.get(),
                                models.recognizer.get(), options);
    ASSERT_TRUE(ingested.ok()) << ingested.status();
    ASSERT_TRUE(OpenIngestedVideo(dir_).ok());
  }

  void TearDown() override { fs::remove_all(dir_); }

  /// Keeps only the first `bytes` bytes of `filename`.
  void Truncate(const std::string& filename, uint64_t bytes) {
    std::error_code ec;
    fs::resize_file(fs::path(dir_) / filename, bytes, ec);
    ASSERT_FALSE(ec) << ec.message();
  }

  /// Replaces `filename`'s contents with arbitrary non-format bytes.
  void FillWithGarbage(const std::string& filename) {
    std::ofstream out(fs::path(dir_) / filename,
                      std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good());
    const std::string junk(128, '\x5a');
    out << junk;
  }

  std::string ReadRaw(const std::string& filename) {
    std::ifstream in(fs::path(dir_) / filename, std::ios::binary);
    EXPECT_TRUE(in.good()) << filename;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  void WriteRaw(const std::string& filename, const std::string& bytes) {
    std::ofstream out(fs::path(dir_) / filename,
                      std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << filename;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
};

TEST_F(CorruptionTest, MissingDirectoryIsIOError) {
  auto result = OpenIngestedVideo(dir_ + "/does_not_exist");
  EXPECT_TRUE(result.status().IsIOError()) << result.status();
}

TEST_F(CorruptionTest, MissingManifestIsIOError) {
  fs::remove(fs::path(dir_) / "manifest.svqm");
  auto result = OpenIngestedVideo(dir_);
  EXPECT_TRUE(result.status().IsIOError()) << result.status();
}

TEST_F(CorruptionTest, BadManifestMagicIsCorruption) {
  FillWithGarbage("manifest.svqm");
  auto result = OpenIngestedVideo(dir_);
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
}

TEST_F(CorruptionTest, ManifestTruncatedAfterMagicIsCorruption) {
  // Keep the 4-byte magic plus a sliver of the header: the fixed fields
  // can no longer be read in full.
  Truncate("manifest.svqm", 6);
  auto result = OpenIngestedVideo(dir_);
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
}

TEST_F(CorruptionTest, ManifestTruncatedInLabelListIsCorruption) {
  // Cut the manifest just short of its full size: the fixed header still
  // parses but a label list read runs off the end.
  const auto full = fs::file_size(fs::path(dir_) / "manifest.svqm");
  ASSERT_GT(full, 4u);
  Truncate("manifest.svqm", full - 3);
  auto result = OpenIngestedVideo(dir_);
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
}

TEST_F(CorruptionTest, EmptyManifestIsCorruption) {
  Truncate("manifest.svqm", 0);
  auto result = OpenIngestedVideo(dir_);
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
}

TEST_F(CorruptionTest, MissingObjectTableIsIOError) {
  fs::remove(fs::path(dir_) / "obj_cup.svqt");
  auto result = OpenIngestedVideo(dir_);
  EXPECT_TRUE(result.status().IsIOError()) << result.status();
}

TEST_F(CorruptionTest, MissingActionTableIsIOError) {
  fs::remove(fs::path(dir_) / "act_smoking.svqt");
  auto result = OpenIngestedVideo(dir_);
  EXPECT_TRUE(result.status().IsIOError()) << result.status();
}

TEST_F(CorruptionTest, GarbageObjectTableIsCorruption) {
  FillWithGarbage("obj_cup.svqt");
  auto result = OpenIngestedVideo(dir_);
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
}

TEST_F(CorruptionTest, TruncatedActionTableIsCorruption) {
  const auto full = fs::file_size(fs::path(dir_) / "act_smoking.svqt");
  ASSERT_GT(full, 8u);
  Truncate("act_smoking.svqt", full / 2);
  auto result = OpenIngestedVideo(dir_);
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
}

TEST_F(CorruptionTest, MissingSequenceStoreIsIOError) {
  fs::remove(fs::path(dir_) / "object_sequences.svqs");
  auto result = OpenIngestedVideo(dir_);
  EXPECT_TRUE(result.status().IsIOError()) << result.status();
}

TEST_F(CorruptionTest, GarbageSequenceStoreIsCorruption) {
  FillWithGarbage("action_sequences.svqs");
  auto result = OpenIngestedVideo(dir_);
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
}

TEST_F(CorruptionTest, QuarantinesCorruptTable) {
  FillWithGarbage("obj_cup.svqt");
  auto result = OpenIngestedVideo(dir_);
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
  // The damaged file was renamed aside: a restart stops tripping over it
  // (it is now simply missing) while the bytes survive for inspection.
  EXPECT_FALSE(fs::exists(fs::path(dir_) / "obj_cup.svqt"));
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "obj_cup.svqt.quarantined"));
  EXPECT_TRUE(OpenIngestedVideo(dir_).status().IsIOError());
}

TEST_F(CorruptionTest, QuarantinesCorruptManifest) {
  FillWithGarbage("manifest.svqm");
  auto result = OpenIngestedVideo(dir_);
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
  EXPECT_FALSE(fs::exists(fs::path(dir_) / "manifest.svqm"));
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "manifest.svqm.quarantined"));
}

TEST_F(CorruptionTest, QuarantinesCorruptSequenceStore) {
  FillWithGarbage("action_sequences.svqs");
  auto result = OpenIngestedVideo(dir_);
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
  EXPECT_FALSE(fs::exists(fs::path(dir_) / "action_sequences.svqs"));
  EXPECT_TRUE(
      fs::exists(fs::path(dir_) / "action_sequences.svqs.quarantined"));
}

TEST_F(CorruptionTest, MissingFilesAreNotQuarantined) {
  fs::remove(fs::path(dir_) / "act_smoking.svqt");
  EXPECT_TRUE(OpenIngestedVideo(dir_).status().IsIOError());
  EXPECT_FALSE(fs::exists(fs::path(dir_) / "act_smoking.svqt.quarantined"));
}

TEST_F(CorruptionTest, ManifestBitFlipCorpus) {
  // Every single-bit flip (plus a full-byte flip) in the manifest's first
  // 16 bytes and its 24-byte checksum footer must yield Corruption — never
  // a successful open, never a crash. The CRC covers the whole payload and
  // every footer field is validated, so nothing in these ranges is slack.
  const std::string pristine = ReadRaw("manifest.svqm");
  ASSERT_GT(pristine.size(), 40u);
  std::vector<size_t> positions;
  for (size_t i = 0; i < 16; ++i) positions.push_back(i);
  for (size_t i = pristine.size() - 24; i < pristine.size(); ++i) {
    positions.push_back(i);
  }
  for (const size_t i : positions) {
    for (int bit = 0; bit <= 8; ++bit) {
      const char mask =
          bit == 8 ? static_cast<char>(0xFF) : static_cast<char>(1 << bit);
      std::string mutated = pristine;
      mutated[i] ^= mask;
      WriteRaw("manifest.svqm", mutated);
      auto result = OpenIngestedVideo(dir_);
      ASSERT_FALSE(result.ok()) << "byte " << i << " bit " << bit;
      EXPECT_TRUE(result.status().IsCorruption())
          << "byte " << i << " bit " << bit << ": " << result.status();
    }
  }
}

TEST_F(CorruptionTest, ManifestTruncationSweep) {
  // A manifest cut at *any* byte boundary must be Corruption: the footer
  // (or the magic itself) is gone, so no truncation can masquerade as a
  // complete file.
  const std::string pristine = ReadRaw("manifest.svqm");
  for (size_t n = 0; n < pristine.size(); ++n) {
    WriteRaw("manifest.svqm", pristine.substr(0, n));
    auto result = OpenIngestedVideo(dir_);
    ASSERT_FALSE(result.ok()) << "length " << n;
    EXPECT_TRUE(result.status().IsCorruption())
        << "length " << n << ": " << result.status();
  }
}

TEST_F(CorruptionTest, ReadsLegacyV1Manifest) {
  // Pre-footer v1 manifest: same body, old magic, no footer. Rewritten
  // from the v2 bytes the fixture produced, then reopened.
  const std::string pristine = ReadRaw("manifest.svqm");
  ASSERT_GT(pristine.size(), 28u);
  std::string v1 = pristine.substr(0, pristine.size() - 24);
  const char v1_magic[4] = {0x4D, 0x51, 0x56, 0x53};  // "SVQM" LE
  v1.replace(0, 4, v1_magic, 4);
  WriteRaw("manifest.svqm", v1);
  auto result = OpenIngestedVideo(dir_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->name, "corruption_test");
  EXPECT_NE(result->ObjectTable("cup"), nullptr);
}

TEST_F(CorruptionTest, IntactDirectoryStillReopensAfterTests) {
  // Control: the fixture itself is sound, so the failures above are caused
  // by the damage each test inflicts, not by the setup.
  auto result = OpenIngestedVideo(dir_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->name, "corruption_test");
  EXPECT_NE(result->ObjectTable("cup"), nullptr);
  EXPECT_NE(result->ActionTable("smoking"), nullptr);
}

}  // namespace
}  // namespace svq::core
