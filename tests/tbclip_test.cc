#include "svq/core/tbclip.h"

#include <gtest/gtest.h>

#include <map>

#include "svq/common/rng.h"
#include "svq/core/scoring.h"
#include "svq/storage/score_table.h"

namespace svq::core {
namespace {

/// A small fixture world: two object tables + one action table over clips
/// [0, num_clips), a candidate set, and a brute-force score oracle.
struct World {
  std::unique_ptr<storage::MemoryScoreTable> obj1, obj2, act;
  video::IntervalSet candidates;
  std::map<video::ClipIndex, double> oracle;  // full g score per candidate
  AdditiveScoring scoring;
  storage::StorageMetrics metrics;

  std::vector<const storage::ScoreTable*> object_tables() const {
    return {obj1.get(), obj2.get()};
  }
};

World MakeWorld(uint64_t seed, int num_clips = 120) {
  Rng rng(seed);
  World world;
  // Candidates: a few runs.
  world.candidates.Add({10, 18});
  world.candidates.Add({40, 45});
  world.candidates.Add({80, 95});
  std::vector<storage::ClipScoreRow> r1, r2, ra;
  for (int c = 0; c < num_clips; ++c) {
    const bool candidate = world.candidates.Contains(c);
    // Candidates have rows in every table; non-candidates appear in a
    // random subset (like real per-type tables).
    const double s1 = rng.NextDouble(0.1, 5.0);
    const double s2 = rng.NextDouble(0.1, 5.0);
    const double sa = rng.NextDouble(0.1, 2.0);
    if (candidate || rng.NextBernoulli(0.5)) r1.push_back({c, s1});
    if (candidate || rng.NextBernoulli(0.5)) r2.push_back({c, s2});
    if (candidate || rng.NextBernoulli(0.3)) ra.push_back({c, sa});
    if (candidate) {
      world.oracle[c] = world.scoring.ClipScore({s1, s2}, sa);
    }
  }
  world.obj1 = *storage::MemoryScoreTable::Create(std::move(r1));
  world.obj2 = *storage::MemoryScoreTable::Create(std::move(r2));
  world.act = *storage::MemoryScoreTable::Create(std::move(ra));
  return world;
}

TEST(TbClipTest, DeliversEveryCandidateExactlyOnce) {
  World world = MakeWorld(1);
  TbClipIterator it(world.object_tables(), world.act.get(), &world.scoring,
                    &world.candidates, /*skip_enabled=*/true,
                    &world.metrics);
  std::map<video::ClipIndex, double> seen;
  for (;;) {
    auto next = it.Next();
    ASSERT_TRUE(next.ok()) << next.status();
    if (!next->has_value()) break;
    const TbClipItem top = (*next)->top;
    const TbClipItem btm = (*next)->bottom;
    EXPECT_TRUE(seen.emplace(top.clip, top.score).second)
        << "clip " << top.clip << " delivered twice";
    if (btm.clip != top.clip) {
      EXPECT_TRUE(seen.emplace(btm.clip, btm.score).second)
          << "clip " << btm.clip << " delivered twice";
    }
  }
  EXPECT_EQ(seen.size(), world.oracle.size());
  for (const auto& [clip, score] : world.oracle) {
    auto found = seen.find(clip);
    ASSERT_NE(found, seen.end()) << "clip " << clip << " never delivered";
    EXPECT_NEAR(found->second, score, 1e-9);
  }
}

TEST(TbClipTest, TopsDescendAndBottomsAscend) {
  World world = MakeWorld(2);
  TbClipIterator it(world.object_tables(), world.act.get(), &world.scoring,
                    &world.candidates, true, &world.metrics);
  double prev_top = std::numeric_limits<double>::infinity();
  double prev_btm = -1.0;
  for (;;) {
    auto next = it.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    const TbClipItem top = (*next)->top;
    const TbClipItem btm = (*next)->bottom;
    EXPECT_LE(top.score, prev_top + 1e-9);
    prev_top = top.score;
    if (btm.clip != top.clip) {
      EXPECT_GE(btm.score, prev_btm - 1e-9);
      prev_btm = btm.score;
    }
    // The top of this call always dominates the bottom of this call.
    EXPECT_GE(top.score, btm.score - 1e-9);
  }
}

TEST(TbClipTest, FirstTopIsGlobalMaximum) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    World world = MakeWorld(seed);
    TbClipIterator it(world.object_tables(), world.act.get(), &world.scoring,
                      &world.candidates, true, &world.metrics);
    auto next = it.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    double best = 0.0;
    double worst = std::numeric_limits<double>::infinity();
    for (const auto& [clip, score] : world.oracle) {
      best = std::max(best, score);
      worst = std::min(worst, score);
    }
    EXPECT_NEAR((*next)->top.score, best, 1e-9) << "seed " << seed;
    EXPECT_NEAR((*next)->bottom.score, worst, 1e-9) << "seed " << seed;
  }
}

TEST(TbClipTest, SkippedRangesAreNeverDelivered) {
  World world = MakeWorld(3);
  TbClipIterator it(world.object_tables(), world.act.get(), &world.scoring,
                    &world.candidates, true, &world.metrics);
  it.AddSkipRange({80, 95});  // drop the third candidate run entirely
  for (;;) {
    auto next = it.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    EXPECT_FALSE((*next)->top.clip >= 80 && (*next)->top.clip < 95);
    EXPECT_FALSE((*next)->bottom.clip >= 80 && (*next)->bottom.clip < 95);
  }
}

TEST(TbClipTest, NonCandidatesNeverChargedRandomAccess) {
  // Clips outside C(P_q) are part of the initial skip set in both modes:
  // random accesses stay bounded by #tables * #candidates.
  for (const bool dynamic_skip : {true, false}) {
    World world = MakeWorld(4);
    TbClipIterator it(world.object_tables(), world.act.get(), &world.scoring,
                      &world.candidates, dynamic_skip, &world.metrics);
    while (true) {
      auto next = it.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
    }
    EXPECT_LE(world.metrics.random_accesses,
              3 * static_cast<int64_t>(world.oracle.size()))
        << "dynamic_skip=" << dynamic_skip;
  }
}

TEST(TbClipTest, DynamicSkipRangesIgnoredWhenDisabled) {
  World world = MakeWorld(4);
  TbClipIterator it(world.object_tables(), world.act.get(), &world.scoring,
                    &world.candidates, /*skip_enabled=*/false,
                    &world.metrics);
  it.AddSkipRange({80, 95});  // no-op: dynamic skipping disabled
  int delivered_in_range = 0;
  while (true) {
    auto next = it.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    if ((*next)->top.clip >= 80 && (*next)->top.clip < 95) {
      ++delivered_in_range;
    }
  }
  EXPECT_GT(delivered_in_range, 0);
}

TEST(TbClipTest, EmptyCandidatesEndsImmediately) {
  World world = MakeWorld(5);
  video::IntervalSet empty;
  TbClipIterator it(world.object_tables(), world.act.get(), &world.scoring,
                    &empty, true, &world.metrics);
  auto next = it.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
}

TEST(TbClipTest, SingleCandidateDegeneratePair) {
  World world = MakeWorld(6);
  video::IntervalSet one;
  one.Add({12, 13});
  TbClipIterator it(world.object_tables(), world.act.get(), &world.scoring,
                    &one, true, &world.metrics);
  auto next = it.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->top.clip, 12);
  EXPECT_EQ((*next)->bottom.clip, 12);
  auto done = it.Next();
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(done->has_value());
}

TEST(TbClipTest, BoundedModeDeliversEveryCandidate) {
  World world = MakeWorld(7);
  TbClipIterator it(world.object_tables(), world.act.get(), &world.scoring,
                    &world.candidates, true, &world.metrics,
                    TbClipIterator::Emission::kBounded);
  std::map<video::ClipIndex, double> seen;
  for (;;) {
    auto next = it.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    seen.emplace((*next)->top.clip, (*next)->top.score);
    seen.emplace((*next)->bottom.clip, (*next)->bottom.score);
  }
  EXPECT_EQ(seen.size(), world.oracle.size());
  for (const auto& [clip, score] : world.oracle) {
    ASSERT_TRUE(seen.contains(clip));
    EXPECT_NEAR(seen[clip], score, 1e-9);
  }
}

TEST(TbClipTest, BoundedModeBoundsBracketUndeliveredClips) {
  // Property: after each step, every candidate clip that has not yet been
  // delivered scores within [lower_bound, upper_bound].
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    World world = MakeWorld(seed);
    TbClipIterator it(world.object_tables(), world.act.get(), &world.scoring,
                      &world.candidates, true, &world.metrics,
                      TbClipIterator::Emission::kBounded);
    std::map<video::ClipIndex, double> remaining = world.oracle;
    for (;;) {
      auto next = it.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      remaining.erase((*next)->top.clip);
      remaining.erase((*next)->bottom.clip);
      for (const auto& [clip, score] : remaining) {
        EXPECT_LE(score, (*next)->upper_bound + 1e-9)
            << "seed " << seed << " clip " << clip;
        EXPECT_GE(score, (*next)->lower_bound - 1e-9)
            << "seed " << seed << " clip " << clip;
      }
    }
    EXPECT_TRUE(remaining.empty());
  }
}

TEST(TbClipTest, BoundedModeBoundsAreMonotone) {
  World world = MakeWorld(15);
  TbClipIterator it(world.object_tables(), world.act.get(), &world.scoring,
                    &world.candidates, true, &world.metrics,
                    TbClipIterator::Emission::kBounded);
  double prev_upper = std::numeric_limits<double>::infinity();
  double prev_lower = -1.0;
  for (;;) {
    auto next = it.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    EXPECT_LE((*next)->upper_bound, prev_upper + 1e-9);
    EXPECT_GE((*next)->lower_bound, prev_lower - 1e-9);
    prev_upper = (*next)->upper_bound;
    prev_lower = (*next)->lower_bound;
  }
}

TEST(TbClipTest, BoundedModeCostsFewerSortedAccesses) {
  World certified = MakeWorld(16);
  TbClipIterator cert_it(certified.object_tables(), certified.act.get(),
                         &certified.scoring, &certified.candidates, true,
                         &certified.metrics);
  while (true) {
    auto next = cert_it.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
  }
  World bounded = MakeWorld(16);
  TbClipIterator bound_it(bounded.object_tables(), bounded.act.get(),
                          &bounded.scoring, &bounded.candidates, true,
                          &bounded.metrics,
                          TbClipIterator::Emission::kBounded);
  while (true) {
    auto next = bound_it.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
  }
  EXPECT_LE(bounded.metrics.sorted_accesses,
            certified.metrics.sorted_accesses);
}

}  // namespace
}  // namespace svq::core
