// Parser hardening: the serving layer hands attacker-controlled statement
// bytes straight to ParseAndBind, so every malformed, truncated, or
// oversized input must come back as an error Status — never an abort, a
// crash, or a silent success on garbage.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "svq/query/binder.h"
#include "svq/query/lexer.h"
#include "svq/query/parser.h"

namespace svq::query {
namespace {

constexpr std::string_view kValidStatement =
    "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS inputVideo PRODUCE "
    "clipID, obj USING ObjectDetector, act USING ActionRecognizer) "
    "WHERE act='smoking' AND obj.include('cup') "
    "ORDER BY RANK(act, obj) LIMIT 3";

struct MalformedCase {
  const char* name;
  std::string statement;
};

std::vector<MalformedCase> MalformedStatements() {
  std::vector<MalformedCase> cases = {
      {"empty", ""},
      {"whitespace_only", "   \t\n  "},
      {"single_keyword", "SELECT"},
      {"keyword_soup", "SELECT FROM WHERE ORDER BY LIMIT"},
      {"not_a_statement", "DROP TABLE videos"},
      {"bare_garbage", "!!!???"},
      {"null_bytes", std::string("SELECT \0 FROM x", 15)},
      {"high_bytes", "SELECT \xff\xfe\xfd FROM x"},
      {"unterminated_string", "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE "
                              "clipID, act USING A) WHERE act='smoking"},
      {"unbalanced_parens", "SELECT MERGE(clipID FROM (PROCESS v PRODUCE "
                            "clipID, act USING A) WHERE act='x'"},
      {"missing_produce", "SELECT MERGE(clipID) FROM (PROCESS v) "
                          "WHERE act='x'"},
      {"predicate_on_undeclared_alias",
       "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, act USING A) "
       "WHERE ghost='x'"},
      {"rank_without_limit",
       "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS v PRODUCE clipID, "
       "obj USING O, act USING A) WHERE act='x' AND obj.include('y') "
       "ORDER BY RANK(act, obj)"},
      {"negative_limit",
       "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS v PRODUCE clipID, "
       "obj USING O, act USING A) WHERE act='x' AND obj.include('y') "
       "ORDER BY RANK(act, obj) LIMIT -3"},
      {"limit_not_a_number",
       "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS v PRODUCE clipID, "
       "obj USING O, act USING A) WHERE act='x' AND obj.include('y') "
       "ORDER BY RANK(act, obj) LIMIT banana"},
      {"trailing_tokens", std::string(kValidStatement) + " EXTRA TOKENS"},
      {"statement_typed_twice",
       std::string(kValidStatement) + " " + std::string(kValidStatement)},
  };

  // Oversized inputs: a multi-megabyte statement, a pathologically long
  // identifier, a huge string literal, and a deep run of parentheses. These
  // exercise allocation and recursion limits, not grammar rules.
  cases.push_back({"megabyte_of_keywords", [] {
                     std::string s;
                     while (s.size() < (1u << 21)) s += "SELECT ";
                     return s;
                   }()});
  cases.push_back(
      {"long_identifier", "SELECT " + std::string(1 << 20, 'a') + " FROM x"});
  cases.push_back({"huge_unterminated_literal",
                   "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, act "
                   "USING A) WHERE act='" +
                       std::string(1 << 20, 'x')});
  cases.push_back({"paren_nesting", "SELECT MERGE(clipID) FROM " +
                                        std::string(4096, '(') + "PROCESS" +
                                        std::string(4096, ')')});
  return cases;
}

TEST(ParserFuzzTest, MalformedStatementsReturnErrorStatus) {
  for (const MalformedCase& test_case : MalformedStatements()) {
    auto bound = ParseAndBind(test_case.statement);
    EXPECT_FALSE(bound.ok()) << test_case.name;
    if (!bound.ok()) {
      // Errors must be the statement-level kinds a server can safely report
      // back over the wire, with a non-empty message.
      EXPECT_TRUE(bound.status().IsInvalidArgument() ||
                  bound.status().IsUnimplemented())
          << test_case.name << ": " << bound.status();
      EXPECT_FALSE(bound.status().message().empty()) << test_case.name;
    }
  }
}

TEST(ParserFuzzTest, EveryTruncationOfAValidStatementIsHandled) {
  // Chopping a valid statement at every byte boundary simulates a client
  // whose frame was corrupted or hand-built: each prefix must either parse
  // (only the full text does) or produce an error Status.
  int parsed = 0;
  for (size_t cut = 0; cut <= kValidStatement.size(); ++cut) {
    auto bound = ParseAndBind(kValidStatement.substr(0, cut));
    if (bound.ok()) ++parsed;
  }
  EXPECT_EQ(parsed, 1);
  EXPECT_TRUE(ParseAndBind(kValidStatement).ok());
}

TEST(ParserFuzzTest, ByteLevelMutationsNeverAbort) {
  // Flip each byte of a valid statement through a handful of hostile
  // values; parsing must terminate with ok-or-error, never crash. This is a
  // deterministic stand-in for a coverage-guided fuzzer.
  const char mutations[] = {'\0', '\'', '(', ')', '\xff', ' '};
  for (size_t i = 0; i < kValidStatement.size(); ++i) {
    for (const char mutation : mutations) {
      std::string mutated(kValidStatement);
      mutated[i] = mutation;
      auto bound = ParseAndBind(mutated);
      if (!bound.ok()) {
        EXPECT_FALSE(bound.status().message().empty());
      }
    }
  }
}

TEST(ParserFuzzTest, LexerRejectsHostileBytesWithPositions) {
  auto tokens = Lex("SELECT \x01 FROM x");
  ASSERT_FALSE(tokens.ok());
  EXPECT_TRUE(tokens.status().IsInvalidArgument());
}

}  // namespace
}  // namespace svq::query
