#include "svq/core/ingest.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "svq/core/rvaq.h"
#include "svq/models/synthetic_models.h"

namespace svq::core {
namespace {

using video::SyntheticVideo;
using video::SyntheticVideoSpec;

std::shared_ptr<const SyntheticVideo> MakeVideo(uint64_t seed = 8) {
  SyntheticVideoSpec spec;
  spec.name = "ingest_test";
  spec.num_frames = 30000;
  spec.seed = seed;
  spec.actions.push_back({"smoking", 400.0, 4800.0});
  video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.85;
  cup.coverage = 0.9;
  cup.mean_on_frames = 250.0;
  cup.mean_off_frames = 3000.0;
  spec.objects.push_back(cup);
  auto video = SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

TEST(ComputePositiveClipsTest, AllZerosIsEmpty) {
  std::vector<uint8_t> events(800, 0);
  auto positives = ComputePositiveClips(events, 80, 0.05, 200.0, 512.0, 1e-3);
  ASSERT_TRUE(positives.ok());
  EXPECT_TRUE(positives->empty());
}

TEST(ComputePositiveClipsTest, DenseBurstIsDetected) {
  std::vector<uint8_t> events(8000, 0);
  // A solid run of events across clips 40..44.
  for (int i = 3200; i < 3600; ++i) events[i] = 1;
  auto positives = ComputePositiveClips(events, 80, 0.05, 200.0, 2048.0, 1e-4);
  ASSERT_TRUE(positives.ok());
  EXPECT_TRUE(positives->Contains(40));
  EXPECT_TRUE(positives->Contains(44));
  EXPECT_FALSE(positives->Contains(10));
}

TEST(ComputePositiveClipsTest, SparseNoiseIsRejected) {
  std::vector<uint8_t> events(8000, 0);
  // One isolated event every 400 units: background noise, not a burst.
  for (size_t i = 200; i < events.size(); i += 400) events[i] = 1;
  auto positives = ComputePositiveClips(events, 80, 0.05, 200.0, 2048.0, 1e-4);
  ASSERT_TRUE(positives.ok());
  // The adaptive estimate absorbs the noise floor; at most a few early
  // clips fire before the estimate settles.
  EXPECT_LE(positives->TotalLength(), 3);
}

TEST(ComputePositiveClipsTest, ValidatesUnits) {
  std::vector<uint8_t> events(10, 0);
  EXPECT_FALSE(ComputePositiveClips(events, 0, 0.05, 200.0, 64.0, 0.1).ok());
}

TEST(IngestOptionsTest, Validation) {
  IngestOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.backend = IngestOptions::TableBackend::kDisk;
  EXPECT_FALSE(options.Validate().ok());  // needs directory
  options.directory = "/tmp";
  EXPECT_TRUE(options.Validate().ok());
  options = IngestOptions();
  options.alpha = 2.0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(IngestTest, ProducesTablesAndSequences) {
  auto video = MakeVideo();
  models::ModelSet models =
      models::MakeModelSet(video, models::MaskRcnnI3dSuite(), {}, {});
  auto ingested = IngestVideo(video, 1, models.tracker.get(),
                              models.recognizer.get(), IngestOptions());
  ASSERT_TRUE(ingested.ok()) << ingested.status();
  EXPECT_EQ(ingested->id, 1);
  EXPECT_EQ(ingested->num_clips, video->NumClips());
  // Every type detected anywhere gets a table; the query-relevant types
  // certainly appear.
  ASSERT_NE(ingested->ObjectTable("cup"), nullptr);
  ASSERT_NE(ingested->ActionTable("smoking"), nullptr);
  ASSERT_NE(ingested->ObjectSequences("cup"), nullptr);
  ASSERT_NE(ingested->ActionSequences("smoking"), nullptr);
  EXPECT_FALSE(ingested->ObjectSequences("cup")->empty());
  EXPECT_FALSE(ingested->ActionSequences("smoking")->empty());
  EXPECT_EQ(ingested->ObjectTable("zebra"), nullptr);
  EXPECT_GT(ingested->ingest_inference.units, 0);
  EXPECT_GT(ingested->ingest_inference.simulated_ms, 0.0);
}

TEST(IngestTest, TableScoresArePositiveAndRanked) {
  auto video = MakeVideo();
  models::ModelSet models =
      models::MakeModelSet(video, models::MaskRcnnI3dSuite(), {}, {});
  auto ingested = IngestVideo(video, 1, models.tracker.get(),
                              models.recognizer.get(), IngestOptions());
  ASSERT_TRUE(ingested.ok());
  const storage::ScoreTable* table = ingested->ObjectTable("cup");
  ASSERT_NE(table, nullptr);
  double prev = std::numeric_limits<double>::infinity();
  for (int64_t r = 0; r < table->NumRows(); ++r) {
    auto row = table->RowAt(r);
    ASSERT_TRUE(row.ok());
    // Zero-score rows exist only for bridged gap clips inside positive
    // sequences.
    EXPECT_GE(row->score, 0.0);
    EXPECT_LE(row->score, prev);
    EXPECT_GE(row->clip, 0);
    EXPECT_LT(row->clip, ingested->num_clips);
    prev = row->score;
  }
}

TEST(IngestTest, PositiveSequencesHaveTableRows) {
  // Invariant required by TBClip: every clip of every individual sequence
  // has a row in that type's score table.
  auto video = MakeVideo();
  models::ModelSet models =
      models::MakeModelSet(video, models::MaskRcnnI3dSuite(), {}, {});
  auto ingested = IngestVideo(video, 1, models.tracker.get(),
                              models.recognizer.get(), IngestOptions());
  ASSERT_TRUE(ingested.ok());
  for (const auto& [label, sequences] : ingested->object_sequences) {
    const storage::ScoreTable* table = ingested->ObjectTable(label);
    ASSERT_NE(table, nullptr) << label;
    for (const video::Interval& seq : sequences.intervals()) {
      for (video::ClipIndex c = seq.begin; c < seq.end; ++c) {
        EXPECT_TRUE(table->HasClip(c)) << label << " clip " << c;
      }
    }
  }
}

TEST(IngestTest, SequencesAlignWithGroundTruth) {
  auto video = MakeVideo();
  models::ModelSet models =
      models::MakeModelSet(video, models::IdealSuite(), {}, {});
  auto ingested = IngestVideo(video, 1, models.tracker.get(),
                              models.recognizer.get(), IngestOptions());
  ASSERT_TRUE(ingested.ok());
  const video::IntervalSet truth_clips =
      video->ground_truth()
          .ObjectPresence("cup")
          .CoarsenAny(video->layout().FramesPerClip());
  const video::IntervalSet* detected = ingested->ObjectSequences("cup");
  ASSERT_NE(detected, nullptr);
  // Under ideal models, detected positive clips cover most of the truth.
  const double coverage =
      static_cast<double>(detected->OverlapLength(truth_clips)) /
      static_cast<double>(truth_clips.TotalLength());
  EXPECT_GT(coverage, 0.8);
}

TEST(IngestTest, DiskBackendRoundTrips) {
  auto video = MakeVideo();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "svq_ingest_test").string();
  std::filesystem::create_directories(dir);
  IngestOptions options;
  options.backend = IngestOptions::TableBackend::kDisk;
  options.directory = dir;

  models::ModelSet disk_models =
      models::MakeModelSet(video, models::MaskRcnnI3dSuite(), {}, {});
  auto disk = IngestVideo(video, 1, disk_models.tracker.get(),
                          disk_models.recognizer.get(), options);
  ASSERT_TRUE(disk.ok()) << disk.status();

  models::ModelSet mem_models =
      models::MakeModelSet(video, models::MaskRcnnI3dSuite(), {}, {});
  auto mem = IngestVideo(video, 1, mem_models.tracker.get(),
                         mem_models.recognizer.get(), IngestOptions());
  ASSERT_TRUE(mem.ok());

  // Disk and memory backends serve identical data.
  EXPECT_EQ(disk->object_sequences, mem->object_sequences);
  EXPECT_EQ(disk->action_sequences, mem->action_sequences);
  const storage::ScoreTable* dt = disk->ObjectTable("cup");
  const storage::ScoreTable* mt = mem->ObjectTable("cup");
  ASSERT_NE(dt, nullptr);
  ASSERT_NE(mt, nullptr);
  ASSERT_EQ(dt->NumRows(), mt->NumRows());
  for (int64_t r = 0; r < dt->NumRows(); ++r) {
    EXPECT_EQ(*dt->RowAt(r), *mt->RowAt(r));
  }
  // Sequence files were persisted.
  EXPECT_TRUE(std::filesystem::exists(dir + "/object_sequences.svqs"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/action_sequences.svqs"));
  std::filesystem::remove_all(dir);
}

TEST(IngestTest, ReopenedDirectoryServesIdenticalQueries) {
  auto video = MakeVideo();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "svq_ingest_reopen").string();
  std::filesystem::create_directories(dir);
  IngestOptions options;
  options.backend = IngestOptions::TableBackend::kDisk;
  options.directory = dir;
  models::ModelSet models =
      models::MakeModelSet(video, models::MaskRcnnI3dSuite(), {}, {});
  auto fresh = IngestVideo(video, 3, models.tracker.get(),
                           models.recognizer.get(), options);
  ASSERT_TRUE(fresh.ok()) << fresh.status();

  // Reopen purely from disk: no video, no models.
  auto reopened = OpenIngestedVideo(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->name, fresh->name);
  EXPECT_EQ(reopened->id, 3);
  EXPECT_EQ(reopened->num_frames, fresh->num_frames);
  EXPECT_EQ(reopened->num_clips, fresh->num_clips);
  EXPECT_EQ(reopened->layout.FramesPerClip(), fresh->layout.FramesPerClip());
  EXPECT_EQ(reopened->object_sequences, fresh->object_sequences);
  EXPECT_EQ(reopened->action_sequences, fresh->action_sequences);

  // A ranked query over the reopened metadata returns the same answer.
  Query query;
  query.action = "smoking";
  query.objects = {"cup"};
  AdditiveScoring scoring;
  auto from_fresh = RunRvaq(*fresh, query, 3, scoring, OfflineOptions());
  auto from_reopened =
      RunRvaq(*reopened, query, 3, scoring, OfflineOptions());
  ASSERT_TRUE(from_fresh.ok());
  ASSERT_TRUE(from_reopened.ok());
  ASSERT_EQ(from_fresh->sequences.size(), from_reopened->sequences.size());
  for (size_t i = 0; i < from_fresh->sequences.size(); ++i) {
    EXPECT_EQ(from_fresh->sequences[i].clips,
              from_reopened->sequences[i].clips);
    EXPECT_NEAR(from_fresh->sequences[i].upper_bound,
                from_reopened->sequences[i].upper_bound, 1e-9);
  }
  std::filesystem::remove_all(dir);
}

TEST(IngestTest, OpenRejectsMissingOrCorruptManifest) {
  EXPECT_TRUE(OpenIngestedVideo("/nonexistent/dir").status().IsIOError());
  const std::string dir =
      (std::filesystem::temp_directory_path() / "svq_ingest_badmanifest")
          .string();
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/manifest.svqm", std::ios::binary);
    out << "nonsense";
  }
  EXPECT_TRUE(OpenIngestedVideo(dir).status().IsCorruption());
  std::filesystem::remove_all(dir);
}

TEST(IngestTest, ValidatesArguments) {
  auto video = MakeVideo();
  models::ModelSet models =
      models::MakeModelSet(video, models::MaskRcnnI3dSuite(), {}, {});
  EXPECT_FALSE(IngestVideo(nullptr, 1, models.tracker.get(),
                           models.recognizer.get(), IngestOptions())
                   .ok());
  EXPECT_FALSE(IngestVideo(video, 1, nullptr, models.recognizer.get(),
                           IngestOptions())
                   .ok());
}

}  // namespace
}  // namespace svq::core
