#include "svq/eval/workloads.h"

#include <gtest/gtest.h>

namespace svq::eval {
namespace {

TEST(YouTubeWorkloadTest, BuildsAllTwelveQueries) {
  auto workload = YouTubeWorkload(1, /*scale=*/0.02);
  ASSERT_TRUE(workload.ok()) << workload.status();
  ASSERT_EQ(workload->size(), 12u);
  EXPECT_EQ((*workload)[0].name, "q1");
  EXPECT_EQ((*workload)[0].query.action, "washing_dishes");
  EXPECT_EQ((*workload)[0].query.objects,
            (std::vector<std::string>{"faucet", "oven"}));
  EXPECT_EQ((*workload)[11].name, "q12");
  EXPECT_EQ((*workload)[11].query.action, "archery");
  for (const QueryScenario& scenario : *workload) {
    EXPECT_FALSE(scenario.videos.empty()) << scenario.name;
    EXPECT_TRUE(scenario.query.Validate().ok()) << scenario.name;
  }
}

TEST(YouTubeWorkloadTest, ScaleControlsLength) {
  auto small = YouTubeScenario(1, 1, 0.01);
  auto large = YouTubeScenario(1, 1, 0.05);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  auto total = [](const QueryScenario& s) {
    int64_t frames = 0;
    for (const auto& v : s.videos) frames += v->num_frames();
    return frames;
  };
  EXPECT_LT(total(*small), total(*large));
}

TEST(YouTubeWorkloadTest, DeterministicInSeed) {
  auto a = YouTubeScenario(2, 9, 0.02);
  auto b = YouTubeScenario(2, 9, 0.02);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->videos.size(), b->videos.size());
  for (size_t i = 0; i < a->videos.size(); ++i) {
    EXPECT_EQ(a->videos[i]->ground_truth().ActionPresence("blowing_leaves"),
              b->videos[i]->ground_truth().ActionPresence("blowing_leaves"));
  }
}

TEST(YouTubeWorkloadTest, GroundTruthCoversQueryLabels) {
  // Occurrences are sparse, so an individual short video may hold none;
  // across the scenario every queried label must appear.
  auto scenario = YouTubeScenario(1, 3, 0.05);
  ASSERT_TRUE(scenario.ok());
  int64_t action_total = 0;
  for (const auto& v : scenario->videos) {
    action_total +=
        v->ground_truth().ActionPresence(scenario->query.action).TotalLength();
  }
  EXPECT_GT(action_total, 0);
  for (const std::string& object : scenario->query.objects) {
    int64_t total = 0;
    for (const auto& v : scenario->videos) {
      total += v->ground_truth().ObjectPresence(object).TotalLength();
    }
    EXPECT_GT(total, 0) << object;
  }
}

TEST(YouTubeWorkloadTest, TruthFramesIntersectsPredicates) {
  auto scenario = YouTubeScenario(1, 3, 0.02);
  ASSERT_TRUE(scenario.ok());
  const auto& v = *scenario->videos.front();
  const video::IntervalSet truth = TruthFrames(v, scenario->query);
  const video::IntervalSet& action =
      v.ground_truth().ActionPresence(scenario->query.action);
  EXPECT_EQ(truth.OverlapLength(action), truth.TotalLength());
  for (const std::string& object : scenario->query.objects) {
    EXPECT_EQ(truth.OverlapLength(v.ground_truth().ObjectPresence(object)),
              truth.TotalLength());
  }
}

TEST(YouTubeWorkloadTest, PersonIsAvailableEverywhere) {
  auto scenario = YouTubeScenario(5, 3, 0.02);
  ASSERT_TRUE(scenario.ok());
  for (const auto& v : scenario->videos) {
    EXPECT_FALSE(v->ground_truth().ObjectPresence("person").empty());
  }
}

TEST(YouTubeWorkloadTest, RejectsBadArguments) {
  EXPECT_FALSE(YouTubeScenario(0, 1, 0.02).ok());
  EXPECT_FALSE(YouTubeScenario(13, 1, 0.02).ok());
  EXPECT_FALSE(YouTubeScenario(1, 1, 0.0).ok());
}

TEST(MoviesWorkloadTest, BuildsFourMovies) {
  auto movies = MoviesWorkload(1, 0.05);
  ASSERT_TRUE(movies.ok());
  ASSERT_EQ(movies->size(), 4u);
  EXPECT_EQ((*movies)[0].name, "coffee_and_cigarettes");
  EXPECT_EQ((*movies)[0].query.action, "smoking");
  EXPECT_EQ((*movies)[3].name, "titanic");
  for (const QueryScenario& movie : *movies) {
    ASSERT_EQ(movie.videos.size(), 1u);
    EXPECT_FALSE(TruthFrames(*movie.videos[0], movie.query).empty())
        << movie.name;
  }
  // Titanic (194 min) is the longest.
  EXPECT_GT((*movies)[3].videos[0]->num_frames(),
            (*movies)[0].videos[0]->num_frames());
}

TEST(WorkloadAccuracyTest, AppliesPerLabelOverrides) {
  models::DetectorProfile profile =
      ApplyWorkloadAccuracy(models::MaskRcnnProfile());
  // person is easier than faucet for the reference detector.
  EXPECT_GT(profile.TprFor("person"), profile.TprFor("faucet"));
  EXPECT_LT(profile.FprFor("person"), profile.FprFor("faucet"));
  // YOLO scales uniformly noisier.
  models::DetectorProfile yolo =
      ApplyWorkloadAccuracy(models::YoloV3Profile());
  EXPECT_LT(yolo.TprFor("person"), profile.TprFor("person"));
  // Ideal profiles are untouched.
  models::DetectorProfile ideal =
      ApplyWorkloadAccuracy(models::IdealObjectProfile());
  EXPECT_TRUE(ideal.label_accuracy.empty());
}

}  // namespace
}  // namespace svq::eval
