// Determinism contract of the parallel runtime (docs/parallelism.md):
// every thread count must produce byte-identical results to the
// single-thread reference path, for both IngestVideo and RunRepositoryTopK.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "svq/core/engine.h"
#include "svq/core/ingest.h"
#include "svq/core/repository.h"
#include "svq/models/synthetic_models.h"

namespace svq::core {
namespace {

using video::SyntheticVideo;
using video::SyntheticVideoSpec;

constexpr int kNumVideos = 8;

std::shared_ptr<const SyntheticVideo> MakeVideo(int index) {
  SyntheticVideoSpec spec;
  spec.name = "clip_" + std::to_string(index);
  spec.num_frames = 12000;
  spec.seed = 1000 + static_cast<uint64_t>(index);
  spec.actions.push_back({"smoking", 300.0, 2500.0});
  video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.9;
  cup.coverage = 0.9;
  cup.mean_on_frames = 220.0;
  cup.mean_off_frames = 1500.0;
  spec.objects.push_back(cup);
  auto video = SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

Result<IngestedVideo> Ingest(
    const std::shared_ptr<const SyntheticVideo>& video, video::VideoId id,
    int num_threads) {
  models::ModelSet models =
      models::MakeModelSet(video, models::MaskRcnnI3dSuite(), {}, {});
  IngestOptions options;
  options.runtime.num_threads = num_threads;
  return IngestVideo(video, id, models.tracker.get(), models.recognizer.get(),
                     options);
}

Query SmokingCup() {
  Query q;
  q.action = "smoking";
  q.objects = {"cup"};
  return q;
}

void ExpectTablesIdentical(const storage::ScoreTable* a,
                           const storage::ScoreTable* b,
                           const std::string& context) {
  ASSERT_NE(a, nullptr) << context;
  ASSERT_NE(b, nullptr) << context;
  ASSERT_EQ(a->NumRows(), b->NumRows()) << context;
  for (int64_t rank = 0; rank < a->NumRows(); ++rank) {
    auto row_a = a->RowAt(rank);
    auto row_b = b->RowAt(rank);
    ASSERT_TRUE(row_a.ok() && row_b.ok()) << context;
    EXPECT_EQ(row_a->clip, row_b->clip) << context << " rank " << rank;
    // Byte-identical scores: the parallel aggregation must add the same
    // terms in the same order as the sequential pass.
    EXPECT_EQ(row_a->score, row_b->score) << context << " rank " << rank;
  }
}

TEST(ParallelDeterminismTest, IngestMatchesSequentialReference) {
  auto video = MakeVideo(0);
  auto reference = Ingest(video, 0, /*num_threads=*/1);
  ASSERT_TRUE(reference.ok()) << reference.status();
  for (int threads : {2, 8}) {
    auto parallel = Ingest(video, 0, threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(parallel->ingest_stats.runtime.threads_used, threads);

    ASSERT_EQ(parallel->object_sequences.size(),
              reference->object_sequences.size());
    for (const auto& [label, set] : reference->object_sequences) {
      const video::IntervalSet* other = parallel->ObjectSequences(label);
      ASSERT_NE(other, nullptr) << label;
      EXPECT_EQ(*other, set) << label;
    }
    ASSERT_EQ(parallel->action_sequences.size(),
              reference->action_sequences.size());
    for (const auto& [label, set] : reference->action_sequences) {
      const video::IntervalSet* other = parallel->ActionSequences(label);
      ASSERT_NE(other, nullptr) << label;
      EXPECT_EQ(*other, set) << label;
    }

    ASSERT_EQ(parallel->object_tables.size(),
              reference->object_tables.size());
    for (const auto& [label, table] : reference->object_tables) {
      ExpectTablesIdentical(table.get(), parallel->ObjectTable(label),
                            "object table " + label);
    }
    ASSERT_EQ(parallel->action_tables.size(),
              reference->action_tables.size());
    for (const auto& [label, table] : reference->action_tables) {
      ExpectTablesIdentical(table.get(), parallel->ActionTable(label),
                            "action table " + label);
    }
  }
}

TEST(ParallelDeterminismTest, RepositoryTopKIdenticalAcrossThreadCounts) {
  std::vector<IngestedVideo> ingested;
  ingested.reserve(kNumVideos);
  for (int i = 0; i < kNumVideos; ++i) {
    auto one = Ingest(MakeVideo(i), static_cast<video::VideoId>(i),
                      /*num_threads=*/1);
    ASSERT_TRUE(one.ok()) << one.status();
    ingested.push_back(std::move(one).value());
  }
  std::vector<const IngestedVideo*> repo;
  for (const IngestedVideo& v : ingested) repo.push_back(&v);

  const AdditiveScoring scoring;
  const int k = 10;
  OfflineOptions reference_options;  // num_threads = 1: reference path
  auto reference =
      RunRepositoryTopK(repo, SmokingCup(), k, scoring, reference_options);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_FALSE(reference->sequences.empty());
  EXPECT_EQ(reference->stats.runtime.threads_used, 1);
  EXPECT_EQ(reference->stats.runtime.steals, 0);

  for (int threads : {2, 8}) {
    OfflineOptions options;
    options.runtime.num_threads = threads;
    auto parallel = RunRepositoryTopK(repo, SmokingCup(), k, scoring, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(parallel->stats.runtime.threads_used, threads);

    // Identical ranked sequences, byte for byte.
    ASSERT_EQ(parallel->sequences.size(), reference->sequences.size())
        << "threads=" << threads;
    for (size_t i = 0; i < reference->sequences.size(); ++i) {
      const RepositoryEntry& expected = reference->sequences[i];
      const RepositoryEntry& actual = parallel->sequences[i];
      EXPECT_EQ(actual.video_id, expected.video_id) << "rank " << i;
      EXPECT_EQ(actual.video_name, expected.video_name) << "rank " << i;
      EXPECT_EQ(actual.sequence.clips, expected.sequence.clips)
          << "rank " << i;
      EXPECT_EQ(actual.sequence.lower_bound, expected.sequence.lower_bound)
          << "rank " << i;
      EXPECT_EQ(actual.sequence.upper_bound, expected.sequence.upper_bound)
          << "rank " << i;
    }

    // Identical merged stats for everything that is a property of the
    // algorithms (wall-clock fields are excluded by definition).
    EXPECT_EQ(parallel->stats.storage.sorted_accesses,
              reference->stats.storage.sorted_accesses);
    EXPECT_EQ(parallel->stats.storage.random_accesses,
              reference->stats.storage.random_accesses);
    EXPECT_EQ(parallel->stats.storage.sequential_reads,
              reference->stats.storage.sequential_reads);
    EXPECT_EQ(parallel->stats.iterator_calls,
              reference->stats.iterator_calls);
    EXPECT_EQ(parallel->stats.virtual_ms, reference->stats.virtual_ms);
  }
}

TEST(ParallelDeterminismTest, EngineTopKAllWithParallelOptions) {
  VideoQueryEngine engine;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.AddVideo(MakeVideo(i)).ok());
  }
  ASSERT_TRUE(engine.IngestAll(/*parallelism=*/2).ok());
  OfflineOptions sequential;
  OfflineOptions parallel;
  parallel.runtime.num_threads = 4;
  auto a = engine.ExecuteTopKAll(SmokingCup(), 5, sequential);
  auto b = engine.ExecuteTopKAll(SmokingCup(), 5, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->sequences.size(), b->sequences.size());
  for (size_t i = 0; i < a->sequences.size(); ++i) {
    EXPECT_EQ(a->sequences[i].video_name, b->sequences[i].video_name);
    EXPECT_EQ(a->sequences[i].sequence.clips, b->sequences[i].sequence.clips);
    EXPECT_EQ(a->sequences[i].sequence.lower_bound,
              b->sequences[i].sequence.lower_bound);
  }
}

}  // namespace
}  // namespace svq::core
