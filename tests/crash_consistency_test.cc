// Crash-consistency sweeps over the storage write protocol (docs/storage.md):
// a simulated crash — clean syscall failure, torn write, or power cut — at
// every write boundary of an artifact write (and of a whole ingest) must
// leave the directory in a state that reopens as either the complete old
// contents or the complete new contents. A half-written file that *opens*
// is the bug class this suite exists to catch.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "svq/core/ingest.h"
#include "svq/io/fault_injection_env.h"
#include "svq/models/synthetic_models.h"
#include "svq/storage/score_table.h"
#include "svq/storage/sequence_store.h"
#include "svq/video/interval_set.h"

namespace svq {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("svq_crash_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Single-artifact sweeps: overwriting an existing file must yield exactly
// the old or exactly the new contents, never a mixture.

using SequenceMap = std::map<std::string, video::IntervalSet>;

SequenceMap OldSequences() {
  SequenceMap map;
  map.emplace("cup", video::IntervalSet({{2, 5}, {9, 12}}));
  map.emplace("phone", video::IntervalSet({{0, 3}}));
  return map;
}

SequenceMap NewSequences() {
  SequenceMap map;
  map.emplace("cup", video::IntervalSet({{1, 4}}));
  map.emplace("laptop", video::IntervalSet({{7, 8}, {20, 31}, {40, 44}}));
  return map;
}

bool SameSequences(const SequenceMap& a, const SequenceMap& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [label, set] : a) {
    auto it = b.find(label);
    if (it == b.end()) return false;
    const auto& lhs = set.intervals();
    const auto& rhs = it->second.intervals();
    if (lhs.size() != rhs.size()) return false;
    for (size_t i = 0; i < lhs.size(); ++i) {
      if (lhs[i].begin != rhs[i].begin || lhs[i].end != rhs[i].end) {
        return false;
      }
    }
  }
  return true;
}

TEST(SequenceStoreCrashTest, FailAtEveryOpLeavesOldOrNew) {
  const std::string dir = TempDir("seq_ops");
  const std::string path = dir + "/sequences.svqs";

  // Dry run to learn the op count of one Save.
  io::FaultInjectionEnv env;
  ASSERT_TRUE(storage::SequenceStore::Save(path, NewSequences(), &env).ok());
  const int64_t total_ops = env.ops_seen();
  ASSERT_GE(total_ops, 5);

  for (int64_t op = 0; op < total_ops; ++op) {
    ASSERT_TRUE(storage::SequenceStore::Save(path, OldSequences()).ok());
    env.Reset();
    env.FailOp(op);
    const Status status =
        storage::SequenceStore::Save(path, NewSequences(), &env);
    auto loaded = storage::SequenceStore::Load(path);
    ASSERT_TRUE(loaded.ok()) << "op " << op << ": " << loaded.status();
    if (status.ok()) {
      EXPECT_TRUE(SameSequences(*loaded, NewSequences())) << "op " << op;
    } else {
      EXPECT_TRUE(SameSequences(*loaded, OldSequences()) ||
                  SameSequences(*loaded, NewSequences()))
          << "op " << op;
    }
  }
  fs::remove_all(dir);
}

TEST(SequenceStoreCrashTest, PowerCutAtEveryByteLeavesOldOrNew) {
  const std::string dir = TempDir("seq_bytes");
  const std::string path = dir + "/sequences.svqs";

  io::FaultInjectionEnv env;
  ASSERT_TRUE(storage::SequenceStore::Save(path, NewSequences(), &env).ok());
  const uint64_t total_bytes = env.bytes_appended();
  ASSERT_GT(total_bytes, 0u);

  for (uint64_t cut = 0; cut < total_bytes; ++cut) {
    ASSERT_TRUE(storage::SequenceStore::Save(path, OldSequences()).ok());
    env.Reset();
    env.CutAtByte(cut);
    EXPECT_FALSE(storage::SequenceStore::Save(path, NewSequences(), &env).ok())
        << "cut " << cut;
    // The machine died mid-write: the final path must still load as the
    // previous complete state (the torn bytes stayed in the temp file).
    auto loaded = storage::SequenceStore::Load(path);
    ASSERT_TRUE(loaded.ok()) << "cut " << cut << ": " << loaded.status();
    EXPECT_TRUE(SameSequences(*loaded, OldSequences())) << "cut " << cut;
  }
  fs::remove_all(dir);
}

std::vector<storage::ClipScoreRow> OldRows() {
  return {{1, 0.9}, {2, 0.5}, {3, 0.2}};
}

std::vector<storage::ClipScoreRow> NewRows() {
  return {{4, 0.8}, {5, 0.7}, {6, 0.6}, {7, 0.1}};
}

TEST(ScoreTableCrashTest, FailAtEveryOpLeavesOldOrNew) {
  const std::string dir = TempDir("table_ops");
  const std::string path = dir + "/table.svqt";

  io::FaultInjectionEnv env;
  ASSERT_TRUE(storage::DiskScoreTable::Write(path, NewRows(), &env).ok());
  const int64_t total_ops = env.ops_seen();
  ASSERT_GE(total_ops, 5);

  for (int64_t op = 0; op < total_ops; ++op) {
    ASSERT_TRUE(storage::DiskScoreTable::Write(path, OldRows()).ok());
    env.Reset();
    env.FailOp(op);
    const Status status =
        storage::DiskScoreTable::Write(path, NewRows(), &env);
    auto table = storage::DiskScoreTable::Open(path);
    ASSERT_TRUE(table.ok()) << "op " << op << ": " << table.status();
    const int64_t rows = (*table)->NumRows();
    if (status.ok()) {
      EXPECT_EQ(rows, 4) << "op " << op;
    } else {
      EXPECT_TRUE(rows == 3 || rows == 4) << "op " << op;
      // Old and new tables share no clip ids, so one probe tells which
      // complete state we see; a mixture would have failed Open already.
      EXPECT_EQ((*table)->HasClip(1), rows == 3) << "op " << op;
      EXPECT_EQ((*table)->HasClip(4), rows == 4) << "op " << op;
    }
  }
  fs::remove_all(dir);
}

TEST(ScoreTableCrashTest, PowerCutAtEveryByteLeavesOld) {
  const std::string dir = TempDir("table_bytes");
  const std::string path = dir + "/table.svqt";

  io::FaultInjectionEnv env;
  ASSERT_TRUE(storage::DiskScoreTable::Write(path, NewRows(), &env).ok());
  const uint64_t total_bytes = env.bytes_appended();

  for (uint64_t cut = 0; cut < total_bytes; ++cut) {
    ASSERT_TRUE(storage::DiskScoreTable::Write(path, OldRows()).ok());
    env.Reset();
    env.CutAtByte(cut);
    EXPECT_FALSE(storage::DiskScoreTable::Write(path, NewRows(), &env).ok())
        << "cut " << cut;
    auto table = storage::DiskScoreTable::Open(path);
    ASSERT_TRUE(table.ok()) << "cut " << cut << ": " << table.status();
    EXPECT_EQ((*table)->NumRows(), 3) << "cut " << cut;
    EXPECT_TRUE((*table)->HasClip(1)) << "cut " << cut;
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Whole-ingest sweeps: a crash anywhere inside IngestVideo's disk phase must
// leave a fresh directory that either reopens as the complete artifact set
// or fails to open cleanly. The manifest is written last, so it is the
// commit point: no manifest, no (partial) catalog entry.

std::shared_ptr<const video::SyntheticVideo> MakeVideo() {
  video::SyntheticVideoSpec spec;
  spec.name = "crash_test";
  spec.num_frames = 4000;
  spec.seed = 19;
  spec.actions.push_back({"smoking", 300.0, 2500.0});
  video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.85;
  cup.coverage = 0.9;
  cup.mean_on_frames = 200.0;
  cup.mean_off_frames = 1500.0;
  spec.objects.push_back(cup);
  auto video = video::SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

/// Ingests MakeVideo() into `dir` through `env` (single-threaded, so the
/// op order is deterministic across runs).
Status IngestTo(const std::string& dir, io::Env* env,
                const std::shared_ptr<const video::SyntheticVideo>& video) {
  core::IngestOptions options;
  options.backend = core::IngestOptions::TableBackend::kDisk;
  options.directory = dir;
  options.env = env;
  models::ModelSet models =
      models::MakeModelSet(video, models::MaskRcnnI3dSuite(), {}, {});
  return core::IngestVideo(video, 1, models.tracker.get(),
                           models.recognizer.get(), options)
      .status();
}

/// Comparable summary of an opened directory.
struct DirSummary {
  std::string name;
  int64_t num_clips = 0;
  std::map<std::string, int64_t> object_rows;
  std::map<std::string, int64_t> action_rows;
  SequenceMap object_sequences;
  SequenceMap action_sequences;
};

DirSummary Summarize(const core::IngestedVideo& opened) {
  DirSummary summary;
  summary.name = opened.name;
  summary.num_clips = opened.num_clips;
  for (const auto& [label, table] : opened.object_tables) {
    summary.object_rows[label] = table->NumRows();
  }
  for (const auto& [label, table] : opened.action_tables) {
    summary.action_rows[label] = table->NumRows();
  }
  summary.object_sequences = opened.object_sequences;
  summary.action_sequences = opened.action_sequences;
  return summary;
}

bool SameSummary(const DirSummary& a, const DirSummary& b) {
  return a.name == b.name && a.num_clips == b.num_clips &&
         a.object_rows == b.object_rows && a.action_rows == b.action_rows &&
         SameSequences(a.object_sequences, b.object_sequences) &&
         SameSequences(a.action_sequences, b.action_sequences);
}

class IngestCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    video_ = MakeVideo();
    ASSERT_NE(video_, nullptr);
    // Reference: a clean ingest, and the op/byte budget of its disk phase.
    const std::string ref_dir = TempDir("ingest_ref");
    io::FaultInjectionEnv env;
    ASSERT_TRUE(IngestTo(ref_dir, &env, video_).ok());
    total_ops_ = env.ops_seen();
    total_bytes_ = env.bytes_appended();
    ASSERT_GE(total_ops_, 5 * 5) << "expected five artifact files";
    auto reference = core::OpenIngestedVideo(ref_dir);
    ASSERT_TRUE(reference.ok()) << reference.status();
    reference_ = Summarize(*reference);
    fs::remove_all(ref_dir);
  }

  /// The sweep body: after a faulted ingest into a fresh directory, the
  /// directory either opens as the complete reference state or fails with
  /// a clean IOError/Corruption — never a crash, never a partial open.
  void CheckDir(const std::string& dir, const std::string& what) {
    auto opened = core::OpenIngestedVideo(dir);
    if (opened.ok()) {
      EXPECT_TRUE(SameSummary(Summarize(*opened), reference_)) << what;
    } else {
      EXPECT_TRUE(opened.status().IsIOError() ||
                  opened.status().IsCorruption())
          << what << ": " << opened.status();
    }
  }

  std::shared_ptr<const video::SyntheticVideo> video_;
  int64_t total_ops_ = 0;
  uint64_t total_bytes_ = 0;
  DirSummary reference_;
};

TEST_F(IngestCrashTest, CleanFailureAtEverySyscall) {
  for (int64_t op = 0; op < total_ops_; ++op) {
    const std::string dir = TempDir("ingest_fail");
    io::FaultInjectionEnv env;
    env.FailOp(op);
    const Status status = IngestTo(dir, &env, video_);
    EXPECT_TRUE(env.fault_fired()) << "op " << op;
    if (status.ok()) {
      // The failed write was retried-free and one-shot: an ingest that
      // reports success must have produced the full artifact set.
      auto opened = core::OpenIngestedVideo(dir);
      ASSERT_TRUE(opened.ok()) << "op " << op << ": " << opened.status();
      EXPECT_TRUE(SameSummary(Summarize(*opened), reference_)) << "op " << op;
    } else {
      CheckDir(dir, "op " + std::to_string(op));
    }
    fs::remove_all(dir);
  }
}

TEST_F(IngestCrashTest, PowerCutAtEverySyscall) {
  for (int64_t op = 0; op < total_ops_; ++op) {
    const std::string dir = TempDir("ingest_cut");
    io::FaultInjectionEnv env;
    env.CutAtOp(op);
    EXPECT_FALSE(IngestTo(dir, &env, video_).ok()) << "op " << op;
    // Dead env: temp files survive exactly as a crashed machine would
    // leave them. The directory must still open old-or-new-or-clean-error.
    CheckDir(dir, "cut at op " + std::to_string(op));
    fs::remove_all(dir);
  }
}

TEST_F(IngestCrashTest, PowerCutAcrossByteBoundaries) {
  // Every single byte would mean total_bytes_ full ingests; stride the
  // sweep to ~64 cut points while always including the first and last
  // byte of the stream. Op-level sweeps above cover every syscall
  // boundary exactly.
  const uint64_t stride = std::max<uint64_t>(1, total_bytes_ / 64);
  for (uint64_t cut = 0; cut < total_bytes_; cut += stride) {
    const std::string dir = TempDir("ingest_cutbyte");
    io::FaultInjectionEnv env;
    env.CutAtByte(cut);
    EXPECT_FALSE(IngestTo(dir, &env, video_).ok()) << "cut " << cut;
    CheckDir(dir, "cut at byte " + std::to_string(cut));
    fs::remove_all(dir);
  }
  {
    const std::string dir = TempDir("ingest_cutbyte_last");
    io::FaultInjectionEnv env;
    env.CutAtByte(total_bytes_ - 1);
    EXPECT_FALSE(IngestTo(dir, &env, video_).ok());
    CheckDir(dir, "cut at last byte");
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace svq
