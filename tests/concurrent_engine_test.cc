// Concurrency tests of the snapshot-isolated VideoQueryEngine: query
// threads race a writer thread mutating the catalog, and every query result
// must match a serial oracle computed up front (the synthetic models are
// seed-deterministic, so any divergence means shared state leaked between
// a query and a concurrent writer). Labeled `tsan` so the suite also runs
// under ThreadSanitizer via `ctest -L tsan` with -DSVQ_SANITIZE=thread.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "svq/core/engine.h"
#include "svq/query/executor.h"

namespace svq::core {
namespace {

std::shared_ptr<const video::SyntheticVideo> DemoVideo(const std::string& name,
                                                       uint64_t seed) {
  video::SyntheticVideoSpec spec;
  spec.name = name;
  spec.num_frames = 16000;
  spec.seed = seed;
  spec.actions.push_back({"jumping", 350.0, 4200.0});
  video::SyntheticObjectSpec car;
  car.label = "car";
  car.correlate_with_action = "jumping";
  car.correlation = 0.9;
  car.coverage = 0.9;
  car.mean_on_frames = 250.0;
  car.mean_off_frames = 2200.0;
  spec.objects.push_back(car);
  auto video = video::SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

Query JumpingCar() {
  Query q;
  q.action = "jumping";
  q.objects = {"car"};
  return q;
}

TEST(ConcurrentEngineTest, QueriesRacingWriterMatchSerialOracle) {
  constexpr int kQueryThreads = 4;
  constexpr int kQueriesPerThread = 8;
  constexpr int kWriterVideos = 6;

  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo("base_a", 12)).ok());
  ASSERT_TRUE(engine.AddVideo(DemoVideo("base_b", 34)).ok());
  ASSERT_TRUE(engine.Ingest("base_a").ok());
  ASSERT_TRUE(engine.Ingest("base_b").ok());

  // Serial oracle, computed before any concurrency starts.
  auto oracle_a = engine.ExecuteTopK(JumpingCar(), "base_a", 3);
  auto oracle_b = engine.ExecuteTopK(JumpingCar(), "base_b", 3);
  auto oracle_online = engine.ExecuteOnline(JumpingCar(), "base_a");
  ASSERT_TRUE(oracle_a.ok()) << oracle_a.status();
  ASSERT_TRUE(oracle_b.ok()) << oracle_b.status();
  ASSERT_TRUE(oracle_online.ok()) << oracle_online.status();

  // Writer: register + ingest new videos and churn the suite while the
  // query threads run. None of it may affect queries over base_a/base_b.
  std::atomic<bool> writer_failed{false};
  std::thread writer([&]() {
    for (int i = 0; i < kWriterVideos; ++i) {
      const std::string name = "extra_" + std::to_string(i);
      if (!engine.AddVideo(DemoVideo(name, 100 + i)).ok() ||
          !engine.Ingest(name).ok()) {
        writer_failed.store(true);
        return;
      }
      engine.set_suite(engine.suite());  // snapshot churn, same values
    }
  });

  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kQueryThreads; ++t) {
    readers.emplace_back([&, t]() {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const bool use_a = (t + i) % 2 == 0;
        auto topk = engine.ExecuteTopK(JumpingCar(),
                                       use_a ? "base_a" : "base_b", 3);
        const TopKResult& expected = use_a ? *oracle_a : *oracle_b;
        if (!topk.ok() ||
            topk->sequences.size() != expected.sequences.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t s = 0; s < topk->sequences.size(); ++s) {
          if (!(topk->sequences[s].clips == expected.sequences[s].clips)) {
            mismatches.fetch_add(1);
          }
        }
        if (i % 4 == 0) {
          auto online = engine.ExecuteOnline(JumpingCar(), "base_a");
          if (!online.ok() ||
              !(online->sequences == oracle_online->sequences)) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  writer.join();

  EXPECT_FALSE(writer_failed.load());
  EXPECT_EQ(mismatches.load(), 0);
  // The writer's catalog churn landed.
  for (int i = 0; i < kWriterVideos; ++i) {
    EXPECT_NE(engine.Ingested("extra_" + std::to_string(i)), nullptr);
  }
}

TEST(ConcurrentEngineTest, StatementsRacingWriterMatchSerialOracle) {
  const std::string statement =
      "SELECT MERGE(clipID), RANK(act, obj) "
      "FROM (PROCESS base PRODUCE clipID, obj USING ObjectTracker, "
      "act USING ActionRecognizer) "
      "WHERE act='jumping' AND obj.include('car') "
      "ORDER BY RANK(act, obj) LIMIT 2";

  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo("base", 7)).ok());
  ASSERT_TRUE(engine.Ingest("base").ok());
  auto oracle = query::ExecuteStatement(&engine, statement);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  ASSERT_TRUE(oracle->topk.has_value());

  std::thread writer([&]() {
    for (int i = 0; i < 4; ++i) {
      const std::string name = "w_" + std::to_string(i);
      ASSERT_TRUE(engine.AddVideo(DemoVideo(name, 200 + i)).ok());
      ASSERT_TRUE(engine.Ingest(name).ok());
    }
  });
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&]() {
      for (int i = 0; i < 6; ++i) {
        auto result = query::ExecuteStatement(&engine, statement);
        if (!result.ok() || !result->topk.has_value() ||
            result->topk->sequences.size() != oracle->topk->sequences.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t s = 0; s < result->topk->sequences.size(); ++s) {
          if (!(result->topk->sequences[s].clips ==
                oracle->topk->sequences[s].clips)) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  writer.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentEngineTest, PinnedSnapshotIsInvisibleToLaterIngest) {
  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo("demo", 12)).ok());

  // Pin BEFORE the ingest: the snapshot must keep the pre-ingest view.
  const SnapshotPtr before = engine.Pin();
  ASSERT_TRUE(engine.Ingest("demo").ok());

  auto on_pinned = ExecuteTopKOn(before, JumpingCar(), "demo", 3);
  EXPECT_EQ(on_pinned.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(before->Find("demo")->ingested, nullptr);

  // The live engine (and a fresh pin) see the ingest.
  auto live = engine.ExecuteTopK(JumpingCar(), "demo", 3);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_NE(engine.Pin()->Find("demo")->ingested, nullptr);
}

TEST(ConcurrentEngineTest, PinnedSnapshotIsInvisibleToLaterAddVideo) {
  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo("first", 1)).ok());
  const SnapshotPtr before = engine.Pin();
  ASSERT_TRUE(engine.AddVideo(DemoVideo("second", 2)).ok());
  EXPECT_EQ(before->Find("second"), nullptr);
  EXPECT_NE(before->Find("first"), nullptr);
  EXPECT_TRUE(engine.HasVideo("second"));
}

TEST(ConcurrentEngineTest, PinnedArtifactsSurviveCatalogChurn) {
  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo("demo", 12)).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());
  const SnapshotPtr pinned = engine.Pin();
  auto expected = ExecuteTopKOn(pinned, JumpingCar(), "demo", 3);
  ASSERT_TRUE(expected.ok());

  // Churn the catalog: a new video plus suite swaps publish new snapshots.
  ASSERT_TRUE(engine.AddVideo(DemoVideo("later", 99)).ok());
  ASSERT_TRUE(engine.Ingest("later").ok());
  engine.set_suite(models::IdealSuite());

  // The pinned snapshot still answers, identically, from its own suite.
  auto again = ExecuteTopKOn(pinned, JumpingCar(), "demo", 3);
  ASSERT_TRUE(again.ok()) << again.status();
  ASSERT_EQ(again->sequences.size(), expected->sequences.size());
  for (size_t i = 0; i < again->sequences.size(); ++i) {
    EXPECT_EQ(again->sequences[i].clips, expected->sequences[i].clips);
  }
  EXPECT_EQ(pinned->Find("later"), nullptr);
  EXPECT_FALSE(pinned->suite.object_profile.ideal);
  EXPECT_TRUE(engine.suite().object_profile.ideal);
}

TEST(ConcurrentEngineTest, ExpiredDeadlineFailsWithoutTouchingStorage) {
  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo("demo", 12)).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());

  storage::StorageMetrics sink;
  ExecutionContext context = ExecutionContext::WithDeadline(
      ExecutionContext::Clock::now() - std::chrono::seconds(1));
  context.set_storage_sink(&sink);

  auto topk = engine.ExecuteTopK(JumpingCar(), "demo", 3,
                                 OfflineAlgorithm::kRvaq, OfflineOptions(),
                                 context);
  EXPECT_TRUE(topk.status().IsDeadlineExceeded()) << topk.status();
  EXPECT_EQ(sink.sorted_accesses, 0);
  EXPECT_EQ(sink.random_accesses, 0);
  EXPECT_EQ(sink.sequential_reads, 0);

  auto online = engine.ExecuteOnline(JumpingCar(), "demo",
                                     OnlineEngine::Mode::kSvaqd, context);
  EXPECT_TRUE(online.status().IsDeadlineExceeded()) << online.status();

  auto all = engine.ExecuteTopKAll(JumpingCar(), 3, OfflineOptions(), context);
  EXPECT_TRUE(all.status().IsDeadlineExceeded()) << all.status();
}

TEST(ConcurrentEngineTest, GenerousDeadlineDoesNotChangeResults) {
  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo("demo", 12)).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());
  auto plain = engine.ExecuteTopK(JumpingCar(), "demo", 3);
  ASSERT_TRUE(plain.ok());

  ExecutionContext context =
      ExecutionContext::WithTimeout(std::chrono::minutes(10));
  auto limited = engine.ExecuteTopK(JumpingCar(), "demo", 3,
                                    OfflineAlgorithm::kRvaq, OfflineOptions(),
                                    context);
  ASSERT_TRUE(limited.ok()) << limited.status();
  ASSERT_EQ(limited->sequences.size(), plain->sequences.size());
  for (size_t i = 0; i < limited->sequences.size(); ++i) {
    EXPECT_EQ(limited->sequences[i].clips, plain->sequences[i].clips);
  }
}

TEST(ConcurrentEngineTest, CancellationAbortsMidQuery) {
  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo("demo", 12)).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());

  // Pre-cancelled: fails before any work.
  CancellationSource source;
  source.Cancel();
  ExecutionContext context;
  context.set_cancellation(source.token());
  auto topk = engine.ExecuteTopK(JumpingCar(), "demo", 3,
                                 OfflineAlgorithm::kRvaq, OfflineOptions(),
                                 context);
  EXPECT_TRUE(topk.status().IsCancelled()) << topk.status();
  auto online = engine.ExecuteOnline(JumpingCar(), "demo",
                                     OnlineEngine::Mode::kSvaqd, context);
  EXPECT_TRUE(online.status().IsCancelled()) << online.status();

  // Cancel fired from another thread while queries loop: every query ends,
  // each either OK (finished first) or Cancelled — never anything else.
  CancellationSource racing;
  ExecutionContext racing_context;
  racing_context.set_cancellation(racing.token());
  std::atomic<int> bad_status{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&]() {
      for (int i = 0; i < 20; ++i) {
        auto result = engine.ExecuteTopK(JumpingCar(), "demo", 3,
                                         OfflineAlgorithm::kRvaq,
                                         OfflineOptions(), racing_context);
        if (!result.ok() && !result.status().IsCancelled()) {
          bad_status.fetch_add(1);
        }
        if (racing.cancelled()) return;
      }
    });
  }
  racing.Cancel();
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(bad_status.load(), 0);
}

TEST(ConcurrentEngineTest, CachedExecutionMatchesUncachedUnderChurn) {
  // Cached-vs-uncached oracle stress: readers pin a snapshot, run a
  // statement through the default (cached) policy and again with both cache
  // tiers disabled ON THE SAME PIN, and the two must agree bit for bit —
  // clips and both certified bounds — while a writer churns the catalog
  // (every ingest swaps in a fresh snapshot cache). Each statement keeps a
  // fixed LIMIT so cached entries are always same-key-same-K, which is
  // exactly deterministic.
  constexpr int kReaders = 3;
  constexpr int kIterations = 6;
  const std::string videos[] = {"pool_a", "pool_b", "pool_c"};
  const int limits[] = {2, 3, 4};

  VideoQueryEngine engine(models::ModelSuite(), OnlineConfig(),
                          IngestOptions(), cache::CacheOptions::Enabled());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.AddVideo(DemoVideo(videos[i], 40 + i)).ok());
    ASSERT_TRUE(engine.Ingest(videos[i]).ok());
  }

  std::thread writer([&]() {
    for (int i = 0; i < 5; ++i) {
      const std::string name = "churn_" + std::to_string(i);
      ASSERT_TRUE(engine.AddVideo(DemoVideo(name, 300 + i)).ok());
      ASSERT_TRUE(engine.Ingest(name).ok());
    }
  });

  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      for (int i = 0; i < kIterations; ++i) {
        const int pick = (t + i) % 3;
        const std::string statement =
            "SELECT MERGE(clipID), RANK(act, obj) "
            "FROM (PROCESS " + videos[pick] +
            " PRODUCE clipID, obj USING ObjectTracker, "
            "act USING ActionRecognizer) "
            "WHERE act='jumping' AND obj.include('car') "
            "ORDER BY RANK(act, obj) LIMIT " + std::to_string(limits[pick]);
        const SnapshotPtr pin = engine.Pin();
        query::StatementOptions uncached;
        uncached.offline.cache.use_candidate_cache = false;
        uncached.offline.cache.use_result_cache = false;
        auto cached = query::ExecuteStatementOn(pin, statement);
        auto plain = query::ExecuteStatementOn(pin, statement, {}, uncached);
        if (!cached.ok() || !plain.ok() || !cached->topk.has_value() ||
            !plain->topk.has_value() ||
            cached->topk->sequences.size() != plain->topk->sequences.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t s = 0; s < cached->topk->sequences.size(); ++s) {
          const RankedSequence& lhs = cached->topk->sequences[s];
          const RankedSequence& rhs = plain->topk->sequences[s];
          if (!(lhs.clips == rhs.clips) ||
              lhs.lower_bound != rhs.lower_bound ||
              lhs.upper_bound != rhs.upper_bound) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  writer.join();
  EXPECT_EQ(mismatches.load(), 0);
  // The point of caching: the repeated statements actually hit.
  EXPECT_GT(engine.cache_stats()->Read().hits(), 0);
}

TEST(ConcurrentEngineTest, ConcurrentIngestAllPublishesAtomically) {
  VideoQueryEngine engine;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        engine.AddVideo(DemoVideo("v_" + std::to_string(i), 10 + i)).ok());
  }
  // Readers poll the catalog while IngestAll runs in parallel waves.
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::thread poller([&]() {
    while (!done.load()) {
      const SnapshotPtr snap = engine.Pin();
      // Monotonicity within one snapshot: every entry is fully formed.
      for (const auto& [name, entry] : snap->videos) {
        if (entry.video == nullptr) violations.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });
  ASSERT_TRUE(engine.IngestAll(/*parallelism=*/2).ok());
  done.store(true);
  poller.join();
  EXPECT_EQ(violations.load(), 0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(engine.Ingested("v_" + std::to_string(i)), nullptr);
  }
}

}  // namespace
}  // namespace svq::core
