#include "svq/storage/sequence_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace svq::storage {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SequenceStoreTest, RoundTrip) {
  std::map<std::string, video::IntervalSet> sequences;
  sequences["car"] = video::IntervalSet({{0, 3}, {10, 14}});
  sequences["jumping"] = video::IntervalSet({{2, 5}});
  sequences["empty_label"] = video::IntervalSet();

  const std::string path = TempPath("svq_sequences.svqs");
  ASSERT_TRUE(SequenceStore::Save(path, sequences).ok());
  auto loaded = SequenceStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, sequences);
  std::filesystem::remove(path);
}

TEST(SequenceStoreTest, EmptyMap) {
  const std::string path = TempPath("svq_sequences_empty.svqs");
  ASSERT_TRUE(SequenceStore::Save(path, {}).ok());
  auto loaded = SequenceStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::filesystem::remove(path);
}

TEST(SequenceStoreTest, MissingFile) {
  EXPECT_TRUE(SequenceStore::Load("/nonexistent/file.svqs")
                  .status()
                  .IsIOError());
}

TEST(SequenceStoreTest, BadMagic) {
  const std::string path = TempPath("svq_sequences_bad.svqs");
  std::ofstream out(path, std::ios::binary);
  out << "garbage garbage garbage";
  out.close();
  EXPECT_TRUE(SequenceStore::Load(path).status().IsCorruption());
  std::filesystem::remove(path);
}

TEST(SequenceStoreTest, Truncated) {
  std::map<std::string, video::IntervalSet> sequences;
  sequences["car"] = video::IntervalSet({{0, 3}, {10, 14}});
  const std::string path = TempPath("svq_sequences_trunc.svqs");
  ASSERT_TRUE(SequenceStore::Save(path, sequences).ok());
  std::filesystem::resize_file(path, 20);
  EXPECT_TRUE(SequenceStore::Load(path).status().IsCorruption());
  std::filesystem::remove(path);
}

TEST(SequenceStoreTest, UnicodeAndSpecialLabels) {
  std::map<std::string, video::IntervalSet> sequences;
  sequences["robot dancing"] = video::IntervalSet({{1, 2}});
  sequences["naïve_label"] = video::IntervalSet({{3, 4}});
  const std::string path = TempPath("svq_sequences_labels.svqs");
  ASSERT_TRUE(SequenceStore::Save(path, sequences).ok());
  auto loaded = SequenceStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, sequences);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace svq::storage
