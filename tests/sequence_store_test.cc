#include "svq/storage/sequence_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "svq/io/bytes.h"
#include "svq/io/env.h"

namespace svq::storage {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SequenceStoreTest, RoundTrip) {
  std::map<std::string, video::IntervalSet> sequences;
  sequences["car"] = video::IntervalSet({{0, 3}, {10, 14}});
  sequences["jumping"] = video::IntervalSet({{2, 5}});
  sequences["empty_label"] = video::IntervalSet();

  const std::string path = TempPath("svq_sequences.svqs");
  ASSERT_TRUE(SequenceStore::Save(path, sequences).ok());
  auto loaded = SequenceStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, sequences);
  std::filesystem::remove(path);
}

TEST(SequenceStoreTest, EmptyMap) {
  const std::string path = TempPath("svq_sequences_empty.svqs");
  ASSERT_TRUE(SequenceStore::Save(path, {}).ok());
  auto loaded = SequenceStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::filesystem::remove(path);
}

TEST(SequenceStoreTest, MissingFile) {
  EXPECT_TRUE(SequenceStore::Load("/nonexistent/file.svqs")
                  .status()
                  .IsIOError());
}

TEST(SequenceStoreTest, BadMagic) {
  const std::string path = TempPath("svq_sequences_bad.svqs");
  std::ofstream out(path, std::ios::binary);
  out << "garbage garbage garbage";
  out.close();
  EXPECT_TRUE(SequenceStore::Load(path).status().IsCorruption());
  std::filesystem::remove(path);
}

TEST(SequenceStoreTest, Truncated) {
  std::map<std::string, video::IntervalSet> sequences;
  sequences["car"] = video::IntervalSet({{0, 3}, {10, 14}});
  const std::string path = TempPath("svq_sequences_trunc.svqs");
  ASSERT_TRUE(SequenceStore::Save(path, sequences).ok());
  std::filesystem::resize_file(path, 20);
  EXPECT_TRUE(SequenceStore::Load(path).status().IsCorruption());
  std::filesystem::remove(path);
}

TEST(SequenceStoreTest, HostileIntervalCountIsCorruptionNotOOM) {
  // A v1 file claiming 2^60 intervals for a label: Load must reject the
  // count against the bytes that actually remain, not reserve() for it.
  std::string bytes;
  io::AppendValue(&bytes, static_cast<uint32_t>(0x53565153));  // v1 magic
  io::AppendValue(&bytes, static_cast<uint64_t>(1));           // one label
  io::AppendLengthPrefixedString(&bytes, "cup");
  io::AppendValue(&bytes, static_cast<uint64_t>(1) << 60);     // intervals
  const std::string path = TempPath("svq_sequences_hostile.svqs");
  WriteRaw(path, bytes);
  EXPECT_TRUE(SequenceStore::Load(path).status().IsCorruption());
  std::filesystem::remove(path);
}

TEST(SequenceStoreTest, HostileLabelLengthIsCorruptionNotOOM) {
  std::string bytes;
  io::AppendValue(&bytes, static_cast<uint32_t>(0x53565153));  // v1 magic
  io::AppendValue(&bytes, static_cast<uint64_t>(1));           // one label
  io::AppendValue(&bytes, static_cast<uint64_t>(1) << 59);     // label length
  const std::string path = TempPath("svq_sequences_hostile_label.svqs");
  WriteRaw(path, bytes);
  EXPECT_TRUE(SequenceStore::Load(path).status().IsCorruption());
  std::filesystem::remove(path);
}

TEST(SequenceStoreTest, ReadsLegacyV1Files) {
  // Writers emit v2 (checksum footer); a pre-footer v1 file — same body,
  // old magic, no footer — must still load.
  std::map<std::string, video::IntervalSet> sequences;
  sequences["car"] = video::IntervalSet({{0, 3}, {10, 14}});
  sequences["jumping"] = video::IntervalSet({{2, 5}});
  const std::string path = TempPath("svq_sequences_v1.svqs");
  ASSERT_TRUE(SequenceStore::Save(path, sequences).ok());
  auto contents = io::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  // Strip the 24-byte footer and swap in the v1 magic: exactly the bytes a
  // pre-footer writer produced.
  std::string v1 = contents->substr(0, contents->size() - 24);
  const char v1_magic[4] = {0x53, 0x51, 0x56, 0x53};  // "SVQS" LE
  v1.replace(0, 4, v1_magic, 4);
  WriteRaw(path, v1);
  auto loaded = SequenceStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, sequences);
  std::filesystem::remove(path);
}

TEST(SequenceStoreTest, ChecksumCatchesBitFlips) {
  std::map<std::string, video::IntervalSet> sequences;
  sequences["car"] = video::IntervalSet({{0, 3}, {10, 14}});
  const std::string path = TempPath("svq_sequences_flip.svqs");
  ASSERT_TRUE(SequenceStore::Save(path, sequences).ok());
  auto pristine = io::ReadFileToString(path);
  ASSERT_TRUE(pristine.ok());
  for (size_t i = 0; i < pristine->size(); ++i) {
    std::string mutated = *pristine;
    mutated[i] ^= 0x01;
    WriteRaw(path, mutated);
    auto loaded = SequenceStore::Load(path);
    ASSERT_FALSE(loaded.ok()) << "byte " << i;
    EXPECT_TRUE(loaded.status().IsCorruption()) << "byte " << i;
  }
  std::filesystem::remove(path);
}

TEST(SequenceStoreTest, UnicodeAndSpecialLabels) {
  std::map<std::string, video::IntervalSet> sequences;
  sequences["robot dancing"] = video::IntervalSet({{1, 2}});
  sequences["naïve_label"] = video::IntervalSet({{3, 4}});
  const std::string path = TempPath("svq_sequences_labels.svqs");
  ASSERT_TRUE(SequenceStore::Save(path, sequences).ok());
  auto loaded = SequenceStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, sequences);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace svq::storage
