#include "svq/core/online_engine.h"

#include <gtest/gtest.h>

#include "svq/eval/metrics.h"
#include "svq/eval/workloads.h"
#include "svq/models/synthetic_models.h"
#include "svq/video/video_stream.h"

namespace svq::core {
namespace {

using models::MakeModelSet;
using models::ModelSet;
using video::SyntheticVideo;
using video::SyntheticVideoSpec;

std::shared_ptr<const SyntheticVideo> MakeVideo(uint64_t seed = 21,
                                                int64_t frames = 40000) {
  SyntheticVideoSpec spec;
  spec.name = "online_test";
  spec.num_frames = frames;
  spec.seed = seed;
  spec.actions.push_back({"jumping", 400.0, 4600.0});
  video::SyntheticObjectSpec car;
  car.label = "car";
  car.correlate_with_action = "jumping";
  car.correlation = 0.9;
  car.coverage = 0.9;
  car.mean_on_frames = 250.0;
  car.mean_off_frames = 2500.0;
  spec.objects.push_back(car);
  auto video = SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

Query JumpingCarQuery() {
  Query query;
  query.action = "jumping";
  query.objects = {"car"};
  return query;
}

TEST(QueryTest, Validation) {
  EXPECT_FALSE(Query{}.Validate().ok());
  Query q = JumpingCarQuery();
  EXPECT_TRUE(q.Validate().ok());
  q.objects.push_back("car");
  EXPECT_FALSE(q.Validate().ok());
  q.objects = {""};
  EXPECT_FALSE(q.Validate().ok());
  EXPECT_EQ(JumpingCarQuery().ToString(), "{a=jumping; o1=car}");
}

TEST(OnlineConfigTest, Validation) {
  OnlineConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.alpha = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = OnlineConfig();
  config.object_threshold = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = OnlineConfig();
  config.reference_windows = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = OnlineConfig();
  config.object_bandwidth = 0.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(OnlineEngineTest, CreateValidatesInputs) {
  auto video = MakeVideo();
  ModelSet models = MakeModelSet(video, models::IdealSuite(), {"car"},
                                 {"jumping"});
  EXPECT_FALSE(OnlineEngine::Create(OnlineEngine::Mode::kSvaq, Query{},
                                    OnlineConfig(), video->layout(),
                                    models.detector.get(),
                                    models.recognizer.get())
                   .ok());
  EXPECT_FALSE(OnlineEngine::Create(OnlineEngine::Mode::kSvaq,
                                    JumpingCarQuery(), OnlineConfig(),
                                    video->layout(), nullptr,
                                    models.recognizer.get())
                   .ok());
}

TEST(OnlineEngineTest, IdealModelsRecoverGroundTruth) {
  // A video where the car covers the action exactly (no jitter, no
  // background appearances): ideal models must recover the ground truth
  // perfectly, as in the paper's Table 4 "Ideal Models -> F1 = 1.0" row.
  SyntheticVideoSpec spec;
  spec.name = "ideal_exact";
  spec.num_frames = 40000;
  spec.seed = 77;
  spec.actions.push_back({"jumping", 400.0, 4600.0});
  video::SyntheticObjectSpec car;
  car.label = "car";
  car.correlate_with_action = "jumping";
  car.correlation = 1.0;
  car.coverage = 1.0;
  car.jitter_frames = 0.0;
  car.mean_on_frames = 0.0;  // no background process
  spec.objects.push_back(car);
  auto video_result = SyntheticVideo::Generate(spec);
  ASSERT_TRUE(video_result.ok());
  auto video = *video_result;
  ModelSet models = MakeModelSet(video, models::IdealSuite(), {"car"},
                                 {"jumping"});
  auto engine = OnlineEngine::Create(
      OnlineEngine::Mode::kSvaqd, JumpingCarQuery(), OnlineConfig(),
      video->layout(), models.detector.get(), models.recognizer.get());
  ASSERT_TRUE(engine.ok());
  video::SyntheticVideoStream stream(video, 0);
  auto result = (*engine)->Run(stream);
  ASSERT_TRUE(result.ok());

  const video::IntervalSet truth =
      eval::TruthFrames(*video, JumpingCarQuery())
          .CoarsenAny(video->layout().FramesPerClip());
  const eval::MatchStats match =
      eval::SequenceMatch(result->sequences, truth, 0.5);
  // The paper's Table 4: ideal models give F1 = 1.0. Clip-boundary
  // quantization (ground truth annotated in frames, decisions taken per
  // clip with the half-shot coverage rule) can split one boundary clip off
  // a sequence, so we require perfect recall and near-perfect F1.
  EXPECT_EQ(match.fn, 0);
  EXPECT_GE(match.f1(), 0.95)
      << "tp=" << match.tp << " fp=" << match.fp << " fn=" << match.fn;
}

TEST(OnlineEngineTest, NoisyModelsStillAccurate) {
  auto video = MakeVideo();
  models::ModelSuite suite = models::MaskRcnnI3dSuite();
  ModelSet models = MakeModelSet(video, suite, {"car"}, {"jumping"});
  auto engine = OnlineEngine::Create(
      OnlineEngine::Mode::kSvaqd, JumpingCarQuery(), OnlineConfig(),
      video->layout(), models.detector.get(), models.recognizer.get());
  ASSERT_TRUE(engine.ok());
  video::SyntheticVideoStream stream(video, 0);
  auto result = (*engine)->Run(stream);
  ASSERT_TRUE(result.ok());
  const video::IntervalSet truth =
      eval::TruthFrames(*video, JumpingCarQuery())
          .CoarsenAny(video->layout().FramesPerClip());
  const eval::MatchStats match =
      eval::SequenceMatch(result->sequences, truth, 0.5);
  EXPECT_GT(match.f1(), 0.6);
}

TEST(OnlineEngineTest, SvaqSensitiveToBadPrior) {
  // SVAQ with an absurdly high background probability cannot certify
  // anything; SVAQD recovers (the paper's Figure 2 contrast). Recovery
  // needs enough stream for the kernel estimate to forget the prior.
  auto video = MakeVideo(21, 120000);
  OnlineConfig config;
  config.initial_object_p = 0.6;
  config.initial_action_p = 0.6;
  ModelSet models = MakeModelSet(video, models::IdealSuite(), {"car"},
                                 {"jumping"});
  auto svaq = OnlineEngine::Create(
      OnlineEngine::Mode::kSvaq, JumpingCarQuery(), config, video->layout(),
      models.detector.get(), models.recognizer.get());
  ASSERT_TRUE(svaq.ok());
  video::SyntheticVideoStream stream(video, 0);
  auto svaq_result = (*svaq)->Run(stream);
  ASSERT_TRUE(svaq_result.ok());
  EXPECT_TRUE(svaq_result->sequences.empty());

  ModelSet models2 = MakeModelSet(video, models::IdealSuite(), {"car"},
                                  {"jumping"});
  auto svaqd = OnlineEngine::Create(
      OnlineEngine::Mode::kSvaqd, JumpingCarQuery(), config, video->layout(),
      models2.detector.get(), models2.recognizer.get());
  ASSERT_TRUE(svaqd.ok());
  video::SyntheticVideoStream stream2(video, 0);
  auto svaqd_result = (*svaqd)->Run(stream2);
  ASSERT_TRUE(svaqd_result.ok());
  EXPECT_FALSE(svaqd_result->sequences.empty());
}

TEST(OnlineEngineTest, ShortCircuitSkipsActionInference) {
  // A query for an object that never appears: every clip short-circuits on
  // the object predicate and the recognizer never runs.
  auto video = MakeVideo();
  Query query;
  query.action = "jumping";
  query.objects = {"unicorn"};
  ModelSet models = MakeModelSet(video, models::IdealSuite(), {"unicorn"},
                                 {"jumping"});
  auto engine = OnlineEngine::Create(
      OnlineEngine::Mode::kSvaqd, query, OnlineConfig(), video->layout(),
      models.detector.get(), models.recognizer.get());
  ASSERT_TRUE(engine.ok());
  video::SyntheticVideoStream stream(video, 0);
  auto result = (*engine)->Run(stream);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->sequences.empty());
  // Every clip short-circuits except the periodic background-sampling
  // ticks, which evaluate both stages to keep the estimators unbiased.
  const int64_t period = OnlineConfig().action_null_sampling_period;
  EXPECT_GE(result->stats.clips_short_circuited,
            result->stats.clips_processed -
                result->stats.clips_processed / period - 1);
  // The recognizer only runs on the sampling ticks, not for query
  // evaluation.
  const int64_t total_shots = video->NumShots();
  EXPECT_LE(models.recognizer->stats().units, total_shots / period + 5);
  EXPECT_GT(models.recognizer->stats().units, 0);
}

TEST(OnlineEngineTest, StreamingInterfaceMatchesRun) {
  auto video = MakeVideo();
  ModelSet m1 = MakeModelSet(video, models::MaskRcnnI3dSuite(), {"car"},
                             {"jumping"});
  auto batch = OnlineEngine::Create(
      OnlineEngine::Mode::kSvaqd, JumpingCarQuery(), OnlineConfig(),
      video->layout(), m1.detector.get(), m1.recognizer.get());
  ASSERT_TRUE(batch.ok());
  video::SyntheticVideoStream stream(video, 0);
  auto batch_result = (*batch)->Run(stream);
  ASSERT_TRUE(batch_result.ok());

  ModelSet m2 = MakeModelSet(video, models::MaskRcnnI3dSuite(), {"car"},
                             {"jumping"});
  auto incremental = OnlineEngine::Create(
      OnlineEngine::Mode::kSvaqd, JumpingCarQuery(), OnlineConfig(),
      video->layout(), m2.detector.get(), m2.recognizer.get());
  ASSERT_TRUE(incremental.ok());
  video::SyntheticVideoStream stream2(video, 0);
  std::vector<video::Interval> completed;
  while (auto clip = stream2.NextClip()) {
    ASSERT_TRUE((*incremental)->ProcessClip(*clip).ok());
    for (const auto& seq : (*incremental)->TakeCompleted()) {
      completed.push_back(seq);
    }
  }
  EXPECT_EQ((*incremental)->sequences(), batch_result->sequences);
  // Completed sequences are a prefix of all sequences (the last run may
  // still be open).
  EXPECT_LE(completed.size(), batch_result->sequences.size());
  for (const auto& seq : completed) {
    EXPECT_TRUE(batch_result->sequences.Contains(seq.begin));
  }
}

TEST(OnlineEngineTest, FinishFlushesTrailingOpenSequence) {
  // A video whose action stretches to the very last frame: the final
  // sequence is still "open" when the stream ends, so TakeCompleted never
  // surfaces it — unless Finish() flushes it. The completed-event stream
  // (incremental + Finish) must equal Run()'s sequences exactly.
  SyntheticVideoSpec spec;
  spec.name = "finish_flush";
  spec.num_frames = 40000;
  spec.seed = 99;
  // Long action periods relative to the video length make it very likely
  // the last clip is positive.
  spec.actions.push_back({"jumping", 300.0, 900.0});
  video::SyntheticObjectSpec car;
  car.label = "car";
  car.correlate_with_action = "jumping";
  car.correlation = 1.0;
  car.coverage = 1.0;
  car.jitter_frames = 0.0;
  car.mean_on_frames = 0.0;
  spec.objects.push_back(car);
  auto video_result = SyntheticVideo::Generate(spec);
  ASSERT_TRUE(video_result.ok());
  auto video = *video_result;

  ModelSet m1 = MakeModelSet(video, models::IdealSuite(), {"car"},
                             {"jumping"});
  auto batch = OnlineEngine::Create(
      OnlineEngine::Mode::kSvaqd, JumpingCarQuery(), OnlineConfig(),
      video->layout(), m1.detector.get(), m1.recognizer.get());
  ASSERT_TRUE(batch.ok());
  video::SyntheticVideoStream stream(video, 0);
  auto batch_result = (*batch)->Run(stream);
  ASSERT_TRUE(batch_result.ok());
  ASSERT_FALSE(batch_result->sequences.empty());

  ModelSet m2 = MakeModelSet(video, models::IdealSuite(), {"car"},
                             {"jumping"});
  auto incremental = OnlineEngine::Create(
      OnlineEngine::Mode::kSvaqd, JumpingCarQuery(), OnlineConfig(),
      video->layout(), m2.detector.get(), m2.recognizer.get());
  ASSERT_TRUE(incremental.ok());
  video::SyntheticVideoStream stream2(video, 0);
  std::vector<video::Interval> completed;
  while (auto clip = stream2.NextClip()) {
    ASSERT_TRUE((*incremental)->ProcessClip(*clip).ok());
    for (const auto& seq : (*incremental)->TakeCompleted()) {
      completed.push_back(seq);
    }
  }
  (*incremental)->Finish();
  for (const auto& seq : (*incremental)->TakeCompleted()) {
    completed.push_back(seq);
  }
  // With the flush, the event stream equals the batch result exactly —
  // including the trailing sequence that was open at end of stream.
  const auto batch_intervals = batch_result->sequences.intervals();
  ASSERT_EQ(completed.size(), batch_intervals.size());
  for (size_t i = 0; i < completed.size(); ++i) {
    EXPECT_EQ(completed[i].begin, batch_intervals[i].begin) << i;
    EXPECT_EQ(completed[i].end, batch_intervals[i].end) << i;
  }
  // Idempotent: a second Finish produces nothing new.
  (*incremental)->Finish();
  EXPECT_TRUE((*incremental)->TakeCompleted().empty());
}

TEST(OnlineEngineTest, DeterministicAcrossRuns) {
  auto video = MakeVideo();
  video::IntervalSet first;
  for (int run = 0; run < 2; ++run) {
    ModelSet models = MakeModelSet(video, models::MaskRcnnI3dSuite(),
                                   {"car"}, {"jumping"});
    auto engine = OnlineEngine::Create(
        OnlineEngine::Mode::kSvaqd, JumpingCarQuery(), OnlineConfig(),
        video->layout(), models.detector.get(), models.recognizer.get());
    ASSERT_TRUE(engine.ok());
    video::SyntheticVideoStream stream(video, 0);
    auto result = (*engine)->Run(stream);
    ASSERT_TRUE(result.ok());
    if (run == 0) {
      first = result->sequences;
    } else {
      EXPECT_EQ(result->sequences, first);
    }
  }
}

TEST(OnlineEngineTest, SnapshotReportsEstimates) {
  auto video = MakeVideo();
  ModelSet models = MakeModelSet(video, models::MaskRcnnI3dSuite(), {"car"},
                                 {"jumping"});
  auto engine = OnlineEngine::Create(
      OnlineEngine::Mode::kSvaqd, JumpingCarQuery(), OnlineConfig(),
      video->layout(), models.detector.get(), models.recognizer.get());
  ASSERT_TRUE(engine.ok());
  video::SyntheticVideoStream stream(video, 0);
  auto result = (*engine)->Run(stream);
  ASSERT_TRUE(result.ok());
  const OnlineStats& stats = result->stats;
  EXPECT_EQ(stats.clips_processed, video->NumClips());
  ASSERT_EQ(stats.object_kcrits.size(), 1u);
  EXPECT_GE(stats.object_kcrits[0], 1);
  EXPECT_GE(stats.action_kcrit, 1);
  ASSERT_EQ(stats.object_p.size(), 1u);
  EXPECT_GT(stats.object_p[0], 0.0);
  EXPECT_GT(stats.model_ms, 0.0);
}

TEST(OnlineEngineTest, PositiveClipUpdatePolicyRuns) {
  auto video = MakeVideo();
  OnlineConfig config;
  config.update_policy = UpdatePolicy::kPositiveClip;
  ModelSet models = MakeModelSet(video, models::MaskRcnnI3dSuite(), {"car"},
                                 {"jumping"});
  auto engine = OnlineEngine::Create(
      OnlineEngine::Mode::kSvaqd, JumpingCarQuery(), config, video->layout(),
      models.detector.get(), models.recognizer.get());
  ASSERT_TRUE(engine.ok());
  video::SyntheticVideoStream stream(video, 0);
  auto result = (*engine)->Run(stream);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.clips_positive, 0);
}

}  // namespace
}  // namespace svq::core
