#include "svq/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace svq {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(12);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-1.0));
  EXPECT_TRUE(rng.NextBernoulli(2.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BetaMeanMatches) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextBeta(8.0, 2.0);
  EXPECT_NEAR(sum / n, 0.8, 0.01);
}

TEST(RngTest, BetaStaysInUnitInterval) {
  Rng rng(15);
  for (int i = 0; i < 2000; ++i) {
    const double b = rng.NextBeta(0.5, 0.5);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
  }
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(16);
  double sum = 0.0;
  const int n = 100000;
  const double p = 0.2;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextGeometric(p));
  // Mean failures before success = (1-p)/p = 4.
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, ForkedStreamsAreDecorrelated) {
  Rng parent(99);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.NextUint64() == child2.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng fa = a.Fork(3);
  Rng fb = b.Fork(3);
  EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
}

}  // namespace
}  // namespace svq
