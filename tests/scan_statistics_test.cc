#include "svq/stats/scan_statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "svq/common/rng.h"

namespace svq::stats {
namespace {

TEST(ScanTailTest, EdgeCases) {
  const ScanParams params{0.1, 10, 20.0};
  EXPECT_EQ(ScanTailProbability(0, params), 1.0);
  EXPECT_EQ(ScanTailProbability(-3, params), 1.0);
  EXPECT_EQ(ScanTailProbability(11, params), 0.0);
  EXPECT_EQ(ScanTailProbability(5, {0.0, 10, 20.0}), 0.0);
  EXPECT_EQ(ScanTailProbability(5, {1.0, 10, 20.0}), 1.0);
}

TEST(ScanTailTest, MonotoneNonIncreasingInK) {
  for (const double p : {0.001, 0.02, 0.1, 0.3}) {
    const ScanParams params{p, 16, 50.0};
    double prev = 1.0;
    for (int k = 1; k <= 16; ++k) {
      const double tail = ScanTailProbability(k, params);
      EXPECT_LE(tail, prev + 1e-12) << "p=" << p << " k=" << k;
      prev = tail;
    }
  }
}

TEST(ScanTailTest, MonotoneNonDecreasingInP) {
  double prev = 0.0;
  for (const double p : {0.001, 0.01, 0.05, 0.1, 0.2}) {
    const double tail = ScanTailProbability(4, {p, 12, 30.0});
    EXPECT_GE(tail, prev - 1e-12) << "p=" << p;
    prev = tail;
  }
}

TEST(ScanTailTest, MoreWindowsMoreProbability) {
  double prev = 0.0;
  for (const double l : {2.0, 5.0, 20.0, 100.0}) {
    const double tail = ScanTailProbability(3, {0.02, 10, l});
    EXPECT_GE(tail, prev - 1e-12) << "L=" << l;
    prev = tail;
  }
}

/// The approximation must track the exact finite-Markov-chain embedding in
/// the operating regime (rare events, small alpha).
using ApproxCase = std::tuple<int /*window*/, double /*p*/, double /*L*/>;

class ScanApproxTest : public ::testing::TestWithParam<ApproxCase> {};

TEST_P(ScanApproxTest, TracksExactEmbedding) {
  const auto [w, p, l] = GetParam();
  const int64_t n = static_cast<int64_t>(l * w);
  for (int k = 1; k <= w; ++k) {
    auto exact = ExactScanTailIid(k, w, n, p);
    ASSERT_TRUE(exact.ok());
    const double approx = ScanTailProbability(k, {p, w, l});
    // Absolute tolerance for the bulk, relative slack in the deep tail.
    EXPECT_LE(std::fabs(approx - *exact),
              0.08 + 1.0 * *exact)
        << "w=" << w << " p=" << p << " L=" << l << " k=" << k
        << " exact=" << *exact << " approx=" << approx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OperatingRegime, ScanApproxTest,
    ::testing::Values(ApproxCase{8, 0.005, 20.0}, ApproxCase{8, 0.02, 50.0},
                      ApproxCase{12, 0.01, 20.0}, ApproxCase{12, 0.05, 10.0},
                      ApproxCase{16, 0.02, 30.0},
                      ApproxCase{16, 0.08, 10.0}));

TEST(CriticalValueTest, ValidatesInputs) {
  EXPECT_FALSE(CriticalValue({0.1, 10, 20.0}, 0.0).ok());
  EXPECT_FALSE(CriticalValue({0.1, 10, 20.0}, 1.0).ok());
  EXPECT_FALSE(CriticalValue({0.1, 0, 20.0}, 0.05).ok());
  EXPECT_FALSE(CriticalValue({-0.1, 10, 20.0}, 0.05).ok());
  EXPECT_FALSE(CriticalValue({0.1, 10, 0.5}, 0.05).ok());
}

TEST(CriticalValueTest, WithinOneOfExactAcrossRegimes) {
  for (const int w : {8, 12, 16}) {
    for (const double p : {0.005, 0.02, 0.1, 0.25}) {
      for (const double l : {5.0, 20.0, 100.0}) {
        auto approx_k = CriticalValue({p, w, l}, 0.05);
        ASSERT_TRUE(approx_k.ok());
        int exact_k = w + 1;
        for (int k = 1; k <= w; ++k) {
          auto tail = ExactScanTailIid(k, w, static_cast<int64_t>(l * w), p);
          ASSERT_TRUE(tail.ok());
          if (*tail <= 0.05) {
            exact_k = k;
            break;
          }
        }
        EXPECT_LE(std::abs(*approx_k - exact_k), 1)
            << "w=" << w << " p=" << p << " L=" << l;
      }
    }
  }
}

TEST(CriticalValueTest, IncreasesWithBackgroundProbability) {
  int prev = 0;
  for (const double p : {1e-5, 1e-4, 1e-3, 1e-2, 0.1}) {
    auto k = CriticalValue({p, 80, 200.0}, 0.05);
    ASSERT_TRUE(k.ok());
    EXPECT_GE(*k, prev) << "p=" << p;
    prev = *k;
  }
}

TEST(CriticalValueTest, TinyBackgroundNeedsFewEvents) {
  auto k = CriticalValue({1e-6, 80, 200.0}, 0.05);
  ASSERT_TRUE(k.ok());
  EXPECT_LE(*k, 3);
}

TEST(CriticalValueTest, SaturatedBackgroundIsNeverSignificant) {
  auto k = CriticalValue({0.95, 20, 100.0}, 0.05);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(*k, 21);  // window + 1: unattainable quota
}

TEST(ExactScanTest, ValidatesInputs) {
  EXPECT_FALSE(ExactScanTailIid(3, 0, 10, 0.1).ok());
  EXPECT_FALSE(ExactScanTailIid(3, 21, 42, 0.1).ok());
  EXPECT_FALSE(ExactScanTailIid(3, 10, 5, 0.1).ok());
  EXPECT_FALSE(ExactScanTailIid(3, 10, 20, -0.5).ok());
}

TEST(ExactScanTest, KnownSmallCase) {
  // w=2, k=2 over n trials = P(two consecutive successes). For n=4,
  // p=0.5: 1 - q^2 (1 + 2p) with q=1-p gives 1 - 0.25*2 = 0.5.
  auto tail = ExactScanTailIid(2, 2, 4, 0.5);
  ASSERT_TRUE(tail.ok());
  EXPECT_NEAR(*tail, 0.5, 1e-12);
}

TEST(ExactScanTest, MatchesMonteCarlo) {
  const int w = 6;
  const int64_t n = 60;
  const double p = 0.15;
  const int k = 4;
  auto exact = ExactScanTailIid(k, w, n, p);
  ASSERT_TRUE(exact.ok());

  Rng rng(2024);
  const int trials = 20000;
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    int window_count = 0;
    bool hit = false;
    std::vector<int> bits;
    for (int64_t i = 0; i < n && !hit; ++i) {
      const int b = rng.NextBernoulli(p) ? 1 : 0;
      bits.push_back(b);
      window_count += b;
      if (i >= w) window_count -= bits[static_cast<size_t>(i - w)];
      if (window_count >= k) hit = true;
    }
    hits += hit ? 1 : 0;
  }
  const double mc = static_cast<double>(hits) / trials;
  EXPECT_NEAR(*exact, mc, 4.0 * std::sqrt(mc * (1 - mc) / trials) + 1e-3);
}

TEST(MarkovScanTest, StationaryProbability) {
  MarkovChainParams chain{0.1, 0.6, -1.0};
  EXPECT_NEAR(chain.StationaryP(), 0.1 / (1.0 + 0.1 - 0.6), 1e-12);
}

TEST(MarkovScanTest, IidChainMatchesIidResult) {
  // p01 == p11 == p reduces to i.i.d. trials.
  const double p = 0.1;
  MarkovChainParams chain{p, p, -1.0};
  for (int k = 1; k <= 8; ++k) {
    auto markov = ExactScanTailMarkov(k, 8, 80, chain);
    auto iid = ExactScanTailIid(k, 8, 80, p);
    ASSERT_TRUE(markov.ok());
    ASSERT_TRUE(iid.ok());
    EXPECT_NEAR(*markov, *iid, 1e-10) << "k=" << k;
  }
}

TEST(MarkovScanTest, PositiveDependenceClustersEvents) {
  // Same stationary rate, but sticky successes concentrate events, so the
  // quota is reached more often than under independence.
  const double p = 0.1;
  MarkovChainParams sticky;
  sticky.p11 = 0.5;
  sticky.p01 = p * (1.0 - sticky.p11) / (1.0 - p);  // stationary rate p
  ASSERT_NEAR(sticky.StationaryP(), p, 1e-9);
  auto dependent = ExactScanTailMarkov(4, 10, 100, sticky);
  auto independent = ExactScanTailIid(4, 10, 100, p);
  ASSERT_TRUE(dependent.ok());
  ASSERT_TRUE(independent.ok());
  EXPECT_GT(*dependent, *independent);
}

TEST(MarkovScanTest, CriticalValueRisesUnderDependence) {
  const double p = 0.05;
  MarkovChainParams sticky;
  sticky.p11 = 0.6;
  sticky.p01 = p * (1.0 - sticky.p11) / (1.0 - p);
  auto k_iid = MarkovCriticalValue(12, 240, {p, p, -1.0}, 0.05);
  auto k_dep = MarkovCriticalValue(12, 240, sticky, 0.05);
  ASSERT_TRUE(k_iid.ok());
  ASSERT_TRUE(k_dep.ok());
  EXPECT_GE(*k_dep, *k_iid);
}

}  // namespace
}  // namespace svq::stats
