// Tests for the streaming subsystem (src/svq/stream, docs/streaming.md):
// standing SVAQ/SVAQD queries over live feeds, shared inference across
// co-located subscribers, and the bounded event queue's lag/drop policy.
//
// The central check is an oracle equivalence: N subscribers fed clip by
// clip through the dispatcher must each produce exactly the sequence
// events a serial OnlineEngine::Run of the same statement produces —
// including the trailing sequence flushed by OnlineEngine::Finish at feed
// close. Runs under `ctest -L tsan` (with -DSVQ_SANITIZE=thread) to prove
// the dispatcher's feed/subscription locking discipline is race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "svq/core/engine.h"
#include "svq/query/executor.h"
#include "svq/stream/dispatcher.h"
#include "svq/stream/stream_event.h"
#include "svq/video/synthetic_video.h"
#include "svq/video/video_stream.h"

namespace svq::stream {
namespace {

using core::OnlineEngine;
using video::Interval;

std::string StreamingStatement(const std::string& video) {
  return "SELECT MERGE(clipID) FROM (PROCESS " + video +
         " PRODUCE clipID, obj USING ObjectDetector, act USING "
         "ActionRecognizer) WHERE act='smoking' AND obj.include('cup')";
}

std::shared_ptr<const video::SyntheticVideo> StreamVideo(
    const std::string& name, uint64_t seed) {
  video::SyntheticVideoSpec spec;
  spec.name = name;
  spec.num_frames = 36000;
  spec.seed = seed;
  spec.actions.push_back({"smoking", 350.0, 4500.0});
  video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.9;
  cup.coverage = 0.9;
  cup.mean_on_frames = 250.0;
  cup.mean_off_frames = 2600.0;
  spec.objects.push_back(cup);
  auto video = video::SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    video_ = StreamVideo("stream_0", 4200);
    ASSERT_TRUE(engine_.AddVideo(video_).ok());
    ASSERT_TRUE(engine_.IngestAll().ok());
  }

  /// The serial reference answer: the exact sequences OnlineEngine::Run
  /// produces for this statement through the ordinary executor path.
  std::vector<Interval> Oracle(const std::string& statement) {
    auto reference = query::ExecuteStatementOn(engine_.Pin(), statement);
    EXPECT_TRUE(reference.ok()) << reference.status();
    EXPECT_TRUE(reference->online.has_value());
    return reference->online->sequences.intervals();
  }

  /// Drains everything queued on `sub` right now, appending sequence
  /// intervals to `sequences` and returning the terminal kind seen (or
  /// kSequence if none yet).
  static StreamEvent::Kind Drain(const SubscriptionPtr& sub,
                                 std::vector<Interval>* sequences,
                                 int64_t* gap_dropped = nullptr) {
    StreamEvent::Kind terminal = StreamEvent::Kind::kSequence;
    for (const StreamEvent& event : sub->Poll()) {
      switch (event.kind) {
        case StreamEvent::Kind::kSequence:
          sequences->push_back(event.sequence);
          break;
        case StreamEvent::Kind::kGap:
          EXPECT_TRUE(event.status.IsResourceExhausted());
          EXPECT_GT(event.dropped, 0);
          if (gap_dropped != nullptr) *gap_dropped += event.dropped;
          break;
        default:
          terminal = event.kind;
          break;
      }
    }
    return terminal;
  }

  std::shared_ptr<const video::SyntheticVideo> video_;
  core::VideoQueryEngine engine_;
};

TEST_F(StreamTest, SubscribersMatchSerialRunOracle) {
  const std::string statement = StreamingStatement("stream_0");
  const std::vector<Interval> oracle = Oracle(statement);
  ASSERT_FALSE(oracle.empty());

  StreamOptions options;
  options.event_queue_capacity = 4096;  // hold everything; no drops here
  StreamDispatcher dispatcher(&engine_, options);
  constexpr int kSubscribers = 4;
  std::vector<SubscriptionPtr> subs;
  for (int i = 0; i < kSubscribers; ++i) {
    auto sub = dispatcher.Subscribe("lobby", statement);
    ASSERT_TRUE(sub.ok()) << sub.status();
    subs.push_back(*sub);
  }
  EXPECT_TRUE(dispatcher.HasFeed("lobby"));

  // Feed in uneven batches, interleaving polls, until the video runs dry.
  std::vector<std::vector<Interval>> collected(kSubscribers);
  std::vector<StreamEvent::Kind> terminal(kSubscribers,
                                          StreamEvent::Kind::kSequence);
  const auto drain = [&](int i) {
    const StreamEvent::Kind kind = Drain(subs[i], &collected[i]);
    if (kind != StreamEvent::Kind::kSequence) terminal[i] = kind;
  };
  bool closed = false;
  int64_t batch = 1;
  while (!closed) {
    auto progress = dispatcher.FeedClips("lobby", batch);
    ASSERT_TRUE(progress.ok()) << progress.status();
    closed = progress->closed;
    batch = batch % 7 + 1;
    for (int i = 0; i < kSubscribers; i += 2) {  // poll only half mid-feed
      drain(i);
    }
  }
  // The feed closed: every subscriber is finished and drains to exactly
  // the serial result, trailing flushed sequence included.
  for (int i = 0; i < kSubscribers; ++i) {
    EXPECT_TRUE(subs[i]->finished()) << i;
    drain(i);
    EXPECT_EQ(terminal[i], StreamEvent::Kind::kEndOfStream) << i;
    EXPECT_EQ(subs[i]->dropped_total(), 0) << i;
    ASSERT_EQ(collected[i].size(), oracle.size()) << i;
    for (size_t j = 0; j < oracle.size(); ++j) {
      EXPECT_EQ(collected[i][j].begin, oracle[j].begin) << i << "," << j;
      EXPECT_EQ(collected[i][j].end, oracle[j].end) << i << "," << j;
    }
  }
  // Closing erased the feed; feeding again is a clean NotFound.
  EXPECT_FALSE(dispatcher.HasFeed("lobby"));
  EXPECT_TRUE(dispatcher.FeedClips("lobby", 1).status().IsNotFound());

  const DispatcherStats stats = dispatcher.Stats();
  EXPECT_EQ(stats.feeds_created, 1);
  EXPECT_EQ(stats.feeds_open, 0);
  EXPECT_EQ(stats.subscriptions_opened, kSubscribers);
  EXPECT_EQ(stats.subscriptions_active, 0);
  EXPECT_EQ(stats.clips_dispatched, video_->NumClips());
  EXPECT_EQ(stats.events_dropped, 0);
}

TEST_F(StreamTest, SharedInferenceChargesManyRunsOnce) {
  // Eight identical standing queries on one feed: the shared model pool
  // memoizes per (clip, unit), so the models RUN one subscriber's worth of
  // inference while the subscribers are CHARGED eight worths — the
  // headline multiplexing win (ISSUE acceptance: run <= 1.1x single).
  const std::string statement = StreamingStatement("stream_0");
  StreamOptions options;
  options.event_queue_capacity = 4096;
  StreamDispatcher dispatcher(&engine_, options);
  constexpr int kSubscribers = 8;
  std::vector<SubscriptionPtr> subs;
  for (int i = 0; i < kSubscribers; ++i) {
    auto sub = dispatcher.Subscribe("lobby", statement);
    ASSERT_TRUE(sub.ok()) << sub.status();
    subs.push_back(*sub);
  }
  while (true) {
    auto progress = dispatcher.FeedClips("lobby", 64);
    ASSERT_TRUE(progress.ok()) << progress.status();
    if (progress->closed) break;
  }
  const DispatcherStats stats = dispatcher.Stats();
  ASSERT_GT(stats.model_units_run, 0);
  ASSERT_GT(stats.model_units_charged, 0);
  // charged / kSubscribers is one dedicated engine's inference bill.
  EXPECT_LE(static_cast<double>(stats.model_units_run),
            1.1 * static_cast<double>(stats.model_units_charged) /
                kSubscribers)
      << "run=" << stats.model_units_run
      << " charged=" << stats.model_units_charged;
  EXPECT_LE(stats.model_ms_run,
            1.1 * stats.model_ms_charged / kSubscribers + 1e-9);
  // And sharing must not perturb results: all eight agree with the serial
  // run (per-query purity of the synthetic models).
  const std::vector<Interval> oracle = Oracle(statement);
  for (int i = 0; i < kSubscribers; ++i) {
    std::vector<Interval> got;
    EXPECT_EQ(Drain(subs[i], &got), StreamEvent::Kind::kEndOfStream);
    ASSERT_EQ(got.size(), oracle.size()) << i;
    for (size_t j = 0; j < oracle.size(); ++j) {
      EXPECT_EQ(got[j].begin, oracle[j].begin) << i << "," << j;
      EXPECT_EQ(got[j].end, oracle[j].end) << i << "," << j;
    }
  }
}

TEST_F(StreamTest, SlowConsumerGetsGapMarkersNotStalls) {
  const std::string statement = StreamingStatement("stream_0");
  StreamDispatcher dispatcher(&engine_);
  SubscribeOptions tiny;
  tiny.queue_capacity = 2;  // the minimum: one slot + the gap marker
  auto sub = dispatcher.Subscribe("lobby", statement, tiny);
  ASSERT_TRUE(sub.ok()) << sub.status();

  // Never poll while feeding: the queue overflows and coalesces.
  while (true) {
    auto progress = dispatcher.FeedClips("lobby", 256);
    ASSERT_TRUE(progress.ok()) << progress.status();
    if (progress->closed) break;
  }
  ASSERT_TRUE((*sub)->finished());
  const std::vector<Interval> oracle = Oracle(statement);
  ASSERT_GT(oracle.size(), 1u);

  std::vector<Interval> got;
  int64_t gap_dropped = 0;
  EXPECT_EQ(Drain(*sub, &got, &gap_dropped),
            StreamEvent::Kind::kEndOfStream);
  // Capacity 2 with no polling keeps at most one sequence... in fact every
  // buffered sequence was evicted into the gap by later pushes; what
  // survives is the coalesced gap + the terminal event.
  EXPECT_LT(got.size(), oracle.size());
  EXPECT_GT(gap_dropped, 0);
  EXPECT_EQ((*sub)->dropped_total(), gap_dropped);
  // Lost events are *reported*, not silently swallowed: gaps + survivors
  // account for every sequence the engine completed.
  EXPECT_EQ(gap_dropped + static_cast<int64_t>(got.size()),
            static_cast<int64_t>(oracle.size()));
  EXPECT_EQ(dispatcher.Stats().events_dropped, gap_dropped);
}

TEST_F(StreamTest, UnsubscribeCancelsAndDetaches) {
  const std::string statement = StreamingStatement("stream_0");
  StreamDispatcher dispatcher(&engine_);
  auto sub = dispatcher.Subscribe("lobby", statement);
  ASSERT_TRUE(sub.ok()) << sub.status();
  const uint64_t id = (*sub)->id();
  EXPECT_EQ(dispatcher.Find(id), *sub);

  ASSERT_TRUE(dispatcher.FeedClips("lobby", 32).ok());
  ASSERT_TRUE(dispatcher.Unsubscribe(id).ok());
  EXPECT_EQ(dispatcher.Find(id), nullptr);
  EXPECT_TRUE(dispatcher.Unsubscribe(id).IsNotFound());
  EXPECT_EQ(dispatcher.Stats().subscriptions_active, 0);

  // Events queued before the unsubscribe stay pollable; no terminal event
  // is appended (the consumer asked to stop), and further feeding pushes
  // nothing to the detached subscription.
  const size_t pending_before = (*sub)->pending();
  ASSERT_TRUE(dispatcher.FeedClips("lobby", 32).ok());
  EXPECT_EQ((*sub)->pending(), pending_before);
  EXPECT_FALSE((*sub)->finished());
}

TEST_F(StreamTest, CancelledSubscriptionGetsTerminalError) {
  const std::string statement = StreamingStatement("stream_0");
  StreamDispatcher dispatcher(&engine_);
  auto sub = dispatcher.Subscribe("lobby", statement);
  ASSERT_TRUE(sub.ok()) << sub.status();
  (*sub)->Cancel();
  // The next dispatched clip observes the fired CancellationSource: the
  // standing query fails and a terminal kError lands in the queue.
  ASSERT_TRUE(dispatcher.FeedClips("lobby", 1).ok());
  ASSERT_TRUE((*sub)->finished());
  const std::deque<StreamEvent> events = (*sub)->Poll();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().kind, StreamEvent::Kind::kError);
  EXPECT_TRUE(events.back().status.IsCancelled()) << events.back().status;
}

TEST_F(StreamTest, SubscriptionDeadlineSurfacesAsError) {
  const std::string statement = StreamingStatement("stream_0");
  StreamDispatcher dispatcher(&engine_);
  SubscribeOptions options;
  options.timeout_ms = 1;
  auto sub = dispatcher.Subscribe("lobby", statement, options);
  ASSERT_TRUE(sub.ok()) << sub.status();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(dispatcher.FeedClips("lobby", 1).ok());
  ASSERT_TRUE((*sub)->finished());
  const std::deque<StreamEvent> events = (*sub)->Poll();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().kind, StreamEvent::Kind::kError);
  EXPECT_TRUE(events.back().status.IsDeadlineExceeded())
      << events.back().status;
}

TEST_F(StreamTest, SubscribeRejectsBadStatements) {
  StreamDispatcher dispatcher(&engine_);
  // Ranked statements have a definite end; they belong on the QUERY verb.
  const std::string ranked =
      "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS stream_0 PRODUCE "
      "clipID, obj USING ObjectDetector, act USING ActionRecognizer) "
      "WHERE act='smoking' AND obj.include('cup') "
      "ORDER BY RANK(act, obj) LIMIT 3";
  EXPECT_TRUE(
      dispatcher.Subscribe("lobby", ranked).status().IsInvalidArgument());
  EXPECT_TRUE(dispatcher.Subscribe("lobby", "garbage((")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(dispatcher.Subscribe("lobby", StreamingStatement("no_such"))
                  .status()
                  .IsNotFound());
  // A feed is bound to its first statement's video for life.
  auto other = StreamVideo("stream_1", 4300);
  ASSERT_TRUE(engine_.AddVideo(other).ok());
  ASSERT_TRUE(engine_.IngestAll().ok());
  ASSERT_TRUE(
      dispatcher.Subscribe("lobby", StreamingStatement("stream_0")).ok());
  EXPECT_TRUE(dispatcher.Subscribe("lobby", StreamingStatement("stream_1"))
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(StreamTest, PerFeedSubscriptionCapEnforced) {
  StreamOptions options;
  options.max_subscriptions_per_feed = 2;
  StreamDispatcher dispatcher(&engine_, options);
  const std::string statement = StreamingStatement("stream_0");
  ASSERT_TRUE(dispatcher.Subscribe("lobby", statement).ok());
  ASSERT_TRUE(dispatcher.Subscribe("lobby", statement).ok());
  EXPECT_TRUE(dispatcher.Subscribe("lobby", statement)
                  .status()
                  .IsResourceExhausted());
}

TEST_F(StreamTest, AttachedSourceWithConcurrentPollersMatchesOracle) {
  // The TSan-sensitive path: the dispatcher worker pumps an attached
  // VideoStream while one thread per subscriber polls concurrently and
  // the main thread reads Stats(). Every subscriber must still see
  // exactly the serial-run sequences, in order.
  const std::string statement = StreamingStatement("stream_0");
  const std::vector<Interval> oracle = Oracle(statement);
  ASSERT_FALSE(oracle.empty());

  StreamOptions options;
  options.event_queue_capacity = 4096;
  StreamDispatcher dispatcher(&engine_, options);
  constexpr int kSubscribers = 3;
  std::vector<SubscriptionPtr> subs;
  for (int i = 0; i < kSubscribers; ++i) {
    auto sub = dispatcher.Subscribe("live", statement);
    ASSERT_TRUE(sub.ok()) << sub.status();
    subs.push_back(*sub);
  }
  std::vector<std::vector<Interval>> collected(kSubscribers);
  std::atomic<int> eos{0};
  std::vector<std::thread> pollers;
  for (int i = 0; i < kSubscribers; ++i) {
    pollers.emplace_back([&, i]() {
      while (true) {
        for (const StreamEvent& event : subs[i]->Poll()) {
          if (event.kind == StreamEvent::Kind::kSequence) {
            collected[i].push_back(event.sequence);
          } else if (event.kind == StreamEvent::Kind::kEndOfStream) {
            eos.fetch_add(1);
            return;
          } else if (event.kind == StreamEvent::Kind::kError) {
            return;
          }
        }
        std::this_thread::yield();
      }
    });
  }
  ASSERT_TRUE(dispatcher
                  .AttachSource("live", "stream_0",
                                std::make_unique<video::SyntheticVideoStream>(
                                    video_, engine_.Pin()->Find("stream_0")
                                                ->id))
                  .ok());
  // A second attach on the same feed is refused while the first pumps.
  const Status again = dispatcher.AttachSource(
      "live", "stream_0",
      std::make_unique<video::SyntheticVideoStream>(
          video_, engine_.Pin()->Find("stream_0")->id));
  EXPECT_TRUE(again.IsFailedPrecondition()) << again;
  while (dispatcher.HasFeed("live")) {
    (void)dispatcher.Stats();  // racing reads must be clean under TSan
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& poller : pollers) poller.join();
  EXPECT_EQ(eos.load(), kSubscribers);
  for (int i = 0; i < kSubscribers; ++i) {
    ASSERT_EQ(collected[i].size(), oracle.size()) << i;
    for (size_t j = 0; j < oracle.size(); ++j) {
      EXPECT_EQ(collected[i][j].begin, oracle[j].begin) << i << "," << j;
      EXPECT_EQ(collected[i][j].end, oracle[j].end) << i << "," << j;
    }
  }
  EXPECT_EQ(dispatcher.Stats().clips_dispatched, video_->NumClips());
}

TEST_F(StreamTest, CloseFeedFlushesAndTerminates) {
  const std::string statement = StreamingStatement("stream_0");
  StreamDispatcher dispatcher(&engine_);
  auto sub = dispatcher.Subscribe("lobby", statement);
  ASSERT_TRUE(sub.ok()) << sub.status();
  ASSERT_TRUE(dispatcher.FeedClips("lobby", 128).ok());
  ASSERT_TRUE(dispatcher.CloseFeed("lobby").ok());
  EXPECT_FALSE(dispatcher.HasFeed("lobby"));
  EXPECT_TRUE(dispatcher.CloseFeed("lobby").IsNotFound());
  ASSERT_TRUE((*sub)->finished());
  const std::deque<StreamEvent> events = (*sub)->Poll();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().kind, StreamEvent::Kind::kEndOfStream);
  // Mid-stream close still flushed the trailing open run (if one existed):
  // every non-terminal event is a well-formed half-open interval.
  for (const StreamEvent& event : events) {
    if (event.kind == StreamEvent::Kind::kSequence) {
      EXPECT_LT(event.sequence.begin, event.sequence.end);
    }
  }
}

}  // namespace
}  // namespace svq::stream
