// Integration tests of the VideoQueryEngine facade and the SQL executor:
// register -> ingest -> query through the public API end to end.

#include "svq/core/engine.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "svq/query/executor.h"

namespace svq::core {
namespace {

std::shared_ptr<const video::SyntheticVideo> DemoVideo(
    const std::string& name = "demo", uint64_t seed = 12) {
  video::SyntheticVideoSpec spec;
  spec.name = name;
  spec.num_frames = 30000;
  spec.seed = seed;
  spec.actions.push_back({"jumping", 350.0, 4200.0});
  video::SyntheticObjectSpec car;
  car.label = "car";
  car.correlate_with_action = "jumping";
  car.correlation = 0.9;
  car.coverage = 0.9;
  car.mean_on_frames = 250.0;
  car.mean_off_frames = 2200.0;
  spec.objects.push_back(car);
  auto video = video::SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

Query JumpingCar() {
  Query q;
  q.action = "jumping";
  q.objects = {"car"};
  return q;
}

TEST(EngineTest, RegistrationLifecycle) {
  VideoQueryEngine engine;
  auto id = engine.AddVideo(DemoVideo());
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(engine.AddVideo(DemoVideo()).status().code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(engine.AddVideo(nullptr).status().IsInvalidArgument());
  EXPECT_EQ(engine.Ingested("demo"), nullptr);
  EXPECT_TRUE(engine.Ingest("missing").IsNotFound());
  ASSERT_TRUE(engine.Ingest("demo").ok());
  EXPECT_NE(engine.Ingested("demo"), nullptr);
  EXPECT_EQ(engine.Ingest("demo").code(), StatusCode::kAlreadyExists);
}

TEST(EngineTest, OnlineThenOffline) {
  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo()).ok());
  auto online = engine.ExecuteOnline(JumpingCar(), "demo");
  ASSERT_TRUE(online.ok()) << online.status();
  EXPECT_FALSE(online->sequences.empty());

  // Offline requires ingestion first.
  auto premature = engine.ExecuteTopK(JumpingCar(), "demo", 3);
  EXPECT_EQ(premature.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine.Ingest("demo").ok());
  auto topk = engine.ExecuteTopK(JumpingCar(), "demo", 3);
  ASSERT_TRUE(topk.ok()) << topk.status();
  EXPECT_FALSE(topk->sequences.empty());
  EXPECT_LE(topk->sequences.size(), 3u);
  // Scores come back ranked.
  for (size_t i = 1; i < topk->sequences.size(); ++i) {
    EXPECT_GE(topk->sequences[i - 1].upper_bound,
              topk->sequences[i].upper_bound - 1e-9);
  }
}

TEST(EngineTest, ServesReopenedArtifactsWithoutRawVideo) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "svq_engine_reopen").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  // First life: ingest to disk.
  IngestOptions disk_options;
  disk_options.backend = IngestOptions::TableBackend::kDisk;
  disk_options.directory = dir;
  VideoQueryEngine writer(models::ModelSuite(), OnlineConfig(), disk_options);
  ASSERT_TRUE(writer.AddVideo(DemoVideo()).ok());
  ASSERT_TRUE(writer.Ingest("demo").ok());
  auto reference = writer.ExecuteTopK(JumpingCar(), "demo", 3);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // Second life: a fresh engine serves the reopened artifacts with no raw
  // video and no re-ingestion.
  auto reopened = OpenIngestedVideo(dir + "/demo");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  VideoQueryEngine server;
  auto id = server.AddIngested(
      std::make_shared<const IngestedVideo>(std::move(reopened).value()));
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_TRUE(server.HasVideo("demo"));
  EXPECT_TRUE(server.AddIngested(nullptr).status().IsInvalidArgument());

  auto topk = server.ExecuteTopK(JumpingCar(), "demo", 3);
  ASSERT_TRUE(topk.ok()) << topk.status();
  ASSERT_EQ(topk->sequences.size(), reference->sequences.size());
  for (size_t i = 0; i < topk->sequences.size(); ++i) {
    EXPECT_EQ(topk->sequences[i].clips, reference->sequences[i].clips);
  }

  // Online/streaming execution needs the raw frames, which only the
  // original ingest had: clean FailedPrecondition, not a crash.
  auto online = server.ExecuteOnline(JumpingCar(), "demo");
  EXPECT_EQ(online.status().code(), StatusCode::kFailedPrecondition);
  fs::remove_all(dir);
}

TEST(EngineTest, AllOfflineAlgorithmsAgreeOnSequences) {
  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo()).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());
  const int k = 4;
  auto rvaq =
      engine.ExecuteTopK(JumpingCar(), "demo", k, OfflineAlgorithm::kRvaq);
  auto noskip = engine.ExecuteTopK(JumpingCar(), "demo", k,
                                   OfflineAlgorithm::kRvaqNoSkip);
  auto fa =
      engine.ExecuteTopK(JumpingCar(), "demo", k, OfflineAlgorithm::kFagin);
  auto trav = engine.ExecuteTopK(JumpingCar(), "demo", k,
                                 OfflineAlgorithm::kPqTraverse);
  ASSERT_TRUE(rvaq.ok());
  ASSERT_TRUE(noskip.ok());
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(trav.ok());
  ASSERT_EQ(rvaq->sequences.size(), trav->sequences.size());
  for (size_t i = 0; i < rvaq->sequences.size(); ++i) {
    EXPECT_EQ(rvaq->sequences[i].clips, trav->sequences[i].clips);
    EXPECT_EQ(noskip->sequences[i].clips, trav->sequences[i].clips);
    EXPECT_EQ(fa->sequences[i].clips, trav->sequences[i].clips);
  }
}

TEST(ExecutorTest, StreamingStatement) {
  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo()).ok());
  auto result = query::ExecuteStatement(
      &engine,
      "SELECT MERGE(clipID) AS Sequence "
      "FROM (PROCESS demo PRODUCE clipID, obj USING ObjectDetector, "
      "act USING ActionRecognizer) "
      "WHERE act='jumping' AND obj.include('car')");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->online.has_value());
  EXPECT_FALSE(result->topk.has_value());
  EXPECT_FALSE(result->online->sequences.empty());
}

TEST(ExecutorTest, RankedStatement) {
  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo()).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());
  auto result = query::ExecuteStatement(
      &engine,
      "SELECT MERGE(clipID), RANK(act, obj) "
      "FROM (PROCESS demo PRODUCE clipID, obj USING ObjectTracker, "
      "act USING ActionRecognizer) "
      "WHERE act='jumping' AND obj.include('car') "
      "ORDER BY RANK(act, obj) LIMIT 2");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->topk.has_value());
  EXPECT_LE(result->topk->sequences.size(), 2u);
}

TEST(ExecutorTest, UsingSelectsModelSuite) {
  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo()).ok());
  // Ideal models: the result must exactly match the ideal-model engine run.
  auto ideal = query::ExecuteStatement(
      &engine,
      "SELECT MERGE(clipID) FROM (PROCESS demo PRODUCE clipID, "
      "obj USING Ideal, act USING Ideal) "
      "WHERE act='jumping' AND obj.include('car')");
  ASSERT_TRUE(ideal.ok()) << ideal.status();
  // Engine suite restored afterwards.
  EXPECT_FALSE(engine.suite().object_profile.ideal);

  VideoQueryEngine ideal_engine{models::IdealSuite()};
  ASSERT_TRUE(ideal_engine.AddVideo(DemoVideo()).ok());
  auto direct = ideal_engine.ExecuteOnline(JumpingCar(), "demo");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(ideal->online->sequences, direct->sequences);
}

TEST(ExecutorTest, UnknownVideoFails) {
  VideoQueryEngine engine;
  auto result = query::ExecuteStatement(
      &engine,
      "SELECT MERGE(clipID) FROM (PROCESS ghost PRODUCE clipID, obj, act) "
      "WHERE act='jumping' AND obj.include('car')");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

}  // namespace
}  // namespace svq::core
