#include "svq/server/wire.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace svq::server {
namespace {

QueryResponse SampleResponse() {
  QueryResponse response;
  response.request_id = 77;
  response.status = Status::OK();
  response.ranked = true;
  response.sequences = {{10, 24, 800.5, 812.0}, {100, 120, 500.0, 500.0}};
  response.metrics.sorted_accesses = 1234;
  response.metrics.random_accesses = 567;
  response.metrics.sequential_reads = 89;
  response.metrics.virtual_ms = 3120.25;
  response.metrics.algorithm_ms = 4.5;
  response.metrics.model_ms = 0.0;
  response.metrics.clips_processed = 0;
  response.metrics.threads_used = 4;
  response.metrics.tasks_executed = 32;
  response.metrics.fanout_ms = 2.75;
  response.metrics.server_queue_ms = 0.4;
  response.metrics.server_exec_ms = 18.0;
  return response;
}

/// Strips the 4-byte length header and returns the payload.
std::string PayloadOf(const std::string& frame) {
  EXPECT_GE(frame.size(), kFrameHeaderBytes + 2);
  return frame.substr(kFrameHeaderBytes);
}

TEST(WireTest, QueryRequestRoundTrip) {
  QueryRequest request;
  request.request_id = 42;
  request.statement = "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, "
                      "obj USING ObjectDetector, act USING ActionRecognizer) "
                      "WHERE act='smoking' AND obj.include('cup')";
  request.timeout_ms = 250;
  const std::string frame = EncodeQueryRequest(request);

  const std::string payload = PayloadOf(frame);
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  ASSERT_TRUE(DecodePayloadHeader(&cursor, &type).ok());
  EXPECT_EQ(type, MessageType::kQueryRequest);
  QueryRequest decoded;
  ASSERT_TRUE(DecodeQueryRequest(&cursor, &decoded).ok());
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.statement, request.statement);
  EXPECT_EQ(decoded.timeout_ms, request.timeout_ms);
}

TEST(WireTest, QueryResponseRoundTrip) {
  const QueryResponse response = SampleResponse();
  const std::string payload = PayloadOf(EncodeQueryResponse(response));
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  ASSERT_TRUE(DecodePayloadHeader(&cursor, &type).ok());
  EXPECT_EQ(type, MessageType::kQueryResponse);
  QueryResponse decoded;
  ASSERT_TRUE(DecodeQueryResponse(&cursor, &decoded).ok());
  EXPECT_EQ(decoded.request_id, response.request_id);
  EXPECT_TRUE(decoded.status.ok());
  EXPECT_EQ(decoded.ranked, response.ranked);
  EXPECT_EQ(decoded.sequences, response.sequences);
  EXPECT_EQ(decoded.metrics, response.metrics);
}

TEST(WireTest, ErrorResponseCarriesStatus) {
  QueryResponse response;
  response.request_id = 7;
  response.status = Status::ResourceExhausted("admission queue full");
  const std::string payload = PayloadOf(EncodeQueryResponse(response));
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  ASSERT_TRUE(DecodePayloadHeader(&cursor, &type).ok());
  QueryResponse decoded;
  ASSERT_TRUE(DecodeQueryResponse(&cursor, &decoded).ok());
  EXPECT_TRUE(decoded.status.IsResourceExhausted());
  EXPECT_EQ(decoded.status.message(), "admission queue full");
  EXPECT_TRUE(decoded.sequences.empty());
}

TEST(WireTest, StatsResponseRoundTrip) {
  ServerStatsWire stats;
  stats.queries_accepted = 100;
  stats.queries_rejected = 3;
  stats.queries_ok = 90;
  stats.queries_failed = 2;
  stats.queries_cancelled = 4;
  stats.queries_deadline_exceeded = 4;
  stats.stats_requests = 9;
  stats.connections_opened = 12;
  stats.connections_open = 5;
  stats.queue_depth = 2;
  stats.in_flight = 4;
  stats.query_latency.count = 100;
  stats.query_latency.buckets[10] = 60;
  stats.query_latency.buckets[11] = 40;
  stats.stats_latency.count = 9;
  stats.stats_latency.buckets[3] = 9;
  stats.registry = {{"svqd_queries_ok_total", 90.0},
                    {"svqd_query_latency_micros_sum_micros", 123456.75},
                    {"svq_storage_random_accesses_total", 567.0}};

  const std::string payload = PayloadOf(EncodeStatsResponse(stats));
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  ASSERT_TRUE(DecodePayloadHeader(&cursor, &type).ok());
  EXPECT_EQ(type, MessageType::kStatsResponse);
  ServerStatsWire decoded;
  ASSERT_TRUE(DecodeStatsResponse(&cursor, &decoded).ok());
  EXPECT_EQ(decoded, stats);
}

TEST(WireTest, ExplainRequestRoundTrip) {
  ExplainRequest request;
  request.request_id = 91;
  request.statement = "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, "
                      "act) WHERE act='jumping'";
  request.analyze = true;
  request.timeout_ms = 750;
  const std::string payload = PayloadOf(EncodeExplainRequest(request));
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  ASSERT_TRUE(DecodePayloadHeader(&cursor, &type).ok());
  EXPECT_EQ(type, MessageType::kExplainRequest);
  ExplainRequest decoded;
  ASSERT_TRUE(DecodeExplainRequest(&cursor, &decoded).ok());
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.statement, request.statement);
  EXPECT_EQ(decoded.analyze, request.analyze);
  EXPECT_EQ(decoded.timeout_ms, request.timeout_ms);
}

TEST(WireTest, ExplainResponseRoundTrip) {
  ExplainResponse response;
  response.request_id = 92;
  response.status = Status::OK();
  response.text = "Statement: ranked top-3 query (offline)\n  Plan: "
                  "algorithm=RVAQ (cost-based auto selection)\n";
  const std::string payload = PayloadOf(EncodeExplainResponse(response));
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  ASSERT_TRUE(DecodePayloadHeader(&cursor, &type).ok());
  EXPECT_EQ(type, MessageType::kExplainResponse);
  ExplainResponse decoded;
  ASSERT_TRUE(DecodeExplainResponse(&cursor, &decoded).ok());
  EXPECT_EQ(decoded.request_id, response.request_id);
  EXPECT_TRUE(decoded.status.ok());
  EXPECT_EQ(decoded.text, response.text);
}

TEST(WireTest, ExplainErrorResponseCarriesStatus) {
  ExplainResponse response;
  response.request_id = 93;
  response.status = Status::InvalidArgument("parse error");
  const std::string payload = PayloadOf(EncodeExplainResponse(response));
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  ASSERT_TRUE(DecodePayloadHeader(&cursor, &type).ok());
  ExplainResponse decoded;
  ASSERT_TRUE(DecodeExplainResponse(&cursor, &decoded).ok());
  EXPECT_TRUE(decoded.status.IsInvalidArgument());
  EXPECT_EQ(decoded.status.message(), "parse error");
  EXPECT_TRUE(decoded.text.empty());
}

TEST(WireTest, TruncatedExplainPayloadsFailCleanly) {
  ExplainRequest request;
  request.request_id = 1;
  request.statement = "SELECT 1";
  request.analyze = true;
  const std::string payload = PayloadOf(EncodeExplainRequest(request));
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    const std::string prefix = payload.substr(0, cut);
    WireCursor cursor(prefix);
    MessageType type = MessageType::kStatsRequest;
    const Status header = DecodePayloadHeader(&cursor, &type);
    if (!header.ok()) continue;
    ExplainRequest decoded;
    EXPECT_FALSE(DecodeExplainRequest(&cursor, &decoded).ok()) << cut;
  }
}

TEST(WireTest, RejectsWrongVersion) {
  std::string frame = EncodeStatsRequest();
  frame[kFrameHeaderBytes] = static_cast<char>(kWireVersion + 1);
  // The payload must outlive the cursor, which only holds a view into it.
  const std::string payload = PayloadOf(frame);
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  EXPECT_TRUE(DecodePayloadHeader(&cursor, &type).IsUnimplemented());
}

TEST(WireTest, RejectsUnknownMessageType) {
  std::string frame = EncodeStatsRequest();
  frame[kFrameHeaderBytes + 1] = static_cast<char>(200);
  const std::string payload = PayloadOf(frame);
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  EXPECT_TRUE(DecodePayloadHeader(&cursor, &type).IsCorruption());
}

TEST(WireTest, TruncatedPayloadsFailCleanly) {
  QueryRequest request;
  request.request_id = 1;
  request.statement = "SELECT 1";
  request.timeout_ms = 9;
  const std::string payload = PayloadOf(EncodeQueryRequest(request));
  // Every proper prefix must decode to an error, never crash or succeed.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    const std::string prefix = payload.substr(0, cut);
    WireCursor cursor(prefix);
    MessageType type = MessageType::kStatsRequest;
    const Status header = DecodePayloadHeader(&cursor, &type);
    if (!header.ok()) continue;
    QueryRequest decoded;
    EXPECT_FALSE(DecodeQueryRequest(&cursor, &decoded).ok()) << cut;
  }
}

TEST(WireTest, TrailingGarbageRejected) {
  QueryRequest request;
  request.statement = "SELECT 1";
  std::string payload = PayloadOf(EncodeQueryRequest(request));
  payload += "garbage";
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  ASSERT_TRUE(DecodePayloadHeader(&cursor, &type).ok());
  QueryRequest decoded;
  EXPECT_TRUE(DecodeQueryRequest(&cursor, &decoded).IsCorruption());
}

TEST(WireTest, HostileSequenceCountRejected) {
  // A response frame claiming 2^31 sequences in a tiny body must be caught
  // by the count-vs-remaining-bytes check, not allocate gigabytes.
  QueryResponse response;
  response.request_id = 1;
  std::string payload = PayloadOf(EncodeQueryResponse(response));
  // The count field sits after request id (8) + status (1 + 4 + 0) + ranked
  // byte (1) = byte 14 of the body (plus the 2-byte payload header).
  const size_t count_offset = 2 + 14;
  payload[count_offset + 3] = static_cast<char>(0x80);
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  ASSERT_TRUE(DecodePayloadHeader(&cursor, &type).ok());
  QueryResponse decoded;
  EXPECT_TRUE(DecodeQueryResponse(&cursor, &decoded).IsCorruption());
}

TEST(FrameAssemblerTest, ReassemblesByteByByte) {
  QueryRequest request;
  request.request_id = 5;
  request.statement = "SELECT MERGE(clipID) FROM x";
  request.timeout_ms = 1000;
  const std::string frame = EncodeQueryRequest(request);

  FrameAssembler assembler;
  std::string payload;
  bool has_frame = false;
  for (size_t i = 0; i < frame.size(); ++i) {
    ASSERT_TRUE(assembler.Next(&payload, &has_frame).ok());
    EXPECT_FALSE(has_frame) << "frame complete too early at byte " << i;
    assembler.Feed(frame.data() + i, 1);
  }
  ASSERT_TRUE(assembler.Next(&payload, &has_frame).ok());
  ASSERT_TRUE(has_frame);
  EXPECT_EQ(payload, frame.substr(kFrameHeaderBytes));
}

TEST(FrameAssemblerTest, YieldsMultipleFramesFromOneFeed) {
  const std::string a = EncodeStatsRequest();
  QueryRequest request;
  request.statement = "SELECT 1";
  const std::string b = EncodeQueryRequest(request);
  const std::string stream = a + b + a;

  FrameAssembler assembler;
  assembler.Feed(stream.data(), stream.size());
  std::string payload;
  bool has_frame = false;
  int frames = 0;
  while (true) {
    ASSERT_TRUE(assembler.Next(&payload, &has_frame).ok());
    if (!has_frame) break;
    ++frames;
  }
  EXPECT_EQ(frames, 3);
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

TEST(FrameAssemblerTest, OversizedFrameIsAnError) {
  FrameAssembler assembler(/*max_frame_bytes=*/64);
  // A header announcing 1 MiB: rejected from the header alone, before any
  // payload bytes arrive.
  std::string header;
  AppendU32(&header, 1 << 20);
  assembler.Feed(header.data(), header.size());
  std::string payload;
  bool has_frame = false;
  EXPECT_TRUE(assembler.Next(&payload, &has_frame).IsInvalidArgument());
}

TEST(WireTest, EmptyRegistryRoundTrips) {
  ServerStatsWire stats;
  stats.queries_accepted = 1;
  const std::string payload = PayloadOf(EncodeStatsResponse(stats));
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  ASSERT_TRUE(DecodePayloadHeader(&cursor, &type).ok());
  ServerStatsWire decoded;
  ASSERT_TRUE(DecodeStatsResponse(&cursor, &decoded).ok());
  EXPECT_TRUE(decoded.registry.empty());
  EXPECT_EQ(decoded, stats);
}

TEST(WireTest, HostileRegistryCountRejected) {
  // With an empty registry the u32 entry count is the final field of the
  // stats body; inflating it must trip the count-vs-remaining check
  // instead of allocating or overrunning.
  ServerStatsWire stats;
  std::string payload = PayloadOf(EncodeStatsResponse(stats));
  payload[payload.size() - 1] = static_cast<char>(0x80);
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  ASSERT_TRUE(DecodePayloadHeader(&cursor, &type).ok());
  ServerStatsWire decoded;
  EXPECT_TRUE(DecodeStatsResponse(&cursor, &decoded).IsCorruption());
}

// --- Streaming verbs (wire v4): round trips, every-prefix truncation, and
// hostile-field rejection for each frame type.

/// Decodes the payload header and asserts the type matches.
template <typename T>
Status DecodeAs(const std::string& payload, MessageType want,
                Status (*decode)(WireCursor*, T*), T* out) {
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  SVQ_RETURN_NOT_OK(DecodePayloadHeader(&cursor, &type));
  EXPECT_EQ(type, want);
  return decode(&cursor, out);
}

/// Every proper prefix of `payload` must decode to an error — never crash,
/// never succeed on partial data.
template <typename T>
void ExpectAllPrefixesFail(const std::string& payload,
                           Status (*decode)(WireCursor*, T*)) {
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    const std::string prefix = payload.substr(0, cut);
    WireCursor cursor(prefix);
    MessageType type = MessageType::kStatsRequest;
    if (!DecodePayloadHeader(&cursor, &type).ok()) continue;
    T decoded;
    EXPECT_FALSE(decode(&cursor, &decoded).ok()) << cut;
  }
}

TEST(WireTest, SubscribeRequestRoundTrip) {
  SubscribeRequest request;
  request.request_id = 31;
  request.feed = "lobby_camera";
  request.statement = "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, "
                      "obj, act) WHERE act='jumping' AND obj.include('car')";
  request.mode = 0;
  request.queue_capacity = 16;
  request.timeout_ms = 5000;
  const std::string payload = PayloadOf(EncodeSubscribeRequest(request));
  SubscribeRequest decoded;
  ASSERT_TRUE(DecodeAs(payload, MessageType::kSubscribeRequest,
                       DecodeSubscribeRequest, &decoded)
                  .ok());
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.feed, request.feed);
  EXPECT_EQ(decoded.statement, request.statement);
  EXPECT_EQ(decoded.mode, request.mode);
  EXPECT_EQ(decoded.queue_capacity, request.queue_capacity);
  EXPECT_EQ(decoded.timeout_ms, request.timeout_ms);
  ExpectAllPrefixesFail(payload, DecodeSubscribeRequest);
}

TEST(WireTest, SubscribeResponseRoundTrip) {
  SubscribeResponse response;
  response.request_id = 32;
  response.status = Status::OK();
  response.subscription_id = 901;
  response.feed = "lobby_camera";
  const std::string payload = PayloadOf(EncodeSubscribeResponse(response));
  SubscribeResponse decoded;
  ASSERT_TRUE(DecodeAs(payload, MessageType::kSubscribeResponse,
                       DecodeSubscribeResponse, &decoded)
                  .ok());
  EXPECT_EQ(decoded.request_id, response.request_id);
  EXPECT_TRUE(decoded.status.ok());
  EXPECT_EQ(decoded.subscription_id, response.subscription_id);
  EXPECT_EQ(decoded.feed, response.feed);
  ExpectAllPrefixesFail(payload, DecodeSubscribeResponse);
}

TEST(WireTest, SubscribeErrorResponseCarriesStatus) {
  SubscribeResponse response;
  response.request_id = 33;
  response.status = Status::ResourceExhausted("feed subscriber limit");
  const std::string payload = PayloadOf(EncodeSubscribeResponse(response));
  SubscribeResponse decoded;
  ASSERT_TRUE(DecodeAs(payload, MessageType::kSubscribeResponse,
                       DecodeSubscribeResponse, &decoded)
                  .ok());
  EXPECT_TRUE(decoded.status.IsResourceExhausted());
  EXPECT_EQ(decoded.status.message(), "feed subscriber limit");
  EXPECT_EQ(decoded.subscription_id, 0u);
}

TEST(WireTest, FeedRequestRoundTrip) {
  FeedRequest request;
  request.request_id = 41;
  request.feed = "lobby_camera";
  request.clip_count = 128;
  const std::string payload = PayloadOf(EncodeFeedRequest(request));
  FeedRequest decoded;
  ASSERT_TRUE(DecodeAs(payload, MessageType::kFeedRequest, DecodeFeedRequest,
                       &decoded)
                  .ok());
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.feed, request.feed);
  EXPECT_EQ(decoded.clip_count, request.clip_count);
  ExpectAllPrefixesFail(payload, DecodeFeedRequest);
}

TEST(WireTest, FeedResponseRoundTrip) {
  FeedResponse response;
  response.request_id = 42;
  response.status = Status::OK();
  response.clips_dispatched = 128;
  response.next_clip = 640;
  response.feed_closed = true;
  const std::string payload = PayloadOf(EncodeFeedResponse(response));
  FeedResponse decoded;
  ASSERT_TRUE(DecodeAs(payload, MessageType::kFeedResponse,
                       DecodeFeedResponse, &decoded)
                  .ok());
  EXPECT_EQ(decoded.request_id, response.request_id);
  EXPECT_TRUE(decoded.status.ok());
  EXPECT_EQ(decoded.clips_dispatched, response.clips_dispatched);
  EXPECT_EQ(decoded.next_clip, response.next_clip);
  EXPECT_EQ(decoded.feed_closed, response.feed_closed);
  ExpectAllPrefixesFail(payload, DecodeFeedResponse);
}

TEST(WireTest, EventFrameRoundTrip) {
  EventFrame event;
  event.subscription_id = 901;
  event.kind = 2;  // gap
  event.begin = 0;
  event.end = 0;
  event.dropped = 17;
  event.status = Status::ResourceExhausted("subscriber lagging");
  const std::string payload = PayloadOf(EncodeEvent(event));
  EventFrame decoded;
  ASSERT_TRUE(
      DecodeAs(payload, MessageType::kEvent, DecodeEvent, &decoded).ok());
  EXPECT_EQ(decoded.subscription_id, event.subscription_id);
  EXPECT_EQ(decoded.kind, event.kind);
  EXPECT_EQ(decoded.dropped, event.dropped);
  EXPECT_TRUE(decoded.status.IsResourceExhausted());
  ExpectAllPrefixesFail(payload, DecodeEvent);
}

TEST(WireTest, EventFrameRejectsHostileKind) {
  // kind bytes outside [1, 4] are meaningless; a decoder that let them
  // through would hand the client an event it cannot classify.
  EventFrame event;
  event.subscription_id = 1;
  event.kind = 1;
  event.begin = 3;
  event.end = 9;
  std::string payload = PayloadOf(EncodeEvent(event));
  // kind is the byte right after the 2-byte payload header + 8-byte id.
  const size_t kind_offset = 2 + 8;
  for (const uint8_t hostile : {0, 5, 200}) {
    payload[kind_offset] = static_cast<char>(hostile);
    EventFrame decoded;
    EXPECT_TRUE(DecodeAs(payload, MessageType::kEvent, DecodeEvent, &decoded)
                    .IsCorruption())
        << static_cast<int>(hostile);
  }
}

TEST(WireTest, UnsubscribeRoundTrip) {
  UnsubscribeRequest request;
  request.request_id = 51;
  request.subscription_id = 901;
  const std::string request_payload =
      PayloadOf(EncodeUnsubscribeRequest(request));
  UnsubscribeRequest decoded_request;
  ASSERT_TRUE(DecodeAs(request_payload, MessageType::kUnsubscribeRequest,
                       DecodeUnsubscribeRequest, &decoded_request)
                  .ok());
  EXPECT_EQ(decoded_request.request_id, request.request_id);
  EXPECT_EQ(decoded_request.subscription_id, request.subscription_id);
  ExpectAllPrefixesFail(request_payload, DecodeUnsubscribeRequest);

  UnsubscribeResponse response;
  response.request_id = 51;
  response.status = Status::NotFound("no subscription 901");
  const std::string response_payload =
      PayloadOf(EncodeUnsubscribeResponse(response));
  UnsubscribeResponse decoded_response;
  ASSERT_TRUE(DecodeAs(response_payload, MessageType::kUnsubscribeResponse,
                       DecodeUnsubscribeResponse, &decoded_response)
                  .ok());
  EXPECT_EQ(decoded_response.request_id, response.request_id);
  EXPECT_TRUE(decoded_response.status.IsNotFound());
  ExpectAllPrefixesFail(response_payload, DecodeUnsubscribeResponse);
}

TEST(WireTest, StreamFramesRejectTrailingGarbage) {
  FeedRequest feed;
  feed.feed = "f";
  feed.clip_count = 1;
  std::string payload = PayloadOf(EncodeFeedRequest(feed));
  payload += "x";
  WireCursor cursor(payload);
  MessageType type = MessageType::kStatsRequest;
  ASSERT_TRUE(DecodePayloadHeader(&cursor, &type).ok());
  FeedRequest decoded;
  EXPECT_TRUE(DecodeFeedRequest(&cursor, &decoded).IsCorruption());
}

TEST(WireTest, HostileStatusCodeRejected) {
  // A status byte beyond the last defined StatusCode must be treated as
  // corruption, not cast blindly into the enum.
  SubscribeResponse response;
  response.request_id = 1;
  std::string payload = PayloadOf(EncodeSubscribeResponse(response));
  // Status code byte follows the 2-byte header + 8-byte request id.
  payload[2 + 8] = static_cast<char>(250);
  SubscribeResponse decoded;
  EXPECT_TRUE(DecodeAs(payload, MessageType::kSubscribeResponse,
                       DecodeSubscribeResponse, &decoded)
                  .IsCorruption());
}

TEST(WireHistogramTest, PercentilesFromBuckets) {
  WireHistogram histogram;
  histogram.count = 4;
  histogram.buckets[0] = 1;   // < 2 us
  histogram.buckets[1] = 1;   // [2, 4)
  histogram.buckets[9] = 1;   // [512, 1024)
  histogram.buckets[kLatencyBuckets - 1] = 1;  // overflow
  EXPECT_LE(histogram.PercentileMicros(0.5), 4.0);
  EXPECT_GT(histogram.PercentileMicros(0.99), 1e6);
  EXPECT_EQ(WireHistogram().PercentileMicros(0.5), 0.0);
}

}  // namespace
}  // namespace svq::server
