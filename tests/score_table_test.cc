#include "svq/storage/score_table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "svq/common/rng.h"
#include "svq/io/bytes.h"
#include "svq/io/env.h"
#include "svq/io/fault_injection_env.h"

namespace svq::storage {
namespace {

std::vector<ClipScoreRow> SampleRows() {
  return {{5, 0.9}, {2, 0.4}, {9, 0.7}, {1, 0.1}, {7, 0.7}};
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(MemoryScoreTableTest, SortsByScoreDescending) {
  auto table = MemoryScoreTable::Create(SampleRows());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 5);
  EXPECT_EQ((**table).RowAt(0)->clip, 5);
  // Ties break by clip id.
  EXPECT_EQ((**table).RowAt(1)->clip, 7);
  EXPECT_EQ((**table).RowAt(2)->clip, 9);
  EXPECT_EQ((**table).RowAt(4)->clip, 1);
}

TEST(MemoryScoreTableTest, RandomAccess) {
  auto table = MemoryScoreTable::Create(SampleRows());
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(*(*table)->ScoreOf(9), 0.7);
  EXPECT_TRUE((*table)->ScoreOf(42).status().IsNotFound());
  EXPECT_TRUE((*table)->HasClip(2));
  EXPECT_FALSE((*table)->HasClip(3));
}

TEST(MemoryScoreTableTest, RejectsDuplicates) {
  EXPECT_FALSE(MemoryScoreTable::Create({{1, 0.5}, {1, 0.6}}).ok());
}

TEST(MemoryScoreTableTest, RankOutOfRange) {
  auto table = MemoryScoreTable::Create(SampleRows());
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->RowAt(-1).status().IsOutOfRange());
  EXPECT_TRUE((*table)->RowAt(5).status().IsOutOfRange());
}

TEST(DiskScoreTableTest, RoundTripMatchesMemory) {
  const std::string path = TempPath("svq_table_roundtrip.svqt");
  ASSERT_TRUE(DiskScoreTable::Write(path, SampleRows()).ok());
  auto disk = DiskScoreTable::Open(path);
  ASSERT_TRUE(disk.ok());
  auto mem = MemoryScoreTable::Create(SampleRows());
  ASSERT_TRUE(mem.ok());
  ASSERT_EQ((*disk)->NumRows(), (*mem)->NumRows());
  for (int64_t r = 0; r < (*disk)->NumRows(); ++r) {
    auto drow = (*disk)->RowAt(r);
    auto mrow = (*mem)->RowAt(r);
    ASSERT_TRUE(drow.ok());
    ASSERT_TRUE(mrow.ok());
    EXPECT_EQ(*drow, *mrow) << "rank " << r;
  }
  for (const ClipScoreRow& row : SampleRows()) {
    EXPECT_DOUBLE_EQ(*(*disk)->ScoreOf(row.clip), row.score);
  }
  EXPECT_TRUE((*disk)->ScoreOf(1000).status().IsNotFound());
  std::filesystem::remove(path);
}

TEST(DiskScoreTableTest, EmptyTable) {
  const std::string path = TempPath("svq_table_empty.svqt");
  ASSERT_TRUE(DiskScoreTable::Write(path, {}).ok());
  auto disk = DiskScoreTable::Open(path);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->NumRows(), 0);
  EXPECT_TRUE((*disk)->RowAt(0).status().IsOutOfRange());
  std::filesystem::remove(path);
}

TEST(DiskScoreTableTest, MissingFileIsIOError) {
  EXPECT_TRUE(
      DiskScoreTable::Open("/nonexistent/nope.svqt").status().IsIOError());
}

TEST(DiskScoreTableTest, DetectsBadMagic) {
  const std::string path = TempPath("svq_table_badmagic.svqt");
  std::ofstream out(path, std::ios::binary);
  out << "this is not a score table at all, not even close...";
  out.close();
  EXPECT_TRUE(DiskScoreTable::Open(path).status().IsCorruption());
  std::filesystem::remove(path);
}

TEST(DiskScoreTableTest, DetectsTruncation) {
  const std::string path = TempPath("svq_table_trunc.svqt");
  ASSERT_TRUE(DiskScoreTable::Write(path, SampleRows()).ok());
  std::filesystem::resize_file(path, 40);  // header + ~1.5 rows
  EXPECT_FALSE(DiskScoreTable::Open(path).ok());
  std::filesystem::remove(path);
}

TEST(DiskScoreTableTest, HostileRowCountIsCorruptionNotOOM) {
  // A header claiming 2^60 rows over an empty body must be rejected by
  // size validation, not drive a 2^60-element reserve.
  const std::string path = TempPath("svq_table_hostile.svqt");
  std::string bytes;
  io::AppendValue(&bytes, static_cast<uint32_t>(0x53565154));  // magic
  io::AppendValue(&bytes, static_cast<uint32_t>(1));           // v1: no footer
  io::AppendValue(&bytes, static_cast<uint64_t>(1) << 60);     // row count
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto result = DiskScoreTable::Open(path);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
  std::filesystem::remove(path);
}

TEST(DiskScoreTableTest, ReadsLegacyV1Files) {
  // Writers emit v2 (checksum footer); a pre-footer v1 file — version 1 in
  // the header, no footer — must still open.
  const std::string path = TempPath("svq_table_v1.svqt");
  ASSERT_TRUE(DiskScoreTable::Write(path, SampleRows()).ok());
  auto contents = io::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  std::string v1 = contents->substr(0, contents->size() - 24);
  v1[4] = 0x01;  // version field: 2 -> 1 (little-endian low byte)
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(v1.data(), static_cast<std::streamsize>(v1.size()));
  }
  auto disk = DiskScoreTable::Open(path);
  ASSERT_TRUE(disk.ok()) << disk.status();
  EXPECT_EQ((*disk)->NumRows(), 5);
  EXPECT_DOUBLE_EQ(*(*disk)->ScoreOf(5), 0.9);
  std::filesystem::remove(path);
}

TEST(DiskScoreTableTest, EveryHeaderAndFooterBitFlipIsCorruption) {
  const std::string path = TempPath("svq_table_flip.svqt");
  ASSERT_TRUE(DiskScoreTable::Write(path, SampleRows()).ok());
  auto pristine = io::ReadFileToString(path);
  ASSERT_TRUE(pristine.ok());
  ASSERT_GT(pristine->size(), 40u);  // 16-byte header + rows + 24-byte footer
  // Every single-bit flip (plus a full-byte flip) in the header and footer
  // must surface as Corruption: never a successful open, never a crash.
  std::vector<size_t> positions;
  for (size_t i = 0; i < 16; ++i) positions.push_back(i);
  for (size_t i = pristine->size() - 24; i < pristine->size(); ++i) {
    positions.push_back(i);
  }
  for (const size_t i : positions) {
    for (int bit = 0; bit <= 8; ++bit) {
      const char mask =
          bit == 8 ? static_cast<char>(0xFF) : static_cast<char>(1 << bit);
      std::string mutated = *pristine;
      mutated[i] ^= mask;
      {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(mutated.data(),
                  static_cast<std::streamsize>(mutated.size()));
      }
      auto result = DiskScoreTable::Open(path);
      ASSERT_FALSE(result.ok()) << "byte " << i << " bit " << bit;
      EXPECT_TRUE(result.status().IsCorruption())
          << "byte " << i << " bit " << bit << ": " << result.status();
    }
  }
  std::filesystem::remove(path);
}

TEST(DiskScoreTableTest, FailedWriteLeavesNoPartialFile) {
  // Regression: a failed Write must never leave a partial file at the
  // final path — neither on a clean syscall failure nor on a short write.
  const std::string path = TempPath("svq_table_failwrite.svqt");
  std::filesystem::remove(path);
  io::FaultInjectionEnv env;
  env.ShortWrite(/*op_index=*/1, /*bytes=*/10);
  EXPECT_FALSE(DiskScoreTable::Write(path, SampleRows(), &env).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  env.Reset();
  env.FailOp(3);  // the rename
  EXPECT_FALSE(DiskScoreTable::Write(path, SampleRows(), &env).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  // And a failed overwrite keeps the previous complete table readable.
  env.Reset();
  ASSERT_TRUE(DiskScoreTable::Write(path, SampleRows(), &env).ok());
  env.Reset();
  env.ShortWrite(/*op_index=*/1, /*bytes=*/4);
  EXPECT_FALSE(DiskScoreTable::Write(path, {{1, 0.5}}, &env).ok());
  auto disk = DiskScoreTable::Open(path);
  ASSERT_TRUE(disk.ok()) << disk.status();
  EXPECT_EQ((*disk)->NumRows(), 5);
  std::filesystem::remove(path);
}

TEST(DiskScoreTableTest, LargeTableRandomSpotChecks) {
  const std::string path = TempPath("svq_table_large.svqt");
  Rng rng(77);
  std::vector<ClipScoreRow> rows;
  for (int i = 0; i < 20000; ++i) rows.push_back({i, rng.NextDouble()});
  ASSERT_TRUE(DiskScoreTable::Write(path, rows).ok());
  auto disk = DiskScoreTable::Open(path);
  ASSERT_TRUE(disk.ok());
  for (int i = 0; i < 200; ++i) {
    const auto& row = rows[rng.NextUint64(rows.size())];
    EXPECT_DOUBLE_EQ(*(*disk)->ScoreOf(row.clip), row.score);
  }
  // Sorted order holds on disk.
  double prev = 2.0;
  for (int64_t r = 0; r < 100; ++r) {
    auto row = (*disk)->RowAt(r);
    ASSERT_TRUE(row.ok());
    EXPECT_LE(row->score, prev);
    prev = row->score;
  }
  std::filesystem::remove(path);
}

TEST(TableReaderTest, CountsAccessClasses) {
  auto table = MemoryScoreTable::Create(SampleRows());
  ASSERT_TRUE(table.ok());
  StorageMetrics metrics;
  TableReader reader(table->get(), &metrics);
  ASSERT_TRUE(reader.SortedAccess(0).ok());
  ASSERT_TRUE(reader.SortedAccess(1).ok());
  auto last = reader.ReverseAccess(0);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->clip, 1);  // lowest score
  EXPECT_DOUBLE_EQ(reader.RandomAccessOrZero(9), 0.7);
  EXPECT_DOUBLE_EQ(reader.RandomAccessOrZero(1234), 0.0);
  EXPECT_DOUBLE_EQ(reader.SequentialReadOrZero(2), 0.4);
  EXPECT_EQ(metrics.sorted_accesses, 3);
  EXPECT_EQ(metrics.random_accesses, 2);
  EXPECT_EQ(metrics.sequential_reads, 1);
}

TEST(StorageMetricsTest, VirtualTimeUsesCostModel) {
  StorageMetrics metrics;
  metrics.sorted_accesses = 10;
  metrics.random_accesses = 4;
  metrics.sequential_reads = 2;
  DiskCostModel model{1.0, 5.0, 2.0};
  EXPECT_DOUBLE_EQ(metrics.VirtualMs(model), 10.0 + 20.0 + 4.0);
  StorageMetrics other;
  other.random_accesses = 1;
  metrics += other;
  EXPECT_EQ(metrics.random_accesses, 5);
  metrics.Reset();
  EXPECT_EQ(metrics.sorted_accesses, 0);
}

}  // namespace
}  // namespace svq::storage
