#include "svq/query/explain.h"

#include <gtest/gtest.h>

namespace svq::query {
namespace {

constexpr const char* kRankedSql =
    "SELECT MERGE(clipID), RANK(act, obj) "
    "FROM (PROCESS demo PRODUCE clipID, obj USING ObjectTracker, "
    "act USING ActionRecognizer) "
    "WHERE act='jumping' AND obj.include('car', 'human') "
    "ORDER BY RANK(act, obj) LIMIT 3";

constexpr const char* kStreamingSql =
    "SELECT MERGE(clipID) FROM (PROCESS demo PRODUCE clipID, obj, act) "
    "WHERE act='jumping' AND obj.include('car') AND "
    "rel.left_of('human', 'car')";

TEST(StripExplainTest, RecognizesKeyword) {
  EXPECT_TRUE(StripExplain("EXPLAIN SELECT ...").has_value());
  EXPECT_TRUE(StripExplain("  explain SELECT ...").has_value());
  EXPECT_EQ(*StripExplain("Explain X"), " X");
  EXPECT_FALSE(StripExplain("SELECT ...").has_value());
  EXPECT_FALSE(StripExplain("EXPLAINER").has_value());
  EXPECT_FALSE(StripExplain("").has_value());
}

TEST(ExplainTest, RankedPlan) {
  auto plan = ExplainStatementOn(nullptr, kRankedSql);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("ranked top-3 query (offline)"), std::string::npos);
  EXPECT_NE(plan->find("RVAQ"), std::string::npos);
  EXPECT_NE(plan->find("P_a(jumping)"), std::string::npos);
  EXPECT_NE(plan->find("P_o(car)"), std::string::npos);
  EXPECT_NE(plan->find("detector=ObjectTracker"), std::string::npos);
}

TEST(ExplainTest, StreamingPlanWithRelationship) {
  auto plan = ExplainStatementOn(nullptr, kStreamingSql);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("streaming query (online)"), std::string::npos);
  EXPECT_NE(plan->find("SVAQD"), std::string::npos);
  EXPECT_NE(plan->find("left_of(human, car)"), std::string::npos);
}

TEST(ExplainTest, AcceptsExplainPrefix) {
  auto plan =
      ExplainStatementOn(nullptr, std::string("EXPLAIN ") + kStreamingSql);
  ASSERT_TRUE(plan.ok()) << plan.status();
}

TEST(ExplainTest, ReportsRepositoryState) {
  core::VideoQueryEngine engine;
  video::SyntheticVideoSpec spec;
  spec.name = "demo";
  spec.num_frames = 4000;
  spec.actions.push_back({"jumping", 300.0, 900.0});
  auto video = video::SyntheticVideo::Generate(spec);
  ASSERT_TRUE(video.ok());
  ASSERT_TRUE(engine.AddVideo(*video).ok());

  auto not_ingested = ExplainStatementOn(engine.Pin(), kRankedSql);
  ASSERT_TRUE(not_ingested.ok());
  EXPECT_NE(not_ingested->find("not ingested"), std::string::npos);

  ASSERT_TRUE(engine.Ingest("demo").ok());
  auto ingested = ExplainStatementOn(engine.Pin(), kRankedSql);
  ASSERT_TRUE(ingested.ok());
  EXPECT_NE(ingested->find("registered, ingested"), std::string::npos);

  auto unknown = ExplainStatementOn(
      engine.Pin(),
      "SELECT MERGE(clipID) FROM (PROCESS ghost PRODUCE clipID, act) "
      "WHERE act='jumping'");
  ASSERT_TRUE(unknown.ok());
  EXPECT_NE(unknown->find("NOT REGISTERED"), std::string::npos);
}

TEST(ExplainTest, ParseErrorsPropagate) {
  EXPECT_FALSE(ExplainStatementOn(nullptr, "EXPLAIN garbage").ok());
}

// ---------------------------------------------------------------------------
// Cost-based plan rendering on a snapshot with statistics.

class ExplainPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    video::SyntheticVideoSpec spec;
    spec.name = "demo";
    spec.num_frames = 30000;
    spec.seed = 21;
    spec.actions.push_back({"jumping", 350.0, 4200.0});
    for (const char* label : {"car", "human"}) {
      video::SyntheticObjectSpec obj;
      obj.label = label;
      obj.correlate_with_action = "jumping";
      obj.correlation = 0.85;
      obj.coverage = 0.9;
      obj.mean_on_frames = 250.0;
      obj.mean_off_frames = 2200.0;
      spec.objects.push_back(obj);
    }
    auto video = video::SyntheticVideo::Generate(spec);
    ASSERT_TRUE(video.ok());
    ASSERT_TRUE(engine_.AddVideo(*video).ok());
    ASSERT_TRUE(engine_.Ingest("demo").ok());
  }

  core::VideoQueryEngine engine_;
};

TEST_F(ExplainPlanTest, RendersAutoSelectionWithCostsAndOrderedSweep) {
  auto plan = ExplainStatementOn(engine_.Pin(), kRankedSql);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("cost-based auto selection"), std::string::npos);
  EXPECT_NE(plan->find("costs:"), std::string::npos);
  EXPECT_NE(plan->find("RVAQ="), std::string::npos);
  EXPECT_NE(plan->find("Fagin="), std::string::npos);
  EXPECT_NE(plan->find("Pq-Traverse="), std::string::npos);
  EXPECT_NE(plan->find("sweep (most selective first):"), std::string::npos);
  EXPECT_NE(plan->find("density="), std::string::npos);
  EXPECT_NE(plan->find("est rows="), std::string::npos);
  EXPECT_NE(plan->find("candidates: est "), std::string::npos);
  // Every predicate appears as a sweep operator.
  EXPECT_NE(plan->find("intersect P_a(jumping)"), std::string::npos);
  EXPECT_NE(plan->find("intersect P_o(car)"), std::string::npos);
  EXPECT_NE(plan->find("intersect P_o(human)"), std::string::npos);
}

TEST_F(ExplainPlanTest, RendersExplicitOverride) {
  ExplainOptions options;
  options.statement.algorithm = plan::AlgorithmChoice::kFagin;
  auto plan = ExplainStatementOn(engine_.Pin(), kRankedSql, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("algorithm=Fagin (explicit override)"),
            std::string::npos);
  EXPECT_EQ(plan->find("cost-based auto selection"), std::string::npos);
}

TEST_F(ExplainPlanTest, AnalyzeRendersActualsBesideEstimates) {
  auto plan = ExplainStatementOn(engine_.Pin(),
                                 std::string("EXPLAIN ANALYZE ") + kRankedSql);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("[ANALYZE]"), std::string::npos);
  EXPECT_NE(plan->find("actual rows="), std::string::npos);
  EXPECT_NE(plan->find("Analyze:"), std::string::npos);
  EXPECT_NE(plan->find("candidates: actual "), std::string::npos);
  EXPECT_NE(plan->find("result: "), std::string::npos);
}

TEST_F(ExplainPlanTest, PlainExplainDoesNotExecute) {
  auto plan = ExplainStatementOn(engine_.Pin(), kRankedSql);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->find("[ANALYZE]"), std::string::npos);
  EXPECT_EQ(plan->find("actual rows="), std::string::npos);
  EXPECT_EQ(plan->find("Analyze:"), std::string::npos);
}

TEST_F(ExplainPlanTest, AnalyzeOptionEquivalentToKeyword) {
  ExplainOptions options;
  options.analyze = true;
  auto via_option = ExplainStatementOn(engine_.Pin(), kRankedSql, options);
  ASSERT_TRUE(via_option.ok()) << via_option.status();
  EXPECT_NE(via_option->find("Analyze:"), std::string::npos);
}

}  // namespace
}  // namespace svq::query
