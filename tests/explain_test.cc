#include "svq/query/explain.h"

#include <gtest/gtest.h>

namespace svq::query {
namespace {

constexpr const char* kRankedSql =
    "SELECT MERGE(clipID), RANK(act, obj) "
    "FROM (PROCESS demo PRODUCE clipID, obj USING ObjectTracker, "
    "act USING ActionRecognizer) "
    "WHERE act='jumping' AND obj.include('car', 'human') "
    "ORDER BY RANK(act, obj) LIMIT 3";

constexpr const char* kStreamingSql =
    "SELECT MERGE(clipID) FROM (PROCESS demo PRODUCE clipID, obj, act) "
    "WHERE act='jumping' AND obj.include('car') AND "
    "rel.left_of('human', 'car')";

TEST(StripExplainTest, RecognizesKeyword) {
  EXPECT_TRUE(StripExplain("EXPLAIN SELECT ...").has_value());
  EXPECT_TRUE(StripExplain("  explain SELECT ...").has_value());
  EXPECT_EQ(*StripExplain("Explain X"), " X");
  EXPECT_FALSE(StripExplain("SELECT ...").has_value());
  EXPECT_FALSE(StripExplain("EXPLAINER").has_value());
  EXPECT_FALSE(StripExplain("").has_value());
}

TEST(ExplainTest, RankedPlan) {
  auto plan = ExplainStatement(nullptr, kRankedSql);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("ranked top-3 query (offline)"), std::string::npos);
  EXPECT_NE(plan->find("RVAQ"), std::string::npos);
  EXPECT_NE(plan->find("P_a(jumping)"), std::string::npos);
  EXPECT_NE(plan->find("P_o(car)"), std::string::npos);
  EXPECT_NE(plan->find("detector=ObjectTracker"), std::string::npos);
}

TEST(ExplainTest, StreamingPlanWithRelationship) {
  auto plan = ExplainStatement(nullptr, kStreamingSql);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("streaming query (online)"), std::string::npos);
  EXPECT_NE(plan->find("SVAQD"), std::string::npos);
  EXPECT_NE(plan->find("left_of(human, car)"), std::string::npos);
}

TEST(ExplainTest, AcceptsExplainPrefix) {
  auto plan =
      ExplainStatement(nullptr, std::string("EXPLAIN ") + kStreamingSql);
  ASSERT_TRUE(plan.ok()) << plan.status();
}

TEST(ExplainTest, ReportsRepositoryState) {
  core::VideoQueryEngine engine;
  video::SyntheticVideoSpec spec;
  spec.name = "demo";
  spec.num_frames = 4000;
  spec.actions.push_back({"jumping", 300.0, 900.0});
  auto video = video::SyntheticVideo::Generate(spec);
  ASSERT_TRUE(video.ok());
  ASSERT_TRUE(engine.AddVideo(*video).ok());

  auto not_ingested = ExplainStatement(&engine, kRankedSql);
  ASSERT_TRUE(not_ingested.ok());
  EXPECT_NE(not_ingested->find("not ingested"), std::string::npos);

  ASSERT_TRUE(engine.Ingest("demo").ok());
  auto ingested = ExplainStatement(&engine, kRankedSql);
  ASSERT_TRUE(ingested.ok());
  EXPECT_NE(ingested->find("registered, ingested"), std::string::npos);

  auto unknown = ExplainStatement(
      &engine,
      "SELECT MERGE(clipID) FROM (PROCESS ghost PRODUCE clipID, act) "
      "WHERE act='jumping'");
  ASSERT_TRUE(unknown.ok());
  EXPECT_NE(unknown->find("NOT REGISTERED"), std::string::npos);
}

TEST(ExplainTest, ParseErrorsPropagate) {
  EXPECT_FALSE(ExplainStatement(nullptr, "EXPLAIN garbage").ok());
}

}  // namespace
}  // namespace svq::query
