// Plan-equivalence property tests: the planner may reorder the candidate
// sweep and swap algorithms, but the query answer must match the serial
// canonical-order oracle — sweep permutations must produce bit-identical
// candidate sets, and every algorithm choice must rank the same clip
// sequences, with and without the cache, and while ingestion publishes
// new snapshots concurrently (run under -L tsan).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "svq/core/engine.h"
#include "svq/core/rvaq.h"
#include "svq/query/executor.h"

namespace svq::core {
namespace {

std::shared_ptr<const video::SyntheticVideo> DemoVideo(
    const std::string& name = "demo", uint64_t seed = 99) {
  video::SyntheticVideoSpec spec;
  spec.name = name;
  spec.num_frames = 30000;
  spec.seed = seed;
  spec.actions.push_back({"jumping", 350.0, 4200.0});
  for (const char* label : {"car", "human"}) {
    video::SyntheticObjectSpec obj;
    obj.label = label;
    obj.correlate_with_action = "jumping";
    obj.correlation = 0.85;
    obj.coverage = 0.9;
    obj.mean_on_frames = 250.0;
    obj.mean_off_frames = 2200.0;
    spec.objects.push_back(obj);
  }
  auto video = video::SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

Query JumpingCarHuman() {
  Query q;
  q.action = "jumping";
  q.objects = {"car", "human"};
  return q;
}

constexpr const char* kStatement =
    "SELECT MERGE(clipID), RANK(act, obj) "
    "FROM (PROCESS demo PRODUCE clipID, obj USING ObjectTracker, "
    "act USING ActionRecognizer) "
    "WHERE act='jumping' AND obj.include('car', 'human') "
    "ORDER BY RANK(act, obj) LIMIT 4";

/// Clip intervals of the ranked answer, for exact comparison across runs.
/// Score bounds are deliberately excluded: each algorithm certifies its own
/// bounds and accumulates rank sums in a different order, so the doubles can
/// differ in the last ulp even though the ranked sequences are identical
/// (engine_test's cross-algorithm test compares clips only for the same
/// reason).
std::vector<std::pair<int64_t, int64_t>> Flatten(const TopKResult& result) {
  std::vector<std::pair<int64_t, int64_t>> flat;
  for (const RankedSequence& sequence : result.sequences) {
    flat.emplace_back(sequence.clips.begin, sequence.clips.end);
  }
  return flat;
}

TEST(PlanEquivalenceTest, EverySweepPermutationYieldsTheSameCandidates) {
  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo()).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());
  const std::shared_ptr<const IngestedVideo> ingested = engine.Ingested("demo");
  ASSERT_NE(ingested, nullptr);
  const Query query = JumpingCarHuman();

  auto oracle = CandidateSequences(*ingested, query);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  ASSERT_FALSE(oracle->empty());

  std::vector<SweepStep> steps = {{"jumping", /*is_action=*/true},
                                  {"car", /*is_action=*/false},
                                  {"human", /*is_action=*/false}};
  std::sort(steps.begin(), steps.end(),
            [](const SweepStep& a, const SweepStep& b) {
              return a.label < b.label;
            });
  int permutations = 0;
  do {
    auto ordered = CandidateSequencesOrdered(*ingested, query, steps);
    ASSERT_TRUE(ordered.ok()) << ordered.status();
    EXPECT_EQ(*ordered, *oracle);
    ++permutations;
  } while (std::next_permutation(
      steps.begin(), steps.end(),
      [](const SweepStep& a, const SweepStep& b) { return a.label < b.label; }));
  EXPECT_EQ(permutations, 6);
}

TEST(PlanEquivalenceTest, MalformedSweepOrdersAreRejected) {
  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo()).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());
  const std::shared_ptr<const IngestedVideo> ingested = engine.Ingested("demo");
  ASSERT_NE(ingested, nullptr);
  const Query query = JumpingCarHuman();

  // Missing a predicate.
  EXPECT_TRUE(CandidateSequencesOrdered(*ingested, query,
                                        {{"jumping", true}, {"car", false}})
                  .status()
                  .IsInvalidArgument());
  // A predicate not in the query.
  EXPECT_TRUE(CandidateSequencesOrdered(
                  *ingested, query,
                  {{"jumping", true}, {"car", false}, {"dog", false}})
                  .status()
                  .IsInvalidArgument());
  // Duplicated predicate.
  EXPECT_TRUE(CandidateSequencesOrdered(
                  *ingested, query,
                  {{"car", false}, {"car", false}, {"jumping", true}})
                  .status()
                  .IsInvalidArgument());
  // Wrong posting-list family for the label.
  EXPECT_TRUE(CandidateSequencesOrdered(
                  *ingested, query,
                  {{"jumping", false}, {"car", false}, {"human", false}})
                  .status()
                  .IsInvalidArgument());
}

TEST(PlanEquivalenceTest, EveryAlgorithmChoiceMatchesTheOracle) {
  // Cache-enabled engine: each choice runs twice, cold then warm, and both
  // runs must match the uncached serial oracle exactly.
  VideoQueryEngine engine(models::ModelSuite(), OnlineConfig(),
                          IngestOptions(), svq::cache::CacheOptions::Enabled());
  ASSERT_TRUE(engine.AddVideo(DemoVideo()).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());

  query::StatementOptions oracle_options;
  oracle_options.algorithm = plan::AlgorithmChoice::kPqTraverse;
  oracle_options.offline.cache.use_candidate_cache = false;
  oracle_options.offline.cache.use_result_cache = false;
  oracle_options.offline.cache.use_plan_cache = false;
  auto oracle =
      query::ExecuteStatement(&engine, kStatement, {}, oracle_options);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  ASSERT_TRUE(oracle->topk.has_value());
  const auto expected = Flatten(*oracle->topk);
  ASSERT_FALSE(expected.empty());

  const plan::AlgorithmChoice choices[] = {
      plan::AlgorithmChoice::kAuto, plan::AlgorithmChoice::kRvaq,
      plan::AlgorithmChoice::kRvaqNoSkip, plan::AlgorithmChoice::kFagin,
      plan::AlgorithmChoice::kPqTraverse};
  for (const plan::AlgorithmChoice choice : choices) {
    for (int run = 0; run < 2; ++run) {
      query::StatementOptions options;
      options.algorithm = choice;
      auto result = query::ExecuteStatement(&engine, kStatement, {}, options);
      ASSERT_TRUE(result.ok()) << result.status();
      ASSERT_TRUE(result->topk.has_value());
      EXPECT_EQ(Flatten(*result->topk), expected)
          << "choice=" << static_cast<int>(choice) << " run=" << run;
    }
  }
}

TEST(PlanEquivalenceTest, ResultsStableUnderConcurrentIngestChurn) {
  // Readers execute the statement with rotating algorithm choices while a
  // writer ingests new videos (each Publish swaps the snapshot and its
  // cache). Every result must equal the oracle: plans are snapshot-pinned,
  // so churn may only change *where* a plan comes from, never its answer.
  VideoQueryEngine engine(models::ModelSuite(), OnlineConfig(),
                          IngestOptions(), svq::cache::CacheOptions::Enabled());
  ASSERT_TRUE(engine.AddVideo(DemoVideo()).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());

  query::StatementOptions oracle_options;
  oracle_options.algorithm = plan::AlgorithmChoice::kPqTraverse;
  oracle_options.offline.cache.use_candidate_cache = false;
  oracle_options.offline.cache.use_result_cache = false;
  oracle_options.offline.cache.use_plan_cache = false;
  auto oracle =
      query::ExecuteStatement(&engine, kStatement, {}, oracle_options);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  const auto expected = Flatten(*oracle->topk);

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int reader = 0; reader < kReaders; ++reader) {
    readers.emplace_back([&, reader]() {
      const plan::AlgorithmChoice choices[] = {
          plan::AlgorithmChoice::kAuto, plan::AlgorithmChoice::kRvaq,
          plan::AlgorithmChoice::kFagin, plan::AlgorithmChoice::kPqTraverse};
      int iteration = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        query::StatementOptions options;
        options.algorithm = choices[(reader + iteration) % 4];
        auto result =
            query::ExecuteStatement(&engine, kStatement, {}, options);
        if (!result.ok() || !result->topk.has_value() ||
            Flatten(*result->topk) != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        ++iteration;
      }
    });
  }
  // Writer: register + ingest fresh videos, publishing new snapshots (and
  // fresh caches) under the readers' feet.
  for (int churn = 0; churn < 4; ++churn) {
    const std::string name = "churn_" + std::to_string(churn);
    ASSERT_TRUE(engine.AddVideo(DemoVideo(name, 1000 + churn)).ok());
    ASSERT_TRUE(engine.Ingest(name).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace svq::core
