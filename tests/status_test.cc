#include "svq/common/status.h"

#include <gtest/gtest.h>

#include <chrono>

#include "svq/common/execution_context.h"
#include "svq/common/result.h"

namespace svq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kUnavailable);
       ++code) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(code)),
                 "Unknown");
  }
}

TEST(StatusTest, ResourceExhausted) {
  Status s = Status::ResourceExhausted("queue full");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_EQ(s.ToString(), "Resource exhausted: queue full");
}

TEST(StatusTest, Unavailable) {
  // The cluster router's partial-result / down-backend code
  // (docs/cluster.md).
  Status s = Status::Unavailable("partial results (1/2 shards)");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_FALSE(s.IsResourceExhausted());
  EXPECT_EQ(s.ToString(), "Unavailable: partial results (1/2 shards)");
}

TEST(StatusSerializationTest, RoundTripsEveryCode) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kUnavailable);
       ++code) {
    const Status original(static_cast<StatusCode>(code),
                          code == 0 ? "" : "message for code " +
                                               std::to_string(code));
    std::string bytes;
    EncodeStatus(original, &bytes);
    size_t offset = 0;
    Status decoded;
    ASSERT_TRUE(DecodeStatus(bytes, &offset, &decoded).ok());
    EXPECT_EQ(offset, bytes.size());
    EXPECT_EQ(decoded.code(), original.code());
    EXPECT_EQ(decoded.message(), original.message());
  }
}

TEST(StatusSerializationTest, RoundTripsEmbeddedAndBinaryMessage) {
  // Statuses embed mid-buffer in wire frames; the message may hold any
  // byte, including NUL and the frame delimiters themselves.
  std::string bytes = "prefix";
  const size_t start = bytes.size();
  const Status original =
      Status::IOError(std::string("read\0fail\xff\n", 10));
  EncodeStatus(original, &bytes);
  bytes += "suffix";
  size_t offset = start;
  Status decoded;
  ASSERT_TRUE(DecodeStatus(bytes, &offset, &decoded).ok());
  EXPECT_EQ(offset, bytes.size() - 6);
  EXPECT_TRUE(decoded.IsIOError());
  EXPECT_EQ(decoded.message(), original.message());
}

TEST(StatusSerializationTest, RejectsTruncatedAndCorrupt) {
  std::string bytes;
  EncodeStatus(Status::NotFound("missing video"), &bytes);
  // Truncation anywhere — header or message — must fail cleanly.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    size_t offset = 0;
    Status decoded;
    EXPECT_TRUE(DecodeStatus(bytes.substr(0, cut), &offset, &decoded)
                    .IsCorruption())
        << "cut at " << cut;
    EXPECT_EQ(offset, 0u);
  }
  // An out-of-range code byte is rejected, not cast blindly.
  std::string bad_code = bytes;
  bad_code[0] = static_cast<char>(0x7f);
  size_t offset = 0;
  Status decoded;
  EXPECT_TRUE(DecodeStatus(bad_code, &offset, &decoded).IsCorruption());
  // A length that overruns the buffer is rejected.
  std::string bad_length = bytes;
  bad_length[4] = static_cast<char>(0x10);  // message length |= 0x10000000
  offset = 0;
  EXPECT_TRUE(DecodeStatus(bad_length, &offset, &decoded).IsCorruption());
}

TEST(StatusTest, TerminationCodes) {
  Status cancelled = Status::Cancelled("caller gave up");
  EXPECT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.IsCancelled());
  EXPECT_FALSE(cancelled.IsDeadlineExceeded());
  EXPECT_EQ(cancelled.ToString(), "Cancelled: caller gave up");

  Status expired = Status::DeadlineExceeded("too slow");
  EXPECT_TRUE(expired.IsDeadlineExceeded());
  EXPECT_FALSE(expired.IsCancelled());
  EXPECT_EQ(expired.ToString(), "Deadline exceeded: too slow");
}

TEST(ExecutionContextTest, DefaultIsUnlimited) {
  ExecutionContext context;
  EXPECT_FALSE(context.limited());
  EXPECT_FALSE(context.has_deadline());
  EXPECT_TRUE(context.Check().ok());
}

TEST(ExecutionContextTest, DeadlineExpires) {
  auto past = ExecutionContext::WithDeadline(
      ExecutionContext::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(past.limited());
  EXPECT_TRUE(past.Check().IsDeadlineExceeded());

  auto future = ExecutionContext::WithTimeout(std::chrono::hours(1));
  EXPECT_TRUE(future.limited());
  EXPECT_TRUE(future.Check().ok());
}

TEST(ExecutionContextTest, CancellationFires) {
  CancellationSource source;
  ExecutionContext context;
  context.set_cancellation(source.token());
  EXPECT_TRUE(context.limited());
  EXPECT_TRUE(context.Check().ok());
  source.Cancel();
  EXPECT_TRUE(context.Check().IsCancelled());
  // Cancellation wins over an expired deadline.
  context.set_deadline(ExecutionContext::Clock::now() -
                       std::chrono::seconds(1));
  EXPECT_TRUE(context.Check().IsCancelled());
}

TEST(ExecutionContextTest, DetachedTokenNeverFires) {
  CancellationToken token;
  EXPECT_FALSE(token.CanBeCancelled());
  EXPECT_FALSE(token.cancelled());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chained(int x) {
  SVQ_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chained(3).ok());
  EXPECT_TRUE(Chained(-1).IsOutOfRange());
}

Result<int> HalfOfEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOfMultipleOf4(int x) {
  SVQ_ASSIGN_OR_RETURN(const int half, HalfOfEven(x));
  return HalfOfEven(half);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = HalfOfEven(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = HalfOfEven(3);
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(*QuarterOfMultipleOf4(12), 3);
  EXPECT_FALSE(QuarterOfMultipleOf4(6).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace svq
