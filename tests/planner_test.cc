// Unit tests of the cost-based planner: sweep ordering, cardinality
// estimation under the independence assumption, algorithm pricing and
// selection, and PlanQuery end to end against a pinned snapshot.

#include "svq/plan/planner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "svq/core/engine.h"
#include "svq/plan/cost_model.h"
#include "svq/query/executor.h"

namespace svq::plan {
namespace {

PredicateLeaf Leaf(const std::string& label, bool is_action, double density,
                   int64_t posting_intervals = 100, int64_t table_rows = 500) {
  PredicateLeaf leaf;
  leaf.label = label;
  leaf.is_action = is_action;
  leaf.stats_known = true;
  leaf.stats.density = density;
  leaf.stats.posting_intervals = posting_intervals;
  leaf.stats.table_rows = table_rows;
  return leaf;
}

TEST(CostModelTest, OrderSweepMostSelectiveFirst) {
  std::vector<PredicateLeaf> leaves = {Leaf("car", false, 0.5),
                                       Leaf("jumping", true, 0.1),
                                       Leaf("dog", false, 0.3)};
  const std::vector<PlanOperator> sweep = OrderSweep(leaves);
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep[0].step.label, "jumping");
  EXPECT_TRUE(sweep[0].step.is_action);
  EXPECT_EQ(sweep[1].step.label, "dog");
  EXPECT_EQ(sweep[2].step.label, "car");
}

TEST(CostModelTest, OrderSweepUnknownStatsSortLast) {
  PredicateLeaf unknown;
  unknown.label = "aardvark";  // alphabetically first, still sorts last
  std::vector<PredicateLeaf> leaves = {unknown, Leaf("car", false, 0.9)};
  const std::vector<PlanOperator> sweep = OrderSweep(leaves);
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_EQ(sweep[0].step.label, "car");
  EXPECT_EQ(sweep[1].step.label, "aardvark");
  EXPECT_FALSE(sweep[1].stats_known);
}

TEST(CostModelTest, OrderSweepTiesBreakOnLabel) {
  std::vector<PredicateLeaf> leaves = {Leaf("dog", false, 0.2),
                                       Leaf("cat", false, 0.2)};
  const std::vector<PlanOperator> sweep = OrderSweep(leaves);
  EXPECT_EQ(sweep[0].step.label, "cat");
  EXPECT_EQ(sweep[1].step.label, "dog");
}

TEST(CostModelTest, CardinalitiesMultiplyDensities) {
  LogicalPlan logical;
  logical.video_clips = 1000;
  logical.intersection = {Leaf("jumping", true, 0.1, /*posting_intervals=*/20),
                          Leaf("car", false, 0.5, /*posting_intervals=*/80)};
  std::vector<PlanOperator> sweep = OrderSweep(logical.intersection);
  double clips = 0.0, sequences = 0.0;
  EstimateCardinalities(logical, &sweep, &clips, &sequences);
  // Most selective first: 1000 * 0.1 = 100, then * 0.5 = 50.
  EXPECT_DOUBLE_EQ(sweep[0].estimated_rows, 100.0);
  EXPECT_DOUBLE_EQ(sweep[1].estimated_rows, 50.0);
  EXPECT_DOUBLE_EQ(clips, 50.0);
  // Sparsest list (20 intervals) scaled by the other leaf's density.
  EXPECT_DOUBLE_EQ(sequences, 10.0);
}

TEST(CostModelTest, ZeroDensityLeafZeroesTheEstimate) {
  LogicalPlan logical;
  logical.video_clips = 1000;
  logical.intersection = {Leaf("jumping", true, 0.2),
                          Leaf("ghost", false, 0.0, /*posting_intervals=*/0)};
  std::vector<PlanOperator> sweep = OrderSweep(logical.intersection);
  double clips = -2.0, sequences = -2.0;
  EstimateCardinalities(logical, &sweep, &clips, &sequences);
  EXPECT_DOUBLE_EQ(clips, 0.0);
  EXPECT_DOUBLE_EQ(sequences, 0.0);
}

TEST(CostModelTest, NoStatisticsMeansUnknownEstimates) {
  LogicalPlan logical;
  logical.video_clips = -1;  // not ingested
  PredicateLeaf leaf;
  leaf.label = "car";
  logical.intersection = {leaf};
  std::vector<PlanOperator> sweep = OrderSweep(logical.intersection);
  double clips = 0.0, sequences = 0.0;
  EstimateCardinalities(logical, &sweep, &clips, &sequences);
  EXPECT_DOUBLE_EQ(clips, -1.0);
  EXPECT_DOUBLE_EQ(sequences, -1.0);
  EXPECT_DOUBLE_EQ(sweep[0].estimated_rows, -1.0);
}

TEST(CostModelTest, SmallCandidateSetPrefersPqTraverse) {
  LogicalPlan logical;
  logical.ranked = true;
  logical.k = 5;
  logical.video_clips = 1000;
  logical.intersection = {Leaf("jumping", true, 0.01),
                          Leaf("car", false, 0.2)};
  const storage::DiskCostModel disk;
  // Two surviving clips in one sequence: exhaustive reads beat sorted
  // cursor exploration.
  const std::vector<AlgorithmCost> costs =
      EstimateAlgorithmCosts(logical, /*estimated_clips=*/2.0,
                             /*estimated_sequences=*/1.0, disk);
  ASSERT_EQ(costs.size(), 3u);
  EXPECT_EQ(ChooseAlgorithm(costs), core::OfflineAlgorithm::kPqTraverse);
}

TEST(CostModelTest, LargeCandidateSetSmallKPrefersRvaq) {
  LogicalPlan logical;
  logical.ranked = true;
  logical.k = 3;
  logical.video_clips = 10000;
  logical.intersection = {
      Leaf("jumping", true, 0.3, /*posting_intervals=*/400, /*rows=*/5000),
      Leaf("car", false, 0.4, /*posting_intervals=*/400, /*rows=*/5000)};
  const storage::DiskCostModel disk;
  const std::vector<AlgorithmCost> costs =
      EstimateAlgorithmCosts(logical, /*estimated_clips=*/1000.0,
                             /*estimated_sequences=*/100.0, disk);
  ASSERT_EQ(costs.size(), 3u);
  EXPECT_EQ(ChooseAlgorithm(costs), core::OfflineAlgorithm::kRvaq);
}

TEST(CostModelTest, ChooseAlgorithmDefaultsToRvaq) {
  EXPECT_EQ(ChooseAlgorithm({}), core::OfflineAlgorithm::kRvaq);
}

TEST(CostModelTest, RvaqWinsCostTies) {
  std::vector<AlgorithmCost> costs = {
      {core::OfflineAlgorithm::kPqTraverse, 10.0},
      {core::OfflineAlgorithm::kRvaq, 10.0}};
  EXPECT_EQ(ChooseAlgorithm(costs), core::OfflineAlgorithm::kRvaq);
  std::reverse(costs.begin(), costs.end());
  EXPECT_EQ(ChooseAlgorithm(costs), core::OfflineAlgorithm::kRvaq);
}

// ---------------------------------------------------------------------------
// PlanQuery against a real snapshot.

std::shared_ptr<const video::SyntheticVideo> DemoVideo() {
  video::SyntheticVideoSpec spec;
  spec.name = "demo";
  spec.num_frames = 30000;
  spec.seed = 7;
  spec.actions.push_back({"jumping", 350.0, 4200.0});
  for (const char* label : {"car", "human"}) {
    video::SyntheticObjectSpec obj;
    obj.label = label;
    obj.correlate_with_action = "jumping";
    obj.correlation = 0.8;
    obj.coverage = 0.9;
    obj.mean_on_frames = 250.0;
    obj.mean_off_frames = 2200.0;
    spec.objects.push_back(obj);
  }
  auto video = video::SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

core::Query JumpingCarHuman() {
  core::Query q;
  q.action = "jumping";
  q.objects = {"car", "human"};
  return q;
}

TEST(PlannerTest, AutoSelectionOnIngestedVideo) {
  core::VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo()).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());

  auto plan = PlanQuery(engine.Pin(), JumpingCarHuman(), "demo",
                        /*ranked=*/true, /*k=*/3, AlgorithmChoice::kAuto, {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE((*plan)->auto_selected);
  EXPECT_NE((*plan)->algorithm, core::OfflineAlgorithm::kRvaqNoSkip);
  EXPECT_EQ((*plan)->costs.size(), 3u);
  ASSERT_EQ((*plan)->sweep.size(), 3u);
  // Most-selective-first: densities ascend along the sweep.
  for (size_t i = 1; i < (*plan)->sweep.size(); ++i) {
    EXPECT_TRUE((*plan)->sweep[i].stats_known);
    EXPECT_LE((*plan)->sweep[i - 1].selectivity,
              (*plan)->sweep[i].selectivity);
  }
  // Estimated rows shrink monotonically along the intersection.
  for (size_t i = 1; i < (*plan)->sweep.size(); ++i) {
    EXPECT_GE((*plan)->sweep[i - 1].estimated_rows,
              (*plan)->sweep[i].estimated_rows);
  }
  EXPECT_GE((*plan)->estimated_candidate_clips, 0.0);
  EXPECT_NE((*plan)->fingerprint, 0u);
}

TEST(PlannerTest, ExplicitOverrideIsHonored) {
  core::VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo()).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());

  auto plan = PlanQuery(engine.Pin(), JumpingCarHuman(), "demo",
                        /*ranked=*/true, /*k=*/3, AlgorithmChoice::kFagin, {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE((*plan)->auto_selected);
  EXPECT_EQ((*plan)->algorithm, core::OfflineAlgorithm::kFagin);
}

TEST(PlannerTest, UnregisteredVideoStillPlans) {
  auto plan = PlanQuery(core::SnapshotPtr(), JumpingCarHuman(), "ghost",
                        /*ranked=*/true, /*k=*/3, AlgorithmChoice::kAuto, {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE((*plan)->logical.video_registered);
  EXPECT_EQ((*plan)->estimated_candidate_clips, -1.0);
  // No statistics: the default algorithm is the paper's RVAQ.
  EXPECT_EQ((*plan)->algorithm, core::OfflineAlgorithm::kRvaq);
}

TEST(PlannerTest, PlanCacheServesRepeatedStatements) {
  core::VideoQueryEngine engine(models::ModelSuite(), core::OnlineConfig(),
                                core::IngestOptions(),
                                svq::cache::CacheOptions::Enabled());
  ASSERT_TRUE(engine.AddVideo(DemoVideo()).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());
  const core::SnapshotPtr snapshot = engine.Pin();

  auto first = PlanQuery(snapshot, JumpingCarHuman(), "demo", true, 3,
                         AlgorithmChoice::kAuto, {});
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = PlanQuery(snapshot, JumpingCarHuman(), "demo", true, 3,
                          AlgorithmChoice::kAuto, {});
  ASSERT_TRUE(second.ok()) << second.status();
  // Same fingerprint, same snapshot: the second plan is the cached object.
  EXPECT_EQ(first->get(), second->get());

  // A different k is a different fingerprint.
  auto third = PlanQuery(snapshot, JumpingCarHuman(), "demo", true, 4,
                         AlgorithmChoice::kAuto, {});
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_NE(first->get(), third->get());
}

TEST(PlannerTest, ExecutorThreadsThePlanThrough) {
  core::VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(DemoVideo()).ok());
  ASSERT_TRUE(engine.Ingest("demo").ok());
  auto result = query::ExecuteStatement(
      &engine,
      "SELECT MERGE(clipID), RANK(act, obj) "
      "FROM (PROCESS demo PRODUCE clipID, obj USING ObjectTracker, "
      "act USING ActionRecognizer) "
      "WHERE act='jumping' AND obj.include('car', 'human') "
      "ORDER BY RANK(act, obj) LIMIT 3");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->plan, nullptr);
  EXPECT_TRUE(result->plan->auto_selected);
  EXPECT_EQ(result->plan->sweep.size(), 3u);
  ASSERT_TRUE(result->topk.has_value());
  // The run recorded actual candidate sizes for estimate-error tracking.
  EXPECT_GT(result->topk->stats.candidate_sequences, 0);
}

}  // namespace
}  // namespace svq::plan
