#include "svq/observability/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "svq/observability/trace.h"

namespace svq::observability {
namespace {

TEST(MetricsRegistryTest, CountersAccumulateAndDedupe) {
  MetricsRegistry registry;
  Counter* a = registry.counter("svqd_queries_ok_total", "ok queries");
  Counter* again = registry.counter("svqd_queries_ok_total");
  EXPECT_EQ(a, again);  // find-or-create: one instance per name
  a->Increment();
  again->Increment(4);
  a->Add(0.5);
  EXPECT_DOUBLE_EQ(a->value(), 5.5);
}

TEST(MetricsRegistryTest, GaugesSetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.gauge("svqd_queue_depth");
  gauge->Set(7.0);
  gauge->Add(-2.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 5.0);
}

TEST(MetricsRegistryTest, SanitizesNamesToPrometheusCharset) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("svq.queries-ok total");
  EXPECT_EQ(counter->name(), "svq_queries_ok_total");
  // The sanitized and the literal spelling are the same metric.
  EXPECT_EQ(counter, registry.counter("svq_queries_ok_total"));
  EXPECT_EQ(registry.counter("9lives")->name(), "_9lives");
  EXPECT_EQ(registry.counter("")->name(), "_");
}

TEST(HistogramTest, BucketsPowersOfTwo) {
  MetricsRegistry registry;
  Histogram* histogram = registry.histogram("latency_micros");
  histogram->Record(0.5);     // bucket 0 (sub-microsecond)
  histogram->Record(3.0);     // bucket 1: [2, 4)
  histogram->Record(1000.0);  // bucket 9: [512, 1024)
  histogram->Record(1e12);    // clamped into the overflow bucket
  const HistogramSnapshot snapshot = histogram->Snapshot();
  EXPECT_EQ(snapshot.count, 4);
  EXPECT_EQ(snapshot.buckets[0], 1);
  EXPECT_EQ(snapshot.buckets[1], 1);
  EXPECT_EQ(snapshot.buckets[9], 1);
  EXPECT_EQ(snapshot.buckets[kHistogramBuckets - 1], 1);
  EXPECT_DOUBLE_EQ(snapshot.sum_micros, 0.5 + 3.0 + 1000.0 + 1e12);
  EXPECT_LE(snapshot.PercentileMicros(0.5), 4.0);
  EXPECT_GT(snapshot.PercentileMicros(0.99), 1e6);
}

TEST(HistogramTest, ClampsNonFiniteAndNegativeInputs) {
  // The ISSUE-flagged bug: feeding log2 a NaN/negative/infinite duration
  // (clock adjustments, subtraction-order bugs upstream) must not be UB —
  // garbage lands in bucket 0, +inf in the overflow bucket, and neither
  // corrupts the sum.
  MetricsRegistry registry;
  Histogram* histogram = registry.histogram("latency_micros");
  histogram->Record(std::numeric_limits<double>::quiet_NaN());
  histogram->Record(-5.0);
  histogram->Record(-std::numeric_limits<double>::infinity());
  histogram->Record(std::numeric_limits<double>::infinity());
  histogram->Record(0.0);
  const HistogramSnapshot snapshot = histogram->Snapshot();
  EXPECT_EQ(snapshot.count, 5);
  EXPECT_EQ(snapshot.buckets[0], 4);  // NaN, both negatives, zero
  EXPECT_EQ(snapshot.buckets[kHistogramBuckets - 1], 1);  // +inf
  EXPECT_DOUBLE_EQ(snapshot.sum_micros, 0.0);  // none contribute
  EXPECT_TRUE(std::isfinite(snapshot.PercentileMicros(0.99)));
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("zeta_total")->Increment(2);
  registry.counter("alpha_total")->Increment(1);
  registry.gauge("mid_gauge")->Set(3.0);
  registry.histogram("lat_micros")->Record(100.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha_total");
  EXPECT_EQ(snapshot.counters[1].name, "zeta_total");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1);
}

TEST(MetricsRegistryTest, FlattenExposesHistogramCountAndSum) {
  MetricsRegistry registry;
  registry.counter("c_total")->Increment(3);
  registry.gauge("g")->Set(1.5);
  registry.histogram("h_micros")->Record(10.0);
  registry.histogram("h_micros")->Record(20.0);
  const auto flat = registry.Snapshot().Flatten();
  ASSERT_EQ(flat.size(), 4u);  // counter + gauge + hist count + hist sum
  EXPECT_EQ(flat[0].first, "c_total");
  EXPECT_DOUBLE_EQ(flat[0].second, 3.0);
  EXPECT_EQ(flat[1].first, "g");
  EXPECT_EQ(flat[2].first, "h_micros_count");
  EXPECT_DOUBLE_EQ(flat[2].second, 2.0);
  EXPECT_EQ(flat[3].first, "h_micros_sum_micros");
  EXPECT_DOUBLE_EQ(flat[3].second, 30.0);
}

TEST(MetricsRegistryTest, PrometheusDumpGolden) {
  // Full-format golden: # HELP/# TYPE comments, cumulative le buckets,
  // +Inf bucket, _sum/_count series. Deterministic because the registry
  // stores metrics sorted by name.
  MetricsRegistry registry;
  registry.counter("svqd_queries_ok_total", "Queries OK")->Increment(42);
  registry.gauge("svqd_in_flight", "Executing now")->Set(3.0);
  Histogram* histogram =
      registry.histogram("svqd_query_latency_micros", "Query latency");
  histogram->Record(3.0);     // bucket 1 -> le="4"
  histogram->Record(1000.0);  // bucket 9 -> le="1024"

  std::ostringstream out;
  registry.DumpPrometheus(out);
  const std::string text = out.str();

  const std::string expected_prefix =
      "# HELP svqd_queries_ok_total Queries OK\n"
      "# TYPE svqd_queries_ok_total counter\n"
      "svqd_queries_ok_total 42\n"
      "# HELP svqd_in_flight Executing now\n"
      "# TYPE svqd_in_flight gauge\n"
      "svqd_in_flight 3\n"
      "# HELP svqd_query_latency_micros Query latency\n"
      "# TYPE svqd_query_latency_micros histogram\n"
      "svqd_query_latency_micros_bucket{le=\"2\"} 0\n"
      "svqd_query_latency_micros_bucket{le=\"4\"} 1\n";
  ASSERT_EQ(text.substr(0, expected_prefix.size()), expected_prefix);
  // Cumulative counts: every bucket from le="1024" on reports 2.
  EXPECT_NE(text.find("svqd_query_latency_micros_bucket{le=\"1024\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("svqd_query_latency_micros_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("svqd_query_latency_micros_sum 1003\n"),
            std::string::npos);
  EXPECT_NE(text.find("svqd_query_latency_micros_count 2\n"),
            std::string::npos);
  // Parseability smoke: every non-comment line is "name[{labels}] value".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    char* end = nullptr;
    std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << line;
  }
}

TEST(MetricsRegistryTest, ConcurrentRecordAndSnapshot) {
  // Hammer one registry from recorder threads while a reader snapshots and
  // dumps continuously; run under the tsan ctest label to prove the
  // relaxed-atomic recording discipline is race-free.
  MetricsRegistry registry;
  Counter* counter = registry.counter("events_total");
  Gauge* gauge = registry.gauge("level");
  Histogram* histogram = registry.histogram("lat_micros");
  constexpr int kThreads = 4;
  constexpr int kIterations = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      std::ostringstream sink;
      snapshot.DumpPrometheus(sink);
      // Registration may race recording too: a new metric mid-flight.
      registry.counter("reader_probe_total")->Increment();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t]() {
      for (int i = 0; i < kIterations; ++i) {
        counter->Increment();
        gauge->Set(static_cast<double>(t));
        histogram->Record(static_cast<double>(i % 4096));
        registry.counter("writer_" + std::to_string(t) + "_total")
            ->Increment();
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.counters[0].value, kThreads * kIterations);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, kThreads * kIterations);
}

TEST(QueryTraceTest, NestsSpansParentChild) {
  QueryTrace trace;
  {
    TraceSpan parse(&trace, "parse");
  }
  {
    TraceSpan execute(&trace, "execute");
    { TraceSpan rvaq(&trace, "rvaq"); }
  }
  const auto& spans = trace.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "parse");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "execute");
  EXPECT_EQ(spans[1].parent, -1);
  EXPECT_EQ(spans[2].name, "rvaq");
  EXPECT_EQ(spans[2].parent, 1);
  EXPECT_EQ(spans[2].depth, 1);
  for (const auto& span : spans) EXPECT_GE(span.duration_ns, 0);
  // The child is contained in the parent.
  EXPECT_GE(spans[2].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[2].start_ns + spans[2].duration_ns,
            spans[1].start_ns + spans[1].duration_ns);
  EXPECT_EQ(trace.CountOf("execute"), 1);
  EXPECT_GE(trace.TotalMs("execute"), trace.TotalMs("rvaq"));
}

TEST(QueryTraceTest, AggregateSpansFoldObservations) {
  QueryTrace trace;
  TraceSpan execute(&trace, "execute");
  for (int i = 0; i < 100; ++i) {
    trace.RecordAggregate("tbclip.next", 1000);  // 1 us each
  }
  EXPECT_EQ(trace.CountOf("tbclip.next"), 100);
  EXPECT_NEAR(trace.TotalMs("tbclip.next"), 0.1, 1e-9);
  // 100 observations folded into ONE span, nested under "execute".
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[1].parent, 0);
}

TEST(QueryTraceTest, NullTraceHelpersAreNoOps) {
  // Instrumented code threads a possibly-null trace unconditionally.
  TraceSpan span(nullptr, "parse");
  AggregateTimer timer(nullptr, "tbclip.next");
  SUCCEED();
}

TEST(QueryTraceTest, EndClosesAbandonedChildren) {
  QueryTrace trace;
  const int outer = trace.Begin("outer");
  trace.Begin("inner");  // never explicitly ended
  trace.End(outer);
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_GE(trace.spans()[0].duration_ns, 0);
  EXPECT_GE(trace.spans()[1].duration_ns, 0);  // closed with its parent
}

TEST(QueryTraceTest, FormatRendersIndentedTree) {
  QueryTrace trace;
  {
    TraceSpan execute(&trace, "execute");
    trace.RecordAggregate("tbclip.next", 2000000, 3);
  }
  const std::string text = trace.Format();
  EXPECT_NE(text.find("execute"), std::string::npos);
  EXPECT_NE(text.find("  tbclip.next"), std::string::npos);
  EXPECT_NE(text.find("(x3)"), std::string::npos);
}

}  // namespace
}  // namespace svq::observability
