#include "svq/core/repository.h"

#include <gtest/gtest.h>

#include "svq/core/baselines.h"
#include "svq/core/engine.h"
#include "svq/models/synthetic_models.h"

namespace svq::core {
namespace {

using video::SyntheticVideo;
using video::SyntheticVideoSpec;

std::shared_ptr<const SyntheticVideo> MakeVideo(const std::string& name,
                                                uint64_t seed) {
  SyntheticVideoSpec spec;
  spec.name = name;
  spec.num_frames = 40000;
  spec.seed = seed;
  spec.actions.push_back({"smoking", 350.0, 4500.0});
  video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.9;
  cup.coverage = 0.9;
  cup.mean_on_frames = 250.0;
  cup.mean_off_frames = 2600.0;
  spec.objects.push_back(cup);
  auto video = SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

Result<IngestedVideo> Ingest(
    const std::shared_ptr<const SyntheticVideo>& video, video::VideoId id) {
  models::ModelSet models =
      models::MakeModelSet(video, models::MaskRcnnI3dSuite(), {}, {});
  return IngestVideo(video, id, models.tracker.get(),
                     models.recognizer.get(), IngestOptions());
}

Query SmokingCup() {
  Query q;
  q.action = "smoking";
  q.objects = {"cup"};
  return q;
}

TEST(RepositoryTest, GlobalTopKMatchesPerVideoMerge) {
  auto ingested_a = Ingest(MakeVideo("movie_a", 5), 0);
  auto ingested_b = Ingest(MakeVideo("movie_b", 6), 1);
  ASSERT_TRUE(ingested_a.ok());
  ASSERT_TRUE(ingested_b.ok());

  AdditiveScoring scoring;
  const int k = 4;
  auto repo = RunRepositoryTopK({&*ingested_a, &*ingested_b}, SmokingCup(),
                                k, scoring, OfflineOptions());
  ASSERT_TRUE(repo.ok()) << repo.status();
  ASSERT_LE(repo->sequences.size(), static_cast<size_t>(k));

  // Oracle: exhaustive per-video scoring, merged.
  struct Oracle {
    std::string video;
    video::Interval clips;
    double score;
  };
  std::vector<Oracle> oracle;
  const storage::DiskCostModel cost;
  for (const auto* ingested : {&*ingested_a, &*ingested_b}) {
    auto all = RunPqTraverse(*ingested, SmokingCup(), 1000, scoring, cost);
    ASSERT_TRUE(all.ok());
    for (const auto& seq : all->sequences) {
      oracle.push_back({ingested->name, seq.clips, seq.upper_bound});
    }
  }
  std::sort(oracle.begin(), oracle.end(),
            [](const Oracle& a, const Oracle& b) { return a.score > b.score; });
  ASSERT_GE(oracle.size(), repo->sequences.size());
  for (size_t i = 0; i < repo->sequences.size(); ++i) {
    EXPECT_EQ(repo->sequences[i].video_name, oracle[i].video) << "rank " << i;
    EXPECT_EQ(repo->sequences[i].sequence.clips, oracle[i].clips)
        << "rank " << i;
    EXPECT_NEAR(repo->sequences[i].sequence.upper_bound, oracle[i].score,
                1e-6);
  }
}

TEST(RepositoryTest, ResultsAttributedToVideos) {
  auto ingested_a = Ingest(MakeVideo("movie_a", 5), 7);
  ASSERT_TRUE(ingested_a.ok());
  AdditiveScoring scoring;
  auto repo = RunRepositoryTopK({&*ingested_a}, SmokingCup(), 2, scoring,
                                OfflineOptions());
  ASSERT_TRUE(repo.ok());
  for (const RepositoryEntry& entry : repo->sequences) {
    EXPECT_EQ(entry.video_id, 7);
    EXPECT_EQ(entry.video_name, "movie_a");
  }
  EXPECT_GT(repo->stats.storage.sorted_accesses, 0);
}

TEST(RepositoryTest, ValidatesInputs) {
  AdditiveScoring scoring;
  EXPECT_FALSE(
      RunRepositoryTopK({nullptr}, SmokingCup(), 2, scoring, OfflineOptions())
          .ok());
  auto ingested = Ingest(MakeVideo("movie_a", 5), 0);
  ASSERT_TRUE(ingested.ok());
  EXPECT_FALSE(RunRepositoryTopK({&*ingested}, SmokingCup(), 0, scoring,
                                 OfflineOptions())
                   .ok());
}

TEST(RepositoryTest, EngineFacadeEndToEnd) {
  VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(MakeVideo("movie_a", 5)).ok());
  ASSERT_TRUE(engine.AddVideo(MakeVideo("movie_b", 6)).ok());
  // Nothing ingested yet.
  EXPECT_EQ(engine.ExecuteTopKAll(SmokingCup(), 3).status().code(),
            StatusCode::kFailedPrecondition);
  // Parallel ingestion of the whole repository.
  ASSERT_TRUE(engine.IngestAll(/*parallelism=*/2).ok());
  EXPECT_NE(engine.Ingested("movie_a"), nullptr);
  EXPECT_NE(engine.Ingested("movie_b"), nullptr);
  // Idempotent: nothing left to ingest.
  EXPECT_TRUE(engine.IngestAll().ok());
  auto repo = engine.ExecuteTopKAll(SmokingCup(), 3);
  ASSERT_TRUE(repo.ok()) << repo.status();
  EXPECT_LE(repo->sequences.size(), 3u);
  EXPECT_FALSE(repo->sequences.empty());
  // Scores come back ranked.
  for (size_t i = 1; i < repo->sequences.size(); ++i) {
    EXPECT_GE(repo->sequences[i - 1].sequence.lower_bound,
              repo->sequences[i].sequence.lower_bound - 1e-9);
  }
}

TEST(RepositoryTest, ParallelIngestionMatchesSerial) {
  // The models are deterministic per video, so concurrent ingestion must
  // produce byte-identical query results.
  VideoQueryEngine serial;
  ASSERT_TRUE(serial.AddVideo(MakeVideo("movie_a", 5)).ok());
  ASSERT_TRUE(serial.AddVideo(MakeVideo("movie_b", 6)).ok());
  ASSERT_TRUE(serial.Ingest("movie_a").ok());
  ASSERT_TRUE(serial.Ingest("movie_b").ok());

  VideoQueryEngine parallel;
  ASSERT_TRUE(parallel.AddVideo(MakeVideo("movie_a", 5)).ok());
  ASSERT_TRUE(parallel.AddVideo(MakeVideo("movie_b", 6)).ok());
  ASSERT_TRUE(parallel.IngestAll(/*parallelism=*/4).ok());

  auto from_serial = serial.ExecuteTopKAll(SmokingCup(), 5);
  auto from_parallel = parallel.ExecuteTopKAll(SmokingCup(), 5);
  ASSERT_TRUE(from_serial.ok());
  ASSERT_TRUE(from_parallel.ok());
  ASSERT_EQ(from_serial->sequences.size(), from_parallel->sequences.size());
  for (size_t i = 0; i < from_serial->sequences.size(); ++i) {
    EXPECT_EQ(from_serial->sequences[i].video_name,
              from_parallel->sequences[i].video_name);
    EXPECT_EQ(from_serial->sequences[i].sequence.clips,
              from_parallel->sequences[i].sequence.clips);
    EXPECT_DOUBLE_EQ(from_serial->sequences[i].sequence.upper_bound,
                     from_parallel->sequences[i].sequence.upper_bound);
  }
}

}  // namespace
}  // namespace svq::core
