// Whole-system integration tests: annotation-loaded footage, disk-backed
// ingestion, the SQL dialect, repository search, and error propagation from
// failing models through every engine path.

#include <gtest/gtest.h>

#include <filesystem>

#include "svq/core/engine.h"
#include "svq/query/executor.h"
#include "svq/video/annotation.h"

namespace svq {
namespace {

std::shared_ptr<const video::SyntheticVideo> Footage(const std::string& name,
                                                     uint64_t seed) {
  video::SyntheticVideoSpec spec;
  spec.name = name;
  spec.num_frames = 36000;
  spec.seed = seed;
  spec.actions.push_back({"smoking", 350.0, 4200.0});
  video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.9;
  cup.coverage = 0.9;
  cup.mean_on_frames = 250.0;
  cup.mean_off_frames = 2400.0;
  spec.objects.push_back(cup);
  auto video = video::SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

TEST(EndToEndTest, AnnotationToSqlToResults) {
  // Export the footage's ground truth to the annotation format, re-import
  // it as if hand-labeled, and run the full SQL path over it.
  auto original = Footage("cafe", 7);
  const std::string text = video::FormatAnnotations(*original);
  auto imported = video::ParseAnnotations(text);
  ASSERT_TRUE(imported.ok());

  core::VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(*imported).ok());
  auto streaming = query::ExecuteStatement(
      &engine,
      "SELECT MERGE(clipID) FROM (PROCESS cafe PRODUCE clipID, obj USING "
      "ObjectDetector, act USING ActionRecognizer) "
      "WHERE act='smoking' AND obj.include('cup')");
  ASSERT_TRUE(streaming.ok()) << streaming.status();
  EXPECT_FALSE(streaming->online->sequences.empty());

  ASSERT_TRUE(engine.Ingest("cafe").ok());
  auto ranked = query::ExecuteStatement(
      &engine,
      "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS cafe PRODUCE "
      "clipID, obj USING ObjectTracker, act USING ActionRecognizer) "
      "WHERE act='smoking' AND obj.include('cup') "
      "ORDER BY RANK(act, obj) LIMIT 2");
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  EXPECT_FALSE(ranked->topk->sequences.empty());
  // The top ranked sequence is one of the streaming results (same
  // underlying positives up to estimator timing differences across model
  // instances).
  EXPECT_LE(ranked->topk->sequences.size(), 2u);
}

TEST(EndToEndTest, DiskBackedRepositoryRestart) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "svq_e2e_repo").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  core::Query query;
  query.action = "smoking";
  query.objects = {"cup"};

  // Phase 1: ingest to disk.
  std::vector<core::RankedSequence> before;
  {
    core::IngestOptions options;
    options.backend = core::IngestOptions::TableBackend::kDisk;
    options.directory = dir;
    core::VideoQueryEngine engine(models::ModelSuite(),
                                  core::OnlineConfig(), options);
    ASSERT_TRUE(engine.AddVideo(Footage("cafe", 7)).ok());
    ASSERT_TRUE(engine.Ingest("cafe").ok());
    auto result = engine.ExecuteTopK(query, "cafe", 3);
    ASSERT_TRUE(result.ok());
    before = result->sequences;
    ASSERT_FALSE(before.empty());
  }

  // Phase 2: "restart" — reopen purely from the directory and answer the
  // same query without the video or any model. The engine writes each
  // video into its own subdirectory.
  auto reopened = core::OpenIngestedVideo(dir + "/cafe");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  core::AdditiveScoring scoring;
  auto after =
      core::RunRvaq(*reopened, query, 3, scoring, core::OfflineOptions());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->sequences.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after->sequences[i].clips, before[i].clips);
    EXPECT_NEAR(after->sequences[i].upper_bound, before[i].upper_bound,
                1e-9);
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Failure injection: model errors must propagate as Status, never crash or
// produce partial results.

class FailingDetector final : public models::ObjectDetector {
 public:
  FailingDetector(std::unique_ptr<models::ObjectDetector> inner,
                  video::FrameIndex fail_at)
      : inner_(std::move(inner)), fail_at_(fail_at) {}

  Result<std::vector<models::ObjectDetection>> Detect(
      video::FrameIndex frame) override {
    if (frame == fail_at_) {
      return Status::IOError("decoder hiccup at frame " +
                             std::to_string(frame));
    }
    return inner_->Detect(frame);
  }
  const std::vector<std::string>& SupportedLabels() const override {
    return inner_->SupportedLabels();
  }
  const std::string& name() const override { return inner_->name(); }
  const models::InferenceStats& stats() const override {
    return inner_->stats();
  }

 private:
  std::unique_ptr<models::ObjectDetector> inner_;
  video::FrameIndex fail_at_;
};

class FailingRecognizer final : public models::ActionRecognizer {
 public:
  FailingRecognizer(std::unique_ptr<models::ActionRecognizer> inner,
                    video::ShotIndex fail_at)
      : inner_(std::move(inner)), fail_at_(fail_at) {}

  Result<std::vector<models::ActionScore>> Recognize(
      const video::ShotRef& shot) override {
    if (shot.shot == fail_at_) {
      return Status::Internal("model crash at shot " +
                              std::to_string(shot.shot));
    }
    return inner_->Recognize(shot);
  }
  const std::vector<std::string>& SupportedLabels() const override {
    return inner_->SupportedLabels();
  }
  const std::string& name() const override { return inner_->name(); }
  const models::InferenceStats& stats() const override {
    return inner_->stats();
  }

 private:
  std::unique_ptr<models::ActionRecognizer> inner_;
  video::ShotIndex fail_at_;
};

TEST(FailureInjectionTest, DetectorErrorPropagatesFromOnlineRun) {
  auto video = Footage("cafe", 7);
  models::ModelSet models = models::MakeModelSet(
      video, models::MaskRcnnI3dSuite(), {"cup"}, {"smoking"});
  FailingDetector failing(std::move(models.detector), /*fail_at=*/5000);
  core::Query query;
  query.action = "smoking";
  query.objects = {"cup"};
  auto engine = core::OnlineEngine::Create(
      core::OnlineEngine::Mode::kSvaqd, query, core::OnlineConfig(),
      video->layout(), &failing, models.recognizer.get());
  ASSERT_TRUE(engine.ok());
  video::SyntheticVideoStream stream(video, 0);
  auto result = (*engine)->Run(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
  EXPECT_NE(result.status().message().find("frame 5000"), std::string::npos);
}

TEST(FailureInjectionTest, RecognizerErrorPropagatesFromIngestion) {
  auto video = Footage("cafe", 7);
  models::ModelSet models = models::MakeModelSet(
      video, models::MaskRcnnI3dSuite(), {}, {});
  FailingRecognizer failing(std::move(models.recognizer), /*fail_at=*/100);
  auto ingested = core::IngestVideo(video, 0, models.tracker.get(), &failing,
                                    core::IngestOptions());
  ASSERT_FALSE(ingested.ok());
  EXPECT_EQ(ingested.status().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, EngineKeepsWorkingAfterFailedRun) {
  // A failed execution must not corrupt the engine: the same query with a
  // healthy model succeeds afterwards.
  auto video = Footage("cafe", 7);
  core::VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(video).ok());
  core::Query query;
  query.action = "smoking";
  query.objects = {"cup"};
  // Directly run a failing engine first (the facade builds its own healthy
  // models, so inject at the OnlineEngine layer).
  models::ModelSet models = models::MakeModelSet(
      video, models::MaskRcnnI3dSuite(), {"cup"}, {"smoking"});
  FailingDetector failing(std::move(models.detector), 0);
  auto broken = core::OnlineEngine::Create(
      core::OnlineEngine::Mode::kSvaqd, query, core::OnlineConfig(),
      video->layout(), &failing, models.recognizer.get());
  ASSERT_TRUE(broken.ok());
  video::SyntheticVideoStream stream(video, 0);
  EXPECT_FALSE((*broken)->Run(stream).ok());

  auto healthy = engine.ExecuteOnline(query, "cafe");
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy->sequences.empty());
}

}  // namespace
}  // namespace svq
