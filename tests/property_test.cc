// Cross-module property tests (TEST_P sweeps): invariants the paper's
// formalism promises, checked over randomized inputs.

#include <gtest/gtest.h>

#include "svq/common/rng.h"
#include "svq/core/online_engine.h"
#include "svq/core/scoring.h"
#include "svq/eval/workloads.h"
#include "svq/models/synthetic_models.h"
#include "svq/stats/kernel_estimator.h"
#include "svq/video/interval_set.h"
#include "svq/video/video_stream.h"

namespace svq {
namespace {

// ---------------------------------------------------------------------------
// Interval coarsen/refine laws.

class CoarsenRefineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoarsenRefineTest, LawsHold) {
  Rng rng(GetParam());
  video::IntervalSet set;
  for (int i = 0; i < 6; ++i) {
    const int64_t begin = static_cast<int64_t>(rng.NextUint64(500));
    set.Add({begin, begin + 1 + static_cast<int64_t>(rng.NextUint64(40))});
  }
  const int64_t unit = 1 + static_cast<int64_t>(rng.NextUint64(15));
  const video::IntervalSet any = set.CoarsenAny(unit);
  const video::IntervalSet all = set.CoarsenAll(unit);

  // Fully-covered units are a subset of touched units.
  EXPECT_EQ(video::IntervalSet::Intersect(all, any), all);
  // Refining the touched units covers the original set.
  EXPECT_EQ(any.Refine(unit).OverlapLength(set), set.TotalLength());
  // Refining the fully-covered units stays inside the original set.
  const video::IntervalSet refined_all = all.Refine(unit);
  EXPECT_EQ(refined_all.OverlapLength(set), refined_all.TotalLength());
  // Unit 1 is the identity for both projections.
  EXPECT_EQ(set.CoarsenAny(1), set);
  EXPECT_EQ(set.CoarsenAll(1), set);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, CoarsenRefineTest,
                         ::testing::Range<uint64_t>(1, 17));

// ---------------------------------------------------------------------------
// Scoring-function contract (paper §4.1).

class ScoringContractTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {
 protected:
  const core::SequenceScoring& scoring(int which) const {
    if (which == 0) return additive_;
    return max_;
  }
  core::AdditiveScoring additive_;
  core::MaxScoring max_;
};

TEST_P(ScoringContractTest, MonotoneDecomposableDominant) {
  const auto [which, seed] = GetParam();
  const core::SequenceScoring& s = scoring(which);
  Rng rng(seed);
  std::vector<double> clips;
  for (int i = 0; i < 12; ++i) clips.push_back(rng.NextDouble(0.0, 10.0));

  // Replicate(x, 0) is the aggregate identity.
  EXPECT_DOUBLE_EQ(s.Replicate(3.7, 0), s.AggregateIdentity());
  // f decomposes over disjoint splits via the aggregation operator (Eq. 11).
  for (size_t split = 0; split <= clips.size(); ++split) {
    std::vector<double> left(clips.begin(), clips.begin() + split);
    std::vector<double> right(clips.begin() + split, clips.end());
    EXPECT_NEAR(s.SequenceScore(clips),
                s.Aggregate(s.SequenceScore(left), s.SequenceScore(right)),
                1e-9);
  }
  // Sub-sequence dominance: dropping clips never raises the score.
  std::vector<double> sub(clips.begin(), clips.begin() + clips.size() / 2);
  EXPECT_GE(s.SequenceScore(clips) + 1e-12, s.SequenceScore(sub));
  // Monotonicity of f in each clip score.
  std::vector<double> bumped = clips;
  bumped[3] += 1.0;
  EXPECT_GE(s.SequenceScore(bumped) + 1e-12, s.SequenceScore(clips));
  // Monotonicity of g in each argument.
  EXPECT_GE(s.ClipScore({2.0, 3.0}, 0.9) + 1e-12,
            s.ClipScore({2.0, 2.5}, 0.9));
  EXPECT_GE(s.ClipScore({2.0, 3.0}, 0.9) + 1e-12,
            s.ClipScore({2.0, 3.0}, 0.8));
  // Replicate agrees with folding.
  for (int n = 1; n <= 5; ++n) {
    EXPECT_NEAR(s.Replicate(2.5, n),
                s.SequenceScore(std::vector<double>(n, 2.5)), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BothScorings, ScoringContractTest,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values<uint64_t>(1, 2, 3)));

// ---------------------------------------------------------------------------
// Kernel estimator unbiasedness across bandwidths and rates.

class EstimatorSweepTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EstimatorSweepTest, TracksConstantRate) {
  const auto [bandwidth, p] = GetParam();
  Rng rng(0xE57 + static_cast<uint64_t>(bandwidth) +
          static_cast<uint64_t>(p * 1e6));
  double sum = 0.0;
  const int replicas = 24;
  for (int r = 0; r < replicas; ++r) {
    auto est = *stats::KernelRateEstimator::Create({bandwidth, 0.5, 0});
    for (int t = 0; t < 6000; ++t) est.Step(rng.NextBernoulli(p));
    sum += est.rate();
  }
  const double stderr_bound =
      4.0 * std::sqrt(p / (2.0 * bandwidth) / replicas) + 0.004;
  EXPECT_NEAR(sum / replicas, p, stderr_bound)
      << "bandwidth=" << bandwidth << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    BandwidthRateGrid, EstimatorSweepTest,
    ::testing::Combine(::testing::Values(64.0, 256.0, 1024.0),
                       ::testing::Values(0.005, 0.05, 0.25)));

// ---------------------------------------------------------------------------
// Online engine: determinism and structural invariants across layouts.

struct EngineCase {
  int frames_per_shot;
  int shots_per_clip;
  uint64_t seed;
};

class EngineInvariantTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineInvariantTest, DeterministicAndWellFormed) {
  const EngineCase param = GetParam();
  video::SyntheticVideoSpec spec;
  spec.name = "prop";
  spec.num_frames = 30000;
  spec.seed = param.seed;
  spec.layout.frames_per_shot = param.frames_per_shot;
  spec.layout.shots_per_clip = param.shots_per_clip;
  spec.actions.push_back({"jumping", 400.0, 4500.0});
  video::SyntheticObjectSpec car;
  car.label = "car";
  car.correlate_with_action = "jumping";
  car.correlation = 0.9;
  car.coverage = 0.9;
  car.mean_on_frames = 250.0;
  car.mean_off_frames = 2400.0;
  spec.objects.push_back(car);
  auto video = video::SyntheticVideo::Generate(spec);
  ASSERT_TRUE(video.ok());

  core::Query query;
  query.action = "jumping";
  query.objects = {"car"};

  video::IntervalSet first;
  for (int run = 0; run < 2; ++run) {
    models::ModelSet models = models::MakeModelSet(
        *video, models::MaskRcnnI3dSuite(), {"car"}, {"jumping"});
    auto engine = core::OnlineEngine::Create(
        core::OnlineEngine::Mode::kSvaqd, query, core::OnlineConfig(),
        (*video)->layout(), models.detector.get(), models.recognizer.get());
    ASSERT_TRUE(engine.ok());
    video::SyntheticVideoStream stream(*video, 0);
    auto result = (*engine)->Run(stream);
    ASSERT_TRUE(result.ok());
    if (run == 0) {
      first = result->sequences;
    } else {
      EXPECT_EQ(result->sequences, first);
    }
    // Structural invariants: sequences within the clip range, disjoint and
    // normalized (IntervalSet guarantees disjointness; check the range).
    const int64_t num_clips = (*video)->NumClips();
    for (const video::Interval& seq : result->sequences.intervals()) {
      EXPECT_GE(seq.begin, 0);
      EXPECT_LE(seq.end, num_clips);
      EXPECT_LT(seq.begin, seq.end);
    }
    // Bookkeeping adds up.
    EXPECT_EQ(result->stats.clips_processed, num_clips);
    EXPECT_LE(result->stats.clips_positive, num_clips);
    EXPECT_LE(result->stats.clips_short_circuited,
              result->stats.clips_processed);
    EXPECT_GE(result->stats.model_ms, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LayoutSeedGrid, EngineInvariantTest,
    ::testing::Values(EngineCase{10, 5, 1}, EngineCase{16, 5, 2},
                      EngineCase{16, 8, 3}, EngineCase{24, 4, 4},
                      EngineCase{12, 10, 5}, EngineCase{16, 5, 6}));

// ---------------------------------------------------------------------------
// Workload determinism: the full Table 1 generator is a pure function of
// (seed, scale).

TEST(WorkloadDeterminismTest, SameSeedSameGroundTruth) {
  auto a = eval::YouTubeWorkload(1207, 0.02);
  auto b = eval::YouTubeWorkload(1207, 0.02);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    ASSERT_EQ((*a)[i].videos.size(), (*b)[i].videos.size());
    for (size_t v = 0; v < (*a)[i].videos.size(); ++v) {
      const auto& gt_a = (*a)[i].videos[v]->ground_truth();
      const auto& gt_b = (*b)[i].videos[v]->ground_truth();
      EXPECT_EQ(gt_a.ActionPresence((*a)[i].query.action),
                gt_b.ActionPresence((*b)[i].query.action));
      EXPECT_EQ(gt_a.instances().size(), gt_b.instances().size());
    }
  }
}

}  // namespace
}  // namespace svq
