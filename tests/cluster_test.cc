// Integration tests for the cluster layer (docs/cluster.md): an svq_router
// in front of per-shard svqd backends must be indistinguishable from a
// single svqd over the full catalog — broadcast `PROCESS *` answers are
// compared sequence-by-sequence against the single-node oracle — and must
// degrade explicitly, not silently: a killed backend surfaces as a
// partial-result Unavailable status, deadlines shrink per hop and expire
// as kDeadlineExceeded, circuit breakers open after consecutive failures
// and recover through the health prober, and slow shards trigger hedging.
//
// Runs under `ctest -L tsan` (with -DSVQ_SANITIZE=thread): the router's
// scatter threads, hedge threads, health checker, and connection workers
// all share breakers and the metrics registry.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "svq/cluster/breaker.h"
#include "svq/cluster/router.h"
#include "svq/cluster/shard_map.h"
#include "svq/core/engine.h"
#include "svq/io/env.h"
#include "svq/query/executor.h"
#include "svq/server/client.h"
#include "svq/server/server.h"
#include "svq/video/synthetic_video.h"

namespace svq::cluster {
namespace {

using Clock = std::chrono::steady_clock;

std::string RankedStatement(const std::string& video, int k) {
  return "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS " + video +
         " PRODUCE clipID, obj USING ObjectDetector, act USING "
         "ActionRecognizer) WHERE act='smoking' AND obj.include('cup') "
         "ORDER BY RANK(act, obj) LIMIT " +
         std::to_string(k);
}

std::shared_ptr<const video::SyntheticVideo> ClusterVideo(int index) {
  video::SyntheticVideoSpec spec;
  spec.name = "serving_" + std::to_string(index);
  spec.num_frames = 12000;
  spec.seed = 9300 + static_cast<uint64_t>(index);
  spec.actions.push_back({"smoking", 350.0, 4500.0});
  video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.9;
  cup.coverage = 0.9;
  cup.mean_on_frames = 250.0;
  cup.mean_off_frames = 2600.0;
  spec.objects.push_back(cup);
  auto video = video::SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

/// Fast-failure router options for tests; individual tests override knobs.
RouterOptions TestOptions() {
  RouterOptions options;
  options.max_retries = 1;
  options.retry_backoff = std::chrono::milliseconds(5);
  options.retry_backoff_max = std::chrono::milliseconds(20);
  options.connect_timeout = std::chrono::milliseconds(1000);
  options.health_interval = std::chrono::milliseconds(0);  // deterministic
  options.breaker.failure_threshold = 100;  // tests opt in explicitly
  return options;
}

double RegistryValue(const Router& router, const std::string& name) {
  for (const auto& [key, value] : router.registry().Snapshot().Flatten()) {
    if (key == name) return value;
  }
  return 0.0;
}

/// A 2-shard cluster over four videos plus a single-node oracle engine
/// holding the full catalog: the contract under test is that clients
/// cannot tell the two apart (until a shard dies).
class ClusterTest : public ::testing::Test {
 protected:
  static constexpr int kVideos = 4;

  void StartCluster(RouterOptions options = TestOptions(),
                    size_t num_shards = 2) {
    std::vector<std::string> names;
    for (int i = 0; i < kVideos; ++i) {
      auto video = ClusterVideo(i);
      names.push_back(video->name());
      ASSERT_TRUE(oracle_.AddVideo(video).ok());
    }
    ASSERT_TRUE(oracle_.IngestAll().ok());

    for (size_t s = 0; s < num_shards; ++s) {
      engines_.push_back(std::make_unique<core::VideoQueryEngine>());
    }
    std::vector<ShardEndpoint> endpoints(num_shards);  // ports patched below
    for (auto& endpoint : endpoints) endpoint = {"127.0.0.1", 1};
    auto map = AssignContiguous(names, endpoints, /*version=*/7);
    ASSERT_TRUE(map.ok()) << map.status();
    // Each shard engine ingests its partition in sorted-name order, the
    // same insertion order the oracle used — this is what aligns the
    // cross-shard (shard, rank) tie order with the oracle's video ids.
    for (const std::string& name : names) {
      const int shard = map->ShardOf(name);
      ASSERT_GE(shard, 0) << name;
      ASSERT_TRUE(
          engines_[static_cast<size_t>(shard)]
              ->AddVideo(ClusterVideo(std::stoi(name.substr(8))))
              .ok());
    }
    for (auto& engine : engines_) {
      ASSERT_TRUE(engine->IngestAll().ok());
      servers_.push_back(
          std::make_unique<server::Server>(engine.get(), server::ServerOptions{}));
      ASSERT_TRUE(servers_.back()->Start().ok());
    }
    for (size_t s = 0; s < num_shards; ++s) {
      map->shards[s].port = servers_[s]->port();
    }
    router_ = std::make_unique<Router>(std::move(map).value(), options);
    ASSERT_TRUE(router_->Start().ok());
  }

  void TearDown() override {
    if (router_) router_->Shutdown();
    for (auto& server : servers_) server->Shutdown();
  }

  server::Client RouterClient() {
    server::Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", router_->port()).ok());
    return client;
  }

  core::VideoQueryEngine oracle_;
  std::vector<std::unique_ptr<core::VideoQueryEngine>> engines_;
  std::vector<std::unique_ptr<server::Server>> servers_;
  std::unique_ptr<Router> router_;
};

void ExpectMatchesRepository(
    const server::QueryResponse& response,
    const std::vector<core::RepositoryEntry>& expected) {
  ASSERT_EQ(response.sequences.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(response.sequences[i].begin, expected[i].sequence.clips.begin)
        << i;
    EXPECT_EQ(response.sequences[i].end, expected[i].sequence.clips.end)
        << i;
    EXPECT_DOUBLE_EQ(response.sequences[i].lower_bound,
                     expected[i].sequence.lower_bound)
        << i;
    EXPECT_DOUBLE_EQ(response.sequences[i].upper_bound,
                     expected[i].sequence.upper_bound)
        << i;
  }
}

TEST_F(ClusterTest, BroadcastMatchesSingleNodeOracle) {
  StartCluster();
  const std::string statement = RankedStatement("*", 6);
  auto reference = query::ExecuteStatementOn(oracle_.Pin(), statement);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_TRUE(reference->repo.has_value());
  ASSERT_FALSE(reference->repo->sequences.empty());

  server::Client client = RouterClient();
  auto response = client.Execute(statement);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->status.ok()) << response->status;
  EXPECT_TRUE(response->ranked);
  ExpectMatchesRepository(*response, reference->repo->sequences);
  EXPECT_DOUBLE_EQ(RegistryValue(*router_, "svq_router_queries_total"), 1.0);
  EXPECT_DOUBLE_EQ(
      RegistryValue(*router_, "svq_router_queries_partial_total"), 0.0);
}

TEST_F(ClusterTest, SingleVideoStatementRoutesToOwningShard) {
  StartCluster();
  // serving_3 lives on shard 1; through the router the answer must equal
  // the single-node in-process execution.
  const std::string statement = RankedStatement("serving_3", 3);
  auto reference = query::ExecuteStatementOn(oracle_.Pin(), statement);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_TRUE(reference->topk.has_value());

  server::Client client = RouterClient();
  auto response = client.Execute(statement);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->status.ok()) << response->status;
  const auto& expected = reference->topk->sequences;
  ASSERT_EQ(response->sequences.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(response->sequences[i].begin, expected[i].clips.begin) << i;
    EXPECT_EQ(response->sequences[i].end, expected[i].clips.end) << i;
    EXPECT_DOUBLE_EQ(response->sequences[i].lower_bound,
                     expected[i].lower_bound)
        << i;
  }
  // Only the owning shard saw the query.
  EXPECT_EQ(servers_[1]->Stats().queries_accepted, 1);
  EXPECT_EQ(servers_[0]->Stats().queries_accepted, 0);
}

TEST_F(ClusterTest, UnknownVideoGetsTheBackendsDiagnostic) {
  StartCluster();
  server::Client client = RouterClient();
  auto response = client.Execute(RankedStatement("no_such_video", 3));
  ASSERT_TRUE(response.ok()) << response.status();
  // Forwarded to a healthy shard whose NotFound matches a single svqd's.
  EXPECT_TRUE(response->status.IsNotFound()) << response->status;
  // Unparseable statements come back with the backend's parser diagnostic,
  // and the connection survives.
  auto garbage = client.Execute("SELECT FROM WHERE nonsense((");
  ASSERT_TRUE(garbage.ok()) << garbage.status();
  EXPECT_TRUE(garbage->status.IsInvalidArgument()) << garbage->status;
}

TEST_F(ClusterTest, ExplainRoutesAndBroadcastExplainIsUnimplemented) {
  StartCluster();
  const std::string statement = RankedStatement("serving_0", 3);
  server::Client client = RouterClient();
  auto through_router = client.Explain(statement);
  ASSERT_TRUE(through_router.ok()) << through_router.status();
  ASSERT_TRUE(through_router->status.ok()) << through_router->status;

  server::Client direct;
  ASSERT_TRUE(direct.Connect("127.0.0.1", servers_[0]->port()).ok());
  auto from_backend = direct.Explain(statement);
  ASSERT_TRUE(from_backend.ok()) << from_backend.status();
  EXPECT_EQ(through_router->text, from_backend->text);

  auto broadcast = client.Explain(RankedStatement("*", 3));
  ASSERT_TRUE(broadcast.ok()) << broadcast.status();
  EXPECT_TRUE(broadcast->status.IsUnimplemented()) << broadcast->status;
}

TEST_F(ClusterTest, StreamingVerbsAreUnimplemented) {
  StartCluster();
  server::Client client = RouterClient();
  auto subscribed = client.Subscribe(
      "serving_0",
      "SELECT MERGE(clipID) FROM (PROCESS serving_0 PRODUCE clipID, obj "
      "USING ObjectDetector, act USING ActionRecognizer) WHERE "
      "act='smoking' AND obj.include('cup')");
  ASSERT_TRUE(subscribed.ok()) << subscribed.status();
  EXPECT_TRUE(subscribed->status.IsUnimplemented()) << subscribed->status;
  // The connection survives and still serves queries.
  auto response = client.Execute(RankedStatement("serving_0", 3));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.ok()) << response->status;
}

TEST_F(ClusterTest, StatsAggregateBackendsAndRouterRegistry) {
  StartCluster();
  server::Client client = RouterClient();
  auto response = client.Execute(RankedStatement("*", 6));
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->status.ok()) << response->status;

  auto stats = client.GetStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  // The broadcast hit both backends; the aggregate sums their counters.
  EXPECT_EQ(stats->queries_accepted, 2);
  EXPECT_EQ(stats->queries_ok, 2);
  EXPECT_EQ(stats->query_latency.count, 2);

  const auto find = [&](const std::string& name) -> double {
    for (const auto& [key, value] : stats->registry) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "registry entry missing: " << name;
    return -1.0;
  };
  // Backend registries sum by name; the router's own metrics ride along.
  EXPECT_DOUBLE_EQ(find("svqd_queries_accepted_total"), 2.0);
  EXPECT_DOUBLE_EQ(find("svq_router_queries_total"), 1.0);
  EXPECT_DOUBLE_EQ(find("svq_router_backends_total"), 2.0);
  EXPECT_DOUBLE_EQ(find("svq_router_backend_failures_total"), 0.0);
}

TEST_F(ClusterTest, KilledBackendDegradesToExplicitPartialResults) {
  StartCluster();
  const std::string statement = RankedStatement("*", 6);
  // Kill shard 1 mid-flight (between queries): the router must answer from
  // shard 0 and say so — an Unavailable status naming the damage, with the
  // surviving shard's sequences attached, never a silent subset.
  servers_[1]->Shutdown();
  auto reference =
      query::ExecuteStatementOn(engines_[0]->Pin(), statement);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_TRUE(reference->repo.has_value());
  ASSERT_FALSE(reference->repo->sequences.empty());

  server::Client client = RouterClient();
  auto response = client.Execute(statement);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.IsUnavailable()) << response->status;
  EXPECT_NE(response->status.message().find("partial results (1/2 shards)"),
            std::string::npos)
      << response->status;
  ExpectMatchesRepository(*response, reference->repo->sequences);
  EXPECT_DOUBLE_EQ(
      RegistryValue(*router_, "svq_router_queries_partial_total"), 1.0);
  EXPECT_GE(RegistryValue(*router_, "svq_router_backend_failures_total"),
            1.0);

  // With every shard down the answer is still explicit, now with nothing
  // attached.
  servers_[0]->Shutdown();
  auto dark = client.Execute(statement);
  ASSERT_TRUE(dark.ok()) << dark.status();
  EXPECT_TRUE(dark->status.IsUnavailable()) << dark->status;
  EXPECT_NE(dark->status.message().find("all shards unavailable"),
            std::string::npos)
      << dark->status;
  EXPECT_TRUE(dark->sequences.empty());
}

TEST_F(ClusterTest, DeadlineBudgetShrinksPerHopAndExpiresCleanly) {
  // Retry backoff larger than the client budget: the first attempt against
  // the killed shard fails, the backoff sleeps past the deadline, and the
  // second attempt must be answered by the router itself with
  // kDeadlineExceeded — not forwarded with a stale budget.
  RouterOptions options = TestOptions();
  options.max_retries = 2;
  options.retry_backoff = std::chrono::milliseconds(80);
  options.retry_backoff_max = std::chrono::milliseconds(80);
  StartCluster(options);
  servers_[0]->Shutdown();

  server::Client client = RouterClient();
  auto response =
      client.Execute(RankedStatement("serving_0", 3), /*timeout_ms=*/40);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.IsDeadlineExceeded()) << response->status;
  EXPECT_DOUBLE_EQ(
      RegistryValue(*router_, "svq_router_deadline_exceeded_total"), 1.0);
}

TEST_F(ClusterTest, BreakerOpensAfterConsecutiveFailuresThenRecovers) {
  RouterOptions options = TestOptions();
  options.max_retries = 0;
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown = std::chrono::milliseconds(50);
  options.health_interval = std::chrono::milliseconds(25);
  StartCluster(options);
  const uint16_t port = servers_[0]->port();
  servers_[0]->Shutdown();
  ASSERT_EQ(router_->BreakerState(0), CircuitBreaker::State::kClosed);

  // Two failed queries = two consecutive transport failures: the breaker
  // trips (the health prober can only add failures here, never successes).
  server::Client client = RouterClient();
  for (int i = 0; i < 2; ++i) {
    auto response = client.Execute(RankedStatement("serving_0", 3));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(response->status.IsUnavailable()) << response->status;
  }
  const auto tripped = Clock::now() + std::chrono::seconds(5);
  while (router_->BreakerState(0) == CircuitBreaker::State::kClosed &&
         Clock::now() < tripped) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_NE(router_->BreakerState(0), CircuitBreaker::State::kClosed);

  // Resurrect the backend on the same port: the health prober's half-open
  // probe must close the breaker without any client traffic.
  server::ServerOptions revive;
  revive.port = port;
  auto reborn =
      std::make_unique<server::Server>(engines_[0].get(), revive);
  ASSERT_TRUE(reborn->Start().ok());
  servers_.push_back(std::move(reborn));
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (router_->BreakerState(0) != CircuitBreaker::State::kClosed &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(router_->BreakerState(0), CircuitBreaker::State::kClosed);

  // And traffic flows again.
  auto response = client.Execute(RankedStatement("serving_0", 3));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.ok()) << response->status;
}

TEST(CircuitBreakerTest, ThresholdCooldownAndHalfOpenProbe) {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.cooldown = std::chrono::milliseconds(100);
  CircuitBreaker breaker(options);
  using State = CircuitBreaker::State;
  const auto t0 = CircuitBreaker::Clock::time_point{} +
                  std::chrono::seconds(1000);

  // Two failures stay closed; a success resets the consecutive count.
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), State::kClosed);
  breaker.RecordSuccess();
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), State::kClosed);
  // The third consecutive failure trips it.
  breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest(t0 + std::chrono::milliseconds(99)));
  // Past the cooldown exactly one probe is admitted.
  const auto probe_time = t0 + std::chrono::milliseconds(100);
  EXPECT_TRUE(breaker.AllowRequest(probe_time));
  EXPECT_EQ(breaker.state(), State::kHalfOpen);
  EXPECT_FALSE(breaker.AllowRequest(probe_time));
  // A failed probe re-opens for another full cooldown.
  breaker.RecordFailure(probe_time);
  EXPECT_EQ(breaker.state(), State::kOpen);
  EXPECT_FALSE(
      breaker.AllowRequest(probe_time + std::chrono::milliseconds(99)));
  EXPECT_TRUE(
      breaker.AllowRequest(probe_time + std::chrono::milliseconds(100)));
  // A successful probe closes it.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(probe_time));
}

TEST(RouterHedgingTest, SlowShardTriggersAHedgeRequest) {
  // A listener that accepts nothing: connects succeed (the SYN queue
  // absorbs them) but no byte ever comes back, so the primary request
  // stalls past hedge_after and the router must issue a hedge.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 16), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ASSERT_EQ(
      ::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len), 0);

  ShardMap map;
  map.version = 1;
  map.shards.push_back({"127.0.0.1", ntohs(bound.sin_port)});
  map.assignments["serving_0"] = 0;
  RouterOptions options = TestOptions();
  options.max_retries = 0;
  options.hedge_after = std::chrono::milliseconds(20);
  options.recv_timeout = std::chrono::milliseconds(150);
  Router router(map, options);
  ASSERT_TRUE(router.Start().ok());

  server::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()).ok());
  auto response = client.Execute(RankedStatement("serving_0", 3));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.IsUnavailable()) << response->status;
  EXPECT_GE(RegistryValue(router, "svq_router_hedges_total"), 1.0);
  router.Shutdown();
  ::close(listener);
}

TEST(ShardMapTest, AssignContiguousSaveLoadRoundTrip) {
  auto map = AssignContiguous(
      {"video_c", "video_a", "video_e", "video_b", "video_d"},
      {{"10.0.0.1", 7001}, {"10.0.0.2", 7002}}, /*version=*/42);
  ASSERT_TRUE(map.ok()) << map.status();
  // Contiguous in sorted-name order, remainder on the leading shard.
  EXPECT_EQ(map->ShardOf("video_a"), 0);
  EXPECT_EQ(map->ShardOf("video_b"), 0);
  EXPECT_EQ(map->ShardOf("video_c"), 0);
  EXPECT_EQ(map->ShardOf("video_d"), 1);
  EXPECT_EQ(map->ShardOf("video_e"), 1);
  EXPECT_LT(map->ShardOf("unassigned"), 0);

  const std::string path =
      ::testing::TempDir() + "/cluster_test_shard_map.bin";
  ASSERT_TRUE(SaveShardMap(io::Env::Default(), path, *map).ok());
  auto loaded = LoadShardMap(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, *map);
  EXPECT_EQ(loaded->version, 42u);
  ::unlink(path.c_str());
}

TEST(ShardMapTest, RejectsCorruptionAndStructuralErrors) {
  auto map = AssignContiguous({"a", "b"}, {{"127.0.0.1", 7001}});
  ASSERT_TRUE(map.ok()) << map.status();
  const std::string path =
      ::testing::TempDir() + "/cluster_test_shard_map_corrupt.bin";
  ASSERT_TRUE(SaveShardMap(io::Env::Default(), path, *map).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  // Every single-byte flip must be caught (checksum or parse), and every
  // truncation must fail cleanly — a torn map must never half-load.
  for (size_t at : {size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    std::string flipped = bytes;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x40);
    std::ofstream(path, std::ios::binary | std::ios::trunc) << flipped;
    EXPECT_FALSE(LoadShardMap(path).ok()) << "flip at " << at;
  }
  for (size_t cut : {size_t{0}, size_t{3}, bytes.size() - 1}) {
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << bytes.substr(0, cut);
    EXPECT_FALSE(LoadShardMap(path).ok()) << "cut at " << cut;
  }
  ::unlink(path.c_str());

  // Structural validation: no shards, out-of-range assignment.
  ShardMap empty;
  EXPECT_TRUE(empty.Validate().IsInvalidArgument());
  ShardMap out_of_range;
  out_of_range.shards.push_back({"127.0.0.1", 7001});
  out_of_range.assignments["v"] = 5;
  EXPECT_TRUE(out_of_range.Validate().IsInvalidArgument());
  EXPECT_FALSE(AssignContiguous({"a"}, {}).ok());
}

TEST(ClientConnectTimeoutTest, RefusedConnectFailsFastWithTimeoutSet) {
  // Grab a port that nothing listens on by binding and closing it.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&bound), &len),
            0);
  const uint16_t dead_port = ntohs(bound.sin_port);
  ::close(probe);

  server::Client client;
  const auto t0 = Clock::now();
  const Status status =
      client.Connect("127.0.0.1", dead_port, std::chrono::milliseconds(1000),
                     /*connect_timeout=*/std::chrono::milliseconds(500));
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(client.connected());
  // Refusal is immediate — the timeout is an upper bound, not a sleep.
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(5));
}

TEST(ClientConnectTimeoutTest, NonBlockingConnectServesQueriesNormally) {
  core::VideoQueryEngine engine;
  ASSERT_TRUE(engine.AddVideo(ClusterVideo(0)).ok());
  ASSERT_TRUE(engine.IngestAll().ok());
  server::Server server(&engine, {});
  ASSERT_TRUE(server.Start().ok());

  // The non-blocking connect path must leave the socket in the same state
  // as the default blocking path: blocking IO, working round trips.
  server::Client client;
  ASSERT_TRUE(client
                  .Connect("127.0.0.1", server.port(),
                           std::chrono::milliseconds(120000),
                           std::chrono::milliseconds(1000))
                  .ok());
  auto response = client.Execute(RankedStatement("serving_0", 3));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.ok()) << response->status;
  server.Shutdown();
}

TEST(ClientConnectTimeoutTest, BackloggedListenerTimesOutWithinBudget) {
  // listen(fd, 0) plus unaccepted saturator connections makes the kernel
  // drop further SYNs, so a fresh connect hangs in SYN_SENT — exactly the
  // black-holed-backend case the connect timeout exists for.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 0), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ASSERT_EQ(
      ::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len), 0);
  std::vector<int> saturators;
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    ::connect(fd, reinterpret_cast<sockaddr*>(&bound), sizeof(bound));
    saturators.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  server::Client client;
  const auto t0 = Clock::now();
  const Status status = client.Connect(
      "127.0.0.1", ntohs(bound.sin_port), std::chrono::milliseconds(1000),
      /*connect_timeout=*/std::chrono::milliseconds(100));
  const auto elapsed = Clock::now() - t0;
  for (int fd : saturators) ::close(fd);
  ::close(listener);
  if (status.ok()) {
    GTEST_SKIP() << "kernel admitted the connection past the backlog";
  }
  EXPECT_FALSE(client.connected());
  // Must give up near the 100 ms budget, far before a blocking connect
  // would (SYN retransmits run for minutes).
  EXPECT_GE(elapsed, std::chrono::milliseconds(50));
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

}  // namespace
}  // namespace svq::cluster
