#include "svq/eval/metrics.h"

#include <gtest/gtest.h>

namespace svq::eval {
namespace {

using video::Interval;
using video::IntervalSet;

TEST(MatchStatsTest, DerivedScores) {
  MatchStats stats{8, 2, 2};
  EXPECT_DOUBLE_EQ(stats.precision(), 0.8);
  EXPECT_DOUBLE_EQ(stats.recall(), 0.8);
  EXPECT_DOUBLE_EQ(stats.f1(), 0.8);
  EXPECT_DOUBLE_EQ(MatchStats{}.f1(), 0.0);
  MatchStats sum = stats;
  sum += MatchStats{2, 0, 0};
  EXPECT_EQ(sum.tp, 10);
}

TEST(SequenceMatchTest, ExactMatch) {
  IntervalSet truth({{0, 10}, {20, 30}});
  MatchStats stats = SequenceMatch(truth, truth, 0.5);
  EXPECT_EQ(stats.tp, 2);
  EXPECT_EQ(stats.fp, 0);
  EXPECT_EQ(stats.fn, 0);
  EXPECT_DOUBLE_EQ(stats.f1(), 1.0);
}

TEST(SequenceMatchTest, IouThresholdDecides) {
  IntervalSet truth({{0, 10}});
  // IoU([0,6), [0,10)) = 0.6 >= 0.5 -> TP.
  MatchStats hit = SequenceMatch(IntervalSet({{0, 6}}), truth, 0.5);
  EXPECT_EQ(hit.tp, 1);
  EXPECT_EQ(hit.fn, 0);
  // IoU([0,4), [0,10)) = 0.4 < 0.5 -> FP + FN.
  MatchStats miss = SequenceMatch(IntervalSet({{0, 4}}), truth, 0.5);
  EXPECT_EQ(miss.tp, 0);
  EXPECT_EQ(miss.fp, 1);
  EXPECT_EQ(miss.fn, 1);
}

TEST(SequenceMatchTest, SpuriousAndMissing) {
  IntervalSet truth({{0, 10}, {50, 60}});
  IntervalSet predicted({{0, 10}, {100, 105}});
  MatchStats stats = SequenceMatch(predicted, truth, 0.5);
  EXPECT_EQ(stats.tp, 1);
  EXPECT_EQ(stats.fp, 1);
  EXPECT_EQ(stats.fn, 1);
}

TEST(SequenceMatchTest, EmptySets) {
  MatchStats both = SequenceMatch(IntervalSet(), IntervalSet(), 0.5);
  EXPECT_EQ(both.tp + both.fp + both.fn, 0);
  MatchStats no_pred = SequenceMatch(IntervalSet(), IntervalSet({{0, 5}}));
  EXPECT_EQ(no_pred.fn, 1);
}

TEST(ElementMatchTest, CountsLengths) {
  IntervalSet predicted({{0, 10}});
  IntervalSet truth({{5, 15}});
  MatchStats stats = ElementMatch(predicted, truth);
  EXPECT_EQ(stats.tp, 5);
  EXPECT_EQ(stats.fp, 5);
  EXPECT_EQ(stats.fn, 5);
}

TEST(FalsePositiveRateTest, Computed) {
  IntervalSet truth({{0, 50}});
  IntervalSet predicted({{40, 70}});  // 20 predicted frames outside truth
  // Negatives: 100 - 50 = 50; FP = 20.
  EXPECT_DOUBLE_EQ(FalsePositiveRate(predicted, truth, 100), 0.4);
  EXPECT_DOUBLE_EQ(FalsePositiveRate(IntervalSet(), truth, 100), 0.0);
  // All-truth domain has no negatives.
  EXPECT_DOUBLE_EQ(FalsePositiveRate(predicted, IntervalSet({{0, 100}}),
                                     100),
                   0.0);
}

TEST(ShotTruthTest, HalfCoverageRule) {
  // 10-frame shots; [0, 15) covers shot 0 fully and half of shot 1.
  IntervalSet frames({{0, 15}});
  EXPECT_EQ(ShotTruth(frames, 10), IntervalSet({{0, 2}}));
  // [0, 14) covers only 4 frames of shot 1 -> excluded.
  EXPECT_EQ(ShotTruth(IntervalSet({{0, 14}}), 10), IntervalSet({{0, 1}}));
  // A sliver inside one shot is excluded.
  EXPECT_TRUE(ShotTruth(IntervalSet({{12, 14}}), 10).empty());
  EXPECT_EQ(ShotTruth(IntervalSet({{10, 15}}), 10), IntervalSet({{1, 2}}));
}

}  // namespace
}  // namespace svq::eval
