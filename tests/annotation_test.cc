#include "svq/video/annotation.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "svq/core/engine.h"

namespace svq::video {
namespace {

constexpr const char* kSample = R"(# a hand-labeled clip
video beach_day 9000 30

object human 100 2000
object human 4000 6000   # a second appearance
object surfboard 500 1800
action kissing 800 1500
action kissing 4500 5000
)";

TEST(AnnotationTest, ParsesSample) {
  auto video = ParseAnnotations(kSample);
  ASSERT_TRUE(video.ok()) << video.status();
  EXPECT_EQ((*video)->name(), "beach_day");
  EXPECT_EQ((*video)->num_frames(), 9000);
  EXPECT_DOUBLE_EQ((*video)->layout().fps, 30.0);
  const GroundTruth& gt = (*video)->ground_truth();
  EXPECT_EQ(gt.ObjectPresence("human"),
            IntervalSet({{100, 2000}, {4000, 6000}}));
  EXPECT_EQ(gt.ObjectPresence("surfboard"), IntervalSet({{500, 1800}}));
  EXPECT_EQ(gt.ActionPresence("kissing"),
            IntervalSet({{800, 1500}, {4500, 5000}}));
  EXPECT_EQ(gt.instances().size(), 3u);
}

TEST(AnnotationTest, RoundTripsThroughFormat) {
  auto video = ParseAnnotations(kSample);
  ASSERT_TRUE(video.ok());
  const std::string text = FormatAnnotations(**video);
  auto reparsed = ParseAnnotations(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ((*reparsed)->name(), (*video)->name());
  EXPECT_EQ((*reparsed)->num_frames(), (*video)->num_frames());
  EXPECT_EQ((*reparsed)->ground_truth().ObjectPresence("human"),
            (*video)->ground_truth().ObjectPresence("human"));
  EXPECT_EQ((*reparsed)->ground_truth().ActionPresence("kissing"),
            (*video)->ground_truth().ActionPresence("kissing"));
  EXPECT_EQ((*reparsed)->ground_truth().instances().size(),
            (*video)->ground_truth().instances().size());
}

TEST(AnnotationTest, SaveAndLoadFile) {
  auto video = ParseAnnotations(kSample);
  ASSERT_TRUE(video.ok());
  const std::string path =
      (std::filesystem::temp_directory_path() / "svq_annotations.txt")
          .string();
  ASSERT_TRUE(SaveAnnotations(**video, path).ok());
  auto loaded = LoadAnnotations(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->ground_truth().ObjectPresence("surfboard"),
            (*video)->ground_truth().ObjectPresence("surfboard"));
  std::filesystem::remove(path);
  EXPECT_TRUE(LoadAnnotations(path).status().IsIOError());
}

TEST(AnnotationTest, ErrorsCarryLineNumbers) {
  auto missing_video = ParseAnnotations("object car 0 10\n");
  ASSERT_FALSE(missing_video.ok());
  EXPECT_NE(missing_video.status().message().find("line 1"),
            std::string::npos);

  auto bad_interval =
      ParseAnnotations("video v 100\nobject car 50 200\n");
  ASSERT_FALSE(bad_interval.ok());
  EXPECT_NE(bad_interval.status().message().find("line 2"),
            std::string::npos);

  auto inverted = ParseAnnotations("video v 100\naction a 50 50\n");
  EXPECT_FALSE(inverted.ok());

  auto unknown = ParseAnnotations("video v 100\nshot a 0 10\n");
  EXPECT_FALSE(unknown.ok());

  auto duplicate = ParseAnnotations("video v 100\nvideo w 100\n");
  EXPECT_FALSE(duplicate.ok());

  EXPECT_FALSE(ParseAnnotations("").ok());
}

TEST(AnnotationTest, AnnotatedVideoAnswersQueries) {
  // The adoption path: hand-labeled footage + ideal models + a query.
  auto video = ParseAnnotations(kSample);
  ASSERT_TRUE(video.ok());
  core::VideoQueryEngine engine(models::IdealSuite());
  ASSERT_TRUE(engine.AddVideo(*video).ok());
  core::Query query;
  query.action = "kissing";
  query.objects = {"human"};
  auto result = engine.ExecuteOnline(query, "beach_day");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->sequences.empty());
  // Both annotated kissing ranges co-occur with a human; the results cover
  // them at clip granularity.
  const int64_t fpc = (*video)->layout().FramesPerClip();
  EXPECT_TRUE(result->sequences.Contains(800 / fpc + 1));
  EXPECT_TRUE(result->sequences.Contains(4500 / fpc + 1));
}

TEST(FromGroundTruthTest, ValidatesBounds) {
  GroundTruth gt;
  gt.AddObjectInstance("car", {0, 200});
  EXPECT_FALSE(
      SyntheticVideo::FromGroundTruth("v", 100, VideoLayout(), gt).ok());
  GroundTruth gt2;
  gt2.AddActionInterval("a", {-5, 10});
  EXPECT_FALSE(
      SyntheticVideo::FromGroundTruth("v", 100, VideoLayout(), gt2).ok());
  GroundTruth ok;
  ok.AddObjectInstance("car", {0, 100});
  EXPECT_TRUE(
      SyntheticVideo::FromGroundTruth("v", 100, VideoLayout(), ok).ok());
}

}  // namespace
}  // namespace svq::video
