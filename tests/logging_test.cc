#include "svq/common/logging.h"

#include <gtest/gtest.h>

namespace svq {
namespace {

TEST(LoggingTest, LevelGate) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold statements must not evaluate their stream arguments.
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  SVQ_LOG(Debug) << expensive();
  SVQ_LOG(Info) << expensive();
  EXPECT_EQ(evaluations, 0);
  SVQ_LOG(Error) << "exercised error path (" << expensive() << ")";
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(saved);
}

TEST(LoggingTest, EmitsToStderr) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  SVQ_LOG(Warning) << "watch out " << 42;
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("WARN"), std::string::npos);
  EXPECT_NE(captured.find("watch out 42"), std::string::npos);
  SetLogLevel(saved);
}

TEST(LoggingDeathTest, CheckAbortsOnViolation) {
  EXPECT_DEATH({ SVQ_CHECK(1 + 1 == 3) << "math broke"; },
               "check failed: 1 \\+ 1 == 3");
}

TEST(LoggingTest, CheckPassesSilently) {
  testing::internal::CaptureStderr();
  SVQ_CHECK(2 + 2 == 4) << "never printed";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace svq
