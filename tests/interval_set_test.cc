#include "svq/video/interval_set.h"

#include <gtest/gtest.h>

#include "svq/common/rng.h"

namespace svq::video {
namespace {

TEST(IntervalTest, BasicProperties) {
  Interval i{3, 7};
  EXPECT_EQ(i.length(), 4);
  EXPECT_FALSE(i.empty());
  EXPECT_TRUE(i.Contains(3));
  EXPECT_TRUE(i.Contains(6));
  EXPECT_FALSE(i.Contains(7));
  EXPECT_TRUE((Interval{5, 5}).empty());
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE((Interval{0, 5}).Overlaps({4, 8}));
  EXPECT_FALSE((Interval{0, 5}).Overlaps({5, 8}));
  EXPECT_TRUE((Interval{2, 3}).Overlaps({0, 10}));
}

TEST(IntervalTest, Iou) {
  EXPECT_DOUBLE_EQ(Interval::Iou({0, 10}, {0, 10}), 1.0);
  EXPECT_DOUBLE_EQ(Interval::Iou({0, 10}, {5, 15}), 5.0 / 15.0);
  EXPECT_DOUBLE_EQ(Interval::Iou({0, 5}, {5, 10}), 0.0);
  EXPECT_DOUBLE_EQ(Interval::Iou({0, 0}, {0, 0}), 0.0);
}

TEST(IntervalSetTest, NormalizesOnConstruction) {
  IntervalSet set({{5, 8}, {1, 3}, {2, 4}, {8, 9}, {20, 20}});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{1, 4}));
  EXPECT_EQ(set.intervals()[1], (Interval{5, 9}));
}

TEST(IntervalSetTest, AddMergesAdjacent) {
  IntervalSet set;
  set.Add({0, 2});
  set.Add({2, 4});  // touching -> merges (the paper's clip MERGE)
  set.Add({10, 12});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 4}));
}

TEST(IntervalSetTest, AddOutOfOrder) {
  IntervalSet set;
  set.Add({10, 12});
  set.Add({0, 2});
  set.Add({11, 15});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[1], (Interval{10, 15}));
}

TEST(IntervalSetTest, ContainsAndFind) {
  IntervalSet set({{2, 5}, {9, 11}});
  EXPECT_TRUE(set.Contains(2));
  EXPECT_TRUE(set.Contains(4));
  EXPECT_FALSE(set.Contains(5));
  EXPECT_FALSE(set.Contains(0));
  EXPECT_EQ(set.FindInterval(10), 1);
  EXPECT_EQ(set.FindInterval(8), -1);
}

TEST(IntervalSetTest, TotalLength) {
  IntervalSet set({{0, 3}, {10, 14}});
  EXPECT_EQ(set.TotalLength(), 7);
  EXPECT_EQ(IntervalSet().TotalLength(), 0);
}

TEST(IntervalSetTest, UnionIntersectDifference) {
  IntervalSet a({{0, 5}, {10, 15}});
  IntervalSet b({{3, 12}});
  EXPECT_EQ(IntervalSet::Union(a, b), IntervalSet({{0, 15}}));
  EXPECT_EQ(IntervalSet::Intersect(a, b), IntervalSet({{3, 5}, {10, 12}}));
  EXPECT_EQ(IntervalSet::Difference(a, b), IntervalSet({{0, 3}, {12, 15}}));
  EXPECT_EQ(IntervalSet::Difference(b, a), IntervalSet({{5, 10}}));
}

TEST(IntervalSetTest, IntersectEmpty) {
  IntervalSet a({{0, 5}});
  EXPECT_TRUE(IntervalSet::Intersect(a, IntervalSet()).empty());
  EXPECT_TRUE(IntervalSet::Intersect(IntervalSet(), a).empty());
}

TEST(IntervalSetTest, Complement) {
  IntervalSet set({{2, 4}, {6, 8}});
  EXPECT_EQ(set.Complement(0, 10), IntervalSet({{0, 2}, {4, 6}, {8, 10}}));
  EXPECT_EQ(IntervalSet().Complement(0, 5), IntervalSet({{0, 5}}));
}

TEST(IntervalSetTest, OverlapLength) {
  IntervalSet a({{0, 10}});
  IntervalSet b({{5, 7}, {9, 20}});
  EXPECT_EQ(a.OverlapLength(b), 3);
}

TEST(IntervalSetTest, CoarsenAny) {
  // Frames -> clips of 10: [5, 12) touches clips 0 and 1.
  IntervalSet frames({{5, 12}, {25, 26}});
  EXPECT_EQ(frames.CoarsenAny(10), IntervalSet({{0, 2}, {2, 3}}));
}

TEST(IntervalSetTest, CoarsenAll) {
  // Only fully covered units survive: [5, 32) fully covers units 1 and 2.
  IntervalSet frames({{5, 32}});
  EXPECT_EQ(frames.CoarsenAll(10), IntervalSet({{1, 3}}));
  EXPECT_TRUE(IntervalSet({{5, 9}}).CoarsenAll(10).empty());
}

TEST(IntervalSetTest, Refine) {
  IntervalSet clips({{1, 3}});
  EXPECT_EQ(clips.Refine(10), IntervalSet({{10, 30}}));
}

TEST(IntervalSetTest, RefineInvertsCoarsenAllOnAligned) {
  IntervalSet clips({{2, 5}, {8, 9}});
  EXPECT_EQ(clips.Refine(16).CoarsenAll(16), clips);
  EXPECT_EQ(clips.Refine(16).CoarsenAny(16), clips);
}

/// Algebraic property sweep against a bitset oracle.
class IntervalAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalAlgebraTest, MatchesBitsetOracle) {
  svq::Rng rng(GetParam());
  const int64_t domain = 64;
  auto random_set = [&](std::vector<bool>* bits) {
    IntervalSet set;
    bits->assign(domain, false);
    const int n = 1 + static_cast<int>(rng.NextUint64(6));
    for (int i = 0; i < n; ++i) {
      const int64_t begin = static_cast<int64_t>(rng.NextUint64(domain));
      const int64_t end =
          begin + 1 + static_cast<int64_t>(rng.NextUint64(12));
      set.Add({begin, std::min(end, domain)});
      for (int64_t x = begin; x < std::min(end, domain); ++x) {
        (*bits)[static_cast<size_t>(x)] = true;
      }
    }
    return set;
  };
  std::vector<bool> abits, bbits;
  const IntervalSet a = random_set(&abits);
  const IntervalSet b = random_set(&bbits);

  const IntervalSet uni = IntervalSet::Union(a, b);
  const IntervalSet inter = IntervalSet::Intersect(a, b);
  const IntervalSet diff = IntervalSet::Difference(a, b);
  for (int64_t x = 0; x < domain; ++x) {
    const bool ia = abits[static_cast<size_t>(x)];
    const bool ib = bbits[static_cast<size_t>(x)];
    EXPECT_EQ(uni.Contains(x), ia || ib) << "x=" << x;
    EXPECT_EQ(inter.Contains(x), ia && ib) << "x=" << x;
    EXPECT_EQ(diff.Contains(x), ia && !ib) << "x=" << x;
  }
  // Identities.
  EXPECT_EQ(IntervalSet::Intersect(a, b), IntervalSet::Intersect(b, a));
  EXPECT_EQ(IntervalSet::Union(a, b), IntervalSet::Union(b, a));
  EXPECT_EQ(IntervalSet::Union(IntervalSet::Difference(a, b), inter), a);
  EXPECT_EQ(inter.TotalLength() + diff.TotalLength(), a.TotalLength());
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, IntervalAlgebraTest,
                         ::testing::Range<uint64_t>(1, 33));

}  // namespace
}  // namespace svq::video
