#include "svq/video/synthetic_video.h"

#include <gtest/gtest.h>

#include "svq/video/video_stream.h"

namespace svq::video {
namespace {

SyntheticVideoSpec BaseSpec() {
  SyntheticVideoSpec spec;
  spec.name = "test";
  spec.num_frames = 20000;
  spec.seed = 5;
  spec.actions.push_back({"jumping", 300.0, 900.0});
  SyntheticObjectSpec car;
  car.label = "car";
  car.correlate_with_action = "jumping";
  car.correlation = 0.9;
  car.coverage = 0.8;
  car.mean_on_frames = 200.0;
  car.mean_off_frames = 2000.0;
  spec.objects.push_back(car);
  return spec;
}

TEST(VideoLayoutTest, Geometry) {
  VideoLayout layout;  // 16 frames/shot, 5 shots/clip
  EXPECT_EQ(layout.FramesPerClip(), 80);
  EXPECT_EQ(layout.ShotOfFrame(0), 0);
  EXPECT_EQ(layout.ShotOfFrame(15), 0);
  EXPECT_EQ(layout.ShotOfFrame(16), 1);
  EXPECT_EQ(layout.ClipOfFrame(79), 0);
  EXPECT_EQ(layout.ClipOfFrame(80), 1);
  EXPECT_EQ(layout.ClipOfShot(4), 0);
  EXPECT_EQ(layout.ClipOfShot(5), 1);
  EXPECT_EQ(layout.NumClips(81), 2);
  EXPECT_EQ(layout.NumClips(80), 1);
  EXPECT_EQ(layout.NumShots(17), 2);
  EXPECT_EQ(layout.FramesForSeconds(2.0), 60);
}

TEST(VideoLayoutTest, Validation) {
  VideoLayout bad;
  bad.frames_per_shot = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = VideoLayout();
  bad.shots_per_clip = -1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = VideoLayout();
  bad.fps = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  EXPECT_TRUE(VideoLayout().Validate().ok());
}

TEST(SyntheticVideoTest, ValidatesSpec) {
  SyntheticVideoSpec spec = BaseSpec();
  spec.num_frames = 0;
  EXPECT_FALSE(SyntheticVideo::Generate(spec).ok());

  spec = BaseSpec();
  spec.objects[0].correlation = 1.5;
  EXPECT_FALSE(SyntheticVideo::Generate(spec).ok());

  spec = BaseSpec();
  spec.objects[0].correlate_with_action = "nonexistent";
  EXPECT_FALSE(SyntheticVideo::Generate(spec).ok());
}

TEST(SyntheticVideoTest, DeterministicInSeed) {
  auto a = SyntheticVideo::Generate(BaseSpec());
  auto b = SyntheticVideo::Generate(BaseSpec());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->ground_truth().ActionPresence("jumping"),
            (*b)->ground_truth().ActionPresence("jumping"));
  EXPECT_EQ((*a)->ground_truth().ObjectPresence("car"),
            (*b)->ground_truth().ObjectPresence("car"));
}

TEST(SyntheticVideoTest, DifferentSeedsDiffer) {
  auto a = SyntheticVideo::Generate(BaseSpec());
  SyntheticVideoSpec other = BaseSpec();
  other.seed = 6;
  auto b = SyntheticVideo::Generate(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*a)->ground_truth().ActionPresence("jumping"),
            (*b)->ground_truth().ActionPresence("jumping"));
}

TEST(SyntheticVideoTest, ActionDensityNearExpectation) {
  SyntheticVideoSpec spec = BaseSpec();
  spec.num_frames = 400000;
  auto video = SyntheticVideo::Generate(spec);
  ASSERT_TRUE(video.ok());
  const double density =
      static_cast<double>(
          (*video)->ground_truth().ActionPresence("jumping").TotalLength()) /
      static_cast<double>(spec.num_frames);
  // Expected on-fraction = 300 / (300 + 900) = 0.25.
  EXPECT_NEAR(density, 0.25, 0.05);
}

TEST(SyntheticVideoTest, CorrelatedObjectOverlapsAction) {
  auto video = SyntheticVideo::Generate(BaseSpec());
  ASSERT_TRUE(video.ok());
  const auto& gt = (*video)->ground_truth();
  const IntervalSet& action = gt.ActionPresence("jumping");
  const IntervalSet& car = gt.ObjectPresence("car");
  ASSERT_GT(action.TotalLength(), 0);
  // With correlation 0.9 / coverage 0.8, well over half of the action
  // duration has a car present.
  const double overlap_frac =
      static_cast<double>(action.OverlapLength(car)) /
      static_cast<double>(action.TotalLength());
  EXPECT_GT(overlap_frac, 0.5);
}

TEST(SyntheticVideoTest, IntervalsWithinBounds) {
  auto video = SyntheticVideo::Generate(BaseSpec());
  ASSERT_TRUE(video.ok());
  for (const TrackInstance& inst : (*video)->ground_truth().instances()) {
    EXPECT_GE(inst.frames.begin, 0);
    EXPECT_LE(inst.frames.end, (*video)->num_frames());
    EXPECT_LT(inst.frames.begin, inst.frames.end);
  }
}

TEST(SyntheticVideoTest, InstancesCoverPresence) {
  auto video = SyntheticVideo::Generate(BaseSpec());
  ASSERT_TRUE(video.ok());
  const auto& gt = (*video)->ground_truth();
  IntervalSet from_instances;
  for (const TrackInstance& inst : gt.instances()) {
    if (inst.label == "car") from_instances.Add(inst.frames);
  }
  EXPECT_EQ(from_instances, gt.ObjectPresence("car"));
}

TEST(GroundTruthTest, UnknownLabelsAreEmpty) {
  GroundTruth gt;
  EXPECT_TRUE(gt.ObjectPresence("nothing").empty());
  EXPECT_TRUE(gt.ActionPresence("nothing").empty());
}

TEST(GroundTruthTest, InstanceIdsAreUnique) {
  GroundTruth gt;
  const int64_t a = gt.AddObjectInstance("car", {0, 10});
  const int64_t b = gt.AddObjectInstance("car", {5, 15});
  EXPECT_NE(a, b);
  EXPECT_EQ(gt.InstancesAt("car", 7).size(), 2u);
  EXPECT_EQ(gt.InstancesAt("car", 12).size(), 1u);
  EXPECT_TRUE(gt.InstancesAt("bus", 7).empty());
}

TEST(VideoStreamTest, IteratesAllClipsWithPartialTail) {
  SyntheticVideoSpec spec = BaseSpec();
  spec.num_frames = 250;  // 3 clips of 80 + partial clip of 10
  auto video = SyntheticVideo::Generate(spec);
  ASSERT_TRUE(video.ok());
  SyntheticVideoStream stream(*video, 1);
  int64_t clips = 0;
  int64_t frames = 0;
  while (auto clip = stream.NextClip()) {
    EXPECT_EQ(clip->clip, clips);
    EXPECT_EQ(clip->video, 1);
    frames += clip->frames.length();
    int64_t shot_frames = 0;
    for (const ShotRef& shot : clip->shots) shot_frames += shot.frames.length();
    EXPECT_EQ(shot_frames, clip->frames.length());
    ++clips;
  }
  EXPECT_EQ(clips, 4);
  EXPECT_EQ(frames, 250);
  EXPECT_FALSE(stream.NextClip().has_value());
  stream.Reset();
  EXPECT_TRUE(stream.NextClip().has_value());
}

TEST(VideoStreamTest, PartialClipShotStructure) {
  VideoLayout layout;
  // 250 frames: clip 3 covers frames [240, 250) = one partial shot.
  ClipRef ref = MakeClipRef(layout, 0, 3, 250);
  EXPECT_EQ(ref.frames, (Interval{240, 250}));
  ASSERT_EQ(ref.shots.size(), 1u);
  EXPECT_EQ(ref.shots[0].frames, (Interval{240, 250}));
  EXPECT_EQ(ref.shots[0].shot, 15);
}

}  // namespace
}  // namespace svq::video
