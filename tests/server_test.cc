// Integration tests for the svqd serving layer: wire answers must match the
// in-process engine on the same snapshot, overload must produce clean
// kResourceExhausted rejections, client timeouts must surface as
// kDeadlineExceeded, and drain must flush responses before the server exits.
//
// Runs under `ctest -L tsan` (with -DSVQ_SANITIZE=thread) to prove the
// IO-thread / worker / stats locking discipline is race-free.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "svq/core/engine.h"
#include "svq/query/executor.h"
#include "svq/query/explain.h"
#include "svq/server/client.h"
#include "svq/server/server.h"
#include "svq/video/synthetic_video.h"

namespace svq::server {
namespace {

constexpr const char* kRankedStatement =
    "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS serving_0 PRODUCE "
    "clipID, obj USING ObjectDetector, act USING ActionRecognizer) "
    "WHERE act='smoking' AND obj.include('cup') "
    "ORDER BY RANK(act, obj) LIMIT 3";

constexpr const char* kStreamingStatement =
    "SELECT MERGE(clipID) FROM (PROCESS serving_0 PRODUCE clipID, obj USING "
    "ObjectDetector, act USING ActionRecognizer) "
    "WHERE act='smoking' AND obj.include('cup')";

std::shared_ptr<const video::SyntheticVideo> ServingVideo(int index) {
  video::SyntheticVideoSpec spec;
  spec.name = "serving_" + std::to_string(index);
  spec.num_frames = 36000;
  spec.seed = 9100 + static_cast<uint64_t>(index);
  spec.actions.push_back({"smoking", 350.0, 4500.0});
  video::SyntheticObjectSpec cup;
  cup.label = "cup";
  cup.correlate_with_action = "smoking";
  cup.correlation = 0.9;
  cup.coverage = 0.9;
  cup.mean_on_frames = 250.0;
  cup.mean_off_frames = 2600.0;
  spec.objects.push_back(cup);
  auto video = video::SyntheticVideo::Generate(spec);
  EXPECT_TRUE(video.ok());
  return *video;
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(const ServerOptions& options = {}) {
    ASSERT_TRUE(engine_.AddVideo(ServingVideo(0)).ok());
    ASSERT_TRUE(engine_.IngestAll().ok());
    server_ = std::make_unique<Server>(&engine_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_) server_->Shutdown();
  }

  Client Connected() {
    Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  core::VideoQueryEngine engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, RankedQueryMatchesInProcessExecution) {
  StartServer();
  // The reference answer, computed in-process on a pinned snapshot — the
  // same entry point the server itself uses.
  auto reference = query::ExecuteStatementOn(engine_.Pin(), kRankedStatement);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_TRUE(reference->topk.has_value());

  Client client = Connected();
  auto response = client.Execute(kRankedStatement);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->status.ok()) << response->status;
  EXPECT_TRUE(response->ranked);

  const auto& expected = reference->topk->sequences;
  ASSERT_EQ(response->sequences.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(response->sequences[i].begin, expected[i].clips.begin) << i;
    EXPECT_EQ(response->sequences[i].end, expected[i].clips.end) << i;
    EXPECT_DOUBLE_EQ(response->sequences[i].lower_bound,
                     expected[i].lower_bound)
        << i;
    EXPECT_DOUBLE_EQ(response->sequences[i].upper_bound,
                     expected[i].upper_bound)
        << i;
  }
  EXPECT_GE(response->metrics.server_exec_ms, 0.0);
}

TEST_F(ServerTest, ExplainVerbRoundTripsThePlan) {
  StartServer();
  Client client = Connected();
  auto response = client.Explain(kRankedStatement);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->status.ok()) << response->status;
  // The rendered plan carries the chosen algorithm and the per-operator
  // estimates over the wire, and it is identical to the in-process
  // rendering against the same catalog state.
  EXPECT_NE(response->text.find("Plan: algorithm="), std::string::npos);
  EXPECT_NE(response->text.find("cost-based auto selection"),
            std::string::npos);
  EXPECT_NE(response->text.find("est rows="), std::string::npos);
  EXPECT_NE(response->text.find("sweep (most selective first):"),
            std::string::npos);
  auto reference = query::ExplainStatementOn(engine_.Pin(), kRankedStatement);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(response->text, *reference);
}

TEST_F(ServerTest, ExplainAnalyzeExecutesAndRendersActuals) {
  StartServer();
  Client client = Connected();
  auto response = client.Explain(kRankedStatement, /*analyze=*/true);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->status.ok()) << response->status;
  EXPECT_NE(response->text.find("[ANALYZE]"), std::string::npos);
  EXPECT_NE(response->text.find("actual rows="), std::string::npos);
  EXPECT_NE(response->text.find("candidates: actual "), std::string::npos);
}

TEST_F(ServerTest, ExplainParseErrorsTravelAsExplainStatus) {
  StartServer();
  Client client = Connected();
  auto response = client.Explain("EXPLAIN garbage");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response->status.ok());
  // The connection survives the failed EXPLAIN.
  auto again = client.Explain(kRankedStatement);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->status.ok());
}

TEST_F(ServerTest, StreamingQueryMatchesInProcessExecution) {
  StartServer();
  auto reference =
      query::ExecuteStatementOn(engine_.Pin(), kStreamingStatement);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_TRUE(reference->online.has_value());

  Client client = Connected();
  auto response = client.Execute(kStreamingStatement);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->status.ok()) << response->status;
  EXPECT_FALSE(response->ranked);

  const auto intervals = reference->online->sequences.intervals();
  ASSERT_EQ(response->sequences.size(), intervals.size());
  for (size_t i = 0; i < intervals.size(); ++i) {
    EXPECT_EQ(response->sequences[i].begin, intervals[i].begin) << i;
    EXPECT_EQ(response->sequences[i].end, intervals[i].end) << i;
  }
}

TEST_F(ServerTest, ConcurrentClientsAllGetTheReferenceAnswer) {
  ServerOptions options;
  options.max_in_flight = 2;
  StartServer(options);
  auto reference = query::ExecuteStatementOn(engine_.Pin(), kRankedStatement);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const auto& expected = reference->topk->sequences;

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> matches{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&]() {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) return;
      auto response = client.Execute(kRankedStatement);
      if (!response.ok() || !response->status.ok()) return;
      if (response->sequences.size() != expected.size()) return;
      for (size_t j = 0; j < expected.size(); ++j) {
        if (response->sequences[j].begin != expected[j].clips.begin) return;
        if (response->sequences[j].end != expected[j].clips.end) return;
      }
      matches.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(matches.load(), kClients);
}

TEST_F(ServerTest, OverloadBurstGetsCleanRejections) {
  ServerOptions options;
  options.max_in_flight = 1;
  options.max_queue = 1;
  StartServer(options);

  // Eight simultaneous requests against capacity 1 executing + 1 queued:
  // at least one must be turned away at admission, every request must get
  // a well-formed response, and nothing may fail for any other reason.
  constexpr int kClients = 8;
  std::atomic<int> ok{0}, rejected{0}, other{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&]() {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        other.fetch_add(1);
        return;
      }
      auto response = client.Execute(kRankedStatement);
      if (!response.ok()) {
        other.fetch_add(1);
      } else if (response->status.ok()) {
        ok.fetch_add(1);
      } else if (response->status.IsResourceExhausted()) {
        rejected.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok.load() + rejected.load(), kClients);
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(rejected.load(), 1);
  EXPECT_EQ(other.load(), 0);

  const ServerStatsWire stats = server_->Stats();
  EXPECT_EQ(stats.queries_rejected, rejected.load());
  EXPECT_EQ(stats.queries_ok, ok.load());
}

TEST_F(ServerTest, ClientTimeoutSurfacesAsDeadlineExceeded) {
  ServerOptions options;
  options.max_in_flight = 1;
  StartServer(options);

  // The streaming path pays real per-clip work — milliseconds of wall time
  // over this fixture — and the engine polls the ExecutionContext at the
  // top of every clip, so a 1 ms budget expires mid-query deterministically
  // and the server cancels it rather than running to completion. (The
  // ranked path resolves in microseconds here, too fast to time out.)
  Client client = Connected();
  auto response = client.Execute(kStreamingStatement, /*timeout_ms=*/1);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.IsDeadlineExceeded()) << response->status;
  EXPECT_EQ(server_->Stats().queries_deadline_exceeded, 1);
  EXPECT_EQ(server_->Stats().queries_ok, 0);
}

TEST_F(ServerTest, StatsVerbReportsCounters) {
  StartServer();
  Client client = Connected();
  auto response = client.Execute(kRankedStatement);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->status.ok());

  auto stats = client.GetStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->queries_accepted, 1);
  EXPECT_EQ(stats->queries_ok, 1);
  EXPECT_EQ(stats->queries_rejected, 0);
  EXPECT_EQ(stats->stats_requests, 1);
  EXPECT_EQ(stats->connections_open, 1);
  EXPECT_EQ(stats->query_latency.count, 1);
  EXPECT_GT(stats->query_latency.PercentileMicros(0.5), 0.0);
}

TEST_F(ServerTest, StatsVerbRoundTripsRegistryCounters) {
  StartServer();
  Client client = Connected();
  auto response = client.Execute(kRankedStatement);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->status.ok());

  auto stats = client.GetStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_FALSE(stats->registry.empty());

  const auto find = [&](const std::string& name) -> double {
    for (const auto& [key, value] : stats->registry) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "registry entry missing: " << name;
    return -1.0;
  };

  // The wire registry must agree with the legacy counters in the same
  // response — one source of truth, two encodings.
  EXPECT_DOUBLE_EQ(find("svqd_queries_accepted_total"),
                   static_cast<double>(stats->queries_accepted));
  EXPECT_DOUBLE_EQ(find("svqd_queries_ok_total"),
                   static_cast<double>(stats->queries_ok));
  EXPECT_DOUBLE_EQ(find("svqd_query_latency_micros_count"),
                   static_cast<double>(stats->query_latency.count));
  EXPECT_GT(find("svqd_query_latency_micros_sum_micros"), 0.0);
  // The ranked query executed, so the per-phase trace spans fed the phase
  // histograms and the engine aggregates saw storage traffic. Which access
  // class depends on the planner's algorithm choice (RVAQ drives sorted
  // cursors, Pq-Traverse reads sequentially), so assert on the sum.
  EXPECT_DOUBLE_EQ(find("svqd_phase_parse_micros_count"), 1.0);
  EXPECT_DOUBLE_EQ(find("svqd_phase_execute_micros_count"), 1.0);
  EXPECT_GT(find("svq_storage_sorted_accesses_total") +
                find("svq_storage_random_accesses_total") +
                find("svq_storage_sequential_reads_total"),
            0.0);

  // And the snapshot the wire carried matches the server's in-process
  // registry for monotone counters that cannot have moved since.
  const auto in_process = server_->Metrics().Flatten();
  const auto in_process_find = [&](const std::string& name) -> double {
    for (const auto& [key, value] : in_process) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "in-process registry entry missing: " << name;
    return -1.0;
  };
  for (const char* name :
       {"svqd_queries_accepted_total", "svqd_queries_ok_total",
        "svqd_query_latency_micros_count",
        "svq_storage_sorted_accesses_total"}) {
    EXPECT_DOUBLE_EQ(find(name), in_process_find(name)) << name;
  }
}

TEST_F(ServerTest, BadStatementReturnsErrorNotDisconnect) {
  StartServer();
  Client client = Connected();
  auto response = client.Execute("SELECT FROM WHERE nonsense((");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response->status.ok());
  // The connection survives a statement-level error.
  auto retry = client.Execute(kRankedStatement);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_TRUE(retry->status.ok()) << retry->status;
}

TEST_F(ServerTest, MalformedFrameClosesConnectionCleanly) {
  StartServer();
  // Speak raw TCP: a frame with a bogus wire version must not crash the
  // server; it answers with an error response and closes the connection.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const unsigned char bad[] = {2, 0, 0, 0, /*version=*/9, /*type=*/1};
  ASSERT_EQ(::send(fd, bad, sizeof(bad), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(bad)));
  // Read until EOF; the server flushes its error response first.
  std::string received;
  char buffer[256];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    received.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_GT(received.size(), kFrameHeaderBytes);

  // And the server is still healthy for well-formed clients.
  Client client = Connected();
  auto response = client.Execute(kStreamingStatement);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.ok()) << response->status;
}

TEST_F(ServerTest, ShutdownDrainsInFlightQueries) {
  StartServer();
  std::atomic<bool> got_ok{false};
  std::thread inflight([&]() {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    auto response = client.Execute(kRankedStatement);
    if (response.ok() && response->status.ok()) got_ok.store(true);
  });
  // Only start draining once the query is admitted, so this exercises the
  // drain path rather than the draining-rejects-new-work path.
  while (server_->Stats().queries_accepted == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server_->Shutdown();
  inflight.join();
  EXPECT_TRUE(got_ok.load());

  // After drain, new connections are refused or dropped without an answer.
  Client late;
  if (late.Connect("127.0.0.1", server_->port()).ok()) {
    auto response = late.Execute(kStreamingStatement);
    EXPECT_FALSE(response.ok() && response->status.ok());
  }
}

TEST_F(ServerTest, DrainingServerRejectsQueuedBacklog) {
  ServerOptions options;
  options.max_in_flight = 1;
  options.max_queue = 8;
  StartServer(options);

  std::atomic<int> ok{0}, cancelled{0};
  std::thread slow([&]() {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    auto response = client.Execute(kRankedStatement);
    if (response.ok() && response->status.ok()) ok.fetch_add(1);
  });
  while (true) {
    const ServerStatsWire stats = server_->Stats();
    if (stats.in_flight > 0 || stats.queries_ok > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Queue one more behind the in-flight query, then shut down: the backlog
  // entry must receive an explicit Cancelled response, not silence.
  std::thread queued([&]() {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    auto response = client.Execute(kRankedStatement);
    if (response.ok() && response->status.IsCancelled()) cancelled.fetch_add(1);
    if (response.ok() && response->status.ok()) ok.fetch_add(1);
  });
  while (server_->Stats().queue_depth == 0 &&
         server_->Stats().queries_accepted < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server_->Shutdown(std::chrono::milliseconds(0));
  slow.join();
  queued.join();
  // The queued query either got cancelled by the zero-budget drain or (if
  // the worker was quick enough to pick it up) completed; both are clean.
  EXPECT_EQ(ok.load() + cancelled.load(), 2);
}

TEST_F(ServerTest, SubscribeFeedEventRoundTripMatchesOracle) {
  StartServer();
  // The serial reference: the same statement through the batch QUERY path.
  auto reference =
      query::ExecuteStatementOn(engine_.Pin(), kStreamingStatement);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const auto oracle = reference->online->sequences.intervals();
  ASSERT_FALSE(oracle.empty());

  Client client = Connected();
  auto subscribed = client.Subscribe(/*feed=*/"", kStreamingStatement);
  ASSERT_TRUE(subscribed.ok()) << subscribed.status();
  ASSERT_TRUE(subscribed->status.ok()) << subscribed->status;
  EXPECT_GT(subscribed->subscription_id, 0u);
  // An empty feed name resolves to the statement's FROM video.
  EXPECT_EQ(subscribed->feed, "serving_0");

  // Drive the feed to exhaustion; pushed EVENT frames interleave with the
  // FEED responses and land in the client's stash.
  int64_t total_dispatched = 0;
  bool closed = false;
  while (!closed) {
    auto fed = client.FeedClips(subscribed->feed, 64);
    ASSERT_TRUE(fed.ok()) << fed.status();
    ASSERT_TRUE(fed->status.ok()) << fed->status;
    total_dispatched += fed->clips_dispatched;
    closed = fed->feed_closed;
  }
  EXPECT_EQ(total_dispatched, ServingVideo(0)->NumClips());

  // Unsubscribe flushes every remaining event ahead of its ack, so the
  // stash now holds the subscription's complete story.
  auto unsubscribed = client.Unsubscribe(subscribed->subscription_id);
  ASSERT_TRUE(unsubscribed.ok()) << unsubscribed.status();
  ASSERT_TRUE(unsubscribed->status.ok()) << unsubscribed->status;

  std::vector<EventFrame> events;
  while (client.stashed_events() > 0) {
    auto event = client.NextEvent();
    ASSERT_TRUE(event.ok()) << event.status();
    EXPECT_EQ(event->subscription_id, subscribed->subscription_id);
    events.push_back(*event);
  }
  ASSERT_EQ(events.size(), oracle.size() + 1);
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(events[i].kind, 1) << i;
    EXPECT_EQ(events[i].begin, oracle[i].begin) << i;
    EXPECT_EQ(events[i].end, oracle[i].end) << i;
  }
  EXPECT_EQ(events.back().kind, 3);  // end of stream

  // The streaming counters crossed the metrics bridge.
  const auto registry = server_->Metrics().Flatten();
  const auto find = [&](const std::string& name) -> double {
    for (const auto& [key, value] : registry) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "registry entry missing: " << name;
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(find("svq_stream_subscriptions_total"), 1.0);
  EXPECT_DOUBLE_EQ(find("svq_stream_subscriptions_active"), 0.0);
  EXPECT_DOUBLE_EQ(find("svq_stream_clips_dispatched_total"),
                   static_cast<double>(total_dispatched));
  EXPECT_GT(find("svq_stream_events_pushed_total"),
            static_cast<double>(oracle.size()) - 0.5);
  EXPECT_GT(find("svq_stream_model_units_run_total"), 0.0);
  EXPECT_DOUBLE_EQ(find("svqd_subscribe_requests_total"), 1.0);
  EXPECT_DOUBLE_EQ(find("svqd_unsubscribe_requests_total"), 1.0);
}

TEST_F(ServerTest, SubscribeRejectsBadRequestsButKeepsConnection) {
  StartServer();
  Client client = Connected();
  // Ranked statements belong on the QUERY verb.
  auto ranked = client.Subscribe("", kRankedStatement);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  EXPECT_TRUE(ranked->status.IsInvalidArgument()) << ranked->status;
  // Mode bytes beyond SVAQD are refused.
  auto bad_mode = client.Subscribe("", kStreamingStatement, /*mode=*/7);
  ASSERT_TRUE(bad_mode.ok()) << bad_mode.status();
  EXPECT_TRUE(bad_mode->status.IsInvalidArgument()) << bad_mode->status;
  // Feeding an unknown feed and unsubscribing an unknown id are clean
  // NotFounds, and the connection survives all of it.
  auto fed = client.FeedClips("no_such_feed", 1);
  ASSERT_TRUE(fed.ok()) << fed.status();
  EXPECT_TRUE(fed->status.IsNotFound()) << fed->status;
  auto unsub = client.Unsubscribe(424242);
  ASSERT_TRUE(unsub.ok()) << unsub.status();
  EXPECT_TRUE(unsub->status.IsNotFound()) << unsub->status;
  auto response = client.Execute(kStreamingStatement);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.ok()) << response->status;
}

TEST_F(ServerTest, UnsubscribeIsScopedToTheOwningConnection) {
  StartServer();
  Client owner = Connected();
  auto subscribed = owner.Subscribe("", kStreamingStatement);
  ASSERT_TRUE(subscribed.ok()) << subscribed.status();
  ASSERT_TRUE(subscribed->status.ok()) << subscribed->status;

  // Another connection cannot tear down (or even probe) the subscription.
  Client intruder = Connected();
  auto stolen = intruder.Unsubscribe(subscribed->subscription_id);
  ASSERT_TRUE(stolen.ok()) << stolen.status();
  EXPECT_TRUE(stolen->status.IsNotFound()) << stolen->status;

  auto mine = owner.Unsubscribe(subscribed->subscription_id);
  ASSERT_TRUE(mine.ok()) << mine.status();
  EXPECT_TRUE(mine->status.ok()) << mine->status;
}

TEST_F(ServerTest, DisconnectCancelsStandingSubscriptions) {
  StartServer();
  {
    Client client = Connected();
    auto subscribed = client.Subscribe("", kStreamingStatement);
    ASSERT_TRUE(subscribed.ok()) << subscribed.status();
    ASSERT_TRUE(subscribed->status.ok()) << subscribed->status;
    const auto registry = server_->Metrics().Flatten();
    for (const auto& [key, value] : registry) {
      if (key == "svq_stream_subscriptions_active") {
        EXPECT_DOUBLE_EQ(value, 1.0);
      }
    }
  }  // client destructor closes the socket
  // The IO thread reaps the connection and cancels its subscriptions; the
  // active gauge must return to zero.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  double active = 1.0;
  while (std::chrono::steady_clock::now() < deadline) {
    active = -1.0;
    for (const auto& [key, value] : server_->Metrics().Flatten()) {
      if (key == "svq_stream_subscriptions_active") active = value;
    }
    if (active == 0.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_DOUBLE_EQ(active, 0.0);
}

}  // namespace
}  // namespace svq::server
