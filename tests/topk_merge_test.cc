// The shared top-K merge (svq/core/topk_merge.h) was extracted from the
// repository fan-out so the cluster router's cross-shard gather and the
// in-process fan-out rank results identically. These tests pin that
// refactor: MergeRepositoryTopK must be bit-identical to the merge the
// repository used before extraction, on ties, on NaN-free score ladders,
// and on k edge cases.

#include "svq/core/topk_merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace svq::core {
namespace {

/// The repository's pre-extraction merge, reproduced verbatim: sort by
/// lower bound descending, ties by video id then clip begin, then clamp
/// to k. The tests below assert element-wise equality against it.
void LegacyRepositoryMerge(std::vector<RepositoryEntry>* sequences, int k) {
  std::sort(sequences->begin(), sequences->end(),
            [](const RepositoryEntry& a, const RepositoryEntry& b) {
              if (a.sequence.lower_bound != b.sequence.lower_bound) {
                return a.sequence.lower_bound > b.sequence.lower_bound;
              }
              if (a.video_id != b.video_id) return a.video_id < b.video_id;
              return a.sequence.clips.begin < b.sequence.clips.begin;
            });
  if (sequences->size() > static_cast<size_t>(k)) {
    sequences->resize(static_cast<size_t>(k));
  }
}

RepositoryEntry Entry(video::VideoId id, int64_t begin, double score) {
  RepositoryEntry entry;
  entry.video_id = id;
  entry.video_name = "video_" + std::to_string(id);
  entry.sequence.clips = {begin, begin + 4};
  entry.sequence.lower_bound = score;
  entry.sequence.upper_bound = score + 0.25;
  return entry;
}

void ExpectIdentical(const std::vector<RepositoryEntry>& got,
                     const std::vector<RepositoryEntry>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].video_id, want[i].video_id) << i;
    EXPECT_EQ(got[i].video_name, want[i].video_name) << i;
    EXPECT_EQ(got[i].sequence.clips.begin, want[i].sequence.clips.begin)
        << i;
    EXPECT_EQ(got[i].sequence.clips.end, want[i].sequence.clips.end) << i;
    // Bit-identical, not approximately equal: the merge must not touch the
    // certified bounds.
    EXPECT_DOUBLE_EQ(got[i].sequence.lower_bound,
                     want[i].sequence.lower_bound)
        << i;
    EXPECT_DOUBLE_EQ(got[i].sequence.upper_bound,
                     want[i].sequence.upper_bound)
        << i;
  }
}

TEST(TopKMergeTest, MatchesLegacyMergeOnTies) {
  // Equal scores across videos and within one video: the tie ladder
  // (video id, then clip begin) must come out exactly as before.
  std::vector<RepositoryEntry> entries = {
      Entry(2, 100, 0.5), Entry(1, 300, 0.5), Entry(1, 100, 0.5),
      Entry(3, 0, 0.5),   Entry(2, 50, 0.5),  Entry(1, 200, 0.9),
  };
  std::vector<RepositoryEntry> legacy = entries;
  LegacyRepositoryMerge(&legacy, 4);
  MergeRepositoryTopK(&entries, 4);
  ExpectIdentical(entries, legacy);
  EXPECT_DOUBLE_EQ(entries[0].sequence.lower_bound, 0.9);
}

TEST(TopKMergeTest, MatchesLegacyMergeOnRandomInputs) {
  // A seeded sweep over sizes and k values, with deliberately few distinct
  // scores so ties are common.
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<int> video(1, 5);
  std::uniform_int_distribution<int64_t> begin(0, 40);
  std::uniform_int_distribution<int> score(0, 3);
  for (int size = 0; size <= 48; size += 3) {
    for (int k : {1, 2, 7, 48, 100}) {
      std::vector<RepositoryEntry> entries;
      entries.reserve(static_cast<size_t>(size));
      for (int i = 0; i < size; ++i) {
        entries.push_back(Entry(static_cast<video::VideoId>(video(rng)),
                                begin(rng), score(rng) * 0.25));
      }
      std::vector<RepositoryEntry> legacy = entries;
      LegacyRepositoryMerge(&legacy, k);
      MergeRepositoryTopK(&entries, k);
      ExpectIdentical(entries, legacy);
    }
  }
}

TEST(TopKMergeTest, KLargerThanInputKeepsEverything) {
  std::vector<RepositoryEntry> entries = {Entry(1, 0, 0.1),
                                          Entry(2, 0, 0.7)};
  MergeRepositoryTopK(&entries, 10);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].video_id, 2);
  EXPECT_EQ(entries[1].video_id, 1);
}

TEST(TopKMergeTest, NegativeKIsUnbounded) {
  std::vector<RepositoryEntry> entries = {
      Entry(1, 0, 0.1), Entry(2, 0, 0.7), Entry(3, 0, 0.4)};
  SortedTopKMerge(
      &entries, -1,
      [](const RepositoryEntry& e) { return e.sequence.lower_bound; },
      [](const RepositoryEntry& a, const RepositoryEntry& b) {
        return a.video_id < b.video_id;
      });
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].video_id, 2);
  EXPECT_EQ(entries[2].video_id, 1);
}

TEST(TopKMergeTest, CallerTieBreakDecidesEqualScores) {
  // The router merges gathered shard results with a (shard, rank) tie
  // break; this pins that SortedTopKMerge actually honors the caller's
  // comparator instead of an internal default.
  struct Tagged {
    int shard;
    int rank;
    double score;
  };
  std::vector<Tagged> entries = {
      {1, 0, 0.5}, {0, 1, 0.5}, {0, 0, 0.5}, {1, 1, 0.8}};
  SortedTopKMerge(
      &entries, 3, [](const Tagged& e) { return e.score; },
      [](const Tagged& a, const Tagged& b) {
        if (a.shard != b.shard) return a.shard < b.shard;
        return a.rank < b.rank;
      });
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].shard, 1);
  EXPECT_EQ(entries[0].rank, 1);
  EXPECT_EQ(entries[1].shard, 0);
  EXPECT_EQ(entries[1].rank, 0);
  EXPECT_EQ(entries[2].shard, 0);
  EXPECT_EQ(entries[2].rank, 1);
}

}  // namespace
}  // namespace svq::core
