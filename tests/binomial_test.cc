#include "svq/stats/binomial.h"

#include <gtest/gtest.h>

#include <cmath>

namespace svq::stats {
namespace {

TEST(BinomialTest, PmfMatchesHandComputed) {
  // Binomial(4, 0.5): pmf = {1,4,6,4,1}/16.
  EXPECT_NEAR(BinomialPmf(0, 4, 0.5), 1.0 / 16, 1e-12);
  EXPECT_NEAR(BinomialPmf(1, 4, 0.5), 4.0 / 16, 1e-12);
  EXPECT_NEAR(BinomialPmf(2, 4, 0.5), 6.0 / 16, 1e-12);
  EXPECT_NEAR(BinomialPmf(4, 4, 0.5), 1.0 / 16, 1e-12);
}

TEST(BinomialTest, PmfOutsideSupportIsZero) {
  EXPECT_EQ(BinomialPmf(-1, 10, 0.3), 0.0);
  EXPECT_EQ(BinomialPmf(11, 10, 0.3), 0.0);
}

TEST(BinomialTest, PmfDegenerateP) {
  EXPECT_EQ(BinomialPmf(0, 5, 0.0), 1.0);
  EXPECT_EQ(BinomialPmf(1, 5, 0.0), 0.0);
  EXPECT_EQ(BinomialPmf(5, 5, 1.0), 1.0);
  EXPECT_EQ(BinomialPmf(4, 5, 1.0), 0.0);
}

TEST(BinomialTest, PmfSumsToOne) {
  for (const double p : {0.01, 0.3, 0.77}) {
    for (const int n : {1, 7, 40}) {
      double total = 0.0;
      for (int k = 0; k <= n; ++k) total += BinomialPmf(k, n, p);
      EXPECT_NEAR(total, 1.0, 1e-10) << "n=" << n << " p=" << p;
    }
  }
}

TEST(BinomialTest, CdfEdges) {
  EXPECT_EQ(BinomialCdf(-1, 10, 0.4), 0.0);
  EXPECT_EQ(BinomialCdf(10, 10, 0.4), 1.0);
  EXPECT_EQ(BinomialCdf(25, 10, 0.4), 1.0);
}

TEST(BinomialTest, CdfMatchesPmfSum) {
  const int n = 30;
  const double p = 0.15;
  double running = 0.0;
  for (int k = 0; k < n; ++k) {
    running += BinomialPmf(k, n, p);
    EXPECT_NEAR(BinomialCdf(k, n, p), running, 1e-10) << "k=" << k;
  }
}

TEST(BinomialTest, SfComplementsCdf) {
  const int n = 50;
  const double p = 0.2;
  for (int k = 0; k <= n; ++k) {
    EXPECT_NEAR(BinomialSf(k, n, p) + BinomialCdf(k - 1, n, p), 1.0, 1e-10);
  }
}

TEST(BinomialTest, SfAccurateInDeepTail) {
  // P(X >= 20) for Binomial(20, 0.1) = 0.1^20 = 1e-20: the complement
  // formula would lose all precision.
  EXPECT_NEAR(BinomialSf(20, 20, 0.1) / 1e-20, 1.0, 1e-6);
}

TEST(BinomialTest, LogCoefficientMatchesSmallCases) {
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(10, 5)), 252.0, 1e-6);
  EXPECT_EQ(LogBinomialCoefficient(3, 5),
            -std::numeric_limits<double>::infinity());
}

TEST(BinomialTest, LargeNStable) {
  // Mean-region pmf of a large binomial stays finite and sane.
  const double pmf = BinomialPmf(5000, 10000, 0.5);
  EXPECT_GT(pmf, 0.005);
  EXPECT_LT(pmf, 0.01);
  EXPECT_NEAR(BinomialCdf(5000, 10000, 0.5), 0.5, 0.01);
}

}  // namespace
}  // namespace svq::stats
