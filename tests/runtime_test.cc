#include "svq/runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace svq::runtime {
namespace {

TEST(ThreadPoolTest, LifecycleAcrossSizes) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
  }
  // Non-positive sizes clamp to a single worker instead of failing.
  ThreadPool clamped(0);
  EXPECT_EQ(clamped.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(pool.Counters().tasks_executed, 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    for (int64_t grain : {1, 3, 7, 100}) {
      ThreadPool pool(threads);
      constexpr int64_t kN = 257;
      std::vector<std::atomic<int>> hits(kN);
      pool.ParallelFor(0, kN, grain, [&](int64_t begin, int64_t end) {
        ASSERT_LT(begin, end);
        for (int64_t i = begin; i < end; ++i) {
          hits[static_cast<size_t>(i)].fetch_add(1);
        }
      });
      for (int64_t i = 0; i < kN; ++i) {
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
            << "threads=" << threads << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, GrainLargerThanRangeRunsOneTask) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(10, 14, 1000, [&](int64_t begin, int64_t end) {
    EXPECT_EQ(begin, 10);
    EXPECT_EQ(end, 14);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(pool.Counters().tasks_executed, 1);
}

TEST(ThreadPoolTest, AutoGrainCoversRange) {
  ThreadPool pool(4);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, /*grain=*/0, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](int64_t begin, int64_t) {
                         if (begin == 42) {
                           throw std::runtime_error("chunk 42 failed");
                         }
                       }),
      std::runtime_error);
  // The pool must have quiesced and still accept work.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 10, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, NestedSubmitRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  std::atomic<int> nested_inline{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t begin, int64_t end) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    for (int64_t outer = begin; outer < end; ++outer) {
      // A worker resubmitting to its own pool must not deadlock: the
      // nested loop executes inline on this worker.
      pool.ParallelFor(outer * 8, (outer + 1) * 8, 1,
                       [&](int64_t b, int64_t e) {
                         ++nested_inline;
                         for (int64_t i = b; i < e; ++i) {
                           hits[static_cast<size_t>(i)].fetch_add(1);
                         }
                       });
    }
  });
  EXPECT_EQ(nested_inline.load(), 64);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, CountersTrackTasksAndReset) {
  ThreadPool pool(2);
  pool.ParallelFor(0, 10, 2, [](int64_t, int64_t) {});
  RuntimeStats stats = pool.Counters();
  EXPECT_EQ(stats.threads_used, 2);
  // Each task covers between 1 and grain(2) items, so 10 items need
  // between 5 and 10 tasks (the exact split depends on stealing).
  EXPECT_GE(stats.tasks_executed, 5);
  EXPECT_LE(stats.tasks_executed, 10);
  EXPECT_GE(stats.steals, 0);
  EXPECT_GE(stats.fanout_ms, 0.0);
  pool.ResetCounters();
  EXPECT_EQ(pool.Counters().tasks_executed, 0);
}

TEST(ThreadPoolTest, ManySmallRegionsOnLargePool) {
  // Exercises job-epoch signaling: back-to-back regions must not lose
  // wakeups or leave workers behind.
  ThreadPool pool(8);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(0, 16, 1, [&](int64_t begin, int64_t end) {
      total += end - begin;
    });
  }
  EXPECT_EQ(total.load(), 50 * 16);
}

TEST(ParallelForHelperTest, NullPoolRunsSequentially) {
  std::vector<int> hits(20, 0);
  ParallelFor(nullptr, 0, 20, 6, [&](int64_t begin, int64_t end) {
    EXPECT_FALSE(ThreadPool::InParallelRegion());
    for (int64_t i = begin; i < end; ++i) hits[static_cast<size_t>(i)]++;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 20);
}

TEST(RuntimeOptionsTest, ResolvedThreads) {
  RuntimeOptions options;
  EXPECT_EQ(options.ResolvedThreads(), 1);
  options.num_threads = 6;
  EXPECT_EQ(options.ResolvedThreads(), 6);
  options.num_threads = -2;
  EXPECT_EQ(options.ResolvedThreads(), 1);
  options.num_threads = 0;  // hardware concurrency, at least one
  EXPECT_GE(options.ResolvedThreads(), 1);
}

TEST(RuntimeStatsTest, MergeAggregatesEveryField) {
  RuntimeStats a;
  a.threads_used = 2;
  a.tasks_executed = 10;
  a.steals = 1;
  a.fanout_ms = 1.5;
  RuntimeStats b;
  b.threads_used = 8;
  b.tasks_executed = 5;
  b.steals = 2;
  b.fanout_ms = 0.5;
  a.Merge(b);
  EXPECT_EQ(a.threads_used, 8);
  EXPECT_EQ(a.tasks_executed, 15);
  EXPECT_EQ(a.steals, 3);
  EXPECT_DOUBLE_EQ(a.fanout_ms, 2.0);
}

}  // namespace
}  // namespace svq::runtime
