#include "svq/stats/kernel_estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "svq/common/rng.h"

namespace svq::stats {
namespace {

KernelRateEstimator Make(double bandwidth, double initial_p,
                         int64_t warmup = 0) {
  KernelRateEstimator::Options options;
  options.bandwidth = bandwidth;
  options.initial_p = initial_p;
  options.warmup_ous = warmup;
  auto result = KernelRateEstimator::Create(options);
  EXPECT_TRUE(result.ok());
  return *std::move(result);
}

TEST(KernelEstimatorTest, ValidatesOptions) {
  KernelRateEstimator::Options bad;
  bad.bandwidth = 0.0;
  EXPECT_FALSE(KernelRateEstimator::Create(bad).ok());
  bad.bandwidth = 10.0;
  bad.initial_p = 1.5;
  EXPECT_FALSE(KernelRateEstimator::Create(bad).ok());
  bad.initial_p = 0.1;
  bad.warmup_ous = -1;
  EXPECT_FALSE(KernelRateEstimator::Create(bad).ok());
}

TEST(KernelEstimatorTest, ReportsInitialBeforeData) {
  auto est = Make(100.0, 0.0123);
  EXPECT_DOUBLE_EQ(est.rate(), 0.0123);
}

TEST(KernelEstimatorTest, UnbiasedOnConstantStream) {
  // E[rate] = p for an i.i.d. Bernoulli(p) stream (the paper's
  // unbiasedness claim for Eq. 6 with constant background probability).
  const double p = 0.07;
  Rng rng(31337);
  double sum = 0.0;
  const int replicas = 40;
  for (int r = 0; r < replicas; ++r) {
    auto est = Make(200.0, 0.5);
    for (int t = 0; t < 4000; ++t) est.Step(rng.NextBernoulli(p));
    sum += est.rate();
  }
  EXPECT_NEAR(sum / replicas, p, 0.01);
}

TEST(KernelEstimatorTest, AllEventsConvergesToOne) {
  auto est = Make(64.0, 0.0);
  for (int t = 0; t < 2000; ++t) est.Step(true);
  EXPECT_NEAR(est.rate(), 1.0, 1e-6);
}

TEST(KernelEstimatorTest, NoEventsConvergesToZero) {
  auto est = Make(64.0, 0.9);
  for (int t = 0; t < 2000; ++t) est.Step(false);
  EXPECT_NEAR(est.rate(), 0.0, 1e-6);
}

TEST(KernelEstimatorTest, AdaptsToLevelShift) {
  // Concept drift: the rate jumps from 0.01 to 0.2; the estimate follows
  // within a few bandwidths.
  Rng rng(99);
  auto est = Make(256.0, 0.01);
  for (int t = 0; t < 5000; ++t) est.Step(rng.NextBernoulli(0.01));
  EXPECT_NEAR(est.rate(), 0.01, 0.01);
  for (int t = 0; t < 5000; ++t) est.Step(rng.NextBernoulli(0.2));
  EXPECT_NEAR(est.rate(), 0.2, 0.05);
}

TEST(KernelEstimatorTest, ForgetsInitialValue) {
  // SVAQD's key property (paper Fig. 2): two estimators with wildly
  // different priors agree after seeing the same data.
  Rng rng(17);
  auto low = Make(128.0, 1e-6);
  auto high = Make(128.0, 0.5);
  for (int t = 0; t < 3000; ++t) {
    const bool event = rng.NextBernoulli(0.05);
    low.Step(event);
    high.Step(event);
  }
  EXPECT_NEAR(low.rate(), high.rate(), 1e-9);
}

TEST(KernelEstimatorTest, WarmupBlendsPrior) {
  auto est = Make(1000.0, 0.5, /*warmup=*/1000);
  // A short all-zero prefix: with warmup, the estimate stays near the
  // prior early on instead of collapsing to zero.
  for (int t = 0; t < 10; ++t) est.Step(false);
  EXPECT_GT(est.rate(), 0.45);
}

TEST(KernelEstimatorTest, AdvanceEqualsStepsWithoutEvents) {
  auto a = Make(50.0, 0.1);
  auto b = Make(50.0, 0.1);
  a.Step(true);
  b.Step(true);
  for (int i = 0; i < 25; ++i) a.Step(false);
  b.Advance(25);
  EXPECT_NEAR(a.rate(), b.rate(), 1e-12);
  EXPECT_EQ(a.total_ous(), b.total_ous());
}

TEST(KernelEstimatorTest, CountsEventsAndUnits) {
  auto est = Make(10.0, 0.1);
  est.Step(true);
  est.Step(false);
  est.Step(true);
  EXPECT_EQ(est.total_ous(), 3);
  EXPECT_EQ(est.total_events(), 2);
}

TEST(KernelEstimatorTest, RateStaysInUnitInterval) {
  auto est = Make(4.0, 0.5);
  for (int t = 0; t < 100; ++t) {
    est.Step(true);
    EXPECT_GE(est.rate(), 0.0);
    EXPECT_LE(est.rate(), 1.0);
  }
}

TEST(KernelEstimatorTest, LongGapDecaysToZeroAndStaysFinite) {
  // A gap many orders of magnitude beyond the bandwidth underflows the raw
  // kernel sum to exact zero. That is the correct limit of Eq. 6 (all past
  // kernel mass has decayed away): the estimate must be exactly 0, finite,
  // and free of denormal residue.
  auto est = Make(64.0, 0.25);
  for (int t = 0; t < 500; ++t) est.Step(true);
  EXPECT_NEAR(est.rate(), 1.0, 1e-3);
  est.Advance(int64_t{1} << 40);  // ~1.7e10 bandwidths of silence
  EXPECT_TRUE(std::isfinite(est.rate()));
  EXPECT_DOUBLE_EQ(est.rate(), 0.0);
}

TEST(KernelEstimatorTest, RecoversUnbiasedAfterLongGap) {
  // Regression for the ISSUE-flagged edge case: after a gap >> bandwidth
  // the estimator must remain unbiased on fresh data — the truncated mass
  // in rate() saturates at 1, so the post-gap estimate matches a fresh
  // estimator fed the same stream to within the washed-out edge term.
  const double p = 0.07;
  Rng rng(4242);
  double gap_sum = 0.0;
  double fresh_sum = 0.0;
  const int replicas = 40;
  for (int r = 0; r < replicas; ++r) {
    auto gap = Make(200.0, 0.5);
    auto fresh = Make(200.0, 0.5);
    for (int t = 0; t < 2000; ++t) gap.Step(rng.NextBernoulli(0.9));
    gap.Advance(int64_t{1} << 40);
    for (int t = 0; t < 4000; ++t) {
      const bool event = rng.NextBernoulli(p);
      gap.Step(event);
      fresh.Step(event);
    }
    gap_sum += gap.rate();
    fresh_sum += fresh.rate();
  }
  EXPECT_NEAR(gap_sum / replicas, p, 0.01);
  EXPECT_NEAR(gap_sum / replicas, fresh_sum / replicas, 1e-3);
}

TEST(KernelEstimatorTest, TotalOusSaturatesInsteadOfOverflowing) {
  auto est = Make(8.0, 0.1);
  est.Step(true);
  est.Advance(std::numeric_limits<int64_t>::max() - 10);
  est.Advance(std::numeric_limits<int64_t>::max());  // would overflow t_
  EXPECT_EQ(est.total_ous(), std::numeric_limits<int64_t>::max());
  EXPECT_TRUE(std::isfinite(est.rate()));
  EXPECT_GE(est.rate(), 0.0);
  EXPECT_LE(est.rate(), 1.0);
  // Still usable after saturation: new events move the estimate.
  for (int t = 0; t < 500; ++t) est.Step(true);
  EXPECT_NEAR(est.rate(), 1.0, 1e-3);
}

}  // namespace
}  // namespace svq::stats
