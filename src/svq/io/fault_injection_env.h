#ifndef SVQ_IO_FAULT_INJECTION_ENV_H_
#define SVQ_IO_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "svq/io/env.h"

namespace svq::io {

/// An Env that forwards to a base Env but can fail on command — the test
/// harness behind the crash-consistency and fault-injection suites
/// (docs/storage.md). Three fault families:
///
///  - FailOp(i): the i-th mutating operation fails cleanly with IOError
///    and has no effect; every other operation succeeds. Sweeping i over
///    [0, ops) exercises failure at every syscall of a write protocol.
///  - ShortWrite(i, k): the i-th operation, if an Append, transfers only
///    its first k bytes to the underlying file and then fails — the
///    ENOSPC/quota torn-write case.
///  - CutAtOp(i) / CutAtByte(b): a simulated power cut. Everything before
///    the cut reaches the "disk" (the base env); the append in flight at a
///    byte cut is truncated at exactly that boundary; every operation at
///    or after the cut fails. The filesystem is left precisely as a
///    crashed machine would find it.
///
/// Mutating operations are counted in call order: NewWritableFile, Append,
/// Sync, RenameFile, SyncDir (Close and RemoveFile are free). A dry run
/// with no fault armed measures ops_seen()/bytes_appended() so sweeps know
/// their bounds. Thread-safe; sweeps that need a deterministic op order
/// should drive single-threaded writers.
class FaultInjectionEnv final : public Env {
 public:
  /// `base` must outlive this env; nullptr means Env::Default().
  explicit FaultInjectionEnv(Env* base = nullptr);

  // --- fault plan (clears any previously armed fault) ---
  void FailOp(int64_t op_index);
  void ShortWrite(int64_t op_index, uint64_t bytes);
  void CutAtOp(int64_t op_index);
  void CutAtByte(uint64_t byte_offset);
  /// Disarms every fault and zeroes the counters.
  void Reset();

  // --- observation ---
  int64_t ops_seen() const;
  uint64_t bytes_appended() const;
  /// True once an armed fault has fired (at most once per plan).
  bool fault_fired() const;

  // --- Env ---
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Result<uint64_t> FileSize(const std::string& path) override;

 private:
  friend class FaultInjectionWritableFile;

  enum class FaultKind { kNone, kFailOp, kShortWrite, kCutAtOp, kCutAtByte };

  /// Charges one mutating op and decides its fate under `mu_`.
  /// Returns OK to proceed; IOError to fail. Sets *short_bytes (only
  /// meaningful for appends) to the byte allowance when the op must write
  /// a prefix and then fail; -1 means the full append proceeds.
  Status ChargeOp(uint64_t append_bytes, int64_t* short_bytes);
  void ChargeBytes(uint64_t n);

  Env* base_;

  mutable std::mutex mu_;
  FaultKind kind_ = FaultKind::kNone;
  int64_t fault_op_ = -1;
  uint64_t fault_bytes_ = 0;
  bool dead_ = false;         // power cut reached: everything fails
  bool fault_fired_ = false;
  int64_t ops_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace svq::io

#endif  // SVQ_IO_FAULT_INJECTION_ENV_H_
