#ifndef SVQ_IO_CRC32C_H_
#define SVQ_IO_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace svq::io {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78), the checksum used
/// by the storage footers (docs/storage.md). Software slice-by-8
/// implementation; no hardware dependency, identical output on every
/// platform.
///
/// `seed` is a previous Crc32c result, letting large payloads be checksummed
/// incrementally: `crc = Crc32c(b, n, crc)` chunk by chunk equals one call
/// over the concatenation.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace svq::io

#endif  // SVQ_IO_CRC32C_H_
