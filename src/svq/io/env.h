#ifndef SVQ_IO_ENV_H_
#define SVQ_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "svq/common/result.h"

namespace svq::io {

/// A file being written. Append either transfers every byte or returns an
/// error: implementations own the EINTR/partial-write retry loop, so a
/// short ::write is never surfaced as success.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` in full. Errors: IOError.
  virtual Status Append(std::string_view data) = 0;

  /// Flushes file contents and metadata to stable storage (fsync).
  virtual Status Sync() = 0;

  /// Closes the descriptor. Idempotent; the destructor closes too, but
  /// only an explicit Close reports the error.
  virtual Status Close() = 0;
};

/// The storage layer's view of the filesystem. Production code uses
/// Env::Default() (plain POSIX); tests substitute a FaultInjectionEnv to
/// exercise every failure path of the write protocol without real crashes.
/// Read paths access files directly — faults are injected where state is
/// mutated.
class Env {
 public:
  virtual ~Env() = default;

  /// Creates (or truncates) `path` for writing. Errors: IOError.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (rename(2)). Errors: IOError.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// Removes `path`; missing files are not an error (cleanup semantics).
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Fsyncs the directory so a completed rename survives a power cut.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Size of `path` in bytes. Errors: IOError.
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// The process-wide POSIX environment.
  static Env* Default();
};

/// Crash-safe whole-file replacement — the storage layer's only write
/// primitive (docs/storage.md):
///
///   1. write `data` to `path.tmp.<pid>` (full-write loop, EINTR retried)
///   2. fsync the temp file
///   3. rename it onto `path` (atomic: readers see old bytes or new bytes,
///      never a mixture)
///   4. fsync the containing directory so the rename itself is durable
///
/// On any failure the temp file is removed (best effort) and `path` is
/// untouched: a previous complete file survives, and a fresh path simply
/// does not appear. Errors: IOError.
Status WriteFileAtomic(Env* env, const std::string& path,
                       std::string_view data);

/// Reads all of `path` into a string. A missing/unopenable file is IOError;
/// a file that shrinks mid-read is also IOError (retried once).
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace svq::io

#endif  // SVQ_IO_ENV_H_
