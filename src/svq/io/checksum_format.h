#ifndef SVQ_IO_CHECKSUM_FORMAT_H_
#define SVQ_IO_CHECKSUM_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "svq/common/result.h"

namespace svq::io {

/// The v2 storage footer (docs/storage.md), appended to every artifact the
/// ingest phase writes. Fixed 24 bytes at the end of the file:
///
///   offset  0  uint32  footer magic      "SVQF"
///   offset  4  uint32  footer version    (1)
///   offset  8  uint64  payload size      bytes preceding the footer
///   offset 16  uint32  CRC-32C           over payload bytes [0, size)
///   offset 20  uint32  reserved          (0; covered by nothing, must
///                                         still round-trip)
///
/// The CRC covers the entire payload — header included — so any single
/// bit flip in header, body, or footer fails validation, and a truncation
/// at any byte boundary loses or garbles the footer. Format version is
/// carried by each format's own header; the footer version only gates the
/// footer layout itself.
inline constexpr size_t kChecksumFooterSize = 24;
inline constexpr uint32_t kChecksumFooterMagic = 0x46515653;  // "SVQF"
inline constexpr uint32_t kChecksumFooterVersion = 1;

/// Appends the footer covering everything currently in `buffer`.
void AppendChecksumFooter(std::string* buffer);

/// Validates the footer at the end of `file` and returns the payload view
/// (the file minus its footer). Errors: Corruption — missing/short footer,
/// bad footer magic or version, payload size disagreeing with the file
/// size, or CRC mismatch.
Result<std::string_view> StripChecksumFooter(std::string_view file,
                                             const std::string& path);

}  // namespace svq::io

#endif  // SVQ_IO_CHECKSUM_FORMAT_H_
