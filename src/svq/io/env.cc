#include "svq/io/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace svq::io {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(op + " failed: " + path + ": " +
                         std::strerror(errno));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IOError("append on closed file: " + path_);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;  // interrupted before any transfer
        return ErrnoStatus("write", path_);
      }
      // A short count is not an error at the syscall level (signal after a
      // partial transfer, quota boundary, ...): advance and keep writing.
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IOError("sync on closed file: " + path_);
    // POSIX leaves fd state unspecified after an fsync error; treat any
    // failure (even EINTR) as fatal rather than retrying into fsyncgate.
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return ErrnoStatus("open for write", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename to " + to, from);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("unlink", path);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open directory", dir);
    Status status;
    if (::fsync(fd) != 0) status = ErrnoStatus("fsync directory", dir);
    ::close(fd);
    return status;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat", path);
    return static_cast<uint64_t>(st.st_size);
  }
};

/// Directory part of `path` for the post-rename fsync; "." when the path
/// has no separator.
std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Status WriteFileAtomic(Env* env, const std::string& path,
                       std::string_view data) {
  if (env == nullptr) env = Env::Default();
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  auto file = env->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  Status status = (*file)->Append(data);
  if (status.ok()) status = (*file)->Sync();
  if (status.ok()) status = (*file)->Close();
  if (status.ok()) status = env->RenameFile(tmp, path);
  if (!status.ok()) {
    // The final path was never touched; drop the partial temp (best
    // effort — after a simulated power cut even this fails, and the
    // loaders ignore .tmp.* files by construction).
    file->reset();  // close before unlink, for portability
    env->RemoveFile(tmp);
    return status;
  }
  return env->SyncDir(DirnameOf(path));
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("open", path);
  std::string out;
  char buffer[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = ErrnoStatus("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace svq::io
