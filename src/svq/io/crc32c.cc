#include "svq/io/crc32c.h"

#include <array>

namespace svq::io {

namespace {

constexpr uint32_t kPolynomial = 0x82F63B78;  // CRC-32C, reflected

struct Tables {
  // table[k][b]: the CRC contribution of byte value b when it sits k bytes
  // ahead of the end of the processed prefix (slice-by-8).
  std::array<std::array<uint32_t, 256>, 8> table;

  Tables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
      }
      table[0][b] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t b = 0; b < 256; ++b) {
        const uint32_t prev = table[k - 1][b];
        table[k][b] = (prev >> 8) ^ table[0][prev & 0xFF];
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto& t = GetTables().table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (n >= 8) {
    // Explicit little-endian assembly: alignment-agnostic, endian-agnostic
    // (compilers fold this to one load on little-endian targets).
    uint32_t lo = static_cast<uint32_t>(p[0]) |
                  (static_cast<uint32_t>(p[1]) << 8) |
                  (static_cast<uint32_t>(p[2]) << 16) |
                  (static_cast<uint32_t>(p[3]) << 24);
    const uint32_t hi = static_cast<uint32_t>(p[4]) |
                        (static_cast<uint32_t>(p[5]) << 8) |
                        (static_cast<uint32_t>(p[6]) << 16) |
                        (static_cast<uint32_t>(p[7]) << 24);
    lo ^= crc;
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
          t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace svq::io
