#ifndef SVQ_IO_BYTES_H_
#define SVQ_IO_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

namespace svq::io {

/// Bounds-checked cursor over an in-memory byte buffer. Storage loaders
/// read whole (small) artifacts into memory and parse them through this
/// reader, so every length field coming off disk is validated against the
/// bytes that actually exist before any allocation sized from it — hostile
/// counts fail the read instead of driving a reserve() (docs/storage.md).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

  /// Reads one trivially-copyable value; false when fewer than sizeof(T)
  /// bytes remain (the cursor is left unchanged on failure).
  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) return false;
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Reads `n` raw bytes into `out`; false when they are not all present.
  bool ReadBytes(std::string* out, size_t n) {
    if (remaining() < n) return false;
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  /// Reads a uint64-length-prefixed string, rejecting lengths above
  /// `max_len` or beyond the remaining bytes.
  bool ReadLengthPrefixedString(std::string* out, uint64_t max_len) {
    const size_t saved = pos_;
    uint64_t len = 0;
    if (!Read(&len) || len > max_len || len > remaining()) {
      pos_ = saved;
      return false;
    }
    return ReadBytes(out, static_cast<size_t>(len));
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Appends one trivially-copyable value to `out` in its in-memory byte
/// order. Writer-side counterpart of ByteReader::Read.
template <typename T>
void AppendValue(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

/// Appends a uint64-length-prefixed string.
inline void AppendLengthPrefixedString(std::string* out,
                                       std::string_view value) {
  AppendValue(out, static_cast<uint64_t>(value.size()));
  out->append(value.data(), value.size());
}

}  // namespace svq::io

#endif  // SVQ_IO_BYTES_H_
