#include "svq/io/fault_injection_env.h"

#include <algorithm>
#include <utility>

namespace svq::io {

namespace {

Status SimulatedFailure(const std::string& what) {
  return Status::IOError("injected fault: " + what);
}

}  // namespace

/// Wraps the base env's file: each Append is charged as one op and may be
/// failed, shortened, or truncated by the armed fault. Sync is charged;
/// Close is free (it mutates nothing the protocol relies on).
class FaultInjectionWritableFile final : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env,
                             std::unique_ptr<WritableFile> base,
                             std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    int64_t short_bytes = -1;
    const Status verdict = env_->ChargeOp(data.size(), &short_bytes);
    if (short_bytes >= 0) {
      // Torn write: the allowed prefix genuinely reaches the base file —
      // that is the whole point — and then the operation fails.
      const size_t n = std::min(data.size(),
                                static_cast<size_t>(short_bytes));
      if (n > 0) {
        const Status prefix = base_->Append(data.substr(0, n));
        if (!prefix.ok()) return prefix;
        env_->ChargeBytes(n);
      }
      return verdict.ok() ? SimulatedFailure("torn write: " + path_)
                          : verdict;
    }
    if (!verdict.ok()) return verdict;
    const Status status = base_->Append(data);
    if (status.ok()) env_->ChargeBytes(data.size());
    return status;
  }

  Status Sync() override {
    int64_t unused = -1;
    const Status verdict = env_->ChargeOp(0, &unused);
    if (!verdict.ok()) return verdict;
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultInjectionEnv::FailOp(int64_t op_index) {
  std::lock_guard<std::mutex> lock(mu_);
  kind_ = FaultKind::kFailOp;
  fault_op_ = op_index;
  dead_ = false;
  fault_fired_ = false;
}

void FaultInjectionEnv::ShortWrite(int64_t op_index, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  kind_ = FaultKind::kShortWrite;
  fault_op_ = op_index;
  fault_bytes_ = bytes;
  dead_ = false;
  fault_fired_ = false;
}

void FaultInjectionEnv::CutAtOp(int64_t op_index) {
  std::lock_guard<std::mutex> lock(mu_);
  kind_ = FaultKind::kCutAtOp;
  fault_op_ = op_index;
  dead_ = false;
  fault_fired_ = false;
}

void FaultInjectionEnv::CutAtByte(uint64_t byte_offset) {
  std::lock_guard<std::mutex> lock(mu_);
  kind_ = FaultKind::kCutAtByte;
  fault_bytes_ = byte_offset;
  dead_ = false;
  fault_fired_ = false;
}

void FaultInjectionEnv::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  kind_ = FaultKind::kNone;
  fault_op_ = -1;
  fault_bytes_ = 0;
  dead_ = false;
  fault_fired_ = false;
  ops_ = 0;
  bytes_ = 0;
}

int64_t FaultInjectionEnv::ops_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

uint64_t FaultInjectionEnv::bytes_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

bool FaultInjectionEnv::fault_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fault_fired_;
}

Status FaultInjectionEnv::ChargeOp(uint64_t append_bytes,
                                   int64_t* short_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  *short_bytes = -1;
  const int64_t op = ops_++;
  if (dead_) return SimulatedFailure("power cut");
  switch (kind_) {
    case FaultKind::kNone:
      return Status::OK();
    case FaultKind::kFailOp:
      if (op == fault_op_) {
        fault_fired_ = true;
        return SimulatedFailure("operation " + std::to_string(op));
      }
      return Status::OK();
    case FaultKind::kShortWrite:
      if (op == fault_op_) {
        fault_fired_ = true;
        if (append_bytes > 0) {
          *short_bytes = static_cast<int64_t>(
              std::min(fault_bytes_, append_bytes));
          return Status::OK();  // the file wrapper fails after the prefix
        }
        return SimulatedFailure("operation " + std::to_string(op));
      }
      return Status::OK();
    case FaultKind::kCutAtOp:
      if (op >= fault_op_) {
        fault_fired_ = true;
        dead_ = true;
        return SimulatedFailure("power cut");
      }
      return Status::OK();
    case FaultKind::kCutAtByte:
      if (append_bytes > 0 && bytes_ + append_bytes > fault_bytes_) {
        fault_fired_ = true;
        dead_ = true;
        // The in-flight append reaches disk only up to the cut boundary.
        *short_bytes = static_cast<int64_t>(fault_bytes_ - bytes_);
        return SimulatedFailure("power cut");
      }
      return Status::OK();
  }
  return Status::OK();
}

void FaultInjectionEnv::ChargeBytes(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  bytes_ += n;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  int64_t unused = -1;
  const Status verdict = ChargeOp(0, &unused);
  if (!verdict.ok()) return verdict;
  auto base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectionWritableFile>(
          this, std::move(*base), path));
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  int64_t unused = -1;
  const Status verdict = ChargeOp(0, &unused);
  if (!verdict.ok()) return verdict;
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  // Cleanup is not charged, but a dead (power-cut) env cannot unlink:
  // the partial temp file survives the crash, as it would in reality.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return SimulatedFailure("power cut");
  }
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  int64_t unused = -1;
  const Status verdict = ChargeOp(0, &unused);
  if (!verdict.ok()) return verdict;
  return base_->SyncDir(dir);
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

}  // namespace svq::io
