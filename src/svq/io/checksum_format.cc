#include "svq/io/checksum_format.h"

#include "svq/io/bytes.h"
#include "svq/io/crc32c.h"

namespace svq::io {

void AppendChecksumFooter(std::string* buffer) {
  const uint64_t payload_size = buffer->size();
  const uint32_t crc = Crc32c(*buffer);
  AppendValue(buffer, kChecksumFooterMagic);
  AppendValue(buffer, kChecksumFooterVersion);
  AppendValue(buffer, payload_size);
  AppendValue(buffer, crc);
  AppendValue(buffer, uint32_t{0});  // reserved
}

Result<std::string_view> StripChecksumFooter(std::string_view file,
                                             const std::string& path) {
  if (file.size() < kChecksumFooterSize) {
    return Status::Corruption("file too short for checksum footer: " + path);
  }
  ByteReader footer(file.substr(file.size() - kChecksumFooterSize));
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint32_t crc = 0;
  uint32_t reserved = 0;
  footer.Read(&magic);
  footer.Read(&version);
  footer.Read(&payload_size);
  footer.Read(&crc);
  footer.Read(&reserved);
  if (magic != kChecksumFooterMagic) {
    return Status::Corruption("bad checksum footer magic in " + path);
  }
  if (version != kChecksumFooterVersion) {
    return Status::Corruption("unsupported checksum footer version in " +
                              path);
  }
  if (reserved != 0) {
    // Writers emit zero; anything else is damage (and keeps the bit-flip
    // guarantee: no footer byte may flip without detection).
    return Status::Corruption("nonzero reserved footer bytes in " + path);
  }
  if (payload_size != file.size() - kChecksumFooterSize) {
    return Status::Corruption("footer payload size disagrees with file size (" +
                              std::to_string(payload_size) + " vs " +
                              std::to_string(file.size() -
                                             kChecksumFooterSize) +
                              ") in " + path);
  }
  const std::string_view payload =
      file.substr(0, static_cast<size_t>(payload_size));
  const uint32_t actual = Crc32c(payload);
  if (actual != crc) {
    return Status::Corruption("checksum mismatch in " + path);
  }
  return payload;
}

}  // namespace svq::io
