// svq_router — the SVQ-ACT cluster router (docs/cluster.md): speaks the
// svqd wire protocol to clients while scatter-gathering over a pool of
// svqd backends, each serving one shard of the catalog as described by a
// versioned, checksummed shard-map file.
//
// Serve:  ./build/svq_router --port 0 --shard-map cluster.map
//             --port-file router.port
// Write a map (tooling mode; used by CI to partition a catalog):
//         ./build/svq_router --write-shard-map cluster.map
//             --shard 127.0.0.1:7001 --shard 127.0.0.1:7002
//             --assign serving_0=0 --assign serving_1=1 [--map-version 1]
//
// Clients need no changes: svq_client pointed at the router sees a single
// svqd — except that a ranked `PROCESS *` statement now fans out across
// every shard, and a down shard surfaces as an explicit partial-result
// query status (Unavailable) instead of a silent subset.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "svq/cluster/router.h"
#include "svq/cluster/shard_map.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --shard-map PATH [--host A] [--port N] [--port-file PATH]\n"
      "          [--max-retries N] [--retry-backoff-ms N]\n"
      "          [--retry-backoff-max-ms N] [--hedge-after-ms N]\n"
      "          [--breaker-failures N] [--breaker-cooldown-ms N]\n"
      "          [--connect-timeout-ms N] [--recv-timeout-ms N]\n"
      "          [--health-interval-ms N]\n"
      "          [--metrics-dump PATH]    Prometheus dump on exit\n"
      "                                   ('-' writes to stdout)\n"
      "   or: %s --write-shard-map PATH --shard HOST:PORT...\n"
      "          --assign VIDEO=SHARD... [--map-version N]\n",
      argv0, argv0);
  return 1;
}

bool ParseEndpoint(const std::string& value,
                   svq::cluster::ShardEndpoint* endpoint) {
  const size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= value.size()) {
    return false;
  }
  endpoint->host = value.substr(0, colon);
  const int port = std::atoi(value.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return false;
  endpoint->port = static_cast<uint16_t>(port);
  return true;
}

int WriteShardMap(const std::string& path,
                  const std::vector<std::string>& shard_args,
                  const std::vector<std::string>& assign_args,
                  uint64_t version) {
  svq::cluster::ShardMap map;
  map.version = version;
  for (const std::string& arg : shard_args) {
    svq::cluster::ShardEndpoint endpoint;
    if (!ParseEndpoint(arg, &endpoint)) {
      std::fprintf(stderr, "svq_router: bad --shard '%s' (want HOST:PORT)\n",
                   arg.c_str());
      return 1;
    }
    map.shards.push_back(std::move(endpoint));
  }
  for (const std::string& arg : assign_args) {
    const size_t equals = arg.rfind('=');
    if (equals == std::string::npos || equals == 0 ||
        equals + 1 >= arg.size()) {
      std::fprintf(stderr,
                   "svq_router: bad --assign '%s' (want VIDEO=SHARD)\n",
                   arg.c_str());
      return 1;
    }
    map.assignments[arg.substr(0, equals)] =
        static_cast<uint32_t>(std::atoi(arg.c_str() + equals + 1));
  }
  const svq::Status status =
      svq::cluster::SaveShardMap(svq::io::Env::Default(), path, map);
  if (!status.ok()) {
    std::fprintf(stderr, "svq_router: cannot write shard map: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("svq_router: wrote shard map v%llu (%zu shard(s), %zu "
              "assignment(s)) to %s\n",
              static_cast<unsigned long long>(map.version),
              map.shards.size(), map.assignments.size(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  svq::cluster::RouterOptions options;
  std::string shard_map_path;
  std::string write_map_path;
  std::string port_file;
  std::string metrics_dump;
  std::vector<std::string> shard_args;
  std::vector<std::string> assign_args;
  uint64_t map_version = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--host" && (value = next())) {
      options.bind_address = value;
    } else if (arg == "--port" && (value = next())) {
      options.port = static_cast<uint16_t>(std::atoi(value));
    } else if (arg == "--shard-map" && (value = next())) {
      shard_map_path = value;
    } else if (arg == "--port-file" && (value = next())) {
      port_file = value;
    } else if (arg == "--max-retries" && (value = next())) {
      options.max_retries = std::atoi(value);
    } else if (arg == "--retry-backoff-ms" && (value = next())) {
      options.retry_backoff = std::chrono::milliseconds(std::atoi(value));
    } else if (arg == "--retry-backoff-max-ms" && (value = next())) {
      options.retry_backoff_max =
          std::chrono::milliseconds(std::atoi(value));
    } else if (arg == "--hedge-after-ms" && (value = next())) {
      options.hedge_after = std::chrono::milliseconds(std::atoi(value));
    } else if (arg == "--breaker-failures" && (value = next())) {
      options.breaker.failure_threshold = std::atoi(value);
    } else if (arg == "--breaker-cooldown-ms" && (value = next())) {
      options.breaker.cooldown = std::chrono::milliseconds(std::atoi(value));
    } else if (arg == "--connect-timeout-ms" && (value = next())) {
      options.connect_timeout = std::chrono::milliseconds(std::atoi(value));
    } else if (arg == "--recv-timeout-ms" && (value = next())) {
      options.recv_timeout = std::chrono::milliseconds(std::atoi(value));
    } else if (arg == "--health-interval-ms" && (value = next())) {
      options.health_interval = std::chrono::milliseconds(std::atoi(value));
    } else if (arg == "--metrics-dump" && (value = next())) {
      metrics_dump = value;
    } else if (arg == "--write-shard-map" && (value = next())) {
      write_map_path = value;
    } else if (arg == "--shard" && (value = next())) {
      shard_args.push_back(value);
    } else if (arg == "--assign" && (value = next())) {
      assign_args.push_back(value);
    } else if (arg == "--map-version" && (value = next())) {
      map_version = static_cast<uint64_t>(std::atoll(value));
    } else {
      return Usage(argv[0]);
    }
  }

  if (!write_map_path.empty()) {
    return WriteShardMap(write_map_path, shard_args, assign_args,
                         map_version);
  }
  if (shard_map_path.empty()) return Usage(argv[0]);

  auto map = svq::cluster::LoadShardMap(shard_map_path);
  if (!map.ok()) {
    std::fprintf(stderr, "svq_router: cannot load shard map '%s': %s\n",
                 shard_map_path.c_str(), map.status().ToString().c_str());
    return 1;
  }
  std::printf("svq_router: shard map v%llu: %zu shard(s), %zu video "
              "assignment(s)\n",
              static_cast<unsigned long long>(map->version),
              map->shards.size(), map->assignments.size());

  svq::cluster::Router router(std::move(map).value(), options);
  if (auto status = router.Start(); !status.ok()) {
    std::fprintf(stderr, "svq_router: start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("svq_router: listening on %s:%u\n",
              options.bind_address.c_str(), router.port());
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << router.port() << "\n";
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "svq_router: pipe failed: %s\n",
                 std::strerror(errno));
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("svq_router: signal received, shutting down ...\n");
  std::fflush(stdout);
  router.Shutdown();
  if (!metrics_dump.empty()) {
    if (metrics_dump == "-") {
      std::fflush(stdout);
      router.DumpPrometheus(std::cout);
      std::cout.flush();
    } else {
      std::ofstream out(metrics_dump, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr,
                     "svq_router: cannot open metrics dump file '%s'\n",
                     metrics_dump.c_str());
        return 1;
      }
      router.DumpPrometheus(out);
    }
  }
  return 0;
}
