#ifndef SVQ_CLUSTER_SHARD_MAP_H_
#define SVQ_CLUSTER_SHARD_MAP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "svq/common/result.h"
#include "svq/io/env.h"

namespace svq::cluster {

/// One svqd backend address.
struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;

  friend bool operator==(const ShardEndpoint&,
                         const ShardEndpoint&) = default;
};

/// The cluster's partitioning contract: which svqd backend owns which
/// video. The map is versioned (operators bump `version` on every
/// rewrite) and persisted as a single checksummed file written with the
/// crash-safe WriteFileAtomic protocol, so a router restart either sees a
/// complete map or the previous one — never a torn mixture
/// (docs/cluster.md).
///
/// Partitions must be disjoint by construction: `assignments` maps each
/// video name to exactly one shard index. Videos absent from the map are
/// routed to the first healthy shard (which then answers NotFound exactly
/// as a single svqd would).
struct ShardMap {
  uint64_t version = 0;
  std::vector<ShardEndpoint> shards;
  /// video name -> index into `shards`.
  std::map<std::string, uint32_t> assignments;

  /// Index of the shard owning `video`; negative when unassigned.
  int ShardOf(const std::string& video) const;

  /// Structural checks: at least one shard, every assignment in range.
  Status Validate() const;

  friend bool operator==(const ShardMap&, const ShardMap&) = default;
};

/// Contiguous-by-sorted-name assignment of `names` across `shards`:
/// sorts the names and gives shard 0 the lexicographically first chunk,
/// shard 1 the next, and so on (remainder spread over the leading
/// shards). Contiguity in sorted-name order is what makes the router's
/// cross-shard merge reproduce the single-node oracle's tie order:
/// catalog loaders assign video ids in sorted-name order, so
/// (shard index, per-shard rank) and (global video id) induce the same
/// order on equal-score ties.
Result<ShardMap> AssignContiguous(std::vector<std::string> names,
                                  std::vector<ShardEndpoint> shards,
                                  uint64_t version = 1);

/// Persists `map` at `path`: serialized payload + "SVQF" checksum footer,
/// written via WriteFileAtomic. Errors: InvalidArgument (Validate fails),
/// IOError.
Status SaveShardMap(io::Env* env, const std::string& path,
                    const ShardMap& map);

/// Loads a map previously written by SaveShardMap. Errors: IOError
/// (unreadable), Corruption (bad footer/CRC, truncated or malformed
/// payload, bad magic/version), InvalidArgument (structurally invalid).
Result<ShardMap> LoadShardMap(const std::string& path);

}  // namespace svq::cluster

#endif  // SVQ_CLUSTER_SHARD_MAP_H_
