#ifndef SVQ_CLUSTER_ROUTER_H_
#define SVQ_CLUSTER_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "svq/cluster/breaker.h"
#include "svq/cluster/client_pool.h"
#include "svq/cluster/shard_map.h"
#include "svq/common/result.h"
#include "svq/observability/metrics.h"
#include "svq/server/wire.h"

namespace svq::cluster {

/// Router tuning knobs. The defaults favor fast failure detection in
/// tests; production deployments raise the timeouts (docs/cluster.md).
struct RouterOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral (read the bound port back via port()).
  uint16_t port = 0;

  /// Extra attempts after the first for idempotent verbs
  /// (QUERY / EXPLAIN / STATS) that failed at the transport layer.
  int max_retries = 2;
  /// First retry delay; doubles per retry, capped at `retry_backoff_max`.
  std::chrono::milliseconds retry_backoff{10};
  std::chrono::milliseconds retry_backoff_max{200};

  /// Hedging for scatter-gather QUERYs: when > 0, a shard that has not
  /// answered within this budget gets a duplicate request on a fresh
  /// connection; the first response wins. 0 disables hedging.
  std::chrono::milliseconds hedge_after{0};

  /// Circuit breaker per backend (svq/cluster/breaker.h).
  CircuitBreaker::Options breaker;

  /// Dial budget for every backend connection (Client::Connect's
  /// non-blocking connect path); must be > 0 so a black-holed backend
  /// cannot hang a router worker.
  std::chrono::milliseconds connect_timeout{1000};
  /// Receive budget per backend round trip; must comfortably exceed the
  /// largest query timeout the deployment issues.
  std::chrono::milliseconds recv_timeout{120000};

  /// Period of the background health checker, which probes open-breaker
  /// backends with STATS so recovery is noticed without client traffic.
  /// 0 disables the checker.
  std::chrono::milliseconds health_interval{500};

  size_t max_frame_bytes = server::kDefaultMaxFrameBytes;
};

/// The scatter-gather routing layer (docs/cluster.md): speaks the svqd
/// wire protocol on both sides. Downstream it is indistinguishable from a
/// single svqd to existing clients; upstream it manages one svqd backend
/// per shard of the catalog, as described by a versioned ShardMap.
///
/// Routing semantics:
///  - QUERY over `PROCESS <video>` forwards to the shard owning the video
///    (unassigned videos go to the first healthy shard, which answers
///    NotFound exactly as a single svqd would).
///  - QUERY over `PROCESS *` scatters to every shard — each backend runs
///    its partition's repository top-K — and gathers with the same
///    score-ordered merge as the repository fan-out
///    (svq/core/topk_merge.h), ties broken by (shard, per-shard rank).
///  - Deadlines propagate by decrementing the remaining budget per hop:
///    every forwarded timeout is the client's budget minus time already
///    spent in the router (queueing, earlier attempts, backoff).
///  - Transport failures retry with capped exponential backoff (the verbs
///    the router forwards are idempotent), feed the backend's circuit
///    breaker, and — for scatter-gather — degrade to partial results: the
///    response carries the surviving shards' sequences with query status
///    kUnavailable naming the shards that failed, never a silent subset.
///  - STATS aggregates every backend's counters and registry (same-name
///    entries sum; histograms sum bucket-wise) and appends the router's
///    own svq_router_* metrics.
///  - Streaming verbs (SUBSCRIBE / FEED / UNSUBSCRIBE) answer
///    Unimplemented: standing queries pin per-feed state that a
///    stateless router does not replicate.
///
/// Threading: one accept thread, one blocking worker thread per client
/// connection (each request may fan out one extra thread per shard), one
/// health-check thread.
class Router {
 public:
  using Clock = std::chrono::steady_clock;

  Router(ShardMap map, RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds, listens, and starts the accept + health threads.
  /// Errors: InvalidArgument (bad map/options), IOError.
  Status Start();

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent.
  void Shutdown();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  const ShardMap& shard_map() const { return map_; }

  /// Router-side metrics (svq_router_*). Exposed for benches and tests;
  /// STATS responses embed a flattened snapshot automatically.
  const observability::MetricsRegistry& registry() const {
    return registry_;
  }

  /// Prometheus text dump of the router registry.
  void DumpPrometheus(std::ostream& out) const;

  /// Breaker state of one backend (tests).
  CircuitBreaker::State BreakerState(size_t shard) const;

 private:
  struct Backend {
    Backend(ShardEndpoint endpoint, std::chrono::milliseconds connect,
            std::chrono::milliseconds recv, CircuitBreaker::Options breaker)
        : pool(std::move(endpoint), connect, recv),
          breaker(breaker) {}

    ClientPool pool;
    CircuitBreaker breaker;
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  void HealthLoop();

  /// Dispatches one complete frame payload; returns the encoded response
  /// frame, or an empty string when the connection must be dropped.
  std::string HandlePayload(const std::string& payload);

  std::string HandleQuery(server::WireCursor* cursor);
  std::string HandleExplain(server::WireCursor* cursor);
  std::string HandleStats();

  /// One QUERY to one backend with breaker + retry + per-hop deadline
  /// decrement. `admitted` / `timeout_ms` describe the client's budget.
  Result<server::QueryResponse> QueryBackend(size_t shard,
                                             const std::string& statement,
                                             Clock::time_point admitted,
                                             uint32_t timeout_ms);
  /// QueryBackend plus optional hedging (options_.hedge_after).
  Result<server::QueryResponse> QueryBackendHedged(
      size_t shard, const std::string& statement, Clock::time_point admitted,
      uint32_t timeout_ms);

  Result<server::ExplainResponse> ExplainBackend(
      size_t shard, const server::ExplainRequest& request,
      Clock::time_point admitted);
  Result<server::ServerStatsWire> StatsBackend(size_t shard);

  /// Remaining per-hop budget: client budget minus elapsed. Returns false
  /// when the budget is exhausted (0 client budget = unlimited, always
  /// true with *remaining = 0).
  static bool RemainingBudget(Clock::time_point admitted,
                              uint32_t timeout_ms, Clock::time_point now,
                              uint32_t* remaining);

  /// First shard whose breaker currently admits requests; -1 when none.
  int FirstAvailableShard() const;

  const ShardMap map_;
  const RouterOptions options_;

  std::vector<std::unique_ptr<Backend>> backends_;

  observability::MetricsRegistry registry_;
  observability::Counter* queries_total_ = nullptr;
  observability::Counter* queries_partial_ = nullptr;
  observability::Counter* queries_deadline_ = nullptr;
  observability::Counter* backend_failures_ = nullptr;
  observability::Counter* retries_ = nullptr;
  observability::Counter* hedges_ = nullptr;
  observability::Counter* stats_requests_ = nullptr;
  observability::Counter* explain_requests_ = nullptr;
  observability::Counter* connections_opened_ = nullptr;
  observability::Gauge* backends_total_ = nullptr;
  observability::Gauge* backends_available_ = nullptr;
  observability::Gauge* connections_open_ = nullptr;
  observability::Histogram* query_latency_ = nullptr;
  observability::Histogram* fanout_latency_ = nullptr;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};

  std::thread accept_thread_;
  std::thread health_thread_;
  std::mutex health_mu_;
  std::condition_variable health_cv_;

  std::mutex conns_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace svq::cluster

#endif  // SVQ_CLUSTER_ROUTER_H_
