#ifndef SVQ_CLUSTER_CLIENT_POOL_H_
#define SVQ_CLUSTER_CLIENT_POOL_H_

#include <chrono>
#include <mutex>
#include <utility>
#include <vector>

#include "svq/cluster/shard_map.h"
#include "svq/common/result.h"
#include "svq/server/client.h"

namespace svq::cluster {

/// A small pool of wire connections to one svqd backend. server::Client is
/// blocking and single-request, so the router checks a connection out for
/// the duration of one forwarded request and returns it afterwards;
/// concurrent requests to the same backend each get their own connection.
///
/// Connections are only reused after a clean round trip: any transport
/// error discards the connection (its stream state is unknown), and the
/// next Acquire dials afresh with the pool's connect timeout — which is
/// what keeps a black-holed backend from hanging the router
/// (Client::Connect's non-blocking connect path).
class ClientPool {
 public:
  ClientPool(ShardEndpoint endpoint,
             std::chrono::milliseconds connect_timeout,
             std::chrono::milliseconds recv_timeout)
      : endpoint_(std::move(endpoint)),
        connect_timeout_(connect_timeout),
        recv_timeout_(recv_timeout) {}

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  const ShardEndpoint& endpoint() const { return endpoint_; }

  /// A connected client: pooled if one is idle, freshly dialed otherwise.
  /// Errors: IOError (dial failed / timed out).
  Result<server::Client> Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!idle_.empty()) {
        server::Client client = std::move(idle_.back());
        idle_.pop_back();
        return client;
      }
    }
    server::Client client;
    SVQ_RETURN_NOT_OK(client.Connect(endpoint_.host, endpoint_.port,
                                     recv_timeout_, connect_timeout_));
    return client;
  }

  /// Returns a client after a clean round trip. Callers simply drop
  /// clients whose last request failed at the transport layer.
  void Release(server::Client client) {
    if (!client.connected()) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (idle_.size() < kMaxIdle) idle_.push_back(std::move(client));
    // else: client destructor closes the surplus connection.
  }

  /// Closes every idle connection (shutdown path).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    idle_.clear();
  }

 private:
  static constexpr size_t kMaxIdle = 8;

  const ShardEndpoint endpoint_;
  const std::chrono::milliseconds connect_timeout_;
  const std::chrono::milliseconds recv_timeout_;

  std::mutex mu_;
  std::vector<server::Client> idle_;
};

}  // namespace svq::cluster

#endif  // SVQ_CLUSTER_CLIENT_POOL_H_
