#include "svq/cluster/router.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>

#include "svq/core/topk_merge.h"
#include "svq/query/binder.h"
#include "svq/query/parser.h"

namespace svq::cluster {

namespace {

using server::MessageType;
using server::QueryResponse;
using server::ServerStatsWire;
using server::WireCursor;

double ElapsedMicros(Router::Clock::time_point begin,
                     Router::Clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - begin).count();
}

/// Strips one leading keyword (case-insensitive, whole word) — the
/// router's local equivalent of the EXPLAIN/ANALYZE prefix handling in
/// svq/query/explain.cc, needed only to find the statement's FROM video.
std::string_view StripLeadingKeyword(std::string_view statement,
                                     std::string_view keyword) {
  size_t i = 0;
  while (i < statement.size() &&
         std::isspace(static_cast<unsigned char>(statement[i]))) {
    ++i;
  }
  if (statement.size() - i < keyword.size()) return statement;
  for (size_t j = 0; j < keyword.size(); ++j) {
    if (std::toupper(static_cast<unsigned char>(statement[i + j])) !=
        keyword[j]) {
      return statement;
    }
  }
  const size_t rest = i + keyword.size();
  if (rest < statement.size() &&
      !std::isspace(static_cast<unsigned char>(statement[rest]))) {
    return statement;
  }
  return statement.substr(rest);
}

/// The statement's PROCESS target ("*" for a broadcast), or empty when the
/// statement does not parse — the router then forwards it verbatim so the
/// backend produces the same diagnostic a single svqd would.
std::string RouteTargetOf(std::string_view statement) {
  statement = StripLeadingKeyword(statement, "EXPLAIN");
  statement = StripLeadingKeyword(statement, "ANALYZE");
  auto parsed = query::Parse(statement);
  if (!parsed.ok()) return std::string();
  return parsed->process.video;
}

/// A gathered sequence tagged with its origin for the cross-shard merge:
/// shard index then per-shard rank reproduce the single-node oracle's
/// (video id, clip begin) tie order when the shard map assigns videos
/// contiguously in sorted-name order (see AssignContiguous).
struct GatherEntry {
  size_t shard = 0;
  size_t rank = 0;
  server::WireSequence sequence;
};

void MergeQueryMetrics(const server::WireQueryMetrics& in,
                       server::WireQueryMetrics* out) {
  out->sorted_accesses += in.sorted_accesses;
  out->random_accesses += in.random_accesses;
  out->sequential_reads += in.sequential_reads;
  out->virtual_ms += in.virtual_ms;
  out->algorithm_ms += in.algorithm_ms;
  out->model_ms += in.model_ms;
  out->clips_processed += in.clips_processed;
  out->threads_used = std::max(out->threads_used, in.threads_used);
  out->tasks_executed += in.tasks_executed;
  out->fanout_ms = std::max(out->fanout_ms, in.fanout_ms);
  out->server_queue_ms = std::max(out->server_queue_ms, in.server_queue_ms);
  out->server_exec_ms = std::max(out->server_exec_ms, in.server_exec_ms);
}

void MergeHistogram(const server::WireHistogram& in,
                    server::WireHistogram* out) {
  out->count += in.count;
  for (size_t i = 0; i < out->buckets.size() && i < in.buckets.size(); ++i) {
    out->buckets[i] += in.buckets[i];
  }
}

}  // namespace

Router::Router(ShardMap map, RouterOptions options)
    : map_(std::move(map)), options_(std::move(options)) {
  queries_total_ = registry_.counter("svq_router_queries_total",
                                     "QUERY frames routed");
  queries_partial_ = registry_.counter(
      "svq_router_queries_partial_total",
      "Scatter-gather queries answered from surviving shards only");
  queries_deadline_ = registry_.counter(
      "svq_router_deadline_exceeded_total",
      "Queries whose budget expired inside the router");
  backend_failures_ = registry_.counter(
      "svq_router_backend_failures_total",
      "Transport-level backend request failures (per attempt)");
  retries_ = registry_.counter("svq_router_retries_total",
                               "Backend attempts beyond the first");
  hedges_ = registry_.counter("svq_router_hedges_total",
                              "Hedge requests issued to slow shards");
  stats_requests_ = registry_.counter("svq_router_stats_requests_total",
                                      "STATS frames aggregated");
  explain_requests_ = registry_.counter("svq_router_explain_requests_total",
                                        "EXPLAIN frames routed");
  connections_opened_ = registry_.counter(
      "svq_router_connections_opened_total", "Client connections accepted");
  backends_total_ =
      registry_.gauge("svq_router_backends_total", "Configured backends");
  backends_available_ = registry_.gauge(
      "svq_router_backends_available",
      "Backends whose circuit breaker is not open");
  connections_open_ = registry_.gauge("svq_router_connections_open",
                                      "Client connections currently open");
  query_latency_ = registry_.histogram(
      "svq_router_query_latency_micros",
      "QUERY latency through the router (receipt to response encode)");
  fanout_latency_ = registry_.histogram(
      "svq_router_fanout_micros",
      "Scatter-gather fan-out latency (scatter start to last gather)");
}

Router::~Router() { Shutdown(); }

void Router::DumpPrometheus(std::ostream& out) const {
  registry_.DumpPrometheus(out);
}

CircuitBreaker::State Router::BreakerState(size_t shard) const {
  return backends_.at(shard)->breaker.state();
}

Status Router::Start() {
  SVQ_RETURN_NOT_OK(map_.Validate());
  if (options_.connect_timeout.count() <= 0) {
    return Status::InvalidArgument(
        "router connect_timeout must be positive");
  }
  if (running_.load()) {
    return Status::FailedPrecondition("router already started");
  }
  backends_.clear();
  for (const ShardEndpoint& endpoint : map_.shards) {
    backends_.push_back(std::make_unique<Backend>(
        endpoint, options_.connect_timeout, options_.recv_timeout,
        options_.breaker));
  }
  backends_total_->Set(static_cast<double>(backends_.size()));
  backends_available_->Set(static_cast<double>(backends_.size()));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("invalid bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status(StatusCode::kIOError,
                        std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status status(StatusCode::kIOError,
                        std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (options_.health_interval.count() > 0) {
    health_thread_ = std::thread([this] { HealthLoop(); });
  }
  return Status::OK();
}

void Router::Shutdown() {
  if (!running_.exchange(false)) return;
  // Wake the accept loop and every connection worker.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  health_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    workers.swap(conn_threads_);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (const std::unique_ptr<Backend>& backend : backends_) {
    backend->pool.Clear();
  }
}

void Router::AcceptLoop() {
  while (running_.load()) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                             &len, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load()) return;
      if (errno == ECONNABORTED) continue;
      return;  // listen socket is gone
    }
    if (!running_.load()) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_opened_->Increment();
    connections_open_->Add(1.0);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Router::HandleConnection(int fd) {
  server::FrameAssembler assembler(options_.max_frame_bytes);
  char buffer[65536];
  bool open = true;
  while (open && running_.load()) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    assembler.Feed(buffer, static_cast<size_t>(n));
    for (;;) {
      std::string payload;
      bool has_frame = false;
      if (!assembler.Next(&payload, &has_frame).ok()) {
        open = false;  // oversized frame: the stream cannot resynchronize
        break;
      }
      if (!has_frame) break;
      const std::string response = HandlePayload(payload);
      if (response.empty()) {
        open = false;
        break;
      }
      size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t w = ::send(fd, response.data() + sent,
                                 response.size() - sent, MSG_NOSIGNAL);
        if (w < 0) {
          if (errno == EINTR) continue;
          open = false;
          break;
        }
        sent += static_cast<size_t>(w);
      }
      if (!open) break;
    }
  }
  ::close(fd);
  connections_open_->Add(-1.0);
  std::lock_guard<std::mutex> lock(conns_mu_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
}

std::string Router::HandlePayload(const std::string& payload) {
  WireCursor cursor(payload);
  MessageType type = MessageType::kQueryRequest;
  const Status header = server::DecodePayloadHeader(&cursor, &type);
  if (!header.ok()) {
    // Same contract as svqd: answer the protocol mismatch once, then the
    // caller drops the connection (empty follow-up is handled by the
    // send already carrying close semantics — we return the one frame and
    // the peer's decode fails identically either way).
    QueryResponse response;
    response.status = header;
    return server::EncodeQueryResponse(response);
  }
  switch (type) {
    case MessageType::kQueryRequest:
      return HandleQuery(&cursor);
    case MessageType::kStatsRequest:
      return HandleStats();
    case MessageType::kExplainRequest:
      return HandleExplain(&cursor);
    case MessageType::kSubscribeRequest: {
      server::SubscribeRequest request;
      server::SubscribeResponse response;
      if (server::DecodeSubscribeRequest(&cursor, &request).ok()) {
        response.request_id = request.request_id;
      }
      response.status = Status::Unimplemented(
          "svq_router does not route streaming verbs; subscribe to a "
          "backend directly");
      return server::EncodeSubscribeResponse(response);
    }
    case MessageType::kFeedRequest: {
      server::FeedRequest request;
      server::FeedResponse response;
      if (server::DecodeFeedRequest(&cursor, &request).ok()) {
        response.request_id = request.request_id;
      }
      response.status = Status::Unimplemented(
          "svq_router does not route streaming verbs; feed a backend "
          "directly");
      return server::EncodeFeedResponse(response);
    }
    case MessageType::kUnsubscribeRequest: {
      server::UnsubscribeRequest request;
      server::UnsubscribeResponse response;
      if (server::DecodeUnsubscribeRequest(&cursor, &request).ok()) {
        response.request_id = request.request_id;
      }
      response.status =
          Status::Unimplemented("svq_router does not route streaming verbs");
      return server::EncodeUnsubscribeResponse(response);
    }
    default: {
      QueryResponse response;
      response.status = Status::InvalidArgument(
          "unexpected frame type " +
          std::to_string(static_cast<int>(type)));
      return server::EncodeQueryResponse(response);
    }
  }
}

bool Router::RemainingBudget(Clock::time_point admitted, uint32_t timeout_ms,
                             Clock::time_point now, uint32_t* remaining) {
  if (timeout_ms == 0) {
    *remaining = 0;  // unlimited propagates as unlimited
    return true;
  }
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - admitted)
          .count();
  if (elapsed >= static_cast<int64_t>(timeout_ms)) return false;
  *remaining = std::max<uint32_t>(
      1, timeout_ms - static_cast<uint32_t>(elapsed));
  return true;
}

int Router::FirstAvailableShard() const {
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i]->breaker.state() != CircuitBreaker::State::kOpen) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Result<QueryResponse> Router::QueryBackend(size_t shard,
                                           const std::string& statement,
                                           Clock::time_point admitted,
                                           uint32_t timeout_ms) {
  Backend& backend = *backends_[shard];
  const std::string endpoint = backend.pool.endpoint().host + ":" +
                               std::to_string(backend.pool.endpoint().port);
  Status last = Status::Unavailable("shard " + std::to_string(shard) + " (" +
                                    endpoint + ") unavailable");
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    const Clock::time_point now = Clock::now();
    uint32_t remaining = 0;
    if (!RemainingBudget(admitted, timeout_ms, now, &remaining)) {
      // Budget exhausted inside the router: this is the query's outcome,
      // not a transport failure — report it on the query status exactly as
      // a backend would.
      queries_deadline_->Increment();
      QueryResponse expired;
      expired.status = Status::DeadlineExceeded(
          "query budget exhausted before shard " + std::to_string(shard) +
          " responded");
      return expired;
    }
    if (!backend.breaker.AllowRequest(now)) {
      return Status::Unavailable("shard " + std::to_string(shard) + " (" +
                                 endpoint + "): circuit breaker open");
    }
    if (attempt > 0) retries_->Increment();
    auto client = backend.pool.Acquire();
    if (client.ok()) {
      Result<QueryResponse> response =
          client->Execute(statement, remaining);
      if (response.ok()) {
        backend.breaker.RecordSuccess();
        backend.pool.Release(std::move(client).value());
        return response;
      }
      last = response.status();
    } else {
      last = client.status();
    }
    // Transport failure: never reuse the connection, feed the breaker,
    // back off (capped exponential) before the next idempotent retry.
    backend.breaker.RecordFailure(Clock::now());
    backend_failures_->Increment();
    if (attempt < options_.max_retries) {
      auto backoff = options_.retry_backoff * (1 << attempt);
      if (backoff > options_.retry_backoff_max) {
        backoff = options_.retry_backoff_max;
      }
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    }
  }
  return Status::Unavailable("shard " + std::to_string(shard) + " (" +
                             endpoint + "): " + last.ToString());
}

Result<QueryResponse> Router::QueryBackendHedged(
    size_t shard, const std::string& statement, Clock::time_point admitted,
    uint32_t timeout_ms) {
  if (options_.hedge_after.count() <= 0) {
    return QueryBackend(shard, statement, admitted, timeout_ms);
  }
  // First response wins. Both attempts run detached so the winner's caller
  // never waits for the loser; Shutdown joins the stragglers via the
  // connection-thread registry this function's threads are NOT in — they
  // hold only `state` plus `this`, and Shutdown runs after every
  // connection worker (their transitive caller) has been joined, so the
  // detach is bounded by recv_timeout. To keep that bound airtight the
  // loser is tracked in `state` and the last one out cleans up.
  struct HedgeState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<QueryResponse> result = Status::Unavailable("hedge pending");
  };
  auto state = std::make_shared<HedgeState>();
  auto run = [this, state, shard, statement, admitted, timeout_ms] {
    Result<QueryResponse> response =
        QueryBackend(shard, statement, admitted, timeout_ms);
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->done) {
      state->result = std::move(response);
      state->done = true;
      state->cv.notify_all();
    }
  };
  std::thread primary(run);
  std::unique_lock<std::mutex> lock(state->mu);
  if (state->cv.wait_for(lock, options_.hedge_after,
                         [&] { return state->done; })) {
    lock.unlock();
    primary.join();
    return std::move(state->result);
  }
  lock.unlock();
  hedges_->Increment();
  std::thread hedge(run);
  lock.lock();
  state->cv.wait(lock, [&] { return state->done; });
  Result<QueryResponse> result = std::move(state->result);
  lock.unlock();
  // Both attempts are bounded by recv_timeout / the retry budget; joining
  // keeps every backend interaction inside the router's lifetime.
  primary.join();
  hedge.join();
  return result;
}

std::string Router::HandleQuery(WireCursor* cursor) {
  const Clock::time_point admitted = Clock::now();
  server::QueryRequest request;
  const Status decoded = server::DecodeQueryRequest(cursor, &request);
  QueryResponse response;
  response.request_id = request.request_id;
  if (!decoded.ok()) {
    response.status = decoded;
    return server::EncodeQueryResponse(response);
  }
  queries_total_->Increment();
  const std::string target = RouteTargetOf(request.statement);

  if (target != "*") {
    // Single-video (or unparseable) statement: forward to the owning
    // shard; a video the map does not know goes to the first available
    // shard, whose NotFound diagnostic matches a single svqd's.
    int shard = target.empty() ? -1 : map_.ShardOf(target);
    if (shard < 0) shard = FirstAvailableShard();
    if (shard < 0) {
      response.status =
          Status::Unavailable("no shard available for this statement");
    } else {
      Result<QueryResponse> routed = QueryBackendHedged(
          static_cast<size_t>(shard), request.statement, admitted,
          request.timeout_ms);
      if (routed.ok()) {
        response = std::move(routed).value();
        response.request_id = request.request_id;
      } else {
        response.status = routed.status();
      }
    }
    query_latency_->Record(ElapsedMicros(admitted, Clock::now()));
    return server::EncodeQueryResponse(response);
  }

  // Broadcast: bind locally for K, scatter to every shard, gather with the
  // shared score-ordered merge.
  auto bound = query::ParseAndBind(request.statement);
  if (!bound.ok()) {
    // The statement parses (RouteTargetOf saw PROCESS *) but does not
    // bind; answer with the binder's diagnostic like a single svqd would.
    response.status = bound.status();
    query_latency_->Record(ElapsedMicros(admitted, Clock::now()));
    return server::EncodeQueryResponse(response);
  }
  const int k = static_cast<int>(bound->k);

  const Clock::time_point scatter_begin = Clock::now();
  std::vector<Result<QueryResponse>> gathered(
      backends_.size(), Result<QueryResponse>(Status::Unavailable("")));
  {
    std::vector<std::thread> scatter;
    scatter.reserve(backends_.size());
    for (size_t shard = 0; shard < backends_.size(); ++shard) {
      scatter.emplace_back([this, shard, &request, admitted, &gathered] {
        gathered[shard] = QueryBackendHedged(
            shard, request.statement, admitted, request.timeout_ms);
      });
    }
    for (std::thread& thread : scatter) thread.join();
  }
  fanout_latency_->Record(ElapsedMicros(scatter_begin, Clock::now()));

  std::vector<GatherEntry> entries;
  std::vector<std::string> failed;
  for (size_t shard = 0; shard < gathered.size(); ++shard) {
    Result<QueryResponse>& result = gathered[shard];
    if (!result.ok()) {
      failed.push_back(result.status().message());
      continue;
    }
    if (!result->status.ok()) {
      // A backend answered but the query itself failed there (deadline,
      // bad statement against its catalog, ...). That outcome is the
      // query's, not the transport's: surface the first one verbatim.
      response.status = result->status;
      response.sequences.clear();
      query_latency_->Record(ElapsedMicros(admitted, Clock::now()));
      return server::EncodeQueryResponse(response);
    }
    for (size_t rank = 0; rank < result->sequences.size(); ++rank) {
      entries.push_back({shard, rank, result->sequences[rank]});
    }
    MergeQueryMetrics(result->metrics, &response.metrics);
  }

  core::SortedTopKMerge(
      &entries, k,
      [](const GatherEntry& e) { return e.sequence.lower_bound; },
      [](const GatherEntry& a, const GatherEntry& b) {
        if (a.shard != b.shard) return a.shard < b.shard;
        return a.rank < b.rank;
      });
  response.ranked = true;
  response.sequences.reserve(entries.size());
  for (const GatherEntry& entry : entries) {
    response.sequences.push_back(entry.sequence);
  }

  if (!failed.empty()) {
    std::ostringstream message;
    if (failed.size() == gathered.size()) {
      message << "all shards unavailable: ";
    } else {
      queries_partial_->Increment();
      message << "partial results (" << gathered.size() - failed.size()
              << "/" << gathered.size() << " shards): ";
    }
    for (size_t i = 0; i < failed.size(); ++i) {
      if (i > 0) message << "; ";
      message << failed[i];
    }
    response.status = Status::Unavailable(message.str());
  }
  query_latency_->Record(ElapsedMicros(admitted, Clock::now()));
  return server::EncodeQueryResponse(response);
}

Result<server::ExplainResponse> Router::ExplainBackend(
    size_t shard, const server::ExplainRequest& request,
    Clock::time_point admitted) {
  Backend& backend = *backends_[shard];
  const std::string endpoint = backend.pool.endpoint().host + ":" +
                               std::to_string(backend.pool.endpoint().port);
  Status last = Status::Unavailable("unreachable");
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    const Clock::time_point now = Clock::now();
    uint32_t remaining = 0;
    if (!RemainingBudget(admitted, request.timeout_ms, now, &remaining)) {
      queries_deadline_->Increment();
      server::ExplainResponse expired;
      expired.status =
          Status::DeadlineExceeded("explain budget exhausted in the router");
      return expired;
    }
    if (!backend.breaker.AllowRequest(now)) {
      return Status::Unavailable("shard " + std::to_string(shard) + " (" +
                                 endpoint + "): circuit breaker open");
    }
    if (attempt > 0) retries_->Increment();
    auto client = backend.pool.Acquire();
    if (client.ok()) {
      Result<server::ExplainResponse> response =
          client->Explain(request.statement, request.analyze, remaining);
      if (response.ok()) {
        backend.breaker.RecordSuccess();
        backend.pool.Release(std::move(client).value());
        return response;
      }
      last = response.status();
    } else {
      last = client.status();
    }
    backend.breaker.RecordFailure(Clock::now());
    backend_failures_->Increment();
    if (attempt < options_.max_retries) {
      auto backoff = options_.retry_backoff * (1 << attempt);
      if (backoff > options_.retry_backoff_max) {
        backoff = options_.retry_backoff_max;
      }
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    }
  }
  return Status::Unavailable("shard " + std::to_string(shard) + " (" +
                             endpoint + "): " + last.ToString());
}

std::string Router::HandleExplain(WireCursor* cursor) {
  const Clock::time_point admitted = Clock::now();
  server::ExplainRequest request;
  const Status decoded = server::DecodeExplainRequest(cursor, &request);
  server::ExplainResponse response;
  response.request_id = request.request_id;
  if (!decoded.ok()) {
    response.status = decoded;
    return server::EncodeExplainResponse(response);
  }
  explain_requests_->Increment();
  const std::string target = RouteTargetOf(request.statement);
  if (target == "*") {
    // Matches single-node behavior: EXPLAIN over PROCESS * is
    // Unimplemented there too (the planner is per-video).
    response.status = Status::Unimplemented(
        "EXPLAIN over PROCESS * is not supported; explain a single video");
    return server::EncodeExplainResponse(response);
  }
  int shard = target.empty() ? -1 : map_.ShardOf(target);
  if (shard < 0) shard = FirstAvailableShard();
  if (shard < 0) {
    response.status =
        Status::Unavailable("no shard available for this statement");
    return server::EncodeExplainResponse(response);
  }
  Result<server::ExplainResponse> routed =
      ExplainBackend(static_cast<size_t>(shard), request, admitted);
  if (routed.ok()) {
    response = std::move(routed).value();
    response.request_id = request.request_id;
  } else {
    response.status = routed.status();
  }
  return server::EncodeExplainResponse(response);
}

Result<ServerStatsWire> Router::StatsBackend(size_t shard) {
  Backend& backend = *backends_[shard];
  Status last = Status::Unavailable("unreachable");
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (!backend.breaker.AllowRequest(Clock::now())) {
      return Status::Unavailable("circuit breaker open");
    }
    if (attempt > 0) retries_->Increment();
    auto client = backend.pool.Acquire();
    if (client.ok()) {
      Result<ServerStatsWire> stats = client->GetStats();
      if (stats.ok()) {
        backend.breaker.RecordSuccess();
        backend.pool.Release(std::move(client).value());
        return stats;
      }
      last = stats.status();
    } else {
      last = client.status();
    }
    backend.breaker.RecordFailure(Clock::now());
    backend_failures_->Increment();
    if (attempt < options_.max_retries) {
      auto backoff = options_.retry_backoff * (1 << attempt);
      if (backoff > options_.retry_backoff_max) {
        backoff = options_.retry_backoff_max;
      }
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    }
  }
  return last;
}

std::string Router::HandleStats() {
  stats_requests_->Increment();
  ServerStatsWire aggregate;
  std::map<std::string, double> registry_sum;
  size_t available = 0;
  for (size_t shard = 0; shard < backends_.size(); ++shard) {
    Result<ServerStatsWire> stats = StatsBackend(shard);
    if (!stats.ok()) continue;
    ++available;
    aggregate.queries_accepted += stats->queries_accepted;
    aggregate.queries_rejected += stats->queries_rejected;
    aggregate.queries_ok += stats->queries_ok;
    aggregate.queries_failed += stats->queries_failed;
    aggregate.queries_cancelled += stats->queries_cancelled;
    aggregate.queries_deadline_exceeded += stats->queries_deadline_exceeded;
    aggregate.stats_requests += stats->stats_requests;
    aggregate.connections_opened += stats->connections_opened;
    aggregate.connections_open += stats->connections_open;
    aggregate.queue_depth += stats->queue_depth;
    aggregate.in_flight += stats->in_flight;
    MergeHistogram(stats->query_latency, &aggregate.query_latency);
    MergeHistogram(stats->stats_latency, &aggregate.stats_latency);
    for (const auto& [name, value] : stats->registry) {
      registry_sum[name] += value;
    }
  }
  backends_available_->Set(static_cast<double>(available));
  // The router's own metrics ride along under their svq_router_* names —
  // one STATS round trip observes the whole cluster.
  for (const auto& [name, value] : registry_.Snapshot().Flatten()) {
    registry_sum[name] += value;
  }
  aggregate.registry.assign(registry_sum.begin(), registry_sum.end());
  return server::EncodeStatsResponse(aggregate);
}

void Router::HealthLoop() {
  while (running_.load()) {
    {
      std::unique_lock<std::mutex> lock(health_mu_);
      health_cv_.wait_for(lock, options_.health_interval,
                          [this] { return !running_.load(); });
    }
    if (!running_.load()) return;
    size_t available = 0;
    for (size_t shard = 0; shard < backends_.size(); ++shard) {
      Backend& backend = *backends_[shard];
      if (backend.breaker.state() == CircuitBreaker::State::kClosed) {
        ++available;
        continue;
      }
      // Open (or half-open) breaker: try to become the probe. A healthy
      // answer closes the breaker without waiting for client traffic.
      if (!backend.breaker.AllowRequest(Clock::now())) continue;
      auto client = backend.pool.Acquire();
      bool healthy = false;
      if (client.ok()) {
        auto stats = client->GetStats();
        if (stats.ok()) {
          healthy = true;
          backend.pool.Release(std::move(client).value());
        }
      }
      if (healthy) {
        backend.breaker.RecordSuccess();
        ++available;
      } else {
        backend.breaker.RecordFailure(Clock::now());
        backend_failures_->Increment();
      }
    }
    backends_available_->Set(static_cast<double>(available));
  }
}

}  // namespace svq::cluster
