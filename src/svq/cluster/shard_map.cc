#include "svq/cluster/shard_map.h"

#include <algorithm>
#include <utility>

#include "svq/io/bytes.h"
#include "svq/io/checksum_format.h"

namespace svq::cluster {

namespace {

/// "SVSM" little-endian — shard-map payload magic, distinct from the
/// storage artifacts' per-format magics.
constexpr uint32_t kShardMapMagic = 0x4d535653;
constexpr uint32_t kShardMapFormatVersion = 1;
/// Upper bounds on untrusted counts/lengths: validated before any
/// allocation is sized from them.
constexpr uint32_t kMaxShards = 4096;
constexpr uint64_t kMaxNameBytes = 4096;

}  // namespace

int ShardMap::ShardOf(const std::string& video) const {
  const auto it = assignments.find(video);
  if (it == assignments.end()) return -1;
  return static_cast<int>(it->second);
}

Status ShardMap::Validate() const {
  if (shards.empty()) {
    return Status::InvalidArgument("shard map has no shards");
  }
  if (shards.size() > kMaxShards) {
    return Status::InvalidArgument("shard map has too many shards");
  }
  for (const ShardEndpoint& shard : shards) {
    if (shard.host.empty()) {
      return Status::InvalidArgument("shard endpoint host is empty");
    }
  }
  for (const auto& [video, shard] : assignments) {
    if (video.empty()) {
      return Status::InvalidArgument("assignment with empty video name");
    }
    if (shard >= shards.size()) {
      return Status::InvalidArgument(
          "video '" + video + "' assigned to shard " +
          std::to_string(shard) + " but the map has only " +
          std::to_string(shards.size()) + " shard(s)");
    }
  }
  return Status::OK();
}

Result<ShardMap> AssignContiguous(std::vector<std::string> names,
                                  std::vector<ShardEndpoint> shards,
                                  uint64_t version) {
  if (shards.empty()) {
    return Status::InvalidArgument("need at least one shard");
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  ShardMap map;
  map.version = version;
  map.shards = std::move(shards);
  const size_t n = names.size();
  const size_t s = map.shards.size();
  const size_t base = n / s;
  const size_t remainder = n % s;
  size_t next = 0;
  for (size_t shard = 0; shard < s; ++shard) {
    const size_t take = base + (shard < remainder ? 1 : 0);
    for (size_t i = 0; i < take; ++i) {
      map.assignments[names[next++]] = static_cast<uint32_t>(shard);
    }
  }
  SVQ_RETURN_NOT_OK(map.Validate());
  return map;
}

Status SaveShardMap(io::Env* env, const std::string& path,
                    const ShardMap& map) {
  if (env == nullptr) return Status::InvalidArgument("env must be set");
  SVQ_RETURN_NOT_OK(map.Validate());
  std::string payload;
  io::AppendValue(&payload, kShardMapMagic);
  io::AppendValue(&payload, kShardMapFormatVersion);
  io::AppendValue(&payload, map.version);
  io::AppendValue(&payload, static_cast<uint32_t>(map.shards.size()));
  for (const ShardEndpoint& shard : map.shards) {
    io::AppendLengthPrefixedString(&payload, shard.host);
    io::AppendValue(&payload, static_cast<uint32_t>(shard.port));
  }
  io::AppendValue(&payload, static_cast<uint32_t>(map.assignments.size()));
  for (const auto& [video, shard] : map.assignments) {
    io::AppendLengthPrefixedString(&payload, video);
    io::AppendValue(&payload, shard);
  }
  io::AppendChecksumFooter(&payload);
  return io::WriteFileAtomic(env, path, payload);
}

Result<ShardMap> LoadShardMap(const std::string& path) {
  SVQ_ASSIGN_OR_RETURN(const std::string file, io::ReadFileToString(path));
  SVQ_ASSIGN_OR_RETURN(const std::string_view payload,
                       io::StripChecksumFooter(file, path));
  io::ByteReader reader(payload);
  uint32_t magic = 0;
  uint32_t format = 0;
  ShardMap map;
  if (!reader.Read(&magic) || magic != kShardMapMagic) {
    return Status::Corruption("'" + path + "': bad shard-map magic");
  }
  if (!reader.Read(&format) || format != kShardMapFormatVersion) {
    return Status::Corruption("'" + path +
                              "': unsupported shard-map format version");
  }
  if (!reader.Read(&map.version)) {
    return Status::Corruption("'" + path + "': truncated shard-map header");
  }
  uint32_t shard_count = 0;
  if (!reader.Read(&shard_count) || shard_count > kMaxShards) {
    return Status::Corruption("'" + path + "': bad shard count");
  }
  map.shards.reserve(shard_count);
  for (uint32_t i = 0; i < shard_count; ++i) {
    ShardEndpoint shard;
    uint32_t port = 0;
    if (!reader.ReadLengthPrefixedString(&shard.host, kMaxNameBytes) ||
        !reader.Read(&port) || port > 65535) {
      return Status::Corruption("'" + path + "': malformed shard endpoint");
    }
    shard.port = static_cast<uint16_t>(port);
    map.shards.push_back(std::move(shard));
  }
  uint32_t assignment_count = 0;
  if (!reader.Read(&assignment_count)) {
    return Status::Corruption("'" + path + "': truncated assignment count");
  }
  for (uint32_t i = 0; i < assignment_count; ++i) {
    std::string video;
    uint32_t shard = 0;
    if (!reader.ReadLengthPrefixedString(&video, kMaxNameBytes) ||
        !reader.Read(&shard)) {
      return Status::Corruption("'" + path + "': malformed assignment");
    }
    map.assignments[std::move(video)] = shard;
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("'" + path +
                              "': trailing bytes after shard map");
  }
  SVQ_RETURN_NOT_OK(map.Validate());
  return map;
}

}  // namespace svq::cluster
