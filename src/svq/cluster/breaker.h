#ifndef SVQ_CLUSTER_BREAKER_H_
#define SVQ_CLUSTER_BREAKER_H_

#include <chrono>
#include <mutex>

namespace svq::cluster {

/// Per-backend circuit breaker (the classic three-state machine):
///
///   kClosed    — requests flow; `failure_threshold` *consecutive*
///                transport failures trip the breaker open.
///   kOpen      — requests are refused locally (Unavailable) without
///                touching the backend; after `cooldown` the next
///                AllowRequest admits exactly one probe (-> kHalfOpen).
///   kHalfOpen  — one probe is in flight; everyone else is refused.
///                Probe success closes the breaker, probe failure re-opens
///                it for another cooldown.
///
/// Thread safe: router workers and the health checker share one breaker
/// per backend. Callers pass their own `now` so tests can drive time.
class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Consecutive failures that trip kClosed -> kOpen.
    int failure_threshold = 3;
    /// How long kOpen refuses before admitting a probe.
    std::chrono::milliseconds cooldown{1000};
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() : options_{3, std::chrono::milliseconds(1000)} {}
  explicit CircuitBreaker(Options options) : options_(options) {}

  /// Whether the caller may issue a request now. In kOpen past the
  /// cooldown this transitions to kHalfOpen and admits the caller as the
  /// probe; the caller MUST then report the outcome via RecordSuccess /
  /// RecordFailure or the breaker stays half-open forever.
  bool AllowRequest(Clock::time_point now = Clock::now()) {
    std::lock_guard<std::mutex> lock(mu_);
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen:
        if (now >= open_until_) {
          state_ = State::kHalfOpen;
          return true;  // the probe
        }
        return false;
      case State::kHalfOpen:
        return false;  // probe already outstanding
    }
    return false;
  }

  void RecordSuccess() {
    std::lock_guard<std::mutex> lock(mu_);
    consecutive_failures_ = 0;
    state_ = State::kClosed;
  }

  void RecordFailure(Clock::time_point now = Clock::now()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kHalfOpen) {
      // Failed probe: straight back to open for another cooldown.
      state_ = State::kOpen;
      open_until_ = now + options_.cooldown;
      return;
    }
    ++consecutive_failures_;
    if (state_ == State::kClosed &&
        consecutive_failures_ >= options_.failure_threshold) {
      state_ = State::kOpen;
      open_until_ = now + options_.cooldown;
    }
  }

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

 private:
  const Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  Clock::time_point open_until_{};
};

}  // namespace svq::cluster

#endif  // SVQ_CLUSTER_BREAKER_H_
