#ifndef SVQ_STREAM_SHARED_MODELS_H_
#define SVQ_STREAM_SHARED_MODELS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "svq/common/result.h"
#include "svq/models/action_recognizer.h"
#include "svq/models/model_profile.h"
#include "svq/models/object_detector.h"
#include "svq/models/synthetic_models.h"
#include "svq/video/synthetic_video.h"
#include "svq/video/video_stream.h"

namespace svq::stream {

/// Shared-inference model pool for one feed (docs/streaming.md).
///
/// Many standing queries over the same feed would each instantiate their
/// own detector/recognizer and re-run inference on every clip — N queries,
/// N model passes. The pool instead keeps ONE underlying synthetic model
/// per distinct profile, built with the union vocabulary of every
/// subscriber, and memoizes its output per occurrence unit within the
/// current clip. Subscribers get lightweight *views* implementing the
/// model interfaces: a view forwards to the shared memo (so each frame /
/// shot runs the real model at most once per clip, no matter how many
/// subscribers ask) while charging its own InferenceStats exactly what a
/// dedicated model would have charged — the engines' virtual-time
/// accounting, adaptive predicate ordering, and OnlineStats::model_ms are
/// bit-identical to dedicated execution.
///
/// Correctness of the fan-out rests on a property of the synthetic models
/// (models/synthetic_models.cc): per-label output is a pure function of
/// (video, profile, seed, label, unit) — the vocabulary only selects which
/// labels are iterated. A union-vocabulary model therefore emits, for each
/// subscriber's labels, exactly the detections a dedicated model would,
/// and extra labels are ignored by predicate evaluation. Growing the
/// vocabulary when a new subscriber arrives is equally safe: overlays are
/// regenerated per label from the same seeds.
///
/// RunStats() is what was actually executed; ChargedStats() is what
/// dedicated per-query models would have executed. Their difference is the
/// shared-inference saving surfaced as svq_stream_* metrics.
///
/// Thread safety: all members are safe for concurrent use; the per-clip
/// memo is guarded by a per-model mutex. BeginClip() must not race Detect /
/// Recognize calls of the *same* feed — the dispatcher guarantees that by
/// serializing dispatch per feed.
class SharedModelPool {
 public:
  // Opaque shared-model states (defined in shared_models.cc; public so the
  // file-local subscriber views there can hold them).
  struct SharedDetectorState;
  struct SharedRecognizerState;

  explicit SharedModelPool(std::shared_ptr<const video::SyntheticVideo> video);
  ~SharedModelPool();

  SharedModelPool(const SharedModelPool&) = delete;
  SharedModelPool& operator=(const SharedModelPool&) = delete;

  /// A subscriber view over the shared detector for `profile`/`seed`,
  /// with `labels` added to the union vocabulary (rebuilding the shared
  /// model if they are new). The view is valid for the pool's lifetime.
  std::unique_ptr<models::ObjectDetector> DetectorView(
      const models::DetectorProfile& profile, uint64_t seed,
      const std::vector<std::string>& labels);

  /// Likewise for the shared recognizer.
  std::unique_ptr<models::ActionRecognizer> RecognizerView(
      const models::DetectorProfile& profile, uint64_t seed,
      const std::vector<std::string>& labels);

  /// Invalidates every per-clip memo; call once per dispatched clip,
  /// before any subscriber engine runs.
  void BeginClip();

  /// Inference actually executed by the shared models (units de-duplicated
  /// across subscribers).
  models::InferenceStats RunStats() const;
  /// Inference charged to subscriber views — what N dedicated engines
  /// would have executed.
  models::InferenceStats ChargedStats() const;

 private:
  std::shared_ptr<const video::SyntheticVideo> video_;
  mutable std::mutex mu_;  // guards the state maps only
  std::unordered_map<uint64_t, std::shared_ptr<SharedDetectorState>>
      detectors_;
  std::unordered_map<uint64_t, std::shared_ptr<SharedRecognizerState>>
      recognizers_;
};

}  // namespace svq::stream

#endif  // SVQ_STREAM_SHARED_MODELS_H_
