#include "svq/stream/subscription.h"

#include <utility>

namespace svq::stream {

Subscription::Subscription(uint64_t id, std::string feed,
                           std::string statement, size_t queue_capacity)
    : id_(id),
      feed_(std::move(feed)),
      statement_(std::move(statement)),
      queue_(queue_capacity) {}

Subscription::~Subscription() = default;

std::deque<StreamEvent> Subscription::Poll(size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.Pop(max);
}

size_t Subscription::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool Subscription::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.terminal_queued();
}

int64_t Subscription::dropped_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_total_;
}

core::OnlineStats Subscription::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_stats_;
}

Subscription::PushOutcome Subscription::ProcessClip(
    const video::ClipRef& clip, Status* status) {
  PushOutcome outcome;
  *status = engine_->ProcessClip(clip);
  if (!status->ok()) return outcome;
  const std::vector<video::Interval> completed = engine_->TakeCompleted();
  std::lock_guard<std::mutex> lock(mu_);
  last_stats_ = engine_->Snapshot();
  for (const video::Interval& interval : completed) {
    StreamEvent event;
    event.kind = StreamEvent::Kind::kSequence;
    event.sequence = interval;
    outcome.dropped += queue_.Push(std::move(event));
    ++outcome.pushed;
  }
  dropped_total_ += outcome.dropped;
  return outcome;
}

Subscription::PushOutcome Subscription::FinishStream() {
  PushOutcome outcome;
  std::vector<video::Interval> completed;
  if (engine_ != nullptr) {
    engine_->Finish();
    completed = engine_->TakeCompleted();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.terminal_queued()) return outcome;
  if (engine_ != nullptr) last_stats_ = engine_->Snapshot();
  for (const video::Interval& interval : completed) {
    StreamEvent event;
    event.kind = StreamEvent::Kind::kSequence;
    event.sequence = interval;
    outcome.dropped += queue_.Push(std::move(event));
    ++outcome.pushed;
  }
  StreamEvent end;
  end.kind = StreamEvent::Kind::kEndOfStream;
  outcome.dropped += queue_.Push(std::move(end));
  ++outcome.pushed;
  dropped_total_ += outcome.dropped;
  return outcome;
}

Subscription::PushOutcome Subscription::FailStream(Status status) {
  PushOutcome outcome;
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.terminal_queued()) return outcome;
  StreamEvent event;
  event.kind = StreamEvent::Kind::kError;
  event.status = std::move(status);
  outcome.dropped += queue_.Push(std::move(event));
  ++outcome.pushed;
  dropped_total_ += outcome.dropped;
  return outcome;
}

}  // namespace svq::stream
