#ifndef SVQ_STREAM_DISPATCHER_H_
#define SVQ_STREAM_DISPATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svq/cache/kcrit_table.h"
#include "svq/common/result.h"
#include "svq/core/engine.h"
#include "svq/stream/shared_models.h"
#include "svq/stream/subscription.h"
#include "svq/video/video_stream.h"

namespace svq::stream {

/// Dispatcher-wide tunables.
struct StreamOptions {
  /// Default per-subscription event queue capacity (the lag/drop policy
  /// bound; docs/streaming.md). Subscribers may request less, never more.
  size_t event_queue_capacity = 256;
  /// Standing queries per feed beyond this are rejected with
  /// kResourceExhausted.
  int max_subscriptions_per_feed = 64;
};

/// Point-in-time dispatcher counters (monotonic since construction, except
/// the two gauges).
struct DispatcherStats {
  int64_t feeds_created = 0;
  int64_t feeds_open = 0;  ///< gauge
  int64_t subscriptions_opened = 0;
  int64_t subscriptions_active = 0;  ///< gauge
  int64_t clips_dispatched = 0;
  int64_t events_pushed = 0;
  int64_t events_dropped = 0;
  /// Shared-inference accounting: units/ms the shared models actually ran
  /// vs. what dedicated per-query models would have run. The difference is
  /// the saving.
  int64_t model_units_run = 0;
  int64_t model_units_charged = 0;
  double model_ms_run = 0.0;
  double model_ms_charged = 0.0;
};

/// Per-subscription knobs for StreamDispatcher::Subscribe.
struct SubscribeOptions {
  core::OnlineEngine::Mode mode = core::OnlineEngine::Mode::kSvaqd;
  /// 0 = dispatcher default; larger values are clamped to it.
  size_t queue_capacity = 0;
  /// Lifetime bound of the standing query in ms; 0 = unbounded. On expiry
  /// the next dispatched clip fails the query with kDeadlineExceeded and a
  /// kError terminal event is queued.
  uint32_t timeout_ms = 0;
};

/// Cursor state of one feed after a FeedClips call.
struct FeedProgress {
  int64_t clips_dispatched = 0;
  int64_t next_clip = 0;
  int64_t num_clips = 0;
  /// The feed reached the end of its bound video and has been drained
  /// (subscribers got their trailing flush + kEndOfStream).
  bool closed = false;
};

/// Continuous-query multiplexer (docs/streaming.md): standing SVAQ/SVAQD
/// statements subscribe to a named live feed; clips dispatched into the
/// feed run each distinct model once (SharedModelPool) and fan out to
/// every subscribed engine; completed result sequences surface as events
/// in each subscription's bounded queue.
///
/// A feed is bound to a registered video of the engine's catalog — the
/// snapshot is pinned at feed creation, so every standing query on the
/// feed sees one consistent catalog view for its whole life, and all
/// co-located subscribers share the snapshot's k_crit L2 table. Clips are
/// dispatched either synchronously (FeedClips — the wire FEED verb) or by
/// the dispatcher worker pumping an attached VideoStream source. When the
/// cursor reaches the end of the bound video the feed drains: every
/// subscriber's engine is Finish()ed (trailing open sequence flushed),
/// kEndOfStream is queued, and the feed closes.
///
/// Threading: dispatch is serialized per feed (distinct feeds dispatch
/// concurrently); Subscribe/Unsubscribe/Poll may run from any thread. The
/// event callback is invoked WITHOUT any dispatcher or feed lock held, so
/// it may re-enter the dispatcher or take unrelated locks freely.
class StreamDispatcher {
 public:
  /// Called after dispatch queues >= 1 new event on a subscription; the
  /// server uses it to push EVENT frames. May be invoked from whichever
  /// thread dispatched the clip (a FeedClips caller or the worker).
  using EventCallback = std::function<void(uint64_t subscription_id)>;

  /// `engine` is borrowed and must outlive the dispatcher.
  StreamDispatcher(core::VideoQueryEngine* engine, StreamOptions options = {});
  ~StreamDispatcher();

  StreamDispatcher(const StreamDispatcher&) = delete;
  StreamDispatcher& operator=(const StreamDispatcher&) = delete;

  /// Must be set before any clip is dispatched (not thread safe against
  /// dispatch). Optional — in-process consumers can simply Poll.
  void set_event_callback(EventCallback callback);

  /// Registers a standing query. `feed_name` may be empty, in which case
  /// the statement's source video names the feed. The feed is created on
  /// first use, pinning the engine's current snapshot; an existing feed
  /// must be bound to the statement's video. Errors: InvalidArgument
  /// (parse/bind failure, ranked statement), NotFound (video not
  /// registered), FailedPrecondition (feed closed / bound elsewhere),
  /// kResourceExhausted (per-feed subscription cap).
  Result<SubscriptionPtr> Subscribe(const std::string& feed_name,
                                    const std::string& statement,
                                    const SubscribeOptions& options = {});

  /// Cancels and detaches a subscription. Queued events stay pollable;
  /// no terminal event is added (the consumer asked to stop). Errors:
  /// NotFound.
  Status Unsubscribe(uint64_t subscription_id);

  /// Dispatches up to `max_clips` clips from the feed's cursor on the
  /// calling thread, draining and closing the feed when the bound video
  /// ends. Errors: NotFound (no such feed), InvalidArgument
  /// (max_clips < 1). A feed that was already closed returns
  /// FailedPrecondition.
  Result<FeedProgress> FeedClips(const std::string& feed_name,
                                 int64_t max_clips);

  /// Hands a live source to the dispatcher worker, which pumps its clips
  /// into the feed until the source ends, then drains and closes the feed.
  /// The feed is created if absent, bound to `video_name` (the source's
  /// clips must come from that video). Errors: NotFound,
  /// FailedPrecondition (feed closed or already has a source attached).
  Status AttachSource(const std::string& feed_name,
                      const std::string& video_name,
                      std::unique_ptr<video::VideoStream> source);

  /// Drains and closes a feed now: subscribers get their trailing flush +
  /// kEndOfStream. Errors: NotFound.
  Status CloseFeed(const std::string& feed_name);

  bool HasFeed(const std::string& feed_name) const;

  /// The subscription with this id, or nullptr.
  SubscriptionPtr Find(uint64_t subscription_id) const;

  DispatcherStats Stats() const;

 private:
  struct Feed {
    std::string name;
    core::SnapshotPtr snapshot;
    const core::CatalogSnapshot::Entry* entry = nullptr;
    std::shared_ptr<svq::cache::KcritTable> kcrit;
    std::unique_ptr<SharedModelPool> pool;

    /// Serializes dispatch and membership changes on this feed.
    std::mutex mu;
    std::vector<SubscriptionPtr> subs;
    int64_t next_clip = 0;
    int64_t num_clips = 0;
    bool closed = false;
    bool source_attached = false;

    /// Pool accounting already folded into the dispatcher counters
    /// (guarded by mu; see FoldPoolStatsLocked).
    models::InferenceStats folded_run;
    models::InferenceStats folded_charged;
  };
  using FeedPtr = std::shared_ptr<Feed>;

  /// Finds or creates the feed bound to `video_name` (mu_ taken inside).
  Result<FeedPtr> EnsureFeed(const std::string& feed_name,
                             const std::string& video_name);

  /// Dispatches one clip to every live subscription (feed->mu held).
  /// Appends subscriptions with fresh events to `notify`.
  void DispatchOneLocked(const FeedPtr& feed, const video::ClipRef& clip,
                         std::vector<uint64_t>* notify);

  /// Drains + closes the feed (feed->mu held); fills `notify`.
  void CloseFeedLocked(const FeedPtr& feed, std::vector<uint64_t>* notify);

  /// Invokes the event callback for each id, with no locks held.
  void Notify(const std::vector<uint64_t>& notify);

  /// Folds one feed pool's inference accounting into the dispatcher-wide
  /// counters as a delta since the previous fold (feed->mu held).
  void FoldPoolStatsLocked(const FeedPtr& feed);

  void WorkerLoop();

  core::VideoQueryEngine* const engine_;
  const StreamOptions options_;
  EventCallback event_callback_;

  mutable std::mutex mu_;  // guards feeds_, subs_, worker queue
  std::map<std::string, FeedPtr> feeds_;
  std::map<uint64_t, SubscriptionPtr> subs_;
  std::atomic<uint64_t> next_subscription_id_{1};

  struct SourceTask {
    std::string feed_name;
    std::unique_ptr<video::VideoStream> source;
  };
  std::deque<SourceTask> source_tasks_;
  std::condition_variable worker_cv_;
  bool stop_worker_ = false;
  std::thread worker_;

  // Counters (relaxed: read by Stats, written by dispatch paths).
  std::atomic<int64_t> feeds_created_{0};
  std::atomic<int64_t> subscriptions_opened_{0};
  std::atomic<int64_t> subscriptions_active_{0};
  std::atomic<int64_t> clips_dispatched_{0};
  std::atomic<int64_t> events_pushed_{0};
  std::atomic<int64_t> events_dropped_{0};
  std::atomic<int64_t> model_units_run_{0};
  std::atomic<int64_t> model_units_charged_{0};
  std::atomic<double> model_ms_run_{0.0};
  std::atomic<double> model_ms_charged_{0.0};
};

}  // namespace svq::stream

#endif  // SVQ_STREAM_DISPATCHER_H_
