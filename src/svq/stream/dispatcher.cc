#include "svq/stream/dispatcher.h"

#include <algorithm>
#include <utility>

#include "svq/query/binder.h"
#include "svq/query/executor.h"

namespace svq::stream {

StreamDispatcher::StreamDispatcher(core::VideoQueryEngine* engine,
                                   StreamOptions options)
    : engine_(engine), options_(options) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

StreamDispatcher::~StreamDispatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_worker_ = true;
  }
  worker_cv_.notify_all();
  worker_.join();
  // Cancel whatever is still standing so engines never run again; no
  // terminal events — consumers holding SubscriptionPtrs outlive us and
  // can still drain what was queued.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, sub] : subs_) sub->Cancel();
}

void StreamDispatcher::set_event_callback(EventCallback callback) {
  event_callback_ = std::move(callback);
}

Result<StreamDispatcher::FeedPtr> StreamDispatcher::EnsureFeed(
    const std::string& feed_name, const std::string& video_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = feeds_.find(feed_name);
  if (it != feeds_.end()) {
    if (it->second->entry->video->name() != video_name) {
      return Status::FailedPrecondition(
          "feed '" + feed_name + "' is bound to video '" +
          it->second->entry->video->name() + "', not '" + video_name + "'");
    }
    return it->second;
  }
  core::SnapshotPtr snapshot = engine_->Pin();
  const core::CatalogSnapshot::Entry* entry = snapshot->Find(video_name);
  if (entry == nullptr) {
    return Status::NotFound("video '" + video_name + "' is not registered");
  }
  if (entry->video == nullptr) {
    // Registered via AddIngested: there are no raw frames to feed the
    // standing-query engines with.
    return Status::FailedPrecondition(
        "video '" + video_name +
        "' was opened from ingested artifacts; streaming needs the raw "
        "video");
  }
  auto feed = std::make_shared<Feed>();
  feed->name = feed_name;
  feed->snapshot = std::move(snapshot);
  feed->entry = entry;
  // Every standing query on this feed shares one k_crit L2: the snapshot's
  // when the engine runs with caching enabled, a feed-local table
  // otherwise — co-located subscribers compute each quantized critical
  // value once between them either way.
  feed->kcrit = feed->snapshot->cache != nullptr
                    ? feed->snapshot->cache->kcrit_table()
                    : std::make_shared<svq::cache::KcritTable>();
  feed->pool = std::make_unique<SharedModelPool>(entry->video);
  feed->num_clips = entry->video->NumClips();
  feeds_.emplace(feed_name, feed);
  feeds_created_.fetch_add(1, std::memory_order_relaxed);
  return feed;
}

Result<SubscriptionPtr> StreamDispatcher::Subscribe(
    const std::string& feed_name, const std::string& statement,
    const SubscribeOptions& options) {
  SVQ_ASSIGN_OR_RETURN(query::BoundQuery bound,
                       query::ParseAndBind(statement));
  if (bound.ranked) {
    return Status::InvalidArgument(
        "standing queries take streaming statements; ranked statements "
        "(RANK / ORDER BY ... LIMIT) have a definite end and belong on the "
        "QUERY verb");
  }
  const std::string resolved_feed =
      feed_name.empty() ? bound.video : feed_name;
  SVQ_ASSIGN_OR_RETURN(FeedPtr feed, EnsureFeed(resolved_feed, bound.video));

  const uint64_t id =
      next_subscription_id_.fetch_add(1, std::memory_order_relaxed);
  size_t capacity = options_.event_queue_capacity;
  if (options.queue_capacity != 0) {
    capacity = std::min(capacity, options.queue_capacity);
  }
  SubscriptionPtr sub(
      new Subscription(id, resolved_feed, statement, capacity));

  {
    std::lock_guard<std::mutex> lock(feed->mu);
    if (feed->closed) {
      return Status::FailedPrecondition("feed '" + resolved_feed +
                                        "' is closed");
    }
    if (static_cast<int>(feed->subs.size()) >=
        options_.max_subscriptions_per_feed) {
      return Status(StatusCode::kResourceExhausted,
                    "feed '" + resolved_feed + "' is at its subscription "
                    "cap (" +
                        std::to_string(options_.max_subscriptions_per_feed) +
                        ")");
    }
    const models::ModelSuite suite =
        query::ResolveSuiteFor(feed->snapshot->suite, bound);
    sub->detector_ = feed->pool->DetectorView(
        suite.object_profile, suite.seed, bound.query.AllObjectLabels());
    sub->recognizer_ = feed->pool->RecognizerView(
        suite.action_profile, suite.seed, bound.query.AllActions());
    ExecutionContext context;
    context.set_cancellation(sub->cancel_.token());
    if (options.timeout_ms > 0) {
      context.set_deadline(ExecutionContext::Clock::now() +
                           std::chrono::milliseconds(options.timeout_ms));
    }
    SVQ_ASSIGN_OR_RETURN(
        sub->engine_,
        core::OnlineEngine::Create(options.mode, bound.query,
                                   feed->snapshot->online_config,
                                   feed->entry->video->layout(),
                                   sub->detector_.get(),
                                   sub->recognizer_.get(), context,
                                   feed->kcrit));
    feed->subs.push_back(sub);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    subs_.emplace(id, sub);
  }
  subscriptions_opened_.fetch_add(1, std::memory_order_relaxed);
  subscriptions_active_.fetch_add(1, std::memory_order_relaxed);
  return sub;
}

Status StreamDispatcher::Unsubscribe(uint64_t subscription_id) {
  SubscriptionPtr sub;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = subs_.find(subscription_id);
    if (it == subs_.end()) {
      return Status::NotFound("no subscription " +
                              std::to_string(subscription_id));
    }
    sub = it->second;
    subs_.erase(it);
  }
  // Fire cancellation and detach; the feed's dispatch loop prunes the
  // entry at the next clip boundary. Deliberately cheap — safe to call
  // from the server's IO thread on disconnect without blocking behind an
  // in-flight clip dispatch.
  sub->Cancel();
  if (sub->MarkDetached()) {
    subscriptions_active_.fetch_sub(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void StreamDispatcher::DispatchOneLocked(const FeedPtr& feed,
                                         const video::ClipRef& clip,
                                         std::vector<uint64_t>* notify) {
  feed->pool->BeginClip();
  for (const SubscriptionPtr& sub : feed->subs) {
    if (sub->detached()) continue;
    Status status;
    Subscription::PushOutcome outcome = sub->ProcessClip(clip, &status);
    if (!status.ok()) {
      const Subscription::PushOutcome fail = sub->FailStream(status);
      outcome.pushed += fail.pushed;
      outcome.dropped += fail.dropped;
      if (sub->MarkDetached()) {
        subscriptions_active_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    events_pushed_.fetch_add(static_cast<int64_t>(outcome.pushed),
                             std::memory_order_relaxed);
    events_dropped_.fetch_add(outcome.dropped, std::memory_order_relaxed);
    if (outcome.pushed > 0) notify->push_back(sub->id());
  }
  feed->subs.erase(
      std::remove_if(feed->subs.begin(), feed->subs.end(),
                     [](const SubscriptionPtr& s) { return s->detached(); }),
      feed->subs.end());
  clips_dispatched_.fetch_add(1, std::memory_order_relaxed);
  FoldPoolStatsLocked(feed);
}

void StreamDispatcher::CloseFeedLocked(const FeedPtr& feed,
                                       std::vector<uint64_t>* notify) {
  if (feed->closed) return;
  feed->closed = true;
  for (const SubscriptionPtr& sub : feed->subs) {
    if (!sub->detached()) {
      const Subscription::PushOutcome outcome = sub->FinishStream();
      events_pushed_.fetch_add(static_cast<int64_t>(outcome.pushed),
                               std::memory_order_relaxed);
      events_dropped_.fetch_add(outcome.dropped, std::memory_order_relaxed);
      if (outcome.pushed > 0) notify->push_back(sub->id());
    }
    if (sub->MarkDetached()) {
      subscriptions_active_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  feed->subs.clear();
  FoldPoolStatsLocked(feed);
}

void StreamDispatcher::Notify(const std::vector<uint64_t>& notify) {
  if (!event_callback_) return;
  for (const uint64_t id : notify) event_callback_(id);
}

void StreamDispatcher::FoldPoolStatsLocked(const FeedPtr& feed) {
  const models::InferenceStats run = feed->pool->RunStats();
  const models::InferenceStats charged = feed->pool->ChargedStats();
  model_units_run_.fetch_add(run.units - feed->folded_run.units,
                             std::memory_order_relaxed);
  model_ms_run_.fetch_add(run.simulated_ms - feed->folded_run.simulated_ms,
                          std::memory_order_relaxed);
  model_units_charged_.fetch_add(charged.units - feed->folded_charged.units,
                                 std::memory_order_relaxed);
  model_ms_charged_.fetch_add(
      charged.simulated_ms - feed->folded_charged.simulated_ms,
      std::memory_order_relaxed);
  feed->folded_run = run;
  feed->folded_charged = charged;
}

Result<FeedProgress> StreamDispatcher::FeedClips(const std::string& feed_name,
                                                 int64_t max_clips) {
  if (max_clips < 1) {
    return Status::InvalidArgument("max_clips must be >= 1");
  }
  FeedPtr feed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = feeds_.find(feed_name);
    if (it == feeds_.end()) {
      return Status::NotFound("no feed '" + feed_name + "'");
    }
    feed = it->second;
  }
  FeedProgress progress;
  std::vector<uint64_t> notify;
  {
    std::lock_guard<std::mutex> lock(feed->mu);
    if (feed->closed) {
      return Status::FailedPrecondition("feed '" + feed_name +
                                        "' is closed");
    }
    for (int64_t i = 0; i < max_clips && feed->next_clip < feed->num_clips;
         ++i) {
      const video::ClipRef clip = video::MakeClipRef(
          feed->entry->video->layout(), feed->entry->id, feed->next_clip,
          feed->entry->video->num_frames());
      DispatchOneLocked(feed, clip, &notify);
      ++feed->next_clip;
      ++progress.clips_dispatched;
    }
    // The bound video is exhausted: drain and close so subscribers get
    // their trailing flush + kEndOfStream instead of waiting forever.
    if (feed->next_clip >= feed->num_clips) {
      CloseFeedLocked(feed, &notify);
    }
    progress.next_clip = feed->next_clip;
    progress.num_clips = feed->num_clips;
    progress.closed = feed->closed;
  }
  if (progress.closed) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = feeds_.find(feed_name);
    if (it != feeds_.end() && it->second == feed) feeds_.erase(it);
  }
  Notify(notify);
  return progress;
}

Status StreamDispatcher::AttachSource(
    const std::string& feed_name, const std::string& video_name,
    std::unique_ptr<video::VideoStream> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("source must be set");
  }
  SVQ_ASSIGN_OR_RETURN(FeedPtr feed, EnsureFeed(feed_name, video_name));
  {
    std::lock_guard<std::mutex> lock(feed->mu);
    if (feed->closed) {
      return Status::FailedPrecondition("feed '" + feed_name +
                                        "' is closed");
    }
    if (feed->source_attached) {
      return Status::FailedPrecondition("feed '" + feed_name +
                                        "' already has a source attached");
    }
    if (source->video_id() != feed->entry->id) {
      return Status::InvalidArgument(
          "source streams video id " +
          std::to_string(source->video_id()) + " but feed '" + feed_name +
          "' is bound to video id " + std::to_string(feed->entry->id));
    }
    feed->source_attached = true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    source_tasks_.push_back(SourceTask{feed_name, std::move(source)});
  }
  worker_cv_.notify_one();
  return Status::OK();
}

Status StreamDispatcher::CloseFeed(const std::string& feed_name) {
  FeedPtr feed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = feeds_.find(feed_name);
    if (it == feeds_.end()) {
      return Status::NotFound("no feed '" + feed_name + "'");
    }
    feed = it->second;
  }
  std::vector<uint64_t> notify;
  {
    std::lock_guard<std::mutex> lock(feed->mu);
    CloseFeedLocked(feed, &notify);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = feeds_.find(feed_name);
    if (it != feeds_.end() && it->second == feed) feeds_.erase(it);
  }
  Notify(notify);
  return Status::OK();
}

bool StreamDispatcher::HasFeed(const std::string& feed_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return feeds_.count(feed_name) > 0;
}

SubscriptionPtr StreamDispatcher::Find(uint64_t subscription_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(subscription_id);
  return it == subs_.end() ? nullptr : it->second;
}

DispatcherStats StreamDispatcher::Stats() const {
  DispatcherStats stats;
  stats.feeds_created = feeds_created_.load(std::memory_order_relaxed);
  stats.subscriptions_opened =
      subscriptions_opened_.load(std::memory_order_relaxed);
  stats.subscriptions_active =
      subscriptions_active_.load(std::memory_order_relaxed);
  stats.clips_dispatched = clips_dispatched_.load(std::memory_order_relaxed);
  stats.events_pushed = events_pushed_.load(std::memory_order_relaxed);
  stats.events_dropped = events_dropped_.load(std::memory_order_relaxed);
  stats.model_units_run = model_units_run_.load(std::memory_order_relaxed);
  stats.model_units_charged =
      model_units_charged_.load(std::memory_order_relaxed);
  stats.model_ms_run = model_ms_run_.load(std::memory_order_relaxed);
  stats.model_ms_charged =
      model_ms_charged_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.feeds_open = static_cast<int64_t>(feeds_.size());
  }
  return stats;
}

void StreamDispatcher::WorkerLoop() {
  for (;;) {
    SourceTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      worker_cv_.wait(lock, [this] {
        return stop_worker_ || !source_tasks_.empty();
      });
      if (stop_worker_) return;
      task = std::move(source_tasks_.front());
      source_tasks_.pop_front();
    }
    FeedPtr feed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = feeds_.find(task.feed_name);
      if (it != feeds_.end()) feed = it->second;
    }
    if (feed == nullptr) continue;  // feed closed before the pump started
    bool feed_closed = false;
    while (!feed_closed) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_worker_) return;
      }
      std::optional<video::ClipRef> clip = task.source->NextClip();
      std::vector<uint64_t> notify;
      {
        std::lock_guard<std::mutex> lock(feed->mu);
        if (feed->closed) {
          feed_closed = true;
        } else if (!clip.has_value()) {
          // Source exhausted: drain and close.
          CloseFeedLocked(feed, &notify);
          feed_closed = true;
        } else {
          DispatchOneLocked(feed, *clip, &notify);
          feed->next_clip = clip->clip + 1;
        }
      }
      if (feed_closed) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = feeds_.find(task.feed_name);
        if (it != feeds_.end() && it->second == feed) feeds_.erase(it);
      }
      Notify(notify);
    }
  }
}

}  // namespace svq::stream
