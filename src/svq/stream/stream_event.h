#ifndef SVQ_STREAM_STREAM_EVENT_H_
#define SVQ_STREAM_STREAM_EVENT_H_

#include <cstdint>
#include <deque>
#include <string>

#include "svq/common/status.h"
#include "svq/video/types.h"

namespace svq::stream {

/// One push notification to a subscriber (docs/streaming.md).
struct StreamEvent {
  enum class Kind : uint8_t {
    /// A completed result sequence of the standing query (clip domain,
    /// half-open interval — the paper's Eq. 4 output, surfaced as soon as
    /// it is conclusively closed).
    kSequence = 1,
    /// Lag marker: the subscriber fell behind its bounded event queue and
    /// `dropped` earlier events were discarded (never result corruption —
    /// later sequences are intact, the gap only says some were lost).
    /// `status` carries kResourceExhausted with a diagnostic message.
    kGap = 2,
    /// The feed drained or closed; the engine's trailing open sequence has
    /// been flushed (OnlineEngine::Finish) and no further events follow.
    kEndOfStream = 3,
    /// The standing query terminated with `status` (deadline exceeded,
    /// cancellation, model failure). No further events follow.
    kError = 4,
  };

  Kind kind = Kind::kSequence;
  /// Sequence interval for kSequence; zeros otherwise.
  video::Interval sequence{0, 0};
  /// Events discarded, for kGap; zero otherwise.
  int64_t dropped = 0;
  /// Non-OK for kGap (kResourceExhausted) and kError; OK otherwise.
  Status status;
};

/// Bounded per-subscriber event buffer implementing the lag/drop policy:
/// a slow consumer never blocks the feed. When the queue is full, the
/// oldest buffered events are coalesced into one kGap marker at the front
/// (so the consumer learns exactly how many it lost, in order), and the new
/// event is appended. Terminal events (kEndOfStream / kError) are always
/// delivered: they evict as needed but are never themselves dropped, and
/// the queue refuses pushes after one. Not thread safe — Subscription
/// guards it.
class EventQueue {
 public:
  /// `capacity` >= 2 (one slot must remain for a gap marker).
  explicit EventQueue(size_t capacity)
      : capacity_(capacity < 2 ? 2 : capacity) {}

  /// Appends an event, applying the drop policy. Returns the number of
  /// events newly discarded (0 when the queue had room).
  int64_t Push(StreamEvent event) {
    if (terminal_queued_) return 0;  // stream already over; nothing follows
    const bool terminal = event.kind == StreamEvent::Kind::kEndOfStream ||
                          event.kind == StreamEvent::Kind::kError;
    if (terminal) terminal_queued_ = true;
    int64_t dropped = 0;
    if (events_.size() >= capacity_) {
      // Coalesce the front of the queue into one gap marker: evict until
      // two slots are free (gap + the new event), absorbing any existing
      // gap's count so consecutive overflows keep one marker. The marker
      // carries the cumulative count; the return value counts only events
      // discarded by THIS push (an absorbed gap's total was already
      // returned when that gap was created — counting it again would
      // double-book the drop metrics).
      int64_t absorbed = 0;
      while (events_.size() > capacity_ - 2) {
        const StreamEvent& front = events_.front();
        if (front.kind == StreamEvent::Kind::kGap) {
          absorbed += front.dropped;
        } else {
          ++dropped;
        }
        events_.pop_front();
      }
      StreamEvent gap;
      gap.kind = StreamEvent::Kind::kGap;
      gap.dropped = absorbed + dropped;
      gap.status = Status(
          StatusCode::kResourceExhausted,
          "subscriber lagging: " + std::to_string(absorbed + dropped) +
              " event(s) dropped");
      events_.push_front(std::move(gap));
    }
    events_.push_back(std::move(event));
    return dropped;
  }

  /// Pops up to `max` buffered events (0 = all) in order.
  std::deque<StreamEvent> Pop(size_t max = 0) {
    if (max == 0 || max >= events_.size()) {
      std::deque<StreamEvent> out;
      out.swap(events_);
      return out;
    }
    std::deque<StreamEvent> out;
    while (out.size() < max) {
      out.push_back(std::move(events_.front()));
      events_.pop_front();
    }
    return out;
  }

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  size_t capacity() const { return capacity_; }
  /// True once a terminal event has been queued (or popped).
  bool terminal_queued() const { return terminal_queued_; }

 private:
  size_t capacity_;
  std::deque<StreamEvent> events_;
  bool terminal_queued_ = false;
};

}  // namespace svq::stream

#endif  // SVQ_STREAM_STREAM_EVENT_H_
