#include "svq/stream/shared_models.h"

#include <algorithm>
#include <utility>

#include "svq/cache/fingerprint.h"

namespace svq::stream {

namespace {

/// Stable identity of a shared model: everything that changes the model's
/// output or cost keys a separate underlying instance (two subscribers
/// with different USING clauses must not share).
uint64_t ProfileKey(const models::DetectorProfile& profile, uint64_t seed,
                    bool recognizer) {
  svq::cache::Fingerprint fp;
  fp.Mix(recognizer ? "recognizer" : "detector");
  fp.Mix(profile.name);
  fp.Mix(seed);
  fp.Mix(profile.tpr).Mix(profile.fpr);
  fp.Mix(profile.mean_miss_burst).Mix(profile.mean_fp_burst);
  fp.Mix(profile.true_score.alpha).Mix(profile.true_score.beta);
  fp.Mix(profile.false_score.alpha).Mix(profile.false_score.beta);
  fp.Mix(profile.cost_ms);
  fp.Mix(profile.ideal);
  for (const auto& [label, accuracy] : profile.label_accuracy) {
    fp.Mix(label).Mix(accuracy.tpr).Mix(accuracy.fpr);
  }
  return fp.value();
}

}  // namespace

// ---------------------------------------------------------------------------
// Shared state: one underlying model + per-clip memo per distinct profile.

struct SharedModelPool::SharedDetectorState {
  SharedDetectorState(std::shared_ptr<const video::SyntheticVideo> video,
                      models::DetectorProfile profile, uint64_t seed)
      : video(std::move(video)), profile(std::move(profile)), seed(seed) {}

  /// Rebuilds the underlying model when `labels` brings new vocabulary.
  /// Per-label overlays are pure functions of (video, profile, seed,
  /// label), so a rebuilt model agrees with the old one on every label it
  /// already knew. Stats of the replaced instance are retired so RunStats
  /// stays cumulative. Caller holds `mu`.
  void EnsureLabelsLocked(const std::vector<std::string>& labels) {
    bool grew = false;
    for (const auto& label : labels) grew |= vocabulary.insert(label).second;
    if (!grew && model != nullptr) return;
    if (model != nullptr) retired += model->stats();
    model = std::make_unique<models::SyntheticObjectDetector>(
        video, profile,
        std::vector<std::string>(vocabulary.begin(), vocabulary.end()), seed);
    memo.clear();
  }

  Result<std::vector<models::ObjectDetection>> Detect(
      video::FrameIndex frame) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = memo.find(frame);
    if (it != memo.end()) return it->second;
    SVQ_ASSIGN_OR_RETURN(std::vector<models::ObjectDetection> detections,
                         model->Detect(frame));
    memo.emplace(frame, detections);
    return detections;
  }

  std::shared_ptr<const video::SyntheticVideo> video;
  const models::DetectorProfile profile;
  const uint64_t seed;

  std::mutex mu;
  std::set<std::string> vocabulary;
  std::unique_ptr<models::SyntheticObjectDetector> model;
  models::InferenceStats retired;
  models::InferenceStats charged;
  std::unordered_map<int64_t, std::vector<models::ObjectDetection>> memo;
};

struct SharedModelPool::SharedRecognizerState {
  SharedRecognizerState(std::shared_ptr<const video::SyntheticVideo> video,
                        models::DetectorProfile profile, uint64_t seed)
      : video(std::move(video)), profile(std::move(profile)), seed(seed) {}

  void EnsureLabelsLocked(const std::vector<std::string>& labels) {
    bool grew = false;
    for (const auto& label : labels) grew |= vocabulary.insert(label).second;
    if (!grew && model != nullptr) return;
    if (model != nullptr) retired += model->stats();
    model = std::make_unique<models::SyntheticActionRecognizer>(
        video, profile,
        std::vector<std::string>(vocabulary.begin(), vocabulary.end()), seed);
    memo.clear();
  }

  Result<std::vector<models::ActionScore>> Recognize(
      const video::ShotRef& shot) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = memo.find(shot.shot);
    if (it != memo.end()) return it->second;
    SVQ_ASSIGN_OR_RETURN(std::vector<models::ActionScore> scores,
                         model->Recognize(shot));
    memo.emplace(shot.shot, scores);
    return scores;
  }

  std::shared_ptr<const video::SyntheticVideo> video;
  const models::DetectorProfile profile;
  const uint64_t seed;

  std::mutex mu;
  std::set<std::string> vocabulary;
  std::unique_ptr<models::SyntheticActionRecognizer> model;
  models::InferenceStats retired;
  models::InferenceStats charged;
  std::unordered_map<int64_t, std::vector<models::ActionScore>> memo;
};

namespace {

/// Subscriber-facing detector: forwards to the shared memo, charges its
/// own stats as if it were a dedicated model (1 unit x cost_ms per
/// successful Detect — the exact accrual of SyntheticObjectDetector).
class SubscriberDetector final : public models::ObjectDetector {
 public:
  SubscriberDetector(
      std::shared_ptr<SharedModelPool::SharedDetectorState> shared,
      std::vector<std::string> vocabulary)
      : shared_(std::move(shared)), vocabulary_(std::move(vocabulary)) {}

  Result<std::vector<models::ObjectDetection>> Detect(
      video::FrameIndex frame) override {
    auto result = shared_->Detect(frame);
    if (result.ok()) {
      stats_.Add(1, shared_->profile.cost_ms);
      std::lock_guard<std::mutex> lock(shared_->mu);
      shared_->charged.Add(1, shared_->profile.cost_ms);
    }
    return result;
  }

  const std::vector<std::string>& SupportedLabels() const override {
    return vocabulary_;
  }
  const std::string& name() const override { return shared_->profile.name; }
  const models::InferenceStats& stats() const override { return stats_; }

 private:
  std::shared_ptr<SharedModelPool::SharedDetectorState> shared_;
  std::vector<std::string> vocabulary_;
  models::InferenceStats stats_;
};

class SubscriberRecognizer final : public models::ActionRecognizer {
 public:
  SubscriberRecognizer(
      std::shared_ptr<SharedModelPool::SharedRecognizerState> shared,
      std::vector<std::string> vocabulary)
      : shared_(std::move(shared)), vocabulary_(std::move(vocabulary)) {}

  Result<std::vector<models::ActionScore>> Recognize(
      const video::ShotRef& shot) override {
    auto result = shared_->Recognize(shot);
    if (result.ok()) {
      stats_.Add(1, shared_->profile.cost_ms);
      std::lock_guard<std::mutex> lock(shared_->mu);
      shared_->charged.Add(1, shared_->profile.cost_ms);
    }
    return result;
  }

  const std::vector<std::string>& SupportedLabels() const override {
    return vocabulary_;
  }
  const std::string& name() const override { return shared_->profile.name; }
  const models::InferenceStats& stats() const override { return stats_; }

 private:
  std::shared_ptr<SharedModelPool::SharedRecognizerState> shared_;
  std::vector<std::string> vocabulary_;
  models::InferenceStats stats_;
};

}  // namespace

SharedModelPool::SharedModelPool(
    std::shared_ptr<const video::SyntheticVideo> video)
    : video_(std::move(video)) {}

SharedModelPool::~SharedModelPool() = default;

std::unique_ptr<models::ObjectDetector> SharedModelPool::DetectorView(
    const models::DetectorProfile& profile, uint64_t seed,
    const std::vector<std::string>& labels) {
  std::shared_ptr<SharedDetectorState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = detectors_[ProfileKey(profile, seed, /*recognizer=*/false)];
    if (slot == nullptr) {
      slot = std::make_shared<SharedDetectorState>(video_, profile, seed);
    }
    state = slot;
  }
  std::vector<std::string> vocabulary;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->EnsureLabelsLocked(labels);
    vocabulary = state->model->SupportedLabels();
  }
  return std::make_unique<SubscriberDetector>(std::move(state),
                                              std::move(vocabulary));
}

std::unique_ptr<models::ActionRecognizer> SharedModelPool::RecognizerView(
    const models::DetectorProfile& profile, uint64_t seed,
    const std::vector<std::string>& labels) {
  std::shared_ptr<SharedRecognizerState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = recognizers_[ProfileKey(profile, seed, /*recognizer=*/true)];
    if (slot == nullptr) {
      slot = std::make_shared<SharedRecognizerState>(video_, profile, seed);
    }
    state = slot;
  }
  std::vector<std::string> vocabulary;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->EnsureLabelsLocked(labels);
    vocabulary = state->model->SupportedLabels();
  }
  return std::make_unique<SubscriberRecognizer>(std::move(state),
                                                std::move(vocabulary));
}

void SharedModelPool::BeginClip() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, state] : detectors_) {
    std::lock_guard<std::mutex> state_lock(state->mu);
    state->memo.clear();
  }
  for (auto& [key, state] : recognizers_) {
    std::lock_guard<std::mutex> state_lock(state->mu);
    state->memo.clear();
  }
}

models::InferenceStats SharedModelPool::RunStats() const {
  models::InferenceStats total;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, state] : detectors_) {
    std::lock_guard<std::mutex> state_lock(state->mu);
    total += state->retired;
    if (state->model != nullptr) total += state->model->stats();
  }
  for (const auto& [key, state] : recognizers_) {
    std::lock_guard<std::mutex> state_lock(state->mu);
    total += state->retired;
    if (state->model != nullptr) total += state->model->stats();
  }
  return total;
}

models::InferenceStats SharedModelPool::ChargedStats() const {
  models::InferenceStats total;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, state] : detectors_) {
    std::lock_guard<std::mutex> state_lock(state->mu);
    total += state->charged;
  }
  for (const auto& [key, state] : recognizers_) {
    std::lock_guard<std::mutex> state_lock(state->mu);
    total += state->charged;
  }
  return total;
}

}  // namespace svq::stream
