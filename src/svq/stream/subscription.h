#ifndef SVQ_STREAM_SUBSCRIPTION_H_
#define SVQ_STREAM_SUBSCRIPTION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "svq/common/execution_context.h"
#include "svq/core/online_engine.h"
#include "svq/models/action_recognizer.h"
#include "svq/models/object_detector.h"
#include "svq/stream/stream_event.h"

namespace svq::stream {

class StreamDispatcher;

/// One standing query registered on a feed: an OnlineEngine fed every
/// dispatched clip, plus a bounded event queue the owner drains with
/// Poll(). Created by StreamDispatcher::Subscribe; the dispatcher drives
/// the engine, consumers only ever Poll/Cancel.
///
/// Thread safety: Poll/Cancel/stats/finished are safe from any thread and
/// may race dispatch. The engine itself is only ever touched by the
/// dispatch path, which the owning feed serializes.
class Subscription {
 public:
  ~Subscription();

  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;

  uint64_t id() const { return id_; }
  const std::string& feed() const { return feed_; }
  const std::string& statement() const { return statement_; }

  /// Drains up to `max` queued events (0 = all), oldest first.
  std::deque<StreamEvent> Poll(size_t max = 0);

  /// Queued events right now.
  size_t pending() const;

  /// True once a terminal event (kEndOfStream / kError) has been queued —
  /// no further events will ever arrive.
  bool finished() const;

  /// Total events discarded by the lag/drop policy so far.
  int64_t dropped_total() const;

  /// Fires the standing query's CancellationSource: the next dispatched
  /// clip fails with kCancelled and a kError terminal event is queued.
  /// This is what a client disconnect triggers server-side.
  void Cancel() { cancel_.Cancel(); }

  /// Engine statistics as of the last dispatched clip.
  core::OnlineStats stats() const;

 private:
  friend class StreamDispatcher;

  Subscription(uint64_t id, std::string feed, std::string statement,
               size_t queue_capacity);

  /// Dispatch-path internals (feed lock held by the dispatcher); all
  /// report how many events were newly queued and how many older ones the
  /// drop policy discarded.
  struct PushOutcome {
    size_t pushed = 0;
    int64_t dropped = 0;
  };
  PushOutcome ProcessClip(const video::ClipRef& clip, Status* status);
  /// End-of-stream: flushes the trailing open sequence
  /// (OnlineEngine::Finish) and queues kEndOfStream.
  PushOutcome FinishStream();
  /// Terminal failure: queues kError with `status`.
  PushOutcome FailStream(Status status);

  bool detached() const {
    return detached_.load(std::memory_order_acquire);
  }
  /// Returns false when the subscription was already detached.
  bool MarkDetached() {
    return !detached_.exchange(true, std::memory_order_acq_rel);
  }

  const uint64_t id_;
  const std::string feed_;
  const std::string statement_;

  CancellationSource cancel_;

  /// Owned model views (the engine borrows raw pointers) and the engine
  /// itself; set by the dispatcher right after construction.
  std::unique_ptr<models::ObjectDetector> detector_;
  std::unique_ptr<models::ActionRecognizer> recognizer_;
  std::unique_ptr<core::OnlineEngine> engine_;

  /// Lazily set once the subscription leaves its feed (cancel, error, or
  /// feed close); the dispatch loop prunes detached subscriptions.
  std::atomic<bool> detached_{false};

  mutable std::mutex mu_;  // guards queue_ + stats_ below
  EventQueue queue_;
  int64_t dropped_total_ = 0;
  core::OnlineStats last_stats_;
};

using SubscriptionPtr = std::shared_ptr<Subscription>;

}  // namespace svq::stream

#endif  // SVQ_STREAM_SUBSCRIPTION_H_
