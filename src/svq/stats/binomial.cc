#include "svq/stats/binomial.h"

#include <cmath>
#include <limits>

namespace svq::stats {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// log(Gamma(x)) for x > 0. std::lgamma writes the process-global
/// `signgam`, which is a data race when ingestion fans sequence
/// determination out across threads; the sign is irrelevant for positive
/// arguments, so use the reentrant variant where available.
double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double LogBinomialCoefficient(int64_t n, int64_t k) {
  if (k < 0 || k > n || n < 0) return kNegInf;
  if (k == 0 || k == n) return 0.0;
  return LogGamma(static_cast<double>(n) + 1.0) -
         LogGamma(static_cast<double>(k) + 1.0) -
         LogGamma(static_cast<double>(n - k) + 1.0);
}

double LogBinomialPmf(int64_t k, int64_t n, double p) {
  if (k < 0 || k > n || n < 0) return kNegInf;
  if (p <= 0.0) return k == 0 ? 0.0 : kNegInf;
  if (p >= 1.0) return k == n ? 0.0 : kNegInf;
  return LogBinomialCoefficient(n, k) + static_cast<double>(k) * std::log(p) +
         static_cast<double>(n - k) * std::log1p(-p);
}

double BinomialPmf(int64_t k, int64_t n, double p) {
  const double lp = LogBinomialPmf(k, n, p);
  return std::isinf(lp) ? 0.0 : std::exp(lp);
}

namespace {

/// Sums pmf(j) for j in [lo, hi] by recurrence from an anchor term, which is
/// numerically stable because successive-term ratios are exact.
double SumPmfRange(int64_t lo, int64_t hi, int64_t n, double p) {
  if (lo > hi) return 0.0;
  if (p <= 0.0) return (lo <= 0 && 0 <= hi) ? 1.0 : 0.0;
  if (p >= 1.0) return (lo <= n && n <= hi) ? 1.0 : 0.0;
  // Anchor at the largest pmf within the range (closest to the mode).
  int64_t mode = static_cast<int64_t>((n + 1) * p);
  if (mode < lo) mode = lo;
  if (mode > hi) mode = hi;
  const double anchor = BinomialPmf(mode, n, p);
  if (anchor == 0.0) return 0.0;
  double total = anchor;
  const double odds = p / (1.0 - p);
  // Walk down from the anchor.
  double term = anchor;
  for (int64_t j = mode; j > lo; --j) {
    // pmf(j-1) = pmf(j) * j / ((n-j+1) * odds)
    term *= static_cast<double>(j) /
            (static_cast<double>(n - j + 1) * odds);
    total += term;
    if (term < total * 1e-18) break;
  }
  // Walk up from the anchor.
  term = anchor;
  for (int64_t j = mode; j < hi; ++j) {
    // pmf(j+1) = pmf(j) * (n-j) * odds / (j+1)
    term *= static_cast<double>(n - j) * odds / static_cast<double>(j + 1);
    total += term;
    if (term < total * 1e-18) break;
  }
  return total;
}

}  // namespace

double BinomialCdf(int64_t k, int64_t n, double p) {
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  // Sum the smaller tail for accuracy.
  const double mean = static_cast<double>(n) * p;
  if (static_cast<double>(k) < mean) {
    const double s = SumPmfRange(0, k, n, p);
    return s > 1.0 ? 1.0 : s;
  }
  const double upper = SumPmfRange(k + 1, n, n, p);
  const double s = 1.0 - upper;
  return s < 0.0 ? 0.0 : s;
}

double BinomialSf(int64_t k, int64_t n, double p) {
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  const double mean = static_cast<double>(n) * p;
  if (static_cast<double>(k) > mean) {
    const double s = SumPmfRange(k, n, n, p);
    return s > 1.0 ? 1.0 : s;
  }
  const double lower = SumPmfRange(0, k - 1, n, p);
  const double s = 1.0 - lower;
  return s < 0.0 ? 0.0 : s;
}

}  // namespace svq::stats
