#ifndef SVQ_STATS_SCAN_STATISTICS_H_
#define SVQ_STATS_SCAN_STATISTICS_H_

#include <cstdint>

#include "svq/common/result.h"

namespace svq::stats {

/// Parameters of a discrete scan-statistic tail computation over Bernoulli
/// trials (paper §3.2).
///
/// `S_w(N)` is the maximum number of successes observed in any window of
/// `window` consecutive trials among `N = num_windows * window` trials with
/// per-trial success probability `p`. The tail probability
/// `P(S_w(N) >= k | p, w, L)` answers: "how surprising is it, under the
/// background rate, to ever see k positive predictions packed into one
/// window?"
struct ScanParams {
  /// Background (null) success probability per occurrence unit.
  double p = 0.0;
  /// Window length `w` in occurrence units (frames per clip for objects,
  /// shots per clip for actions).
  int window = 0;
  /// Number of windows `L = N / w`; may be fractional. The Naus
  /// approximation requires L >= 2; smaller values are clamped to 2.
  double num_windows = 0.0;
};

/// Approximates `P(S_w(N) >= k)` with the Naus (1982) product formula
/// `1 - Q2 * (Q3 / Q2)^(L - 2)`, where Q2 and Q3 approximate the
/// probabilities that the scan statistic stays below `k` over 2 and 3
/// windows (Glaz, Naus & Wallenstein 2001; also Turner et al. 2010, the
/// paper's ref [45]). The result is additionally bracketed by two rigorous
/// bounds — the single-window tail below and the Bonferroni union bound
/// over all window positions above — which keeps it sane in the large-`p*w`
/// regime where the product approximation degrades. Accuracy against the
/// exact embedding is verified in tests; in the library's operating regime
/// (rare background events, small alpha) the approximation error moves the
/// derived critical value by at most one count.
///
/// Edge behaviour: k <= 0 -> 1; k > window -> 0; p <= 0 -> 0; p >= 1 -> 1.
/// The returned probability is clamped to [0, 1].
double ScanTailProbability(int k, const ScanParams& params);

/// Naus approximation of `P(S_w(2w) < k)` for Bernoulli trials. Exposed for
/// testing.
double NausQ2(int k, int window, double p);

/// Naus approximation of `P(S_w(3w) < k)` for Bernoulli trials.
double NausQ3(int k, int window, double p);

/// Computes the critical value `k_crit` of paper Eq. 5: the smallest k with
/// `P(S_w(N) >= k) <= alpha`. Returns a value in [1, window + 1];
/// `window + 1` means that even a fully saturated window is not significant
/// at level `alpha` under this background probability.
///
/// Errors: InvalidArgument when `alpha` is outside (0, 1), `window < 1`,
/// `p` is outside [0, 1], or `num_windows < 1`.
Result<int> CriticalValue(const ScanParams& params, double alpha);

/// First-order Markov dependence between consecutive trials (paper
/// footnote 7): P(X_t = 1 | X_{t-1} = 0) = p01 and
/// P(X_t = 1 | X_{t-1} = 1) = p11. The chain starts from its stationary
/// distribution unless `start_p` is set in [0, 1].
struct MarkovChainParams {
  double p01 = 0.0;
  double p11 = 0.0;
  /// Probability that the first trial is a success; negative means "use the
  /// stationary distribution of the chain".
  double start_p = -1.0;

  /// Stationary success probability p01 / (1 + p01 - p11).
  double StationaryP() const;
};

/// Exact `P(S_w(n) >= k)` for i.i.d. Bernoulli trials via a finite
/// Markov-chain embedding whose state is the content of the sliding window
/// (an absorbing state captures "quota reached"). Exact but exponential in
/// `window`; requires `window <= 20`. Serves as the ground-truth oracle for
/// validating the Naus approximation.
Result<double> ExactScanTailIid(int k, int window, int64_t n, double p);

/// Exact `P(S_w(n) >= k)` for Markov-dependent Bernoulli trials (footnote 7
/// extension) using the same embedding. Requires `window <= 20`.
Result<double> ExactScanTailMarkov(int k, int window, int64_t n,
                                   const MarkovChainParams& chain);

/// Critical value under Markov-dependent trials, computed from the exact
/// embedding: smallest k with `P(S_w(n) >= k) <= alpha`.
Result<int> MarkovCriticalValue(int window, int64_t n,
                                const MarkovChainParams& chain, double alpha);

}  // namespace svq::stats

#endif  // SVQ_STATS_SCAN_STATISTICS_H_
