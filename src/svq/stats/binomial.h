#ifndef SVQ_STATS_BINOMIAL_H_
#define SVQ_STATS_BINOMIAL_H_

#include <cstdint>

namespace svq::stats {

/// Natural log of n-choose-k; returns -inf for invalid (k<0 or k>n).
double LogBinomialCoefficient(int64_t n, int64_t k);

/// log P(X = k) for X ~ Binomial(n, p). Returns -inf outside support.
double LogBinomialPmf(int64_t k, int64_t n, double p);

/// P(X = k) for X ~ Binomial(n, p).
double BinomialPmf(int64_t k, int64_t n, double p);

/// P(X <= k) for X ~ Binomial(n, p). Returns 0 for k < 0 and 1 for k >= n.
/// Computed by direct stable summation over the smaller tail.
double BinomialCdf(int64_t k, int64_t n, double p);

/// P(X >= k) = 1 - P(X <= k-1), computed from the upper tail directly so it
/// stays accurate when the upper tail is tiny.
double BinomialSf(int64_t k, int64_t n, double p);

}  // namespace svq::stats

#endif  // SVQ_STATS_BINOMIAL_H_
