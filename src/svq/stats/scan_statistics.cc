#include "svq/stats/scan_statistics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <string>
#include <vector>

#include "svq/stats/binomial.h"

namespace svq::stats {

namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

/// F(i; m) = P(Binomial(m, p) <= i) with F(i<0) = 0.
double F(int64_t i, int64_t m, double p) {
  if (i < 0) return 0.0;
  return BinomialCdf(i, m, p);
}

}  // namespace

double NausQ2(int k, int window, double p) {
  const int64_t w = window;
  const double b_k = BinomialPmf(k, w, p);
  const double q2 = F(k - 1, w, p) * F(k - 1, w, p) -
                    (k - 1) * b_k * F(k - 2, w, p) +
                    k * static_cast<double>(w) * p * b_k * F(k - 3, w - 1, p);
  return Clamp01(q2);
}

double NausQ3(int k, int window, double p) {
  const int64_t w = window;
  const double wd = static_cast<double>(w);
  const double b_k = BinomialPmf(k, w, p);
  const double f1 = F(k - 1, w, p);

  const double a1 =
      2.0 * b_k * f1 *
      ((k - 1) * F(k - 2, w, p) - wd * p * F(k - 3, w - 1, p));
  const double a2 =
      0.5 * b_k * b_k *
      (static_cast<double>(k - 1) * (k - 2) * F(k - 3, w, p) -
       2.0 * (k - 2) * wd * p * F(k - 4, w - 1, p) +
       wd * (wd - 1.0) * p * p * F(k - 5, w - 2, p));
  double a3 = 0.0;
  for (int r = 1; r <= k - 1; ++r) {
    const double fr = F(r - 1, w, p);
    a3 += BinomialPmf(2 * k - r, 2 * w, p) * fr * fr;
  }
  double a4 = 0.0;
  for (int r = 2; r <= k - 1; ++r) {
    a4 += BinomialPmf(2 * k - r, 2 * w, p) * F(r - 1, w, p) *
          ((r - 1) * F(r - 2, w, p) - wd * p * F(r - 3, w - 1, p));
  }

  const double q3 = f1 * f1 * f1 - a1 + a2 + a3 - a4;
  return Clamp01(q3);
}

double ScanTailProbability(int k, const ScanParams& params) {
  const int w = params.window;
  if (k <= 0) return 1.0;
  if (w < 1) return 0.0;
  if (k > w) return 0.0;
  if (params.p <= 0.0) return 0.0;
  if (params.p >= 1.0) return 1.0;

  const double l = std::max(2.0, params.num_windows);
  const double q2 = NausQ2(k, w, params.p);
  const double q3 = NausQ3(k, w, params.p);
  double tail;
  if (q2 <= 1e-300) {
    tail = 1.0;
  } else {
    // Q3 <= Q2 must hold (more trials, more chance to exceed); the
    // approximation can violate it marginally, so clamp the ratio.
    const double ratio = std::min(1.0, q3 / q2);
    tail = (ratio <= 0.0)
               ? 1.0
               : 1.0 - q2 * std::exp((l - 2.0) * std::log(ratio));
  }
  // Bracket the approximation with rigorous bounds. The single-window tail
  // is a lower bound (window 1 alone can reach the quota); the Bonferroni
  // union bound over all N - w + 1 window positions is an upper bound.
  // This keeps the result sane in regimes (large p*w, k near w) where the
  // product approximation degrades.
  const double single = BinomialSf(k, w, params.p);
  const double num_positions = l * static_cast<double>(w) - w + 1.0;
  const double upper = std::min(1.0, num_positions * single);
  return Clamp01(std::min(upper, std::max(single, tail)));
}

Result<int> CriticalValue(const ScanParams& params, double alpha) {
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1), got " +
                                   std::to_string(alpha));
  }
  if (params.window < 1) {
    return Status::InvalidArgument("window must be >= 1");
  }
  if (params.p < 0.0 || params.p > 1.0) {
    return Status::InvalidArgument("background probability must be in [0, 1]");
  }
  if (params.num_windows < 1.0) {
    return Status::InvalidArgument("num_windows must be >= 1");
  }
  // ScanTailProbability is non-increasing in k; return the first k at which
  // it drops to the significance level.
  for (int k = 1; k <= params.window; ++k) {
    if (ScanTailProbability(k, params) <= alpha) return k;
  }
  // Even a saturated window is not significant under this background rate.
  return params.window + 1;
}

double MarkovChainParams::StationaryP() const {
  const double denom = 1.0 + p01 - p11;
  if (denom <= 0.0) return 1.0;
  return std::min(1.0, std::max(0.0, p01 / denom));
}

namespace {

/// Shared embedding: evolves the distribution over the contents of the
/// sliding window (one bit per trial, bit 0 = most recent) with an absorbing
/// "quota reached" mass. `p_next(last_bit)` gives the success probability of
/// the next trial.
template <typename NextProbFn>
Result<double> ExactScanTailImpl(int k, int window, int64_t n, double first_p,
                                 NextProbFn p_next) {
  if (window < 1 || window > 20) {
    return Status::InvalidArgument(
        "exact scan embedding requires 1 <= window <= 20");
  }
  if (n < window) {
    return Status::InvalidArgument("n must be >= window");
  }
  if (k <= 0) return 1.0;
  if (k > window) return 0.0;

  const uint32_t mask = (window == 20) ? 0xFFFFFu
                                       : ((1u << window) - 1u);
  std::vector<double> dist(static_cast<size_t>(mask) + 1, 0.0);
  std::vector<double> next(dist.size(), 0.0);
  double absorbed = 0.0;

  // First trial.
  if (k == 1) {
    // A single success is already a quota hit.
    absorbed = first_p;
    dist[0] = 1.0 - first_p;
  } else {
    dist[1] = first_p;
    dist[0] = 1.0 - first_p;
  }

  for (int64_t t = 1; t < n; ++t) {
    std::fill(next.begin(), next.end(), 0.0);
    for (uint32_t s = 0; s <= mask; ++s) {
      const double mass = dist[s];
      if (mass == 0.0) continue;
      const double p1 = p_next((s & 1u) != 0u);
      const uint32_t shifted = (s << 1) & mask;
      // Failure branch.
      next[shifted] += mass * (1.0 - p1);
      // Success branch.
      const uint32_t hit = shifted | 1u;
      if (std::popcount(hit) >= k) {
        absorbed += mass * p1;
      } else {
        next[hit] += mass * p1;
      }
    }
    dist.swap(next);
  }
  return Clamp01(absorbed);
}

}  // namespace

Result<double> ExactScanTailIid(int k, int window, int64_t n, double p) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("p must be in [0, 1]");
  }
  return ExactScanTailImpl(k, window, n, p, [p](bool) { return p; });
}

Result<double> ExactScanTailMarkov(int k, int window, int64_t n,
                                   const MarkovChainParams& chain) {
  if (chain.p01 < 0.0 || chain.p01 > 1.0 || chain.p11 < 0.0 ||
      chain.p11 > 1.0) {
    return Status::InvalidArgument("transition probabilities must be in [0,1]");
  }
  const double start =
      (chain.start_p >= 0.0 && chain.start_p <= 1.0) ? chain.start_p
                                                     : chain.StationaryP();
  return ExactScanTailImpl(
      k, window, n, start,
      [&chain](bool last) { return last ? chain.p11 : chain.p01; });
}

Result<int> MarkovCriticalValue(int window, int64_t n,
                                const MarkovChainParams& chain, double alpha) {
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  for (int k = 1; k <= window; ++k) {
    SVQ_ASSIGN_OR_RETURN(const double tail,
                         ExactScanTailMarkov(k, window, n, chain));
    if (tail <= alpha) return k;
  }
  return window + 1;
}

}  // namespace svq::stats
