#include "svq/stats/kernel_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace svq::stats {

Result<KernelRateEstimator> KernelRateEstimator::Create(
    const Options& options) {
  if (!(options.bandwidth > 0.0)) {
    return Status::InvalidArgument("kernel bandwidth must be > 0, got " +
                                   std::to_string(options.bandwidth));
  }
  if (options.initial_p < 0.0 || options.initial_p > 1.0) {
    return Status::InvalidArgument("initial_p must be in [0, 1]");
  }
  if (options.warmup_ous < 0) {
    return Status::InvalidArgument("warmup_ous must be >= 0");
  }
  return KernelRateEstimator(options);
}

KernelRateEstimator::KernelRateEstimator(const Options& options)
    : options_(options) {}

void KernelRateEstimator::Step(bool event) {
  Advance(1);
  if (event) Observe();
}

void KernelRateEstimator::Advance(int64_t delta_ous) {
  if (delta_ous <= 0) return;
  // Decays the raw kernel sum; the edge correction is applied in rate() so
  // the recurrence stays a single multiply. After a gap many bandwidths
  // long the sum underflows toward 0 — that is the mathematically correct
  // limit (every past event's kernel mass has decayed away, and rate()
  // recovers unbiased from the next event) — but flush subnormals to an
  // exact 0.0 so pathological gaps cannot leave the hot loop multiplying
  // denormals, which is an order of magnitude slower on most cores.
  kernel_sum_ *= std::exp(-static_cast<double>(delta_ous) /
                          options_.bandwidth);
  if (kernel_sum_ < std::numeric_limits<double>::min()) kernel_sum_ = 0.0;
  // Saturate instead of overflowing: signed overflow is UB, and a stream
  // past 2^63 OUs has long since converged (the truncated mass in rate()
  // is exactly 1.0 from ~40 bandwidths onward).
  if (t_ > std::numeric_limits<int64_t>::max() - delta_ous) {
    t_ = std::numeric_limits<int64_t>::max();
  } else {
    t_ += delta_ous;
  }
}

void KernelRateEstimator::Observe() {
  // A lag-zero event contributes exp(0) = 1 to the raw kernel sum.
  kernel_sum_ += 1.0;
  ++events_;
}

double KernelRateEstimator::rate() const {
  if (t_ == 0) return options_.initial_p;
  const double u = options_.bandwidth;
  // Edge correction (paper Eq. 6): divide by the truncated kernel mass
  // accumulated over the t observed occurrence units, normalized so that a
  // constant Bernoulli(p) stream yields an unbiased estimate of p.
  const double decay_step = -std::expm1(-1.0 / u);       // 1 - e^{-1/u}
  const double truncated = -std::expm1(-static_cast<double>(t_) / u);
  double estimate = kernel_sum_ * decay_step / truncated;
  if (options_.warmup_ous > 0 && t_ < options_.warmup_ous) {
    const double w = static_cast<double>(t_) /
                     static_cast<double>(options_.warmup_ous);
    estimate = w * estimate + (1.0 - w) * options_.initial_p;
  }
  return std::clamp(estimate, 0.0, 1.0);
}

}  // namespace svq::stats
