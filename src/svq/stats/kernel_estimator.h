#ifndef SVQ_STATS_KERNEL_ESTIMATOR_H_
#define SVQ_STATS_KERNEL_ESTIMATOR_H_

#include <cstdint>

#include "svq/common/result.h"

namespace svq::stats {

/// Online background-probability estimator of paper §3.3 (SVAQD).
///
/// The estimator smooths the stream of per-occurrence-unit events (positive
/// model predictions) with a one-sided exponential kernel of bandwidth `u`
/// and applies Diggle edge correction so that the estimate is unbiased when
/// the true background probability is constant (paper Eq. 6).
///
/// The recurrence is O(1) per occurrence unit:
///  - time advancing by `dt` OUs decays the estimate by
///    `exp(-dt/u) * (1 - exp(-t/u)) / (1 - exp(-(t+dt)/u))`
///    (pure exponential decay once the edge correction has washed out);
///  - an event observed at the current OU adds
///    `(1 - exp(-1/u)) / (1 - exp(-t/u))`, the edge-corrected kernel mass of
///    a lag-zero event.
///
/// Note on normalization: the paper's Eq. 6 carries a stray `1/u` factor in
/// the event term that would make the estimator biased by `1/u` for a
/// constant-rate stream, contradicting the paper's own unbiasedness claim.
/// We normalize the exponential kernel as a probability density over lags
/// (mass `1`), which makes `E[rate()] = p` exactly for i.i.d. Bernoulli(p)
/// input; the unit test `KernelEstimatorTest.UnbiasedOnConstantStream`
/// verifies this.
class KernelRateEstimator {
 public:
  struct Options {
    /// Kernel bandwidth `u` in occurrence units. Larger values smooth more
    /// aggressively (slower to adapt, lower variance).
    double bandwidth = 256.0;
    /// Estimate reported before any occurrence unit has been consumed, and
    /// blended into the early estimate while the edge correction is
    /// dominated by a handful of observations.
    double initial_p = 1e-4;
    /// Number of occurrence units over which the estimate is linearly
    /// blended from `initial_p` toward the data-driven estimate; 0 disables
    /// blending (pure Eq. 6 behaviour from the first OU).
    int64_t warmup_ous = 0;
  };

  /// Validates options (bandwidth > 0, initial_p in [0, 1], warmup >= 0).
  static Result<KernelRateEstimator> Create(const Options& options);

  /// Consumes one occurrence unit carrying `event` (the per-OU prediction
  /// indicator). Equivalent to Advance(1) followed by Observe() if `event`.
  void Step(bool event);

  /// Advances time by `delta_ous` occurrence units with no event.
  void Advance(int64_t delta_ous);

  /// Records an event at the current occurrence unit.
  void Observe();

  /// Current estimate of the background probability `p(t)`, clamped to
  /// [0, 1].
  double rate() const;

  int64_t total_ous() const { return t_; }
  int64_t total_events() const { return events_; }
  const Options& options() const { return options_; }

 private:
  explicit KernelRateEstimator(const Options& options);

  Options options_;
  /// Un-edge-corrected decayed kernel sum; `rate()` applies the correction.
  double kernel_sum_ = 0.0;
  int64_t t_ = 0;
  int64_t events_ = 0;
};

}  // namespace svq::stats

#endif  // SVQ_STATS_KERNEL_ESTIMATOR_H_
