#ifndef SVQ_EVAL_METRICS_H_
#define SVQ_EVAL_METRICS_H_

#include <cstdint>

#include "svq/video/interval_set.h"

namespace svq::eval {

/// Counted matches plus the derived precision/recall/F1.
struct MatchStats {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;

  double precision() const {
    return tp + fp == 0 ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fp);
  }
  double recall() const {
    return tp + fn == 0 ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fn);
  }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }

  MatchStats& operator+=(const MatchStats& other) {
    tp += other.tp;
    fp += other.fp;
    fn += other.fn;
    return *this;
  }
};

/// Sequence-level matching per the paper's §5 "Metrics": a predicted
/// sequence is a true positive iff its IoU with some ground-truth sequence
/// reaches `iou_threshold` (default η=0.5); a ground-truth sequence whose
/// IoU with every prediction stays below the threshold is a false negative.
/// Both sets must be in the same index domain (clips or frames).
MatchStats SequenceMatch(const video::IntervalSet& predicted,
                         const video::IntervalSet& truth,
                         double iou_threshold = 0.5);

/// Frame-level (element-wise) matching: tp/fp/fn are coverage lengths.
/// Used for the clip-size robustness study (paper Figure 5).
MatchStats ElementMatch(const video::IntervalSet& predicted,
                        const video::IntervalSet& truth);

/// False-positive rate of `predicted` against `truth` over the domain
/// `[0, domain_end)`: FP / (FP + TN) where negatives are the indices
/// outside `truth`.
double FalsePositiveRate(const video::IntervalSet& predicted,
                         const video::IntervalSet& truth, int64_t domain_end);

/// Shot-domain truth under the half-coverage rule the action recognizer
/// uses: a shot truly contains the label when at least half its frames are
/// inside a truth range.
video::IntervalSet ShotTruth(const video::IntervalSet& frame_truth,
                             int frames_per_shot);

}  // namespace svq::eval

#endif  // SVQ_EVAL_METRICS_H_
