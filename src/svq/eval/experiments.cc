#include "svq/eval/experiments.h"

#include "svq/models/synthetic_models.h"
#include "svq/video/video_stream.h"

namespace svq::eval {

Result<OnlineEvalOutcome> RunOnlineScenario(const QueryScenario& scenario,
                                            models::ModelSuite suite,
                                            const core::OnlineConfig& config,
                                            core::OnlineEngine::Mode mode) {
  suite.object_profile = ApplyWorkloadAccuracy(suite.object_profile);
  OnlineEvalOutcome outcome;
  video::VideoId id = 0;
  for (const auto& v : scenario.videos) {
    models::ModelSet models = models::MakeModelSet(
        v, suite, scenario.query.objects, {scenario.query.action});
    SVQ_ASSIGN_OR_RETURN(
        std::unique_ptr<core::OnlineEngine> engine,
        core::OnlineEngine::Create(mode, scenario.query, config, v->layout(),
                                   models.detector.get(),
                                   models.recognizer.get()));
    video::SyntheticVideoStream stream(v, id++);
    SVQ_ASSIGN_OR_RETURN(core::OnlineResult result, engine->Run(stream));

    const int64_t fpc = v->layout().FramesPerClip();
    const video::IntervalSet truth_frames = TruthFrames(*v, scenario.query);
    const video::IntervalSet truth_clips = truth_frames.CoarsenAny(fpc);
    outcome.sequence_match +=
        SequenceMatch(result.sequences, truth_clips, /*iou_threshold=*/0.5);

    // Clamp refined clip ranges to the video extent (the last clip may be
    // partial).
    video::IntervalSet result_frames = video::IntervalSet::Intersect(
        result.sequences.Refine(fpc),
        video::IntervalSet({{0, v->num_frames()}}));
    outcome.frame_match += ElementMatch(result_frames, truth_frames);
    outcome.num_result_sequences +=
        static_cast<int64_t>(result.sequences.size());
    outcome.result_frames += result_frames.TotalLength();
    outcome.model_ms += result.stats.model_ms;
    outcome.algorithm_ms += result.stats.algorithm_ms;
  }
  return outcome;
}

Result<FprOutcome> MeasureFpr(const QueryScenario& scenario,
                              models::ModelSuite suite,
                              const core::OnlineConfig& config) {
  if (scenario.query.objects.empty()) {
    return Status::InvalidArgument("FPR scenario needs an object predicate");
  }
  suite.object_profile = ApplyWorkloadAccuracy(suite.object_profile);
  const std::string& object = scenario.query.objects.front();

  int64_t action_fp = 0, action_neg = 0;
  int64_t action_svaqd_fp = 0;
  int64_t object_fp = 0, object_neg = 0;
  int64_t object_svaqd_fp = 0;

  video::VideoId id = 0;
  for (const auto& v : scenario.videos) {
    models::ModelSet models = models::MakeModelSet(
        v, suite, scenario.query.objects, {scenario.query.action});

    // Raw model predictions over the whole video.
    video::IntervalSet object_pred;
    for (video::FrameIndex f = 0; f < v->num_frames(); ++f) {
      SVQ_ASSIGN_OR_RETURN(const auto dets, models.detector->Detect(f));
      for (const auto& det : dets) {
        if (det.label == object && det.score >= config.object_threshold) {
          object_pred.Add({f, f + 1});
          break;
        }
      }
    }
    video::IntervalSet action_pred;
    video::SyntheticVideoStream shot_stream(v, id);
    while (auto clip = shot_stream.NextClip()) {
      for (const video::ShotRef& shot : clip->shots) {
        SVQ_ASSIGN_OR_RETURN(const auto scores,
                             models.recognizer->Recognize(shot));
        for (const auto& s : scores) {
          if (s.label == scenario.query.action &&
              s.score >= config.action_threshold) {
            action_pred.Add({shot.shot, shot.shot + 1});
            break;
          }
        }
      }
    }

    const video::IntervalSet& object_truth =
        v->ground_truth().ObjectPresence(object);
    const video::IntervalSet action_truth_frames =
        v->ground_truth().ActionPresence(scenario.query.action);
    const video::IntervalSet action_truth =
        ShotTruth(action_truth_frames, v->layout().frames_per_shot);
    const int64_t num_shots = v->NumShots();

    object_fp += object_pred.TotalLength() -
                 object_pred.OverlapLength(object_truth);
    object_neg += v->num_frames() - object_truth.TotalLength();
    action_fp += action_pred.TotalLength() -
                 action_pred.OverlapLength(action_truth);
    action_neg += num_shots - action_truth.TotalLength();

    // SVAQD output: only occurrence units inside reported sequences count
    // as positives.
    SVQ_ASSIGN_OR_RETURN(
        std::unique_ptr<core::OnlineEngine> engine,
        core::OnlineEngine::Create(core::OnlineEngine::Mode::kSvaqd,
                                   scenario.query, config, v->layout(),
                                   models.detector.get(),
                                   models.recognizer.get()));
    video::SyntheticVideoStream stream(v, id++);
    SVQ_ASSIGN_OR_RETURN(core::OnlineResult result, engine->Run(stream));
    const video::IntervalSet result_frames = video::IntervalSet::Intersect(
        result.sequences.Refine(v->layout().FramesPerClip()),
        video::IntervalSet({{0, v->num_frames()}}));
    const video::IntervalSet result_shots = video::IntervalSet::Intersect(
        result.sequences.Refine(v->layout().shots_per_clip),
        video::IntervalSet({{0, num_shots}}));

    // "With SVAQD": the model's raw false positives that survive inside the
    // reported sequences; everything outside the results is suppressed.
    const video::IntervalSet object_surviving =
        video::IntervalSet::Intersect(object_pred, result_frames);
    const video::IntervalSet action_surviving =
        video::IntervalSet::Intersect(action_pred, result_shots);
    object_svaqd_fp += object_surviving.TotalLength() -
                       object_surviving.OverlapLength(object_truth);
    action_svaqd_fp += action_surviving.TotalLength() -
                       action_surviving.OverlapLength(action_truth);
  }

  FprOutcome outcome;
  if (object_neg > 0) {
    outcome.object_raw =
        static_cast<double>(object_fp) / static_cast<double>(object_neg);
    outcome.object_svaqd = static_cast<double>(object_svaqd_fp) /
                           static_cast<double>(object_neg);
  }
  if (action_neg > 0) {
    outcome.action_raw =
        static_cast<double>(action_fp) / static_cast<double>(action_neg);
    outcome.action_svaqd = static_cast<double>(action_svaqd_fp) /
                           static_cast<double>(action_neg);
  }
  return outcome;
}

}  // namespace svq::eval
