#ifndef SVQ_EVAL_EXPERIMENTS_H_
#define SVQ_EVAL_EXPERIMENTS_H_

#include "svq/common/result.h"
#include "svq/core/engine.h"
#include "svq/eval/metrics.h"
#include "svq/eval/workloads.h"

namespace svq::eval {

/// Aggregated outcome of running one online scenario (all its videos).
struct OnlineEvalOutcome {
  /// Clip-domain sequence matching at IoU η=0.5 (paper's headline F1).
  MatchStats sequence_match;
  /// Frame-level matching (paper Figure 5).
  MatchStats frame_match;
  int64_t num_result_sequences = 0;
  /// Total frames inside result sequences (paper Figure 4's stability
  /// argument).
  int64_t result_frames = 0;
  double model_ms = 0.0;
  double algorithm_ms = 0.0;
};

/// Runs `scenario` with the given models/config/mode over every video and
/// aggregates the metrics. Workload per-label accuracies are applied to the
/// object profile automatically.
Result<OnlineEvalOutcome> RunOnlineScenario(const QueryScenario& scenario,
                                            models::ModelSuite suite,
                                            const core::OnlineConfig& config,
                                            core::OnlineEngine::Mode mode);

/// Paper Table 5: raw per-occurrence-unit model FPR vs the FPR of the
/// occurrence units inside the final SVAQD result sequences, for the action
/// predicate (shot domain) and the first object predicate (frame domain).
struct FprOutcome {
  double action_raw = 0.0;
  double action_svaqd = 0.0;
  double object_raw = 0.0;
  double object_svaqd = 0.0;
};

Result<FprOutcome> MeasureFpr(const QueryScenario& scenario,
                              models::ModelSuite suite,
                              const core::OnlineConfig& config);

}  // namespace svq::eval

#endif  // SVQ_EVAL_EXPERIMENTS_H_
