#ifndef SVQ_EVAL_WORKLOADS_H_
#define SVQ_EVAL_WORKLOADS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "svq/common/result.h"
#include "svq/core/query.h"
#include "svq/models/model_profile.h"
#include "svq/video/synthetic_video.h"

namespace svq::eval {

/// One benchmark query plus the videos it runs over.
struct QueryScenario {
  std::string name;   // "q1" ... "q12" or a movie title
  core::Query query;
  std::vector<std::shared_ptr<const video::SyntheticVideo>> videos;
};

/// Frame-domain ground-truth result ranges of `query` on `v`: the
/// intersection of the action's presence with every queried object's
/// presence (the paper's §5.1 annotation rule: "the intersection of the
/// temporal intervals of all the query-specified objects and the action").
video::IntervalSet TruthFrames(const video::SyntheticVideo& v,
                               const core::Query& query);

/// Per-label detector accuracy used by the workloads: common COCO classes
/// (person, car) detect far better than rare ones (faucet, sunglasses) —
/// the driver of the Table 3 effects. Apply to a DetectorProfile via
/// ApplyWorkloadAccuracy.
const std::map<std::string, models::LabelAccuracy>& WorkloadLabelAccuracy();

/// Copies `profile` and installs the workload's per-label accuracies
/// (no-op for ideal profiles).
models::DetectorProfile ApplyWorkloadAccuracy(models::DetectorProfile profile);

/// The 12-query YouTube/ActivityNet emulation of paper Table 1. `scale`
/// shrinks the total video minutes (1.0 = the paper's lengths; tests use
/// ~0.05). Deterministic in `seed`.
Result<std::vector<QueryScenario>> YouTubeWorkload(uint64_t seed,
                                                   double scale = 1.0);

/// One scenario of the YouTube workload by index (1-based, q1..q12).
Result<QueryScenario> YouTubeScenario(int index, uint64_t seed,
                                      double scale = 1.0);

/// Rebuilds the scenario's videos with a different frame/shot/clip layout
/// (same seeds, hence identical frame-level ground truth): the clip-size
/// sensitivity study of paper Figures 4 and 5.
Result<QueryScenario> WithLayout(const QueryScenario& scenario,
                                 const video::VideoLayout& layout);

/// The four-movie workload of paper Table 2 (Coffee and Cigarettes,
/// Iron Man, Star Wars 3, Titanic) with their queries. `scale` shrinks the
/// movie lengths. Each scenario holds exactly one (long) video.
Result<std::vector<QueryScenario>> MoviesWorkload(uint64_t seed,
                                                  double scale = 1.0);

}  // namespace svq::eval

#endif  // SVQ_EVAL_WORKLOADS_H_
