#include "svq/eval/metrics.h"

#include <algorithm>

namespace svq::eval {

using video::Interval;
using video::IntervalSet;

MatchStats SequenceMatch(const IntervalSet& predicted,
                         const IntervalSet& truth, double iou_threshold) {
  MatchStats stats;
  std::vector<bool> truth_hit(truth.size(), false);
  for (const Interval& pred : predicted.intervals()) {
    bool matched = false;
    for (size_t i = 0; i < truth.size(); ++i) {
      if (Interval::Iou(pred, truth.intervals()[i]) >= iou_threshold) {
        matched = true;
        truth_hit[i] = true;
      }
    }
    if (matched) {
      ++stats.tp;
    } else {
      ++stats.fp;
    }
  }
  for (const bool hit : truth_hit) {
    if (!hit) ++stats.fn;
  }
  return stats;
}

MatchStats ElementMatch(const IntervalSet& predicted,
                        const IntervalSet& truth) {
  MatchStats stats;
  const int64_t overlap = predicted.OverlapLength(truth);
  stats.tp = overlap;
  stats.fp = predicted.TotalLength() - overlap;
  stats.fn = truth.TotalLength() - overlap;
  return stats;
}

double FalsePositiveRate(const IntervalSet& predicted,
                         const IntervalSet& truth, int64_t domain_end) {
  const int64_t negatives = domain_end - truth.OverlapLength(
                                             IntervalSet({{0, domain_end}}));
  if (negatives <= 0) return 0.0;
  const IntervalSet domain(std::vector<Interval>{{0, domain_end}});
  const IntervalSet pred_in_domain = IntervalSet::Intersect(predicted, domain);
  const int64_t fp =
      pred_in_domain.TotalLength() - pred_in_domain.OverlapLength(truth);
  return static_cast<double>(fp) / static_cast<double>(negatives);
}

IntervalSet ShotTruth(const IntervalSet& frame_truth, int frames_per_shot) {
  IntervalSet shots;
  for (const Interval& range : frame_truth.intervals()) {
    const int64_t first_shot = range.begin / frames_per_shot;
    const int64_t last_shot = (range.end - 1) / frames_per_shot;
    for (int64_t s = first_shot; s <= last_shot; ++s) {
      const Interval shot_frames = {s * frames_per_shot,
                                    (s + 1) * frames_per_shot};
      const int64_t overlap = std::min(shot_frames.end, range.end) -
                              std::max(shot_frames.begin, range.begin);
      if (2 * overlap >= frames_per_shot) shots.Add({s, s + 1});
    }
  }
  return shots;
}

}  // namespace svq::eval
