#include "svq/eval/workloads.h"

#include <algorithm>
#include <cmath>

namespace svq::eval {

using video::SyntheticActionSpec;
using video::SyntheticObjectSpec;
using video::SyntheticVideo;
using video::SyntheticVideoSpec;

namespace {

struct YouTubeRow {
  const char* name;
  const char* action;
  std::vector<const char*> objects;
  int minutes;  // total video length containing the action (Table 1)
};

/// Paper Table 1 verbatim.
const std::vector<YouTubeRow>& YouTubeRows() {
  static const std::vector<YouTubeRow>* kRows = new std::vector<YouTubeRow>{
      {"q1", "washing_dishes", {"faucet", "oven"}, 57},
      {"q2", "blowing_leaves", {"car", "plant"}, 52},
      {"q3", "walking_the_dog", {"tree", "chair"}, 127},
      {"q4", "drinking_beer", {"bottle", "chair"}, 63},
      {"q5", "volleyball", {"tree"}, 110},
      {"q6", "playing_rubik_cube", {"clock"}, 89},
      {"q7", "cleaning_sink", {"faucet", "knife"}, 84},
      {"q8", "kneeling", {"tree"}, 104},
      {"q9", "doing_crunches", {"chair"}, 85},
      {"q10", "blow_drying_hair", {"kid"}, 138},
      {"q11", "washing_hands", {"faucet", "dish"}, 113},
      {"q12", "archery", {"sunglasses"}, 156},
  };
  return *kRows;
}

struct MovieRow {
  const char* name;
  const char* action;
  std::vector<const char*> objects;
  int minutes;  // Table 2 lengths
};

/// Paper Table 2 verbatim.
const std::vector<MovieRow>& MovieRows() {
  static const std::vector<MovieRow>* kRows = new std::vector<MovieRow>{
      {"coffee_and_cigarettes", "smoking", {"wine_glass", "cup"}, 96},
      {"iron_man", "robot_dancing", {"car", "airplane"}, 126},
      {"star_wars_3", "archery", {"bird", "cat"}, 134},
      {"titanic", "kissing", {"surfboard", "boat"}, 194},
  };
  return *kRows;
}

SyntheticObjectSpec CorrelatedObject(const std::string& label,
                                     const std::string& action,
                                     double correlation, double coverage,
                                     double bg_on, double bg_off) {
  SyntheticObjectSpec spec;
  spec.label = label;
  spec.mean_on_frames = bg_on;
  spec.mean_off_frames = bg_off;
  spec.correlate_with_action = action;
  spec.correlation = correlation;
  spec.coverage = coverage;
  spec.jitter_frames = 25.0;
  return spec;
}

}  // namespace

video::IntervalSet TruthFrames(const SyntheticVideo& v,
                               const core::Query& query) {
  video::IntervalSet truth = v.ground_truth().ActionPresence(query.action);
  for (const std::string& object : query.objects) {
    truth = video::IntervalSet::Intersect(
        truth, v.ground_truth().ObjectPresence(object));
    if (truth.empty()) break;
  }
  return truth;
}

const std::map<std::string, models::LabelAccuracy>& WorkloadLabelAccuracy() {
  static const auto* kAccuracy = new std::map<std::string,
                                              models::LabelAccuracy>{
      {"person", {0.97, 0.010}},    {"car", {0.93, 0.020}},
      {"plant", {0.84, 0.040}},     {"tree", {0.88, 0.030}},
      {"chair", {0.87, 0.030}},     {"faucet", {0.74, 0.050}},
      {"oven", {0.83, 0.030}},      {"bottle", {0.85, 0.040}},
      {"clock", {0.80, 0.030}},     {"kid", {0.90, 0.020}},
      {"dish", {0.72, 0.060}},      {"knife", {0.78, 0.050}},
      {"sunglasses", {0.68, 0.060}},{"wine_glass", {0.82, 0.040}},
      {"cup", {0.85, 0.040}},       {"airplane", {0.90, 0.020}},
      {"bird", {0.80, 0.050}},      {"cat", {0.88, 0.030}},
      {"surfboard", {0.78, 0.040}}, {"boat", {0.86, 0.030}},
  };
  return *kAccuracy;
}

models::DetectorProfile ApplyWorkloadAccuracy(
    models::DetectorProfile profile) {
  if (profile.ideal) return profile;
  // Scale the workload accuracies by the profile's own quality relative to
  // the reference (Mask R-CNN) profile, so YOLOv3 stays uniformly noisier.
  const models::DetectorProfile reference = models::MaskRcnnProfile();
  const double tpr_ratio = profile.tpr / reference.tpr;
  const double fpr_ratio =
      reference.fpr > 0 ? profile.fpr / reference.fpr : 1.0;
  for (const auto& [label, acc] : WorkloadLabelAccuracy()) {
    models::LabelAccuracy scaled;
    scaled.tpr = std::min(1.0, acc.tpr * tpr_ratio);
    scaled.fpr = std::min(1.0, acc.fpr * fpr_ratio);
    profile.label_accuracy[label] = scaled;
  }
  return profile;
}

Result<QueryScenario> YouTubeScenario(int index, uint64_t seed,
                                      double scale) {
  if (index < 1 || index > static_cast<int>(YouTubeRows().size())) {
    return Status::InvalidArgument("YouTube scenario index must be 1..12");
  }
  if (!(scale > 0.0)) {
    return Status::InvalidArgument("scale must be > 0");
  }
  const YouTubeRow& row = YouTubeRows()[static_cast<size_t>(index - 1)];

  QueryScenario scenario;
  scenario.name = row.name;
  scenario.query.action = row.action;
  for (const char* object : row.objects) {
    scenario.query.objects.emplace_back(object);
  }

  video::VideoLayout layout;
  const int64_t total_frames = std::max<int64_t>(
      layout.FramesPerClip() * 4,
      static_cast<int64_t>(row.minutes * 60 * layout.fps * scale));
  const int64_t frames_per_video = std::min<int64_t>(
      total_frames, static_cast<int64_t>(3 * 60 * layout.fps));
  const int num_videos = static_cast<int>(
      (total_frames + frames_per_video - 1) / frames_per_video);

  for (int v = 0; v < num_videos; ++v) {
    SyntheticVideoSpec spec;
    spec.name = scenario.name + "_v" + std::to_string(v);
    spec.num_frames = std::min<int64_t>(
        frames_per_video, total_frames - v * frames_per_video);
    spec.layout = layout;
    spec.seed = seed ^ (0x9e3779b97f4a7c15ULL * (index * 1000 + v + 1));
    // ActivityNet-like occurrence structure: activities run ~20 s each,
    // occupying ~7% of the footage.
    spec.actions.push_back(
        SyntheticActionSpec{row.action, /*mean_on=*/600.0,
                            /*mean_off=*/7500.0});
    for (const char* object : row.objects) {
      spec.objects.push_back(CorrelatedObject(object, row.action,
                                              /*correlation=*/0.85,
                                              /*coverage=*/0.85,
                                              /*bg_on=*/350.0,
                                              /*bg_off=*/2500.0));
    }
    // `person` is present in every scenario for the Table 3 predicate
    // variants; it tracks the action tightly.
    spec.objects.push_back(CorrelatedObject("person", row.action,
                                            /*correlation=*/0.95,
                                            /*coverage=*/0.95,
                                            /*bg_on=*/400.0,
                                            /*bg_off=*/1500.0));
    SVQ_ASSIGN_OR_RETURN(std::shared_ptr<const SyntheticVideo> video,
                         SyntheticVideo::Generate(spec));
    scenario.videos.push_back(std::move(video));
  }
  return scenario;
}

Result<std::vector<QueryScenario>> YouTubeWorkload(uint64_t seed,
                                                   double scale) {
  std::vector<QueryScenario> scenarios;
  for (int i = 1; i <= static_cast<int>(YouTubeRows().size()); ++i) {
    SVQ_ASSIGN_OR_RETURN(QueryScenario scenario,
                         YouTubeScenario(i, seed, scale));
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

Result<QueryScenario> WithLayout(const QueryScenario& scenario,
                                 const video::VideoLayout& layout) {
  SVQ_RETURN_NOT_OK(layout.Validate());
  QueryScenario out;
  out.name = scenario.name;
  out.query = scenario.query;
  for (const auto& v : scenario.videos) {
    SyntheticVideoSpec spec = v->spec();
    spec.layout = layout;
    SVQ_ASSIGN_OR_RETURN(std::shared_ptr<const SyntheticVideo> video,
                         SyntheticVideo::Generate(spec));
    out.videos.push_back(std::move(video));
  }
  return out;
}

Result<std::vector<QueryScenario>> MoviesWorkload(uint64_t seed,
                                                  double scale) {
  if (!(scale > 0.0)) {
    return Status::InvalidArgument("scale must be > 0");
  }
  std::vector<QueryScenario> scenarios;
  video::VideoLayout layout;
  int index = 0;
  for (const MovieRow& row : MovieRows()) {
    ++index;
    QueryScenario scenario;
    scenario.name = row.name;
    scenario.query.action = row.action;
    for (const char* object : row.objects) {
      scenario.query.objects.emplace_back(object);
    }
    SyntheticVideoSpec spec;
    spec.name = row.name;
    spec.num_frames = std::max<int64_t>(
        layout.FramesPerClip() * 8,
        static_cast<int64_t>(row.minutes * 60 * layout.fps * scale));
    spec.layout = layout;
    spec.seed = seed ^ (0xd1b54a32d192ed03ULL * index);
    // Movies: many short scenes containing the action, giving a few dozen
    // candidate sequences per movie as in the paper (C&C has 21
    // ground-truth result sequences).
    spec.actions.push_back(
        SyntheticActionSpec{row.action, /*mean_on=*/250.0,
                            /*mean_off=*/4000.0});
    for (const char* object : row.objects) {
      spec.objects.push_back(CorrelatedObject(object, row.action,
                                              /*correlation=*/0.8,
                                              /*coverage=*/0.9,
                                              /*bg_on=*/300.0,
                                              /*bg_off=*/6000.0));
    }
    SVQ_ASSIGN_OR_RETURN(std::shared_ptr<const SyntheticVideo> video,
                         SyntheticVideo::Generate(spec));
    scenario.videos.push_back(std::move(video));
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

}  // namespace svq::eval
