#include "svq/runtime/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace svq::runtime {

namespace {

/// Set while a thread executes chunks of some ParallelFor region; drives
/// the nested-submit inline guard.
thread_local bool tl_in_parallel_region = false;

struct RegionGuard {
  bool previous;
  RegionGuard() : previous(tl_in_parallel_region) {
    tl_in_parallel_region = true;
  }
  ~RegionGuard() { tl_in_parallel_region = previous; }
};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_workers_(std::max(1, num_threads)), slices_(num_workers_) {
  threads_.reserve(static_cast<size_t>(num_workers_ - 1));
  for (int w = 1; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  // run_mu_ guarantees no ParallelFor is mid-flight when stop_ is raised.
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::InParallelRegion() { return tl_in_parallel_region; }

void ThreadPool::WorkerLoop(int worker_index) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock,
                   [&] { return stop_ || job_epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = job_epoch_;
    }
    Participate(worker_index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::RunInline(int64_t begin, int64_t end, int64_t grain,
                           const std::function<void(int64_t, int64_t)>& fn) {
  const bool nested = tl_in_parallel_region;
  const int64_t t0 = NowNs();
  RegionGuard guard;
  int64_t tasks = 0;
  for (int64_t chunk = begin; chunk < end;) {
    const int64_t chunk_end = std::min(end, chunk + grain);
    fn(chunk, chunk_end);
    ++tasks;
    chunk = chunk_end;
  }
  tasks_executed_.fetch_add(tasks, std::memory_order_relaxed);
  // Nested regions are already covered by the enclosing region's timer.
  if (!nested) {
    fanout_ns_.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  }
}

void ThreadPool::Participate(int worker_index) {
  RegionGuard guard;
  int64_t tasks = 0;
  int64_t steals = 0;
  Slice& own = slices_[static_cast<size_t>(worker_index)];
  while (!abort_.load(std::memory_order_relaxed)) {
    int64_t chunk_begin = 0;
    int64_t chunk_end = 0;
    bool have_chunk = false;
    {
      std::lock_guard<std::mutex> lock(own.mu);
      if (own.next < own.end) {
        chunk_begin = own.next;
        chunk_end = std::min(own.end, own.next + job_grain_);
        own.next = chunk_end;
        have_chunk = true;
      }
    }
    if (!have_chunk) {
      // Own slice drained: detach the back half of the largest remaining
      // slice. A stale size estimate only costs a re-scan — claiming is
      // always re-validated under the victim's lock.
      int victim = -1;
      int64_t victim_remaining = 0;
      for (int i = 0; i < num_workers_; ++i) {
        if (i == worker_index) continue;
        Slice& s = slices_[static_cast<size_t>(i)];
        std::lock_guard<std::mutex> lock(s.mu);
        if (s.end - s.next > victim_remaining) {
          victim_remaining = s.end - s.next;
          victim = i;
        }
      }
      if (victim < 0) break;  // no work anywhere: this worker is done
      Slice& s = slices_[static_cast<size_t>(victim)];
      int64_t stolen_begin = 0;
      int64_t stolen_end = 0;
      {
        std::lock_guard<std::mutex> lock(s.mu);
        const int64_t remaining = s.end - s.next;
        if (remaining <= 0) continue;  // lost the race; re-scan
        // Take everything when the leftover would be below one grain.
        stolen_begin =
            remaining <= job_grain_ ? s.next : s.next + remaining / 2;
        stolen_end = s.end;
        s.end = stolen_begin;
      }
      ++steals;
      {
        std::lock_guard<std::mutex> lock(own.mu);
        own.next = stolen_begin;
        own.end = stolen_end;
      }
      continue;
    }
    try {
      (*job_fn_)(chunk_begin, chunk_end);
      ++tasks;
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(exception_mu_);
        if (!first_exception_) first_exception_ = std::current_exception();
      }
      abort_.store(true, std::memory_order_relaxed);
      break;
    }
  }
  tasks_executed_.fetch_add(tasks, std::memory_order_relaxed);
  steals_.fetch_add(steals, std::memory_order_relaxed);
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  const int64_t range = end - begin;
  if (grain <= 0) {
    grain = std::max<int64_t>(1, range / (static_cast<int64_t>(num_workers_) *
                                          8));
  }
  // Nested submissions execute inline on the issuing worker: handing them
  // back to the pool while every worker blocks on this call would deadlock.
  if (tl_in_parallel_region || num_workers_ == 1 || range <= grain) {
    RunInline(begin, end, grain, fn);
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mu_);
  const int64_t t0 = NowNs();
  abort_.store(false, std::memory_order_relaxed);
  first_exception_ = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_grain_ = grain;
    for (int w = 0; w < num_workers_; ++w) {
      Slice& s = slices_[static_cast<size_t>(w)];
      std::lock_guard<std::mutex> slice_lock(s.mu);
      s.next = begin + range * w / num_workers_;
      s.end = begin + range * (w + 1) / num_workers_;
    }
    workers_done_ = 0;
    ++job_epoch_;
  }
  job_cv_.notify_all();

  Participate(0);

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return workers_done_ == num_workers_ - 1; });
    job_fn_ = nullptr;
  }
  fanout_ns_.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  if (first_exception_) std::rethrow_exception(first_exception_);
}

RuntimeStats ThreadPool::Counters() const {
  RuntimeStats stats;
  stats.threads_used = num_workers_;
  stats.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.fanout_ms =
      static_cast<double>(fanout_ns_.load(std::memory_order_relaxed)) / 1e6;
  return stats;
}

void ThreadPool::ResetCounters() {
  tasks_executed_.store(0, std::memory_order_relaxed);
  steals_.store(0, std::memory_order_relaxed);
  fanout_ns_.store(0, std::memory_order_relaxed);
}

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(begin, end, grain, fn);
    return;
  }
  if (begin >= end) return;
  if (grain <= 0) grain = end - begin;
  for (int64_t chunk = begin; chunk < end;) {
    const int64_t chunk_end = std::min(end, chunk + grain);
    fn(chunk, chunk_end);
    chunk = chunk_end;
  }
}

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn,
                 const ExecutionContext* context) {
  if (context == nullptr || !context->limited()) {
    ParallelFor(pool, begin, end, grain, fn);
    return;
  }
  // One shared latch: the first chunk that observes an expired context
  // trips it, and every chunk scheduled afterwards returns immediately.
  // Chunks already inside `fn` run to completion — cooperative early exit,
  // not preemption.
  std::atomic<bool> expired{false};
  const std::function<void(int64_t, int64_t)> guarded =
      [&](int64_t chunk_begin, int64_t chunk_end) {
        if (expired.load(std::memory_order_relaxed)) return;
        if (!context->Check().ok()) {
          expired.store(true, std::memory_order_relaxed);
          return;
        }
        fn(chunk_begin, chunk_end);
      };
  ParallelFor(pool, begin, end, grain, guarded);
}

}  // namespace svq::runtime
