#ifndef SVQ_RUNTIME_RUNTIME_OPTIONS_H_
#define SVQ_RUNTIME_RUNTIME_OPTIONS_H_

#include <algorithm>
#include <cstdint>
#include <thread>

namespace svq::runtime {

/// Execution-parallelism knobs for the offline engine (see
/// docs/parallelism.md). Embedded in core::OfflineOptions and
/// core::IngestOptions so every offline entry point can fan out.
struct RuntimeOptions {
  /// Worker count for the parallel fan-outs. 1 (the default) is the
  /// sequential reference path — no pool is created and execution is
  /// byte-identical to the pre-parallel engine. 0 asks for
  /// hardware_concurrency(). Values are clamped to >= 1.
  int num_threads = 1;

  /// Minimum items per ParallelFor task. <= 0 lets each call site pick a
  /// heuristic grain (range / (threads * 8), at least 1).
  int64_t grain = 0;

  /// `num_threads` with 0 resolved to the hardware and floors applied.
  int ResolvedThreads() const {
    if (num_threads == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      return static_cast<int>(hw == 0 ? 1 : hw);
    }
    return std::max(1, num_threads);
  }
};

/// Pool accounting for one offline run, reduced deterministically after
/// every parallel region and surfaced through core::OfflineRunStats so the
/// benches can report scaling.
struct RuntimeStats {
  /// Workers the run resolved to (1 = sequential reference path).
  int threads_used = 1;
  /// ParallelFor tasks executed across all regions of the run.
  int64_t tasks_executed = 0;
  /// Tasks obtained by stealing from another worker's range.
  int64_t steals = 0;
  /// Wall-clock time spent inside parallel regions (ms).
  double fanout_ms = 0.0;

  RuntimeStats& Merge(const RuntimeStats& other) {
    threads_used = std::max(threads_used, other.threads_used);
    tasks_executed += other.tasks_executed;
    steals += other.steals;
    fanout_ms += other.fanout_ms;
    return *this;
  }
};

}  // namespace svq::runtime

#endif  // SVQ_RUNTIME_RUNTIME_OPTIONS_H_
