#ifndef SVQ_RUNTIME_THREAD_POOL_H_
#define SVQ_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "svq/common/execution_context.h"
#include "svq/runtime/runtime_options.h"

namespace svq::runtime {

/// Fixed-size work-stealing thread pool built around one primitive:
/// ParallelFor over an index range. See docs/parallelism.md.
///
/// A pool of `num_threads` holds `num_threads - 1` spawned workers; the
/// thread calling ParallelFor participates as the remaining worker, so a
/// pool of 1 spawns nothing and runs inline. Each ParallelFor splits its
/// range into per-worker contiguous slices; workers carve grain-sized
/// chunks off their own slice and steal the back half of the largest
/// remaining slice when theirs drains (range stealing).
///
/// Scheduling never affects results at the call sites in this codebase:
/// tasks write to disjoint, index-addressed slots and every reduction
/// happens after the ParallelFor barrier in deterministic index order.
///
/// Thread safety: concurrent ParallelFor calls from different threads
/// serialize on an internal mutex. A ParallelFor issued from inside a
/// worker (nested submission) executes inline on the calling worker —
/// never enqueued — so nesting cannot deadlock the pool.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; `num_threads` is clamped to >= 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_workers_; }

  /// Applies `fn(chunk_begin, chunk_end)` to grain-sized chunks covering
  /// [begin, end), potentially concurrently, and blocks until every chunk
  /// completed. `grain <= 0` picks range / (threads * 8), at least 1.
  /// If any invocation of `fn` throws, remaining chunks are skipped (each
  /// chunk either runs fully or not at all) and the first exception is
  /// rethrown here after all workers quiesce.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// Counters accumulated since construction or the last Reset. fanout_ms
  /// is wall time spent inside ParallelFor (caller-side, per region).
  RuntimeStats Counters() const;
  void ResetCounters();

  /// True on a thread currently executing inside a ParallelFor region (a
  /// pool worker or a participating caller). Used for the nested-submit
  /// inline guard; exposed for tests.
  static bool InParallelRegion();

 private:
  /// One worker's share of the active range. Chunks are carved off the
  /// front by the owner; thieves detach the back half.
  struct alignas(64) Slice {
    std::mutex mu;
    int64_t next = 0;
    int64_t end = 0;
  };

  void WorkerLoop(int worker_index);
  /// Drains chunks (own slice first, then stealing) until no work remains.
  void Participate(int worker_index);
  /// Runs chunks on the calling thread with no pool involvement.
  void RunInline(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

  const int num_workers_;

  // Job state, valid while a ParallelFor is active. Guarded by mu_ for
  // signaling; slices have their own locks.
  std::vector<Slice> slices_;
  const std::function<void(int64_t, int64_t)>* job_fn_ = nullptr;
  int64_t job_grain_ = 1;

  std::mutex mu_;
  std::condition_variable job_cv_;   // workers wait for a new epoch
  std::condition_variable done_cv_;  // caller waits for workers_done_
  uint64_t job_epoch_ = 0;
  int workers_done_ = 0;
  bool stop_ = false;

  /// Serializes ParallelFor callers (one job at a time).
  std::mutex run_mu_;

  std::mutex exception_mu_;
  std::exception_ptr first_exception_;
  std::atomic<bool> abort_{false};

  std::atomic<int64_t> tasks_executed_{0};
  std::atomic<int64_t> steals_{0};
  std::atomic<int64_t> fanout_ns_{0};

  std::vector<std::thread> threads_;
};

/// Convenience driver used by the engine call sites: runs the loop on
/// `pool` when it is non-null and has > 1 worker, inline otherwise.
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Context-aware variant: polls `context` before each chunk and skips every
/// remaining chunk once it reports cancellation or deadline expiry, so an
/// abandoned fan-out drains in O(chunks remaining) empty iterations instead
/// of running its full workload. The call still returns normally (chunks
/// either ran fully or not at all); callers observe the outcome by
/// re-checking `context->Check()` after the barrier, exactly like the
/// sequential paths do. A null or unlimited context degrades to the plain
/// overload with zero per-chunk cost.
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn,
                 const ExecutionContext* context);

}  // namespace svq::runtime

#endif  // SVQ_RUNTIME_THREAD_POOL_H_
