#include "svq/common/status.h"

#include <cstdint>

namespace svq {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void EncodeStatus(const Status& status, std::string* out) {
  out->push_back(static_cast<char>(status.code()));
  const uint32_t length = static_cast<uint32_t>(status.message().size());
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((length >> shift) & 0xff));
  }
  out->append(status.message());
}

Status DecodeStatus(std::string_view bytes, size_t* offset, Status* decoded) {
  if (*offset + 5 > bytes.size()) {
    return Status::Corruption("status encoding truncated");
  }
  const uint8_t raw_code = static_cast<uint8_t>(bytes[*offset]);
  if (raw_code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("unknown status code " +
                              std::to_string(raw_code));
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(
                  static_cast<uint8_t>(bytes[*offset + 1 + i]))
              << (8 * i);
  }
  if (*offset + 5 + length > bytes.size()) {
    return Status::Corruption("status message overruns buffer");
  }
  *decoded = Status(static_cast<StatusCode>(raw_code),
                    std::string(bytes.substr(*offset + 5, length)));
  *offset += 5 + static_cast<size_t>(length);
  return Status::OK();
}

}  // namespace svq
