#ifndef SVQ_COMMON_STATUS_H_
#define SVQ_COMMON_STATUS_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace svq {

/// Error categories used across the library. Modeled after the
/// Arrow/RocksDB convention: a small closed set of codes plus a free-form
/// message; no exceptions cross the public API.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kCorruption,
  kUnimplemented,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
  /// A dependency is temporarily unreachable. Used by the cluster router
  /// to mark partial results: the response carries the surviving shards'
  /// sequences, and this code on the query status makes the gap explicit.
  kUnavailable,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// An operation outcome: either OK or an error code plus message.
///
/// Functions that can fail return `Status` (or `Result<T>` when they also
/// produce a value). `Status` is cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnimplemented() const {
    return code_ == StatusCode::kUnimplemented;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Appends a compact binary encoding of `status` to `out`: a one-byte code
/// followed by a 32-bit little-endian message length and the message bytes.
/// The encoding is self-delimiting, so statuses embed directly in larger
/// wire frames (see svq/server/wire.h).
void EncodeStatus(const Status& status, std::string* out);

/// Decodes a status previously written by EncodeStatus starting at
/// `*offset` in `bytes`; on success stores it in `*decoded` and advances
/// `*offset` past the encoding. Returns non-OK (without touching `decoded`)
/// when the buffer is truncated, the code byte is outside the known range,
/// or the message length overruns the buffer — the inputs are untrusted
/// network bytes.
Status DecodeStatus(std::string_view bytes, size_t* offset, Status* decoded);

/// Propagates a non-OK status to the caller. Use inside functions that
/// return `Status` (or any type constructible from `Status`).
#define SVQ_RETURN_NOT_OK(expr)        \
  do {                                 \
    ::svq::Status _st = (expr);        \
    if (!_st.ok()) return _st;         \
  } while (false)

}  // namespace svq

#endif  // SVQ_COMMON_STATUS_H_
