#include "svq/common/rng.h"

#include <cassert>
#include <cmath>

namespace svq {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextGamma(double shape) {
  assert(shape > 0.0);
  // Marsaglia-Tsang for shape >= 1; boost via U^{1/shape} otherwise.
  if (shape < 1.0) {
    const double u = NextDouble();
    return NextGamma(shape + 1.0) * std::pow(u > 0 ? u : 1e-300, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = NextGaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::NextBeta(double alpha, double beta) {
  assert(alpha > 0.0 && beta > 0.0);
  const double x = NextGamma(alpha);
  const double y = NextGamma(beta);
  const double sum = x + y;
  if (sum <= 0.0) return 0.5;
  return x / sum;
}

double Rng::NextExponential(double rate) {
  assert(rate > 0.0);
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -std::log(u) / rate;
}

uint64_t Rng::NextGeometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the parent seed with the stream id through SplitMix64 so that
  // sibling streams are decorrelated.
  uint64_t mix = seed_ ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
  const uint64_t child_seed = SplitMix64(mix);
  return Rng(child_seed);
}

}  // namespace svq
