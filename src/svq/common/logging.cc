#include "svq/common/logging.h"

#include <atomic>

namespace svq {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::cerr << stream_.str() << std::endl;
  (void)level_;
}

FatalMessage::FatalMessage(const char* cond, const char* file, int line) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: " << cond
          << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace svq
