#ifndef SVQ_COMMON_RNG_H_
#define SVQ_COMMON_RNG_H_

#include <cstdint>

namespace svq {

/// Deterministic, fast pseudo-random number generator (xoshiro256** seeded
/// via SplitMix64).
///
/// Every stochastic component in the library (synthetic videos, detector
/// noise, workload generators) draws from an explicitly seeded `Rng` so that
/// experiments and tests are exactly reproducible across runs and platforms.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, n). `n` must be > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Gaussian with given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Beta(alpha, beta) variate via the Johnk/gamma method. Both parameters
  /// must be > 0. Used for detector confidence-score distributions.
  double NextBeta(double alpha, double beta);

  /// Exponential variate with the given rate (> 0).
  double NextExponential(double rate);

  /// Geometric number of failures before first success; `p` in (0, 1].
  uint64_t NextGeometric(double p);

  /// Derives an independent generator for a named sub-stream; `stream_id`
  /// values yield decorrelated child RNGs from the same parent seed.
  Rng Fork(uint64_t stream_id) const;

 private:
  double NextGamma(double shape);

  uint64_t s_[4];
  uint64_t seed_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace svq

#endif  // SVQ_COMMON_RNG_H_
