#ifndef SVQ_COMMON_LOGGING_H_
#define SVQ_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace svq {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level for emitted log lines; defaults to kWarning so
/// library users are not spammed. Benches/examples raise verbosity.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it (with level prefix) on
/// destruction. Used via the SVQ_LOG macro only.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SVQ_LOG(level)                                                \
  if (::svq::LogLevel::k##level < ::svq::GetLogLevel()) {             \
  } else                                                              \
    ::svq::internal::LogMessage(::svq::LogLevel::k##level, __FILE__,  \
                                __LINE__)

/// Invariant check that aborts with a message; active in all build types.
/// Reserved for programming errors, not for recoverable conditions (those
/// return Status).
#define SVQ_CHECK(cond)                                                      \
  if (cond) {                                                                \
  } else                                                                     \
    ::svq::internal::FatalMessage(#cond, __FILE__, __LINE__)

namespace internal {

class FatalMessage {
 public:
  FatalMessage(const char* cond, const char* file, int line);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace svq

#endif  // SVQ_COMMON_LOGGING_H_
