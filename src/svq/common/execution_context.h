#ifndef SVQ_COMMON_EXECUTION_CONTEXT_H_
#define SVQ_COMMON_EXECUTION_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "svq/common/status.h"

namespace svq {

namespace storage {
struct StorageMetrics;
}  // namespace storage
namespace runtime {
struct RuntimeStats;
}  // namespace runtime
namespace observability {
class QueryTrace;
}  // namespace observability

/// Observer half of a cooperative cancellation pair. Tokens are cheap
/// value types (a shared pointer to the source's flag); a
/// default-constructed token can never fire. Thread safe.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True once the owning CancellationSource fired.
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

  /// Whether this token is connected to a source at all. Lets hot paths
  /// skip the atomic load when cancellation was never requested.
  bool CanBeCancelled() const { return flag_ != nullptr; }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Owner half of a cooperative cancellation pair: the party that may abandon
/// a query holds the source; the execution path polls tokens. Thread safe —
/// Cancel() may race any number of concurrent token reads.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }

  /// Requests cancellation. Idempotent; never blocks.
  void Cancel() { flag_->store(true, std::memory_order_release); }

  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Per-query execution context: deadline, cooperative cancellation, and
/// optional per-query accounting sinks. One context is created per query
/// (or per statement) and threaded by const reference through every layer
/// of the execution path — the engine facade, the offline algorithm loops,
/// the TBClip iterator, the streaming per-clip loop, and the repository
/// fan-out — each of which polls Check() at its iteration boundary so a
/// slow or abandoned query unwinds promptly with DeadlineExceeded or
/// Cancelled instead of running to completion.
///
/// A default-constructed context is unlimited: Check() always returns OK
/// and costs two branches, so the context can be threaded unconditionally.
///
/// The accounting sinks are raw pointers to caller-owned structs
/// (forward-declared here; the engine layer includes the real types).
/// Results are merged into them once per execution by the engine facade —
/// they are not written concurrently, so plain structs suffice.
class ExecutionContext {
 public:
  using Clock = std::chrono::steady_clock;

  ExecutionContext() = default;

  static ExecutionContext WithDeadline(Clock::time_point deadline) {
    ExecutionContext context;
    context.set_deadline(deadline);
    return context;
  }

  static ExecutionContext WithTimeout(Clock::duration timeout) {
    return WithDeadline(Clock::now() + timeout);
  }

  void set_deadline(Clock::time_point deadline) { deadline_ = deadline; }
  void set_cancellation(CancellationToken token) { token_ = std::move(token); }
  void set_storage_sink(storage::StorageMetrics* sink) {
    storage_sink_ = sink;
  }
  void set_runtime_sink(runtime::RuntimeStats* sink) { runtime_sink_ = sink; }
  /// Attaches a per-query trace (see observability/trace.h). The trace is
  /// recorded only from the thread driving the query — like the stats
  /// sinks, it is not written concurrently. Null (the default) disables
  /// tracing; instrumented paths no-op on a null trace.
  void set_trace(observability::QueryTrace* trace) { trace_ = trace; }

  bool has_deadline() const { return deadline_.has_value(); }
  std::optional<Clock::time_point> deadline() const { return deadline_; }
  storage::StorageMetrics* storage_sink() const { return storage_sink_; }
  runtime::RuntimeStats* runtime_sink() const { return runtime_sink_; }
  observability::QueryTrace* trace() const { return trace_; }

  /// Whether this context can ever fail a Check(). Lets fan-out drivers
  /// skip the per-chunk polling wrapper for unlimited contexts.
  bool limited() const {
    return deadline_.has_value() || token_.CanBeCancelled();
  }

  /// OK while the query may keep running; Cancelled once the token fired
  /// (checked first: an explicit abandon beats a timeout); DeadlineExceeded
  /// once the deadline passed.
  Status Check() const {
    if (token_.CanBeCancelled() && token_.cancelled()) {
      return Status::Cancelled("query cancelled by caller");
    }
    if (deadline_.has_value() && Clock::now() >= *deadline_) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::optional<Clock::time_point> deadline_;
  CancellationToken token_;
  storage::StorageMetrics* storage_sink_ = nullptr;
  runtime::RuntimeStats* runtime_sink_ = nullptr;
  observability::QueryTrace* trace_ = nullptr;
};

}  // namespace svq

#endif  // SVQ_COMMON_EXECUTION_CONTEXT_H_
