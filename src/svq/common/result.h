#ifndef SVQ_COMMON_RESULT_H_
#define SVQ_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "svq/common/status.h"

namespace svq {

/// A value-or-error holder in the style of `arrow::Result<T>`.
///
/// A `Result<T>` holds either a `T` (success) or a non-OK `Status`
/// (failure). Accessing the value of a failed result aborts in debug builds;
/// callers must check `ok()` first or use the SVQ_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status: `return Status::...;`.
  /// The status must not be OK (an OK status carries no value).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; `Status::OK()` when the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this result is an error.
  T ValueOr(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> payload_;
};

/// `SVQ_ASSIGN_OR_RETURN(auto x, MaybeX());` — assigns on success,
/// propagates the error status otherwise.
#define SVQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define SVQ_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define SVQ_ASSIGN_OR_RETURN_CONCAT(x, y) SVQ_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define SVQ_ASSIGN_OR_RETURN(lhs, rexpr)                                      \
  SVQ_ASSIGN_OR_RETURN_IMPL(                                                  \
      SVQ_ASSIGN_OR_RETURN_CONCAT(_svq_result_tmp_, __LINE__), lhs, rexpr)

}  // namespace svq

#endif  // SVQ_COMMON_RESULT_H_
