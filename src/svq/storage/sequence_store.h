#ifndef SVQ_STORAGE_SEQUENCE_STORE_H_
#define SVQ_STORAGE_SEQUENCE_STORE_H_

#include <map>
#include <string>

#include "svq/common/result.h"
#include "svq/video/interval_set.h"

namespace svq::storage {

/// Persistence of the per-type individual sequences of paper §4.2: for each
/// object type the positive-clip runs `P_{o_i}` and for each action type
/// `P_{a_j}`, materialized at ingestion time and loaded at query time.
/// Sequences are stored in the clip domain as half-open intervals.
class SequenceStore {
 public:
  /// Writes `sequences` (label -> clip-interval set) to `path`.
  static Status Save(const std::string& path,
                     const std::map<std::string, video::IntervalSet>& sequences);

  /// Reads a file written by Save. Errors: IOError, Corruption.
  static Result<std::map<std::string, video::IntervalSet>> Load(
      const std::string& path);
};

}  // namespace svq::storage

#endif  // SVQ_STORAGE_SEQUENCE_STORE_H_
