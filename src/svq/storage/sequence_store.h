#ifndef SVQ_STORAGE_SEQUENCE_STORE_H_
#define SVQ_STORAGE_SEQUENCE_STORE_H_

#include <map>
#include <string>

#include "svq/common/result.h"
#include "svq/video/interval_set.h"

namespace svq::io {
class Env;
}  // namespace svq::io

namespace svq::storage {

/// Persistence of the per-type individual sequences of paper §4.2: for each
/// object type the positive-clip runs `P_{o_i}` and for each action type
/// `P_{a_j}`, materialized at ingestion time and loaded at query time.
/// Sequences are stored in the clip domain as half-open intervals.
class SequenceStore {
 public:
  /// Writes `sequences` (label -> clip-interval set) to `path` in v2
  /// format (CRC-32C footer) via the crash-safe io::WriteFileAtomic
  /// protocol: on failure `path` keeps its previous complete contents (or
  /// stays absent). `env` is the I/O environment (nullptr =
  /// io::Env::Default(); tests inject faults).
  static Status Save(const std::string& path,
                     const std::map<std::string, video::IntervalSet>& sequences,
                     io::Env* env = nullptr);

  /// Reads a file written by Save. v2 files are verified against their
  /// checksum footer; v1 files (pre-footer) are still accepted. Every
  /// on-disk count is bounded by the real file size before allocation.
  /// Errors: IOError (missing/unreadable), Corruption (torn, damaged, or
  /// hostile file).
  static Result<std::map<std::string, video::IntervalSet>> Load(
      const std::string& path);
};

}  // namespace svq::storage

#endif  // SVQ_STORAGE_SEQUENCE_STORE_H_
