#ifndef SVQ_STORAGE_SCORE_TABLE_H_
#define SVQ_STORAGE_SCORE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "svq/common/result.h"
#include "svq/storage/access_stats.h"
#include "svq/video/types.h"

namespace svq::io {
class Env;
}  // namespace svq::io

namespace svq::storage {

/// One row of a clip score table (paper §4.2): the clip identifier and the
/// aggregated score of one object/action type on that clip.
struct ClipScoreRow {
  video::ClipIndex clip = 0;
  double score = 0.0;

  friend bool operator==(const ClipScoreRow&, const ClipScoreRow&) = default;
};

/// Read-only clip score table ordered by score (descending). Materialized
/// during the ingestion phase, one per object/action type per video.
///
/// Access paths mirror what the top-k algorithms need: sorted access from
/// the top, reverse access from the bottom, and random access by clip id.
/// Implementations do not count accesses — use TableReader for per-query
/// instrumentation.
class ScoreTable {
 public:
  virtual ~ScoreTable() = default;

  virtual int64_t NumRows() const = 0;

  /// Row at `rank` in descending score order (rank 0 = highest score).
  /// Errors: OutOfRange.
  virtual Result<ClipScoreRow> RowAt(int64_t rank) const = 0;

  /// Score of `clip`. Errors: NotFound when the clip has no row (no
  /// detection of this type on that clip).
  virtual Result<double> ScoreOf(video::ClipIndex clip) const = 0;

  virtual bool HasClip(video::ClipIndex clip) const = 0;
};

/// Heap-resident score table.
class MemoryScoreTable final : public ScoreTable {
 public:
  /// `rows` in any order; they are sorted by descending score. Errors:
  /// InvalidArgument on duplicate clip ids.
  static Result<std::unique_ptr<MemoryScoreTable>> Create(
      std::vector<ClipScoreRow> rows);

  int64_t NumRows() const override {
    return static_cast<int64_t>(rows_.size());
  }
  Result<ClipScoreRow> RowAt(int64_t rank) const override;
  Result<double> ScoreOf(video::ClipIndex clip) const override;
  bool HasClip(video::ClipIndex clip) const override;

 private:
  MemoryScoreTable() = default;

  std::vector<ClipScoreRow> rows_;
  std::unordered_map<video::ClipIndex, int64_t> rank_of_clip_;
};

/// File-backed score table: a fixed-width binary file of rows sorted by
/// descending score; every RowAt/ScoreOf performs a real positioned read.
/// The clip -> rank index is rebuilt with one sequential scan at open time
/// (ingestion-side cost, not charged to queries).
class DiskScoreTable final : public ScoreTable {
 public:
  /// Writes `rows` (any order) to `path` in v2 table format (CRC-32C
  /// footer) via the crash-safe io::WriteFileAtomic protocol: on failure
  /// `path` is untouched — no partial table can ever appear at the final
  /// name. `env` is the I/O environment (nullptr = io::Env::Default();
  /// tests inject faults).
  static Status Write(const std::string& path, std::vector<ClipScoreRow> rows,
                      io::Env* env = nullptr);

  /// Opens a table previously written with Write. v2 files are verified
  /// against their checksum footer; v1 files (pre-footer) are still
  /// accepted. Every on-disk length is validated against the real file
  /// size before any allocation. Errors: IOError (missing/unreadable),
  /// Corruption (torn, damaged, or hostile file).
  static Result<std::unique_ptr<DiskScoreTable>> Open(const std::string& path);

  ~DiskScoreTable() override;

  int64_t NumRows() const override { return num_rows_; }
  Result<ClipScoreRow> RowAt(int64_t rank) const override;
  Result<double> ScoreOf(video::ClipIndex clip) const override;
  bool HasClip(video::ClipIndex clip) const override;

 private:
  DiskScoreTable() = default;

  int fd_ = -1;
  int64_t num_rows_ = 0;
  std::unordered_map<video::ClipIndex, int64_t> rank_of_clip_;
};

/// Instrumented per-query view over a ScoreTable: every access path bumps
/// the query's shared StorageMetrics.
class TableReader {
 public:
  TableReader(const ScoreTable* table, StorageMetrics* metrics)
      : table_(table), metrics_(metrics) {}

  int64_t NumRows() const { return table_->NumRows(); }

  /// Sorted access (top of the table downward).
  Result<ClipScoreRow> SortedAccess(int64_t rank) {
    ++metrics_->sorted_accesses;
    return table_->RowAt(rank);
  }

  /// Reverse sorted access: `rank_from_bottom` 0 = lowest score.
  Result<ClipScoreRow> ReverseAccess(int64_t rank_from_bottom) {
    ++metrics_->sorted_accesses;
    return table_->RowAt(table_->NumRows() - 1 - rank_from_bottom);
  }

  /// Random access by clip; missing clips are charged and reported as a
  /// score of 0 (no detection of the type on the clip).
  double RandomAccessOrZero(video::ClipIndex clip) {
    ++metrics_->random_accesses;
    auto result = table_->ScoreOf(clip);
    return result.ok() ? *result : 0.0;
  }

  /// Sequential clip-record read (used by full traverses).
  double SequentialReadOrZero(video::ClipIndex clip) {
    ++metrics_->sequential_reads;
    auto result = table_->ScoreOf(clip);
    return result.ok() ? *result : 0.0;
  }

  const ScoreTable* table() const { return table_; }

 private:
  const ScoreTable* table_;
  StorageMetrics* metrics_;
};

}  // namespace svq::storage

#endif  // SVQ_STORAGE_SCORE_TABLE_H_
