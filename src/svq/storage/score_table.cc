#include "svq/storage/score_table.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace svq::storage {

namespace {

constexpr uint32_t kMagic = 0x53565154;  // "SVQT"
constexpr uint32_t kVersion = 1;

struct FileHeader {
  uint32_t magic = kMagic;
  uint32_t version = kVersion;
  uint64_t row_count = 0;
};

struct FileRow {
  int64_t clip;
  double score;
};

static_assert(sizeof(FileHeader) == 16, "header layout must be stable");
static_assert(sizeof(FileRow) == 16, "row layout must be stable");

void SortRows(std::vector<ClipScoreRow>& rows) {
  std::sort(rows.begin(), rows.end(),
            [](const ClipScoreRow& a, const ClipScoreRow& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.clip < b.clip;
            });
}

Status CheckDuplicates(const std::vector<ClipScoreRow>& sorted_rows) {
  std::unordered_map<video::ClipIndex, bool> seen;
  seen.reserve(sorted_rows.size());
  for (const ClipScoreRow& row : sorted_rows) {
    if (!seen.emplace(row.clip, true).second) {
      return Status::InvalidArgument("duplicate clip id in score table: " +
                                     std::to_string(row.clip));
    }
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// MemoryScoreTable

Result<std::unique_ptr<MemoryScoreTable>> MemoryScoreTable::Create(
    std::vector<ClipScoreRow> rows) {
  SortRows(rows);
  SVQ_RETURN_NOT_OK(CheckDuplicates(rows));
  auto table = std::unique_ptr<MemoryScoreTable>(new MemoryScoreTable());
  table->rank_of_clip_.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    table->rank_of_clip_.emplace(rows[i].clip, static_cast<int64_t>(i));
  }
  table->rows_ = std::move(rows);
  return table;
}

Result<ClipScoreRow> MemoryScoreTable::RowAt(int64_t rank) const {
  if (rank < 0 || rank >= NumRows()) {
    return Status::OutOfRange("rank " + std::to_string(rank) +
                              " outside table of " +
                              std::to_string(NumRows()) + " rows");
  }
  return rows_[static_cast<size_t>(rank)];
}

Result<double> MemoryScoreTable::ScoreOf(video::ClipIndex clip) const {
  auto it = rank_of_clip_.find(clip);
  if (it == rank_of_clip_.end()) {
    return Status::NotFound("clip " + std::to_string(clip));
  }
  return rows_[static_cast<size_t>(it->second)].score;
}

bool MemoryScoreTable::HasClip(video::ClipIndex clip) const {
  return rank_of_clip_.contains(clip);
}

// ---------------------------------------------------------------------------
// DiskScoreTable

Status DiskScoreTable::Write(const std::string& path,
                             std::vector<ClipScoreRow> rows) {
  SortRows(rows);
  SVQ_RETURN_NOT_OK(CheckDuplicates(rows));
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open for write failed: " + path + ": " +
                           std::strerror(errno));
  }
  FileHeader header;
  header.row_count = rows.size();
  bool ok = ::write(fd, &header, sizeof(header)) ==
            static_cast<ssize_t>(sizeof(header));
  for (const ClipScoreRow& row : rows) {
    if (!ok) break;
    FileRow file_row{row.clip, row.score};
    ok = ::write(fd, &file_row, sizeof(file_row)) ==
         static_cast<ssize_t>(sizeof(file_row));
  }
  ::close(fd);
  if (!ok) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<std::unique_ptr<DiskScoreTable>> DiskScoreTable::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open failed: " + path + ": " +
                           std::strerror(errno));
  }
  auto table = std::unique_ptr<DiskScoreTable>(new DiskScoreTable());
  table->fd_ = fd;
  FileHeader header;
  if (::pread(fd, &header, sizeof(header), 0) !=
      static_cast<ssize_t>(sizeof(header))) {
    return Status::IOError("short header read: " + path);
  }
  if (header.magic != kMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (header.version != kVersion) {
    return Status::Corruption("unsupported version in " + path);
  }
  table->num_rows_ = static_cast<int64_t>(header.row_count);
  // Ingestion-side sequential scan to rebuild the clip -> rank index.
  table->rank_of_clip_.reserve(header.row_count);
  double prev_score = 0.0;
  for (int64_t rank = 0; rank < table->num_rows_; ++rank) {
    FileRow row;
    const off_t offset =
        static_cast<off_t>(sizeof(FileHeader)) +
        static_cast<off_t>(rank) * static_cast<off_t>(sizeof(FileRow));
    if (::pread(fd, &row, sizeof(row), offset) !=
        static_cast<ssize_t>(sizeof(row))) {
      return Status::Corruption("truncated table: " + path);
    }
    if (rank > 0 && row.score > prev_score) {
      return Status::Corruption("rows out of order in " + path);
    }
    prev_score = row.score;
    if (!table->rank_of_clip_.emplace(row.clip, rank).second) {
      return Status::Corruption("duplicate clip in " + path);
    }
  }
  return table;
}

DiskScoreTable::~DiskScoreTable() {
  if (fd_ >= 0) ::close(fd_);
}

Result<ClipScoreRow> DiskScoreTable::RowAt(int64_t rank) const {
  if (rank < 0 || rank >= num_rows_) {
    return Status::OutOfRange("rank " + std::to_string(rank) +
                              " outside table of " +
                              std::to_string(num_rows_) + " rows");
  }
  FileRow row;
  const off_t offset =
      static_cast<off_t>(sizeof(FileHeader)) +
      static_cast<off_t>(rank) * static_cast<off_t>(sizeof(FileRow));
  if (::pread(fd_, &row, sizeof(row), offset) !=
      static_cast<ssize_t>(sizeof(row))) {
    return Status::IOError("read failed at rank " + std::to_string(rank));
  }
  return ClipScoreRow{row.clip, row.score};
}

Result<double> DiskScoreTable::ScoreOf(video::ClipIndex clip) const {
  auto it = rank_of_clip_.find(clip);
  if (it == rank_of_clip_.end()) {
    return Status::NotFound("clip " + std::to_string(clip));
  }
  SVQ_ASSIGN_OR_RETURN(const ClipScoreRow row, RowAt(it->second));
  return row.score;
}

bool DiskScoreTable::HasClip(video::ClipIndex clip) const {
  return rank_of_clip_.contains(clip);
}

}  // namespace svq::storage
