#include "svq/storage/score_table.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "svq/io/bytes.h"
#include "svq/io/checksum_format.h"
#include "svq/io/crc32c.h"
#include "svq/io/env.h"

namespace svq::storage {

namespace {

constexpr uint32_t kMagic = 0x53565154;  // "SVQT"
// v1: header + rows, nothing else — still readable, no longer written.
// v2: header + rows + the CRC-32C checksum footer of
//     svq/io/checksum_format.h, written atomically (docs/storage.md).
constexpr uint32_t kVersionLegacy = 1;
constexpr uint32_t kVersionChecksummed = 2;

struct FileHeader {
  uint32_t magic = kMagic;
  uint32_t version = kVersionChecksummed;
  uint64_t row_count = 0;
};

struct FileRow {
  int64_t clip;
  double score;
};

static_assert(sizeof(FileHeader) == 16, "header layout must be stable");
static_assert(sizeof(FileRow) == 16, "row layout must be stable");

void SortRows(std::vector<ClipScoreRow>& rows) {
  std::sort(rows.begin(), rows.end(),
            [](const ClipScoreRow& a, const ClipScoreRow& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.clip < b.clip;
            });
}

Status CheckDuplicates(const std::vector<ClipScoreRow>& sorted_rows) {
  std::unordered_map<video::ClipIndex, bool> seen;
  seen.reserve(sorted_rows.size());
  for (const ClipScoreRow& row : sorted_rows) {
    if (!seen.emplace(row.clip, true).second) {
      return Status::InvalidArgument("duplicate clip id in score table: " +
                                     std::to_string(row.clip));
    }
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// MemoryScoreTable

Result<std::unique_ptr<MemoryScoreTable>> MemoryScoreTable::Create(
    std::vector<ClipScoreRow> rows) {
  SortRows(rows);
  SVQ_RETURN_NOT_OK(CheckDuplicates(rows));
  auto table = std::unique_ptr<MemoryScoreTable>(new MemoryScoreTable());
  table->rank_of_clip_.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    table->rank_of_clip_.emplace(rows[i].clip, static_cast<int64_t>(i));
  }
  table->rows_ = std::move(rows);
  return table;
}

Result<ClipScoreRow> MemoryScoreTable::RowAt(int64_t rank) const {
  if (rank < 0 || rank >= NumRows()) {
    return Status::OutOfRange("rank " + std::to_string(rank) +
                              " outside table of " +
                              std::to_string(NumRows()) + " rows");
  }
  return rows_[static_cast<size_t>(rank)];
}

Result<double> MemoryScoreTable::ScoreOf(video::ClipIndex clip) const {
  auto it = rank_of_clip_.find(clip);
  if (it == rank_of_clip_.end()) {
    return Status::NotFound("clip " + std::to_string(clip));
  }
  return rows_[static_cast<size_t>(it->second)].score;
}

bool MemoryScoreTable::HasClip(video::ClipIndex clip) const {
  return rank_of_clip_.contains(clip);
}

// ---------------------------------------------------------------------------
// DiskScoreTable

Status DiskScoreTable::Write(const std::string& path,
                             std::vector<ClipScoreRow> rows, io::Env* env) {
  SortRows(rows);
  SVQ_RETURN_NOT_OK(CheckDuplicates(rows));
  // Serialize completely in memory, then hand one buffer to the atomic
  // write protocol: either the whole checksummed v2 file appears at `path`
  // or `path` is untouched — a failure can never leave a partial table at
  // the final name (docs/storage.md).
  FileHeader header;
  header.row_count = rows.size();
  std::string buffer;
  buffer.reserve(sizeof(FileHeader) + rows.size() * sizeof(FileRow) +
                 io::kChecksumFooterSize);
  io::AppendValue(&buffer, header);
  for (const ClipScoreRow& row : rows) {
    io::AppendValue(&buffer, FileRow{row.clip, row.score});
  }
  io::AppendChecksumFooter(&buffer);
  return io::WriteFileAtomic(env, path, buffer);
}

namespace {

/// Streams the file's first `payload_size` bytes through CRC-32C without
/// materializing them (tables can be large; the row scan below re-reads
/// them positioned anyway).
Result<uint32_t> ChecksumRange(int fd, uint64_t payload_size,
                               const std::string& path) {
  uint32_t crc = 0;
  char buffer[1 << 16];
  uint64_t offset = 0;
  while (offset < payload_size) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(sizeof(buffer), payload_size - offset));
    const ssize_t n = ::pread(fd, buffer, want, static_cast<off_t>(offset));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return Status::Corruption("unreadable payload in " + path);
    crc = io::Crc32c(buffer, static_cast<size_t>(n), crc);
    offset += static_cast<uint64_t>(n);
  }
  return crc;
}

}  // namespace

Result<std::unique_ptr<DiskScoreTable>> DiskScoreTable::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open failed: " + path + ": " +
                           std::strerror(errno));
  }
  auto table = std::unique_ptr<DiskScoreTable>(new DiskScoreTable());
  table->fd_ = fd;
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    return Status::IOError("fstat failed: " + path + ": " +
                           std::strerror(errno));
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (file_size < sizeof(FileHeader)) {
    return Status::Corruption("file too short for header: " + path);
  }
  FileHeader header;
  if (::pread(fd, &header, sizeof(header), 0) !=
      static_cast<ssize_t>(sizeof(header))) {
    return Status::Corruption("short header read: " + path);
  }
  if (header.magic != kMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  uint64_t payload_size = file_size;
  if (header.version == kVersionChecksummed) {
    // v2: validate the footer (size agreement + CRC over header and rows)
    // before trusting a single header field.
    if (file_size < sizeof(FileHeader) + io::kChecksumFooterSize) {
      return Status::Corruption("file too short for footer: " + path);
    }
    std::string footer(io::kChecksumFooterSize, '\0');
    if (::pread(fd, footer.data(), footer.size(),
                static_cast<off_t>(file_size - footer.size())) !=
        static_cast<ssize_t>(footer.size())) {
      return Status::Corruption("short footer read: " + path);
    }
    // StripChecksumFooter wants the whole file; emulate with a two-part
    // check: parse the footer fields from a synthetic buffer, then stream
    // the payload CRC.
    payload_size = file_size - io::kChecksumFooterSize;
    io::ByteReader reader(footer);
    uint32_t magic = 0;
    uint32_t version = 0;
    uint64_t declared_payload = 0;
    uint32_t crc = 0;
    uint32_t reserved = 0;
    reader.Read(&magic);
    reader.Read(&version);
    reader.Read(&declared_payload);
    reader.Read(&crc);
    reader.Read(&reserved);
    if (magic != io::kChecksumFooterMagic) {
      return Status::Corruption("bad checksum footer magic in " + path);
    }
    if (version != io::kChecksumFooterVersion || reserved != 0) {
      return Status::Corruption("bad checksum footer in " + path);
    }
    if (declared_payload != payload_size) {
      return Status::Corruption(
          "footer payload size disagrees with file size in " + path);
    }
    SVQ_ASSIGN_OR_RETURN(const uint32_t actual,
                         ChecksumRange(fd, payload_size, path));
    if (actual != crc) {
      return Status::Corruption("checksum mismatch in " + path);
    }
  } else if (header.version != kVersionLegacy) {
    return Status::Corruption("unsupported version in " + path);
  }
  // The row count is untrusted until proven consistent with the bytes that
  // actually exist — a corrupt 2^60 here must fail cleanly, not drive a
  // huge reserve() (hostile-file hardening, docs/storage.md).
  const uint64_t row_bytes = payload_size - sizeof(FileHeader);
  if (row_bytes % sizeof(FileRow) != 0 ||
      header.row_count != row_bytes / sizeof(FileRow)) {
    return Status::Corruption("row count disagrees with file size in " +
                              path);
  }
  table->num_rows_ = static_cast<int64_t>(header.row_count);
  // Ingestion-side sequential scan to rebuild the clip -> rank index.
  table->rank_of_clip_.reserve(header.row_count);
  double prev_score = 0.0;
  for (int64_t rank = 0; rank < table->num_rows_; ++rank) {
    FileRow row;
    const off_t offset =
        static_cast<off_t>(sizeof(FileHeader)) +
        static_cast<off_t>(rank) * static_cast<off_t>(sizeof(FileRow));
    if (::pread(fd, &row, sizeof(row), offset) !=
        static_cast<ssize_t>(sizeof(row))) {
      return Status::Corruption("truncated table: " + path);
    }
    if (rank > 0 && row.score > prev_score) {
      return Status::Corruption("rows out of order in " + path);
    }
    prev_score = row.score;
    if (!table->rank_of_clip_.emplace(row.clip, rank).second) {
      return Status::Corruption("duplicate clip in " + path);
    }
  }
  return table;
}

DiskScoreTable::~DiskScoreTable() {
  if (fd_ >= 0) ::close(fd_);
}

Result<ClipScoreRow> DiskScoreTable::RowAt(int64_t rank) const {
  if (rank < 0 || rank >= num_rows_) {
    return Status::OutOfRange("rank " + std::to_string(rank) +
                              " outside table of " +
                              std::to_string(num_rows_) + " rows");
  }
  FileRow row;
  const off_t offset =
      static_cast<off_t>(sizeof(FileHeader)) +
      static_cast<off_t>(rank) * static_cast<off_t>(sizeof(FileRow));
  if (::pread(fd_, &row, sizeof(row), offset) !=
      static_cast<ssize_t>(sizeof(row))) {
    return Status::IOError("read failed at rank " + std::to_string(rank));
  }
  return ClipScoreRow{row.clip, row.score};
}

Result<double> DiskScoreTable::ScoreOf(video::ClipIndex clip) const {
  auto it = rank_of_clip_.find(clip);
  if (it == rank_of_clip_.end()) {
    return Status::NotFound("clip " + std::to_string(clip));
  }
  SVQ_ASSIGN_OR_RETURN(const ClipScoreRow row, RowAt(it->second));
  return row.score;
}

bool DiskScoreTable::HasClip(video::ClipIndex clip) const {
  return rank_of_clip_.contains(clip);
}

}  // namespace svq::storage
