#ifndef SVQ_STORAGE_ACCESS_STATS_H_
#define SVQ_STORAGE_ACCESS_STATS_H_

#include <cstdint>

namespace svq::storage {

/// Latency model of the simulated secondary storage holding the clip score
/// tables. The offline experiments (paper Tables 6-8) report wall-clock
/// runtimes that are dominated by disk accesses on the authors' testbed; we
/// reproduce the *shape* of those results by charging each access class a
/// fixed virtual latency and reporting accumulated virtual time alongside
/// the exact access counts (which are a pure property of the algorithms).
///
/// Defaults are calibrated so that paper-scale access counts produce
/// paper-scale seconds (~5-6 ms per random access; see EXPERIMENTS.md).
struct DiskCostModel {
  /// One step of sorted (or reverse-sorted) access on one table. Cheap:
  /// rows are 16 bytes and sorted access streams consecutive pages.
  double sorted_access_ms = 0.05;
  /// One random (by clip id) lookup on one table: a seek per access.
  double random_access_ms = 5.5;
  /// One clip-record fetch during a full-sequence traverse. Same cost
  /// class as a random access: consecutive clips of a sequence sit at
  /// uncorrelated score ranks, so each fetch seeks within its table.
  double sequential_read_ms = 5.5;
};

/// Per-query access accounting, shared by all tables a query touches.
struct StorageMetrics {
  int64_t sorted_accesses = 0;
  int64_t random_accesses = 0;
  int64_t sequential_reads = 0;

  void Reset() { *this = StorageMetrics(); }

  /// Field-by-field aggregation; keep this the only place fields are
  /// summed so growing the struct cannot silently drop a field.
  StorageMetrics& Merge(const StorageMetrics& other) {
    sorted_accesses += other.sorted_accesses;
    random_accesses += other.random_accesses;
    sequential_reads += other.sequential_reads;
    return *this;
  }

  StorageMetrics& operator+=(const StorageMetrics& other) {
    return Merge(other);
  }

  double VirtualMs(const DiskCostModel& model) const {
    return static_cast<double>(sorted_accesses) * model.sorted_access_ms +
           static_cast<double>(random_accesses) * model.random_access_ms +
           static_cast<double>(sequential_reads) * model.sequential_read_ms;
  }
};

}  // namespace svq::storage

#endif  // SVQ_STORAGE_ACCESS_STATS_H_
