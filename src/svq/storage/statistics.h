#ifndef SVQ_STORAGE_STATISTICS_H_
#define SVQ_STORAGE_STATISTICS_H_

#include <cstdint>

namespace svq::storage {

/// Ingest-time selectivity statistics for one object/action type of one
/// video — the planner's raw material (docs/planner.md). Collected once
/// when the artifacts are materialized (IngestVideo) or reopened
/// (OpenIngestedVideo); stored on the immutable IngestedVideo, so every
/// snapshot that carries the artifacts carries their statistics and a
/// planner consulting a pinned snapshot always prices against the catalog
/// view the query will actually execute on.
struct TypeStatistics {
  /// Rows of the type's clip score table (clips with at least one
  /// detection of the type).
  int64_t table_rows = 0;
  /// Intervals of the type's positive-sequence posting list `P_o` / `P_a`.
  int64_t posting_intervals = 0;
  /// Clips covered by the posting list (its total length).
  int64_t covered_clips = 0;
  /// covered_clips / video clip count, in [0, 1]: the probability a
  /// uniformly drawn clip satisfies the type — the planner's selectivity.
  double density = 0.0;

  friend bool operator==(const TypeStatistics&,
                         const TypeStatistics&) = default;
};

}  // namespace svq::storage

#endif  // SVQ_STORAGE_STATISTICS_H_
