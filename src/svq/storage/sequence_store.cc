#include "svq/storage/sequence_store.h"

#include <cstdint>
#include <fstream>
#include <vector>

namespace svq::storage {

namespace {
constexpr uint32_t kMagic = 0x53565153;  // "SVQS"

template <typename T>
void Put(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool Get(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}
}  // namespace

Status SequenceStore::Save(
    const std::string& path,
    const std::map<std::string, video::IntervalSet>& sequences) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("open for write failed: " + path);
  Put(out, kMagic);
  Put(out, static_cast<uint64_t>(sequences.size()));
  for (const auto& [label, set] : sequences) {
    Put(out, static_cast<uint64_t>(label.size()));
    out.write(label.data(), static_cast<std::streamsize>(label.size()));
    Put(out, static_cast<uint64_t>(set.size()));
    for (const video::Interval& interval : set.intervals()) {
      Put(out, interval.begin);
      Put(out, interval.end);
    }
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::map<std::string, video::IntervalSet>> SequenceStore::Load(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("open failed: " + path);
  uint32_t magic = 0;
  if (!Get(in, &magic) || magic != kMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  uint64_t label_count = 0;
  if (!Get(in, &label_count)) return Status::Corruption("truncated " + path);
  std::map<std::string, video::IntervalSet> sequences;
  for (uint64_t i = 0; i < label_count; ++i) {
    uint64_t name_len = 0;
    if (!Get(in, &name_len) || name_len > (1u << 20)) {
      return Status::Corruption("bad label length in " + path);
    }
    std::string label(name_len, '\0');
    in.read(label.data(), static_cast<std::streamsize>(name_len));
    if (!in) return Status::Corruption("truncated label in " + path);
    uint64_t interval_count = 0;
    if (!Get(in, &interval_count)) {
      return Status::Corruption("truncated " + path);
    }
    std::vector<video::Interval> intervals;
    intervals.reserve(interval_count);
    for (uint64_t j = 0; j < interval_count; ++j) {
      video::Interval interval;
      if (!Get(in, &interval.begin) || !Get(in, &interval.end)) {
        return Status::Corruption("truncated interval in " + path);
      }
      if (interval.end < interval.begin) {
        return Status::Corruption("inverted interval in " + path);
      }
      intervals.push_back(interval);
    }
    sequences.emplace(std::move(label),
                      video::IntervalSet(std::move(intervals)));
  }
  return sequences;
}

}  // namespace svq::storage
