#include "svq/storage/sequence_store.h"

#include <cstdint>
#include <string_view>
#include <vector>

#include "svq/io/bytes.h"
#include "svq/io/checksum_format.h"
#include "svq/io/env.h"

namespace svq::storage {

namespace {
// v1: magic + body, written in place — still readable, no longer written.
// v2: new magic, same body, plus the CRC-32C checksum footer of
//     svq/io/checksum_format.h, written atomically (docs/storage.md).
constexpr uint32_t kMagicV1 = 0x53565153;  // "SVQS"
constexpr uint32_t kMagicV2 = 0x32515653;  // "SVQ2"
constexpr uint64_t kMaxLabelLength = 1u << 20;
}  // namespace

Status SequenceStore::Save(
    const std::string& path,
    const std::map<std::string, video::IntervalSet>& sequences,
    io::Env* env) {
  std::string buffer;
  io::AppendValue(&buffer, kMagicV2);
  io::AppendValue(&buffer, static_cast<uint64_t>(sequences.size()));
  for (const auto& [label, set] : sequences) {
    io::AppendLengthPrefixedString(&buffer, label);
    io::AppendValue(&buffer, static_cast<uint64_t>(set.size()));
    for (const video::Interval& interval : set.intervals()) {
      io::AppendValue(&buffer, interval.begin);
      io::AppendValue(&buffer, interval.end);
    }
  }
  io::AppendChecksumFooter(&buffer);
  return io::WriteFileAtomic(env, path, buffer);
}

Result<std::map<std::string, video::IntervalSet>> SequenceStore::Load(
    const std::string& path) {
  SVQ_ASSIGN_OR_RETURN(const std::string file, io::ReadFileToString(path));
  std::string_view payload(file);
  io::ByteReader magic_reader(payload);
  uint32_t magic = 0;
  if (!magic_reader.Read(&magic)) {
    return Status::Corruption("truncated " + path);
  }
  if (magic == kMagicV2) {
    // Checksum first: after this point every byte of the payload is known
    // good, and parse failures can only come from writer bugs, not damage.
    SVQ_ASSIGN_OR_RETURN(payload, io::StripChecksumFooter(file, path));
  } else if (magic != kMagicV1) {
    return Status::Corruption("bad magic in " + path);
  }
  io::ByteReader in(payload);
  in.Read(&magic);  // skip the already-validated magic
  uint64_t label_count = 0;
  if (!in.Read(&label_count)) return Status::Corruption("truncated " + path);
  std::map<std::string, video::IntervalSet> sequences;
  for (uint64_t i = 0; i < label_count; ++i) {
    std::string label;
    if (!in.ReadLengthPrefixedString(&label, kMaxLabelLength)) {
      return Status::Corruption("bad label in " + path);
    }
    uint64_t interval_count = 0;
    if (!in.Read(&interval_count)) {
      return Status::Corruption("truncated " + path);
    }
    // An interval is two int64s: bound the untrusted count against the
    // bytes that actually remain before reserving a single element — a
    // corrupt 2^60 must fail cleanly, not OOM (hostile-file hardening).
    if (interval_count > in.remaining() / (2 * sizeof(int64_t))) {
      return Status::Corruption("interval count exceeds file size in " +
                                path);
    }
    std::vector<video::Interval> intervals;
    intervals.reserve(static_cast<size_t>(interval_count));
    for (uint64_t j = 0; j < interval_count; ++j) {
      video::Interval interval;
      if (!in.Read(&interval.begin) || !in.Read(&interval.end)) {
        return Status::Corruption("truncated interval in " + path);
      }
      if (interval.end < interval.begin) {
        return Status::Corruption("inverted interval in " + path);
      }
      intervals.push_back(interval);
    }
    sequences.emplace(std::move(label),
                      video::IntervalSet(std::move(intervals)));
  }
  return sequences;
}

}  // namespace svq::storage
