#ifndef SVQ_CACHE_KCRIT_TABLE_H_
#define SVQ_CACHE_KCRIT_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "svq/cache/cache_stats.h"

namespace svq::cache {

/// Snapshot-shared critical-value table. Critical values are pure functions
/// of (scan-statistic parameters, quantized background probability) — they
/// can never go stale — so sharing one table across every execution on a
/// snapshot turns the per-execution k_crit recomputation into a lookup.
/// The per-engine caches in core/kcrit_cache.h keep their private
/// unordered_map as a lock-free L1 and consult this table as the shared L2
/// on local misses.
///
/// Keys are full fingerprints of the parameter tuple plus the quantized
/// probability (see CriticalValueCache), so one table serves the iid frame
/// cache, the iid action cache and the Markov action cache side by side.
///
/// GetOrCompute holds the key's shard mutex across the computation, which
/// gives exactly-once semantics per key — the property the k_crit
/// regression test pins down via `CacheStats::kcrit_computes`. The
/// computation is bounded (a scan-statistic evaluation), and concurrent
/// executions with different probabilities land on different shards with
/// high probability, so the serialization is confined to genuinely
/// duplicate work.
class KcritTable {
 public:
  explicit KcritTable(CacheStats* stats = nullptr) : stats_(stats) {}

  KcritTable(const KcritTable&) = delete;
  KcritTable& operator=(const KcritTable&) = delete;

  template <typename Fn>
  int GetOrCompute(uint64_t key, Fn&& compute) {
    Shard& shard = shards_[(key ^ (key >> 32)) % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      if (stats_ != nullptr) {
        stats_->kcrit_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return it->second;
    }
    if (stats_ != nullptr) {
      stats_->kcrit_computes.fetch_add(1, std::memory_order_relaxed);
    }
    const int value = compute();
    shard.map.emplace(key, value);
    return value;
  }

  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, int> map;
  };

  CacheStats* const stats_;
  /// Unbounded by bytes: the probability grids are quantized, so the key
  /// population is small (hundreds of entries) and dies with the snapshot.
  std::array<Shard, 16> shards_;
};

}  // namespace svq::cache

#endif  // SVQ_CACHE_KCRIT_TABLE_H_
