#ifndef SVQ_CACHE_FINGERPRINT_H_
#define SVQ_CACHE_FINGERPRINT_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace svq::cache {

/// Incremental 64-bit FNV-1a hasher for cache keys. Every cache tier keys
/// its entries on a Fingerprint value: stable across runs (no ASLR-derived
/// pointers, no std::hash), cheap to extend field by field, and
/// length-prefixed so that concatenation ambiguities ("ab"+"c" vs "a"+"bc")
/// cannot alias.
///
/// Keys are 64-bit, so an accidental collision between two live entries is
/// ~2^-64 per pair — the same trust model as content-addressed caches
/// everywhere. Entries never outlive their snapshot, which keeps the live
/// key population small.
class Fingerprint {
 public:
  Fingerprint() = default;
  /// Resumes hashing from a previously computed fingerprint value, so a
  /// shared key prefix (e.g. the parameter tuple of a kcrit cache) can be
  /// mixed once and extended per lookup.
  explicit Fingerprint(uint64_t seed) { MixRaw(seed); }

  Fingerprint& Mix(std::string_view s) {
    MixRaw(static_cast<uint64_t>(s.size()));
    for (const char c : s) MixByte(static_cast<unsigned char>(c));
    return *this;
  }

  // Without this overload a string literal would take the *standard*
  // pointer-to-bool conversion over the user-defined one to string_view,
  // silently mixing every literal as `1`.
  Fingerprint& Mix(const char* s) { return Mix(std::string_view(s)); }

  Fingerprint& Mix(uint64_t v) {
    MixRaw(v);
    return *this;
  }

  Fingerprint& Mix(int64_t v) { return Mix(static_cast<uint64_t>(v)); }
  Fingerprint& Mix(int v) { return Mix(static_cast<uint64_t>(v)); }
  Fingerprint& Mix(bool v) { return Mix(static_cast<uint64_t>(v ? 1 : 0)); }

  /// Bit-exact double mixing (distinguishes -0.0/0.0 and every NaN payload;
  /// cache keys must not equate values the computation could distinguish).
  Fingerprint& Mix(double d) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return Mix(bits);
  }

  uint64_t value() const { return h_; }

 private:
  void MixByte(unsigned char b) {
    h_ ^= static_cast<uint64_t>(b);
    h_ *= 1099511628211ULL;  // FNV-1a 64-bit prime
  }

  void MixRaw(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      MixByte(static_cast<unsigned char>(v >> (i * 8)));
    }
  }

  uint64_t h_ = 14695981039346656037ULL;  // FNV-1a 64-bit offset basis
};

}  // namespace svq::cache

#endif  // SVQ_CACHE_FINGERPRINT_H_
