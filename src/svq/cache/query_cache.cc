#include "svq/cache/query_cache.h"

#include <utility>

namespace svq::cache {

bool SingleFlight::Begin(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.insert(key).second;
}

void SingleFlight::End(uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.erase(key);
  }
  cv_.notify_all();
}

void SingleFlight::WaitBriefly(uint64_t key, std::chrono::milliseconds max_wait) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, max_wait,
               [this, key] { return active_.count(key) == 0; });
}

SnapshotCache::SnapshotCache(const CacheOptions& options,
                             std::shared_ptr<CacheStats> stats)
    : stats_(std::move(stats)),
      candidates_(options.candidate_bytes, options.shards,
                  stats_ ? &stats_->candidate_hits : nullptr,
                  stats_ ? &stats_->candidate_misses : nullptr,
                  stats_ ? &stats_->candidate_evictions : nullptr,
                  stats_ ? &stats_->bytes : nullptr),
      results_(options.result_bytes, options.shards,
               stats_ ? &stats_->result_hits : nullptr,
               stats_ ? &stats_->result_misses : nullptr,
               stats_ ? &stats_->result_evictions : nullptr,
               stats_ ? &stats_->bytes : nullptr),
      plans_(options.plan_bytes, options.shards,
             stats_ ? &stats_->plan_hits : nullptr,
             stats_ ? &stats_->plan_misses : nullptr,
             stats_ ? &stats_->plan_evictions : nullptr,
             stats_ ? &stats_->bytes : nullptr),
      kcrit_(std::make_shared<KcritTable>(stats_.get())) {}

std::optional<std::shared_ptr<const video::IntervalSet>>
SnapshotCache::LookupCandidates(uint64_t key) {
  return candidates_.Lookup(key);
}

void SnapshotCache::InsertCandidates(
    uint64_t key, std::shared_ptr<const video::IntervalSet> value) {
  const size_t bytes =
      sizeof(video::IntervalSet) +
      (value ? value->intervals().size() * sizeof(video::Interval) : 0);
  candidates_.Insert(key, std::move(value), bytes);
}

std::optional<std::shared_ptr<const CachedTopK>> SnapshotCache::LookupResult(
    uint64_t key) {
  return results_.Lookup(key);
}

void SnapshotCache::InsertResult(uint64_t key,
                                 std::shared_ptr<const CachedTopK> value) {
  const size_t bytes = value ? value->ByteSize() : sizeof(CachedTopK);
  results_.Insert(key, std::move(value), bytes);
}

std::optional<std::shared_ptr<const CachedPlan>> SnapshotCache::LookupPlan(
    uint64_t key) {
  return plans_.Lookup(key);
}

void SnapshotCache::InsertPlan(uint64_t key,
                               std::shared_ptr<const CachedPlan> value) {
  const size_t bytes = value ? value->ByteSize() : sizeof(CachedPlan);
  plans_.Insert(key, std::move(value), bytes);
}

}  // namespace svq::cache
