#ifndef SVQ_CACHE_CACHE_OPTIONS_H_
#define SVQ_CACHE_CACHE_OPTIONS_H_

#include <cstddef>

namespace svq::cache {

/// Engine-level cache sizing (docs/caching.md). Passed to the
/// VideoQueryEngine constructor; every snapshot the engine publishes gets a
/// fresh SnapshotCache built from these knobs. Disabled by default so that
/// single-shot tools, tests and benchmarks keep their historical cold-path
/// behavior byte for byte; serving deployments (svqd) enable it.
struct CacheOptions {
  /// Master switch: when false, snapshots carry no cache at all and every
  /// per-statement policy toggle is inert.
  bool enabled = false;
  /// LRU byte budget of the candidate-sequence tier (interval products,
  /// keyed per video and canonicalized predicate prefix).
  size_t candidate_bytes = size_t{64} << 20;
  /// LRU byte budget of the top-K result tier (keyed on the statement
  /// fingerprint; a cached K answers any smaller K).
  size_t result_bytes = size_t{32} << 20;
  /// LRU byte budget of the physical-plan tier (keyed on the statement
  /// fingerprint; plans are tiny, so this is generous).
  size_t plan_bytes = size_t{4} << 20;
  /// Lock shards per LRU tier; bounds writer contention on the hot lookup
  /// path. Must be >= 1.
  int shards = 8;

  /// Convenience: an enabled configuration with `total_mb` split 2:1
  /// between the candidate and result tiers.
  static CacheOptions Enabled(size_t total_mb = 96) {
    CacheOptions options;
    options.enabled = true;
    options.candidate_bytes = (total_mb << 20) * 2 / 3;
    options.result_bytes = (total_mb << 20) / 3;
    return options;
  }
};

/// Per-statement cache policy, threaded through StatementOptions /
/// OfflineOptions. Both toggles default on; they only take effect when the
/// pinned snapshot actually carries a cache (CacheOptions::enabled). The
/// oracle tests flip these off to re-run a statement uncached against the
/// same snapshot and compare bit-identical results.
struct CachePolicy {
  bool use_candidate_cache = true;
  bool use_result_cache = true;
  bool use_plan_cache = true;
};

}  // namespace svq::cache

#endif  // SVQ_CACHE_CACHE_OPTIONS_H_
