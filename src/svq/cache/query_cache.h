#ifndef SVQ_CACHE_QUERY_CACHE_H_
#define SVQ_CACHE_QUERY_CACHE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "svq/cache/cache_options.h"
#include "svq/cache/cache_stats.h"
#include "svq/cache/kcrit_table.h"
#include "svq/cache/lru_cache.h"
#include "svq/video/interval_set.h"

namespace svq::cache {

/// A memoized ranked top-K answer. Stored in the cache layer's own value
/// type (intervals + certified bounds) so the cache library stays below
/// svq_core in the dependency stack; the engine converts to/from its
/// TopKResult at the boundary.
struct CachedTopK {
  struct Entry {
    video::Interval clips;
    double lower_bound = 0.0;
    double upper_bound = 0.0;
  };

  /// At most `computed_k` sequences, highest score first.
  std::vector<Entry> entries;
  /// The K the producing run was asked for.
  int computed_k = 0;
  /// Whether the producing run resolved exact scores
  /// (OfflineOptions::compute_exact_scores). Only exact entries may serve a
  /// smaller K: their ranking is by final exact score, so the K'-prefix of
  /// a K-run is the true top-K' for any K' <= K.
  bool exact = true;

  /// Fewer candidates existed than the run asked for: the entry ranks the
  /// entire candidate population and can serve any K.
  bool exhaustive() const {
    return static_cast<int>(entries.size()) < computed_k;
  }

  /// Whether this entry can answer a request for `k` sequences with results
  /// bit-identical to a fresh run at that k.
  bool Serves(int k) const {
    if (computed_k == k) return true;
    if (!exact) return false;  // non-exact bounds depend on the exact K
    return computed_k >= k || exhaustive();
  }

  size_t ByteSize() const {
    return sizeof(CachedTopK) + entries.size() * sizeof(Entry);
  }
};

/// Type-erased base for cached physical plans. The plan IR lives in
/// svq_plan, *above* this library in the dependency stack, so the cache
/// stores plans behind this interface and the planner downcasts on lookup
/// (it only ever retrieves entries it inserted itself, keyed on its own
/// fingerprints).
class CachedPlan {
 public:
  virtual ~CachedPlan() = default;
  /// Approximate heap footprint, charged against CacheOptions::plan_bytes.
  virtual size_t ByteSize() const = 0;
};

/// Deduplicates concurrent identical computations: the first caller to
/// Begin(key) becomes the leader and computes; followers wait briefly, then
/// re-check the cache (the leader inserts before End). A leader that fails
/// simply Ends without inserting, and the next waiter promotes itself — no
/// error is ever served from the flight table.
///
/// Deadline handling stays with the caller: waiters use short waits and
/// poll their ExecutionContext between them, so the cache library needs no
/// context dependency.
class SingleFlight {
 public:
  /// True when this caller became the leader for `key` and must call End.
  bool Begin(uint64_t key);

  /// Releases leadership of `key` and wakes every waiter.
  void End(uint64_t key);

  /// Blocks until `key` has no active leader, or `max_wait` elapses.
  void WaitBriefly(uint64_t key,
                   std::chrono::milliseconds max_wait =
                       std::chrono::milliseconds(1));

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_set<uint64_t> active_;
};

/// RAII leadership release for SingleFlight: arms after a successful
/// Begin, Ends on scope exit (success and error paths alike).
class SingleFlightLease {
 public:
  SingleFlightLease() = default;
  SingleFlightLease(SingleFlight* flights, uint64_t key)
      : flights_(flights), key_(key) {}
  ~SingleFlightLease() {
    if (flights_ != nullptr) flights_->End(key_);
  }

  SingleFlightLease(SingleFlightLease&& other) noexcept
      : flights_(other.flights_), key_(other.key_) {
    other.flights_ = nullptr;
  }
  SingleFlightLease& operator=(SingleFlightLease&& other) noexcept {
    if (this != &other) {
      if (flights_ != nullptr) flights_->End(key_);
      flights_ = other.flights_;
      key_ = other.key_;
      other.flights_ = nullptr;
    }
    return *this;
  }
  SingleFlightLease(const SingleFlightLease&) = delete;
  SingleFlightLease& operator=(const SingleFlightLease&) = delete;

 private:
  SingleFlight* flights_ = nullptr;
  uint64_t key_ = 0;
};

/// The per-snapshot query cache (docs/caching.md): three tiers keyed on
/// fingerprints whose implicit first component is the snapshot itself — a
/// fresh SnapshotCache is attached to every published CatalogSnapshot, so
/// invalidation is structural (old generations die with the snapshot
/// refcount) and a pinned snapshot can never observe entries from a newer
/// catalog.
///
///  - candidates: interval products per (video, canonicalized predicate
///    prefix), with prefix sharing — {a,o1,o2} extends a cached {a,o1}.
///  - results: whole ranked top-K answers per statement fingerprint, with
///    K-prefix reuse and single-flight deduplication.
///  - kcrit: the shared critical-value table (see KcritTable).
///
/// All tiers are safe for concurrent use; `stats` (shared with the owning
/// engine) survives snapshot churn, so hit/miss counters are cumulative
/// while the bytes gauge tracks only live entries.
class SnapshotCache {
 public:
  SnapshotCache(const CacheOptions& options,
                std::shared_ptr<CacheStats> stats);

  SnapshotCache(const SnapshotCache&) = delete;
  SnapshotCache& operator=(const SnapshotCache&) = delete;

  // Tier 1: candidate sequences.
  std::optional<std::shared_ptr<const video::IntervalSet>> LookupCandidates(
      uint64_t key);
  void InsertCandidates(uint64_t key,
                        std::shared_ptr<const video::IntervalSet> value);

  // Tier 2: top-K results.
  std::optional<std::shared_ptr<const CachedTopK>> LookupResult(uint64_t key);
  void InsertResult(uint64_t key, std::shared_ptr<const CachedTopK> value);
  SingleFlight& result_flights() { return result_flights_; }

  // Tier 3: shared critical values.
  const std::shared_ptr<KcritTable>& kcrit_table() const { return kcrit_; }

  // Tier 4: physical plans per statement fingerprint. Like every tier the
  // keys are implicitly snapshot-scoped, so a cached plan's embedded cost
  // estimates always reflect the statistics of the snapshot it serves.
  std::optional<std::shared_ptr<const CachedPlan>> LookupPlan(uint64_t key);
  void InsertPlan(uint64_t key, std::shared_ptr<const CachedPlan> value);

  const std::shared_ptr<CacheStats>& stats() const { return stats_; }

  size_t candidate_entries() const { return candidates_.size(); }
  size_t result_entries() const { return results_.size(); }
  size_t plan_entries() const { return plans_.size(); }

 private:
  std::shared_ptr<CacheStats> stats_;
  ShardedLruCache<std::shared_ptr<const video::IntervalSet>> candidates_;
  ShardedLruCache<std::shared_ptr<const CachedTopK>> results_;
  ShardedLruCache<std::shared_ptr<const CachedPlan>> plans_;
  SingleFlight result_flights_;
  std::shared_ptr<KcritTable> kcrit_;
};

}  // namespace svq::cache

#endif  // SVQ_CACHE_QUERY_CACHE_H_
