#ifndef SVQ_CACHE_CACHE_STATS_H_
#define SVQ_CACHE_CACHE_STATS_H_

#include <atomic>
#include <cstdint>

namespace svq::cache {

/// Engine-lifetime cache counters, shared by every snapshot generation's
/// SnapshotCache. Hits/misses/evictions are cumulative across generations;
/// `bytes` tracks the live footprint (each LRU tier adds on insert,
/// subtracts on evict, and releases its remainder when its snapshot's last
/// pin drops). All fields are relaxed atomics: recording from the query hot
/// path is a single add, never a lock — the same discipline as
/// observability::Counter.
struct CacheStats {
  std::atomic<int64_t> candidate_hits{0};
  std::atomic<int64_t> candidate_misses{0};
  std::atomic<int64_t> candidate_evictions{0};
  std::atomic<int64_t> result_hits{0};
  std::atomic<int64_t> result_misses{0};
  std::atomic<int64_t> result_evictions{0};
  std::atomic<int64_t> plan_hits{0};
  std::atomic<int64_t> plan_misses{0};
  std::atomic<int64_t> plan_evictions{0};
  /// Identical in-flight statements that waited on a single-flight leader
  /// instead of recomputing.
  std::atomic<int64_t> single_flight_waits{0};
  /// Shared k_crit table: lookups answered without running the
  /// scan-statistic computation, and actual computations.
  std::atomic<int64_t> kcrit_hits{0};
  std::atomic<int64_t> kcrit_computes{0};
  /// Live bytes across all current snapshot caches.
  std::atomic<int64_t> bytes{0};

  /// Plain-value copy for delta bridging into a MetricsRegistry.
  struct Snapshot {
    int64_t candidate_hits = 0;
    int64_t candidate_misses = 0;
    int64_t candidate_evictions = 0;
    int64_t result_hits = 0;
    int64_t result_misses = 0;
    int64_t result_evictions = 0;
    int64_t plan_hits = 0;
    int64_t plan_misses = 0;
    int64_t plan_evictions = 0;
    int64_t single_flight_waits = 0;
    int64_t kcrit_hits = 0;
    int64_t kcrit_computes = 0;
    int64_t bytes = 0;

    int64_t hits() const {
      return candidate_hits + result_hits + plan_hits + kcrit_hits;
    }
    int64_t misses() const {
      return candidate_misses + result_misses + plan_misses + kcrit_computes;
    }
    int64_t evictions() const {
      return candidate_evictions + result_evictions + plan_evictions;
    }
  };

  Snapshot Read() const {
    Snapshot s;
    s.candidate_hits = candidate_hits.load(std::memory_order_relaxed);
    s.candidate_misses = candidate_misses.load(std::memory_order_relaxed);
    s.candidate_evictions =
        candidate_evictions.load(std::memory_order_relaxed);
    s.result_hits = result_hits.load(std::memory_order_relaxed);
    s.result_misses = result_misses.load(std::memory_order_relaxed);
    s.result_evictions = result_evictions.load(std::memory_order_relaxed);
    s.plan_hits = plan_hits.load(std::memory_order_relaxed);
    s.plan_misses = plan_misses.load(std::memory_order_relaxed);
    s.plan_evictions = plan_evictions.load(std::memory_order_relaxed);
    s.single_flight_waits =
        single_flight_waits.load(std::memory_order_relaxed);
    s.kcrit_hits = kcrit_hits.load(std::memory_order_relaxed);
    s.kcrit_computes = kcrit_computes.load(std::memory_order_relaxed);
    s.bytes = bytes.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace svq::cache

#endif  // SVQ_CACHE_CACHE_STATS_H_
