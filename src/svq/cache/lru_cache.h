#ifndef SVQ_CACHE_LRU_CACHE_H_
#define SVQ_CACHE_LRU_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace svq::cache {

/// Byte-bounded, sharded LRU map from 64-bit fingerprints to cheap-to-copy
/// values (the tiers store shared_ptrs to immutable payloads). The key
/// picks a shard; each shard is an intrusive LRU list + index behind its
/// own mutex, so concurrent queries on different keys contend 1/shards of
/// the time and every critical section is a handful of pointer moves — no
/// allocation, no payload copies, no global lock.
///
/// Eviction is per shard against `max_bytes / shards`: a shard that fills
/// evicts its own least-recently-used entries and cannot be displaced by
/// traffic hashing elsewhere. Optional counters (hits/misses/evictions and
/// a live-bytes gauge shared across caches) are plain relaxed atomics.
template <typename V>
class ShardedLruCache {
 public:
  ShardedLruCache(size_t max_bytes, int num_shards,
                  std::atomic<int64_t>* hits = nullptr,
                  std::atomic<int64_t>* misses = nullptr,
                  std::atomic<int64_t>* evictions = nullptr,
                  std::atomic<int64_t>* live_bytes = nullptr)
      : shard_capacity_(max_bytes /
                        static_cast<size_t>(num_shards < 1 ? 1 : num_shards)),
        hits_(hits),
        misses_(misses),
        evictions_(evictions),
        live_bytes_(live_bytes),
        shards_(static_cast<size_t>(num_shards < 1 ? 1 : num_shards)) {}

  ~ShardedLruCache() {
    // Release this cache's live footprint from the shared gauge: the cache
    // dies with its snapshot, and the gauge must only count reachable
    // entries.
    if (live_bytes_ == nullptr) return;
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += static_cast<int64_t>(shard.bytes);
    }
    if (total != 0) {
      live_bytes_->fetch_sub(total, std::memory_order_relaxed);
    }
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Copy of the value under `key` (refreshes recency); nullopt on miss.
  std::optional<V> Lookup(uint64_t key) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      Bump(misses_);
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    Bump(hits_);
    return it->second->value;
  }

  /// Inserts or replaces `key`, charging `bytes` against the shard budget
  /// (payload bytes plus a bookkeeping constant), then evicts from the cold
  /// end until the shard fits. An entry larger than a whole shard is
  /// admitted alone — pathological, but dropping it silently would make the
  /// cache lie about what it was asked to hold.
  void Insert(uint64_t key, V value, size_t bytes) {
    const size_t charged = bytes + kEntryOverhead;
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      AdjustBytes(shard, -static_cast<int64_t>(it->second->bytes));
      it->second->value = std::move(value);
      it->second->bytes = charged;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, std::move(value), charged});
      shard.index.emplace(key, shard.lru.begin());
    }
    AdjustBytes(shard, static_cast<int64_t>(charged));
    while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
      const Entry& cold = shard.lru.back();
      AdjustBytes(shard, -static_cast<int64_t>(cold.bytes));
      shard.index.erase(cold.key);
      shard.lru.pop_back();
      Bump(evictions_);
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.index.size();
    }
    return total;
  }

  size_t bytes() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.bytes;
    }
    return total;
  }

 private:
  /// Approximate per-entry bookkeeping cost (list node + index slot).
  static constexpr size_t kEntryOverhead = 64;

  struct Entry {
    uint64_t key = 0;
    V value;
    size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<uint64_t, typename std::list<Entry>::iterator> index;
    size_t bytes = 0;
  };

  Shard& ShardOf(uint64_t key) {
    // The keys are already FNV-mixed; fold the high bits in so shard count
    // needn't be coprime with anything.
    return shards_[(key ^ (key >> 32)) % shards_.size()];
  }

  static void Bump(std::atomic<int64_t>* counter) {
    if (counter != nullptr) counter->fetch_add(1, std::memory_order_relaxed);
  }

  void AdjustBytes(Shard& shard, int64_t delta) {
    shard.bytes = static_cast<size_t>(
        static_cast<int64_t>(shard.bytes) + delta);
    if (live_bytes_ != nullptr) {
      live_bytes_->fetch_add(delta, std::memory_order_relaxed);
    }
  }

  const size_t shard_capacity_;
  std::atomic<int64_t>* const hits_;
  std::atomic<int64_t>* const misses_;
  std::atomic<int64_t>* const evictions_;
  std::atomic<int64_t>* const live_bytes_;
  std::vector<Shard> shards_;
};

}  // namespace svq::cache

#endif  // SVQ_CACHE_LRU_CACHE_H_
