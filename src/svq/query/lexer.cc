#include "svq/query/lexer.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace svq::query {

namespace {

constexpr std::array<const char*, 14> kKeywords = {
    "SELECT", "MERGE", "AS",    "FROM",  "PROCESS", "PRODUCE", "USING",
    "WHERE",  "AND",   "ORDER", "BY",    "LIMIT",   "RANK",    "ACTION",
};

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kKeyword:
      return "keyword";
    case TokenType::kString:
      return "string";
    case TokenType::kNumber:
      return "number";
    case TokenType::kLeftParen:
      return "'('";
    case TokenType::kRightParen:
      return "')'";
    case TokenType::kComma:
      return "','";
    case TokenType::kEquals:
      return "'='";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kEnd:
      return "end of input";
  }
  return "?";
}

bool IsKeyword(const std::string& upper) {
  return std::find_if(kKeywords.begin(), kKeywords.end(),
                      [&](const char* kw) { return upper == kw; }) !=
         kKeywords.end();
}

Result<std::vector<Token>> Lex(std::string_view statement) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = statement.size();
  while (i < n) {
    const char c = statement[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (c == '(') {
      tokens.push_back({TokenType::kLeftParen, "(", start});
      ++i;
    } else if (c == ')') {
      tokens.push_back({TokenType::kRightParen, ")", start});
      ++i;
    } else if (c == ',') {
      tokens.push_back({TokenType::kComma, ",", start});
      ++i;
    } else if (c == '=') {
      tokens.push_back({TokenType::kEquals, "=", start});
      ++i;
    } else if (c == '.') {
      tokens.push_back({TokenType::kDot, ".", start});
      ++i;
    } else if (c == '*') {
      tokens.push_back({TokenType::kStar, "*", start});
      ++i;
    } else if (c == '\'' || c == '"') {
      const char quote = c;
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (statement[i] == quote) {
          closed = true;
          ++i;
          break;
        }
        value.push_back(statement[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument(
            "unterminated string literal at position " +
            std::to_string(start));
      }
      tokens.push_back({TokenType::kString, std::move(value), start});
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string value;
      while (i < n && std::isdigit(static_cast<unsigned char>(statement[i]))) {
        value.push_back(statement[i]);
        ++i;
      }
      tokens.push_back({TokenType::kNumber, std::move(value), start});
    } else if (IsIdentStart(c)) {
      std::string value;
      while (i < n && IsIdentChar(statement[i])) {
        value.push_back(statement[i]);
        ++i;
      }
      const std::string upper = ToUpper(value);
      if (IsKeyword(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenType::kIdentifier, std::move(value), start});
      }
    } else {
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' at position " +
                                     std::to_string(start));
    }
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace svq::query
