#ifndef SVQ_QUERY_TOKEN_H_
#define SVQ_QUERY_TOKEN_H_

#include <string>

namespace svq::query {

/// Token categories of the SVQ-ACT query dialect.
enum class TokenType {
  kIdentifier,   ///< bare word: inputVideo, obj, ObjectDetector, ...
  kKeyword,      ///< SELECT FROM WHERE ... (case-insensitive; text upper)
  kString,       ///< 'jumping' or "jumping" (text holds the unquoted value)
  kNumber,       ///< integer literal
  kLeftParen,
  kRightParen,
  kComma,
  kEquals,
  kDot,
  kStar,         ///< '*': the whole-repository target in PROCESS *
  kEnd,          ///< end of input sentinel
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  /// Byte offset into the statement (for error messages).
  size_t position = 0;
};

const char* TokenTypeName(TokenType type);

/// True when `upper` is one of the dialect's reserved words.
bool IsKeyword(const std::string& upper);

}  // namespace svq::query

#endif  // SVQ_QUERY_TOKEN_H_
