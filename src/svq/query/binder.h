#ifndef SVQ_QUERY_BINDER_H_
#define SVQ_QUERY_BINDER_H_

#include <string>

#include "svq/common/result.h"
#include "svq/core/query.h"
#include "svq/query/ast.h"

namespace svq::query {

/// A statement resolved against the engine's semantics: the conjunctive
/// action/object query, the source video name, and the execution shape
/// (plain streaming vs ranked top-K).
struct BoundQuery {
  core::Query query;
  std::string video;
  /// True when the statement ranks results (RANK select item or ORDER BY).
  bool ranked = false;
  /// LIMIT K; 0 means unlimited (streaming mode).
  int64_t k = 0;
  /// Model names from the USING clauses (empty = engine defaults).
  std::string detector_model;
  std::string recognizer_model;
};

/// Resolves a parsed statement. Errors: InvalidArgument for semantic
/// problems (no action predicate, two action predicates without the
/// multi-action extension, predicate on an undeclared alias, ranked query
/// without LIMIT); Unimplemented for dialect features the engine does not
/// execute yet.
Result<BoundQuery> Bind(const SelectStatement& statement);

/// Convenience: Parse + Bind.
Result<BoundQuery> ParseAndBind(std::string_view statement);

}  // namespace svq::query

#endif  // SVQ_QUERY_BINDER_H_
