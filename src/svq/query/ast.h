#ifndef SVQ_QUERY_AST_H_
#define SVQ_QUERY_AST_H_

#include <optional>
#include <string>
#include <vector>

namespace svq::query {

/// One item of the SELECT list: `MERGE(clipID) AS Sequence`,
/// `RANK(act, obj)`, or a bare column.
struct SelectItem {
  enum class Kind { kMerge, kRank, kColumn };
  Kind kind = Kind::kColumn;
  /// MERGE argument or column name.
  std::string column;
  /// RANK arguments.
  std::vector<std::string> rank_args;
  /// AS alias, if any.
  std::string alias;
};

/// One `alias [USING Model]` binding of the PROCESS ... PRODUCE clause.
struct ProduceItem {
  std::string alias;
  std::string model;  // empty when no USING
};

/// `FROM (PROCESS <video> PRODUCE item, item, ...)`.
struct ProcessClause {
  std::string video;
  std::vector<ProduceItem> items;
};

/// A WHERE conjunct. Three syntactic forms from the paper:
///   act = 'jumping'                  -> kEquals
///   obj.include('car', 'human')      -> kMethodCall (method include/inc)
///   det = Action('robot_dancing', 'car', 'human') -> kActionCall
struct Predicate {
  enum class Kind { kEquals, kMethodCall, kActionCall };
  Kind kind = Kind::kEquals;
  /// Left-hand alias (`act`, `obj`, `det`).
  std::string target;
  /// Method name for kMethodCall (`include` or `inc`).
  std::string method;
  /// String arguments: the action label for kEquals; the object labels for
  /// kMethodCall; action followed by objects for kActionCall.
  std::vector<std::string> args;
};

/// `ORDER BY RANK(args...)`.
struct OrderByClause {
  std::vector<std::string> rank_args;
};

/// A full parsed statement of the dialect.
struct SelectStatement {
  std::vector<SelectItem> select;
  ProcessClause process;
  std::vector<Predicate> predicates;
  std::optional<OrderByClause> order_by;
  std::optional<int64_t> limit;
};

}  // namespace svq::query

#endif  // SVQ_QUERY_AST_H_
