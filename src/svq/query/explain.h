#ifndef SVQ_QUERY_EXPLAIN_H_
#define SVQ_QUERY_EXPLAIN_H_

#include <string>
#include <string_view>

#include "svq/common/result.h"
#include "svq/core/engine.h"

namespace svq::query {

/// Renders a human-readable execution plan for a dialect statement without
/// executing it: the bound query, the source's registration/ingestion
/// state, the chosen pipeline (streaming SVAQD vs ranked RVAQ), and the
/// resolved model profiles. `engine` may be null — the plan then omits
/// repository state.
Result<std::string> ExplainStatement(const core::VideoQueryEngine* engine,
                                     std::string_view statement);

/// Strips a leading (case-insensitive) EXPLAIN keyword; returns the rest,
/// or nullopt when the input does not start with EXPLAIN. Lets shells
/// accept `EXPLAIN SELECT ...`.
std::optional<std::string_view> StripExplain(std::string_view statement);

}  // namespace svq::query

#endif  // SVQ_QUERY_EXPLAIN_H_
