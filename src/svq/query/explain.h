#ifndef SVQ_QUERY_EXPLAIN_H_
#define SVQ_QUERY_EXPLAIN_H_

#include <optional>
#include <string>
#include <string_view>

#include "svq/common/result.h"
#include "svq/core/engine.h"
#include "svq/query/executor.h"

namespace svq::query {

/// EXPLAIN behavior knobs.
struct ExplainOptions {
  /// EXPLAIN ANALYZE: execute the statement and annotate the plan with
  /// actual rows per operator, actual candidate sizes, and run timings
  /// next to the estimates.
  bool analyze = false;
  /// Planning/execution knobs (algorithm override, cache policy, cost
  /// model) — the same options the statement would execute with, so the
  /// rendered plan is the executed plan.
  StatementOptions statement;
};

/// Renders the execution plan for a dialect statement against a pinned
/// catalog snapshot — the same consistent view execution observes, so the
/// statistics, estimates, and algorithm choice shown are exactly those of
/// a statement executed on this snapshot. Shows the bound query, the
/// source's registration/ingestion state, the cost-based physical plan
/// (selectivity-ordered sweep with per-operator estimated rows, the chosen
/// algorithm and the per-algorithm cost estimates it beat), and the
/// resolved model profiles. `snapshot` may be null — the plan then omits
/// catalog state and estimates. With `options.analyze` the statement is
/// executed (deadline/cancellation via `context`) and actuals are rendered
/// beside the estimates.
Result<std::string> ExplainStatementOn(const core::SnapshotPtr& snapshot,
                                       std::string_view statement,
                                       const ExplainOptions& options = {},
                                       const ExecutionContext& context = {});

/// Strips a leading (case-insensitive) EXPLAIN keyword; returns the rest,
/// or nullopt when the input does not start with EXPLAIN. Lets shells
/// accept `EXPLAIN SELECT ...`.
std::optional<std::string_view> StripExplain(std::string_view statement);

/// Strips a leading (case-insensitive) ANALYZE keyword — for the
/// `EXPLAIN ANALYZE SELECT ...` form after StripExplain.
std::optional<std::string_view> StripAnalyze(std::string_view statement);

}  // namespace svq::query

#endif  // SVQ_QUERY_EXPLAIN_H_
