#ifndef SVQ_QUERY_EXECUTOR_H_
#define SVQ_QUERY_EXECUTOR_H_

#include <optional>
#include <string_view>

#include "svq/common/result.h"
#include "svq/core/engine.h"
#include "svq/query/binder.h"

namespace svq::query {

/// Outcome of executing one statement: streaming statements fill `online`,
/// ranked statements fill `topk`.
struct StatementResult {
  BoundQuery bound;
  std::optional<core::OnlineResult> online;
  std::optional<core::TopKResult> topk;
};

/// Parses, binds, and executes one dialect statement against the engine's
/// video repository. The statement runs on a catalog snapshot pinned after
/// binding, so concurrent ingests or suite swaps cannot affect it. `USING`
/// model names (MaskRCNN, YOLOv3, I3D, Ideal) select the matching synthetic
/// model profiles for this statement only — no shared engine state is
/// touched; other names fall back to the snapshot's suite. Ranked
/// statements require the video to be ingested. `context` carries the
/// statement's deadline / cancellation / accounting sinks.
Result<StatementResult> ExecuteStatement(core::VideoQueryEngine* engine,
                                         std::string_view statement,
                                         const ExecutionContext& context = {});

}  // namespace svq::query

#endif  // SVQ_QUERY_EXECUTOR_H_
