#ifndef SVQ_QUERY_EXECUTOR_H_
#define SVQ_QUERY_EXECUTOR_H_

#include <memory>
#include <optional>
#include <string_view>

#include "svq/common/result.h"
#include "svq/core/engine.h"
#include "svq/plan/planner.h"
#include "svq/query/binder.h"

namespace svq::query {

/// Outcome of executing one statement: streaming statements fill `online`,
/// ranked statements fill `topk`, and whole-repository broadcasts
/// (`PROCESS *`) fill `repo`. `plan` is the physical plan execution ran
/// under (set on success for per-video statements — EXPLAIN and callers
/// inspect the chosen algorithm and estimates from here; broadcasts bypass
/// the per-video planner and leave it null).
struct StatementResult {
  BoundQuery bound;
  std::shared_ptr<const plan::PhysicalPlan> plan;
  std::optional<core::OnlineResult> online;
  std::optional<core::TopKResult> topk;
  std::optional<core::RepositoryResult> repo;
};

/// Execution knobs a statement caller may set beyond the statement text.
/// The server layer threads its shared runtime configuration through here;
/// the defaults reproduce the historical single-threaded behavior.
struct StatementOptions {
  /// Options (cost model, runtime fan-out, skip toggle) for ranked
  /// statements; ignored by streaming statements.
  core::OfflineOptions offline;
  /// Mode for streaming statements; ignored by ranked statements.
  core::OnlineEngine::Mode online_mode = core::OnlineEngine::Mode::kSvaqd;
  /// Algorithm for ranked statements. The default lets the cost-based
  /// planner pick per statement from the snapshot's selectivity
  /// statistics; the other values are explicit overrides (docs/planner.md).
  plan::AlgorithmChoice algorithm = plan::AlgorithmChoice::kAuto;
};

/// Parses, binds, and executes one dialect statement against an already
/// pinned catalog snapshot — the serving-path entry point: a server pins
/// the snapshot at request entry, so everything the request does (binding,
/// USING suite resolution, execution) observes one consistent catalog view
/// regardless of concurrent ingests. `USING` model names (MaskRCNN, YOLOv3,
/// I3D, Ideal) select the matching synthetic model profiles for this
/// statement only — no shared state is touched; other names fall back to
/// the snapshot's suite. Ranked statements require the video to be
/// ingested. `context` carries the statement's deadline / cancellation /
/// accounting sinks.
/// Applies a bound statement's USING model names (MaskRCNN, YOLOv3, Ideal,
/// I3D) to a copy of `base`; unrecognized names keep the base profile.
/// Exposed for layers that build model instances themselves (the streaming
/// dispatcher resolves each subscription's suite against its feed's pinned
/// snapshot).
models::ModelSuite ResolveSuiteFor(const models::ModelSuite& base,
                                   const BoundQuery& bound);

Result<StatementResult> ExecuteStatementOn(
    const core::SnapshotPtr& snapshot, std::string_view statement,
    const ExecutionContext& context = {},
    const StatementOptions& options = {});

/// Convenience wrapper: pins the engine's current snapshot and delegates to
/// ExecuteStatementOn.
Result<StatementResult> ExecuteStatement(core::VideoQueryEngine* engine,
                                         std::string_view statement,
                                         const ExecutionContext& context = {},
                                         const StatementOptions& options = {});

}  // namespace svq::query

#endif  // SVQ_QUERY_EXECUTOR_H_
