#ifndef SVQ_QUERY_LEXER_H_
#define SVQ_QUERY_LEXER_H_

#include <string_view>
#include <vector>

#include "svq/common/result.h"
#include "svq/query/token.h"

namespace svq::query {

/// Tokenizes one statement of the SVQ-ACT query dialect. The returned
/// vector always ends with a kEnd sentinel. Errors: InvalidArgument with
/// the offending position (unterminated string, unexpected character).
Result<std::vector<Token>> Lex(std::string_view statement);

}  // namespace svq::query

#endif  // SVQ_QUERY_LEXER_H_
