#include "svq/query/executor.h"

#include <algorithm>

namespace svq::query {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Applies USING model names to a copy of the engine's suite.
models::ModelSuite ResolveSuite(const models::ModelSuite& base,
                                const BoundQuery& bound) {
  models::ModelSuite suite = base;
  const std::string detector = ToLower(bound.detector_model);
  if (detector == "maskrcnn" || detector == "mask_rcnn") {
    suite.object_profile = models::MaskRcnnProfile();
  } else if (detector == "yolov3" || detector == "yolo") {
    suite.object_profile = models::YoloV3Profile();
  } else if (detector == "ideal" || detector == "idealmodel") {
    suite.object_profile = models::IdealObjectProfile();
  }
  const std::string recognizer = ToLower(bound.recognizer_model);
  if (recognizer == "i3d" || recognizer == "actionrecognizer") {
    suite.action_profile = models::I3dProfile();
  } else if (recognizer == "ideal" || recognizer == "idealmodel") {
    suite.action_profile = models::IdealActionProfile();
  }
  return suite;
}

}  // namespace

Result<StatementResult> ExecuteStatement(core::VideoQueryEngine* engine,
                                         std::string_view statement) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be set");
  }
  StatementResult result;
  SVQ_ASSIGN_OR_RETURN(result.bound, ParseAndBind(statement));

  const models::ModelSuite saved = engine->suite();
  *engine->mutable_suite() = ResolveSuite(saved, result.bound);
  // Restore the engine's suite regardless of outcome.
  struct SuiteGuard {
    core::VideoQueryEngine* engine;
    models::ModelSuite saved;
    ~SuiteGuard() { *engine->mutable_suite() = saved; }
  } guard{engine, saved};

  if (result.bound.ranked) {
    SVQ_ASSIGN_OR_RETURN(
        core::TopKResult topk,
        engine->ExecuteTopK(result.bound.query, result.bound.video,
                            static_cast<int>(result.bound.k)));
    result.topk = std::move(topk);
    return result;
  }
  SVQ_ASSIGN_OR_RETURN(
      core::OnlineResult online,
      engine->ExecuteOnline(result.bound.query, result.bound.video));
  result.online = std::move(online);
  return result;
}

}  // namespace svq::query
