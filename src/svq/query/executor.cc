#include "svq/query/executor.h"

#include <algorithm>

#include "svq/observability/trace.h"
#include "svq/query/parser.h"

namespace svq::query {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

models::ModelSuite ResolveSuiteFor(const models::ModelSuite& base,
                                   const BoundQuery& bound) {
  models::ModelSuite suite = base;
  const std::string detector = ToLower(bound.detector_model);
  if (detector == "maskrcnn" || detector == "mask_rcnn") {
    suite.object_profile = models::MaskRcnnProfile();
  } else if (detector == "yolov3" || detector == "yolo") {
    suite.object_profile = models::YoloV3Profile();
  } else if (detector == "ideal" || detector == "idealmodel") {
    suite.object_profile = models::IdealObjectProfile();
  }
  const std::string recognizer = ToLower(bound.recognizer_model);
  if (recognizer == "i3d" || recognizer == "actionrecognizer") {
    suite.action_profile = models::I3dProfile();
  } else if (recognizer == "ideal" || recognizer == "idealmodel") {
    suite.action_profile = models::IdealActionProfile();
  }
  return suite;
}

Result<StatementResult> ExecuteStatementOn(const core::SnapshotPtr& snapshot,
                                           std::string_view statement,
                                           const ExecutionContext& context,
                                           const StatementOptions& options) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("snapshot must be set");
  }
  observability::QueryTrace* trace = context.trace();
  StatementResult result;
  SelectStatement parsed;
  {
    observability::TraceSpan span(trace, "parse");
    SVQ_ASSIGN_OR_RETURN(parsed, Parse(statement));
  }
  {
    observability::TraceSpan span(trace, "bind");
    SVQ_ASSIGN_OR_RETURN(result.bound, Bind(parsed));
  }

  if (result.bound.video == "*") {
    // Whole-repository broadcast (the binder guarantees ranked + LIMIT):
    // per-video RVAQ fan-out with the score-ordered merge of
    // svq/core/topk_merge.h. Bypasses the per-video cost-based planner —
    // every video gets the default sweep, same as ExecuteTopKAll.
    observability::TraceSpan span(trace, "execute_repository");
    SVQ_ASSIGN_OR_RETURN(
        core::RepositoryResult repo,
        core::ExecuteTopKAllOn(snapshot, result.bound.query,
                               static_cast<int>(result.bound.k),
                               options.offline, context));
    result.repo = std::move(repo);
    return result;
  }

  // The whole statement — suite resolution, planning and execution — sees
  // the one pinned catalog view, and USING overrides stay local to this
  // statement instead of mutating (and racing on) any shared suite.
  models::ModelSuite suite;
  {
    observability::TraceSpan span(trace, "plan");
    suite = ResolveSuiteFor(snapshot->suite, result.bound);
    SVQ_ASSIGN_OR_RETURN(
        result.plan,
        plan::PlanQuery(snapshot, result.bound.query, result.bound.video,
                        result.bound.ranked, result.bound.k,
                        options.algorithm, options.offline, context));
  }

  if (result.bound.ranked) {
    // Lower the physical plan into core terms: the chosen algorithm plus
    // the planner's sweep order (honored on the uncached candidate path;
    // the cached path keeps canonical-order prefix keys — docs/planner.md).
    core::OfflineOptions exec_options = options.offline;
    exec_options.sweep_order = result.plan->SweepOrder();
    SVQ_ASSIGN_OR_RETURN(
        core::TopKResult topk,
        core::ExecuteTopKOn(snapshot, result.bound.query, result.bound.video,
                            static_cast<int>(result.bound.k),
                            result.plan->algorithm, exec_options, context));
    plan::RecordEstimateActuals(*result.plan, topk.stats);
    result.topk = std::move(topk);
    return result;
  }
  SVQ_ASSIGN_OR_RETURN(
      core::OnlineResult online,
      core::ExecuteOnlineOn(snapshot, result.bound.query, result.bound.video,
                            options.online_mode, context, &suite));
  result.online = std::move(online);
  return result;
}

Result<StatementResult> ExecuteStatement(core::VideoQueryEngine* engine,
                                         std::string_view statement,
                                         const ExecutionContext& context,
                                         const StatementOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be set");
  }
  return ExecuteStatementOn(engine->Pin(), statement, context, options);
}

}  // namespace svq::query
