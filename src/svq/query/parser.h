#ifndef SVQ_QUERY_PARSER_H_
#define SVQ_QUERY_PARSER_H_

#include <string_view>

#include "svq/common/result.h"
#include "svq/query/ast.h"

namespace svq::query {

/// Parses one statement of the SVQ-ACT dialect (paper §1/§2):
///
///   SELECT MERGE(clipID) AS Sequence [, RANK(act, obj)]
///   FROM (PROCESS inputVideo PRODUCE clipID,
///         obj USING ObjectDetector, act USING ActionRecognizer)
///   WHERE act='jumping' AND obj.include('car', 'human')
///   [ORDER BY RANK(act, obj)] [LIMIT K]
///
/// and the §1 vision-model form `WHERE det = Action('robot_dancing',
/// 'car', 'human')`. Keywords are case-insensitive. Errors:
/// InvalidArgument with token position and expectation.
Result<SelectStatement> Parse(std::string_view statement);

}  // namespace svq::query

#endif  // SVQ_QUERY_PARSER_H_
