#include "svq/query/binder.h"

#include <algorithm>
#include <optional>
#include <set>

#include "svq/query/parser.h"

namespace svq::query {

namespace {

std::string ToLower(const std::string& s) {
  std::string lower = s;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower;
}

bool IsIncludeMethod(const std::string& method) {
  const std::string lower = ToLower(method);
  return lower == "include" || lower == "inc";
}

bool IsIncludeAnyMethod(const std::string& method) {
  const std::string lower = ToLower(method);
  return lower == "include_any" || lower == "inc_any" || lower == "any";
}

/// Maps a relationship method name to its operator; nullopt when the
/// method is not a relationship.
std::optional<core::RelOp> RelOpOf(const std::string& method) {
  const std::string lower = ToLower(method);
  if (lower == "left_of") return core::RelOp::kLeftOf;
  if (lower == "right_of") return core::RelOp::kRightOf;
  if (lower == "above") return core::RelOp::kAbove;
  if (lower == "below") return core::RelOp::kBelow;
  if (lower == "overlaps") return core::RelOp::kOverlaps;
  return std::nullopt;
}

}  // namespace

Result<BoundQuery> Bind(const SelectStatement& statement) {
  BoundQuery bound;
  bound.video = statement.process.video;
  if (bound.video.empty()) {
    return Status::InvalidArgument("PROCESS clause must name a video");
  }

  // Declared aliases and their model bindings.
  std::set<std::string> aliases;
  for (const ProduceItem& item : statement.process.items) {
    aliases.insert(item.alias);
    if (item.model.empty()) continue;
    // Alias conventions from the paper's statements: `obj` is produced by
    // an object detector/tracker, `act` by an action recognizer, `det` by a
    // combined vision model. The USING model name is surfaced so callers
    // can pick a model suite.
    if (item.alias == "act") {
      bound.recognizer_model = item.model;
    } else if (item.alias == "obj" || item.alias == "det") {
      bound.detector_model = item.model;
    }
  }

  for (const Predicate& pred : statement.predicates) {
    // Relationship predicates conventionally use the pseudo-alias `rel`,
    // which needs no PRODUCE entry (they derive from the object stream).
    const bool is_relationship =
        pred.kind == Predicate::Kind::kMethodCall &&
        RelOpOf(pred.method).has_value();
    if (!is_relationship && !aliases.empty() &&
        !aliases.contains(pred.target)) {
      return Status::InvalidArgument("predicate on undeclared alias '" +
                                     pred.target + "'");
    }
    switch (pred.kind) {
      case Predicate::Kind::kEquals:
        // The first action predicate is primary; further ones are
        // conjunctive extra actions (paper footnote 3).
        if (bound.query.action.empty()) {
          bound.query.action = pred.args.at(0);
        } else {
          bound.query.extra_actions.push_back(pred.args.at(0));
        }
        break;
      case Predicate::Kind::kMethodCall:
        if (const std::optional<core::RelOp> op = RelOpOf(pred.method)) {
          if (pred.args.size() != 2) {
            return Status::InvalidArgument(
                "relationship '" + pred.method +
                "' needs exactly two object labels");
          }
          bound.query.relationships.push_back(
              {*op, pred.args[0], pred.args[1]});
          break;
        }
        if (IsIncludeAnyMethod(pred.method)) {
          bound.query.object_disjunctions.push_back(pred.args);
          break;
        }
        if (!IsIncludeMethod(pred.method)) {
          return Status::Unimplemented(
              "object method '" + pred.method +
              "' (supported: include/inc, include_any, left_of, right_of, "
              "above, below, overlaps)");
        }
        for (const std::string& label : pred.args) {
          bound.query.objects.push_back(label);
        }
        break;
      case Predicate::Kind::kActionCall:
        if (pred.args.empty()) {
          return Status::InvalidArgument("Action(...) needs an action label");
        }
        if (bound.query.action.empty()) {
          bound.query.action = pred.args.front();
        } else {
          bound.query.extra_actions.push_back(pred.args.front());
        }
        for (size_t i = 1; i < pred.args.size(); ++i) {
          bound.query.objects.push_back(pred.args[i]);
        }
        break;
    }
  }
  if (bound.query.action.empty()) {
    return Status::InvalidArgument(
        "query must constrain an action (act='...' or Action(...))");
  }
  SVQ_RETURN_NOT_OK(bound.query.Validate());

  // Canonicalize conjunctive label order: `{car, human; jumping}` and
  // `{human, car; jumping}` are the same query, and sorting here makes them
  // produce identical Query values — one cache fingerprint, one candidate
  // sweep, one memoized result between them (docs/caching.md). Execution is
  // order independent (conjunctive intersection), so results are unchanged.
  // Disjunction groups keep their written order: any-of group order is
  // user-visible in diagnostics and groups are matched as units.
  std::sort(bound.query.objects.begin(), bound.query.objects.end());
  std::sort(bound.query.extra_actions.begin(),
            bound.query.extra_actions.end());

  const bool has_rank_item = std::any_of(
      statement.select.begin(), statement.select.end(),
      [](const SelectItem& i) { return i.kind == SelectItem::Kind::kRank; });
  bound.ranked = has_rank_item || statement.order_by.has_value();
  if (statement.limit.has_value()) {
    if (*statement.limit < 1) {
      return Status::InvalidArgument("LIMIT must be >= 1");
    }
    bound.k = *statement.limit;
  }
  if (bound.ranked && bound.k == 0) {
    return Status::InvalidArgument("ranked queries require LIMIT K");
  }
  // PROCESS * fans out over the whole repository, which only the ranked
  // top-K path supports (per-video results merge by score; an unranked
  // broadcast would have no defined result order).
  if (bound.video == "*" && !bound.ranked) {
    return Status::InvalidArgument(
        "PROCESS * statements must be ranked: add ORDER BY RANK(...) "
        "LIMIT K");
  }
  return bound;
}

Result<BoundQuery> ParseAndBind(std::string_view statement) {
  SVQ_ASSIGN_OR_RETURN(const SelectStatement stmt, Parse(statement));
  return Bind(stmt);
}

}  // namespace svq::query
