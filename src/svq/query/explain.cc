#include "svq/query/explain.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "svq/core/clip_indicator.h"
#include "svq/query/binder.h"

namespace svq::query {

std::optional<std::string_view> StripExplain(std::string_view statement) {
  size_t i = 0;
  while (i < statement.size() &&
         std::isspace(static_cast<unsigned char>(statement[i]))) {
    ++i;
  }
  constexpr std::string_view kKeyword = "EXPLAIN";
  if (statement.size() - i < kKeyword.size()) return std::nullopt;
  for (size_t j = 0; j < kKeyword.size(); ++j) {
    if (std::toupper(static_cast<unsigned char>(statement[i + j])) !=
        kKeyword[j]) {
      return std::nullopt;
    }
  }
  const size_t rest = i + kKeyword.size();
  if (rest < statement.size() &&
      !std::isspace(static_cast<unsigned char>(statement[rest]))) {
    return std::nullopt;  // e.g. an identifier starting with "explain"
  }
  return statement.substr(rest);
}

Result<std::string> ExplainStatement(const core::VideoQueryEngine* engine,
                                     std::string_view statement) {
  if (const auto inner = StripExplain(statement)) statement = *inner;
  SVQ_ASSIGN_OR_RETURN(const BoundQuery bound, ParseAndBind(statement));

  std::ostringstream out;
  out << "Statement: "
      << (bound.ranked
              ? "ranked top-" + std::to_string(bound.k) + " query (offline)"
              : "streaming query (online)")
      << "\n";
  out << "  Query: " << bound.query.ToString() << "\n";

  out << "  Source: " << bound.video;
  if (engine != nullptr) {
    if (!engine->HasVideo(bound.video)) {
      out << " (NOT REGISTERED)";
    } else if (engine->Ingested(bound.video) != nullptr) {
      out << " (registered, ingested)";
    } else {
      out << " (registered, not ingested"
          << (bound.ranked ? " — ranked execution will fail" : "") << ")";
    }
  }
  out << "\n";

  out << "  Predicates:\n";
  int step = 0;
  for (const core::FramePredicate& p :
       core::FramePredicatesOf(bound.query)) {
    out << "    " << ++step << ". frame predicate " << p.Name()
        << "  [per-frame events -> scan-statistic quota per clip]\n";
  }
  for (const std::string& action : bound.query.AllActions()) {
    out << "    " << ++step << ". action " << action
        << "  [per-shot events -> scan-statistic quota per clip]\n";
  }

  if (bound.ranked) {
    out << "  Pipeline: RVAQ (paper Alg. 4)\n";
    out << "    - P_q <- ";
    out << "P_a(" << bound.query.action << ")";
    for (const std::string& extra : bound.query.extra_actions) {
      out << " (x) P_a(" << extra << ")";
    }
    for (const std::string& object : bound.query.objects) {
      out << " (x) P_o(" << object << ")";
    }
    out << "   [interval sweep over materialized sequences]\n";
    out << "    - TBClip sorted/random access over the per-type clip score "
           "tables\n";
    out << "    - progressive upper/lower bounds, conclusive skipping, "
           "stop at Eq. 15\n";
  } else {
    out << "  Pipeline: SVAQD (paper Alg. 3)\n";
    out << "    - per-clip evaluation with short-circuiting (Alg. 2)\n";
    out << "    - kernel background estimates -> adaptive critical values "
           "(Eq. 5/6)\n";
    out << "    - consecutive positive clips merge into result sequences "
           "(Eq. 4)\n";
  }

  out << "  Models: detector="
      << (bound.detector_model.empty() ? "<engine default>"
                                       : bound.detector_model)
      << ", recognizer="
      << (bound.recognizer_model.empty() ? "<engine default>"
                                         : bound.recognizer_model)
      << "\n";
  return out.str();
}

}  // namespace svq::query
