#include "svq/query/explain.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "svq/core/clip_indicator.h"
#include "svq/query/binder.h"

namespace svq::query {

namespace {

std::optional<std::string_view> StripKeyword(std::string_view statement,
                                             std::string_view keyword) {
  size_t i = 0;
  while (i < statement.size() &&
         std::isspace(static_cast<unsigned char>(statement[i]))) {
    ++i;
  }
  if (statement.size() - i < keyword.size()) return std::nullopt;
  for (size_t j = 0; j < keyword.size(); ++j) {
    if (std::toupper(static_cast<unsigned char>(statement[i + j])) !=
        keyword[j]) {
      return std::nullopt;
    }
  }
  const size_t rest = i + keyword.size();
  if (rest < statement.size() &&
      !std::isspace(static_cast<unsigned char>(statement[rest]))) {
    return std::nullopt;  // e.g. an identifier starting with the keyword
  }
  return statement.substr(rest);
}

std::string FormatMs(double ms) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1) << ms;
  return out.str();
}

std::string FormatRows(double rows) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(rows < 10.0 ? 1 : 0) << rows;
  return out.str();
}

std::string OperatorName(const plan::PlanOperator& op) {
  return (op.step.is_action ? "P_a(" : "P_o(") + op.step.label + ")";
}

/// Per-operator *actual* rows for EXPLAIN ANALYZE: replays the plan's
/// sweep order over the snapshot's materialized posting lists. Pure
/// interval arithmetic — cheap relative to the executed query — and
/// exactly what the ordered candidate sweep computes, so "actual rows"
/// equals what execution saw after each operator.
std::vector<int64_t> ActualRows(const core::IngestedVideo& ingested,
                                const std::vector<plan::PlanOperator>& sweep) {
  std::vector<int64_t> rows;
  rows.reserve(sweep.size());
  video::IntervalSet running;
  bool first = true;
  bool dead = false;
  for (const plan::PlanOperator& op : sweep) {
    if (!dead) {
      const video::IntervalSet* p =
          op.step.is_action ? ingested.ActionSequences(op.step.label)
                            : ingested.ObjectSequences(op.step.label);
      if (p == nullptr) {
        running = video::IntervalSet();
        dead = true;
      } else if (first) {
        running = *p;
      } else {
        running = video::IntervalSet::Intersect(running, *p);
      }
      first = false;
      if (running.empty()) dead = true;
    }
    rows.push_back(running.TotalLength());
  }
  return rows;
}

void RenderPlan(std::ostringstream& out, const plan::PhysicalPlan& plan,
                const std::vector<int64_t>* actual_rows) {
  out << "  Plan: algorithm=" << plan::AlgorithmName(plan.algorithm)
      << (plan.auto_selected ? " (cost-based auto selection)"
                             : " (explicit override)")
      << "\n";
  if (!plan.costs.empty()) {
    out << "    costs:";
    for (const plan::AlgorithmCost& cost : plan.costs) {
      out << " " << plan::AlgorithmName(cost.algorithm) << "="
          << FormatMs(cost.virtual_ms);
    }
    out << " virtual ms\n";
  }
  out << "    sweep (most selective first):\n";
  for (size_t i = 0; i < plan.sweep.size(); ++i) {
    const plan::PlanOperator& op = plan.sweep[i];
    out << "      " << i + 1 << ". intersect " << OperatorName(op);
    if (op.stats_known) {
      out << "  density=" << std::fixed << std::setprecision(4)
          << op.selectivity;
      out << "  est rows=" << FormatRows(op.estimated_rows);
    } else {
      out << "  (no statistics)";
    }
    if (actual_rows != nullptr && i < actual_rows->size()) {
      out << "  actual rows=" << (*actual_rows)[i];
    }
    out << "\n";
  }
  if (plan.estimated_candidate_clips >= 0.0) {
    out << "    candidates: est "
        << FormatRows(plan.estimated_candidate_clips) << " clips in "
        << FormatRows(plan.estimated_candidate_sequences) << " sequences\n";
  }
}

}  // namespace

std::optional<std::string_view> StripExplain(std::string_view statement) {
  return StripKeyword(statement, "EXPLAIN");
}

std::optional<std::string_view> StripAnalyze(std::string_view statement) {
  return StripKeyword(statement, "ANALYZE");
}

Result<std::string> ExplainStatementOn(const core::SnapshotPtr& snapshot,
                                       std::string_view statement,
                                       const ExplainOptions& options,
                                       const ExecutionContext& context) {
  bool analyze = options.analyze;
  if (const auto inner = StripExplain(statement)) statement = *inner;
  if (const auto inner = StripAnalyze(statement)) {
    statement = *inner;
    analyze = true;
  }
  SVQ_ASSIGN_OR_RETURN(const BoundQuery bound, ParseAndBind(statement));
  if (bound.video == "*") {
    // The cost-based planner is per-video; a broadcast would need one plan
    // per ingested video. Routers forward EXPLAIN per shard instead.
    return Status::Unimplemented(
        "EXPLAIN over PROCESS * is not supported; explain a single video");
  }
  SVQ_ASSIGN_OR_RETURN(
      const std::shared_ptr<const plan::PhysicalPlan> plan,
      plan::PlanQuery(snapshot, bound.query, bound.video, bound.ranked,
                      bound.k, options.statement.algorithm,
                      options.statement.offline, context));

  std::ostringstream out;
  out << "Statement: "
      << (bound.ranked
              ? "ranked top-" + std::to_string(bound.k) + " query (offline)"
              : "streaming query (online)")
      << (analyze ? " [ANALYZE]" : "") << "\n";
  out << "  Query: " << bound.query.ToString() << "\n";

  out << "  Source: " << bound.video;
  const core::CatalogSnapshot::Entry* entry =
      snapshot != nullptr ? snapshot->Find(bound.video) : nullptr;
  if (snapshot != nullptr) {
    if (entry == nullptr) {
      out << " (NOT REGISTERED)";
    } else if (entry->ingested != nullptr) {
      out << " (registered, ingested; "
          << entry->ingested->num_clips << " clips)";
    } else {
      out << " (registered, not ingested"
          << (bound.ranked ? " — ranked execution will fail" : "") << ")";
    }
  }
  out << "\n";

  out << "  Predicates:\n";
  int step = 0;
  for (const core::FramePredicate& p :
       core::FramePredicatesOf(bound.query)) {
    out << "    " << ++step << ". frame predicate " << p.Name()
        << "  [per-frame events -> scan-statistic quota per clip]\n";
  }
  for (const std::string& action : bound.query.AllActions()) {
    out << "    " << ++step << ". action " << action
        << "  [per-shot events -> scan-statistic quota per clip]\n";
  }

  // ANALYZE executes first so the plan section can render actuals inline.
  std::optional<StatementResult> executed;
  std::vector<int64_t> actual_rows;
  if (analyze) {
    StatementOptions statement_options = options.statement;
    SVQ_ASSIGN_OR_RETURN(
        executed,
        ExecuteStatementOn(snapshot, statement, context, statement_options));
    if (bound.ranked && entry != nullptr && entry->ingested != nullptr) {
      actual_rows = ActualRows(*entry->ingested, plan->sweep);
    }
  }

  if (bound.ranked) {
    RenderPlan(out, *plan, actual_rows.empty() ? nullptr : &actual_rows);
    out << "  Pipeline: " << plan::AlgorithmName(plan->algorithm)
        << (plan->algorithm == core::OfflineAlgorithm::kRvaq
                ? " (paper Alg. 4)"
                : " (paper baseline)")
        << "\n";
    out << "    - P_q <- ";
    for (size_t i = 0; i < plan->sweep.size(); ++i) {
      if (i > 0) out << " (x) ";
      out << OperatorName(plan->sweep[i]);
    }
    out << "   [interval sweep over materialized sequences, planner "
           "order]\n";
    switch (plan->algorithm) {
      case core::OfflineAlgorithm::kRvaq:
      case core::OfflineAlgorithm::kRvaqNoSkip:
        out << "    - TBClip sorted/random access over the per-type clip "
               "score tables\n";
        out << "    - progressive upper/lower bounds, "
            << (plan->algorithm == core::OfflineAlgorithm::kRvaq
                    ? "conclusive skipping, "
                    : "no skipping (baseline), ")
            << "stop at Eq. 15\n";
        break;
      case core::OfflineAlgorithm::kFagin:
        out << "    - sorted cursors advance in lockstep; every surfaced "
               "clip resolved by random access (FA)\n";
        break;
      case core::OfflineAlgorithm::kPqTraverse:
        out << "    - sequential read of every candidate clip from every "
               "table\n";
        break;
    }
  } else {
    out << "  Pipeline: SVAQD (paper Alg. 3)\n";
    out << "    - per-clip evaluation with short-circuiting (Alg. 2)\n";
    out << "    - kernel background estimates -> adaptive critical values "
           "(Eq. 5/6)\n";
    out << "    - consecutive positive clips merge into result sequences "
           "(Eq. 4)\n";
  }

  if (executed.has_value()) {
    out << "  Analyze:\n";
    if (executed->topk.has_value()) {
      const core::OfflineRunStats& stats = executed->topk->stats;
      out << "    candidates: actual " << stats.candidate_clips
          << " clips in " << stats.candidate_sequences << " sequences";
      if (plan->estimated_candidate_clips >= 0.0) {
        out << " (est " << FormatRows(plan->estimated_candidate_clips)
            << " / " << FormatRows(plan->estimated_candidate_sequences)
            << ")";
      }
      out << "\n";
      out << "    result: " << executed->topk->sequences.size()
          << " sequences, " << FormatMs(stats.virtual_ms)
          << " virtual ms, " << FormatMs(stats.algorithm_ms)
          << " ms algorithm time\n";
    } else if (executed->online.has_value()) {
      out << "    result: "
          << executed->online->sequences.intervals().size()
          << " sequences, "
          << FormatMs(executed->online->stats.algorithm_ms)
          << " ms algorithm time\n";
    }
  }

  out << "  Models: detector="
      << (bound.detector_model.empty() ? "<engine default>"
                                       : bound.detector_model)
      << ", recognizer="
      << (bound.recognizer_model.empty() ? "<engine default>"
                                         : bound.recognizer_model)
      << "\n";
  return out.str();
}

}  // namespace svq::query
