#include "svq/query/parser.h"

#include <cstdlib>

#include "svq/query/lexer.h"

namespace svq::query {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseStatement() {
    SelectStatement stmt;
    SVQ_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    SVQ_RETURN_NOT_OK(ParseSelectList(&stmt));
    SVQ_RETURN_NOT_OK(ExpectKeyword("FROM"));
    SVQ_RETURN_NOT_OK(Expect(TokenType::kLeftParen));
    SVQ_RETURN_NOT_OK(ParseProcess(&stmt.process));
    SVQ_RETURN_NOT_OK(Expect(TokenType::kRightParen));
    SVQ_RETURN_NOT_OK(ExpectKeyword("WHERE"));
    SVQ_RETURN_NOT_OK(ParsePredicates(&stmt.predicates));
    if (PeekKeyword("ORDER")) {
      Advance();
      SVQ_RETURN_NOT_OK(ExpectKeyword("BY"));
      OrderByClause order_by;
      SVQ_RETURN_NOT_OK(ExpectKeyword("RANK"));
      SVQ_RETURN_NOT_OK(Expect(TokenType::kLeftParen));
      SVQ_RETURN_NOT_OK(ParseIdentList(&order_by.rank_args));
      SVQ_RETURN_NOT_OK(Expect(TokenType::kRightParen));
      stmt.order_by = std::move(order_by);
    }
    if (PeekKeyword("LIMIT")) {
      Advance();
      if (Peek().type != TokenType::kNumber) {
        return Error("expected a number after LIMIT");
      }
      stmt.limit = std::strtoll(Peek().text.c_str(), nullptr, 10);
      Advance();
    }
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool PeekKeyword(const char* kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        message + " at position " + std::to_string(Peek().position) +
        " (found " + TokenTypeName(Peek().type) +
        (Peek().text.empty() ? "" : " '" + Peek().text + "'") + ")");
  }
  Status Expect(TokenType type) {
    if (Peek().type != type) {
      return Error(std::string("expected ") + TokenTypeName(type));
    }
    Advance();
    return Status::OK();
  }
  Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) {
      return Error(std::string("expected ") + kw);
    }
    Advance();
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected an identifier");
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  Status ParseIdentList(std::vector<std::string>* out) {
    for (;;) {
      SVQ_ASSIGN_OR_RETURN(std::string ident, ExpectIdentifier());
      out->push_back(std::move(ident));
      if (Peek().type != TokenType::kComma) return Status::OK();
      Advance();
    }
  }

  Status ParseStringList(std::vector<std::string>* out) {
    for (;;) {
      if (Peek().type != TokenType::kString) {
        return Error("expected a string literal");
      }
      out->push_back(Peek().text);
      Advance();
      if (Peek().type != TokenType::kComma) return Status::OK();
      Advance();
    }
  }

  Status ParseSelectList(SelectStatement* stmt) {
    for (;;) {
      SelectItem item;
      if (PeekKeyword("MERGE")) {
        Advance();
        item.kind = SelectItem::Kind::kMerge;
        SVQ_RETURN_NOT_OK(Expect(TokenType::kLeftParen));
        SVQ_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
        SVQ_RETURN_NOT_OK(Expect(TokenType::kRightParen));
      } else if (PeekKeyword("RANK")) {
        Advance();
        item.kind = SelectItem::Kind::kRank;
        SVQ_RETURN_NOT_OK(Expect(TokenType::kLeftParen));
        SVQ_RETURN_NOT_OK(ParseIdentList(&item.rank_args));
        SVQ_RETURN_NOT_OK(Expect(TokenType::kRightParen));
      } else {
        item.kind = SelectItem::Kind::kColumn;
        SVQ_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
      }
      if (PeekKeyword("AS")) {
        Advance();
        SVQ_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      }
      stmt->select.push_back(std::move(item));
      if (Peek().type != TokenType::kComma) return Status::OK();
      Advance();
    }
  }

  Status ParseProcess(ProcessClause* process) {
    SVQ_RETURN_NOT_OK(ExpectKeyword("PROCESS"));
    if (Peek().type == TokenType::kStar) {
      // PROCESS * — the whole-repository target: the statement fans out
      // over every ingested video (paper §4.2 multi-video setting).
      process->video = "*";
      Advance();
    } else {
      SVQ_ASSIGN_OR_RETURN(process->video, ExpectIdentifier());
    }
    SVQ_RETURN_NOT_OK(ExpectKeyword("PRODUCE"));
    for (;;) {
      ProduceItem item;
      SVQ_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      if (PeekKeyword("USING")) {
        Advance();
        SVQ_ASSIGN_OR_RETURN(item.model, ExpectIdentifier());
      }
      process->items.push_back(std::move(item));
      if (Peek().type != TokenType::kComma) return Status::OK();
      Advance();
    }
  }

  Status ParsePredicates(std::vector<Predicate>* predicates) {
    for (;;) {
      Predicate pred;
      SVQ_ASSIGN_OR_RETURN(pred.target, ExpectIdentifier());
      if (Peek().type == TokenType::kDot) {
        // obj.include('car', 'human')
        Advance();
        pred.kind = Predicate::Kind::kMethodCall;
        SVQ_ASSIGN_OR_RETURN(pred.method, ExpectIdentifier());
        SVQ_RETURN_NOT_OK(Expect(TokenType::kLeftParen));
        SVQ_RETURN_NOT_OK(ParseStringList(&pred.args));
        SVQ_RETURN_NOT_OK(Expect(TokenType::kRightParen));
      } else if (Peek().type == TokenType::kEquals) {
        Advance();
        if (Peek().type == TokenType::kString) {
          // act = 'jumping'
          pred.kind = Predicate::Kind::kEquals;
          pred.args.push_back(Peek().text);
          Advance();
        } else if (PeekKeyword("ACTION")) {
          // det = Action('robot_dancing', 'car', 'human')
          Advance();
          pred.kind = Predicate::Kind::kActionCall;
          SVQ_RETURN_NOT_OK(Expect(TokenType::kLeftParen));
          SVQ_RETURN_NOT_OK(ParseStringList(&pred.args));
          SVQ_RETURN_NOT_OK(Expect(TokenType::kRightParen));
        } else {
          return Error("expected a string literal or Action(...)");
        }
      } else {
        return Error("expected '=' or '.' in predicate");
      }
      predicates->push_back(std::move(pred));
      if (!PeekKeyword("AND")) return Status::OK();
      Advance();
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> Parse(std::string_view statement) {
  SVQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(statement));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace svq::query
