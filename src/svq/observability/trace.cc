#include "svq/observability/trace.h"

#include <cstdio>

namespace svq::observability {

namespace {

int64_t ElapsedNs(QueryTrace::Clock::time_point epoch,
                  QueryTrace::Clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch)
      .count();
}

}  // namespace

int QueryTrace::Begin(std::string_view name) {
  Span span;
  span.name.assign(name);
  if (!stack_.empty()) {
    span.parent = stack_.back();
    span.depth = spans_[static_cast<size_t>(span.parent)].depth + 1;
  }
  span.start_ns = ElapsedNs(epoch_, Clock::now());
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  stack_.push_back(index);
  return index;
}

void QueryTrace::End(int index) {
  if (index < 0 || index >= static_cast<int>(spans_.size())) return;
  const int64_t now_ns = ElapsedNs(epoch_, Clock::now());
  // Close any deeper spans still open (a child may not outlive its
  // parent), then the span itself if it is on the stack.
  while (!stack_.empty()) {
    const int open = stack_.back();
    stack_.pop_back();
    Span& span = spans_[static_cast<size_t>(open)];
    if (span.duration_ns < 0) span.duration_ns = now_ns - span.start_ns;
    if (open == index) return;
  }
  // `index` was not on the stack (already closed): nothing further to do.
}

void QueryTrace::RecordAggregate(std::string_view name, int64_t duration_ns,
                                 int64_t count) {
  const int parent = stack_.empty() ? -1 : stack_.back();
  auto key = std::make_pair(parent, std::string(name));
  auto it = aggregates_.find(key);
  if (it == aggregates_.end()) {
    Span span;
    span.name = key.second;
    span.parent = parent;
    span.depth =
        parent < 0 ? 0 : spans_[static_cast<size_t>(parent)].depth + 1;
    span.start_ns = ElapsedNs(epoch_, Clock::now());
    span.duration_ns = duration_ns;
    span.count = count;
    const int index = static_cast<int>(spans_.size());
    spans_.push_back(std::move(span));
    it = aggregates_.emplace(std::move(key), index).first;
    return;
  }
  Span& span = spans_[static_cast<size_t>(it->second)];
  span.duration_ns += duration_ns;
  span.count += count;
}

double QueryTrace::TotalMs(std::string_view name) const {
  double total_ns = 0.0;
  for (const Span& span : spans_) {
    if (span.name == name && span.duration_ns >= 0) {
      total_ns += static_cast<double>(span.duration_ns);
    }
  }
  return total_ns / 1e6;
}

int64_t QueryTrace::CountOf(std::string_view name) const {
  int64_t total = 0;
  for (const Span& span : spans_) {
    if (span.name == name) total += span.count;
  }
  return total;
}

std::string QueryTrace::Format() const {
  std::string out;
  char line[160];
  for (const Span& span : spans_) {
    const double ms = span.duration_ns < 0
                          ? -1.0
                          : static_cast<double>(span.duration_ns) / 1e6;
    const int indent = span.depth * 2;
    if (span.duration_ns < 0) {
      std::snprintf(line, sizeof(line), "%*s%s (open)\n", indent, "",
                    span.name.c_str());
    } else if (span.count > 1) {
      std::snprintf(line, sizeof(line), "%*s%s %.3f ms (x%lld)\n", indent,
                    "", span.name.c_str(), ms,
                    static_cast<long long>(span.count));
    } else {
      std::snprintf(line, sizeof(line), "%*s%s %.3f ms\n", indent, "",
                    span.name.c_str(), ms);
    }
    out += line;
  }
  return out;
}

}  // namespace svq::observability
