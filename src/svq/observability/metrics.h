#ifndef SVQ_OBSERVABILITY_METRICS_H_
#define SVQ_OBSERVABILITY_METRICS_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace svq::observability {

/// Fixed power-of-two bucket layout shared by every histogram: bucket i
/// counts observations in [2^i, 2^(i+1)) microseconds, bucket 0 also
/// absorbs everything below 1 µs, and the last bucket absorbs everything
/// larger (~67 s and up). The count matches the server wire protocol's
/// latency histograms so registry snapshots travel losslessly over STATS.
inline constexpr int kHistogramBuckets = 27;

/// Monotonically increasing metric. Increment/Add are single relaxed
/// atomic adds — safe and cheap from any thread, never a lock. Values are
/// doubles (the Prometheus data model): integer counters stay exact up to
/// 2^53 events.
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(static_cast<double>(n), std::memory_order_relaxed);
  }
  void Add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  const std::string name_;
  const std::string help_;
  std::atomic<double> value_{0.0};
};

/// Instantaneous value that may go up or down (queue depths, open
/// connections). Same relaxed-atomic discipline as Counter.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  const std::string name_;
  const std::string help_;
  std::atomic<double> value_{0.0};
};

/// Point-in-time value of one histogram (see kHistogramBuckets for the
/// bucket layout). Individual buckets are exact; count/sum may trail by
/// in-flight increments — consistent enough for monitoring.
struct HistogramSnapshot {
  std::string name;
  std::string help;
  int64_t count = 0;
  /// Sum of the recorded (finite, positive) values in microseconds.
  double sum_micros = 0.0;
  std::array<int64_t, kHistogramBuckets> buckets{};

  /// Inclusive upper bound of bucket `i` in microseconds.
  static double BucketUpperMicros(int i);
  /// Approximate percentile (0 <= p <= 1) from the bucket upper bounds;
  /// 0 when empty.
  double PercentileMicros(double p) const;
};

/// Thread-safe power-of-two histogram of microsecond durations. Record()
/// is two relaxed atomic adds plus one floating add, so hot response paths
/// never serialize on a stats lock.
class Histogram {
 public:
  /// Records one observation. Inputs are clamped explicitly rather than
  /// fed to log2 raw: NaN and negative durations (clock adjustments,
  /// subtraction-order bugs upstream) land in bucket 0 and contribute
  /// nothing to the sum; +infinity lands in the overflow bucket. Casting
  /// log2(+inf) to int would be undefined behaviour — this is the one
  /// place that guard lives.
  void Record(double micros) {
    int bucket = 0;
    if (micros >= 1.0) {  // false for NaN and negatives
      bucket = std::isinf(micros)
                   ? kHistogramBuckets - 1
                   : std::min(kHistogramBuckets - 1,
                              static_cast<int>(std::log2(micros)));
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    if (std::isfinite(micros) && micros > 0.0) {
      sum_micros_.fetch_add(micros, std::memory_order_relaxed);
    }
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snapshot;
    snapshot.name = name_;
    snapshot.help = help_;
    snapshot.count = count_.load(std::memory_order_relaxed);
    snapshot.sum_micros = sum_micros_.load(std::memory_order_relaxed);
    for (int i = 0; i < kHistogramBuckets; ++i) {
      snapshot.buckets[static_cast<size_t>(i)] =
          buckets_[i].load(std::memory_order_relaxed);
    }
    return snapshot;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  const std::string name_;
  const std::string help_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_micros_{0.0};
  std::atomic<int64_t> buckets_[kHistogramBuckets] = {};
};

/// Point-in-time view of a whole registry, ordered by metric name (the
/// registry stores metrics sorted, so dumps and golden tests are
/// deterministic).
struct MetricsSnapshot {
  struct Value {
    std::string name;
    std::string help;
    double value = 0.0;
  };

  std::vector<Value> counters;
  std::vector<Value> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// The snapshot as Prometheus text exposition format (# HELP / # TYPE
  /// comments, histogram _bucket/_sum/_count series with cumulative `le`
  /// labels).
  void DumpPrometheus(std::ostream& out) const;

  /// Flat (name, value) view: every counter and gauge verbatim, plus
  /// `<name>_count` / `<name>_sum_micros` per histogram. This is what the
  /// STATS wire verb and the bench JSON emitters consume.
  std::vector<std::pair<std::string, double>> Flatten() const;
};

/// Process-wide (or per-server) metric directory: named counters, gauges,
/// and histograms, each registered once and recorded through stable
/// pointers with relaxed atomics. Registration takes a mutex; recording
/// never does — the lock-cheap split that keeps the hot serving path free
/// of stats contention. See docs/observability.md.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name; the same name always returns the same
  /// instance, so independent components can share a metric. Names are
  /// sanitized to the Prometheus charset ([a-zA-Z0-9_:], non-leading
  /// digits); `help` is kept from the first registration. Returned
  /// pointers are stable for the registry's lifetime.
  Counter* counter(std::string_view name, std::string_view help = "");
  Gauge* gauge(std::string_view name, std::string_view help = "");
  Histogram* histogram(std::string_view name, std::string_view help = "");

  /// Consistent-enough point-in-time copy (each metric is read atomically;
  /// the set is read under the registration mutex).
  MetricsSnapshot Snapshot() const;

  /// Convenience: Snapshot().DumpPrometheus(out).
  void DumpPrometheus(std::ostream& out) const;

 private:
  static std::string Sanitize(std::string_view name);

  mutable std::mutex mu_;  // guards the maps, never the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace svq::observability

#endif  // SVQ_OBSERVABILITY_METRICS_H_
