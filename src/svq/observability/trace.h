#ifndef SVQ_OBSERVABILITY_TRACE_H_
#define SVQ_OBSERVABILITY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace svq::observability {

/// Per-query execution trace: a tree of named, monotonic-clock spans
/// recording where one statement spent its time — parse → bind → plan →
/// execute → per-algorithm work, with hot-loop contributions (e.g. TBClip
/// iterator steps) folded into aggregate spans instead of one span per
/// call.
///
/// One QueryTrace belongs to one query and is recorded from the thread
/// driving that query (the server worker, a bench loop, a test). It is
/// deliberately NOT thread-safe: the engine's parallel fan-outs do not
/// touch the trace, exactly like the per-query stats sinks. Attach it via
/// ExecutionContext::set_trace; every recording helper accepts a null
/// trace and degrades to a no-op, so instrumented code paths cost two
/// branches when tracing is off.
class QueryTrace {
 public:
  using Clock = std::chrono::steady_clock;

  struct Span {
    std::string name;
    /// Index of the enclosing span in spans(); -1 for roots.
    int parent = -1;
    int depth = 0;
    /// Start offset from the trace epoch (construction time).
    int64_t start_ns = 0;
    /// -1 while the span is open.
    int64_t duration_ns = -1;
    /// Number of folded observations; > 1 only for aggregate spans.
    int64_t count = 1;
  };

  QueryTrace() : epoch_(Clock::now()) {}

  /// Opens a span nested under the innermost open span and returns its
  /// index.
  int Begin(std::string_view name);

  /// Closes the span at `index` (and, defensively, any still-open spans
  /// nested deeper — a span may not outlive its parent).
  void End(int index);

  /// Folds one timed observation into the aggregate span `name` under the
  /// innermost open span. Aggregates are keyed by (parent, name): the
  /// first call creates the span, later calls add to its duration and
  /// count — O(log n) map lookup, no per-call allocation after the first.
  void RecordAggregate(std::string_view name, int64_t duration_ns,
                       int64_t count = 1);

  const std::vector<Span>& spans() const { return spans_; }

  /// Total duration (ms) over all closed spans named `name`; 0 when none.
  double TotalMs(std::string_view name) const;
  /// Number of spans named `name` (closed or open).
  int64_t CountOf(std::string_view name) const;

  /// Human-readable tree, one span per line, indented by depth:
  ///   `execute          12.345 ms`
  ///   `  rvaq           12.301 ms`
  ///   `    tbclip.next   8.120 ms  (x482)`
  std::string Format() const;

 private:
  Clock::time_point epoch_;
  std::vector<Span> spans_;
  /// Indices of currently open spans, outermost first.
  std::vector<int> stack_;
  /// (parent index, name) -> span index for aggregate folding.
  std::map<std::pair<int, std::string>, int, std::less<>> aggregates_;
};

/// RAII span: opens on construction, closes on destruction. Null-trace
/// safe, so call sites thread `context.trace()` through unconditionally.
class TraceSpan {
 public:
  TraceSpan(QueryTrace* trace, std::string_view name)
      : trace_(trace), index_(trace != nullptr ? trace->Begin(name) : -1) {}
  ~TraceSpan() {
    if (trace_ != nullptr) trace_->End(index_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  QueryTrace* trace_;
  int index_;
};

/// RAII aggregate observation: measures its own lifetime and folds it into
/// the trace's aggregate span on destruction. For hot loops (iterator
/// steps, storage accesses) where one span per call would swamp the trace.
/// With a null trace the constructor skips the clock read entirely.
class AggregateTimer {
 public:
  AggregateTimer(QueryTrace* trace, std::string_view name)
      : trace_(trace), name_(name) {
    if (trace_ != nullptr) start_ = QueryTrace::Clock::now();
  }
  ~AggregateTimer() {
    if (trace_ == nullptr) return;
    const auto elapsed = QueryTrace::Clock::now() - start_;
    trace_->RecordAggregate(
        name_,
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
  }

  AggregateTimer(const AggregateTimer&) = delete;
  AggregateTimer& operator=(const AggregateTimer&) = delete;

 private:
  QueryTrace* trace_;
  std::string_view name_;
  QueryTrace::Clock::time_point start_{};
};

}  // namespace svq::observability

#endif  // SVQ_OBSERVABILITY_TRACE_H_
