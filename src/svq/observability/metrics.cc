#include "svq/observability/metrics.h"

#include <algorithm>
#include <cstdio>

namespace svq::observability {

namespace {

/// Formats a metric value the way Prometheus text exposition expects:
/// integral values without a fraction, everything else with enough digits
/// to round-trip a double.
std::string FormatValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void DumpHelpAndType(std::ostream& out, const std::string& name,
                     const std::string& help, const char* type) {
  if (!help.empty()) out << "# HELP " << name << " " << help << "\n";
  out << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

double HistogramSnapshot::BucketUpperMicros(int i) {
  return std::ldexp(1.0, i + 1);
}

double HistogramSnapshot::PercentileMicros(double p) const {
  if (count <= 0) return 0.0;
  const double target = p * static_cast<double>(count);
  int64_t seen = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[static_cast<size_t>(i)];
    if (static_cast<double>(seen) >= target) return BucketUpperMicros(i);
  }
  return BucketUpperMicros(kHistogramBuckets - 1);
}

void MetricsSnapshot::DumpPrometheus(std::ostream& out) const {
  for (const Value& counter : counters) {
    DumpHelpAndType(out, counter.name, counter.help, "counter");
    out << counter.name << " " << FormatValue(counter.value) << "\n";
  }
  for (const Value& gauge : gauges) {
    DumpHelpAndType(out, gauge.name, gauge.help, "gauge");
    out << gauge.name << " " << FormatValue(gauge.value) << "\n";
  }
  for (const HistogramSnapshot& histogram : histograms) {
    DumpHelpAndType(out, histogram.name, histogram.help, "histogram");
    int64_t cumulative = 0;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      cumulative += histogram.buckets[static_cast<size_t>(i)];
      out << histogram.name << "_bucket{le=\""
          << FormatValue(HistogramSnapshot::BucketUpperMicros(i)) << "\"} "
          << cumulative << "\n";
    }
    out << histogram.name << "_bucket{le=\"+Inf\"} " << histogram.count
        << "\n";
    out << histogram.name << "_sum " << FormatValue(histogram.sum_micros)
        << "\n";
    out << histogram.name << "_count " << histogram.count << "\n";
  }
}

std::vector<std::pair<std::string, double>> MetricsSnapshot::Flatten() const {
  std::vector<std::pair<std::string, double>> flat;
  flat.reserve(counters.size() + gauges.size() + 2 * histograms.size());
  for (const Value& counter : counters) {
    flat.emplace_back(counter.name, counter.value);
  }
  for (const Value& gauge : gauges) {
    flat.emplace_back(gauge.name, gauge.value);
  }
  for (const HistogramSnapshot& histogram : histograms) {
    flat.emplace_back(histogram.name + "_count",
                      static_cast<double>(histogram.count));
    flat.emplace_back(histogram.name + "_sum_micros", histogram.sum_micros);
  }
  return flat;
}

std::string MetricsRegistry::Sanitize(std::string_view name) {
  std::string sanitized(name.empty() ? std::string_view("_") : name);
  for (char& c : sanitized) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (sanitized[0] >= '0' && sanitized[0] <= '9') {
    sanitized.insert(sanitized.begin(), '_');
  }
  return sanitized;
}

Counter* MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  std::string key = Sanitize(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    auto metric = std::unique_ptr<Counter>(
        new Counter(key, std::string(help)));
    it = counters_.emplace(std::move(key), std::move(metric)).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  std::string key = Sanitize(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    auto metric = std::unique_ptr<Gauge>(new Gauge(key, std::string(help)));
    it = gauges_.emplace(std::move(key), std::move(metric)).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help) {
  std::string key = Sanitize(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    auto metric = std::unique_ptr<Histogram>(
        new Histogram(key, std::string(help)));
    it = histograms_.emplace(std::move(key), std::move(metric)).first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->help_, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->help_, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back(histogram->Snapshot());
  }
  return snapshot;
}

void MetricsRegistry::DumpPrometheus(std::ostream& out) const {
  Snapshot().DumpPrometheus(out);
}

}  // namespace svq::observability
