#include "svq/video/ground_truth.h"

namespace svq::video {

namespace {
const IntervalSet& EmptySet() {
  static const IntervalSet* kEmpty = new IntervalSet();
  return *kEmpty;
}
}  // namespace

int64_t GroundTruth::AddObjectInstance(const std::string& label,
                                       Interval frames) {
  const int64_t id = next_instance_id_++;
  instances_.push_back({id, label, frames});
  objects_[label].Add(frames);
  return id;
}

void GroundTruth::AddActionInterval(const std::string& label,
                                    Interval frames) {
  actions_[label].Add(frames);
}

const IntervalSet& GroundTruth::ObjectPresence(const std::string& label) const {
  auto it = objects_.find(label);
  return it == objects_.end() ? EmptySet() : it->second;
}

const IntervalSet& GroundTruth::ActionPresence(const std::string& label) const {
  auto it = actions_.find(label);
  return it == actions_.end() ? EmptySet() : it->second;
}

std::vector<std::string> GroundTruth::ObjectLabels() const {
  std::vector<std::string> labels;
  labels.reserve(objects_.size());
  for (const auto& [label, _] : objects_) labels.push_back(label);
  return labels;
}

std::vector<std::string> GroundTruth::ActionLabels() const {
  std::vector<std::string> labels;
  labels.reserve(actions_.size());
  for (const auto& [label, _] : actions_) labels.push_back(label);
  return labels;
}

std::vector<const TrackInstance*> GroundTruth::InstancesAt(
    const std::string& label, FrameIndex frame) const {
  std::vector<const TrackInstance*> out;
  for (const TrackInstance& inst : instances_) {
    if (inst.label == label && inst.frames.Contains(frame)) {
      out.push_back(&inst);
    }
  }
  return out;
}

}  // namespace svq::video
