#include "svq/video/interval_set.h"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace svq::video {

double Interval::Iou(const Interval& a, const Interval& b) {
  const int64_t inter_begin = std::max(a.begin, b.begin);
  const int64_t inter_end = std::min(a.end, b.end);
  const int64_t inter = inter_end > inter_begin ? inter_end - inter_begin : 0;
  const int64_t uni = a.length() + b.length() - inter;
  if (uni <= 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

std::ostream& operator<<(std::ostream& os, const Interval& interval) {
  return os << "[" << interval.begin << ", " << interval.end << ")";
}

IntervalSet::IntervalSet(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  Normalize();
}

void IntervalSet::Normalize() {
  std::erase_if(intervals_, [](const Interval& i) { return i.empty(); });
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  size_t out = 0;
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (out > 0 && intervals_[i].begin <= intervals_[out - 1].end) {
      intervals_[out - 1].end =
          std::max(intervals_[out - 1].end, intervals_[i].end);
    } else {
      intervals_[out++] = intervals_[i];
    }
  }
  intervals_.resize(out);
}

void IntervalSet::Add(Interval interval) {
  if (interval.empty()) return;
  // Fast path: append or extend at the back (streaming insertion order).
  if (intervals_.empty() || interval.begin > intervals_.back().end) {
    intervals_.push_back(interval);
    return;
  }
  if (interval.begin >= intervals_.back().begin) {
    intervals_.back().begin =
        std::min(intervals_.back().begin, interval.begin);
    intervals_.back().end = std::max(intervals_.back().end, interval.end);
    return;
  }
  intervals_.push_back(interval);
  Normalize();
}

int64_t IntervalSet::TotalLength() const {
  int64_t total = 0;
  for (const Interval& i : intervals_) total += i.length();
  return total;
}

int64_t IntervalSet::FindInterval(int64_t x) const {
  // First interval with begin > x, then check its predecessor.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), x,
      [](int64_t v, const Interval& i) { return v < i.begin; });
  if (it == intervals_.begin()) return -1;
  --it;
  if (it->Contains(x)) return it - intervals_.begin();
  return -1;
}

bool IntervalSet::Contains(int64_t x) const { return FindInterval(x) >= 0; }

IntervalSet IntervalSet::Union(const IntervalSet& a, const IntervalSet& b) {
  std::vector<Interval> merged;
  merged.reserve(a.size() + b.size());
  merged.insert(merged.end(), a.intervals_.begin(), a.intervals_.end());
  merged.insert(merged.end(), b.intervals_.begin(), b.intervals_.end());
  return IntervalSet(std::move(merged));
}

IntervalSet IntervalSet::Intersect(const IntervalSet& a,
                                   const IntervalSet& b) {
  IntervalSet out;
  size_t ia = 0;
  size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    const Interval& x = a.intervals_[ia];
    const Interval& y = b.intervals_[ib];
    const int64_t begin = std::max(x.begin, y.begin);
    const int64_t end = std::min(x.end, y.end);
    if (begin < end) out.Add({begin, end});
    if (x.end < y.end) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return out;
}

IntervalSet IntervalSet::Difference(const IntervalSet& a,
                                    const IntervalSet& b) {
  IntervalSet out;
  size_t ib = 0;
  for (const Interval& x : a.intervals_) {
    int64_t cursor = x.begin;
    while (ib < b.size() && b.intervals_[ib].end <= cursor) ++ib;
    size_t j = ib;
    while (j < b.size() && b.intervals_[j].begin < x.end) {
      const Interval& y = b.intervals_[j];
      if (y.begin > cursor) out.Add({cursor, std::min(y.begin, x.end)});
      cursor = std::max(cursor, y.end);
      if (cursor >= x.end) break;
      ++j;
    }
    if (cursor < x.end) out.Add({cursor, x.end});
  }
  return out;
}

IntervalSet IntervalSet::Complement(int64_t domain_begin,
                                    int64_t domain_end) const {
  IntervalSet domain(std::vector<Interval>{{domain_begin, domain_end}});
  return Difference(domain, *this);
}

int64_t IntervalSet::OverlapLength(const IntervalSet& other) const {
  return Intersect(*this, other).TotalLength();
}

IntervalSet IntervalSet::CoarsenAny(int64_t unit) const {
  assert(unit >= 1);
  IntervalSet out;
  for (const Interval& i : intervals_) {
    const int64_t begin = i.begin / unit;
    const int64_t end = (i.end + unit - 1) / unit;
    out.Add({begin, end});
  }
  return out;
}

IntervalSet IntervalSet::CoarsenAll(int64_t unit) const {
  assert(unit >= 1);
  IntervalSet out;
  for (const Interval& i : intervals_) {
    // First unit fully inside, one past the last unit fully inside.
    const int64_t begin = (i.begin + unit - 1) / unit;
    const int64_t end = i.end / unit;
    if (begin < end) out.Add({begin, end});
  }
  return out;
}

IntervalSet IntervalSet::Refine(int64_t unit) const {
  assert(unit >= 1);
  IntervalSet out;
  for (const Interval& i : intervals_) {
    out.Add({i.begin * unit, i.end * unit});
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& set) {
  os << "{";
  bool first = true;
  for (const Interval& i : set.intervals()) {
    if (!first) os << ", ";
    os << i;
    first = false;
  }
  return os << "}";
}

}  // namespace svq::video
