#ifndef SVQ_VIDEO_TYPES_H_
#define SVQ_VIDEO_TYPES_H_

#include <cstdint>

#include "svq/common/status.h"

namespace svq::video {

/// Index of a frame within a video (0-based).
using FrameIndex = int64_t;
/// Index of a shot within a video (0-based). A shot is a fixed-length run of
/// frames — the input unit of action recognition (paper §2).
using ShotIndex = int64_t;
/// Index of a clip within a video (0-based). A clip is a fixed-length run of
/// shots — the unit at which query predicates are decided (paper §2).
using ClipIndex = int64_t;
/// Identifier of a video within a repository.
using VideoId = int64_t;

inline constexpr VideoId kInvalidVideoId = -1;

/// Geometry of the frame/shot/clip hierarchy of paper §2 (Figure 1): a video
/// is a sequence of frames; consecutive frames group into shots; consecutive
/// shots group into clips. Shot length is dictated by the action recognition
/// model (typically 10-30 frames); clip length is a tunable of the system
/// evaluated in Figures 4 and 5.
struct VideoLayout {
  /// Frames per shot; the action recognizer consumes one shot at a time.
  int frames_per_shot = 16;
  /// Shots per clip; the clip is the query-decision granularity.
  int shots_per_clip = 5;
  /// Frame rate used only to convert wall-clock durations to frame counts.
  double fps = 30.0;

  int FramesPerClip() const { return frames_per_shot * shots_per_clip; }

  ShotIndex ShotOfFrame(FrameIndex frame) const {
    return frame / frames_per_shot;
  }
  ClipIndex ClipOfFrame(FrameIndex frame) const {
    return frame / FramesPerClip();
  }
  ClipIndex ClipOfShot(ShotIndex shot) const { return shot / shots_per_clip; }

  FrameIndex FirstFrameOfShot(ShotIndex shot) const {
    return shot * frames_per_shot;
  }
  FrameIndex FirstFrameOfClip(ClipIndex clip) const {
    return clip * static_cast<int64_t>(FramesPerClip());
  }
  ShotIndex FirstShotOfClip(ClipIndex clip) const {
    return clip * static_cast<int64_t>(shots_per_clip);
  }

  /// Number of (possibly partial) shots covering `num_frames` frames.
  int64_t NumShots(int64_t num_frames) const {
    return (num_frames + frames_per_shot - 1) / frames_per_shot;
  }
  /// Number of (possibly partial) clips covering `num_frames` frames.
  int64_t NumClips(int64_t num_frames) const {
    const int64_t fpc = FramesPerClip();
    return (num_frames + fpc - 1) / fpc;
  }

  /// Frame count for a wall-clock duration at this layout's frame rate.
  int64_t FramesForSeconds(double seconds) const {
    return static_cast<int64_t>(seconds * fps);
  }

  Status Validate() const {
    if (frames_per_shot < 1) {
      return Status::InvalidArgument("frames_per_shot must be >= 1");
    }
    if (shots_per_clip < 1) {
      return Status::InvalidArgument("shots_per_clip must be >= 1");
    }
    if (!(fps > 0.0)) {
      return Status::InvalidArgument("fps must be > 0");
    }
    return Status::OK();
  }
};

}  // namespace svq::video

#endif  // SVQ_VIDEO_TYPES_H_
