#ifndef SVQ_VIDEO_SYNTHETIC_VIDEO_H_
#define SVQ_VIDEO_SYNTHETIC_VIDEO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "svq/common/result.h"
#include "svq/common/rng.h"
#include "svq/video/ground_truth.h"
#include "svq/video/types.h"

namespace svq::video {

/// Alternating renewal process spec for an action type: the action switches
/// between "off" runs and "on" runs with geometrically distributed lengths.
struct SyntheticActionSpec {
  std::string label;
  /// Mean length (frames) of an action occurrence.
  double mean_on_frames = 300.0;
  /// Mean gap (frames) between occurrences.
  double mean_off_frames = 1500.0;
};

/// Presence process for an object type; combines a background alternating
/// renewal process with intervals correlated to a named action (this is how
/// the workloads reproduce the predicate-correlation structure studied in
/// the paper's Table 3, e.g. `person` almost always co-occurring with
/// `blowing leaves`).
struct SyntheticObjectSpec {
  std::string label;
  /// Mean length (frames) of a background appearance. Zero disables the
  /// background process.
  double mean_on_frames = 0.0;
  /// Mean gap (frames) between background appearances.
  double mean_off_frames = 3000.0;
  /// When non-empty: for each occurrence of this action, with probability
  /// `correlation` the object appears alongside it.
  std::string correlate_with_action;
  /// Probability that the object accompanies a given action occurrence.
  double correlation = 0.0;
  /// Fraction of the action occurrence covered by the correlated appearance
  /// (a random sub-interval of that relative length).
  double coverage = 1.0;
  /// The correlated appearance is stretched/shifted by up to this many
  /// frames on each side.
  double jitter_frames = 0.0;
};

/// Full recipe for one synthetic video.
struct SyntheticVideoSpec {
  std::string name = "synthetic";
  int64_t num_frames = 0;
  VideoLayout layout;
  uint64_t seed = 1;
  std::vector<SyntheticActionSpec> actions;
  std::vector<SyntheticObjectSpec> objects;
};

/// A generated video: geometry plus frame-level ground truth. The library's
/// synthetic detectors consume the ground truth (plus noise overlays) in
/// place of decoded pixel data — see DESIGN.md "Substitutions".
class SyntheticVideo {
 public:
  /// Generates the ground truth from the spec; deterministic in `spec.seed`.
  /// Errors: InvalidArgument for non-positive length, invalid layout,
  /// correlation/coverage outside [0, 1], or a correlation target action
  /// that is not in `spec.actions`.
  static Result<std::shared_ptr<const SyntheticVideo>> Generate(
      const SyntheticVideoSpec& spec);

  /// Wraps externally supplied ground truth (e.g. hand-labeled annotations,
  /// see svq/video/annotation.h) so real labeled footage flows through the
  /// same model-emulation and query pipeline. Intervals must lie inside
  /// `[0, num_frames)`.
  static Result<std::shared_ptr<const SyntheticVideo>> FromGroundTruth(
      const std::string& name, int64_t num_frames, const VideoLayout& layout,
      GroundTruth ground_truth, uint64_t seed = 1);

  const std::string& name() const { return spec_.name; }
  int64_t num_frames() const { return spec_.num_frames; }
  const VideoLayout& layout() const { return spec_.layout; }
  uint64_t seed() const { return spec_.seed; }
  const GroundTruth& ground_truth() const { return ground_truth_; }
  const SyntheticVideoSpec& spec() const { return spec_; }

  int64_t NumShots() const {
    return spec_.layout.NumShots(spec_.num_frames);
  }
  int64_t NumClips() const {
    return spec_.layout.NumClips(spec_.num_frames);
  }

 private:
  SyntheticVideo(SyntheticVideoSpec spec, GroundTruth ground_truth)
      : spec_(std::move(spec)), ground_truth_(std::move(ground_truth)) {}

  SyntheticVideoSpec spec_;
  GroundTruth ground_truth_;
};

/// Draws the on-intervals of an alternating renewal process with
/// geometrically distributed run lengths over `[0, num_frames)`. Exposed for
/// reuse by the detector noise overlays.
std::vector<Interval> GenerateAlternatingProcess(int64_t num_frames,
                                                 double mean_on,
                                                 double mean_off, Rng& rng);

}  // namespace svq::video

#endif  // SVQ_VIDEO_SYNTHETIC_VIDEO_H_
