#include "svq/video/annotation.h"

#include <fstream>
#include <sstream>

namespace svq::video {

namespace {

Status LineError(size_t line_number, const std::string& message) {
  return Status::InvalidArgument("annotation line " +
                                 std::to_string(line_number) + ": " +
                                 message);
}

}  // namespace

Result<std::shared_ptr<const SyntheticVideo>> ParseAnnotations(
    const std::string& text, const VideoLayout& layout) {
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;

  std::string name;
  int64_t num_frames = -1;
  VideoLayout effective_layout = layout;
  GroundTruth gt;

  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments and surrounding whitespace.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) continue;  // blank line

    if (kind == "video") {
      if (num_frames >= 0) {
        return LineError(line_number, "duplicate video record");
      }
      double fps = 0.0;
      if (!(fields >> name >> num_frames)) {
        return LineError(line_number, "expected: video <name> <num_frames>");
      }
      if (num_frames <= 0) {
        return LineError(line_number, "num_frames must be > 0");
      }
      if (fields >> fps) {
        if (fps <= 0.0) return LineError(line_number, "fps must be > 0");
        effective_layout.fps = fps;
      }
      continue;
    }
    if (kind == "object" || kind == "action") {
      if (num_frames < 0) {
        return LineError(line_number,
                         "the video record must come before annotations");
      }
      std::string label;
      int64_t begin = 0;
      int64_t end = 0;
      if (!(fields >> label >> begin >> end)) {
        return LineError(line_number,
                         "expected: " + kind + " <label> <begin> <end>");
      }
      if (begin < 0 || end > num_frames || begin >= end) {
        return LineError(line_number, "interval [" + std::to_string(begin) +
                                          ", " + std::to_string(end) +
                                          ") outside [0, " +
                                          std::to_string(num_frames) + ")");
      }
      if (kind == "object") {
        gt.AddObjectInstance(label, {begin, end});
      } else {
        gt.AddActionInterval(label, {begin, end});
      }
      continue;
    }
    return LineError(line_number, "unknown record kind '" + kind + "'");
  }
  if (num_frames < 0) {
    return Status::InvalidArgument("annotation has no video record");
  }
  return SyntheticVideo::FromGroundTruth(name, num_frames, effective_layout,
                                         std::move(gt));
}

Result<std::shared_ptr<const SyntheticVideo>> LoadAnnotations(
    const std::string& path, const VideoLayout& layout) {
  std::ifstream in(path);
  if (!in) return Status::IOError("open failed: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return ParseAnnotations(text.str(), layout);
}

std::string FormatAnnotations(const SyntheticVideo& video) {
  std::ostringstream out;
  out << "# svqact annotations\n";
  out << "video " << video.name() << " " << video.num_frames() << " "
      << video.layout().fps << "\n";
  for (const TrackInstance& inst : video.ground_truth().instances()) {
    out << "object " << inst.label << " " << inst.frames.begin << " "
        << inst.frames.end << "\n";
  }
  for (const std::string& label : video.ground_truth().ActionLabels()) {
    for (const Interval& range :
         video.ground_truth().ActionPresence(label).intervals()) {
      out << "action " << label << " " << range.begin << " " << range.end
          << "\n";
    }
  }
  return out.str();
}

Status SaveAnnotations(const SyntheticVideo& video, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("open for write failed: " + path);
  out << FormatAnnotations(video);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace svq::video
