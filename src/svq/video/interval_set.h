#ifndef SVQ_VIDEO_INTERVAL_SET_H_
#define SVQ_VIDEO_INTERVAL_SET_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace svq::video {

/// A half-open index interval `[begin, end)` over frames, shots, or clips.
///
/// All interval math in the library uses half-open intervals; the paper's
/// inclusive `(c_l, c_r)` sequence notation maps to `[c_l, c_r + 1)`.
struct Interval {
  int64_t begin = 0;
  int64_t end = 0;

  int64_t length() const { return end > begin ? end - begin : 0; }
  bool empty() const { return end <= begin; }
  bool Contains(int64_t x) const { return x >= begin && x < end; }
  bool Overlaps(const Interval& other) const {
    return begin < other.end && other.begin < end;
  }

  friend bool operator==(const Interval&, const Interval&) = default;

  /// Intersection-over-union of two intervals; 0 when both are empty.
  static double Iou(const Interval& a, const Interval& b);
};

std::ostream& operator<<(std::ostream& os, const Interval& interval);

/// An ordered set of disjoint, non-touching half-open intervals.
///
/// This is the workhorse for ground-truth presence ranges, per-type positive
/// sequences `P_o` / `P_a`, and query result sequences. Normalization merges
/// adjacent intervals, which implements the paper's MERGE of consecutive
/// positive clips for free.
class IntervalSet {
 public:
  IntervalSet() = default;
  /// Builds a normalized set from arbitrary (possibly overlapping,
  /// unordered) intervals.
  explicit IntervalSet(std::vector<Interval> intervals);

  /// Inserts one interval, keeping the set normalized. Amortized O(log n)
  /// when insertions are near the end (the common streaming pattern).
  void Add(Interval interval);

  const std::vector<Interval>& intervals() const { return intervals_; }
  size_t size() const { return intervals_.size(); }
  bool empty() const { return intervals_.empty(); }

  /// Sum of interval lengths.
  int64_t TotalLength() const;

  /// Whether `x` is covered; O(log n).
  bool Contains(int64_t x) const;

  /// Index of the interval covering `x`, or -1.
  int64_t FindInterval(int64_t x) const;

  /// Set union by linear sweep.
  static IntervalSet Union(const IntervalSet& a, const IntervalSet& b);

  /// Set intersection by linear sweep. This is the paper's `⊗` operator on
  /// individual sequences (§4.2): clips present in both operands, re-merged
  /// into maximal runs.
  static IntervalSet Intersect(const IntervalSet& a, const IntervalSet& b);

  /// Elements of `a` not in `b`.
  static IntervalSet Difference(const IntervalSet& a, const IntervalSet& b);

  /// Complement within the domain `[domain_begin, domain_end)`.
  IntervalSet Complement(int64_t domain_begin, int64_t domain_end) const;

  /// Length of the overlap with `other`.
  int64_t OverlapLength(const IntervalSet& other) const;

  /// Frame-domain -> coarser-domain projection: an output unit is covered
  /// when ANY of its `unit` input indices is covered (e.g. a clip "touches"
  /// a ground-truth range). `unit` must be >= 1.
  IntervalSet CoarsenAny(int64_t unit) const;

  /// Frame-domain -> coarser-domain projection: an output unit is covered
  /// only when ALL of its `unit` input indices are covered.
  IntervalSet CoarsenAll(int64_t unit) const;

  /// Coarse-domain -> fine-domain expansion: unit u maps to
  /// `[u*unit, (u+1)*unit)`.
  IntervalSet Refine(int64_t unit) const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  void Normalize();

  std::vector<Interval> intervals_;
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& set);

}  // namespace svq::video

#endif  // SVQ_VIDEO_INTERVAL_SET_H_
