#ifndef SVQ_VIDEO_VIDEO_STREAM_H_
#define SVQ_VIDEO_VIDEO_STREAM_H_

#include <memory>
#include <optional>
#include <vector>

#include "svq/video/synthetic_video.h"
#include "svq/video/types.h"

namespace svq::video {

/// Reference to one shot of a video: index plus its frame range.
struct ShotRef {
  VideoId video = kInvalidVideoId;
  ShotIndex shot = 0;
  Interval frames;
};

/// Reference to one clip of a video: index, frame range, and the shot
/// decomposition. The trailing clip of a video may be partial.
struct ClipRef {
  VideoId video = kInvalidVideoId;
  ClipIndex clip = 0;
  Interval frames;
  std::vector<ShotRef> shots;
};

/// Builds the ClipRef for `clip` in a video of `num_frames` frames.
ClipRef MakeClipRef(const VideoLayout& layout, VideoId video, ClipIndex clip,
                    int64_t num_frames);

/// Pull-based clip iterator over a (possibly unbounded) video stream; the
/// granularity matches the online algorithms, which consume one clip per
/// step (paper Alg. 1 line 5, `X.next()`).
class VideoStream {
 public:
  virtual ~VideoStream() = default;

  /// Next clip, or nullopt when the stream ends.
  virtual std::optional<ClipRef> NextClip() = 0;

  virtual const VideoLayout& layout() const = 0;
  virtual VideoId video_id() const = 0;
};

/// Streams the clips of a synthetic video in order.
class SyntheticVideoStream final : public VideoStream {
 public:
  SyntheticVideoStream(std::shared_ptr<const SyntheticVideo> video,
                       VideoId id);

  std::optional<ClipRef> NextClip() override;
  const VideoLayout& layout() const override { return video_->layout(); }
  VideoId video_id() const override { return id_; }

  /// Restarts iteration from the first clip.
  void Reset() { next_clip_ = 0; }

  const SyntheticVideo& video() const { return *video_; }

 private:
  std::shared_ptr<const SyntheticVideo> video_;
  VideoId id_;
  ClipIndex next_clip_ = 0;
};

}  // namespace svq::video

#endif  // SVQ_VIDEO_VIDEO_STREAM_H_
