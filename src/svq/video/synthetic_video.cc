#include "svq/video/synthetic_video.h"

#include <algorithm>
#include <cmath>

namespace svq::video {

namespace {

/// Geometric run length with the given mean (>= 1 frame).
int64_t DrawRunLength(double mean, Rng& rng) {
  if (mean <= 1.0) return 1;
  // Geometric on {1, 2, ...} with mean `mean` has success prob 1/mean.
  return 1 + static_cast<int64_t>(rng.NextGeometric(1.0 / mean));
}

}  // namespace

std::vector<Interval> GenerateAlternatingProcess(int64_t num_frames,
                                                 double mean_on,
                                                 double mean_off, Rng& rng) {
  std::vector<Interval> on;
  if (num_frames <= 0 || mean_on <= 0.0) return on;
  // Random phase: start inside an off-run of residual length.
  int64_t cursor = static_cast<int64_t>(rng.NextDouble() * mean_off);
  while (cursor < num_frames) {
    const int64_t run = DrawRunLength(mean_on, rng);
    const int64_t end = std::min(num_frames, cursor + run);
    if (end > cursor) on.push_back({cursor, end});
    cursor = end + DrawRunLength(mean_off, rng);
  }
  return on;
}

Result<std::shared_ptr<const SyntheticVideo>> SyntheticVideo::Generate(
    const SyntheticVideoSpec& spec) {
  if (spec.num_frames <= 0) {
    return Status::InvalidArgument("num_frames must be > 0");
  }
  SVQ_RETURN_NOT_OK(spec.layout.Validate());
  for (const SyntheticObjectSpec& obj : spec.objects) {
    if (obj.correlation < 0.0 || obj.correlation > 1.0) {
      return Status::InvalidArgument("correlation must be in [0, 1] for " +
                                     obj.label);
    }
    if (obj.coverage < 0.0 || obj.coverage > 1.0) {
      return Status::InvalidArgument("coverage must be in [0, 1] for " +
                                     obj.label);
    }
  }

  GroundTruth gt;
  Rng root(spec.seed);

  // Actions first: objects may correlate with them.
  std::map<std::string, std::vector<Interval>> action_intervals;
  uint64_t stream = 1;
  for (const SyntheticActionSpec& action : spec.actions) {
    Rng rng = root.Fork(stream++);
    std::vector<Interval> on = GenerateAlternatingProcess(
        spec.num_frames, action.mean_on_frames, action.mean_off_frames, rng);
    for (const Interval& i : on) gt.AddActionInterval(action.label, i);
    action_intervals[action.label].insert(action_intervals[action.label].end(),
                                          on.begin(), on.end());
  }

  for (const SyntheticObjectSpec& obj : spec.objects) {
    Rng rng = root.Fork(stream++);
    // Background appearances independent of any action.
    for (const Interval& i : GenerateAlternatingProcess(
             spec.num_frames, obj.mean_on_frames, obj.mean_off_frames, rng)) {
      gt.AddObjectInstance(obj.label, i);
    }
    // Correlated appearances tied to action occurrences.
    if (!obj.correlate_with_action.empty() && obj.correlation > 0.0) {
      auto it = action_intervals.find(obj.correlate_with_action);
      if (it == action_intervals.end()) {
        return Status::InvalidArgument(
            "object '" + obj.label + "' correlates with unknown action '" +
            obj.correlate_with_action + "'");
      }
      for (const Interval& act : it->second) {
        if (!rng.NextBernoulli(obj.correlation)) continue;
        const int64_t len = std::max<int64_t>(
            1, static_cast<int64_t>(std::llround(
                   obj.coverage * static_cast<double>(act.length()))));
        const int64_t slack = act.length() - len;
        int64_t begin =
            act.begin +
            (slack > 0 ? static_cast<int64_t>(rng.NextUint64(
                             static_cast<uint64_t>(slack + 1)))
                       : 0);
        int64_t end = begin + len;
        if (obj.jitter_frames > 0.0) {
          begin += static_cast<int64_t>(
              rng.NextGaussian(0.0, obj.jitter_frames));
          end += static_cast<int64_t>(rng.NextGaussian(0.0, obj.jitter_frames));
        }
        begin = std::clamp<int64_t>(begin, 0, spec.num_frames - 1);
        end = std::clamp<int64_t>(end, begin + 1, spec.num_frames);
        gt.AddObjectInstance(obj.label, {begin, end});
      }
    }
  }

  return std::shared_ptr<const SyntheticVideo>(
      new SyntheticVideo(spec, std::move(gt)));
}

Result<std::shared_ptr<const SyntheticVideo>> SyntheticVideo::FromGroundTruth(
    const std::string& name, int64_t num_frames, const VideoLayout& layout,
    GroundTruth ground_truth, uint64_t seed) {
  if (num_frames <= 0) {
    return Status::InvalidArgument("num_frames must be > 0");
  }
  SVQ_RETURN_NOT_OK(layout.Validate());
  for (const TrackInstance& inst : ground_truth.instances()) {
    if (inst.frames.begin < 0 || inst.frames.end > num_frames ||
        inst.frames.empty()) {
      return Status::InvalidArgument(
          "annotation for '" + inst.label + "' outside [0, num_frames)");
    }
  }
  for (const std::string& label : ground_truth.ActionLabels()) {
    for (const Interval& range :
         ground_truth.ActionPresence(label).intervals()) {
      if (range.begin < 0 || range.end > num_frames) {
        return Status::InvalidArgument(
            "annotation for '" + label + "' outside [0, num_frames)");
      }
    }
  }
  SyntheticVideoSpec spec;
  spec.name = name;
  spec.num_frames = num_frames;
  spec.layout = layout;
  spec.seed = seed;
  return std::shared_ptr<const SyntheticVideo>(
      new SyntheticVideo(std::move(spec), std::move(ground_truth)));
}

}  // namespace svq::video
