#include "svq/video/video_stream.h"

#include <algorithm>

namespace svq::video {

ClipRef MakeClipRef(const VideoLayout& layout, VideoId video, ClipIndex clip,
                    int64_t num_frames) {
  ClipRef ref;
  ref.video = video;
  ref.clip = clip;
  const int64_t first = layout.FirstFrameOfClip(clip);
  const int64_t last = std::min<int64_t>(
      num_frames, first + layout.FramesPerClip());
  ref.frames = {first, last};
  const ShotIndex first_shot = layout.FirstShotOfClip(clip);
  for (int s = 0; s < layout.shots_per_clip; ++s) {
    const ShotIndex shot = first_shot + s;
    const int64_t shot_begin = layout.FirstFrameOfShot(shot);
    if (shot_begin >= last) break;
    const int64_t shot_end =
        std::min<int64_t>(last, shot_begin + layout.frames_per_shot);
    ref.shots.push_back({video, shot, {shot_begin, shot_end}});
  }
  return ref;
}

SyntheticVideoStream::SyntheticVideoStream(
    std::shared_ptr<const SyntheticVideo> video, VideoId id)
    : video_(std::move(video)), id_(id) {}

std::optional<ClipRef> SyntheticVideoStream::NextClip() {
  if (next_clip_ >= video_->NumClips()) return std::nullopt;
  return MakeClipRef(video_->layout(), id_, next_clip_++,
                     video_->num_frames());
}

}  // namespace svq::video
