#ifndef SVQ_VIDEO_ANNOTATION_H_
#define SVQ_VIDEO_ANNOTATION_H_

#include <memory>
#include <string>

#include "svq/common/result.h"
#include "svq/video/synthetic_video.h"

namespace svq::video {

/// Plain-text annotation format for labeled videos — the workflow of the
/// paper's §5.1, where authors "label the temporal boundaries of the
/// appearances" of each queried type. One record per line:
///
///   # comments and blank lines are ignored
///   video <name> <num_frames> [fps]
///   object <label> <begin_frame> <end_frame>      # half-open [begin, end)
///   action <label> <begin_frame> <end_frame>
///
/// The `video` record must come first; every interval must lie inside
/// `[0, num_frames)`. Labels may not contain whitespace (use underscores,
/// e.g. robot_dancing).
///
/// Annotated videos flow through the same pipeline as generated ones:
/// attach synthetic (or ideal) model emulations and query away.

/// Parses annotation text. Errors: InvalidArgument with the offending line
/// number.
Result<std::shared_ptr<const SyntheticVideo>> ParseAnnotations(
    const std::string& text, const VideoLayout& layout = VideoLayout());

/// Reads and parses an annotation file. Errors: IOError, InvalidArgument.
Result<std::shared_ptr<const SyntheticVideo>> LoadAnnotations(
    const std::string& path, const VideoLayout& layout = VideoLayout());

/// Serializes a video's ground truth in the annotation format (the inverse
/// of ParseAnnotations; instance structure is preserved as one `object`
/// record per instance).
std::string FormatAnnotations(const SyntheticVideo& video);

/// Writes FormatAnnotations output to `path`. Errors: IOError.
Status SaveAnnotations(const SyntheticVideo& video, const std::string& path);

}  // namespace svq::video

#endif  // SVQ_VIDEO_ANNOTATION_H_
