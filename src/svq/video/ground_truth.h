#ifndef SVQ_VIDEO_GROUND_TRUTH_H_
#define SVQ_VIDEO_GROUND_TRUTH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "svq/video/interval_set.h"
#include "svq/video/types.h"

namespace svq::video {

/// One contiguous appearance of one object instance — the unit an object
/// tracker assigns a stable tracking identifier to.
struct TrackInstance {
  int64_t instance_id = 0;
  std::string label;
  /// Frame range of the appearance (half-open).
  Interval frames;
};

/// Frame-level annotation of a video: which object types and action types
/// are present on which frame ranges, plus the instance decomposition of
/// object presence used by the tracker.
///
/// This mirrors the paper's manual annotation of ActivityNet videos (§5.1
/// "for each queried object type, we label the temporal boundaries of the
/// appearances of this object"). Synthetic videos generate it; evaluation
/// metrics compare query results against it; ideal models read it directly.
class GroundTruth {
 public:
  /// Records one instance appearance of `label`; presence ranges and the
  /// instance list stay consistent. Returns the assigned instance id.
  int64_t AddObjectInstance(const std::string& label, Interval frames);

  /// Records an action presence range.
  void AddActionInterval(const std::string& label, Interval frames);

  /// Frame ranges on which any instance of `label` is present; an empty set
  /// for unknown labels.
  const IntervalSet& ObjectPresence(const std::string& label) const;

  /// Frame ranges on which action `label` takes place; empty for unknown.
  const IntervalSet& ActionPresence(const std::string& label) const;

  std::vector<std::string> ObjectLabels() const;
  std::vector<std::string> ActionLabels() const;

  const std::vector<TrackInstance>& instances() const { return instances_; }

  /// Instances of `label` overlapping the given frame.
  std::vector<const TrackInstance*> InstancesAt(const std::string& label,
                                                FrameIndex frame) const;

 private:
  std::map<std::string, IntervalSet> objects_;
  std::map<std::string, IntervalSet> actions_;
  std::vector<TrackInstance> instances_;
  int64_t next_instance_id_ = 0;
};

}  // namespace svq::video

#endif  // SVQ_VIDEO_GROUND_TRUTH_H_
