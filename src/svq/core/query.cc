#include "svq/core/query.h"

#include <set>

namespace svq::core {

const char* RelOpName(RelOp op) {
  switch (op) {
    case RelOp::kLeftOf:
      return "left_of";
    case RelOp::kRightOf:
      return "right_of";
    case RelOp::kAbove:
      return "above";
    case RelOp::kBelow:
      return "below";
    case RelOp::kOverlaps:
      return "overlaps";
  }
  return "?";
}

std::string Relationship::ToString() const {
  return std::string(RelOpName(op)) + "(" + subject + ", " + object + ")";
}

Status Query::Validate() const {
  if (action.empty()) {
    return Status::InvalidArgument("query must specify an action");
  }
  std::set<std::string> seen;
  for (const std::string& object : objects) {
    if (object.empty()) {
      return Status::InvalidArgument("empty object label in query");
    }
    if (!seen.insert(object).second) {
      return Status::InvalidArgument("duplicate object label: " + object);
    }
  }
  std::set<std::string> seen_actions{action};
  for (const std::string& extra : extra_actions) {
    if (extra.empty()) {
      return Status::InvalidArgument("empty action label in query");
    }
    if (!seen_actions.insert(extra).second) {
      return Status::InvalidArgument("duplicate action label: " + extra);
    }
  }
  for (const auto& group : object_disjunctions) {
    if (group.empty()) {
      return Status::InvalidArgument("empty object disjunction group");
    }
    std::set<std::string> members;
    for (const std::string& label : group) {
      if (label.empty()) {
        return Status::InvalidArgument("empty label in disjunction group");
      }
      if (!members.insert(label).second) {
        return Status::InvalidArgument("duplicate label in disjunction: " +
                                       label);
      }
    }
  }
  for (const Relationship& rel : relationships) {
    if (rel.subject.empty() || rel.object.empty()) {
      return Status::InvalidArgument("relationship needs two object labels");
    }
    if (rel.subject == rel.object) {
      return Status::InvalidArgument(
          "relationship between a label and itself: " + rel.subject);
    }
  }
  return Status::OK();
}

std::vector<std::string> Query::AllActions() const {
  std::vector<std::string> all{action};
  all.insert(all.end(), extra_actions.begin(), extra_actions.end());
  return all;
}

std::vector<std::string> Query::AllObjectLabels() const {
  std::set<std::string> labels(objects.begin(), objects.end());
  for (const auto& group : object_disjunctions) {
    labels.insert(group.begin(), group.end());
  }
  for (const Relationship& rel : relationships) {
    labels.insert(rel.subject);
    labels.insert(rel.object);
  }
  return {labels.begin(), labels.end()};
}

std::string Query::ToString() const {
  std::string out = "{a=" + action;
  for (const std::string& extra : extra_actions) out += "&" + extra;
  for (size_t i = 0; i < objects.size(); ++i) {
    out += "; o" + std::to_string(i + 1) + "=" + objects[i];
  }
  for (const auto& group : object_disjunctions) {
    out += "; any(";
    for (size_t i = 0; i < group.size(); ++i) {
      if (i > 0) out += "|";
      out += group[i];
    }
    out += ")";
  }
  for (const Relationship& rel : relationships) {
    out += "; " + rel.ToString();
  }
  out += "}";
  return out;
}

Status OnlineConfig::Validate() const {
  auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in01(object_threshold) || !in01(action_threshold)) {
    return Status::InvalidArgument("thresholds must be in [0, 1]");
  }
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (reference_windows < 2.0) {
    return Status::InvalidArgument("reference_windows must be >= 2");
  }
  if (!in01(initial_object_p) || !in01(initial_action_p)) {
    return Status::InvalidArgument("initial probabilities must be in [0, 1]");
  }
  if (!(object_bandwidth > 0.0) || !(action_bandwidth > 0.0)) {
    return Status::InvalidArgument("bandwidths must be > 0");
  }
  if (action_null_sampling_period < 0) {
    return Status::InvalidArgument("sampling period must be >= 0");
  }
  if (merge_gap_clips < 0) {
    return Status::InvalidArgument("merge_gap_clips must be >= 0");
  }
  return Status::OK();
}

}  // namespace svq::core
