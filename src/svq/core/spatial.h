#ifndef SVQ_CORE_SPATIAL_H_
#define SVQ_CORE_SPATIAL_H_

#include <vector>

#include "svq/core/query.h"
#include "svq/models/detection.h"

namespace svq::core {

/// Whether the subject box stands in relation `op` to the object box.
/// Directional operators require strict separation of the box extents;
/// kOverlaps requires a non-empty intersection.
bool BoxesSatisfy(RelOp op, const models::BoundingBox& subject,
                  const models::BoundingBox& object);

/// Frame-level relationship indicator (paper footnote 2): true when some
/// detection of `rel.subject` and some detection of `rel.object`, both
/// scoring at least `score_threshold`, satisfy the spatial operator. This
/// is the binary per-frame output that the scan-statistic machinery then
/// treats exactly like an object-presence event stream.
bool RelationshipHolds(const Relationship& rel,
                       const std::vector<models::ObjectDetection>& detections,
                       double score_threshold);

}  // namespace svq::core

#endif  // SVQ_CORE_SPATIAL_H_
