#include "svq/core/scoring.h"

namespace svq::core {

double SequenceScoring::SequenceScore(
    const std::vector<double>& clip_scores) const {
  double total = AggregateIdentity();
  for (const double s : clip_scores) total = Aggregate(total, Replicate(s, 1));
  return total;
}

double AdditiveScoring::ClipScore(const std::vector<double>& object_scores,
                                  double action_score) const {
  double object_sum = 0.0;
  for (const double s : object_scores) object_sum += s;
  return action_score * object_sum;
}

double MaxScoring::ClipScore(const std::vector<double>& object_scores,
                             double action_score) const {
  double object_sum = 0.0;
  for (const double s : object_scores) object_sum += s;
  return action_score * object_sum;
}

}  // namespace svq::core
