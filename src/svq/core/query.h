#ifndef SVQ_CORE_QUERY_H_
#define SVQ_CORE_QUERY_H_

#include <string>
#include <vector>

#include "svq/common/status.h"

namespace svq::core {

/// Spatial relationship operators between object detections on a frame
/// (paper footnote 2 extension). Evaluated on bounding-box geometry in
/// normalized frame coordinates.
enum class RelOp {
  kLeftOf,   ///< subject's box lies entirely left of the object's box
  kRightOf,  ///< subject's box lies entirely right of the object's box
  kAbove,    ///< subject's box lies entirely above the object's box
  kBelow,    ///< subject's box lies entirely below the object's box
  kOverlaps, ///< the boxes intersect
};

const char* RelOpName(RelOp op);

/// One relationship predicate: `op(subject, object)`, e.g.
/// left_of(human, car) — "a human is left of a car on the frame".
struct Relationship {
  RelOp op = RelOp::kLeftOf;
  std::string subject;
  std::string object;

  std::string ToString() const;
  friend bool operator==(const Relationship&, const Relationship&) = default;
};

/// A conjunctive action-and-objects query (paper §2):
/// `q : {o_1, ..., o_I in O; a in A}` — the result sequences must contain
/// the action `a` and every listed object type — plus the paper's footnote
/// extensions, all conjunctive with the base query:
///  - `extra_actions` (footnote 3): additional actions that must co-occur;
///  - `object_disjunctions` (footnote 4): any-of label groups, e.g.
///    {car, bus} meaning "a car or a bus is present";
///  - `relationships` (footnote 2): spatial constraints between objects.
struct Query {
  std::vector<std::string> objects;
  std::string action;
  std::vector<std::string> extra_actions;
  std::vector<std::vector<std::string>> object_disjunctions;
  std::vector<Relationship> relationships;

  /// Non-empty action, non-empty distinct object labels, non-empty
  /// disjunction groups, well-formed relationships.
  Status Validate() const;

  /// All action labels (primary first).
  std::vector<std::string> AllActions() const;

  /// Every object label the detector must recognize (conjunctive labels,
  /// disjunction members, relationship endpoints).
  std::vector<std::string> AllObjectLabels() const;

  std::string ToString() const;
};

/// How SVAQD feeds its background-probability estimators (§3.3). The
/// statistic of Eq. 5 needs the *null* rate — §3.2: "the distribution of
/// predictions made by each individual model ... when the query predicates
/// are not satisfied" — so the default excludes the occurrence units of
/// clips where the predicate itself fired; otherwise long true sequences
/// inflate the estimate until the critical value saturates and recall
/// collapses (ablated in bench_micro_components and the engine tests).
enum class UpdatePolicy {
  /// Feed a predicate's estimator only from clips on which that predicate's
  /// indicator was 0 (default: estimates the null distribution).
  kNegativeUnits,
  /// Feed every evaluated occurrence unit (estimates the marginal rate).
  kEveryClip,
  /// Refresh only after clips that satisfied the whole query — the literal
  /// reading of Alg. 3 lines 7-9.
  kPositiveClip,
};

/// Tunables of the online engines (SVAQ / SVAQD).
struct OnlineConfig {
  /// Detection-score threshold `T_obj` (§2).
  double object_threshold = 0.5;
  /// Action-score threshold `T_act` (§2).
  double action_threshold = 0.5;
  /// Significance level `alpha` of the scan-statistic test (Eq. 5).
  double alpha = 0.05;
  /// Reference horizon `L` (number of windows) for the scan statistic; see
  /// DESIGN.md "Key design decisions".
  double reference_windows = 200.0;
  /// Initial background probability per object predicate (`p_obj_0`;
  /// SVAQ keeps it fixed for the whole stream).
  double initial_object_p = 1e-4;
  /// Initial background probability for the action predicate (`p_act_0`;
  /// shots are rarer than frames, so the default is higher).
  double initial_action_p = 1e-3;
  /// SVAQD kernel bandwidth for object estimators, in frames.
  double object_bandwidth = 4096.0;
  /// SVAQD kernel bandwidth for the action estimator, in shots. Shorter
  /// than the object bandwidth in wall-clock terms: the action estimator
  /// only sees the periodically sampled clips (see
  /// action_null_sampling_period), so its data stream is sparser.
  double action_bandwidth = 128.0;
  UpdatePolicy update_policy = UpdatePolicy::kNegativeUnits;
  /// SVAQD background sampling: under kNegativeUnits the action null-rate
  /// estimate is fed from every Nth clip of the stream, unconditionally —
  /// clips that reach the action stage during query evaluation are
  /// conditioned on the object predicates and over-represent the action
  /// (objects correlate with it), so they would bias the null estimate
  /// upward. When the sampled clip was short-circuited, the recognizer runs
  /// on it anyway and the inference is charged to the run. 0 disables
  /// sampling (the estimator then keeps its prior). Smaller periods adapt
  /// faster at more inference cost; see bench_ablation_svaqd.
  int64_t action_null_sampling_period = 4;
  /// Result-sequence assembly: bridge gaps of up to this many negative
  /// clips between positive clips (temporal gap filling, a standard
  /// smoothing in temporal detection). Bursty model dropouts can knock a
  /// single clip below its quota mid-sequence and fragment one true
  /// sequence into several, which costs both precision and recall under
  /// IoU matching. 0 reproduces the paper's strict Eq. 4 merge exactly;
  /// ablated in bench_ablation_svaqd.
  int64_t merge_gap_clips = 1;
  /// Footnote 7 extension: derive the action critical values from a
  /// first-order Markov model of the prediction stream (exact FMCE
  /// embedding) instead of i.i.d. trials. Bursty false positives then
  /// demand a larger quota. Requires shots_per_clip <= 20; engages once
  /// enough transition data has accumulated. Ablated in
  /// bench_ablation_svaqd.
  bool markov_action_null = false;
  /// Footnote 5 future work: which model stage a clip evaluates first. The
  /// stage that fails short-circuits the other stage's inference, so the
  /// more selective stage should go first. kAdaptive tracks per-stage pass
  /// rates and measured per-unit inference costs and picks the cheaper
  /// expected order clip by clip. Ablated in bench_ablation_svaqd.
  enum class PredicateOrder { kObjectsFirst, kActionsFirst, kAdaptive };
  PredicateOrder predicate_order = PredicateOrder::kObjectsFirst;

  Status Validate() const;
};

}  // namespace svq::core

#endif  // SVQ_CORE_QUERY_H_
