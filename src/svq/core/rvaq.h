#ifndef SVQ_CORE_RVAQ_H_
#define SVQ_CORE_RVAQ_H_

#include <string>
#include <vector>

#include "svq/cache/cache_options.h"
#include "svq/common/execution_context.h"
#include "svq/common/result.h"
#include "svq/core/ingest.h"
#include "svq/core/query.h"
#include "svq/core/scoring.h"
#include "svq/runtime/runtime_options.h"
#include "svq/storage/access_stats.h"
#include "svq/video/interval_set.h"

namespace svq::cache {
class SnapshotCache;
}  // namespace svq::cache

namespace svq::core {

/// One ranked result sequence (clip domain, half-open).
struct RankedSequence {
  video::Interval clips;
  /// Certified bounds at termination; equal when the score is exact.
  double lower_bound = 0.0;
  double upper_bound = 0.0;

  double length() const { return static_cast<double>(clips.length()); }
};

/// Per-run accounting for the offline algorithms.
struct OfflineRunStats {
  storage::StorageMetrics storage;
  /// Virtual disk time under the run's cost model (ms).
  double virtual_ms = 0.0;
  /// Wall-clock time of the algorithm logic (ms).
  double algorithm_ms = 0.0;
  /// TBClip invocations (RVAQ variants only).
  int64_t iterator_calls = 0;
  /// Size of the candidate set P_q actually swept: sequences (intervals)
  /// and the clips they cover. The planner compares these actuals against
  /// its estimates (EXPLAIN ANALYZE, svq_plan_estimate_* counters).
  int64_t candidate_sequences = 0;
  int64_t candidate_clips = 0;
  /// Thread-pool accounting when the run fanned out (threads_used == 1 and
  /// zero tasks on the sequential reference path).
  runtime::RuntimeStats runtime;

  /// Field-by-field aggregation; the single place that knows every field,
  /// used by both the sequential loop and the parallel reduction.
  OfflineRunStats& Merge(const OfflineRunStats& other) {
    storage.Merge(other.storage);
    virtual_ms += other.virtual_ms;
    algorithm_ms += other.algorithm_ms;
    iterator_calls += other.iterator_calls;
    candidate_sequences += other.candidate_sequences;
    candidate_clips += other.candidate_clips;
    runtime.Merge(other.runtime);
    return *this;
  }
};

struct TopKResult {
  /// At most K sequences, highest score first.
  std::vector<RankedSequence> sequences;
  OfflineRunStats stats;
};

/// One step of the candidate interval sweep: intersect the posting list of
/// `label` (an action or object type) into the running candidate set. The
/// planner emits a most-selective-first sequence of these; an empty
/// sweep_order means the canonical statement order.
struct SweepStep {
  std::string label;
  bool is_action = false;

  friend bool operator==(const SweepStep&, const SweepStep&) = default;
};

/// Options for RVAQ and its variants.
struct OfflineOptions {
  /// The C_skip mechanism of §4.3; disabling it yields the paper's
  /// RVAQ-noSkip baseline.
  bool enable_skip = true;
  /// Resolve exact scores for the final top-K (the paper's measured
  /// configuration: "the query requires accessing all the clips of top-K
  /// sequences to obtain their exact scores"). When false, RVAQ stops as
  /// soon as the top-K *set* is certified and reports bounds.
  bool compute_exact_scores = true;
  /// Cost model used to convert access counts to virtual runtime.
  storage::DiskCostModel cost_model;
  /// Parallel-execution knobs (repository fan-out). The default of one
  /// thread is the sequential reference path.
  runtime::RuntimeOptions runtime;
  /// Per-statement cache toggles (only effective when `snapshot_cache` is
  /// set).
  svq::cache::CachePolicy cache;
  /// The pinned snapshot's cache, set by the Execute*On entry points when
  /// the engine runs with caching enabled. Borrowed: the caller holds the
  /// snapshot pin for the duration of the run. When null (the default, and
  /// every direct RunRvaq caller), execution is byte-for-byte the
  /// historical uncached path.
  svq::cache::SnapshotCache* snapshot_cache = nullptr;
  /// Planner-chosen intersection order for the candidate sweep. Must cover
  /// exactly the statement's predicates (primary action + extras +
  /// objects) when non-empty; empty keeps the canonical statement order.
  /// Intersection is commutative on the clip domain, so the resulting
  /// candidate set — and therefore the query result — is identical for
  /// every order; only the sweep's intermediate work changes. When the
  /// candidate cache is active the sweep runs in canonical order instead
  /// so prefix keys keep their sharing (docs/planner.md).
  std::vector<SweepStep> sweep_order;
};

/// Computes the candidate result sequences `P_q` of query `q` by interval
/// sweep over the materialized individual sequences (paper Eq. 12). Empty
/// when a queried type has no positive clips.
Result<video::IntervalSet> CandidateSequences(const IngestedVideo& ingested,
                                              const Query& query);

/// CandidateSequences with an explicit intersection order. `order` must be
/// a permutation of the query's predicates (validated: InvalidArgument on
/// mismatch); an empty order falls back to the canonical statement order.
/// The result is identical to CandidateSequences for every legal order.
Result<video::IntervalSet> CandidateSequencesOrdered(
    const IngestedVideo& ingested, const Query& query,
    const std::vector<SweepStep>& order);

/// Algorithm RVAQ (paper Alg. 4): certified top-K result sequences via
/// progressive upper/lower bound refinement over the TBClip iterator with
/// conclusive-skip pruning. `k` must be >= 1. `context` (deadline /
/// cancellation) is polled once per iterator step; an expired context
/// returns Cancelled/DeadlineExceeded instead of a result.
Result<TopKResult> RunRvaq(const IngestedVideo& ingested, const Query& query,
                           int k, const SequenceScoring& scoring,
                           const OfflineOptions& options,
                           const ExecutionContext& context = {});

}  // namespace svq::core

#endif  // SVQ_CORE_RVAQ_H_
