#ifndef SVQ_CORE_RVAQ_H_
#define SVQ_CORE_RVAQ_H_

#include <vector>

#include "svq/cache/cache_options.h"
#include "svq/common/execution_context.h"
#include "svq/common/result.h"
#include "svq/core/ingest.h"
#include "svq/core/query.h"
#include "svq/core/scoring.h"
#include "svq/runtime/runtime_options.h"
#include "svq/storage/access_stats.h"
#include "svq/video/interval_set.h"

namespace svq::cache {
class SnapshotCache;
}  // namespace svq::cache

namespace svq::core {

/// One ranked result sequence (clip domain, half-open).
struct RankedSequence {
  video::Interval clips;
  /// Certified bounds at termination; equal when the score is exact.
  double lower_bound = 0.0;
  double upper_bound = 0.0;

  double length() const { return static_cast<double>(clips.length()); }
};

/// Per-run accounting for the offline algorithms.
struct OfflineRunStats {
  storage::StorageMetrics storage;
  /// Virtual disk time under the run's cost model (ms).
  double virtual_ms = 0.0;
  /// Wall-clock time of the algorithm logic (ms).
  double algorithm_ms = 0.0;
  /// TBClip invocations (RVAQ variants only).
  int64_t iterator_calls = 0;
  /// Thread-pool accounting when the run fanned out (threads_used == 1 and
  /// zero tasks on the sequential reference path).
  runtime::RuntimeStats runtime;

  /// Field-by-field aggregation; the single place that knows every field,
  /// used by both the sequential loop and the parallel reduction.
  OfflineRunStats& Merge(const OfflineRunStats& other) {
    storage.Merge(other.storage);
    virtual_ms += other.virtual_ms;
    algorithm_ms += other.algorithm_ms;
    iterator_calls += other.iterator_calls;
    runtime.Merge(other.runtime);
    return *this;
  }
};

struct TopKResult {
  /// At most K sequences, highest score first.
  std::vector<RankedSequence> sequences;
  OfflineRunStats stats;
};

/// Options for RVAQ and its variants.
struct OfflineOptions {
  /// The C_skip mechanism of §4.3; disabling it yields the paper's
  /// RVAQ-noSkip baseline.
  bool enable_skip = true;
  /// Resolve exact scores for the final top-K (the paper's measured
  /// configuration: "the query requires accessing all the clips of top-K
  /// sequences to obtain their exact scores"). When false, RVAQ stops as
  /// soon as the top-K *set* is certified and reports bounds.
  bool compute_exact_scores = true;
  /// Cost model used to convert access counts to virtual runtime.
  storage::DiskCostModel cost_model;
  /// Parallel-execution knobs (repository fan-out). The default of one
  /// thread is the sequential reference path.
  runtime::RuntimeOptions runtime;
  /// Per-statement cache toggles (only effective when `snapshot_cache` is
  /// set).
  svq::cache::CachePolicy cache;
  /// The pinned snapshot's cache, set by the Execute*On entry points when
  /// the engine runs with caching enabled. Borrowed: the caller holds the
  /// snapshot pin for the duration of the run. When null (the default, and
  /// every direct RunRvaq caller), execution is byte-for-byte the
  /// historical uncached path.
  svq::cache::SnapshotCache* snapshot_cache = nullptr;
};

/// Computes the candidate result sequences `P_q` of query `q` by interval
/// sweep over the materialized individual sequences (paper Eq. 12). Empty
/// when a queried type has no positive clips.
Result<video::IntervalSet> CandidateSequences(const IngestedVideo& ingested,
                                              const Query& query);

/// Algorithm RVAQ (paper Alg. 4): certified top-K result sequences via
/// progressive upper/lower bound refinement over the TBClip iterator with
/// conclusive-skip pruning. `k` must be >= 1. `context` (deadline /
/// cancellation) is polled once per iterator step; an expired context
/// returns Cancelled/DeadlineExceeded instead of a result.
Result<TopKResult> RunRvaq(const IngestedVideo& ingested, const Query& query,
                           int k, const SequenceScoring& scoring,
                           const OfflineOptions& options,
                           const ExecutionContext& context = {});

}  // namespace svq::core

#endif  // SVQ_CORE_RVAQ_H_
