#ifndef SVQ_CORE_CLIP_INDICATOR_H_
#define SVQ_CORE_CLIP_INDICATOR_H_

#include <string>
#include <vector>

#include "svq/common/result.h"
#include "svq/core/query.h"
#include "svq/models/action_recognizer.h"
#include "svq/models/object_detector.h"
#include "svq/video/video_stream.h"

namespace svq::core {

/// One frame-granularity query predicate, normalized from the query's
/// conjunctive objects, any-of disjunction groups (footnote 4), and spatial
/// relationships (footnote 2). All are evaluated from the same per-frame
/// detector output and produce a per-frame event stream for the scan
/// statistics.
struct FramePredicate {
  enum class Kind { kObject, kAnyOf, kRelationship };
  Kind kind = Kind::kObject;
  /// The conjunctive label (kObject) or the disjunction members (kAnyOf).
  std::vector<std::string> labels;
  /// The spatial constraint (kRelationship).
  Relationship relationship;

  std::string Name() const;
};

/// The query's frame predicates in evaluation order: objects, disjunction
/// groups, relationships.
std::vector<FramePredicate> FramePredicatesOf(const Query& query);

/// Outcome of evaluating one clip against a query (paper Algorithm 2,
/// generalized to the footnote extensions).
///
/// Frame predicates are decided in order with short-circuiting: once a
/// predicate's count falls short of its critical value, the action
/// recognizer pass is skipped for this clip (Alg. 2 lines 6-8). The
/// per-occurrence-unit event streams of everything that was evaluated are
/// returned so SVAQD can feed its background-probability estimators.
struct ClipEvaluation {
  /// `1_q^{(c)}`: the clip satisfies every query predicate (Eq. 3).
  bool positive = false;
  /// Number of frame predicates decided before a short-circuit.
  int evaluated_frame_predicates = 0;
  /// Whether the action recognizer ran on this clip.
  bool actions_evaluated = false;
  /// Positive-prediction counts per decided frame predicate.
  std::vector<int> frame_counts;
  /// Per-frame indicators for each decided frame predicate.
  std::vector<std::vector<bool>> frame_events;
  /// Positive-prediction counts per action (primary first; valid when
  /// actions_evaluated).
  std::vector<int> action_counts;
  /// Per-shot indicators per action.
  std::vector<std::vector<bool>> action_events;
};

/// Stage-ordering controls for one clip evaluation (paper footnote 5).
struct EvalOptions {
  /// Run the recognizer stage before the detector stage; a failing action
  /// then short-circuits the (usually costlier) detector pass.
  bool actions_first = false;
  /// Evaluate both stages regardless of outcomes (used on SVAQD's periodic
  /// background-sampling ticks so every estimator sees unbiased data).
  bool disable_short_circuit = false;
};

/// Evaluates Algorithm 2 on `clip`. `frame_kcrits` must have one entry per
/// frame predicate of the query (see FramePredicatesOf); `action_kcrits`
/// one per action (primary first).
/// Errors: propagated model failures; InvalidArgument on size mismatch.
Result<ClipEvaluation> EvaluateClip(const video::ClipRef& clip,
                                    const Query& query,
                                    const OnlineConfig& config,
                                    const std::vector<int>& frame_kcrits,
                                    const std::vector<int>& action_kcrits,
                                    models::ObjectDetector* detector,
                                    models::ActionRecognizer* recognizer,
                                    const EvalOptions& options = {});

}  // namespace svq::core

#endif  // SVQ_CORE_CLIP_INDICATOR_H_
