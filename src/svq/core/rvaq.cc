#include "svq/core/rvaq.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "svq/cache/fingerprint.h"
#include "svq/cache/query_cache.h"
#include "svq/core/tbclip.h"
#include "svq/observability/trace.h"

namespace svq::core {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Mutable per-sequence bound state (paper §4.3). We maintain one merged
/// processed set per sequence instead of separate top/bottom sets: every
/// processed clip contributes its exact score, and the `remaining`
/// unprocessed clips are bracketed by [s_btm, s_top]. This is never looser
/// than the paper's split accounting, so the stopping condition fires no
/// later.
struct SequenceState {
  video::Interval clips;
  int64_t remaining = 0;
  double exact_sum = 0.0;  // ⊙ over processed clip scores
  double upper = kInf;     // B_up
  double lower = 0.0;      // B_lo
  bool excluded = false;   // conclusively outside the top-K
};

/// Binary search for the sequence containing `clip`; -1 when none.
int64_t FindSequence(const std::vector<SequenceState>& seqs,
                     video::ClipIndex clip) {
  auto it = std::upper_bound(seqs.begin(), seqs.end(), clip,
                             [](video::ClipIndex c, const SequenceState& s) {
                               return c < s.clips.begin;
                             });
  if (it == seqs.begin()) return -1;
  --it;
  if (it->clips.Contains(clip)) return it - seqs.begin();
  return -1;
}

}  // namespace

Result<video::IntervalSet> CandidateSequences(const IngestedVideo& ingested,
                                              const Query& query) {
  SVQ_RETURN_NOT_OK(query.Validate());
  if (!query.relationships.empty() || !query.object_disjunctions.empty()) {
    // Relationship and disjunctive predicates are not materialized by the
    // query-independent ingestion phase (they would need per-pair /
    // per-group metadata); they are supported online.
    return Status::Unimplemented(
        "offline queries support conjunctive objects and actions only");
  }
  const video::IntervalSet* action = ingested.ActionSequences(query.action);
  if (action == nullptr) return video::IntervalSet();
  video::IntervalSet result = *action;
  for (const std::string& extra : query.extra_actions) {
    const video::IntervalSet* p = ingested.ActionSequences(extra);
    if (p == nullptr) return video::IntervalSet();
    result = video::IntervalSet::Intersect(result, *p);
    if (result.empty()) return result;
  }
  for (const std::string& object : query.objects) {
    const video::IntervalSet* p = ingested.ObjectSequences(object);
    if (p == nullptr) return video::IntervalSet();
    result = video::IntervalSet::Intersect(result, *p);
    if (result.empty()) break;
  }
  return result;
}

Result<video::IntervalSet> CandidateSequencesOrdered(
    const IngestedVideo& ingested, const Query& query,
    const std::vector<SweepStep>& order) {
  if (order.empty()) return CandidateSequences(ingested, query);
  SVQ_RETURN_NOT_OK(query.Validate());
  if (!query.relationships.empty() || !query.object_disjunctions.empty()) {
    return Status::Unimplemented(
        "offline queries support conjunctive objects and actions only");
  }
  // The order must be a permutation of the statement's predicates: a
  // dropped predicate would silently widen the candidate set, an invented
  // one would silently narrow it. Count-matching each (label, kind) pair
  // catches both directions, including duplicates.
  auto count_in_query = [&](const SweepStep& step) {
    int64_t n = 0;
    if (step.is_action) {
      n += step.label == query.action ? 1 : 0;
      n += std::count(query.extra_actions.begin(), query.extra_actions.end(),
                      step.label);
    } else {
      n += std::count(query.objects.begin(), query.objects.end(), step.label);
    }
    return n;
  };
  const size_t expected =
      1 + query.extra_actions.size() + query.objects.size();
  if (order.size() != expected) {
    return Status::InvalidArgument(
        "sweep order must cover every query predicate exactly once");
  }
  for (const SweepStep& step : order) {
    const int64_t in_query = count_in_query(step);
    const int64_t in_order = std::count(order.begin(), order.end(), step);
    if (in_query == 0 || in_order != in_query) {
      return Status::InvalidArgument("sweep order step is not a predicate: " +
                                     step.label);
    }
  }

  video::IntervalSet result;
  bool first = true;
  for (const SweepStep& step : order) {
    const video::IntervalSet* p =
        step.is_action ? ingested.ActionSequences(step.label)
                       : ingested.ObjectSequences(step.label);
    if (p == nullptr) return video::IntervalSet();
    if (first) {
      result = *p;
      first = false;
    } else {
      result = video::IntervalSet::Intersect(result, *p);
    }
    if (result.empty()) return result;
  }
  return result;
}

namespace {

/// CandidateSequences with prefix-shared memoization against the pinned
/// snapshot's cache (docs/caching.md tier 1). Labels are canonicalized —
/// primary action, then sorted extra actions, then sorted objects — before
/// keying: IntervalSet::Intersect is commutative and associative on the
/// integer clip domain, so every order produces the same candidate set, and
/// one canonical order both makes label-permuted statements share entries
/// and lets `{a, o1, o2}` extend a cached `{a, o1}` instead of re-sweeping
/// from scratch. Falls back to the plain computation when the statement
/// opts out or the snapshot carries no cache.
Result<video::IntervalSet> CandidatesWithCache(
    const IngestedVideo& ingested, const Query& query,
    const OfflineOptions& options, const ExecutionContext& context) {
  svq::cache::SnapshotCache* cache = options.snapshot_cache;
  if (cache == nullptr || !options.cache.use_candidate_cache) {
    // Uncached path: honor the planner's most-selective-first order (no-op
    // when empty). The cached path below deliberately ignores sweep_order:
    // its prefix keys are canonical so label-permuted statements share
    // entries, and letting per-snapshot statistics reorder them would
    // fragment that sharing for no gain — a cached prefix costs one lookup
    // regardless of selectivity (docs/planner.md).
    return CandidateSequencesOrdered(ingested, query, options.sweep_order);
  }
  SVQ_RETURN_NOT_OK(query.Validate());
  if (!query.relationships.empty() || !query.object_disjunctions.empty()) {
    return Status::Unimplemented(
        "offline queries support conjunctive objects and actions only");
  }

  struct Step {
    const char* tag;
    const std::string* label;
    bool is_action;
  };
  std::vector<std::string> extras = query.extra_actions;
  std::sort(extras.begin(), extras.end());
  std::vector<std::string> objects = query.objects;
  std::sort(objects.begin(), objects.end());
  std::vector<Step> steps;
  steps.push_back({"act", &query.action, true});
  for (const std::string& extra : extras) {
    steps.push_back({"xa", &extra, true});
  }
  for (const std::string& object : objects) {
    steps.push_back({"obj", &object, false});
  }

  // Rolling prefix fingerprints: keys[i] covers the video identity plus
  // steps[0..i].
  std::vector<uint64_t> keys(steps.size());
  svq::cache::Fingerprint fp;
  fp.Mix("cand").Mix(static_cast<uint64_t>(ingested.id)).Mix(ingested.name);
  for (size_t i = 0; i < steps.size(); ++i) {
    fp.Mix(std::string_view(steps[i].tag)).Mix(*steps[i].label);
    keys[i] = fp.value();
  }

  // Longest cached prefix wins; everything after it is computed and
  // published so the next statement starts one step further along.
  std::shared_ptr<const video::IntervalSet> base;
  size_t next_step = 0;
  for (size_t i = steps.size(); i-- > 0;) {
    if (auto found = cache->LookupCandidates(keys[i])) {
      base = std::move(*found);
      next_step = i + 1;
      break;
    }
  }

  video::IntervalSet result;
  if (base != nullptr) {
    if (next_step == steps.size()) {
      observability::TraceSpan hit_span(context.trace(),
                                        "cache.candidate_hit");
      return *base;
    }
    result = *base;
  } else {
    const video::IntervalSet* action = ingested.ActionSequences(query.action);
    if (action != nullptr) result = *action;
    cache->InsertCandidates(
        keys[0], std::make_shared<const video::IntervalSet>(result));
    next_step = 1;
  }
  for (size_t i = next_step; i < steps.size(); ++i) {
    // Empty is absorbing under intersection: keep publishing the longer
    // (still empty) prefixes without touching the sequence sets again.
    if (!result.empty()) {
      const video::IntervalSet* p =
          steps[i].is_action ? ingested.ActionSequences(*steps[i].label)
                             : ingested.ObjectSequences(*steps[i].label);
      result = p == nullptr ? video::IntervalSet()
                            : video::IntervalSet::Intersect(result, *p);
    }
    cache->InsertCandidates(
        keys[i], std::make_shared<const video::IntervalSet>(result));
  }
  return result;
}

}  // namespace

Result<TopKResult> RunRvaq(const IngestedVideo& ingested, const Query& query,
                           int k, const SequenceScoring& scoring,
                           const OfflineOptions& options,
                           const ExecutionContext& context) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  SVQ_RETURN_NOT_OK(context.Check());
  const double t0 = NowMs();
  TopKResult result;

  SVQ_ASSIGN_OR_RETURN(
      const video::IntervalSet candidates,
      CandidatesWithCache(ingested, query, options, context));
  result.stats.candidate_sequences =
      static_cast<int64_t>(candidates.intervals().size());
  result.stats.candidate_clips = candidates.TotalLength();
  if (candidates.empty()) {
    result.stats.algorithm_ms = NowMs() - t0;
    return result;
  }

  std::vector<const storage::ScoreTable*> object_tables;
  for (const std::string& object : query.objects) {
    const storage::ScoreTable* table = ingested.ObjectTable(object);
    if (table == nullptr) {
      return Status::Internal("positive sequences without a score table: " +
                              object);
    }
    object_tables.push_back(table);
  }
  // Extra actions (footnote 3) score like additional additive predicates:
  // their tables join the g's summed side.
  for (const std::string& extra : query.extra_actions) {
    const storage::ScoreTable* table = ingested.ActionTable(extra);
    if (table == nullptr) {
      return Status::Internal("positive sequences without a score table: " +
                              extra);
    }
    object_tables.push_back(table);
  }
  const storage::ScoreTable* action_table = ingested.ActionTable(query.action);
  if (action_table == nullptr) {
    return Status::Internal("positive sequences without a score table: " +
                            query.action);
  }

  std::vector<SequenceState> seqs;
  for (const video::Interval& interval : candidates.intervals()) {
    SequenceState state;
    state.clips = interval;
    state.remaining = interval.length();
    state.exact_sum = scoring.AggregateIdentity();
    seqs.push_back(state);
  }
  const size_t select_k = std::min<size_t>(static_cast<size_t>(k),
                                           seqs.size());

  TbClipIterator iterator(object_tables, action_table, &scoring, &candidates,
                          options.enable_skip, &result.stats.storage,
                          TbClipIterator::Emission::kBounded);
  // The iterator polls the context on every Next(), which bounds how much
  // work an expired query can still do by one step's table accesses.
  iterator.set_context(&context);

  double s_top = kInf;  // certified upper bound on unprocessed clip scores
  double s_btm = 0.0;   // certified lower bound on unprocessed clip scores
  std::vector<size_t> order(seqs.size());
  std::iota(order.begin(), order.end(), 0);

  for (;;) {
    auto next = iterator.Next();
    if (!next.ok()) return next.status();
    if (!next->has_value()) break;  // every candidate clip processed
    const TbClipStep& step = **next;

    auto absorb = [&](const TbClipItem& item) {
      const int64_t idx = FindSequence(seqs, item.clip);
      if (idx < 0) return;  // defensive; iterator only emits candidates
      SequenceState& seq = seqs[static_cast<size_t>(idx)];
      --seq.remaining;
      seq.exact_sum = scoring.Aggregate(seq.exact_sum, item.score);
    };
    absorb(step.top);
    if (step.bottom.clip != step.top.clip) absorb(step.bottom);
    s_top = step.upper_bound;
    s_btm = std::max(s_btm, step.lower_bound);

    // Refresh bounds (Eq. 13/14), clip by clip: processed clips live in
    // exact_sum; clips the iterator has already resolved (their random
    // accesses are paid) contribute their exact scores; only genuinely
    // unseen clips fall back to the certified brackets [s_btm, s_top].
    // Excluded sequences are frozen — their clips are skipped, so further
    // cursor movement says nothing about them.
    for (SequenceState& seq : seqs) {
      if (seq.excluded) continue;
      if (seq.remaining == 0) {
        seq.upper = seq.lower = seq.exact_sum;
        continue;
      }
      double upper = seq.exact_sum;
      double lower = seq.exact_sum;
      bool upper_unbounded = false;
      for (video::ClipIndex c = seq.clips.begin; c < seq.clips.end; ++c) {
        if (iterator.IsProcessed(c)) continue;
        if (const std::optional<double> cached = iterator.ResolvedScore(c)) {
          upper = scoring.Aggregate(upper, scoring.Replicate(*cached, 1));
          lower = scoring.Aggregate(lower, scoring.Replicate(*cached, 1));
          continue;
        }
        if (std::isinf(s_top)) {
          upper_unbounded = true;
        } else {
          upper = scoring.Aggregate(upper, scoring.Replicate(s_top, 1));
        }
        lower = scoring.Aggregate(lower, scoring.Replicate(s_btm, 1));
      }
      seq.upper = upper_unbounded ? kInf : upper;
      seq.lower = lower;
    }

    // Current top-K selection by lower bound (the PQ_lo^K of the paper).
    std::partial_sort(order.begin(), order.begin() + select_k, order.end(),
                      [&](size_t a, size_t b) {
                        if (seqs[a].lower != seqs[b].lower) {
                          return seqs[a].lower > seqs[b].lower;
                        }
                        return a < b;
                      });
    const double b_lo_k = seqs[order[select_k - 1]].lower;
    double b_up_not_k = -kInf;
    for (size_t i = select_k; i < order.size(); ++i) {
      b_up_not_k = std::max(b_up_not_k, seqs[order[i]].upper);
    }

    // Conclusive exclusions feed the skip set (§4.3).
    if (options.enable_skip) {
      for (size_t i = select_k; i < order.size(); ++i) {
        SequenceState& seq = seqs[order[i]];
        if (!seq.excluded && seq.upper < b_lo_k) {
          seq.excluded = true;
          iterator.AddSkipRange(seq.clips);
        }
      }
      if (!options.compute_exact_scores) {
        // Conclusive inclusions may be skipped too when exact scores are
        // not required (Alg. 4 lines 19-20).
        for (size_t i = 0; i < select_k; ++i) {
          SequenceState& seq = seqs[order[i]];
          if (!seq.excluded && seq.lower > b_up_not_k && seq.remaining > 0) {
            seq.excluded = true;  // reuse flag: no further refinement needed
            iterator.AddSkipRange(seq.clips);
          }
        }
      }
    }

    // Stopping condition (Eq. 15), plus exactness of the selected K when
    // exact scores are requested.
    if (b_lo_k >= b_up_not_k) {
      if (!options.compute_exact_scores) break;
      // A sequence's score is exact once its bounds meet (every clip either
      // processed or resolved by the iterator).
      bool all_exact = true;
      for (size_t i = 0; i < select_k; ++i) {
        const SequenceState& seq = seqs[order[i]];
        if (seq.upper - seq.lower > 1e-9 * std::max(1.0, seq.upper)) {
          all_exact = false;
          break;
        }
      }
      if (all_exact) break;
    }
  }

  // Final selection: exact scores where available, lower bounds otherwise.
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (seqs[a].lower != seqs[b].lower) return seqs[a].lower > seqs[b].lower;
    return a < b;
  });
  for (size_t i = 0; i < select_k; ++i) {
    const SequenceState& seq = seqs[order[i]];
    RankedSequence ranked;
    ranked.clips = seq.clips;
    ranked.lower_bound = seq.lower;
    ranked.upper_bound = seq.upper;
    result.sequences.push_back(ranked);
  }

  result.stats.iterator_calls = iterator.calls();
  result.stats.virtual_ms =
      result.stats.storage.VirtualMs(options.cost_model);
  result.stats.algorithm_ms = NowMs() - t0;
  return result;
}

}  // namespace svq::core
