#ifndef SVQ_CORE_TBCLIP_H_
#define SVQ_CORE_TBCLIP_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "svq/common/execution_context.h"
#include "svq/common/result.h"
#include "svq/core/scoring.h"
#include "svq/storage/score_table.h"
#include "svq/video/interval_set.h"

namespace svq::core {

/// A clip delivered by the iterator with its full query score `S_q^{(c)}`.
struct TbClipItem {
  video::ClipIndex clip = -1;
  double score = 0.0;
};

/// One step of the iterator: the delivered top/bottom clips plus certified
/// brackets for every clip not yet processed (used by RVAQ's Eq. 13/14
/// bound maintenance).
struct TbClipStep {
  TbClipItem top;
  TbClipItem bottom;
  /// Every unprocessed candidate clip scores at most this.
  double upper_bound = 0.0;
  /// Every unprocessed candidate clip scores at least this.
  double lower_bound = 0.0;
};

/// The TBClip iterator of paper Algorithm 5: incrementally delivers the
/// highest- and lowest-scoring *unprocessed* candidate clips by sorted
/// access in parallel over the query's clip score tables (top and bottom
/// cursors) plus random accesses to complete scores of newly seen clips.
///
/// Differences from the paper's pseudo-code, both in its favor:
///  - newly seen clips are scored once and cached (the pseudo-code re-reads
///    scores of all seen clips per invocation, which would inflate random
///    accesses for no benefit);
///  - a clip is emitted as `c_top` only when its cached score reaches the
///    threshold-algorithm bound `g(cursor scores)`, which guarantees it
///    really is the maximum-score unprocessed candidate (and symmetrically
///    for `c_btm`). This makes RVAQ's bound maintenance sound; Algorithm 5
///    as written can emit a locally-best clip early.
///
/// Skipping: clips outside the candidate set `C(P_q)` (the initial
/// `C_skip`, part of setup) and clips in ranges added via AddSkipRange (the
/// *dynamic* skip mechanism of paper §4.3) are seen at most once during
/// sorted access and never charged random accesses. `skip_enabled = false`
/// (the RVAQ-noSkip baseline) disables only the dynamic mechanism —
/// AddSkipRange becomes a no-op and conclusively excluded sequences keep
/// being refined at full cost.
class TbClipIterator {
 public:
  /// Emission discipline. Both are sound for RVAQ; they trade sorted
  /// accesses for emission-order guarantees.
  enum class Emission {
    /// Deliver `c_top`/`c_btm` only once the TA threshold certifies them as
    /// the extreme unprocessed candidates: tops descend, bottoms ascend.
    /// Costs extra sorted accesses walking the cursors down/up.
    kCertified,
    /// The paper's Algorithm 5 discipline: advance each cursor one row per
    /// invocation and deliver the best/worst *seen* unprocessed clip; the
    /// certified information lives in the returned upper/lower bounds.
    kBounded,
  };

  /// `object_tables[i]` corresponds to query object i; all tables non-null.
  /// `candidates` is C(P_q) in the clip domain; borrowed, must outlive the
  /// iterator. Accesses are charged to `metrics`.
  TbClipIterator(std::vector<const storage::ScoreTable*> object_tables,
                 const storage::ScoreTable* action_table,
                 const SequenceScoring* scoring,
                 const video::IntervalSet* candidates, bool skip_enabled,
                 storage::StorageMetrics* metrics,
                 Emission emission = Emission::kCertified);

  /// Marks a clip range as conclusively irrelevant.
  void AddSkipRange(video::Interval clips);

  /// Attaches a per-query execution context; Next() polls it and returns
  /// Cancelled/DeadlineExceeded before paying any further table accesses.
  /// Borrowed; must outlive the iterator. Null detaches.
  void set_context(const ExecutionContext* context) { context_ = context; }

  /// Exact score of a clip already resolved by the iterator (its random
  /// accesses are paid), whether or not it has been emitted; nullopt when
  /// the clip has not been resolved yet. Lets callers tighten their bounds
  /// for free.
  std::optional<double> ResolvedScore(video::ClipIndex clip) const {
    auto it = score_cache_.find(clip);
    if (it == score_cache_.end()) return std::nullopt;
    return it->second;
  }

  /// Whether the clip has been emitted (as a top or bottom) already.
  bool IsProcessed(video::ClipIndex clip) const {
    return processed_.contains(clip);
  }

  /// Next step; top and bottom refer to previously unprocessed clips and
  /// are marked processed by the call. When only one unprocessed clip
  /// remains, top == bottom. Returns nullopt when all candidates are
  /// processed.
  Result<std::optional<TbClipStep>> Next();

  int64_t calls() const { return calls_; }

 private:
  struct MaxOrder {
    bool operator()(const TbClipItem& a, const TbClipItem& b) const {
      if (a.score != b.score) return a.score < b.score;
      return a.clip < b.clip;
    }
  };
  struct MinOrder {
    bool operator()(const TbClipItem& a, const TbClipItem& b) const {
      if (a.score != b.score) return a.score > b.score;
      return a.clip > b.clip;
    }
  };

  bool IsSkipped(video::ClipIndex clip) const;
  bool IsCandidate(video::ClipIndex clip) const;
  /// Performs random accesses on all tables for `clip`, caches the full
  /// score, and inserts it into both heaps.
  void ScoreClip(video::ClipIndex clip);
  /// Advances the top (descending) cursors of all tables one row.
  Status AdvanceTop();
  /// Advances the bottom (ascending) cursors of all tables one row.
  Status AdvanceBottom();
  /// Upper bound on the score of any clip not yet seen by any cursor.
  double TopThreshold() const;
  /// Lower bound on the score of any clip not yet seen by any cursor.
  double BottomThreshold() const;
  /// Pops the best unprocessed, unskipped item; nullopt when heap empty.
  std::optional<TbClipItem> PeekTop();
  std::optional<TbClipItem> PeekBottom();

  std::vector<storage::TableReader> readers_;  // objects..., action last
  const ExecutionContext* context_ = nullptr;
  const SequenceScoring* scoring_;
  const video::IntervalSet* candidates_;
  bool skip_enabled_;
  Emission emission_ = Emission::kCertified;
  /// Running certified brackets for unprocessed clips (monotone).
  double running_upper_ = std::numeric_limits<double>::infinity();
  double running_lower_ = 0.0;

  video::IntervalSet skipped_;
  std::unordered_set<video::ClipIndex> processed_;
  std::unordered_map<video::ClipIndex, double> score_cache_;

  std::priority_queue<TbClipItem, std::vector<TbClipItem>, MaxOrder>
      top_heap_;
  std::priority_queue<TbClipItem, std::vector<TbClipItem>, MinOrder>
      btm_heap_;

  std::vector<int64_t> top_rank_;
  std::vector<int64_t> btm_rank_;
  std::vector<double> top_cursor_score_;
  std::vector<double> btm_cursor_score_;
  bool top_exhausted_ = false;
  bool btm_exhausted_ = false;
  int64_t remaining_candidates_ = 0;
  int64_t calls_ = 0;
};

}  // namespace svq::core

#endif  // SVQ_CORE_TBCLIP_H_
