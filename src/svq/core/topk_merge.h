#ifndef SVQ_CORE_TOPK_MERGE_H_
#define SVQ_CORE_TOPK_MERGE_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "svq/core/repository.h"

namespace svq::core {

/// Score-ordered top-K merge shared by the repository parallel fan-out
/// (svq/core/repository.cc) and the cluster router's cross-shard gather
/// (svq/cluster/router.cc): sorts `entries` by descending score, breaking
/// exact score ties with the caller's strict-weak `tie_less`, then truncates
/// to the best `k`. The tie-break must be a total order over the input for
/// the merge to be deterministic — both call sites derive it from stable
/// identifiers (video id / shard index) plus position.
template <typename Entry, typename ScoreOf, typename TieLess>
void SortedTopKMerge(std::vector<Entry>* entries, int k, ScoreOf score_of,
                     TieLess tie_less) {
  std::sort(entries->begin(), entries->end(),
            [&](const Entry& a, const Entry& b) {
              const double score_a = score_of(a);
              const double score_b = score_of(b);
              if (score_a != score_b) return score_a > score_b;
              return tie_less(a, b);
            });
  if (k >= 0 && entries->size() > static_cast<size_t>(k)) {
    entries->resize(static_cast<size_t>(k));
  }
}

/// The repository fan-out's instantiation: certified per-video results rank
/// globally by their (exact or lower-bound) scores; ties break by video then
/// clip position for stability.
inline void MergeRepositoryTopK(std::vector<RepositoryEntry>* entries,
                                int k) {
  SortedTopKMerge(
      entries, k,
      [](const RepositoryEntry& e) { return e.sequence.lower_bound; },
      [](const RepositoryEntry& a, const RepositoryEntry& b) {
        if (a.video_id != b.video_id) return a.video_id < b.video_id;
        return a.sequence.clips.begin < b.sequence.clips.begin;
      });
}

}  // namespace svq::core

#endif  // SVQ_CORE_TOPK_MERGE_H_
