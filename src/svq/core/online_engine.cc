#include "svq/core/online_engine.h"

#include <algorithm>
#include <chrono>

namespace svq::core {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

stats::KernelRateEstimator MakeEstimator(double bandwidth, double initial_p) {
  stats::KernelRateEstimator::Options options;
  options.bandwidth = bandwidth;
  options.initial_p = initial_p;
  // Blend away from the prior over a quarter bandwidth: enough data to
  // stabilize the kernel estimate, short enough that a bad prior (paper
  // Fig. 2) washes out quickly.
  options.warmup_ous = static_cast<int64_t>(bandwidth / 4.0);
  auto result = stats::KernelRateEstimator::Create(options);
  // Options are validated by OnlineConfig::Validate before reaching here.
  return *std::move(result);
}

/// Exclusion quota for the null-rate estimate: a clip whose event count
/// reaches it looks like signal and must not contaminate the background
/// estimate. Capped at half the clip so that a saturated critical value
/// (k = window + 1, nothing ever "positive") cannot deadlock the
/// estimator into learning the signal rate forever; floored at 2 so that a
/// minimal quota (k = 1, e.g. from a near-zero initial probability) cannot
/// starve the estimator by excluding every clip containing any event.
int NullExclusionQuota(int kcrit, int64_t units_in_clip) {
  const int half = static_cast<int>((units_in_clip + 1) / 2);
  return std::max(2, std::min(kcrit, std::max(2, half)));
}

}  // namespace

Result<std::unique_ptr<OnlineEngine>> OnlineEngine::Create(
    Mode mode, Query query, OnlineConfig config,
    const video::VideoLayout& layout, models::ObjectDetector* detector,
    models::ActionRecognizer* recognizer, const ExecutionContext& context,
    std::shared_ptr<svq::cache::KcritTable> kcrit_table) {
  SVQ_RETURN_NOT_OK(query.Validate());
  SVQ_RETURN_NOT_OK(config.Validate());
  SVQ_RETURN_NOT_OK(layout.Validate());
  if (detector == nullptr || recognizer == nullptr) {
    return Status::InvalidArgument("detector and recognizer must be set");
  }
  return std::unique_ptr<OnlineEngine>(
      new OnlineEngine(mode, std::move(query), config, layout, detector,
                       recognizer, context, std::move(kcrit_table)));
}

OnlineEngine::OnlineEngine(Mode mode, Query query, OnlineConfig config,
                           const video::VideoLayout& layout,
                           models::ObjectDetector* detector,
                           models::ActionRecognizer* recognizer,
                           ExecutionContext context,
                           std::shared_ptr<svq::cache::KcritTable> kcrit_table)
    : mode_(mode),
      query_(std::move(query)),
      config_(config),
      context_(std::move(context)),
      layout_(layout),
      detector_(detector),
      recognizer_(recognizer),
      frame_predicates_(FramePredicatesOf(query_)),
      actions_(query_.AllActions()),
      frame_cache_(layout.FramesPerClip(), config.reference_windows,
                   config.alpha, /*min_k=*/2, kcrit_table),
      action_cache_(layout.shots_per_clip, config.reference_windows,
                    config.alpha, /*min_k=*/2, kcrit_table),
      markov_action_cache_(layout.shots_per_clip, config.reference_windows,
                           config.alpha, /*min_k=*/2,
                           std::move(kcrit_table)) {
  for (size_t i = 0; i < frame_predicates_.size(); ++i) {
    frame_estimators_.push_back(
        MakeEstimator(config_.object_bandwidth, config_.initial_object_p));
  }
  for (size_t a = 0; a < actions_.size(); ++a) {
    action_estimators_.push_back(
        MakeEstimator(config_.action_bandwidth, config_.initial_action_p));
    action_pair_estimators_.push_back(
        MakeEstimator(config_.action_bandwidth, config_.initial_action_p));
  }
  RefreshCriticalValues();
  baseline_model_ms_ =
      detector_->stats().simulated_ms + recognizer_->stats().simulated_ms;
}

void OnlineEngine::RefreshCriticalValues() {
  frame_kcrits_.resize(frame_predicates_.size());
  for (size_t i = 0; i < frame_predicates_.size(); ++i) {
    const double p = mode_ == Mode::kSvaq ? config_.initial_object_p
                                          : frame_estimators_[i].rate();
    frame_kcrits_[i] = frame_cache_.Get(p);
  }
  action_kcrits_.resize(actions_.size());
  for (size_t a = 0; a < actions_.size(); ++a) {
    const double p = mode_ == Mode::kSvaq ? config_.initial_action_p
                                          : action_estimators_[a].rate();
    // The Markov null (footnote 7) engages in dynamic mode once enough
    // transition data has accumulated and the exact embedding is feasible.
    if (mode_ == Mode::kSvaqd && config_.markov_action_null &&
        layout_.shots_per_clip <= 20 &&
        action_pair_estimators_[a].total_ous() >= 32) {
      action_kcrits_[a] =
          markov_action_cache_.Get(p, action_pair_estimators_[a].rate());
    } else {
      action_kcrits_[a] = action_cache_.Get(p);
    }
  }
}

void OnlineEngine::FeedActionStream(size_t action_index,
                                    const std::vector<bool>& events) {
  auto& estimator = action_estimators_[action_index];
  auto& pairs = action_pair_estimators_[action_index];
  bool prev = false;
  bool have_prev = false;
  for (const bool event : events) {
    estimator.Step(event);
    // Persistence stream: among shots following an event-bearing shot, how
    // often does the event continue?
    if (have_prev && prev) pairs.Step(event);
    prev = event;
    have_prev = true;
  }
}

void OnlineEngine::FeedEstimators(const ClipEvaluation& eval) {
  const bool null_only =
      config_.update_policy == UpdatePolicy::kNegativeUnits;
  for (int i = 0; i < eval.evaluated_frame_predicates; ++i) {
    const auto& events = eval.frame_events[static_cast<size_t>(i)];
    // Under the default policy, a clip where this predicate reached its
    // quota is (statistically) signal, not background — exclude its units
    // from the null-rate estimate.
    if (null_only &&
        eval.frame_counts[static_cast<size_t>(i)] >=
            NullExclusionQuota(frame_kcrits_[static_cast<size_t>(i)],
                               static_cast<int64_t>(events.size()))) {
      continue;
    }
    auto& estimator = frame_estimators_[static_cast<size_t>(i)];
    for (const bool event : events) estimator.Step(event);
  }
  // Under the null-only policy the action estimators learn exclusively from
  // the unconditional periodic sample (SampleActionBackground): clips that
  // reach the action stage are conditioned on the frame predicates, and
  // objects correlate with actions, so their shots over-represent the
  // actions and would bias the null estimates upward.
  if (eval.actions_evaluated && !null_only) {
    for (size_t a = 0; a < actions_.size(); ++a) {
      FeedActionStream(a, eval.action_events[a]);
    }
  }
}

Status OnlineEngine::SampleActionBackground(const video::ClipRef& clip,
                                            const ClipEvaluation& eval) {
  std::vector<std::vector<bool>> events(actions_.size());
  std::vector<int> counts(actions_.size(), 0);
  if (eval.actions_evaluated) {
    events = eval.action_events;
    counts = eval.action_counts;
  } else {
    for (const video::ShotRef& shot : clip.shots) {
      SVQ_ASSIGN_OR_RETURN(const std::vector<models::ActionScore> scores,
                           recognizer_->Recognize(shot));
      for (size_t a = 0; a < actions_.size(); ++a) {
        bool hit = false;
        for (const models::ActionScore& s : scores) {
          if (s.label == actions_[a] &&
              s.score >= config_.action_threshold) {
            hit = true;
            break;
          }
        }
        events[a].push_back(hit);
        if (hit) ++counts[a];
      }
    }
  }
  for (size_t a = 0; a < actions_.size(); ++a) {
    if (counts[a] >=
        NullExclusionQuota(action_kcrits_[a],
                           static_cast<int64_t>(events[a].size()))) {
      continue;
    }
    FeedActionStream(a, events[a]);
  }
  return Status::OK();
}

Status OnlineEngine::ProcessClip(const video::ClipRef& clip) {
  // Deadline/cancellation gate: runs before any model inference, so an
  // expired context cannot cost a single detector or recognizer pass.
  SVQ_RETURN_NOT_OK(context_.Check());
  const double t0 = NowMs();

  EvalOptions options;
  // Periodic background-sampling tick: evaluate both stages so every
  // estimator sees unconditioned data (see action_null_sampling_period).
  const bool sampling_tick =
      mode_ == Mode::kSvaqd &&
      config_.update_policy == UpdatePolicy::kNegativeUnits &&
      config_.action_null_sampling_period > 0 &&
      (stats_.clips_processed + 1) % config_.action_null_sampling_period == 0;
  options.disable_short_circuit = sampling_tick;
  switch (config_.predicate_order) {
    case OnlineConfig::PredicateOrder::kObjectsFirst:
      break;
    case OnlineConfig::PredicateOrder::kActionsFirst:
      options.actions_first = true;
      break;
    case OnlineConfig::PredicateOrder::kAdaptive: {
      // Expected inference cost per order, from measured per-unit model
      // times and decayed stage pass rates (footnote 5).
      const auto per_unit = [](const models::InferenceStats& stats) {
        return stats.units > 0
                   ? stats.simulated_ms / static_cast<double>(stats.units)
                   : -1.0;
      };
      const double det_unit = per_unit(detector_->stats());
      const double act_unit = per_unit(recognizer_->stats());
      if (det_unit >= 0.0 && act_unit >= 0.0) {
        const double det_ms = det_unit * layout_.FramesPerClip();
        const double act_ms = act_unit * layout_.shots_per_clip;
        const double objects_first =
            det_ms + frame_stage_pass_rate_ * act_ms;
        const double actions_first =
            act_ms + action_stage_pass_rate_ * det_ms;
        options.actions_first = actions_first < objects_first;
      }
      break;
    }
  }
  if (options.actions_first) ++stats_.clips_actions_first;

  auto eval_result =
      EvaluateClip(clip, query_, config_, frame_kcrits_, action_kcrits_,
                   detector_, recognizer_, options);
  if (!eval_result.ok()) return eval_result.status();
  const ClipEvaluation& eval = *eval_result;

  ++stats_.clips_processed;
  const bool frames_decided =
      eval.evaluated_frame_predicates ==
      static_cast<int>(frame_predicates_.size());
  if (!eval.actions_evaluated || !frames_decided) {
    ++stats_.clips_short_circuited;
  }
  if (eval.positive) ++stats_.clips_positive;

  // Decayed stage pass rates for adaptive ordering.
  constexpr double kPassRateDecay = 0.05;
  if (frames_decided) {
    bool pass = true;
    for (size_t i = 0; i < frame_predicates_.size(); ++i) {
      if (eval.frame_counts[i] < frame_kcrits_[i]) pass = false;
    }
    frame_stage_pass_rate_ +=
        kPassRateDecay * ((pass ? 1.0 : 0.0) - frame_stage_pass_rate_);
  }
  if (eval.actions_evaluated) {
    bool pass = true;
    for (size_t a = 0; a < actions_.size(); ++a) {
      if (eval.action_counts[a] < action_kcrits_[a]) pass = false;
    }
    action_stage_pass_rate_ +=
        kPassRateDecay * ((pass ? 1.0 : 0.0) - action_stage_pass_rate_);
  }

  if (mode_ == Mode::kSvaqd) {
    const bool update =
        config_.update_policy != UpdatePolicy::kPositiveClip || eval.positive;
    if (update) {
      FeedEstimators(eval);
      if (sampling_tick) {
        SVQ_RETURN_NOT_OK(SampleActionBackground(clip, eval));
      }
      RefreshCriticalValues();
    }
  }

  // Merge positive clips into result sequences (Eq. 4), bridging gaps of
  // up to merge_gap_clips negative clips.
  if (eval.positive) {
    if (open_run_begin_ >= 0 &&
        clip.clip - last_positive_clip_ - 1 <= config_.merge_gap_clips) {
      // Continue the run; bridged gap clips become part of the sequence.
      sequences_.Add({last_positive_clip_, clip.clip + 1});
    } else {
      if (open_run_begin_ >= 0) {
        completed_.push_back({open_run_begin_, last_positive_clip_ + 1});
      }
      open_run_begin_ = clip.clip;
      sequences_.Add({clip.clip, clip.clip + 1});
    }
    last_positive_clip_ = clip.clip;
  } else if (open_run_begin_ >= 0 &&
             clip.clip - last_positive_clip_ > config_.merge_gap_clips) {
    completed_.push_back({open_run_begin_, last_positive_clip_ + 1});
    open_run_begin_ = -1;
  }
  stats_.algorithm_ms += NowMs() - t0;
  return Status::OK();
}

Result<OnlineResult> OnlineEngine::Run(video::VideoStream& stream) {
  while (auto clip = stream.NextClip()) {
    SVQ_RETURN_NOT_OK(ProcessClip(*clip));
  }
  OnlineResult result;
  result.sequences = sequences_;
  result.stats = Snapshot();
  return result;
}

std::vector<video::Interval> OnlineEngine::TakeCompleted() {
  std::vector<video::Interval> out;
  out.swap(completed_);
  return out;
}

void OnlineEngine::Finish() {
  if (open_run_begin_ < 0) return;
  completed_.push_back({open_run_begin_, last_positive_clip_ + 1});
  open_run_begin_ = -1;
}

OnlineStats OnlineEngine::Snapshot() const {
  OnlineStats stats = stats_;
  stats.object_kcrits = frame_kcrits_;
  stats.action_kcrit = action_kcrits_.empty() ? 0 : action_kcrits_.front();
  stats.object_p.clear();
  for (size_t i = 0; i < frame_estimators_.size(); ++i) {
    stats.object_p.push_back(mode_ == Mode::kSvaq
                                 ? config_.initial_object_p
                                 : frame_estimators_[i].rate());
  }
  stats.action_p = mode_ == Mode::kSvaq
                       ? config_.initial_action_p
                       : (action_estimators_.empty()
                              ? 0.0
                              : action_estimators_.front().rate());
  stats.model_ms = detector_->stats().simulated_ms +
                   recognizer_->stats().simulated_ms - baseline_model_ms_;
  return stats;
}

}  // namespace svq::core
