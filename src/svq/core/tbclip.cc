#include "svq/core/tbclip.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "svq/observability/trace.h"

namespace svq::core {

namespace {
/// Slack for floating-point comparisons between cached scores and
/// cursor-derived thresholds.
double Eps(double reference) {
  return 1e-9 * std::max(1.0, std::fabs(reference));
}
}  // namespace

TbClipIterator::TbClipIterator(
    std::vector<const storage::ScoreTable*> object_tables,
    const storage::ScoreTable* action_table, const SequenceScoring* scoring,
    const video::IntervalSet* candidates, bool skip_enabled,
    storage::StorageMetrics* metrics, Emission emission)
    : scoring_(scoring), candidates_(candidates),
      skip_enabled_(skip_enabled), emission_(emission) {
  for (const storage::ScoreTable* table : object_tables) {
    readers_.emplace_back(table, metrics);
  }
  readers_.emplace_back(action_table, metrics);
  const size_t n = readers_.size();
  top_rank_.assign(n, 0);
  btm_rank_.assign(n, 0);
  // Before any sorted access nothing is known about unseen clips from
  // above; scores are in [0, 1] per occurrence unit but clip aggregates are
  // unbounded, so start the upper cursors at infinity. Scores are
  // non-negative, so zero is a valid lower cursor before any access.
  top_cursor_score_.assign(n, std::numeric_limits<double>::infinity());
  btm_cursor_score_.assign(n, 0.0);
  remaining_candidates_ = candidates_->TotalLength();
}

void TbClipIterator::AddSkipRange(video::Interval clips) {
  if (!skip_enabled_) return;
  skipped_.Add(clips);
}

bool TbClipIterator::IsSkipped(video::ClipIndex clip) const {
  return skip_enabled_ && skipped_.Contains(clip);
}

bool TbClipIterator::IsCandidate(video::ClipIndex clip) const {
  return candidates_->Contains(clip);
}

void TbClipIterator::ScoreClip(video::ClipIndex clip) {
  if (score_cache_.contains(clip)) return;
  // Random accesses on every query table (Alg. 5 steps 2 and 4).
  std::vector<double> object_scores(readers_.size() - 1, 0.0);
  for (size_t i = 0; i + 1 < readers_.size(); ++i) {
    object_scores[i] = readers_[i].RandomAccessOrZero(clip);
  }
  const double action_score = readers_.back().RandomAccessOrZero(clip);
  const double score = scoring_->ClipScore(object_scores, action_score);
  score_cache_.emplace(clip, score);
  if (IsCandidate(clip)) {
    top_heap_.push({clip, score});
    btm_heap_.push({clip, score});
  }
}

Status TbClipIterator::AdvanceTop() {
  bool any_done = false;
  for (size_t i = 0; i < readers_.size(); ++i) {
    if (top_rank_[i] >= readers_[i].NumRows()) {
      any_done = true;
      continue;
    }
    SVQ_ASSIGN_OR_RETURN(const storage::ClipScoreRow row,
                         readers_[i].SortedAccess(top_rank_[i]));
    ++top_rank_[i];
    top_cursor_score_[i] = row.score;
    if (top_rank_[i] >= readers_[i].NumRows()) any_done = true;
    if (processed_.contains(row.clip) || score_cache_.contains(row.clip)) {
      continue;
    }
    if (IsSkipped(row.clip) || !IsCandidate(row.clip)) {
      // Clips outside C(P_q) or conclusively skipped are seen once during
      // sorted access and never charged random accesses (§4.3).
      continue;
    }
    ScoreClip(row.clip);
  }
  // Once any table is fully consumed from the top, every candidate has been
  // seen and scored (candidates have rows in all query tables), so the heap
  // maximum is the true maximum.
  if (any_done) top_exhausted_ = true;
  return Status::OK();
}

Status TbClipIterator::AdvanceBottom() {
  bool any_done = false;
  for (size_t i = 0; i < readers_.size(); ++i) {
    if (btm_rank_[i] >= readers_[i].NumRows()) {
      any_done = true;
      continue;
    }
    SVQ_ASSIGN_OR_RETURN(const storage::ClipScoreRow row,
                         readers_[i].ReverseAccess(btm_rank_[i]));
    ++btm_rank_[i];
    btm_cursor_score_[i] = row.score;
    if (btm_rank_[i] >= readers_[i].NumRows()) any_done = true;
    if (processed_.contains(row.clip) || score_cache_.contains(row.clip)) {
      continue;
    }
    if (IsSkipped(row.clip) || !IsCandidate(row.clip)) {
      continue;
    }
    ScoreClip(row.clip);
  }
  if (any_done) btm_exhausted_ = true;
  return Status::OK();
}

double TbClipIterator::TopThreshold() const {
  if (top_exhausted_) return -std::numeric_limits<double>::infinity();
  std::vector<double> object_scores(top_cursor_score_.begin(),
                                    top_cursor_score_.end() - 1);
  return scoring_->ClipScore(object_scores, top_cursor_score_.back());
}

double TbClipIterator::BottomThreshold() const {
  if (btm_exhausted_) return std::numeric_limits<double>::infinity();
  std::vector<double> object_scores(btm_cursor_score_.begin(),
                                    btm_cursor_score_.end() - 1);
  return scoring_->ClipScore(object_scores, btm_cursor_score_.back());
}

std::optional<TbClipItem> TbClipIterator::PeekTop() {
  while (!top_heap_.empty()) {
    const TbClipItem item = top_heap_.top();
    if (processed_.contains(item.clip) || IsSkipped(item.clip) ||
        !IsCandidate(item.clip)) {
      top_heap_.pop();
      continue;
    }
    return item;
  }
  return std::nullopt;
}

std::optional<TbClipItem> TbClipIterator::PeekBottom() {
  while (!btm_heap_.empty()) {
    const TbClipItem item = btm_heap_.top();
    if (processed_.contains(item.clip) || IsSkipped(item.clip) ||
        !IsCandidate(item.clip)) {
      btm_heap_.pop();
      continue;
    }
    return item;
  }
  return std::nullopt;
}

Result<std::optional<TbClipStep>> TbClipIterator::Next() {
  if (context_ != nullptr) SVQ_RETURN_NOT_OK(context_->Check());
  // One aggregate trace span for the whole iterator, not one span per
  // step: Next() is the offline hot loop.
  observability::AggregateTimer timer(
      context_ != nullptr ? context_->trace() : nullptr, "tbclip.next");
  ++calls_;
  std::optional<TbClipItem> top_item;
  std::optional<TbClipItem> btm_item;
  for (;;) {
    if (!top_item) {
      if (auto best = PeekTop()) {
        const double threshold = TopThreshold();
        // kBounded emits the best-seen immediately (paper Alg. 5);
        // kCertified waits until the TA threshold certifies it as the
        // global maximum of the unprocessed candidates.
        if (emission_ == Emission::kBounded ||
            best->score >= threshold - Eps(threshold)) {
          top_item = best;
          top_heap_.pop();
          processed_.insert(best->clip);
        }
      }
    }
    if (!btm_item) {
      if (auto worst = PeekBottom()) {
        const double threshold = BottomThreshold();
        if (emission_ == Emission::kBounded ||
            worst->score <= threshold + Eps(threshold)) {
          btm_item = worst;
          btm_heap_.pop();
          processed_.insert(worst->clip);
        }
      }
    }
    if (top_item && btm_item) break;
    // Degenerate endings: one side already emitted while the other side's
    // heap has drained with its cursors exhausted.
    if (top_item && !btm_item && btm_exhausted_ && !PeekBottom()) {
      btm_item = top_item;
      break;
    }
    if (btm_item && !top_item && top_exhausted_ && !PeekTop()) {
      top_item = btm_item;
      break;
    }
    if (!top_item && !btm_item && top_exhausted_ && btm_exhausted_ &&
        !PeekTop() && !PeekBottom()) {
      return std::optional<TbClipStep>();
    }
    bool advanced = false;
    if (!top_item && !top_exhausted_) {
      SVQ_RETURN_NOT_OK(AdvanceTop());
      advanced = true;
    }
    if (!btm_item && !btm_exhausted_) {
      SVQ_RETURN_NOT_OK(AdvanceBottom());
      advanced = true;
    }
    if (!advanced) {
      // No cursor can move; the next emission checks run against exhausted
      // thresholds (-inf / +inf) and must succeed if anything is left.
      const bool top_settled = top_item || top_exhausted_;
      const bool btm_settled = btm_item || btm_exhausted_;
      if (!(top_settled && btm_settled)) {
        return Status::Internal("TBClip made no progress");
      }
      // Both sides settled; an exhausted side with a non-empty heap emits
      // on the next pass (its threshold is +/-inf), and an exhausted side
      // with an empty heap hits a degenerate ending above.
      continue;
    }
  }

  TbClipStep step;
  step.top = *top_item;
  step.bottom = *btm_item;

  // Certified brackets for the clips still in play (candidates that are
  // neither processed nor conclusively skipped): an unseen clip is bounded
  // by the cursor thresholds, a seen-but-unprocessed clip by the heap
  // extremes. Monotone by construction (running min/max).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double upper = top_exhausted_ ? -kInf : TopThreshold();
  if (auto best_left = PeekTop()) {
    upper = std::max(upper, best_left->score);
  }
  if (upper == -kInf) upper = 0.0;  // nothing left in play; scores are >= 0
  running_upper_ = std::min(running_upper_, std::max(0.0, upper));

  double lower = btm_exhausted_ ? kInf : BottomThreshold();
  if (auto worst_left = PeekBottom()) {
    lower = std::min(lower, worst_left->score);
  }
  if (lower == kInf) lower = 0.0;  // nothing left in play
  running_lower_ = std::max(running_lower_, std::max(0.0, lower));
  // A fresh upper can dip below the running lower only when nothing is
  // left in play; keep the pair consistent.
  step.upper_bound = std::max(running_upper_, running_lower_);
  step.lower_bound = running_lower_;
  return std::make_optional(step);
}

}  // namespace svq::core
