#include "svq/core/clip_indicator.h"

#include <string>

#include "svq/core/spatial.h"

namespace svq::core {

std::string FramePredicate::Name() const {
  switch (kind) {
    case Kind::kObject:
      return labels.empty() ? "?" : labels.front();
    case Kind::kAnyOf: {
      std::string name = "any(";
      for (size_t i = 0; i < labels.size(); ++i) {
        if (i > 0) name += "|";
        name += labels[i];
      }
      return name + ")";
    }
    case Kind::kRelationship:
      return relationship.ToString();
  }
  return "?";
}

std::vector<FramePredicate> FramePredicatesOf(const Query& query) {
  std::vector<FramePredicate> predicates;
  for (const std::string& object : query.objects) {
    FramePredicate p;
    p.kind = FramePredicate::Kind::kObject;
    p.labels = {object};
    predicates.push_back(std::move(p));
  }
  for (const auto& group : query.object_disjunctions) {
    FramePredicate p;
    p.kind = FramePredicate::Kind::kAnyOf;
    p.labels = group;
    predicates.push_back(std::move(p));
  }
  for (const Relationship& rel : query.relationships) {
    FramePredicate p;
    p.kind = FramePredicate::Kind::kRelationship;
    p.relationship = rel;
    predicates.push_back(std::move(p));
  }
  return predicates;
}

namespace {

/// Frame-level indicator of one predicate against one frame's detections.
bool PredicateHit(const FramePredicate& predicate,
                  const std::vector<models::ObjectDetection>& detections,
                  double threshold) {
  switch (predicate.kind) {
    case FramePredicate::Kind::kObject:
    case FramePredicate::Kind::kAnyOf:
      for (const models::ObjectDetection& det : detections) {
        if (det.score < threshold) continue;
        for (const std::string& label : predicate.labels) {
          if (det.label == label) return true;
        }
      }
      return false;
    case FramePredicate::Kind::kRelationship:
      return RelationshipHolds(predicate.relationship, detections, threshold);
  }
  return false;
}

}  // namespace

Result<ClipEvaluation> EvaluateClip(const video::ClipRef& clip,
                                    const Query& query,
                                    const OnlineConfig& config,
                                    const std::vector<int>& frame_kcrits,
                                    const std::vector<int>& action_kcrits,
                                    models::ObjectDetector* detector,
                                    models::ActionRecognizer* recognizer,
                                    const EvalOptions& options) {
  const std::vector<FramePredicate> predicates = FramePredicatesOf(query);
  const std::vector<std::string> actions = query.AllActions();
  if (frame_kcrits.size() != predicates.size()) {
    return Status::InvalidArgument(
        "frame_kcrits size mismatch: " + std::to_string(frame_kcrits.size()) +
        " vs " + std::to_string(predicates.size()) + " predicates");
  }
  if (action_kcrits.size() != actions.size()) {
    return Status::InvalidArgument(
        "action_kcrits size mismatch: " +
        std::to_string(action_kcrits.size()) + " vs " +
        std::to_string(actions.size()) + " actions");
  }
  if (detector == nullptr || recognizer == nullptr) {
    return Status::InvalidArgument("detector and recognizer must be set");
  }

  ClipEvaluation eval;

  // One detector pass over the clip's frames covers every frame predicate
  // (a real detector emits all classes in a single inference); all
  // predicates are decided together, so a frame-stage failure saves the
  // recognizer pass (Alg. 2 lines 6-8) — or vice versa under actions-first
  // ordering (footnote 5).
  auto run_frame_stage = [&]() -> Result<bool> {
    std::vector<std::vector<bool>> frame_hits(predicates.size());
    for (auto& events : frame_hits) {
      events.reserve(static_cast<size_t>(clip.frames.length()));
    }
    if (!predicates.empty()) {
      for (video::FrameIndex frame = clip.frames.begin;
           frame < clip.frames.end; ++frame) {
        SVQ_ASSIGN_OR_RETURN(const std::vector<models::ObjectDetection> dets,
                             detector->Detect(frame));
        for (size_t i = 0; i < predicates.size(); ++i) {
          frame_hits[i].push_back(
              PredicateHit(predicates[i], dets, config.object_threshold));
        }
      }
    }
    bool pass = true;
    for (size_t i = 0; i < predicates.size(); ++i) {
      int count = 0;
      for (const bool hit : frame_hits[i]) count += hit ? 1 : 0;
      eval.frame_counts.push_back(count);
      eval.frame_events.push_back(std::move(frame_hits[i]));
      ++eval.evaluated_frame_predicates;
      if (count < frame_kcrits[i]) pass = false;
    }
    return pass;
  };

  // Action predicates (Alg. 2 lines 9-12), all from one recognizer pass;
  // their conjunction implements footnote 3.
  auto run_action_stage = [&]() -> Result<bool> {
    eval.actions_evaluated = true;
    eval.action_counts.assign(actions.size(), 0);
    eval.action_events.assign(actions.size(), {});
    for (const video::ShotRef& shot : clip.shots) {
      SVQ_ASSIGN_OR_RETURN(const std::vector<models::ActionScore> scores,
                           recognizer->Recognize(shot));
      for (size_t a = 0; a < actions.size(); ++a) {
        bool hit = false;
        for (const models::ActionScore& s : scores) {
          if (s.label == actions[a] && s.score >= config.action_threshold) {
            hit = true;
            break;
          }
        }
        eval.action_events[a].push_back(hit);
        if (hit) ++eval.action_counts[a];
      }
    }
    bool pass = true;
    for (size_t a = 0; a < actions.size(); ++a) {
      if (eval.action_counts[a] < action_kcrits[a]) pass = false;
    }
    return pass;
  };

  bool first_pass = false;
  if (options.actions_first) {
    SVQ_ASSIGN_OR_RETURN(first_pass, run_action_stage());
  } else {
    SVQ_ASSIGN_OR_RETURN(first_pass, run_frame_stage());
  }
  if (!first_pass && !options.disable_short_circuit) {
    eval.positive = false;
    return eval;
  }
  bool second_pass = false;
  if (options.actions_first) {
    SVQ_ASSIGN_OR_RETURN(second_pass, run_frame_stage());
  } else {
    SVQ_ASSIGN_OR_RETURN(second_pass, run_action_stage());
  }
  eval.positive = first_pass && second_pass;
  return eval;
}

}  // namespace svq::core
