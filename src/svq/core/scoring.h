#ifndef SVQ_CORE_SCORING_H_
#define SVQ_CORE_SCORING_H_

#include <memory>
#include <string>
#include <vector>

namespace svq::core {

/// Abstract scoring-function bundle of paper §4.1: the clip combiner `g`,
/// the sequence aggregator `f`, and the `⊙` operator that splices scores of
/// disjoint sub-sequences (Eq. 11).
///
/// RVAQ's bound maintenance only needs the properties the paper demands —
/// monotonicity of `g` and `f`, sub-sequence dominance, and decomposability
/// via `⊙` — all of which this interface encodes; any conforming
/// implementation plugs in.
class SequenceScoring {
 public:
  virtual ~SequenceScoring() = default;

  /// `g`: overall clip score from the per-predicate clip scores (Eq. 9).
  /// `object_scores` are ordered as in the query. Must be monotone
  /// non-decreasing in every argument.
  virtual double ClipScore(const std::vector<double>& object_scores,
                           double action_score) const = 0;

  /// Identity element of `⊙` (the score of an empty sub-sequence).
  virtual double AggregateIdentity() const = 0;

  /// `⊙`: combines the scores of two disjoint sub-sequences (Eq. 11).
  virtual double Aggregate(double a, double b) const = 0;

  /// `f(s, s, ..., s)` with `count` copies — the building block of the
  /// upper/lower bound estimates (Eq. 13/14). Must satisfy
  /// Replicate(s, 0) == AggregateIdentity().
  virtual double Replicate(double clip_score, int64_t count) const = 0;

  virtual std::string name() const = 0;

  /// Convenience: `f` over explicit clip scores (Eq. 10), derived from
  /// `⊙` + Replicate(., 1).
  double SequenceScore(const std::vector<double>& clip_scores) const;
};

/// The paper's §5 experimental instance:
///   g : S_q(c) = S_a(c) * sum_i S_{o_i}(c)
///   f : S_q(z) = sum_{c in z} S_q(c)         (⊙ is +, identity 0)
class AdditiveScoring final : public SequenceScoring {
 public:
  double ClipScore(const std::vector<double>& object_scores,
                   double action_score) const override;
  double AggregateIdentity() const override { return 0.0; }
  double Aggregate(double a, double b) const override { return a + b; }
  double Replicate(double clip_score, int64_t count) const override {
    return clip_score * static_cast<double>(count);
  }
  std::string name() const override { return "additive"; }
};

/// A max-based alternative: f = max over clips (⊙ is max, identity 0);
/// demonstrates scoring-function pluggability and is useful when the user
/// wants "the sequence with the single strongest moment".
class MaxScoring final : public SequenceScoring {
 public:
  double ClipScore(const std::vector<double>& object_scores,
                   double action_score) const override;
  double AggregateIdentity() const override { return 0.0; }
  double Aggregate(double a, double b) const override {
    return a > b ? a : b;
  }
  double Replicate(double clip_score, int64_t count) const override {
    return count > 0 ? clip_score : 0.0;
  }
  std::string name() const override { return "max"; }
};

}  // namespace svq::core

#endif  // SVQ_CORE_SCORING_H_
